// Community explorer: run the full hierarchy on a file or a generated LFR
// graph and dump per-level statistics plus quality-vs-ground-truth.
//
//   ./community_explorer --graph path.txt            # SNAP-style edge list
//   ./community_explorer --n 5000 --mu 0.4 --ranks 4 # generated LFR
//   ./community_explorer --n 5000 --save-communities out.txt
//
// Mirrors the paper's evaluation workflow: hierarchy depth, modularity
// per level, evolution ratio, community size distribution, and (for LFR)
// NMI against the planted communities.
#include <iostream>

#include <fstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/hierarchy.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/quality.hpp"
#include "metrics/similarity.hpp"
#include "seq/louvain_seq.hpp"

int main(int argc, char** argv) {
  plv::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));

  plv::graph::EdgeList edges;
  std::vector<plv::vid_t> ground_truth;
  if (cli.has("graph")) {
    edges = plv::graph::load_edge_list_text(cli.get_string("graph", ""));
    std::cout << "loaded " << edges.size() << " edges from "
              << cli.get_string("graph", "") << '\n';
  } else {
    plv::gen::LfrParams p;
    p.n = static_cast<plv::vid_t>(cli.get_int("n", 5000));
    p.mu = cli.get_double("mu", 0.4);
    p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const auto g = plv::gen::lfr(p);
    edges = g.edges;
    ground_truth = g.ground_truth;
    std::cout << "generated LFR: n=" << p.n << " mu=" << p.mu << " edges="
              << edges.size() << " planted communities=" << g.num_communities << '\n';
  }

  {
    const auto csr = plv::graph::Csr::from_edges(edges);
    const auto stats = plv::graph::graph_stats(csr);
    std::cout << "graph stats: n=" << stats.vertices << " m=" << stats.undirected_edges
              << " avg-deg=" << stats.avg_degree << " max-deg=" << stats.max_degree
              << " isolated=" << stats.isolated_vertices
              << " power-law gamma~=" << plv::graph::degree_powerlaw_exponent(csr)
              << '\n';
  }

  plv::core::ParOptions opts;
  opts.nranks = ranks;
  opts.resolution = cli.get_double("resolution", 1.0);
  const plv::core::ParResult result = plv::louvain(plv::GraphSource::from_edges(edges, 0), opts);

  plv::TextTable table({"level", "vertices", "communities", "modularity",
                        "evolution-ratio", "inner-iters", "seconds"});
  for (std::size_t l = 0; l < result.num_levels(); ++l) {
    const auto& level = result.levels[l];
    table.row()
        .add(l)
        .add(static_cast<std::uint64_t>(level.num_vertices))
        .add(static_cast<std::uint64_t>(level.num_communities))
        .add(level.modularity)
        .add(static_cast<double>(level.num_communities) /
             static_cast<double>(level.num_vertices))
        .add(level.trace.moved_fraction.size())
        .add(level.seconds);
  }
  table.print();

  std::cout << "\nfinal: Q=" << result.final_modularity << " communities="
            << plv::metrics::count_communities(result.final_labels) << '\n';

  const auto dist = plv::metrics::size_distribution_log2(result.final_labels);
  std::cout << "community size distribution (log2 bins):\n";
  for (std::size_t b = 0; b < dist.size(); ++b) {
    if (dist[b] > 0) {
      std::cout << "  [" << (1ULL << b) << ", " << (1ULL << (b + 1)) << "): "
                << dist[b] << '\n';
    }
  }

  if (!ground_truth.empty()) {
    const auto s = plv::metrics::similarity(result.final_labels, ground_truth);
    std::cout << "vs planted communities: NMI=" << s.nmi << " F=" << s.f_measure
              << " NVD=" << s.nvd << " ARI=" << s.adjusted_rand_index << '\n';
  }

  {
    const auto csr = plv::graph::Csr::from_edges(edges);
    std::cout << "coverage=" << plv::metrics::coverage(csr, result.final_labels)
              << " mean-conductance="
              << plv::metrics::conductance(csr, result.final_labels).mean << '\n';
  }

  if (cli.has("save-communities")) {
    const auto path = cli.get_string("save-communities", "communities.txt");
    plv::graph::save_communities(result.final_labels, path);
    std::cout << "wrote " << path << '\n';
  }
  if (cli.has("save-tree")) {
    const auto path = cli.get_string("save-tree", "tree.txt");
    const plv::core::Hierarchy hierarchy(result);
    std::ofstream os(path);
    hierarchy.write_tree(os);
    std::cout << "wrote Blondel-format hierarchy tree to " << path << '\n';
  }
  return 0;
}
