// Quickstart: build a small graph, detect communities sequentially and in
// parallel, and print what the library found.
//
//   ./quickstart [--ranks 4]
//
// The graph is the classic "two weighted triangles with a weak bridge":
// both engines must put each triangle in its own community.
#include <iostream>

#include "common/cli.hpp"
#include "core/louvain_par.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "seq/louvain_seq.hpp"

int main(int argc, char** argv) {
  plv::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));

  // 1. Describe the graph as an undirected weighted edge list.
  plv::graph::EdgeList edges;
  edges.add(0, 1, 5.0);
  edges.add(1, 2, 5.0);
  edges.add(0, 2, 5.0);
  edges.add(3, 4, 5.0);
  edges.add(4, 5, 5.0);
  edges.add(3, 5, 5.0);
  edges.add(2, 3, 0.5);  // weak bridge between the triangles

  // 2. Sequential Louvain (the baseline).
  const auto g = plv::graph::Csr::from_edges(edges);
  const plv::LouvainResult seq = plv::seq::louvain(g);
  std::cout << "sequential: Q = " << seq.final_modularity << ", communities = "
            << plv::metrics::count_communities(seq.final_labels) << '\n';

  // 3. Parallel Louvain on `ranks` ranks (threads exchanging messages).
  plv::core::ParOptions opts;
  opts.nranks = ranks;
  const plv::core::ParResult par = plv::louvain(plv::GraphSource::from_edges(edges, 0), opts);
  std::cout << "parallel (" << ranks << " ranks): Q = " << par.final_modularity
            << ", communities = "
            << plv::metrics::count_communities(par.final_labels) << ", levels = "
            << par.num_levels() << '\n';

  // 4. Inspect the assignment.
  std::cout << "vertex -> community:";
  for (plv::vid_t v = 0; v < par.final_labels.size(); ++v) {
    std::cout << ' ' << v << ":" << par.final_labels[v];
  }
  std::cout << '\n';

  const bool ok = par.final_labels[0] == par.final_labels[2] &&
                  par.final_labels[3] == par.final_labels[5] &&
                  par.final_labels[0] != par.final_labels[3];
  std::cout << (ok ? "OK: triangles separated as expected\n"
                   : "UNEXPECTED: triangles not separated\n");
  return ok ? 0 : 1;
}
