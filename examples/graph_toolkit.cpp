// Graph toolkit: the paper's closing claim is that its dual-hash +
// fine-grained-messaging machinery generalizes to "other large-scale
// dynamic graph problems" (Section VII) — and its runtime was originally
// built for BFS [27] and SSSP [28]. This example runs all three
// companions (BFS, connected components, SSSP) plus community detection
// over the SAME distributed substrate on one generated graph.
//
//   ./graph_toolkit --scale 12 --ranks 4
#include <iostream>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/bfs.hpp"
#include "core/components.hpp"
#include "core/louvain_par.hpp"
#include "core/sssp.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "metrics/partition_utils.hpp"

int main(int argc, char** argv) {
  plv::Cli cli(argc, argv);
  plv::gen::RmatParams p;
  p.scale = static_cast<unsigned>(cli.get_int("scale", 12));
  p.edge_factor = static_cast<unsigned>(cli.get_int("edge-factor", 8));
  p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const plv::vid_t n = 1u << p.scale;
  const auto edges = plv::gen::rmat(p);

  plv::core::ParOptions opts;
  opts.nranks = static_cast<int>(cli.get_int("ranks", 4));

  {
    const auto csr = plv::graph::Csr::from_edges(edges, n);
    const auto s = plv::graph::graph_stats(csr);
    std::cout << "R-MAT scale " << p.scale << ": n=" << s.vertices << " m="
              << s.undirected_edges << " max-deg=" << s.max_degree << " isolated="
              << s.isolated_vertices << "\n\n";
  }

  plv::TextTable table({"algorithm", "seconds", "headline result"});
  plv::WallTimer t;

  const auto bfs = plv::core::bfs_parallel(edges, n, 0, opts);
  table.row().add("BFS (root 0)").add(t.seconds()).add(
      "reached " + std::to_string(bfs.reached) + " vertices in " +
      std::to_string(bfs.rounds) + " rounds, " +
      std::to_string(bfs.edges_traversed) + " edges traversed");

  t.reset();
  const auto cc = plv::core::connected_components_parallel(edges, n, opts);
  table.row().add("connected components").add(t.seconds()).add(
      std::to_string(cc.num_components) + " components in " +
      std::to_string(cc.rounds) + " rounds");

  t.reset();
  // Give the graph random integer weights for a non-trivial SSSP.
  plv::graph::EdgeList weighted;
  plv::Xoshiro256 rng(7);
  for (const plv::Edge& e : edges) {
    weighted.add(e.u, e.v, static_cast<plv::weight_t>(1 + rng.next_below(9)));
  }
  const auto sssp = plv::core::sssp_parallel(weighted, n, 0, opts);
  table.row().add("SSSP (root 0)").add(t.seconds()).add(
      "reached " + std::to_string(sssp.reached) + ", " +
      std::to_string(sssp.relaxations) + " relaxations, " +
      std::to_string(sssp.rounds) + " rounds");

  t.reset();
  const auto louvain = plv::louvain(plv::GraphSource::from_edges(edges, n), opts);
  table.row().add("Louvain communities").add(t.seconds()).add(
      std::to_string(plv::metrics::count_communities(louvain.final_labels)) +
      " communities, Q=" + std::to_string(louvain.final_modularity) + ", " +
      std::to_string(louvain.num_levels()) + " levels");

  table.print();
  std::cout << "\nAll four algorithms share the same 1-D ownership, hash-table\n"
               "state, coalescing aggregators and collectives (src/pml, src/core).\n";
  return 0;
}
