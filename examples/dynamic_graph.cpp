// Dynamic-graph demo: the paper argues its dual-hash-table representation
// "can be generalized to a larger class of graph algorithms ... where the
// topology of the graph changes very frequently" (Section I-B). This
// example exercises exactly that: a stream of edge insertions into an
// evolving community graph, re-running detection after each batch and
// reporting how the communities respond.
//
//   ./dynamic_graph --batches 5 --batch-edges 200
#include <iostream>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "gen/planted.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/similarity.hpp"

int main(int argc, char** argv) {
  plv::Cli cli(argc, argv);
  const int batches = static_cast<int>(cli.get_int("batches", 5));
  const int batch_edges = static_cast<int>(cli.get_int("batch-edges", 200));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));

  // Start from a clear 8-community structure...
  auto planted = plv::gen::planted_partition(
      {.communities = 8, .community_size = 32, .p_intra = 0.4, .p_inter = 0.005, .seed = 7});
  plv::graph::EdgeList edges = planted.edges;
  const plv::vid_t n = 8 * 32;

  plv::core::ParOptions opts;
  opts.nranks = ranks;

  auto base = plv::core::louvain_parallel(edges, n, opts);
  std::cout << "initial: Q=" << base.final_modularity << " communities="
            << plv::metrics::count_communities(base.final_labels) << '\n';

  // Convert a result's labels into a warm-start seed (labels must live in
  // vertex-id space: use each community's first member id).
  auto to_seed = [&](const std::vector<plv::vid_t>& labels) {
    std::vector<plv::vid_t> first(n, plv::kInvalidVid), seed(n);
    for (plv::vid_t v = 0; v < n; ++v) {
      if (first[labels[v]] == plv::kInvalidVid) first[labels[v]] = v;
      seed[v] = first[labels[v]];
    }
    return seed;
  };
  auto inner_iters = [](const plv::core::ParResult& r) {
    std::size_t iters = 0;
    for (const auto& level : r.levels) iters += level.trace.moved_fraction.size();
    return iters;
  };

  // ...then inject random cross-community edges batch by batch, melting
  // the structure. Communities should merge and modularity decay. After
  // each batch we re-detect twice: cold (from singletons) and warm (from
  // the previous partition, the dual-hash design's dynamic-graph payoff).
  plv::Xoshiro256 rng(99);
  plv::TextTable table({"batch", "edges", "Q-cold", "Q-warm", "iters-cold",
                        "iters-warm", "communities", "NMI-vs-initial"});
  std::vector<plv::vid_t> prev = base.final_labels;
  for (int b = 1; b <= batches; ++b) {
    for (int i = 0; i < batch_edges; ++i) {
      const auto u = static_cast<plv::vid_t>(rng.next_below(n));
      auto v = static_cast<plv::vid_t>(rng.next_below(n));
      while (v == u) v = static_cast<plv::vid_t>(rng.next_below(n));
      edges.add(u, v, 1.0);
    }
    const auto cold = plv::core::louvain_parallel(edges, n, opts);
    const auto warm = plv::core::louvain_parallel_warm(edges, n, to_seed(prev), opts);
    table.row()
        .add(b)
        .add(edges.size())
        .add(cold.final_modularity)
        .add(warm.final_modularity)
        .add(inner_iters(cold))
        .add(inner_iters(warm))
        .add(plv::metrics::count_communities(warm.final_labels))
        .add(plv::metrics::nmi(warm.final_labels, base.final_labels));
    prev = warm.final_labels;
  }
  table.print();
  std::cout << "\nEach batch of random edges lowers modularity and blurs the\n"
               "initial communities (NMI decays). The warm restart reaches the\n"
               "same quality as a cold run in a fraction of the inner\n"
               "iterations — the dynamic-graph payoff of rebuilding only the\n"
               "Out_Table while seeding community state from the last run.\n";
  return 0;
}
