// plouvain_cli — a subcommand-driven front end over the whole library,
// the "downstream user" entry point:
//
//   plouvain_cli gen    --kind lfr|bter|rmat|er [params] --out g.txt
//   plouvain_cli stats  --graph g.txt
//   plouvain_cli detect --graph g.txt [--engine par|seq|lp] [--ranks N]
//                       [--resolution G] [--out communities.txt] [--tree t.txt]
//   plouvain_cli bfs    --graph g.txt --root R [--ranks N]
//   plouvain_cli cc     --graph g.txt [--ranks N]
//   plouvain_cli sssp   --graph g.txt --root R [--ranks N]
//
// Run with no arguments for usage.
#include <fstream>
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/bfs.hpp"
#include "core/components.hpp"
#include "core/hierarchy.hpp"
#include "core/louvain_par.hpp"
#include "core/sssp.hpp"
#include "gen/bter.hpp"
#include "gen/er.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "metrics/clustering.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/quality.hpp"
#include "pml/transport_tcp.hpp"
#include "seq/label_prop.hpp"
#include "seq/louvain_seq.hpp"


namespace {

int usage() {
  std::cout <<
      "plouvain_cli <command> [options]\n"
      "  gen    --kind lfr|bter|rmat|er --out FILE\n"
      "         lfr:  --n N --mu F --seed S [--gt FILE]\n"
      "         bter: --n N --gcc F --seed S\n"
      "         rmat: --scale K --edge-factor E --seed S\n"
      "         er:   --n N --m M --seed S\n"
      "  stats  --graph FILE\n"
      "  detect --graph FILE [--engine par|seq|lp] [--ranks N]\n"
      "         [--transport thread|proc|tcp|hybrid] [--resolution G]\n"
      "         [--heuristics] [--hosts host:port,...] [--rank R]\n"
      "         [--ranks-per-proc N] [--validate] [--out FILE]\n"
      "         [--tree FILE] [--warm FILE]\n"
      "  bfs    --graph FILE --root R [--ranks N]\n"
      "         [--transport thread|proc|tcp|hybrid]\n"
      "  cc     --graph FILE [--ranks N] [--transport thread|proc|tcp|hybrid]\n"
      "  sssp   --graph FILE --root R [--ranks N]\n"
      "         [--transport thread|proc|tcp|hybrid]\n"
      "Multi-host tcp: run the same command on every host with the same\n"
      "--hosts list (one host:port per rank, entry index = rank) and that\n"
      "host's --rank R; each invocation is one rank of the fleet. With\n"
      "--transport tcp and no --hosts, a single invocation runs the whole\n"
      "fleet over 127.0.0.1 (the loopback self-test). Only rank 0 prints\n"
      "the detect metrics in a multi-host run.\n"
      "Hybrid transport: --transport hybrid nests thread ranks inside\n"
      "forked processes (--ranks-per-proc N consecutive ranks per process,\n"
      "default 2) and runs the collectives hierarchically over the\n"
      "two-tier topology.\n"
      "The PLV_TRANSPORT environment variable overrides --transport,\n"
      "PLV_HOSTS/PLV_RANK override --hosts/--rank, PLV_RANKS_PER_PROC\n"
      "overrides --ranks-per-proc, and PLV_VALIDATE (or PLV_PARANOID)\n"
      "overrides --validate.\n";
  return 2;
}

plv::graph::EdgeList load(const plv::Cli& cli) {
  const auto path = cli.get_string("graph", "");
  if (path.empty()) throw std::runtime_error("missing --graph");
  return plv::graph::load_edge_list_text(path);
}

plv::core::ParOptions par_opts(const plv::Cli& cli) {
  plv::core::ParOptions opts;
  opts.nranks = static_cast<int>(cli.get_int("ranks", 4));
  // --heuristics switches the whole convergence-heuristic bundle on
  // (active-vertex scheduling, min-label ties, vertex-following, threshold
  // scaling — RefinePlan::heuristics()); the default keeps every heuristic
  // off, i.e. the paper-faithful Eq. 7 refine loop.
  if (cli.get_bool("heuristics", false)) opts.refine = plv::core::RefinePlan::heuristics();
  opts.resolution = cli.get_double("resolution", 1.0);
  opts.transport = plv::pml::parse_transport_kind(cli.get_string("transport", "thread"));
  // --validate turns the pml protocol checker on even in optimized
  // builds; Debug builds default to on regardless (PLV_VALIDATE=0 turns
  // it off either way — the env wins inside the core front doors).
  opts.validate_transport = cli.get_bool("validate", opts.validate_transport);
  // Multi-host tcp launcher: --hosts names every rank's endpoint, --rank
  // says which one this process is. A host list implies the rank count.
  if (cli.has("hosts")) {
    opts.hosts = plv::pml::parse_host_list(cli.get_string("hosts", ""));
    opts.nranks = static_cast<int>(opts.hosts.size());
  }
  opts.tcp_rank = static_cast<int>(cli.get_int("rank", -1));
  // Hybrid group shape: N consecutive ranks share one forked process
  // (0 keeps the PLV_RANKS_PER_PROC / built-in default).
  opts.ranks_per_proc = static_cast<int>(cli.get_int("ranks-per-proc", 0));
  return opts;
}

/// In a multi-host tcp run every rank computes the full result; only rank
/// 0 should narrate it (the others' stdout is usually a remote log).
bool is_silent_rank(const plv::core::ParOptions& opts) {
  return opts.transport == plv::pml::TransportKind::kTcp && opts.tcp_rank > 0;
}

int cmd_gen(const plv::Cli& cli) {
  const auto kind = cli.get_string("kind", "lfr");
  const auto out = cli.get_string("out", "graph.txt");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  plv::graph::EdgeList edges;
  if (kind == "lfr") {
    plv::gen::LfrParams p;
    p.n = static_cast<plv::vid_t>(cli.get_int("n", 10000));
    p.mu = cli.get_double("mu", 0.3);
    p.seed = seed;
    const auto g = plv::gen::lfr(p);
    edges = g.edges;
    if (cli.has("gt")) {
      plv::graph::save_communities(g.ground_truth, cli.get_string("gt", "gt.txt"));
    }
  } else if (kind == "bter") {
    plv::gen::BterParams p;
    p.n = static_cast<plv::vid_t>(cli.get_int("n", 10000));
    p.gcc_target = cli.get_double("gcc", 0.5);
    p.seed = seed;
    edges = plv::gen::bter(p).edges;
  } else if (kind == "rmat") {
    plv::gen::RmatParams p;
    p.scale = static_cast<unsigned>(cli.get_int("scale", 14));
    p.edge_factor = static_cast<unsigned>(cli.get_int("edge-factor", 16));
    p.seed = seed;
    edges = plv::gen::rmat(p);
  } else if (kind == "er") {
    plv::gen::ErParams p;
    p.n = static_cast<plv::vid_t>(cli.get_int("n", 10000));
    p.m = static_cast<std::uint64_t>(cli.get_int("m", 80000));
    p.seed = seed;
    edges = plv::gen::erdos_renyi(p);
  } else {
    std::cerr << "unknown --kind " << kind << '\n';
    return 2;
  }
  plv::graph::save_edge_list_text(edges, out);
  std::cout << "wrote " << edges.size() << " edges to " << out << '\n';
  return 0;
}

int cmd_stats(const plv::Cli& cli) {
  const auto edges = load(cli);
  const auto g = plv::graph::Csr::from_edges(edges);
  const auto s = plv::graph::graph_stats(g);
  std::cout << "vertices        " << s.vertices << '\n'
            << "edges           " << s.undirected_edges << '\n'
            << "total weight    " << s.total_weight << '\n'
            << "avg degree      " << s.avg_degree << '\n'
            << "max degree      " << s.max_degree << '\n'
            << "isolated        " << s.isolated_vertices << '\n'
            << "self loops      " << s.self_loops << '\n'
            << "powerlaw gamma  " << plv::graph::degree_powerlaw_exponent(g) << '\n'
            << "global CC       " << plv::metrics::global_clustering_coefficient(g)
            << '\n';
  return 0;
}

int cmd_detect(const plv::Cli& cli) {
  const auto edges = load(cli);
  const auto engine = cli.get_string("engine", "par");
  const auto g = plv::graph::Csr::from_edges(edges);
  plv::WallTimer t;
  std::vector<plv::vid_t> labels;
  std::unique_ptr<plv::core::Hierarchy> hierarchy;
  bool quiet = false;
  if (engine == "seq") {
    plv::seq::SeqOptions opts;
    opts.resolution = cli.get_double("resolution", 1.0);
    const auto r = plv::seq::louvain(g, opts);
    labels = r.final_labels;
    hierarchy = std::make_unique<plv::core::Hierarchy>(r);
  } else if (engine == "lp") {
    labels = plv::seq::label_propagation(g).labels;
  } else if (engine == "par") {
    const auto opts = par_opts(cli);
    std::vector<plv::vid_t> seed_labels;
    plv::Result r;
    if (cli.has("warm")) {
      seed_labels = plv::graph::load_communities(cli.get_string("warm", ""));
      r = plv::louvain(plv::GraphSource::from_edges_warm(edges, seed_labels), opts);
    } else {
      r = plv::louvain(plv::GraphSource::from_edges(edges), opts);
    }
    labels = r.final_labels;
    quiet = is_silent_rank(opts);
    if (!quiet) std::cout << "transport    " << r.transport << '\n';
    hierarchy = std::make_unique<plv::core::Hierarchy>(r);
  } else {
    std::cerr << "unknown --engine " << engine << '\n';
    return 2;
  }
  const double seconds = t.seconds();

  if (!quiet) {
    std::cout << "engine       " << engine << '\n'
              << "seconds      " << seconds << '\n'
              << "communities  " << plv::metrics::count_communities(labels) << '\n'
              << "modularity   "
              << plv::metrics::modularity(g, labels,
                                          cli.get_double("resolution", 1.0))
              << '\n'
              << "coverage     " << plv::metrics::coverage(g, labels) << '\n'
              << "mean phi     " << plv::metrics::conductance(g, labels).mean
              << '\n';
    if (hierarchy) std::cout << "levels       " << hierarchy->num_levels() << '\n';
  }

  if (cli.has("out")) {
    plv::graph::save_communities(labels, cli.get_string("out", "communities.txt"));
  }
  if (cli.has("tree") && hierarchy) {
    std::ofstream os(cli.get_string("tree", "tree.txt"));
    hierarchy->write_tree(os);
  }
  return 0;
}

int cmd_bfs(const plv::Cli& cli) {
  const auto edges = load(cli);
  const auto root = static_cast<plv::vid_t>(cli.get_int("root", 0));
  const auto r = plv::core::bfs_parallel(edges, 0, root, par_opts(cli));
  std::cout << "reached " << r.reached << " vertices in " << r.rounds << " rounds, "
            << r.edges_traversed << " edges traversed\n";
  return 0;
}

int cmd_cc(const plv::Cli& cli) {
  const auto edges = load(cli);
  const auto r = plv::core::connected_components_parallel(edges, 0, par_opts(cli));
  std::cout << r.num_components << " components in " << r.rounds << " rounds\n";
  return 0;
}

int cmd_sssp(const plv::Cli& cli) {
  const auto edges = load(cli);
  const auto root = static_cast<plv::vid_t>(cli.get_int("root", 0));
  const auto r = plv::core::sssp_parallel(edges, 0, root, par_opts(cli));
  std::cout << "reached " << r.reached << " vertices, " << r.relaxations
            << " relaxations in " << r.rounds << " rounds\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  plv::Cli cli(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(cli);
    if (command == "stats") return cmd_stats(cli);
    if (command == "detect") return cmd_detect(cli);
    if (command == "bfs") return cmd_bfs(cli);
    if (command == "cc") return cmd_cc(cli);
    if (command == "sssp") return cmd_sssp(cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
