// Social-network scalability demo: generate a BTER graph (the paper's
// community-structured scalability workload), run the parallel engine
// over a sweep of rank counts, and report TEPS and message volume.
//
//   ./social_scalability --n 20000 --gcc 0.55 --max-ranks 8
//
// TEPS follows the paper's definition (Section V-E): input edges divided
// by the time to finish the *first* level, which does most of the work.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "gen/bter.hpp"
#include "metrics/clustering.hpp"
#include "graph/csr.hpp"

int main(int argc, char** argv) {
  plv::Cli cli(argc, argv);
  plv::gen::BterParams p;
  p.n = static_cast<plv::vid_t>(cli.get_int("n", 20000));
  p.gcc_target = cli.get_double("gcc", 0.55);
  p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int max_ranks = static_cast<int>(cli.get_int("max-ranks", 8));

  const auto g = plv::gen::bter(p);
  const auto csr = plv::graph::Csr::from_edges(g.edges, p.n);
  std::cout << "BTER: n=" << p.n << " edges=" << g.edges.size() << " blocks="
            << g.num_blocks << " measured GCC="
            << plv::metrics::global_clustering_coefficient(csr) << '\n';

  plv::TextTable table({"ranks", "levels", "modularity", "first-level-s", "TEPS",
                        "records-sent", "MB-sent"});
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    plv::core::ParOptions opts;
    opts.nranks = ranks;
    const auto result = plv::louvain(plv::GraphSource::from_edges(g.edges, p.n), opts);
    const double first_level_s =
        result.levels.empty() ? 0.0 : result.levels.front().seconds;
    const double teps = first_level_s > 0
                            ? static_cast<double>(g.edges.size()) / first_level_s
                            : 0.0;
    table.row()
        .add(ranks)
        .add(result.num_levels())
        .add(result.final_modularity)
        .add(first_level_s)
        .add(teps, 0)
        .add(result.traffic.records_sent)
        .add(static_cast<double>(result.traffic.bytes_sent) / 1e6, 1);
  }
  table.print();
  std::cout << "\nNote: this container is single-core; rank sweeps show the\n"
               "algorithm's communication behavior, not wall-clock speedup.\n";
  return 0;
}
