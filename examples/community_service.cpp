// Streaming community service: the paper argues its dual-hash-table
// representation "can be generalized to a larger class of graph
// algorithms ... where the topology of the graph changes very frequently"
// (Section I-B). This example runs that design as a *service*: one
// plv::Session keeps the rank fleet and the level-0 In_Table resident,
// ingests edge-update batches through Session::apply, and serves
// community queries from immutable epoch-stamped snapshots — while reader
// threads hammer snapshot()/query() concurrently with the in-flight
// applies.
//
//   ./community_service --batches 5 --batch-edges 200 --readers 2
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/louvain.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/options.hpp"
#include "core/session.hpp"
#include "gen/planted.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/similarity.hpp"

int main(int argc, char** argv) {
  plv::Cli cli(argc, argv);
  const int batches = static_cast<int>(cli.get_int("batches", 5));
  const int batch_edges = static_cast<int>(cli.get_int("batch-edges", 200));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const int readers = static_cast<int>(cli.get_int("readers", 2));

  // Start from a clear 8-community structure...
  auto planted = plv::gen::planted_partition(
      {.communities = 8, .community_size = 32, .p_intra = 0.4, .p_inter = 0.005, .seed = 7});
  plv::graph::EdgeList edges = planted.edges;
  const plv::vid_t n = 8 * 32;

  plv::core::ParOptions opts;
  opts.nranks = ranks;
  // Low-latency streaming: incremental frontier re-refine on every batch
  // (StreamingPlan::fast()); swap in StreamingPlan::deterministic() to
  // make every apply bit-identical to a cold run instead.
  opts.streaming = plv::core::StreamingPlan::fast();

  plv::Session session(plv::GraphSource::from_edges(edges, n), opts);
  const auto initial = session.snapshot();
  std::cout << "initial: Q=" << initial->modularity
            << " communities=" << initial->num_communities << '\n';

  // Concurrent readers: snapshot reads never block an in-flight apply.
  // Each reader spins on the latest snapshot, checking that what it sees
  // is internally consistent (epoch monotone, labels sized to the
  // snapshot's own vertex count).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = session.snapshot();
        if (snap->epoch < last_epoch || snap->labels.size() != snap->n_vertices) {
          std::cerr << "reader saw an inconsistent snapshot\n";
          std::abort();
        }
        last_epoch = snap->epoch;
        (void)session.query(static_cast<plv::vid_t>(snap->epoch % snap->n_vertices));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // ...then stream update batches: random cross-community inserts that
  // melt the structure, plus a few removals of earlier insertions —
  // exercising both halves of the retraction/assertion protocol.
  plv::Xoshiro256 rng(99);
  plv::TextTable table({"epoch", "edges", "ins", "del", "Q", "communities",
                        "apply-ms", "incremental", "NMI-vs-initial"});
  plv::graph::EdgeList injected;  // inserts we may later remove
  for (int b = 1; b <= batches; ++b) {
    plv::EdgeDelta delta;
    for (int i = 0; i < batch_edges; ++i) {
      const auto u = static_cast<plv::vid_t>(rng.next_below(n));
      auto v = static_cast<plv::vid_t>(rng.next_below(n));
      while (v == u) v = static_cast<plv::vid_t>(rng.next_below(n));
      delta.inserts.add(u, v, 1.0);
    }
    // Retract ~10% of the previously injected noise (batch 2 onward).
    const std::size_t removals = injected.size() / 10;
    for (std::size_t i = 0; i < removals; ++i) {
      const plv::Edge& e = injected.edges().back();
      delta.removals.add(e.u, e.v, e.w);
      injected.edges().pop_back();
    }
    for (const plv::Edge& e : delta.inserts) injected.add(e.u, e.v, e.w);

    plv::WallTimer t;
    const auto snap = session.apply(delta);
    const double apply_ms = t.seconds() * 1e3;
    table.row()
        .add(snap->epoch)
        .add(injected.size() + edges.size())
        .add(delta.inserts.size())
        .add(delta.removals.size())
        .add(snap->modularity)
        .add(snap->num_communities)
        .add(apply_ms)
        .add(snap->incremental ? "yes" : "no")
        .add(plv::metrics::nmi(snap->labels, initial->labels));
  }
  stop.store(true);
  for (auto& th : pool) th.join();
  table.print();

  std::cout << "\nreaders completed " << reads.load() << " lock-free snapshot reads\n"
            << "\nEach batch patches the resident In_Table in place and re-refines\n"
               "only the disturbed region around the changed edges, so an apply\n"
               "costs a fraction of a cold run (bench/micro_streaming quantifies\n"
               "the gap). Readers keep serving the previous epoch's snapshot\n"
               "throughout — queries never wait on detection.\n";
  session.close();
  return 0;
}
