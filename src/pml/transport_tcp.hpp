// TCP multi-host launcher (implementation in transport_tcp.cpp).
//
// Declared separately so comm.hpp can dispatch Runtime::run to the TCP
// backend without pulling the POSIX/socket machinery into every
// translation unit. The frame protocol itself is the shared
// SocketFrameTransport (transport_socket.hpp); this layer owns the mesh
// establishment: endpoint mapping, listen/connect split, handshake, and
// the two launch modes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace plv::pml {

class Comm;

/// How a TCP run finds its peers. Two modes:
///
///   Loopback self-test fleet (self_rank < 0, hosts empty): the caller
///     process plays the proc-backend role — it binds nranks ephemeral
///     listeners on 127.0.0.1, forks ranks 1..n-1, runs rank 0 itself,
///     and harvests the children. No configuration needed; this is what
///     CI and `PLV_TRANSPORT=tcp` use on one machine.
///
///   Multi-host single rank (self_rank >= 0): this process IS one rank of
///     a fleet whose endpoints are `hosts` (one "host:port" per rank, the
///     same list on every host — index = rank). Rank r binds hosts[r]'s
///     port, accepts connections from ranks > r, connects to ranks < r,
///     and verifies every lane with a handshake frame. The caller (e.g.
///     `plouvain detect --transport tcp --rank R --hosts ...`) launches
///     one such process per host.
struct TcpOptions {
  std::vector<std::string> hosts;  ///< "host:port" per rank; empty = loopback fleet
  int self_rank{-1};               ///< this process's rank, or -1 = loopback fleet
  int connect_timeout_ms{5000};    ///< mesh-establishment deadline (and fail-fast bound)
};

/// Splits a "host:port,host:port,..." list (as taken by --hosts and
/// PLV_HOSTS). Validates shape only — each entry must be non-empty and
/// contain a ':' with a numeric port in [1, 65535]; name resolution
/// happens at connect time. Throws std::invalid_argument on a malformed
/// entry, naming it.
[[nodiscard]] std::vector<std::string> parse_host_list(const std::string& text);

/// Applies the PLV_HOSTS / PLV_RANK environment overrides (if set and
/// non-empty) on top of the configured options — same precedence rule as
/// resolve_transport, so one environment re-targets a whole binary.
[[nodiscard]] TcpOptions resolve_tcp_options(TcpOptions requested);

namespace detail {

/// The TCP handshake: the first 32 bytes on every fresh lane, both
/// directions. The magic is byte-order-asymmetric, so a mixed-endian (or
/// non-plv) peer fails the handshake loudly instead of desyncing the
/// frame stream; the acceptor validates rank/world/version before
/// replying — a rejected connector sees the lane close, never a reply.
/// Public (in detail) so the fault-injection tests can forge frames.
struct TcpHandshake {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t rank;
  std::uint32_t world;
  std::uint8_t reserved[16];
};
static_assert(sizeof(TcpHandshake) == 32);

inline constexpr std::uint32_t kTcpHandshakeMagic = 0x706C5631;  // 'p''L''V''1'
inline constexpr std::uint32_t kTcpProtocolVersion = 1;

/// Runs `body` on every rank of a TCP mesh per `tcp` (see TcpOptions for
/// the two modes). Fail-fast mirrors the proc backend: the first failing
/// rank aborts the fleet; remote failures re-raise on the caller as
/// RemoteRankError carrying the dead rank's endpoint. With `validate`,
/// each rank's transport is wrapped in a ValidatingTransport. In
/// single-rank mode `nranks` must equal hosts.size(); only this process's
/// rank runs here, and the body's exceptions propagate directly.
void run_tcp_ranks(int nranks, const std::function<void(Comm&)>& body, bool validate,
                   const TcpOptions& tcp);

}  // namespace detail
}  // namespace plv::pml
