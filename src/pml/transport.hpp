// The transport seam of the messaging layer.
//
// Comm (comm.hpp) implements the whole public pml API — collectives,
// fine-grained sends, counted-termination quiescence, fail-fast abort —
// once, over the small primitive set below. A Transport binds those
// primitives to a concrete rank substrate:
//
//   ThreadTransport (transport_thread.hpp) — rank = thread. The default.
//     Collectives publish span pointers through shared slots (zero
//     serialization), fine-grained sends hand pooled chunk pointers to the
//     destination's mailbox (zero copy).
//   ProcessTransport (transport_proc.cpp) — rank = forked process.
//     Everything crosses Unix-domain stream sockets as length-prefixed
//     frames; collectives are serialized and recombined in rank order so
//     results stay bit-identical with the thread backend.
//
// Contract highlights every backend must honor:
//   * alltoallv() is synchronizing and delivers peer payloads to the sink
//     in ascending source-rank order — the determinism guarantee all
//     rank-order reductions build on.
//   * send() preserves per-(source, destination) FIFO order, and a chunk
//     handed to send() is owned by the transport afterwards. The
//     quiescence protocol depends on data preceding its end-of-phase
//     marker on each lane. A control chunk may carry a payload (the
//     streaming exchange fuses each lane's marker into its last data
//     chunk): backends must ship the control flag, control_records, and
//     the payload bytes of one chunk together.
//   * barrier()/alltoallv()/wait_incoming() are abort points: once any
//     rank raises the abort flag they wake and (the collectives) throw
//     AbortedError instead of waiting on a dead peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace plv::pml {

class Chunk;  // mailbox.hpp

/// Thrown out of collectives and blocking polls on every surviving rank
/// once a peer has failed. Rank bodies normally let it propagate; the
/// Runtime swallows it and rethrows the originating rank's exception.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("pml: peer rank failed; run aborted") {}
};

/// Failure of a rank running in another process (or on another host).
/// Exception *types* cannot cross a process boundary, so the socket
/// backends re-raise non-local failures as this wrapper carrying the
/// originating rank, its endpoint when the mesh knows one (TCP host:port;
/// empty for anonymous socketpair lanes), and the original what() text.
/// (Rank 0 runs in the calling process and keeps its type.)
struct RemoteRankError : std::runtime_error {
  RemoteRankError(int failed_rank, const std::string& message)
      : RemoteRankError(failed_rank, message, std::string()) {}
  RemoteRankError(int failed_rank, const std::string& message,
                  const std::string& failed_endpoint)
      : std::runtime_error(
            "pml: rank " + std::to_string(failed_rank) +
            (failed_endpoint.empty() ? std::string() : " (" + failed_endpoint + ")") +
            " failed: " + message),
        rank(failed_rank),
        endpoint(failed_endpoint) {}
  int rank;
  std::string endpoint;
};

/// Receiver side of a collective: the transport calls deliver() exactly
/// once per source rank, in ascending rank order, with that rank's payload
/// for this rank. total_hint() (optional to act on) arrives first with the
/// summed payload size, so sinks can reserve exactly.
class CollectiveSink {
 public:
  virtual ~CollectiveSink() = default;
  virtual void total_hint(std::size_t /*bytes*/) {}
  virtual void deliver(int source, std::span<const std::byte> bytes) = 0;
};

/// The primitive set Comm is written against. All methods are called from
/// the owning rank only; thread-safety across ranks is the backend's
/// problem (mailbox CAS for threads, sockets for processes).
class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual int rank() const noexcept = 0;
  [[nodiscard]] virtual int nranks() const noexcept = 0;

  // -- Collective plane ---------------------------------------------------
  /// Synchronizing rendezvous; throws AbortedError if the run is aborted.
  virtual void barrier() = 0;

  /// `outgoing` has nranks() entries; outgoing[d] is this rank's payload
  /// for rank d (spans must stay valid and unmodified until return).
  /// Delivers every peer's payload for this rank via `sink`, ascending by
  /// source rank. Synchronizing; throws AbortedError on abort.
  virtual void alltoallv(std::span<const std::span<const std::byte>> outgoing,
                         CollectiveSink& sink) = 0;

  // -- Fine-grained plane -------------------------------------------------
  /// Chunk nodes come from this rank's pool; see mailbox.hpp for the
  /// zero-copy recycling discipline.
  [[nodiscard]] virtual Chunk* acquire_chunk(std::size_t reserve_bytes) = 0;
  /// Not noexcept at the seam: concrete backends never throw (and declare
  /// their overrides noexcept), but the ValidatingTransport decorator
  /// throws ProtocolError on a double release.
  virtual void release_chunk(Chunk* chunk) = 0;

  /// Queues `chunk` for delivery to rank `dest` (FIFO per source-dest
  /// pair; self-sends allowed). Ownership transfers to the transport at
  /// the call — including when the send throws (an aborted send disposes
  /// of the chunk); callers must drop their pointer first.
  virtual void send(int dest, Chunk* chunk) = 0;

  /// Takes every chunk currently deliverable to this rank, appending to
  /// `out` (ownership transfers to the caller). Non-blocking.
  virtual std::size_t drain(std::vector<Chunk*>& out) = 0;

  /// Blocks until drain() would return something or the run is aborted.
  virtual void wait_incoming() = 0;

  // -- Abort plane --------------------------------------------------------
  virtual void raise_abort() noexcept = 0;
  [[nodiscard]] virtual bool aborted() const noexcept = 0;

  // -- Chunk-pool controls (phase-boundary hygiene) -----------------------
  virtual void set_pool_watermark(std::size_t nodes) noexcept = 0;
  /// Called by Comm at fine-grained phase boundaries. Backends are
  /// noexcept; the ValidatingTransport decorator additionally audits
  /// chunk ownership here and throws ProtocolError on a leak.
  virtual void trim_pool() = 0;
  [[nodiscard]] virtual std::size_t pool_free_count() const noexcept = 0;
};

/// Backend selector, settable per run (core::ParOptions::transport, CLI
/// --transport) and overridable globally via the PLV_TRANSPORT environment
/// variable (resolve_transport).
enum class TransportKind {
  kThread,  ///< thread-per-rank, shared memory (default)
  kProc,    ///< process-per-rank over Unix-domain sockets
  kTcp,     ///< process-per-rank over a TCP mesh (multi-host capable)
};

[[nodiscard]] inline const char* transport_kind_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kProc:
      return "proc";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kThread:
      break;
  }
  return "thread";
}

[[nodiscard]] inline TransportKind parse_transport_kind(std::string_view text) {
  if (text == "thread" || text == "threads") return TransportKind::kThread;
  if (text == "proc" || text == "process" || text == "processes") {
    return TransportKind::kProc;
  }
  if (text == "tcp") return TransportKind::kTcp;
  throw std::invalid_argument("pml: unknown transport '" + std::string(text) +
                              "' (valid: thread, proc, tcp)");
}

/// Applies the PLV_TRANSPORT environment override (if set and non-empty)
/// on top of the configured `requested` backend. The env wins so a whole
/// test binary or bench can be re-run over another transport without
/// touching every call site (the CI proc leg does exactly that).
[[nodiscard]] inline TransportKind resolve_transport(TransportKind requested) {
  const char* env = std::getenv("PLV_TRANSPORT");
  if (env != nullptr && *env != '\0') return parse_transport_kind(env);
  return requested;
}

}  // namespace plv::pml
