// The transport seam of the messaging layer.
//
// Comm (comm.hpp) implements the whole public pml API — collectives,
// fine-grained sends, counted-termination quiescence, fail-fast abort —
// once, over the small primitive set below. A Transport binds those
// primitives to a concrete rank substrate:
//
//   ThreadTransport (transport_thread.hpp) — rank = thread. The default.
//     Collectives publish span pointers through shared slots (zero
//     serialization), fine-grained sends hand pooled chunk pointers to the
//     destination's mailbox (zero copy).
//   ProcessTransport (transport_proc.cpp) — rank = forked process.
//     Everything crosses Unix-domain stream sockets as length-prefixed
//     frames; collectives are serialized and recombined in rank order so
//     results stay bit-identical with the thread backend.
//
// Contract highlights every backend must honor:
//   * alltoallv() is synchronizing and delivers peer payloads to the sink
//     in ascending source-rank order — the determinism guarantee all
//     rank-order reductions build on.
//   * send() preserves per-(source, destination) FIFO order, and a chunk
//     handed to send() is owned by the transport afterwards. The
//     quiescence protocol depends on data preceding its end-of-phase
//     marker on each lane. A control chunk may carry a payload (the
//     streaming exchange fuses each lane's marker into its last data
//     chunk): backends must ship the control flag, control_records, and
//     the payload bytes of one chunk together.
//   * barrier()/alltoallv()/wait_incoming() are abort points: once any
//     rank raises the abort flag they wake and (the collectives) throw
//     AbortedError instead of waiting on a dead peer.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace plv::pml {

class Chunk;  // mailbox.hpp

/// Locality description of a rank fleet: ranks are partitioned into
/// groups of consecutive global ranks, one group per locality tier
/// instance (thread ranks inside a process, processes on a host). Each
/// group's *leader* is its lowest global rank — leader election is
/// deterministic and needs no communication. Because groups are
/// consecutive-rank blocks, ordering by (group, rank_in_group) IS global
/// rank order: hierarchical combines that walk groups ascending and
/// members ascending reproduce the flat rank-order combine bit for bit.
struct Topology {
  int nranks{1};
  int ngroups{1};
  int group{0};          ///< this rank's group index
  int rank_in_group{0};  ///< this rank's position inside its group
  int group_size{1};     ///< size of this rank's own group
  int leader{0};         ///< global rank of this rank's group leader
  /// Global rank of each group's leader, ascending (leaders[g] is also
  /// the first rank of group g, since groups are consecutive blocks).
  std::vector<int> leaders{0};

  [[nodiscard]] bool is_leader() const noexcept { return rank_in_group == 0; }
  /// Every rank its own group: the flat fallback where hierarchical
  /// collectives degenerate to the plain ones.
  [[nodiscard]] bool trivial() const noexcept { return ngroups == nranks; }

  [[nodiscard]] int group_of(int r) const {
    assert(r >= 0 && r < nranks);
    const auto it = std::upper_bound(leaders.begin(), leaders.end(), r);
    return static_cast<int>(it - leaders.begin()) - 1;
  }
  [[nodiscard]] int group_begin(int g) const { return leaders[static_cast<std::size_t>(g)]; }
  [[nodiscard]] int group_count(int g) const {
    const int end = g + 1 < ngroups ? leaders[static_cast<std::size_t>(g) + 1] : nranks;
    return end - leaders[static_cast<std::size_t>(g)];
  }

  /// The trivial topology over n ranks (singleton groups).
  [[nodiscard]] static Topology flat(int n) {
    Topology t;
    t.nranks = n;
    t.ngroups = n;
    t.leaders.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) t.leaders[static_cast<std::size_t>(r)] = r;
    return t;
  }

  /// Consecutive blocks of `ranks_per_group` (the last group may be
  /// ragged), described from rank `self`'s point of view.
  [[nodiscard]] static Topology blocks(int n, int ranks_per_group, int self) {
    assert(ranks_per_group >= 1 && self >= 0 && self < n);
    Topology t;
    t.nranks = n;
    t.ngroups = (n + ranks_per_group - 1) / ranks_per_group;
    t.leaders.clear();
    for (int g = 0; g < t.ngroups; ++g) t.leaders.push_back(g * ranks_per_group);
    t.group = self / ranks_per_group;
    t.rank_in_group = self % ranks_per_group;
    t.leader = t.group * ranks_per_group;
    t.group_size = t.group_count(t.group);
    return t;
  }
};

/// Thrown out of collectives and blocking polls on every surviving rank
/// once a peer has failed. Rank bodies normally let it propagate; the
/// Runtime swallows it and rethrows the originating rank's exception.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("pml: peer rank failed; run aborted") {}
};

/// Failure of a rank running in another process (or on another host).
/// Exception *types* cannot cross a process boundary, so the socket
/// backends re-raise non-local failures as this wrapper carrying the
/// originating rank, its endpoint when the mesh knows one (TCP host:port;
/// empty for anonymous socketpair lanes), and the original what() text.
/// (Rank 0 runs in the calling process and keeps its type.)
struct RemoteRankError : std::runtime_error {
  RemoteRankError(int failed_rank, const std::string& message)
      : RemoteRankError(failed_rank, message, std::string()) {}
  RemoteRankError(int failed_rank, const std::string& message,
                  const std::string& failed_endpoint)
      : std::runtime_error(
            "pml: rank " + std::to_string(failed_rank) +
            (failed_endpoint.empty() ? std::string() : " (" + failed_endpoint + ")") +
            " failed: " + message),
        rank(failed_rank),
        endpoint(failed_endpoint) {}
  int rank;
  std::string endpoint;
};

/// Receiver side of a collective: the transport calls deliver() exactly
/// once per source rank, in ascending rank order, with that rank's payload
/// for this rank. total_hint() (optional to act on) arrives first with the
/// summed payload size, so sinks can reserve exactly.
class CollectiveSink {
 public:
  virtual ~CollectiveSink() = default;
  virtual void total_hint(std::size_t /*bytes*/) {}
  virtual void deliver(int source, std::span<const std::byte> bytes) = 0;
};

/// The primitive set Comm is written against. All methods are called from
/// the owning rank only; thread-safety across ranks is the backend's
/// problem (mailbox CAS for threads, sockets for processes).
class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual int rank() const noexcept = 0;
  [[nodiscard]] virtual int nranks() const noexcept = 0;

  // -- Collective plane ---------------------------------------------------
  /// Synchronizing rendezvous; throws AbortedError if the run is aborted.
  virtual void barrier() = 0;

  /// `outgoing` has nranks() entries; outgoing[d] is this rank's payload
  /// for rank d (spans must stay valid and unmodified until return).
  /// Delivers every peer's payload for this rank via `sink`, ascending by
  /// source rank. Synchronizing; throws AbortedError on abort.
  virtual void alltoallv(std::span<const std::span<const std::byte>> outgoing,
                         CollectiveSink& sink) = 0;

  // -- Fine-grained plane -------------------------------------------------
  /// Chunk nodes come from this rank's pool; see mailbox.hpp for the
  /// zero-copy recycling discipline.
  [[nodiscard]] virtual Chunk* acquire_chunk(std::size_t reserve_bytes) = 0;
  /// Not noexcept at the seam: concrete backends never throw (and declare
  /// their overrides noexcept), but the ValidatingTransport decorator
  /// throws ProtocolError on a double release.
  virtual void release_chunk(Chunk* chunk) = 0;

  /// Queues `chunk` for delivery to rank `dest` (FIFO per source-dest
  /// pair; self-sends allowed). Ownership transfers to the transport at
  /// the call — including when the send throws (an aborted send disposes
  /// of the chunk); callers must drop their pointer first.
  virtual void send(int dest, Chunk* chunk) = 0;

  /// Takes every chunk currently deliverable to this rank, appending to
  /// `out` (ownership transfers to the caller). Non-blocking.
  virtual std::size_t drain(std::vector<Chunk*>& out) = 0;

  /// Blocks until drain() would return something or the run is aborted.
  virtual void wait_incoming() = 0;

  // -- Hierarchical plane (topology-aware backends override) --------------
  /// The fleet's locality description. The default is the trivial
  /// (flat) topology — every rank its own group — under which Comm keeps
  /// using the flat collectives and quiescence protocol unchanged.
  [[nodiscard]] virtual const Topology& topology() const {
    if (static_cast<int>(flat_topology_.nranks) != nranks()) {
      flat_topology_ = Topology::flat(nranks());
    }
    return flat_topology_;
  }

  /// Intra-group alltoallv over the shared-memory tier. `outgoing` has
  /// topology().group_size entries indexed by rank-in-group; delivery is
  /// ascending by *global* source rank, group members only. Synchronizes
  /// the group. The flat default (singleton groups) is a self-delivery.
  virtual void group_alltoallv(std::span<const std::span<const std::byte>> outgoing,
                               CollectiveSink& sink) {
    assert(outgoing.size() == 1);
    sink.total_hint(outgoing[0].size());
    sink.deliver(rank(), outgoing[0]);
  }

  /// Inter-group alltoallv among group leaders only. `outgoing` has
  /// topology().ngroups entries indexed by group; delivery is ascending
  /// by source *group index* (sink's `source` is a group index, not a
  /// rank). Callable from leaders only. With the trivial topology the
  /// group index IS the rank, so the flat default forwards to alltoallv.
  virtual void leader_alltoallv(std::span<const std::span<const std::byte>> outgoing,
                                CollectiveSink& sink) {
    alltoallv(outgoing, sink);
  }

  /// Phase-boundary hook: Comm's hierarchical quiescence protocol closes
  /// exchange epochs by counting (no per-lane markers), so it tells the
  /// transport here when epoch `next_epoch` begins. Backends that track
  /// per-lane epoch state (the ValidatingTransport checker) advance it;
  /// everyone else ignores the call.
  virtual void epoch_advance(std::uint64_t next_epoch) { (void)next_epoch; }

  // -- Abort plane --------------------------------------------------------
  virtual void raise_abort() noexcept = 0;
  [[nodiscard]] virtual bool aborted() const noexcept = 0;

  // -- Chunk-pool controls (phase-boundary hygiene) -----------------------
  virtual void set_pool_watermark(std::size_t nodes) noexcept = 0;
  /// Called by Comm at fine-grained phase boundaries. Backends are
  /// noexcept; the ValidatingTransport decorator additionally audits
  /// chunk ownership here and throws ProtocolError on a leak.
  virtual void trim_pool() = 0;
  [[nodiscard]] virtual std::size_t pool_free_count() const noexcept = 0;

 private:
  /// Lazily-built cache backing the flat topology() default (mutable so
  /// the const accessor can size it on first use; per-rank object, no
  /// cross-thread access).
  mutable Topology flat_topology_{};
};

/// Backend selector, settable per run (core::ParOptions::transport, CLI
/// --transport) and overridable globally via the PLV_TRANSPORT environment
/// variable (resolve_transport).
enum class TransportKind {
  kThread,  ///< thread-per-rank, shared memory (default)
  kProc,    ///< process-per-rank over Unix-domain sockets
  kTcp,     ///< process-per-rank over a TCP mesh (multi-host capable)
  kHybrid,  ///< thread groups nested inside forked socket processes
};

[[nodiscard]] inline const char* transport_kind_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kProc:
      return "proc";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kHybrid:
      return "hybrid";
    case TransportKind::kThread:
      break;
  }
  return "thread";
}

[[nodiscard]] inline TransportKind parse_transport_kind(std::string_view text) {
  if (text == "thread" || text == "threads") return TransportKind::kThread;
  if (text == "proc" || text == "process" || text == "processes") {
    return TransportKind::kProc;
  }
  if (text == "tcp") return TransportKind::kTcp;
  if (text == "hybrid") return TransportKind::kHybrid;
  throw std::invalid_argument("pml: unknown transport '" + std::string(text) +
                              "' (valid: thread, proc, tcp, hybrid)");
}

/// Applies the PLV_TRANSPORT environment override (if set and non-empty)
/// on top of the configured `requested` backend. The env wins so a whole
/// test binary or bench can be re-run over another transport without
/// touching every call site (the CI proc leg does exactly that).
[[nodiscard]] inline TransportKind resolve_transport(TransportKind requested) {
  // Read during single-threaded setup, before the fleet spawns.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("PLV_TRANSPORT");
  if (env != nullptr && *env != '\0') return parse_transport_kind(env);
  return requested;
}

}  // namespace plv::pml
