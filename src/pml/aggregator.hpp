// Per-destination message coalescing.
//
// The paper's runtime achieves scalability on fine-grained graph workloads
// by aggregating tiny messages into network-sized chunks before injection
// (Section IV, refs [27]-[29]). Aggregator reproduces that: callers push
// individual records addressed to a rank; full buffers are handed to the
// mailbox of the destination as one chunk.
#pragma once

#include <cstddef>
#include <vector>

#include "pml/comm.hpp"

namespace plv::pml {

template <typename T>
class Aggregator {
 public:
  /// `capacity` is the per-destination coalescing buffer size in records.
  /// The paper-scale default (4096 records) amortizes per-chunk overhead
  /// while keeping latency low; benches sweep it.
  explicit Aggregator(Comm& comm, std::size_t capacity = 4096)
      : comm_(comm), capacity_(capacity == 0 ? 1 : capacity) {
    buffers_.resize(static_cast<std::size_t>(comm.nranks()));
    for (auto& buf : buffers_) buf.reserve(capacity_);
  }

  /// Queues one record for `dest`, flushing that destination's buffer if full.
  void push(int dest, const T& record) {
    auto& buf = buffers_[static_cast<std::size_t>(dest)];
    buf.push_back(record);
    if (buf.size() >= capacity_) flush(dest);
  }

  /// Sends whatever is queued for `dest`.
  void flush(int dest) {
    auto& buf = buffers_[static_cast<std::size_t>(dest)];
    if (buf.empty()) return;
    comm_.send_chunk(dest, buf.data(), sizeof(T), buf.size());
    buf.clear();
  }

  /// Sends every non-empty buffer. Must be called before the phase's
  /// quiescence drain.
  void flush_all() {
    for (int d = 0; d < comm_.nranks(); ++d) flush(d);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  Comm& comm_;
  std::size_t capacity_;
  std::vector<std::vector<T>> buffers_;
};

}  // namespace plv::pml
