// Per-destination message coalescing.
//
// The paper's runtime achieves scalability on fine-grained graph workloads
// by aggregating tiny messages into network-sized chunks before injection
// (Section IV, refs [27]-[29]). Aggregator reproduces that: callers push
// individual records addressed to a rank, and the records are written
// straight into a pooled Chunk owned by the runtime. A full buffer is
// *handed* (pointer transfer, no copy, no allocation in steady state) to
// the destination mailbox; the receiver releases the chunk back to the
// shared pool, where the next flush picks it up again.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "pml/comm.hpp"
#include "pml/mailbox.hpp"

namespace plv::pml {

/// Default per-destination coalescing capacity (in records) for a given
/// fleet size and record width. Targets 64 KiB chunks — large enough to
/// amortize per-chunk overhead, small enough to stay cache- and
/// latency-friendly — then caps the rank's total buffered footprint
/// (nranks × chunk) at 4 MiB so wide fleets don't balloon, with a floor of
/// 64 records so coalescing never degenerates to per-record sends. For
/// 16-byte records at small rank counts this yields 4096, the historical
/// default the benches sweep around.
[[nodiscard]] constexpr std::size_t auto_aggregator_capacity(
    int nranks, std::size_t record_size) noexcept {
  constexpr std::size_t kTargetChunkBytes = 64ULL * 1024;
  constexpr std::size_t kMaxTotalBytes = 4ULL * 1024 * 1024;
  constexpr std::size_t kMinRecords = 64;
  if (record_size == 0) return kMinRecords;
  const std::size_t ranks = nranks > 0 ? static_cast<std::size_t>(nranks) : 1;
  std::size_t cap = kTargetChunkBytes / record_size;
  const std::size_t total_cap = kMaxTotalBytes / (ranks * record_size);
  if (cap > total_cap) cap = total_cap;
  return cap < kMinRecords ? kMinRecords : cap;
}

template <typename T>
class Aggregator {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// `capacity` is the per-destination coalescing buffer size in records;
  /// 0 (the default) auto-sizes from the fleet size and record width via
  /// auto_aggregator_capacity(). Benches sweep explicit values.
  explicit Aggregator(Comm& comm, std::size_t capacity = 0)
      : comm_(comm),
        capacity_(capacity == 0 ? auto_aggregator_capacity(comm.nranks(), sizeof(T))
                                : capacity),
        chunk_bytes_(capacity_ * sizeof(T)),
        slots_(static_cast<std::size_t>(comm.nranks())) {}

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  ~Aggregator() {
    for (Slot& s : slots_) {
      if (s.chunk != nullptr) comm_.release_chunk(s.chunk);
    }
  }

  /// Queues one record for `dest`, flushing that destination's buffer if
  /// full. Hot path is a bounds-checked memcpy plus a cursor bump into the
  /// destination's pooled chunk.
  void push(int dest, const T& record) {
    assert(dest >= 0 && dest < comm_.nranks());
    Slot& s = slots_[static_cast<std::size_t>(dest)];
    if (s.cur == s.end) refill(s);  // cold: first use, or buffer just shipped
    std::memcpy(s.cur, &record, sizeof(T));
    s.cur += sizeof(T);
    if (s.cur == s.end) flush(dest);
  }

  /// Sends whatever is queued for `dest`.
  void flush(int dest) {
    assert(dest >= 0 && dest < comm_.nranks());
    Slot& s = slots_[static_cast<std::size_t>(dest)];
    if (s.chunk == nullptr) return;
    const auto bytes = static_cast<std::size_t>(s.cur - s.chunk->raw());
    if (bytes == 0) return;
    Chunk* chunk = s.chunk;
    // Clear the slot before handing the chunk over: ownership transfers to
    // the transport at the send_filled call whether or not it throws (a
    // send interrupted by an abort still disposes of the chunk), so the
    // destructor must never see this pointer again.
    s = Slot{};
    chunk->set_size(bytes);
    comm_.send_filled(dest, chunk, bytes / sizeof(T));
  }

  /// Sends every non-empty buffer. Must be called before the phase's
  /// quiescence drain.
  void flush_all() {
    for (int d = 0; d < comm_.nranks(); ++d) flush(d);
  }

  /// Ends the phase toward every destination in a single message each:
  /// the last buffered chunk ships as a fused data+marker
  /// (send_filled_final), and destinations with nothing buffered get a
  /// pure marker — so the subsequent drain_streaming_finalized needs no
  /// marker wave of its own. Nothing may be pushed after this until the
  /// phase completes.
  void flush_all_final() {
    for (int d = 0; d < comm_.nranks(); ++d) {
      Slot& s = slots_[static_cast<std::size_t>(d)];
      const std::size_t bytes =
          s.chunk != nullptr ? static_cast<std::size_t>(s.cur - s.chunk->raw()) : 0;
      if (bytes == 0) {
        if (s.chunk != nullptr) {
          comm_.release_chunk(s.chunk);
          s = Slot{};
        }
        comm_.send_marker(d);
        continue;
      }
      Chunk* chunk = s.chunk;
      s = Slot{};  // ownership transfers below, even on throw
      chunk->set_size(bytes);
      comm_.send_filled_final(d, chunk, bytes / sizeof(T));
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Per-destination write cursor into the chunk being filled.
  struct Slot {
    Chunk* chunk{nullptr};
    std::byte* cur{nullptr};
    std::byte* end{nullptr};
  };

  void refill(Slot& s) {
    s.chunk = comm_.acquire_chunk(chunk_bytes_);
    s.cur = s.chunk->raw();
    s.end = s.cur + chunk_bytes_;
  }

  Comm& comm_;
  std::size_t capacity_;
  std::size_t chunk_bytes_;
  std::vector<Slot> slots_;
};

}  // namespace plv::pml
