// Protocol verifier for the messaging layer: a ValidatingTransport
// decorator that wraps any Transport backend and enforces the frame
// protocol as an explicit per-peer state machine.
//
// The pml frame protocol was specified in prose (comm.hpp, transport.hpp,
// DESIGN.md decision 9/10) and guarded by scattered asserts; this module
// turns it into a machine-checked specification, so a new backend (the
// roadmap's TCP/MPI transport) can be developed against the checker
// instead of tribal knowledge. Per rank, the verifier tracks:
//
//   * one SEND lane per destination and one RECEIVE lane per source, each
//     a tiny state machine over (last finalized epoch, open-phase bytes).
//     Every fine-grained phase toward a remote peer must end with exactly
//     one final marker (a control chunk), data must precede that marker,
//     epochs advance by exactly one per phase, and skew beyond one phase
//     is rejected. The self lane is exempt from the contiguity rule only
//     (exchange_streaming keeps self traffic off the transport, so its
//     epochs may skip), never from ordering.
//   * quiescence record-count conservation per receive lane: when a
//     marker closes a phase, the payload bytes that arrived on that lane
//     during the phase must be consistent with the record count the
//     marker promises (zero iff zero, and an exact record multiple
//     otherwise). The exact typed-count comparison lives in Comm, which
//     knows sizeof(T); it reports through check_quiescence_conservation
//     below — the generalization of the old one-off PLV_PARANOID assert.
//   * chunk-pool ownership: every chunk this rank holds (acquired from
//     the pool or drained from a peer) is ledgered; releasing a chunk
//     twice, sending a chunk the rank does not own, and holding an
//     acquired-but-never-sent chunk across a phase boundary or at
//     goodbye are all violations.
//   * rank-ordered collective participation: alltoallv must deliver
//     exactly one payload per source rank in ascending rank order — the
//     determinism guarantee every rank-order reduction builds on.
//   * goodbye: finalize() closes the machine after a clean rank body;
//     any traffic afterwards is a violation (the seam-level equivalent
//     of the proc backend's send-after-Goodbye).
//
// Violations throw ProtocolError naming the violation kind, the rank,
// the peer lane, and the epoch (phase) of the offending transition.
// Checks relax automatically once the run is aborted: a fleet unwinding
// from a peer failure legitimately leaves phases half-open.
//
// Selection: ParOptions::validate_transport (Debug default: on), the
// PLV_VALIDATE environment variable (overrides the option; "0" disables,
// anything else enables), or PLV_PARANOID=1 — the historical knob that
// promoted the quiescence assert in Release — which now acts as an alias
// enabling full validation, so existing soak scripts keep working.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "pml/mailbox.hpp"
#include "pml/transport.hpp"

namespace plv::pml {

/// Default for ParOptions::validate_transport / Runtime::run: the checker
/// is ON in Debug builds (the whole test suite runs under it) and off in
/// optimized builds, where PLV_VALIDATE=1 / PLV_PARANOID=1 opt in.
#ifdef NDEBUG
inline constexpr bool kValidateTransportDefault = false;
#else
inline constexpr bool kValidateTransportDefault = true;
#endif

/// The violation classes of the frame protocol, one per state-machine
/// transition the verifier rejects. Negative protocol tests assert the
/// exact class (tests/pml_protocol_test.cpp).
enum class ProtocolViolation {
  kTrafficAfterGoodbye,   ///< any transport call after finalize()
  kDataAfterFinalMarker,  ///< data frame in a phase already closed on that lane
  kDuplicateFinalMarker,  ///< second final marker for one (phase, lane)
  kEpochSkew,             ///< lane epoch not contiguous / skew beyond one phase
  kQuiescenceMismatch,    ///< marker record count inconsistent with delivered payload
  kChunkDoubleRelease,    ///< release of a chunk this rank does not own
  kForeignChunk,          ///< send of a chunk this rank does not own, or bad source
  kChunkLeak,             ///< owned chunk neither sent nor released at a boundary
  kCollectiveShape,       ///< alltoallv called with a malformed outgoing vector
  kCollectiveOrder,       ///< sink deliveries not exactly rank 0..P-1 ascending
  kLeaderOnlyCollective,  ///< leader_alltoallv called by a non-leader rank
  kHierarchicalMarker,    ///< per-lane marker on a hierarchical-topology run
};

[[nodiscard]] const char* protocol_violation_name(ProtocolViolation v) noexcept;

/// Thrown by ValidatingTransport (and the folded quiescence check) on a
/// protocol violation. Derives from std::runtime_error so existing
/// catch-alls (and the proc backend's RemoteRankError text forwarding)
/// keep working; `kind` lets tests and tools dispatch on the transition.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ProtocolViolation kind, int rank, int peer, std::uint64_t epoch,
                const std::string& detail);

  [[nodiscard]] ProtocolViolation kind() const noexcept { return kind_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  /// Peer lane of the offending transition; -1 when not lane-specific.
  [[nodiscard]] int peer() const noexcept { return peer_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  ProtocolViolation kind_;
  int rank_;
  int peer_;
  std::uint64_t epoch_;
};

namespace detail {

/// Pure decision function behind resolve_validate, separated so the
/// precedence (PLV_VALIDATE wins over PLV_PARANOID wins over the
/// requested value) is unit-testable without mutating the environment.
[[nodiscard]] inline bool parse_validate_env(const char* validate_env,
                                             const char* paranoid_env,
                                             bool requested) noexcept {
  if (validate_env != nullptr && *validate_env != '\0') {
    return std::string_view(validate_env) != "0";
  }
  if (paranoid_env != nullptr && *paranoid_env != '\0') {
    return std::string_view(paranoid_env) != "0";
  }
  return requested;
}

/// True when the environment alone forces validation on (used by Comm,
/// which has no ParOptions in scope). Read once, like PLV_TRANSPORT.
[[nodiscard]] inline bool validation_forced_by_env() noexcept {
  static const bool enabled =
      // Read once under the static-init guard; no writer races it.
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      parse_validate_env(std::getenv("PLV_VALIDATE"), std::getenv("PLV_PARANOID"),
                         /*requested=*/false);
  return enabled;
}

/// The generalized quiescence record-count conservation check, shared by
/// both of Comm's drain paths (this is the old PLV_PARANOID one-off,
/// folded into the checker module). Throws ProtocolError when enforced;
/// otherwise keeps the historical Debug assert.
void check_quiescence_conservation(bool enforce, int rank, std::uint64_t epoch,
                                   std::uint64_t received, std::uint64_t expected,
                                   const char* transport, bool streaming);

/// Per-source twin of check_quiescence_conservation for the hierarchical
/// protocol: source `source` settled `expected` records toward this rank
/// this phase, and `received` have arrived. Flags over-delivery during
/// the drain and any mismatch at its end — the per-group contribution
/// conservation check (totals matching can mask one source over- and
/// another under-delivering). Throws ProtocolError (kQuiescenceMismatch,
/// peer = source) when enforced; Debug assert otherwise.
void check_source_quiescence_conservation(bool enforce, int rank, std::uint64_t epoch,
                                          int source, std::uint64_t received,
                                          std::uint64_t expected, const char* transport);

/// Open-addressed pointer->tag map for the chunk-ownership ledger
/// (std::unordered_map is banned from src/pml by the repo lint pass, and
/// FlatMap is keyed by 32-bit vertex ids). Linear probing, power-of-two
/// capacity, backward-shift erase; the null pointer is the empty slot.
///
/// Concurrency contract: a ChunkLedger (like every per-peer Lane below)
/// is rank-local — it belongs to one ValidatingTransport, which belongs
/// to one rank's thread, so it is deliberately lock-free and carries no
/// capability annotations. Cross-rank effects reach it only as chunks
/// drained from the rank's own mailbox.
class ChunkLedger {
 public:
  enum class Origin : std::uint8_t { kAcquired, kDrained };

  /// Records ownership; returns false if the chunk is already ledgered.
  bool insert(const Chunk* chunk, Origin origin) {
    if (slots_.empty()) rehash(16);
    if (size_ * 2 >= slots_.size()) rehash(slots_.size() * 2);
    Slot* s = probe(chunk);
    if (s->key != nullptr) return false;
    s->key = chunk;
    s->origin = origin;
    ++size_;
    return true;
  }

  /// Drops ownership; returns false if the chunk is not ledgered.
  bool erase(const Chunk* chunk) noexcept {
    if (slots_.empty()) return false;
    Slot* s = probe(chunk);
    if (s->key == nullptr) return false;
    std::size_t hole = static_cast<std::size_t>(s - slots_.data());
    std::size_t next = (hole + 1) & mask_;
    while (slots_[next].key != nullptr) {
      const std::size_t home = home_of(slots_[next].key);
      // Backward-shift only entries whose probe chain passes the hole.
      const bool wraps = next < home;
      const bool reaches = wraps ? (hole >= home || hole < next) : (hole >= home && hole < next);
      if (reaches) {
        slots_[hole] = slots_[next];
        hole = next;
      }
      next = (next + 1) & mask_;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Number of ledgered chunks with the given origin (leak reporting).
  [[nodiscard]] std::size_t count(Origin origin) const noexcept {
    std::size_t n = 0;
    for (const Slot& s : slots_) {
      if (s.key != nullptr && s.origin == origin) ++n;
    }
    return n;
  }

 private:
  struct Slot {
    const Chunk* key{nullptr};
    Origin origin{Origin::kAcquired};
  };

  [[nodiscard]] std::size_t home_of(const Chunk* key) const noexcept {
    // Fibonacci multiplicative hash of the pointer bits (64-bit golden
    // ratio constant), folded to the table's power-of-two size.
    const auto bits = reinterpret_cast<std::uintptr_t>(key);
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(bits) * 0x9E3779B97F4A7C15ULL) >> 32) &
           mask_;
  }

  [[nodiscard]] Slot* probe(const Chunk* key) noexcept {
    std::size_t idx = home_of(key);
    for (;;) {
      Slot& s = slots_[idx];
      if (s.key == key || s.key == nullptr) return &s;
      idx = (idx + 1) & mask_;
    }
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    for (const Slot& s : old) {
      if (s.key != nullptr) *probe(s.key) = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_{0};
  std::size_t size_{0};
};

}  // namespace detail

/// Applies the PLV_VALIDATE / PLV_PARANOID environment overrides (if set
/// and non-empty) on top of the configured `requested` value, mirroring
/// resolve_transport: the env wins so a whole test binary or soak run can
/// be flipped without touching call sites. Cached on first call.
[[nodiscard]] inline bool resolve_validate(bool requested) noexcept {
  static const bool env_validate = [] {
    // Read once under the static-init guard; no writer races it.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* v = std::getenv("PLV_VALIDATE");
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* p = std::getenv("PLV_PARANOID");
    return (v != nullptr && *v != '\0') || (p != nullptr && *p != '\0');
  }();
  if (!env_validate) return requested;
  return detail::validation_forced_by_env();
}

/// The decorator. Wraps any Transport and checks every seam call against
/// the protocol state machine before forwarding; composes with both the
/// thread and proc backends (it holds only rank-local state, so one
/// instance per rank needs no synchronization). name() forwards the
/// backend's own name — validation is invisible to user-facing transport
/// identity (results, bench JSON stamp it separately).
class ValidatingTransport final : public Transport {
 public:
  explicit ValidatingTransport(Transport& inner);

  [[nodiscard]] const char* name() const noexcept override { return inner_.name(); }
  [[nodiscard]] int rank() const noexcept override { return inner_.rank(); }
  [[nodiscard]] int nranks() const noexcept override { return inner_.nranks(); }

  void barrier() override;
  void alltoallv(std::span<const std::span<const std::byte>> outgoing,
                 CollectiveSink& sink) override;

  // Hierarchical seam (transport.hpp): the checker is topology-transparent
  // — it republishes the inner topology and enforces the two-level
  // collective contract on top of it (group-plane shape and rank order,
  // leaders-only participation on the inter-group plane, and the
  // marker-free epoch discipline of the counted-settlement protocol).
  [[nodiscard]] const Topology& topology() const override { return inner_.topology(); }
  void group_alltoallv(std::span<const std::span<const std::byte>> outgoing,
                       CollectiveSink& sink) override;
  void leader_alltoallv(std::span<const std::span<const std::byte>> outgoing,
                        CollectiveSink& sink) override;
  void epoch_advance(std::uint64_t next_epoch) override;

  [[nodiscard]] Chunk* acquire_chunk(std::size_t reserve_bytes) override;
  void release_chunk(Chunk* chunk) override;
  void send(int dest, Chunk* chunk) override;
  std::size_t drain(std::vector<Chunk*>& out) override;
  void wait_incoming() override;

  void raise_abort() noexcept override { inner_.raise_abort(); }
  [[nodiscard]] bool aborted() const noexcept override { return inner_.aborted(); }

  void set_pool_watermark(std::size_t nodes) noexcept override {
    inner_.set_pool_watermark(nodes);
  }
  void trim_pool() override;
  [[nodiscard]] std::size_t pool_free_count() const noexcept override {
    return inner_.pool_free_count();
  }

  /// Goodbye transition: called by the runtime after the rank body
  /// returned cleanly (and after the Comm destructor released anything it
  /// still held). Runs the end-of-run checks — chunks still owned are
  /// leaks — and closes the machine: any later call is a violation.
  /// Not called on failed ranks; an aborted fleet unwinds mid-phase by
  /// design and is exempt from the goodbye checks.
  void finalize();

 private:
  /// Per-(this rank, peer) directional lane state. marker_epoch is the
  /// last epoch closed by a final marker (-1 before the first phase);
  /// open_epoch is the phase currently in flight on the lane (-1 when
  /// closed) and open_bytes accumulates its payload bytes — both sides of
  /// the byte-level quiescence conservation check.
  struct Lane {
    std::int64_t marker_epoch{-1};
    std::int64_t open_epoch{-1};
    std::uint64_t open_bytes{0};
  };

  /// Cold-path result of one lane-machine step: ok, or the violation to
  /// report (the caller disposes of in-flight chunks before throwing).
  struct Verdict {
    bool ok{true};
    ProtocolViolation kind{ProtocolViolation::kEpochSkew};
    std::string detail;
  };

  /// Advances `lane` by one frame (data or final marker) of `epoch`
  /// carrying `payload_bytes`; mutates the lane only on success. The same
  /// machine runs both directions — `relaxed` lifts the epoch-contiguity
  /// rule for the self lane (exchange_streaming keeps self phases off the
  /// transport, so transported self epochs may legitimately skip).
  [[nodiscard]] Verdict check_lane_step(Lane& lane, bool relaxed, bool is_control,
                                        std::uint64_t control_records,
                                        std::uint64_t epoch, std::size_t payload_bytes,
                                        const char* direction);

  /// Checks relax once the run is aborted: surviving ranks unwind through
  /// half-open phases legitimately.
  [[nodiscard]] bool enforcing() const noexcept { return !closed_ && !inner_.aborted(); }

  void ensure_open(const char* op) const;
  [[noreturn]] void fail(ProtocolViolation kind, int peer, std::uint64_t epoch,
                         const std::string& detail) const;

  /// Hierarchical twin of check_lane_step: the counted-settlement protocol
  /// carries no per-lane markers (a control frame is kHierarchicalMarker —
  /// the two phase-closing mechanisms must never mix on one run), and lane
  /// epochs are validated against the epoch_advance() clock instead of the
  /// marker history (skew still bounded by one phase).
  [[nodiscard]] Verdict check_lane_step_hier(bool is_control, std::uint64_t epoch,
                                             const char* direction) const;

  /// Shared delivery-order harness of the three collective planes: checks
  /// exactly one delivery per expected source, ascending, sources drawn
  /// from [first, first + count) (global ranks on the flat/group planes,
  /// group indices on the leader plane).
  void run_ordered_collective(
      std::span<const std::span<const std::byte>> outgoing, CollectiveSink& sink,
      const char* plane, std::size_t expected_out, int first, int count,
      void (Transport::*op)(std::span<const std::span<const std::byte>>,
                            CollectiveSink&));

  /// Receive-lane state machine step for one drained chunk; disposes of
  /// `undelivered` (this chunk and everything drained after it) back to
  /// the inner pool before throwing so a rejected drain leaks nothing.
  void inspect_arrival(Chunk* chunk, std::span<Chunk* const> undelivered);

  Transport& inner_;
  std::vector<Lane> send_lanes_;
  std::vector<Lane> recv_lanes_;
  detail::ChunkLedger ledger_;
  std::vector<Chunk*> drain_scratch_;
  bool closed_{false};
  // Hierarchical mode (non-trivial inner topology): the fine-grained
  // lanes follow the marker-free settlement discipline, clocked by
  // epoch_advance() instead of per-lane final markers.
  bool hier_{false};
  std::uint64_t hier_epoch_{0};
};

/// Name of the sanitizer baked into this binary, for bench JSON stamping
/// and the harness' refuse-to-publish gate ("none" in plain builds).
[[nodiscard]] constexpr const char* active_sanitizer_name() noexcept {
#if defined(__SANITIZE_THREAD__)
  return "tsan";
#elif defined(__SANITIZE_ADDRESS__)
  return "asan+ubsan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return "tsan";
#elif __has_feature(address_sanitizer)
  return "asan+ubsan";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

}  // namespace plv::pml
