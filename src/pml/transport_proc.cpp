// ProcessTransport: one OS process per rank over Unix-domain sockets.
//
// Topology: rank 0 runs in the calling process (so rank-0 result capture
// into caller-scope variables — the pattern every core entry point uses —
// keeps working); ranks 1..n-1 are forked children. Every pair of ranks
// shares one SOCK_STREAM socketpair, giving the per-(source, destination)
// FIFO lane the quiescence protocol requires. Each child also gets a
// status pipe to ship its error text back to the parent.
//
// The frame protocol itself — wire format, demultiplexing, determinism,
// deadlock freedom, failure detection — lives in transport_socket.hpp
// (SocketFrameTransport), shared with the TCP backend; this file owns
// only what is specific to the forked-socketpair substrate: mesh
// creation, fork/fd hygiene, the status pipes, and child harvesting.
#include "pml/transport_proc.hpp"

#include <stdio_ext.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/errno_util.hpp"
#include "pml/comm.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "pml/transport_socket.hpp"

namespace plv::pml::detail {
namespace {

[[noreturn]] void child_main(int rank, int nranks, const std::function<void(Comm&)>& body,
                             bool validate, const std::vector<std::vector<int>>& mesh,
                             const std::vector<std::array<int, 2>>& status_pipes) {
  // Drop stdio buffers copied from the parent so they are never flushed
  // twice, and neuter SIGPIPE (all socket writes use MSG_NOSIGNAL; the
  // status pipe is covered here).
  __fpurge(stdout);
  __fpurge(stderr);
  ::signal(SIGPIPE, SIG_IGN);
  // Keep only this rank's lane endpoints and status write end.
  for (int a = 0; a < nranks; ++a) {
    for (int b = 0; b < nranks; ++b) {
      if (a != rank && mesh[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] >= 0) {
        ::close(mesh[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
      }
    }
  }
  for (int r = 0; r < nranks; ++r) {
    const auto& sp = status_pipes[static_cast<std::size_t>(r)];
    if (sp[0] >= 0) ::close(sp[0]);
    if (r != rank && sp[1] >= 0) ::close(sp[1]);
  }
  const int status_fd = status_pipes[static_cast<std::size_t>(rank)][1];
  int code = kExitFailed;
  std::string error_text;
  try {
    SocketFrameTransport transport("proc", rank, nranks,
                                   mesh[static_cast<std::size_t>(rank)]);
    code = run_rank_body(transport, body, validate, error_text, nullptr);
  } catch (const std::exception& e) {
    error_text = std::string("transport setup failed: ") + e.what();
  } catch (...) {
    error_text = "transport setup failed";
  }
  if (code == kExitFailed && !error_text.empty()) {
    write_all(status_fd, error_text.data(), error_text.size());
  }
  ::close(status_fd);
  // _exit, not exit: no atexit handlers, no stdio flush — the parent owns
  // those. The transport destructor already closed the lanes (EOF).
  ::_exit(code);
}

}  // namespace

void run_proc_ranks(int nranks, const std::function<void(Comm&)>& body, bool validate) {
  const auto n = static_cast<std::size_t>(nranks);
  if (nranks == 1) {
    // Degenerate fleet: no fork, no sockets — run rank 0 in place so
    // exception types propagate exactly like the thread backend.
    SocketFrameTransport transport("proc", 0, 1, {-1});
    if (validate) {
      ValidatingTransport checked(transport);
      {
        Comm comm(checked);
        body(comm);
      }
      checked.finalize();
    } else {
      Comm comm(transport);
      body(comm);
    }
    transport.finish();
    return;
  }

  // Full mesh of stream socketpairs: mesh[a][b] is rank a's endpoint of
  // the (a, b) lane. All fds are created before the first fork; each
  // process closes everything that is not its own row.
  std::vector<std::vector<int>> mesh(n, std::vector<int>(n, -1));
  std::vector<std::array<int, 2>> status_pipes(n, {-1, -1});
  auto close_all = [&]() noexcept {
    for (auto& row : mesh) {
      for (int& fd : row) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
    for (auto& sp : status_pipes) {
      for (int& fd : sp) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        const int err = errno;
        close_all();
        throw std::runtime_error(std::string("pml: socketpair failed: ") +
                                 plv::errno_str(err));
      }
      mesh[i][j] = sv[0];
      mesh[j][i] = sv[1];
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (::pipe(status_pipes[r].data()) != 0) {
      const int err = errno;
      close_all();
      throw std::runtime_error(std::string("pml: pipe failed: ") + plv::errno_str(err));
    }
  }

  // Flush before forking so children never inherit pending stdio bytes.
  std::fflush(nullptr);
  std::vector<pid_t> pids(n, -1);
  for (int r = 1; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) child_main(r, nranks, body, validate, mesh, status_pipes);
    if (pid < 0) {
      const int err = errno;
      // Closing every fd EOFs the already-spawned children out of their
      // runs (exit code 2); harvest them, then report.
      close_all();
      for (int q = 1; q < r; ++q) {
        int st = 0;
        ::waitpid(pids[static_cast<std::size_t>(q)], &st, 0);
      }
      throw std::runtime_error(std::string("pml: fork failed: ") + plv::errno_str(err));
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Parent keeps only rank 0's lane endpoints and the status read ends.
  for (std::size_t a = 1; a < n; ++a) {
    for (int& fd : mesh[a]) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    ::close(status_pipes[r][1]);
    status_pipes[r][1] = -1;
  }

  // Run rank 0 here, in the caller's address space.
  std::string rank0_error;
  std::exception_ptr rank0_exception;
  int rank0_code = kExitFailed;
  {
    SocketFrameTransport transport("proc", 0, nranks, mesh[0]);
    rank0_code = run_rank_body(transport, body, validate, rank0_error, &rank0_exception);
  }  // destructor closes rank 0's lanes: children see EOF (after Goodbye
     // on a clean run)

  // Harvest: error text first (EOF-delimited), then the exit status.
  std::vector<std::string> child_error(n);
  std::vector<int> child_code(n, kExitClean);
  for (std::size_t r = 1; r < n; ++r) {
    char buf[4096];
    for (;;) {
      const ssize_t k = ::read(status_pipes[r][0], buf, sizeof(buf));
      if (k > 0) {
        child_error[r].append(buf, static_cast<std::size_t>(k));
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      break;
    }
    ::close(status_pipes[r][0]);
    status_pipes[r][0] = -1;
    int st = 0;
    pid_t rc = 0;
    do {
      rc = ::waitpid(pids[r], &st, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      // ECHILD or worse: the child's fate is unknowable — never treat a
      // lost rank as clean.
      child_code[r] = kExitFailed;
      child_error[r] = std::string("waitpid failed: ") + plv::errno_str(errno);
    } else if (WIFEXITED(st)) {
      child_code[r] = WEXITSTATUS(st);
    } else {
      // Signal deaths (and anything else waitpid can report) decode into
      // readable text so fault-injection failures are diagnosable.
      child_code[r] = kExitFailed;
      child_error[r] = describe_wait_status(st);
    }
  }

  // Rank 0's own exception wins (type preserved — it never crossed a
  // process boundary); otherwise the lowest failing child rank reports.
  if (rank0_code == kExitFailed && rank0_exception) {
    std::rethrow_exception(rank0_exception);
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (child_code[r] == kExitFailed) {
      throw RemoteRankError(static_cast<int>(r),
                            child_error[r].empty() ? "unknown failure" : child_error[r]);
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (child_code[r] != kExitClean && child_code[r] != kExitAborted) {
      throw RemoteRankError(static_cast<int>(r), "rank exited with unexpected status " +
                                                     std::to_string(child_code[r]));
    }
  }
  if (rank0_code == kExitAborted ||
      std::any_of(child_code.begin(), child_code.end(),
                  [](int c) { return c == kExitAborted; })) {
    // Every failure was peer-induced with no recorded originator
    // (possible only if a body threw AbortedError itself); still fail.
    throw AbortedError();
  }
}

}  // namespace plv::pml::detail
