// ProcessTransport: one OS process per rank over Unix-domain sockets.
//
// Topology: rank 0 runs in the calling process (so rank-0 result capture
// into caller-scope variables — the pattern every core entry point uses —
// keeps working); ranks 1..n-1 are forked children. Every pair of ranks
// shares one SOCK_STREAM socketpair, giving the per-(source, destination)
// FIFO lane the quiescence protocol requires. Each child also gets a
// status pipe to ship its error text back to the parent.
//
// Wire format: length-prefixed frames, one FrameHeader (fixed 32 bytes,
// host byte order — both ends are forks of one binary) optionally
// followed by a payload.
//
//   Data       payload = chunk bytes; epoch from the header
//   Marker     no payload; end-of-phase control marker (epoch + count)
//   Collective payload = this rank's alltoallv slice for the receiver
//   Abort      no payload; fail-fast broadcast
//   Goodbye    no payload; clean body completion, always the last frame
//
// Demultiplexing: both planes share one socket per peer, and the one-epoch
// phase skew means collective frames can arrive while this rank still
// drains fine-grained traffic (and vice versa). The receive loop therefore
// sorts frames into two queues — chunks (Data/Marker, handed to Comm's
// poll) and per-source collective payload FIFOs — and alltoallv consumes
// the latter *in ascending source order*, which is exactly the rank-order
// combine that makes reductions bit-identical with ThreadTransport.
//
// Determinism: collectives are combined in rank order on every backend,
// chunk handlers are order-insensitive by contract (hash-table merges),
// and the engine's arithmetic never depends on arrival order — so fixed
// seeds give bit-identical labels and modularity across transports
// (tests/transport_equivalence_test).
//
// Deadlock freedom: sockets are non-blocking; a writer that fills a
// kernel buffer parks in poll() watching the destination for POLLOUT and
// *every* peer for POLLIN, draining whatever arrives — so two ranks
// flooding each other always make progress. Abort/EOF wake these waits.
//
// Failure detection: a failing rank broadcasts Abort (best effort) and
// exits without Goodbye; peers treat EOF-without-Goodbye as a failure and
// raise the local abort flag. EOF *after* Goodbye is a clean shutdown and
// ignored — per-lane FIFO guarantees every frame the peer owed us was
// already received before its Goodbye.
#include "pml/transport_proc.hpp"

#include <fcntl.h>
#include <poll.h>
#include <stdio_ext.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "pml/comm.hpp"
#include "pml/mailbox.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"

namespace plv::pml::detail {
namespace {

enum FrameKind : std::uint32_t {
  kFrameData = 1,
  kFrameMarker = 2,
  kFrameCollective = 3,
  kFrameAbort = 4,
  kFrameGoodbye = 5,
};

struct FrameHeader {
  std::uint32_t kind{0};
  std::uint32_t reserved{0};
  std::uint64_t payload_bytes{0};
  std::uint64_t epoch{0};
  std::uint64_t control_records{0};
};
static_assert(sizeof(FrameHeader) == 32);

/// Anything larger than this in a length prefix means a desynced stream
/// (a torn frame from a dying peer); abort instead of allocating.
constexpr std::uint64_t kMaxFramePayload = 1ULL << 40;

/// Child exit codes. kExitAborted marks a peer-induced unwind, which the
/// parent does not treat as the originating failure.
constexpr int kExitClean = 0;
constexpr int kExitFailed = 1;
constexpr int kExitAborted = 2;

class ProcTransport final : public Transport {
 public:
  /// `fds[r]` is this rank's socket to rank r (-1 for self).
  ProcTransport(int rank, int nranks, std::vector<int> fds)
      : rank_(rank),
        nranks_(nranks),
        fds_(std::move(fds)),
        rx_(static_cast<std::size_t>(nranks)),
        pending_collective_(static_cast<std::size_t>(nranks)) {
    assert(static_cast<int>(fds_.size()) == nranks_);
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_ || fds_[static_cast<std::size_t>(r)] < 0) {
        rx_[static_cast<std::size_t>(r)].open = false;
        continue;
      }
      const int fd = fds_[static_cast<std::size_t>(r)];
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      // Best effort: widen the kernel buffers so whole coalesced chunks
      // usually queue in one sendmsg.
      const int kBufBytes = 1 << 20;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kBufBytes, sizeof(kBufBytes));
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kBufBytes, sizeof(kBufBytes));
    }
  }

  ~ProcTransport() override {
    // Chunks stranded by an aborted run go back to the pool, whose
    // destructor frees the whole list (keeps every node death on the
    // pool API; the repo lint flags raw deletes of chunk nodes).
    for (Chunk* c : incoming_) pool_.release(c);
    for (auto& rx : rx_) {
      if (rx.chunk != nullptr) pool_.release(rx.chunk);
    }
    for (int r = 0; r < nranks_; ++r) {
      const int fd = fds_[static_cast<std::size_t>(r)];
      if (r != rank_ && fd >= 0) ::close(fd);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "proc"; }
  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int nranks() const noexcept override { return nranks_; }

  void barrier() override {
    struct NullSink final : CollectiveSink {
      void deliver(int, std::span<const std::byte>) override {}
    } sink;
    empty_spans_.assign(static_cast<std::size_t>(nranks_), {});
    alltoallv(empty_spans_, sink);
  }

  void alltoallv(std::span<const std::span<const std::byte>> outgoing,
                 CollectiveSink& sink) override {
    assert(static_cast<int>(outgoing.size()) == nranks_);
    check_abort();
    for (int d = 0; d < nranks_; ++d) {
      if (d == rank_) continue;
      FrameHeader h;
      h.kind = kFrameCollective;
      h.payload_bytes = outgoing[static_cast<std::size_t>(d)].size();
      write_frame(d, h, outgoing[static_cast<std::size_t>(d)]);
    }
    // Wait for every peer's slice. Frames already buffered (a peer racing
    // one collective ahead) satisfy the wait immediately; per-source FIFO
    // keeps successive collectives matched up.
    for (int src = 0; src < nranks_; ++src) {
      if (src == rank_) continue;
      auto& queue = pending_collective_[static_cast<std::size_t>(src)];
      while (queue.empty()) {
        check_abort();
        const PeerRx& rx = rx_[static_cast<std::size_t>(src)];
        if (!rx.open || rx.goodbye) {
          // The peer can never send the slice we need.
          aborted_ = true;
          throw AbortedError();
        }
        pump(true);
      }
    }
    check_abort();
    std::size_t total = outgoing[static_cast<std::size_t>(rank_)].size();
    for (int src = 0; src < nranks_; ++src) {
      if (src == rank_) continue;
      total += pending_collective_[static_cast<std::size_t>(src)].front().size();
    }
    sink.total_hint(total);
    for (int src = 0; src < nranks_; ++src) {
      if (src == rank_) {
        sink.deliver(src, outgoing[static_cast<std::size_t>(rank_)]);
        continue;
      }
      auto& queue = pending_collective_[static_cast<std::size_t>(src)];
      const std::vector<std::byte>& payload = queue.front();
      sink.deliver(src, {payload.data(), payload.size()});
      queue.pop_front();
    }
  }

  [[nodiscard]] Chunk* acquire_chunk(std::size_t reserve_bytes) override {
    return pool_.acquire(reserve_bytes);
  }
  void release_chunk(Chunk* chunk) noexcept override { pool_.release(chunk); }

  void send(int dest, Chunk* chunk) override {
    if (dest == rank_) {
      incoming_.push_back(chunk);  // self lane: stays in-process, stays FIFO
      return;
    }
    FrameHeader h;
    h.kind = chunk->control ? kFrameMarker : kFrameData;
    h.payload_bytes = chunk->size();
    h.epoch = chunk->epoch;
    h.control_records = chunk->control_records;
    try {
      write_frame(dest, h, {chunk->data(), chunk->size()});
    } catch (...) {
      pool_.release(chunk);
      throw;
    }
    pool_.release(chunk);  // bytes are on the wire; recycle the node
  }

  std::size_t drain(std::vector<Chunk*>& out) override {
    pump(false);
    const std::size_t n = incoming_.size();
    out.insert(out.end(), incoming_.begin(), incoming_.end());
    incoming_.clear();
    return n;
  }

  void wait_incoming() override {
    while (incoming_.empty() && !aborted_) pump(true);
  }

  void raise_abort() noexcept override {
    aborted_ = true;
    FrameHeader h;
    h.kind = kFrameAbort;
    for (int d = 0; d < nranks_; ++d) {
      if (d == rank_ || !rx_[static_cast<std::size_t>(d)].open) continue;
      // Single best-effort push: if the buffer is full or the peer is
      // gone, our EOF (we exit without Goodbye) aborts it instead.
      (void)::send(fds_[static_cast<std::size_t>(d)], &h, sizeof(h),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
    }
  }

  [[nodiscard]] bool aborted() const noexcept override { return aborted_; }

  void set_pool_watermark(std::size_t nodes) noexcept override {
    pool_.set_watermark(nodes);
  }
  void trim_pool() noexcept override { pool_.trim(); }
  [[nodiscard]] std::size_t pool_free_count() const noexcept override {
    return pool_.free_count();
  }

  /// Announces clean completion to every peer (the frame after which this
  /// rank's EOF is not a failure). Deliberately NOT write_frame: a peer
  /// that finished first may already have exited, and its EPIPE must
  /// neither raise the abort flag nor stop the goodbyes still owed to the
  /// remaining peers — otherwise a slow third rank sees an unexplained
  /// EOF and aborts a run that succeeded everywhere.
  void finish() noexcept {
    FrameHeader h;
    h.kind = kFrameGoodbye;
    for (int d = 0; d < nranks_; ++d) {
      if (d == rank_ || !rx_[static_cast<std::size_t>(d)].open) continue;
      const int fd = fds_[static_cast<std::size_t>(d)];
      const auto* p = reinterpret_cast<const std::byte*>(&h);
      std::size_t off = 0;
      while (off < sizeof(FrameHeader)) {
        const ssize_t k =
            ::send(fd, p + off, sizeof(FrameHeader) - off, MSG_NOSIGNAL);
        if (k > 0) {
          off += static_cast<std::size_t>(k);
          continue;
        }
        if (k < 0 && errno == EINTR) continue;
        if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          pollfd pf{fd, POLLOUT, 0};
          int rc = 0;
          do {
            rc = ::poll(&pf, 1, -1);
          } while (rc < 0 && errno == EINTR);
          if (rc < 0) break;
          continue;  // writable, or an error send() will surface
        }
        break;  // peer already gone; its own shutdown state decides the run
      }
    }
  }

 private:
  /// Per-peer receive state: a frame header being assembled, then its
  /// payload streamed into either a pooled chunk (Data/Marker) or a byte
  /// buffer (Collective).
  struct PeerRx {
    std::array<std::byte, sizeof(FrameHeader)> hdr_buf;
    std::size_t hdr_got{0};
    FrameHeader hdr{};
    bool in_payload{false};
    std::size_t payload_got{0};
    Chunk* chunk{nullptr};
    std::vector<std::byte> collective;
    bool open{true};
    bool goodbye{false};
  };

  void check_abort() const {
    if (aborted_) throw AbortedError();
  }

  /// Closes the lane to `r`. EOF without a preceding Goodbye means the
  /// peer died mid-protocol: raise the abort flag.
  void close_peer(int r) noexcept {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    if (!rx.open) return;
    rx.open = false;
    if (rx.chunk != nullptr) pool_.release(rx.chunk);  // half-received frame
    rx.chunk = nullptr;
    ::close(fds_[static_cast<std::size_t>(r)]);
    fds_[static_cast<std::size_t>(r)] = -1;
    if (!rx.goodbye) aborted_ = true;
  }

  /// Non-blocking read pump for one peer: consume whatever the socket
  /// holds, completing as many frames as arrive.
  void pump_peer(int r) {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    const auto fd = [&] { return fds_[static_cast<std::size_t>(r)]; };
    while (rx.open) {
      if (!rx.in_payload) {
        const ssize_t k = ::recv(fd(), rx.hdr_buf.data() + rx.hdr_got,
                                 sizeof(FrameHeader) - rx.hdr_got, 0);
        if (k > 0) {
          rx.hdr_got += static_cast<std::size_t>(k);
          if (rx.hdr_got == sizeof(FrameHeader)) begin_frame(r);
          continue;
        }
        if (k == 0) return close_peer(r);
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return close_peer(r);
      }
      // Payload streaming.
      std::byte* dst = rx.chunk != nullptr ? rx.chunk->raw() : rx.collective.data();
      const std::size_t want =
          static_cast<std::size_t>(rx.hdr.payload_bytes) - rx.payload_got;
      const ssize_t k = ::recv(fd(), dst + rx.payload_got, want, 0);
      if (k > 0) {
        rx.payload_got += static_cast<std::size_t>(k);
        if (rx.payload_got == rx.hdr.payload_bytes) finish_frame(r);
        continue;
      }
      if (k == 0) return close_peer(r);
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return close_peer(r);
    }
  }

  /// Header complete: route by kind, set up the payload destination.
  void begin_frame(int r) {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    std::memcpy(&rx.hdr, rx.hdr_buf.data(), sizeof(FrameHeader));
    rx.hdr_got = 0;
    if (rx.hdr.payload_bytes > kMaxFramePayload) {
      aborted_ = true;  // desynced stream; unrecoverable
      close_peer(r);
      return;
    }
    switch (rx.hdr.kind) {
      case kFrameAbort:
        aborted_ = true;
        return;
      case kFrameGoodbye:
        rx.goodbye = true;
        return;
      case kFrameCollective:
        rx.collective.resize(static_cast<std::size_t>(rx.hdr.payload_bytes));
        break;
      case kFrameData:
      case kFrameMarker:
        rx.chunk = pool_.acquire(static_cast<std::size_t>(rx.hdr.payload_bytes));
        break;
      default:
        aborted_ = true;  // unknown kind: desynced stream
        close_peer(r);
        return;
    }
    rx.payload_got = 0;
    rx.in_payload = true;
    if (rx.hdr.payload_bytes == 0) finish_frame(r);
  }

  /// Payload complete: enqueue the frame for its consumer.
  void finish_frame(int r) {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    if (rx.hdr.kind == kFrameCollective) {
      pending_collective_[static_cast<std::size_t>(r)].push_back(
          std::move(rx.collective));
      rx.collective = {};
    } else {
      Chunk* c = rx.chunk;
      rx.chunk = nullptr;
      c->set_size(static_cast<std::size_t>(rx.hdr.payload_bytes));
      c->source = r;
      c->epoch = rx.hdr.epoch;
      c->control = rx.hdr.kind == kFrameMarker;
      c->control_records = rx.hdr.control_records;
      incoming_.push_back(c);
    }
    rx.in_payload = false;
  }

  /// Polls every open lane and pumps the readable ones. With block=true
  /// parks until something arrives (or a peer hangs up). If no lane is
  /// open and nothing is queued, the run can never progress: abort.
  void pump(bool block) {
    pfds_.clear();
    pfd_ranks_.clear();
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_ || !rx_[static_cast<std::size_t>(r)].open) continue;
      pfds_.push_back({fds_[static_cast<std::size_t>(r)], POLLIN, 0});
      pfd_ranks_.push_back(r);
    }
    if (pfds_.empty()) {
      if (block && incoming_.empty()) aborted_ = true;
      return;
    }
    int rc = 0;
    do {
      rc = ::poll(pfds_.data(), pfds_.size(), block ? -1 : 0);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return;
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
      if ((pfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        pump_peer(pfd_ranks_[i]);
      }
    }
  }

  /// Blocking frame write with a read-draining progress loop (see the
  /// deadlock-freedom note in the file header). Throws AbortedError if
  /// the run aborts or the peer disappears mid-write.
  void write_frame(int dest, const FrameHeader& h, std::span<const std::byte> payload) {
    if (!rx_[static_cast<std::size_t>(dest)].open) {
      aborted_ = true;
      throw AbortedError();
    }
    const auto* hdr_bytes = reinterpret_cast<const std::byte*>(&h);
    const std::size_t total = sizeof(FrameHeader) + payload.size();
    std::size_t off = 0;
    while (off < total) {
      check_abort();
      if (!rx_[static_cast<std::size_t>(dest)].open) {
        aborted_ = true;
        throw AbortedError();
      }
      struct iovec iov[2];
      int iovcnt = 0;
      if (off < sizeof(FrameHeader)) {
        iov[iovcnt].iov_base = const_cast<std::byte*>(hdr_bytes) + off;
        iov[iovcnt].iov_len = sizeof(FrameHeader) - off;
        ++iovcnt;
        if (!payload.empty()) {
          iov[iovcnt].iov_base = const_cast<std::byte*>(payload.data());
          iov[iovcnt].iov_len = payload.size();
          ++iovcnt;
        }
      } else {
        const std::size_t poff = off - sizeof(FrameHeader);
        iov[iovcnt].iov_base = const_cast<std::byte*>(payload.data()) + poff;
        iov[iovcnt].iov_len = payload.size() - poff;
        ++iovcnt;
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
      const ssize_t k = ::sendmsg(fds_[static_cast<std::size_t>(dest)], &mh,
                                  MSG_NOSIGNAL);
      if (k > 0) {
        off += static_cast<std::size_t>(k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_writable(dest);
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      // EPIPE / ECONNRESET: the peer is gone mid-protocol.
      close_peer(dest);
      aborted_ = true;
      throw AbortedError();
    }
  }

  /// Parks until `dest` accepts bytes again, draining every readable peer
  /// meanwhile (including `dest` itself) so opposing floods drain.
  void wait_writable(int dest) {
    pfds_.clear();
    pfd_ranks_.clear();
    pfds_.push_back({fds_[static_cast<std::size_t>(dest)],
                     static_cast<short>(POLLOUT | POLLIN), 0});
    pfd_ranks_.push_back(dest);
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_ || r == dest || !rx_[static_cast<std::size_t>(r)].open) continue;
      pfds_.push_back({fds_[static_cast<std::size_t>(r)], POLLIN, 0});
      pfd_ranks_.push_back(r);
    }
    int rc = 0;
    do {
      rc = ::poll(pfds_.data(), pfds_.size(), -1);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return;
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
      if ((pfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        pump_peer(pfd_ranks_[i]);
      }
    }
  }

  int rank_;
  int nranks_;
  std::vector<int> fds_;
  ChunkPool pool_;  // single-threaded: one process = one rank
  std::vector<PeerRx> rx_;
  std::vector<Chunk*> incoming_;  // completed Data/Marker frames, FIFO per src
  std::vector<std::deque<std::vector<std::byte>>> pending_collective_;
  std::vector<std::span<const std::byte>> empty_spans_;
  std::vector<pollfd> pfds_;      // poll scratch, reused
  std::vector<int> pfd_ranks_;
  bool aborted_{false};
};

/// Writes the whole buffer, best effort (status-pipe path).
void write_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t k = ::write(fd, data + off, len - off);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    return;
  }
}

/// Runs `body` as rank `rank` against an already-wired transport and maps
/// the outcome to an exit code + error text. Shared by parent and child.
int run_rank_body(ProcTransport& transport, const std::function<void(Comm&)>& body,
                  bool validate, std::string& error_text,
                  std::exception_ptr* keep_exception) {
  try {
    if (validate) {
      ValidatingTransport checked(transport);
      {
        Comm comm(checked);
        body(comm);
      }
      // Goodbye checks (chunk leaks, post-goodbye traffic) run before the
      // wire-level Goodbye frame goes out; a ProtocolError here fails the
      // rank exactly like a body exception.
      checked.finalize();
    } else {
      Comm comm(transport);
      body(comm);
    }
    transport.finish();
    return kExitClean;
  } catch (const AbortedError&) {
    transport.raise_abort();  // rebroadcast; the originator reports the cause
    return kExitAborted;
  } catch (const std::exception& e) {
    error_text = e.what();
    if (keep_exception != nullptr) *keep_exception = std::current_exception();
    transport.raise_abort();
    return kExitFailed;
  } catch (...) {
    error_text = "unknown exception";
    if (keep_exception != nullptr) *keep_exception = std::current_exception();
    transport.raise_abort();
    return kExitFailed;
  }
}

[[noreturn]] void child_main(int rank, int nranks, const std::function<void(Comm&)>& body,
                             bool validate, const std::vector<std::vector<int>>& mesh,
                             const std::vector<std::array<int, 2>>& status_pipes) {
  // Drop stdio buffers copied from the parent so they are never flushed
  // twice, and neuter SIGPIPE (all socket writes use MSG_NOSIGNAL; the
  // status pipe is covered here).
  __fpurge(stdout);
  __fpurge(stderr);
  ::signal(SIGPIPE, SIG_IGN);
  // Keep only this rank's lane endpoints and status write end.
  for (int a = 0; a < nranks; ++a) {
    for (int b = 0; b < nranks; ++b) {
      if (a != rank && mesh[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] >= 0) {
        ::close(mesh[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
      }
    }
  }
  for (int r = 0; r < nranks; ++r) {
    const auto& sp = status_pipes[static_cast<std::size_t>(r)];
    if (sp[0] >= 0) ::close(sp[0]);
    if (r != rank && sp[1] >= 0) ::close(sp[1]);
  }
  const int status_fd = status_pipes[static_cast<std::size_t>(rank)][1];
  int code = kExitFailed;
  std::string error_text;
  try {
    ProcTransport transport(rank, nranks, mesh[static_cast<std::size_t>(rank)]);
    code = run_rank_body(transport, body, validate, error_text, nullptr);
  } catch (const std::exception& e) {
    error_text = std::string("transport setup failed: ") + e.what();
  } catch (...) {
    error_text = "transport setup failed";
  }
  if (code == kExitFailed && !error_text.empty()) {
    write_all(status_fd, error_text.data(), error_text.size());
  }
  ::close(status_fd);
  // _exit, not exit: no atexit handlers, no stdio flush — the parent owns
  // those. The transport destructor already closed the lanes (EOF).
  ::_exit(code);
}

}  // namespace

void run_proc_ranks(int nranks, const std::function<void(Comm&)>& body, bool validate) {
  const auto n = static_cast<std::size_t>(nranks);
  if (nranks == 1) {
    // Degenerate fleet: no fork, no sockets — run rank 0 in place so
    // exception types propagate exactly like the thread backend.
    ProcTransport transport(0, 1, {-1});
    if (validate) {
      ValidatingTransport checked(transport);
      {
        Comm comm(checked);
        body(comm);
      }
      checked.finalize();
    } else {
      Comm comm(transport);
      body(comm);
    }
    transport.finish();
    return;
  }

  // Full mesh of stream socketpairs: mesh[a][b] is rank a's endpoint of
  // the (a, b) lane. All fds are created before the first fork; each
  // process closes everything that is not its own row.
  std::vector<std::vector<int>> mesh(n, std::vector<int>(n, -1));
  std::vector<std::array<int, 2>> status_pipes(n, {-1, -1});
  auto close_all = [&]() noexcept {
    for (auto& row : mesh) {
      for (int& fd : row) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
    for (auto& sp : status_pipes) {
      for (int& fd : sp) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        const int err = errno;
        close_all();
        throw std::runtime_error(std::string("pml: socketpair failed: ") +
                                 std::strerror(err));
      }
      mesh[i][j] = sv[0];
      mesh[j][i] = sv[1];
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (::pipe(status_pipes[r].data()) != 0) {
      const int err = errno;
      close_all();
      throw std::runtime_error(std::string("pml: pipe failed: ") + std::strerror(err));
    }
  }

  // Flush before forking so children never inherit pending stdio bytes.
  std::fflush(nullptr);
  std::vector<pid_t> pids(n, -1);
  for (int r = 1; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) child_main(r, nranks, body, validate, mesh, status_pipes);
    if (pid < 0) {
      const int err = errno;
      // Closing every fd EOFs the already-spawned children out of their
      // runs (exit code 2); harvest them, then report.
      close_all();
      for (int q = 1; q < r; ++q) {
        int st = 0;
        ::waitpid(pids[static_cast<std::size_t>(q)], &st, 0);
      }
      throw std::runtime_error(std::string("pml: fork failed: ") + std::strerror(err));
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Parent keeps only rank 0's lane endpoints and the status read ends.
  for (std::size_t a = 1; a < n; ++a) {
    for (int& fd : mesh[a]) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    ::close(status_pipes[r][1]);
    status_pipes[r][1] = -1;
  }

  // Run rank 0 here, in the caller's address space.
  std::string rank0_error;
  std::exception_ptr rank0_exception;
  int rank0_code = kExitFailed;
  {
    ProcTransport transport(0, nranks, mesh[0]);
    rank0_code = run_rank_body(transport, body, validate, rank0_error, &rank0_exception);
  }  // destructor closes rank 0's lanes: children see EOF (after Goodbye
     // on a clean run)

  // Harvest: error text first (EOF-delimited), then the exit status.
  std::vector<std::string> child_error(n);
  std::vector<int> child_code(n, kExitClean);
  for (std::size_t r = 1; r < n; ++r) {
    char buf[4096];
    for (;;) {
      const ssize_t k = ::read(status_pipes[r][0], buf, sizeof(buf));
      if (k > 0) {
        child_error[r].append(buf, static_cast<std::size_t>(k));
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      break;
    }
    ::close(status_pipes[r][0]);
    status_pipes[r][0] = -1;
    int st = 0;
    pid_t rc = 0;
    do {
      rc = ::waitpid(pids[r], &st, 0);
    } while (rc < 0 && errno == EINTR);
    if (WIFEXITED(st)) {
      child_code[r] = WEXITSTATUS(st);
    } else if (WIFSIGNALED(st)) {
      child_code[r] = kExitFailed;
      child_error[r] = std::string("killed by signal ") + std::to_string(WTERMSIG(st));
    }
  }

  // Rank 0's own exception wins (type preserved — it never crossed a
  // process boundary); otherwise the lowest failing child rank reports.
  if (rank0_code == kExitFailed && rank0_exception) {
    std::rethrow_exception(rank0_exception);
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (child_code[r] == kExitFailed) {
      throw RemoteRankError(static_cast<int>(r),
                            child_error[r].empty() ? "unknown failure" : child_error[r]);
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (child_code[r] != kExitClean && child_code[r] != kExitAborted) {
      throw RemoteRankError(static_cast<int>(r), "rank exited with unexpected status " +
                                                     std::to_string(child_code[r]));
    }
  }
  if (rank0_code == kExitAborted ||
      std::any_of(child_code.begin(), child_code.end(),
                  [](int c) { return c == kExitAborted; })) {
    // Every failure was peer-induced with no recorded originator
    // (possible only if a body threw AbortedError itself); still fail.
    throw AbortedError();
  }
}

}  // namespace plv::pml::detail
