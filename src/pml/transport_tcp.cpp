// TcpTransport: the pml frame protocol over a full mesh of TCP sockets.
//
// The frame protocol (wire format, demultiplexing, determinism, deadlock
// freedom, goodbye/abort discipline) is the shared SocketFrameTransport
// in transport_socket.hpp — identical to the proc backend. This file owns
// what TCP adds on top:
//
//   Endpoint mapping. A run is described by one host list, "host:port"
//   per rank, the same list on every host; a rank's index in the list IS
//   its identity. No discovery protocol, no coordinator — determinism by
//   configuration.
//
//   Listen/connect split. Rank r binds hosts[r]'s port and listens with a
//   backlog that covers the fleet, then *connects* to every rank below it
//   and *accepts* from every rank above it. Lower ranks connect to nobody
//   higher, so the wait chains terminate at rank 0 and establishment
//   cannot cycle; connect retries (until connect_timeout_ms) absorb ranks
//   arriving in any order.
//
//   Handshake. The first 32 bytes on every fresh lane, both directions:
//   magic (byte-order-asymmetric, so a mixed-endian or non-plv peer fails
//   loudly instead of desyncing the frame stream), protocol version, the
//   sender's rank, and its world size. The acceptor validates before
//   replying — a rejected connector sees the lane close, not a reply.
//
//   Failure deadline. Sockets carry SO_KEEPALIVE (idle 2 s / interval 1 s
//   / 3 probes) and, where available, TCP_USER_TIMEOUT = connect_timeout_ms,
//   so a vanished host surfaces as a socket error that wakes the poll
//   loops within the 5 s fail-fast deadline — on loopback and live hosts
//   the RST/EOF arrives immediately. ECONNRESET/EPIPE/ETIMEDOUT all land
//   in SocketFrameTransport's close-without-goodbye path, which records
//   the dead peer's endpoint for the RemoteRankError survivors throw.
//
//   Two launch modes (TcpOptions): the multi-host single-rank mode used
//   by real fleets, and a loopback self-test fleet (fork + ephemeral
//   ports, proc-style harvest) so CI exercises the TCP path on one
//   machine with zero configuration.
#include "pml/transport_tcp.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdio_ext.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/errno_util.hpp"
#include "pml/comm.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "pml/transport_socket.hpp"

namespace plv::pml {
namespace {

using detail::TcpHandshake;
using detail::kTcpHandshakeMagic;
using detail::kTcpProtocolVersion;

/// A handshake frame announcing this rank.
[[nodiscard]] TcpHandshake make_handshake(int rank, int nranks) {
  TcpHandshake hs{};
  hs.magic = kTcpHandshakeMagic;
  hs.version = kTcpProtocolVersion;
  hs.rank = static_cast<std::uint32_t>(rank);
  hs.world = static_cast<std::uint32_t>(nranks);
  return hs;
}

[[nodiscard]] std::int64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

struct Endpoint {
  std::string host;
  std::string port;
};

/// Splits one validated "host:port" entry (validation happened in
/// parse_host_list / ParOptions::validate; this only re-splits).
[[nodiscard]] Endpoint split_endpoint(const std::string& entry) {
  const std::size_t colon = entry.rfind(':');
  return {entry.substr(0, colon), entry.substr(colon + 1)};
}

/// Per-lane socket tuning: low latency for the fine-grained plane, and
/// the keepalive/user-timeout bounds that turn a vanished host into a
/// socket error within the fail-fast deadline.
void tune_socket(int fd, int timeout_ms) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
  int idle = 2, intvl = 1, cnt = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &intvl, sizeof(intvl));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &cnt, sizeof(cnt));
#ifdef TCP_USER_TIMEOUT
  unsigned int ut = static_cast<unsigned int>(timeout_ms);
  ::setsockopt(fd, IPPROTO_TCP, TCP_USER_TIMEOUT, &ut, sizeof(ut));
#endif
}

/// Sends the whole buffer before `deadline_ms`; false on peer loss or
/// deadline. The fd may be non-blocking.
[[nodiscard]] bool send_all_deadline(int fd, const void* buf, std::size_t len,
                                     std::int64_t deadline_ms) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t k = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const std::int64_t left = deadline_ms - now_ms();
      if (left <= 0) return false;
      pollfd pf{fd, POLLOUT, 0};
      if (::poll(&pf, 1, static_cast<int>(left)) < 0 && errno != EINTR) return false;
      continue;
    }
    return false;
  }
  return true;
}

/// Receives exactly `len` bytes before `deadline_ms`; on failure fills
/// `err` ("connection closed", "recv failed: ...", "timed out").
[[nodiscard]] bool recv_all_deadline(int fd, void* buf, std::size_t len,
                                     std::int64_t deadline_ms, std::string& err) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t off = 0;
  while (off < len) {
    const std::int64_t left = deadline_ms - now_ms();
    if (left <= 0) {
      err = "timed out";
      return false;
    }
    pollfd pf{fd, POLLIN, 0};
    const int rc = ::poll(&pf, 1, static_cast<int>(left));
    if (rc < 0) {
      if (errno == EINTR) continue;
      err = std::string("poll failed: ") + plv::errno_str(errno);
      return false;
    }
    if (rc == 0) {
      err = "timed out";
      return false;
    }
    const ssize_t k = ::recv(fd, p + off, len - off, 0);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) {
      err = "connection closed";
      return false;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    err = std::string("recv failed: ") + plv::errno_str(errno);
    return false;
  }
  return true;
}

/// Validates a received handshake against this rank's expectations.
/// `expect_rank` < 0 means "any rank above `self` is acceptable" (the
/// accept side learns the peer's rank from the frame).
void check_handshake(const TcpHandshake& hs, int self, int nranks, int expect_rank,
                     const std::string& endpoint) {
  const int peer = expect_rank >= 0 ? expect_rank : static_cast<int>(hs.rank);
  auto fail = [&](const std::string& what) {
    throw RemoteRankError(peer, "tcp handshake failed: " + what, endpoint);
  };
  if (hs.magic != kTcpHandshakeMagic) {
    fail("bad magic 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", hs.magic);
      return std::string(buf);
    }() + " (not a plv rank, or a different-endianness build)");
  }
  if (hs.version != kTcpProtocolVersion) {
    fail("protocol version mismatch: peer speaks version " +
         std::to_string(hs.version) + ", this build speaks " +
         std::to_string(kTcpProtocolVersion));
  }
  if (static_cast<int>(hs.world) != nranks) {
    fail("world-size mismatch: peer was launched with " + std::to_string(hs.world) +
         " ranks, this rank with " + std::to_string(nranks));
  }
  if (expect_rank >= 0 && static_cast<int>(hs.rank) != expect_rank) {
    fail("endpoint maps to rank " + std::to_string(expect_rank) +
         " but the peer there claims rank " + std::to_string(hs.rank) +
         " (host lists disagree?)");
  }
  if (expect_rank < 0 &&
      (static_cast<int>(hs.rank) <= self || static_cast<int>(hs.rank) >= nranks)) {
    fail("peer claims rank " + std::to_string(hs.rank) +
         ", not in (" + std::to_string(self) + ", " + std::to_string(nranks) +
         ") as the listen/connect split requires");
  }
}

/// Binds a listening socket. `port` 0 means an ephemeral port (loopback
/// fleet); `*bound_port` receives the actual port. Binds the wildcard
/// address unless `loopback_only`.
[[nodiscard]] int make_listener(std::uint16_t port, bool loopback_only, int backlog,
                                std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("pml: tcp socket failed: ") +
                             plv::errno_str(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("pml: tcp bind/listen on port " + std::to_string(port) +
                             " failed: " + plv::errno_str(err));
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t alen = sizeof(actual);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &alen);
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

/// Connects to `endpoint`, retrying (listener may not be up yet) until
/// `deadline_ms`. Throws RemoteRankError naming `peer` on timeout.
[[nodiscard]] int connect_with_retry(int peer, const std::string& endpoint,
                                     std::int64_t deadline_ms, int timeout_ms) {
  const Endpoint ep = split_endpoint(endpoint);
  std::string last_error = "timed out";
  while (now_ms() < deadline_ms) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int gai = ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
    if (gai != 0) {
      // Name resolution can be transiently down while a fleet boots;
      // retry it like a refused connect.
      // gai_strerror returns pointers into static const tables on
      // glibc; no shared mutable buffer is involved.
      // NOLINTNEXTLINE(concurrency-mt-unsafe)
      last_error = std::string("getaddrinfo: ") + ::gai_strerror(gai);
    } else {
      for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                                ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
          ::freeaddrinfo(res);
          return fd;
        }
        if (errno == EINPROGRESS) {
          const std::int64_t left = deadline_ms - now_ms();
          pollfd pf{fd, POLLOUT, 0};
          if (left > 0 && ::poll(&pf, 1, static_cast<int>(left)) == 1) {
            int soerr = 0;
            socklen_t slen = sizeof(soerr);
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen);
            if (soerr == 0) {
              ::freeaddrinfo(res);
              return fd;
            }
            last_error = std::string("connect: ") + plv::errno_str(soerr);
          }
        } else {
          last_error = std::string("connect: ") + plv::errno_str(errno);
        }
        ::close(fd);
      }
      ::freeaddrinfo(res);
    }
    // Refused/unreachable: the listener may simply not be up yet.
    const timespec nap{0, 50 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
  }
  throw RemoteRankError(peer,
                        "tcp connect timed out after " + std::to_string(timeout_ms) +
                            " ms (" + last_error + "; listener never came up?)",
                        endpoint);
}

/// Establishes this rank's lanes: connect to every rank below, accept
/// from every rank above, handshake on each. Returns fds indexed by rank
/// (-1 for self). Closes `listen_fd` when the mesh is complete. Throws
/// RemoteRankError (naming the endpoint) on any lane that cannot be
/// brought up within `timeout_ms`.
[[nodiscard]] std::vector<int> establish_mesh(int rank, int nranks,
                                              const std::vector<std::string>& hosts,
                                              int listen_fd, int timeout_ms) {
  const std::int64_t deadline = now_ms() + timeout_ms;
  std::vector<int> fds(static_cast<std::size_t>(nranks), -1);
  auto close_partial = [&]() noexcept {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    ::close(listen_fd);
  };
  try {
    const TcpHandshake mine = make_handshake(rank, nranks);
    // Connect side: lower ranks, ascending (their accept order is free).
    for (int r = 0; r < rank; ++r) {
      const std::string& endpoint = hosts[static_cast<std::size_t>(r)];
      const int fd = connect_with_retry(r, endpoint, deadline, timeout_ms);
      tune_socket(fd, timeout_ms);
      std::string err;
      TcpHandshake reply{};
      if (!send_all_deadline(fd, &mine, sizeof(mine), deadline) ||
          !recv_all_deadline(fd, &reply, sizeof(reply), deadline, err)) {
        ::close(fd);
        throw RemoteRankError(
            r, "tcp handshake failed: " + (err.empty() ? "connection lost" : err) +
                   " (rejected by the acceptor?)", endpoint);
      }
      check_handshake(reply, rank, nranks, r, endpoint);
      fds[static_cast<std::size_t>(r)] = fd;
    }
    // Accept side: higher ranks, in whatever order they arrive.
    for (int expected = nranks - 1 - rank; expected > 0; --expected) {
      const std::int64_t left = deadline - now_ms();
      pollfd pf{listen_fd, POLLIN, 0};
      int rc = 0;
      do {
        rc = ::poll(&pf, 1, static_cast<int>(std::max<std::int64_t>(left, 0)));
      } while (rc < 0 && errno == EINTR);
      if (rc <= 0) {
        throw std::runtime_error(
            "pml: tcp rank " + std::to_string(rank) + " timed out after " +
            std::to_string(timeout_ms) + " ms waiting for " +
            std::to_string(expected) + " higher rank(s) to connect");
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) {
          ++expected;  // not a lane; keep waiting
          continue;
        }
        throw std::runtime_error(std::string("pml: tcp accept failed: ") +
                                 plv::errno_str(errno));
      }
      tune_socket(fd, timeout_ms);
      std::string err;
      TcpHandshake theirs{};
      if (!recv_all_deadline(fd, &theirs, sizeof(theirs), deadline, err)) {
        ::close(fd);
        throw std::runtime_error("pml: tcp handshake failed on an accepted connection: " +
                                 err);
      }
      // Validate before replying: a rejected connector sees the lane
      // close, never a reply.
      check_handshake(theirs, rank, nranks, -1, "accepted connection");
      const int peer = static_cast<int>(theirs.rank);
      if (fds[static_cast<std::size_t>(peer)] >= 0) {
        ::close(fd);
        throw std::runtime_error("pml: tcp rank " + std::to_string(peer) +
                                 " connected twice (duplicate --rank in the fleet?)");
      }
      if (!send_all_deadline(fd, &mine, sizeof(mine), deadline)) {
        ::close(fd);
        throw RemoteRankError(peer, "tcp handshake reply failed",
                              hosts[static_cast<std::size_t>(peer)]);
      }
      fds[static_cast<std::size_t>(peer)] = fd;
    }
  } catch (...) {
    close_partial();
    throw;
  }
  ::close(listen_fd);
  return fds;
}

using detail::SocketFrameTransport;
using detail::describe_wait_status;
using detail::kExitAborted;
using detail::kExitClean;
using detail::kExitFailed;
using detail::run_rank_body;
using detail::write_all;

/// One rank of a multi-host fleet, running in the calling process: bind,
/// mesh, body. Exceptions propagate to the caller with their type; a peer
/// observed dying on the wire is re-raised as RemoteRankError carrying
/// its endpoint (run_rank_body's report_peer_failure path).
void run_tcp_single_rank(int nranks, const std::function<void(Comm&)>& body,
                         bool validate, const TcpOptions& opt) {
  const int rank = opt.self_rank;
  const Endpoint self_ep = split_endpoint(opt.hosts[static_cast<std::size_t>(rank)]);
  const auto port = static_cast<std::uint16_t>(std::stoi(self_ep.port));
  const int listen_fd =
      make_listener(port, /*loopback_only=*/false, nranks + 1, nullptr);
  std::vector<int> fds =
      establish_mesh(rank, nranks, opt.hosts, listen_fd, opt.connect_timeout_ms);
  SocketFrameTransport transport("tcp", rank, nranks, std::move(fds), opt.hosts);
  std::string error_text;
  std::exception_ptr exception;
  const int code = run_rank_body(transport, body, validate, error_text, &exception,
                                 /*report_peer_failure=*/true);
  if (code == kExitFailed && exception) std::rethrow_exception(exception);
  if (code == kExitAborted) throw AbortedError();
}

/// The loopback self-test fleet: proc-backend topology (rank 0 in the
/// caller, forked children, status pipes, waitpid harvest) with TCP
/// loopback lanes instead of socketpairs. Listeners are bound on
/// ephemeral ports *before* the first fork, so the host list is complete
/// and race-free when the children start connecting.
void run_tcp_loopback_fleet(int nranks, const std::function<void(Comm&)>& body,
                            bool validate, const TcpOptions& opt) {
  const auto n = static_cast<std::size_t>(nranks);
  const int timeout_ms = opt.connect_timeout_ms;
  if (nranks == 1) {
    SocketFrameTransport transport("tcp", 0, 1, {-1});
    if (validate) {
      ValidatingTransport checked(transport);
      {
        Comm comm(checked);
        body(comm);
      }
      checked.finalize();
    } else {
      Comm comm(transport);
      body(comm);
    }
    transport.finish();
    return;
  }

  std::vector<int> listeners(n, -1);
  std::vector<std::string> hosts(n);
  std::vector<std::array<int, 2>> status_pipes(n, {-1, -1});
  auto close_all = [&]() noexcept {
    for (int& fd : listeners) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    for (auto& sp : status_pipes) {
      for (int& fd : sp) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
  };
  try {
    for (std::size_t r = 0; r < n; ++r) {
      std::uint16_t bound = 0;
      listeners[r] = make_listener(0, /*loopback_only=*/true, nranks + 1, &bound);
      hosts[r] = "127.0.0.1:" + std::to_string(bound);
    }
    for (std::size_t r = 1; r < n; ++r) {
      if (::pipe(status_pipes[r].data()) != 0) {
        throw std::runtime_error(std::string("pml: pipe failed: ") +
                                 plv::errno_str(errno));
      }
    }
  } catch (...) {
    close_all();
    throw;
  }

  std::fflush(nullptr);
  std::vector<pid_t> pids(n, -1);
  for (int r = 1; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: one TCP rank. Same stdio/fd hygiene as the proc backend.
      __fpurge(stdout);
      __fpurge(stderr);
      ::signal(SIGPIPE, SIG_IGN);
      for (int q = 0; q < nranks; ++q) {
        if (q != r && listeners[static_cast<std::size_t>(q)] >= 0) {
          ::close(listeners[static_cast<std::size_t>(q)]);
        }
        const auto& sp = status_pipes[static_cast<std::size_t>(q)];
        if (sp[0] >= 0) ::close(sp[0]);
        if (q != r && sp[1] >= 0) ::close(sp[1]);
      }
      const int status_fd = status_pipes[static_cast<std::size_t>(r)][1];
      int code = kExitFailed;
      std::string error_text;
      try {
        std::vector<int> fds = establish_mesh(
            r, nranks, hosts, listeners[static_cast<std::size_t>(r)], timeout_ms);
        SocketFrameTransport transport("tcp", r, nranks, std::move(fds), hosts);
        code = run_rank_body(transport, body, validate, error_text, nullptr);
      } catch (const std::exception& e) {
        error_text = std::string("transport setup failed: ") + e.what();
      } catch (...) {
        error_text = "transport setup failed";
      }
      if (code == kExitFailed && !error_text.empty()) {
        write_all(status_fd, error_text.data(), error_text.size());
      }
      ::close(status_fd);
      ::_exit(code);
    }
    if (pid < 0) {
      const int err = errno;
      close_all();
      for (int q = 1; q < r; ++q) {
        int st = 0;
        ::waitpid(pids[static_cast<std::size_t>(q)], &st, 0);
      }
      throw std::runtime_error(std::string("pml: fork failed: ") + plv::errno_str(err));
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  for (std::size_t r = 1; r < n; ++r) {
    ::close(listeners[r]);
    listeners[r] = -1;
    ::close(status_pipes[r][1]);
    status_pipes[r][1] = -1;
  }

  // Rank 0 here, in the caller's address space.
  std::string rank0_error;
  std::exception_ptr rank0_exception;
  int rank0_code = kExitFailed;
  try {
    std::vector<int> fds = establish_mesh(0, nranks, hosts, listeners[0], timeout_ms);
    listeners[0] = -1;  // establish_mesh closed it
    SocketFrameTransport transport("tcp", 0, nranks, std::move(fds), hosts);
    rank0_code = run_rank_body(transport, body, validate, rank0_error, &rank0_exception);
  } catch (...) {
    listeners[0] = -1;
    rank0_exception = std::current_exception();
    rank0_code = kExitFailed;
  }

  // Harvest, exactly like the proc backend — but RemoteRankError also
  // names the dead rank's loopback endpoint.
  std::vector<std::string> child_error(n);
  std::vector<int> child_code(n, kExitClean);
  for (std::size_t r = 1; r < n; ++r) {
    char buf[4096];
    for (;;) {
      const ssize_t k = ::read(status_pipes[r][0], buf, sizeof(buf));
      if (k > 0) {
        child_error[r].append(buf, static_cast<std::size_t>(k));
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      break;
    }
    ::close(status_pipes[r][0]);
    status_pipes[r][0] = -1;
    int st = 0;
    pid_t rc = 0;
    do {
      rc = ::waitpid(pids[r], &st, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      child_code[r] = kExitFailed;
      child_error[r] = std::string("waitpid failed: ") + plv::errno_str(errno);
    } else if (WIFEXITED(st)) {
      child_code[r] = WEXITSTATUS(st);
    } else {
      child_code[r] = kExitFailed;
      child_error[r] = describe_wait_status(st);
    }
  }

  if (rank0_code == kExitFailed && rank0_exception) {
    std::rethrow_exception(rank0_exception);
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (child_code[r] == kExitFailed) {
      throw RemoteRankError(static_cast<int>(r),
                            child_error[r].empty() ? "unknown failure" : child_error[r],
                            hosts[r]);
    }
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (child_code[r] != kExitClean && child_code[r] != kExitAborted) {
      throw RemoteRankError(static_cast<int>(r),
                            "rank exited with unexpected status " +
                                std::to_string(child_code[r]),
                            hosts[r]);
    }
  }
  if (rank0_code == kExitAborted ||
      std::any_of(child_code.begin(), child_code.end(),
                  [](int c) { return c == kExitAborted; })) {
    throw AbortedError();
  }
}

}  // namespace

std::vector<std::string> parse_host_list(const std::string& text) {
  std::vector<std::string> hosts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    std::string entry = text.substr(start, end - start);
    // Trim surrounding whitespace.
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(entry.front()))) {
      entry.erase(entry.begin());
    }
    while (!entry.empty() && std::isspace(static_cast<unsigned char>(entry.back()))) {
      entry.pop_back();
    }
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("pml: bad host list entry " +
                                  std::to_string(hosts.size()) + " ('" + entry +
                                  "'): " + why + " (expected host:port)");
    };
    if (entry.empty()) fail("empty entry");
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0) fail("missing host or ':'");
    const std::string port = entry.substr(colon + 1);
    if (port.empty() ||
        !std::all_of(port.begin(), port.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; })) {
      fail("port is not a number");
    }
    const long value = std::strtol(port.c_str(), nullptr, 10);
    if (value < 1 || value > 65535) fail("port out of range [1, 65535]");
    hosts.push_back(std::move(entry));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return hosts;
}

TcpOptions resolve_tcp_options(TcpOptions requested) {
  // Env knobs are read during single-threaded setup, before the fleet
  // spawns.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PLV_HOSTS"); env != nullptr && *env != '\0') {
    requested.hosts = parse_host_list(env);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PLV_RANK"); env != nullptr && *env != '\0') {
    char* tail = nullptr;
    const long value = std::strtol(env, &tail, 10);
    if (tail == env || *tail != '\0') {
      throw std::invalid_argument(std::string("pml: PLV_RANK is not a number: '") +
                                  env + "'");
    }
    requested.self_rank = static_cast<int>(value);
  }
  return requested;
}

namespace detail {

void run_tcp_ranks(int nranks, const std::function<void(Comm&)>& body, bool validate,
                   const TcpOptions& tcp) {
  const TcpOptions opt = resolve_tcp_options(tcp);
  if (opt.connect_timeout_ms <= 0) {
    throw std::invalid_argument("pml: tcp connect_timeout_ms must be positive, got " +
                                std::to_string(opt.connect_timeout_ms));
  }
  if (opt.self_rank < 0 && opt.hosts.empty()) {
    run_tcp_loopback_fleet(nranks, body, validate, opt);
    return;
  }
  // Multi-host mode: the host list is the fleet's shape; it must agree
  // with nranks and contain this rank.
  if (opt.hosts.empty()) {
    throw std::invalid_argument(
        "pml: tcp rank " + std::to_string(opt.self_rank) +
        " has no host list; multi-host tcp needs --hosts/PLV_HOSTS with one "
        "host:port per rank (omit --rank for the loopback self-test)");
  }
  if (static_cast<int>(opt.hosts.size()) != nranks) {
    throw std::invalid_argument("pml: tcp host list has " +
                                std::to_string(opt.hosts.size()) + " entries but the run has " +
                                std::to_string(nranks) +
                                " ranks; one host:port per rank is required");
  }
  if (opt.self_rank < 0 || opt.self_rank >= nranks) {
    throw std::invalid_argument("pml: tcp rank " + std::to_string(opt.self_rank) +
                                " out of range for a " + std::to_string(nranks) +
                                "-rank host list");
  }
  for (const std::string& h : opt.hosts) (void)parse_host_list(h);  // shape check
  run_tcp_single_rank(nranks, body, validate, opt);
}

}  // namespace detail
}  // namespace plv::pml
