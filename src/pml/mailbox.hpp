// Per-rank mailbox: a multi-producer single-consumer queue of byte chunks.
//
// Models the receive side of the paper's fine-grained messaging layer
// (refs [27]-[29]): senders deposit coalesced chunks of fixed-size records,
// the owning rank drains them and hashes the records in place.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

namespace plv::pml {

/// One delivered chunk: raw bytes from a single sender. The record type is
/// a per-phase SPMD convention (every rank sends/receives the same T).
struct Chunk {
  int source{0};
  std::vector<std::byte> bytes;
};

class Mailbox {
 public:
  /// Deposits a chunk (thread-safe, called by any sender).
  void push(int source, const void* data, std::size_t size) {
    Chunk chunk;
    chunk.source = source;
    chunk.bytes.resize(size);
    std::memcpy(chunk.bytes.data(), data, size);
    {
      std::scoped_lock lock(mutex_);
      queue_.push_back(std::move(chunk));
    }
    cv_.notify_one();
  }

  /// Pops one chunk if available (non-blocking). Returns false when empty.
  bool try_pop(Chunk& out) {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Drains everything currently queued into `out` (appends).
  std::size_t drain(std::vector<Chunk>& out) {
    std::scoped_lock lock(mutex_);
    const std::size_t n = queue_.size();
    for (auto& chunk : queue_) out.push_back(std::move(chunk));
    queue_.clear();
    return n;
  }

  [[nodiscard]] bool empty() const {
    std::scoped_lock lock(mutex_);
    return queue_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Chunk> queue_;
};

}  // namespace plv::pml
