// Per-rank mailbox: a lock-free multi-producer single-consumer queue of
// pooled byte chunks, plus the chunk pool that feeds it.
//
// Models the receive side of the paper's fine-grained messaging layer
// (refs [27]-[29]): senders deposit coalesced chunks of fixed-size records,
// the owning rank drains them and hashes the records in place.
//
// Zero-copy discipline: a Chunk is a reusable heap node owned by the
// runtime's ChunkPool. Senders acquire a chunk, write records into it once
// (the only copy on the whole path), and hand the *pointer* to the
// destination mailbox; the receiver processes the bytes in place and
// releases the node back to the pool. Steady state performs no allocation
// and no memcpy beyond the initial record coalescing.
//
//   sender:   pool.acquire() -> append()* -> mailbox.push(chunk)
//   receiver: mailbox.drain() -> handler(bytes) -> pool.release(chunk)
//
// The mailbox itself is a Treiber stack: push is a CAS loop (multi-
// producer safe, no ABA hazard because only push contends on the head; the
// consumer takes the whole list with a single exchange). drain() reverses
// the popped list, so per-producer FIFO order is preserved — the quiescence
// protocol in comm.hpp relies on a sender's data chunks being delivered
// before its end-of-phase marker.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace plv::pml {

/// One delivered chunk: raw bytes from a single sender plus the routing
/// header the quiescence protocol needs. The record type is a per-phase
/// SPMD convention (every rank sends/receives the same T). Nodes are
/// recycled through ChunkPool; `next` links them both in the mailbox stack
/// and in the pool free list.
///
/// Storage is a raw byte array allocated without value-initialization
/// (make_unique_for_overwrite): senders overwrite exactly the bytes they
/// use, so a chunk never pays a memset — at paper-scale coalescing sizes
/// the zero-fill of a std::vector resize costs more than the payload copy.
class Chunk {
 public:
  int source{-1};
  std::uint64_t epoch{0};           ///< fine-grained phase the bytes belong to
  bool control{false};              ///< end-of-phase marker, no payload
  std::uint64_t control_records{0}; ///< marker only: records sent to the dest
  Chunk* next{nullptr};

  /// Grows the backing storage to at least `bytes` capacity (never
  /// shrinks); preserves current contents.
  void reserve(std::size_t bytes) {
    if (capacity_ < bytes) {
      auto grown = std::make_unique_for_overwrite<std::byte[]>(bytes);
      if (used_ > 0) std::memcpy(grown.get(), storage_.get(), used_);
      storage_ = std::move(grown);
      capacity_ = bytes;
    }
  }

  /// Appends raw bytes; grows geometrically if the reservation was short.
  void append(const void* data, std::size_t bytes) {
    if (bytes == 0) return;  // empty source may be a null pointer (UB in memcpy)
    if (used_ + bytes > capacity_) {
      std::size_t grown = capacity_ == 0 ? 64 : capacity_ * 2;
      if (grown < used_ + bytes) grown = used_ + bytes;
      reserve(grown);
    }
    std::memcpy(storage_.get() + used_, data, bytes);
    used_ += bytes;
  }

  [[nodiscard]] const std::byte* data() const noexcept { return storage_.get(); }
  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Direct write access for cursor-style producers (see Aggregator):
  /// write into raw(), then record the final payload length.
  [[nodiscard]] std::byte* raw() noexcept { return storage_.get(); }
  void set_size(std::size_t bytes) noexcept {
    assert(bytes <= capacity_);
    used_ = bytes;
  }

  /// Resets the header and payload for reuse; keeps the storage capacity.
  void recycle() noexcept {
    source = -1;
    epoch = 0;
    control = false;
    control_records = 0;
    next = nullptr;
    used_ = 0;
  }

 private:
  std::size_t used_{0};
  std::size_t capacity_{0};
  std::unique_ptr<std::byte[]> storage_;
};

/// Free list of Chunk nodes. One pool belongs to one rank and is only ever
/// touched by that rank's thread, so acquire() and release() are plain
/// pointer swaps — no lock, no atomics. Nodes migrate between ranks
/// through the mailboxes: a sender acquires from *its* pool, the receiver
/// releases the drained node into *its own* pool, and since every rank is
/// both sender and receiver the lists stay balanced in steady state. The
/// pool owns whatever is on its free list at destruction; nodes still in
/// flight at teardown are deleted by their current holder (mailbox or
/// Comm destructor).
///
/// A receive-heavy rank (one that drains far more chunks than it sends)
/// would otherwise retain its peak in-flight footprint forever, so the
/// pool carries an optional high-water mark: trim() — called by the Comm
/// at fine-grained phase boundaries — frees nodes beyond the watermark.
/// 0 (the default) keeps the historical unbounded behavior.
class ChunkPool {
 public:
  ChunkPool() = default;
  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  ~ChunkPool() {
    Chunk* c = free_;
    while (c != nullptr) {
      Chunk* next = c->next;
      delete c;
      c = next;
    }
  }

  /// Returns a recycled node (with whatever capacity it grew to) or a new
  /// one, with at least `reserve_bytes` of capacity.
  [[nodiscard]] Chunk* acquire(std::size_t reserve_bytes) {
    Chunk* c = free_;
    if (c != nullptr) {
      free_ = c->next;
      --free_count_;
      c->recycle();
    } else {
      c = new Chunk();
    }
    c->reserve(reserve_bytes);
    return c;
  }

  void release(Chunk* c) {
    assert(c != nullptr);
    c->next = free_;
    free_ = c;
    ++free_count_;
  }

  /// High-water mark in nodes; 0 = unbounded (never trim).
  void set_watermark(std::size_t nodes) noexcept { watermark_ = nodes; }
  [[nodiscard]] std::size_t watermark() const noexcept { return watermark_; }
  [[nodiscard]] std::size_t free_count() const noexcept { return free_count_; }

  /// Frees list nodes beyond the watermark. Cheap when already under it
  /// (one compare); meant for phase boundaries, not the per-chunk path.
  void trim() noexcept {
    if (watermark_ == 0) return;
    while (free_count_ > watermark_) {
      Chunk* c = free_;
      free_ = c->next;
      delete c;
      --free_count_;
    }
  }

 private:
  Chunk* free_{nullptr};
  std::size_t free_count_{0};
  std::size_t watermark_{0};
};

/// Lock-free MPSC mailbox with a blocking consumer wait. Producers push
/// chunk pointers; the owning rank drains them all at once. The condition
/// variable backs wait_nonempty(); producers only touch the mutex when a
/// consumer has announced itself via `waiters_`, so the push fast path
/// stays lock-free.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  ~Mailbox() {
    // Chunks still queued at teardown (aborted runs) die with the mailbox.
    Chunk* c = head_.load(std::memory_order_acquire);
    while (c != nullptr) {
      Chunk* next = c->next;
      delete c;
      c = next;
    }
  }

  /// Deposits a filled chunk (thread-safe, called by any sender). The
  /// mailbox takes ownership until the consumer drains it.
  void push(Chunk* chunk) PLV_EXCLUDES(wait_mutex_) {
    assert(chunk != nullptr);
    Chunk* expected = head_.load(std::memory_order_relaxed);
    do {
      chunk->next = expected;
    } while (!head_.compare_exchange_weak(expected, chunk, std::memory_order_seq_cst,
                                          std::memory_order_relaxed));
    // Wake a parked consumer only on the empty -> non-empty transition: a
    // push onto a non-empty stack means an earlier push already signalled
    // (or the consumer is awake and will drain everything anyway), so the
    // send burst pays at most one futex wake instead of one per chunk.
    // seq_cst push + seq_cst waiter check pair with the consumer's
    // register-then-recheck in wait_nonempty: either we see the waiter and
    // notify, or the waiter's predicate sees our push.
    if (expected == nullptr && waiters_.load(std::memory_order_seq_cst) > 0) {
      { plv::MutexLock lock(wait_mutex_); }  // close the check-then-sleep race
      cv_.notify_all();
    }
  }

  /// Takes every queued chunk, appending them to `out` in delivery order
  /// (per-producer FIFO). Consumer-only. Returns the number taken.
  std::size_t drain(std::vector<Chunk*>& out) {
    Chunk* c = head_.exchange(nullptr, std::memory_order_seq_cst);
    if (c == nullptr) return 0;
    // The stack yields newest-first; reverse in place to restore FIFO.
    Chunk* reversed = nullptr;
    std::size_t n = 0;
    while (c != nullptr) {
      Chunk* next = c->next;
      c->next = reversed;
      reversed = c;
      c = next;
      ++n;
    }
    for (c = reversed; c != nullptr; c = c->next) out.push_back(c);
    return n;
  }

  /// Blocks until the mailbox is non-empty or `stop()` returns true.
  /// Returns true when a chunk is available. Consumer-only; this is the
  /// wait the quiescence protocol uses instead of a collective spin.
  ///
  /// Hybrid wait: yields the core a bounded number of times first — on an
  /// oversubscribed machine that directly runs the senders we are waiting
  /// on, and while yielding `waiters_` stays 0 so producers skip the
  /// notify path entirely. Only a genuinely idle consumer parks in the
  /// condition variable.
  template <typename StopFn>
  bool wait_nonempty(StopFn&& stop, int spin_yields = 64) PLV_EXCLUDES(wait_mutex_) {
    for (int i = 0; i < spin_yields; ++i) {
      if (!empty() || stop()) return !empty();
      std::this_thread::yield();
    }
    plv::MutexLock lock(wait_mutex_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // Explicit predicate loop (not a lambda) so the wait discipline stays
    // visible to the thread-safety analysis; see common/sync.hpp.
    while (empty() && !stop()) cv_.wait(wait_mutex_);
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return !empty();
  }

  /// Wakes any consumer blocked in wait_nonempty (used by the runtime's
  /// abort path so a failed peer can never strand a waiter).
  void interrupt() PLV_EXCLUDES(wait_mutex_) {
    { plv::MutexLock lock(wait_mutex_); }
    cv_.notify_all();
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_seq_cst) == nullptr;
  }

 private:
  std::atomic<Chunk*> head_{nullptr};
  std::atomic<int> waiters_{0};
  // wait_mutex_ guards no data — it exists purely for the cv_ sleep/wake
  // handshake (queue state lives in the lock-free head_); producers brush
  // it only on the empty -> non-empty transition, see push().
  plv::Mutex wait_mutex_;
  plv::CondVar cv_;
};

}  // namespace plv::pml
