// Shared socket-frame transport core: the 32-byte frame protocol, the
// per-peer receive pump, the deadlock-free writer, and the goodbye/abort
// discipline — everything about moving pml frames over stream-socket file
// descriptors that does NOT depend on how those descriptors were created.
//
// Two backends host this machinery on different substrates:
//
//   ProcessTransport (transport_proc.cpp) — a pre-fork full mesh of
//     AF_UNIX socketpairs between forked ranks on one host.
//   TcpTransport (transport_tcp.cpp) — a listen/connect mesh of TCP
//     sockets across hosts (or loopback), established from a host list
//     with a handshake frame.
//
// Wire format: length-prefixed frames, one FrameHeader (fixed 32 bytes,
// host byte order — every rank of a run must be built for the same
// architecture; the TCP handshake magic is byte-order-asymmetric so a
// mixed-endian mesh fails the handshake instead of desyncing) optionally
// followed by a payload.
//
//   Data       payload = chunk bytes; epoch from the header
//   Marker     no payload; end-of-phase control marker (epoch + count)
//   Collective payload = this rank's alltoallv slice for the receiver
//   Abort      no payload; fail-fast broadcast
//   Goodbye    no payload; clean body completion, always the last frame
//
// Demultiplexing: both planes share one socket per peer, and the one-epoch
// phase skew means collective frames can arrive while this rank still
// drains fine-grained traffic (and vice versa). The receive loop therefore
// sorts frames into two queues — chunks (Data/Marker, handed to Comm's
// poll) and per-source collective payload FIFOs — and alltoallv consumes
// the latter *in ascending source order*, which is exactly the rank-order
// combine that makes reductions bit-identical with ThreadTransport.
//
// Deadlock freedom: sockets are non-blocking; a writer that fills a
// kernel buffer parks in poll() watching the destination for POLLOUT and
// *every* peer for POLLIN, draining whatever arrives — so two ranks
// flooding each other always make progress. Abort/EOF wake these waits.
//
// Failure detection: a failing rank broadcasts Abort (best effort) and
// exits without Goodbye; peers treat EOF-without-Goodbye as a failure and
// raise the local abort flag. EOF *after* Goodbye is a clean shutdown and
// ignored — per-lane FIFO guarantees every frame the peer owed us was
// already received before its Goodbye. A frame truncated mid-stream (a
// peer dying inside a header or payload) closes the lane and records a
// PeerFailure naming the peer, its endpoint, and exactly where the stream
// tore — it is never retried into a desynced stream; the runtime surfaces
// the record as RemoteRankError on the survivors.
//
// This header lives in plv::pml::detail and is included by the backend
// .cpp files and the transport test suites (which drive the pump directly
// over raw socketpairs for fault injection).
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/errno_util.hpp"
#include "pml/comm.hpp"
#include "pml/mailbox.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"

namespace plv::pml::detail {

enum FrameKind : std::uint32_t {
  kFrameData = 1,
  kFrameMarker = 2,
  kFrameCollective = 3,
  kFrameAbort = 4,
  kFrameGoodbye = 5,
};

struct FrameHeader {
  std::uint32_t kind{0};
  std::uint32_t reserved{0};
  std::uint64_t payload_bytes{0};
  std::uint64_t epoch{0};
  std::uint64_t control_records{0};
};
static_assert(sizeof(FrameHeader) == 32);

/// Anything larger than this in a length prefix means a desynced stream
/// (a torn frame from a dying peer); abort instead of allocating.
constexpr std::uint64_t kMaxFramePayload = 1ULL << 40;

/// Per-rank exit codes used by the forked-fleet runners (proc, and the
/// TCP loopback self-test). kExitAborted marks a peer-induced unwind,
/// which the parent does not treat as the originating failure.
constexpr int kExitClean = 0;
constexpr int kExitFailed = 1;
constexpr int kExitAborted = 2;

/// First peer failure this rank observed on the wire: which peer, which
/// endpoint (empty for anonymous socketpair lanes), and what exactly went
/// wrong — including where a torn frame was truncated. The runtime maps
/// this to RemoteRankError so survivors report the dead peer, not just a
/// generic abort.
struct PeerFailure {
  int rank{-1};
  std::string endpoint;
  std::string detail;
};

/// Decodes a waitpid() status into diagnosable text: exit codes stay
/// numeric, signals are named (WTERMSIG + strsignal), and a core dump is
/// noted — so a fault-injection failure reads "killed by signal 9
/// (Killed)" instead of a raw wait status.
[[nodiscard]] inline std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    std::string text = "killed by signal " + std::to_string(sig);
    if (name != nullptr) {
      text += " (";
      text += name;
      text += ")";
    }
#ifdef WCOREDUMP
    if (WCOREDUMP(status)) text += ", core dumped";
#endif
    return text;
  }
  return "unrecognized wait status " + std::to_string(status);
}

/// A Transport over an already-wired mesh of stream-socket fds: `fds[r]`
/// is this rank's socket to rank r (-1 for self). `endpoints[r]`, when
/// provided, labels peer r in failure reports (e.g. "10.0.0.2:7001");
/// socketpair backends leave it empty. Single-threaded: one instance per
/// rank, touched only by that rank.
class SocketFrameTransport final : public Transport {
 public:
  SocketFrameTransport(const char* name, int rank, int nranks, std::vector<int> fds,
                       std::vector<std::string> endpoints = {})
      : name_(name),
        rank_(rank),
        nranks_(nranks),
        fds_(std::move(fds)),
        endpoints_(std::move(endpoints)),
        rx_(static_cast<std::size_t>(nranks)),
        pending_collective_(static_cast<std::size_t>(nranks)) {
    assert(static_cast<int>(fds_.size()) == nranks_);
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_ || fds_[static_cast<std::size_t>(r)] < 0) {
        rx_[static_cast<std::size_t>(r)].open = false;
        continue;
      }
      const int fd = fds_[static_cast<std::size_t>(r)];
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      // Best effort: widen the kernel buffers so whole coalesced chunks
      // usually queue in one sendmsg.
      const int kBufBytes = 1 << 20;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kBufBytes, sizeof(kBufBytes));
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kBufBytes, sizeof(kBufBytes));
    }
  }

  ~SocketFrameTransport() override {
    // Chunks stranded by an aborted run go back to the pool, whose
    // destructor frees the whole list (keeps every node death on the
    // pool API; the repo lint flags raw deletes of chunk nodes).
    for (Chunk* c : incoming_) pool_.release(c);
    for (auto& rx : rx_) {
      if (rx.chunk != nullptr) pool_.release(rx.chunk);
    }
    for (int r = 0; r < nranks_; ++r) {
      const int fd = fds_[static_cast<std::size_t>(r)];
      if (r != rank_ && fd >= 0) ::close(fd);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return name_; }
  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int nranks() const noexcept override { return nranks_; }

  void barrier() override {
    struct NullSink final : CollectiveSink {
      void deliver(int, std::span<const std::byte>) override {}
    } sink;
    empty_spans_.assign(static_cast<std::size_t>(nranks_), {});
    alltoallv(empty_spans_, sink);
  }

  void alltoallv(std::span<const std::span<const std::byte>> outgoing,
                 CollectiveSink& sink) override {
    assert(static_cast<int>(outgoing.size()) == nranks_);
    check_abort();
    for (int d = 0; d < nranks_; ++d) {
      if (d == rank_) continue;
      FrameHeader h;
      h.kind = kFrameCollective;
      h.payload_bytes = outgoing[static_cast<std::size_t>(d)].size();
      write_frame(d, h, outgoing[static_cast<std::size_t>(d)]);
    }
    // Wait for every peer's slice. Frames already buffered (a peer racing
    // one collective ahead) satisfy the wait immediately; per-source FIFO
    // keeps successive collectives matched up.
    for (int src = 0; src < nranks_; ++src) {
      if (src == rank_) continue;
      auto& queue = pending_collective_[static_cast<std::size_t>(src)];
      while (queue.empty()) {
        check_abort();
        const PeerRx& rx = rx_[static_cast<std::size_t>(src)];
        if (!rx.open || rx.goodbye) {
          // The peer can never send the slice we need.
          aborted_ = true;
          throw AbortedError();
        }
        pump(true);
      }
    }
    check_abort();
    std::size_t total = outgoing[static_cast<std::size_t>(rank_)].size();
    for (int src = 0; src < nranks_; ++src) {
      if (src == rank_) continue;
      total += pending_collective_[static_cast<std::size_t>(src)].front().size();
    }
    sink.total_hint(total);
    for (int src = 0; src < nranks_; ++src) {
      if (src == rank_) {
        sink.deliver(src, outgoing[static_cast<std::size_t>(rank_)]);
        continue;
      }
      auto& queue = pending_collective_[static_cast<std::size_t>(src)];
      const std::vector<std::byte>& payload = queue.front();
      sink.deliver(src, {payload.data(), payload.size()});
      queue.pop_front();
    }
  }

  [[nodiscard]] Chunk* acquire_chunk(std::size_t reserve_bytes) override {
    return pool_.acquire(reserve_bytes);
  }
  void release_chunk(Chunk* chunk) noexcept override { pool_.release(chunk); }

  void send(int dest, Chunk* chunk) override {
    if (dest == rank_) {
      incoming_.push_back(chunk);  // self lane: stays in-process, stays FIFO
      return;
    }
    FrameHeader h;
    h.kind = chunk->control ? kFrameMarker : kFrameData;
    h.payload_bytes = chunk->size();
    h.epoch = chunk->epoch;
    h.control_records = chunk->control_records;
    try {
      write_frame(dest, h, {chunk->data(), chunk->size()});
    } catch (...) {
      pool_.release(chunk);
      throw;
    }
    pool_.release(chunk);  // bytes are on the wire; recycle the node
  }

  std::size_t drain(std::vector<Chunk*>& out) override {
    pump(false);
    const std::size_t n = incoming_.size();
    out.insert(out.end(), incoming_.begin(), incoming_.end());
    incoming_.clear();
    return n;
  }

  void wait_incoming() override {
    while (incoming_.empty() && !aborted_) pump(true);
  }

  void raise_abort() noexcept override {
    aborted_ = true;
    FrameHeader h;
    h.kind = kFrameAbort;
    for (int d = 0; d < nranks_; ++d) {
      if (d == rank_ || !rx_[static_cast<std::size_t>(d)].open) continue;
      // Single best-effort push: if the buffer is full or the peer is
      // gone, our EOF (we exit without Goodbye) aborts it instead.
      (void)::send(fds_[static_cast<std::size_t>(d)], &h, sizeof(h),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
    }
  }

  [[nodiscard]] bool aborted() const noexcept override { return aborted_; }

  void set_pool_watermark(std::size_t nodes) noexcept override {
    pool_.set_watermark(nodes);
  }
  void trim_pool() noexcept override { pool_.trim(); }
  [[nodiscard]] std::size_t pool_free_count() const noexcept override {
    return pool_.free_count();
  }

  /// First wire-level peer failure this rank observed, or nullptr on a
  /// clean (or not-yet-failed) run. The runtime converts this into the
  /// RemoteRankError survivors throw.
  [[nodiscard]] const PeerFailure* peer_failure() const noexcept {
    return has_failure_ ? &failure_ : nullptr;
  }

  /// Announces clean completion to every peer (the frame after which this
  /// rank's EOF is not a failure). Deliberately NOT write_frame: a peer
  /// that finished first may already have exited, and its EPIPE must
  /// neither raise the abort flag nor stop the goodbyes still owed to the
  /// remaining peers — otherwise a slow third rank sees an unexplained
  /// EOF and aborts a run that succeeded everywhere.
  void finish() noexcept {
    FrameHeader h;
    h.kind = kFrameGoodbye;
    for (int d = 0; d < nranks_; ++d) {
      if (d == rank_ || !rx_[static_cast<std::size_t>(d)].open) continue;
      const int fd = fds_[static_cast<std::size_t>(d)];
      const auto* p = reinterpret_cast<const std::byte*>(&h);
      std::size_t off = 0;
      while (off < sizeof(FrameHeader)) {
        const ssize_t k =
            ::send(fd, p + off, sizeof(FrameHeader) - off, MSG_NOSIGNAL);
        if (k > 0) {
          off += static_cast<std::size_t>(k);
          continue;
        }
        if (k < 0 && errno == EINTR) continue;
        if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          pollfd pf{fd, POLLOUT, 0};
          int rc = 0;
          do {
            rc = ::poll(&pf, 1, -1);
          } while (rc < 0 && errno == EINTR);
          if (rc < 0) break;
          continue;  // writable, or an error send() will surface
        }
        break;  // peer already gone; its own shutdown state decides the run
      }
    }
  }

  // -- Composition hooks (the hybrid transport wraps this pump) ----------
  /// One pump pass over every open lane; block=true parks until traffic
  /// (or a hangup) arrives. Lets a composing transport keep this rank's
  /// lanes draining while it waits on a non-socket event (e.g. a group
  /// barrier), preserving the deadlock-freedom argument: a peer blocked
  /// mid-write to us always finds our reader live.
  void pump_incoming(bool block) { pump(block); }

  [[nodiscard]] bool has_incoming() const noexcept { return !incoming_.empty(); }

  /// Ships one collective frame to `dest` without the full-mesh exchange
  /// of alltoallv — the leader-to-leader primitive of the hierarchical
  /// collectives. Per-lane FIFO still matches successive frames up.
  void send_collective(int dest, std::span<const std::byte> payload) {
    assert(dest != rank_);
    check_abort();
    FrameHeader h;
    h.kind = kFrameCollective;
    h.payload_bytes = payload.size();
    write_frame(dest, h, payload);
  }

  /// Blocks until a collective frame from `src` is available and returns
  /// its payload (the receive half of send_collective). Throws
  /// AbortedError if the peer can never deliver one.
  [[nodiscard]] std::vector<std::byte> take_collective(int src) {
    assert(src != rank_);
    auto& queue = pending_collective_[static_cast<std::size_t>(src)];
    while (queue.empty()) {
      check_abort();
      const PeerRx& rx = rx_[static_cast<std::size_t>(src)];
      if (!rx.open || rx.goodbye) {
        aborted_ = true;
        throw AbortedError();
      }
      pump(true);
    }
    std::vector<std::byte> payload = std::move(queue.front());
    queue.pop_front();
    return payload;
  }

 private:
  /// Per-peer receive state: a frame header being assembled, then its
  /// payload streamed into either a pooled chunk (Data/Marker) or a byte
  /// buffer (Collective).
  struct PeerRx {
    std::array<std::byte, sizeof(FrameHeader)> hdr_buf;
    std::size_t hdr_got{0};
    FrameHeader hdr{};
    bool in_payload{false};
    std::size_t payload_got{0};
    Chunk* chunk{nullptr};
    std::vector<std::byte> collective;
    bool open{true};
    bool goodbye{false};
  };

  void check_abort() const {
    if (aborted_) throw AbortedError();
  }

  [[nodiscard]] std::string endpoint_of(int r) const {
    if (static_cast<std::size_t>(r) < endpoints_.size()) {
      return endpoints_[static_cast<std::size_t>(r)];
    }
    return {};
  }

  /// Records the first wire-level failure (later ones are consequences of
  /// the unwind, not causes).
  void record_peer_failure(int r, std::string detail) {
    if (has_failure_) return;
    has_failure_ = true;
    failure_.rank = r;
    failure_.endpoint = endpoint_of(r);
    failure_.detail = std::move(detail);
  }

  /// Describes exactly where peer r's stream tore, so a truncated frame
  /// is diagnosable instead of a bare "peer failed". `cause` is the
  /// transport-level event ("connection closed", "recv failed: ...").
  [[nodiscard]] std::string truncation_detail(int r, const std::string& cause) const {
    const PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    std::string detail = cause;
    if (rx.in_payload) {
      detail += " mid-frame: " + std::to_string(rx.payload_got) + " of " +
                std::to_string(rx.hdr.payload_bytes) + " payload bytes (frame kind " +
                std::to_string(rx.hdr.kind) + ", epoch " + std::to_string(rx.hdr.epoch) +
                ")";
    } else if (rx.hdr_got > 0) {
      detail += " mid-frame: " + std::to_string(rx.hdr_got) + " of " +
                std::to_string(sizeof(FrameHeader)) + " header bytes";
    } else {
      detail += " between frames, without goodbye";
    }
    return detail;
  }

  /// Closes the lane to `r`. EOF without a preceding Goodbye means the
  /// peer died mid-protocol: raise the abort flag and record the failure
  /// (a torn frame is closed here, never resumed — resuming would feed a
  /// desynced stream into the pump).
  void close_peer(int r, const std::string& cause) noexcept {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    if (!rx.open) return;
    if (!rx.goodbye) {
      try {
        record_peer_failure(r, truncation_detail(r, cause));
      } catch (...) {
        // Allocation failure while reporting: the abort flag below still
        // fails the run, just with less detail.
      }
    }
    rx.open = false;
    if (rx.chunk != nullptr) pool_.release(rx.chunk);  // half-received frame
    rx.chunk = nullptr;
    ::close(fds_[static_cast<std::size_t>(r)]);
    fds_[static_cast<std::size_t>(r)] = -1;
    if (!rx.goodbye) aborted_ = true;
  }

  /// Non-blocking read pump for one peer: consume whatever the socket
  /// holds, completing as many frames as arrive.
  void pump_peer(int r) {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    const auto fd = [&] { return fds_[static_cast<std::size_t>(r)]; };
    while (rx.open) {
      if (!rx.in_payload) {
        const ssize_t k = ::recv(fd(), rx.hdr_buf.data() + rx.hdr_got,
                                 sizeof(FrameHeader) - rx.hdr_got, 0);
        if (k > 0) {
          rx.hdr_got += static_cast<std::size_t>(k);
          if (rx.hdr_got == sizeof(FrameHeader)) begin_frame(r);
          continue;
        }
        if (k == 0) return close_peer(r, "connection closed");
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return close_peer(r, std::string("recv failed: ") + plv::errno_str(errno));
      }
      // Payload streaming.
      std::byte* dst = rx.chunk != nullptr ? rx.chunk->raw() : rx.collective.data();
      const std::size_t want =
          static_cast<std::size_t>(rx.hdr.payload_bytes) - rx.payload_got;
      const ssize_t k = ::recv(fd(), dst + rx.payload_got, want, 0);
      if (k > 0) {
        rx.payload_got += static_cast<std::size_t>(k);
        if (rx.payload_got == rx.hdr.payload_bytes) finish_frame(r);
        continue;
      }
      if (k == 0) return close_peer(r, "connection closed");
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return close_peer(r, std::string("recv failed: ") + plv::errno_str(errno));
    }
  }

  /// Header complete: route by kind, set up the payload destination.
  void begin_frame(int r) {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    std::memcpy(&rx.hdr, rx.hdr_buf.data(), sizeof(FrameHeader));
    rx.hdr_got = 0;
    if (rx.hdr.payload_bytes > kMaxFramePayload) {
      // Desynced stream; unrecoverable. Record before close_peer so the
      // report names the protocol violation, not a generic close.
      record_peer_failure(r, "desynced stream: frame announces " +
                                 std::to_string(rx.hdr.payload_bytes) +
                                 " payload bytes (kind " + std::to_string(rx.hdr.kind) +
                                 "), over the " + std::to_string(kMaxFramePayload) +
                                 "-byte limit");
      aborted_ = true;
      close_peer(r, "desynced stream");
      return;
    }
    switch (rx.hdr.kind) {
      case kFrameAbort:
        aborted_ = true;
        return;
      case kFrameGoodbye:
        rx.goodbye = true;
        return;
      case kFrameCollective:
        rx.collective.resize(static_cast<std::size_t>(rx.hdr.payload_bytes));
        break;
      case kFrameData:
      case kFrameMarker:
        rx.chunk = pool_.acquire(static_cast<std::size_t>(rx.hdr.payload_bytes));
        break;
      default:
        record_peer_failure(r, "desynced stream: unknown frame kind " +
                                   std::to_string(rx.hdr.kind));
        aborted_ = true;
        close_peer(r, "desynced stream");
        return;
    }
    rx.payload_got = 0;
    rx.in_payload = true;
    if (rx.hdr.payload_bytes == 0) finish_frame(r);
  }

  /// Payload complete: enqueue the frame for its consumer.
  void finish_frame(int r) {
    PeerRx& rx = rx_[static_cast<std::size_t>(r)];
    if (rx.hdr.kind == kFrameCollective) {
      pending_collective_[static_cast<std::size_t>(r)].push_back(
          std::move(rx.collective));
      rx.collective = {};
    } else {
      Chunk* c = rx.chunk;
      rx.chunk = nullptr;
      c->set_size(static_cast<std::size_t>(rx.hdr.payload_bytes));
      c->source = r;
      c->epoch = rx.hdr.epoch;
      c->control = rx.hdr.kind == kFrameMarker;
      c->control_records = rx.hdr.control_records;
      incoming_.push_back(c);
    }
    rx.in_payload = false;
  }

  /// Polls every open lane and pumps the readable ones. With block=true
  /// parks until something arrives (or a peer hangs up). If no lane is
  /// open and nothing is queued, the run can never progress: abort.
  void pump(bool block) {
    pfds_.clear();
    pfd_ranks_.clear();
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_ || !rx_[static_cast<std::size_t>(r)].open) continue;
      pfds_.push_back({fds_[static_cast<std::size_t>(r)], POLLIN, 0});
      pfd_ranks_.push_back(r);
    }
    if (pfds_.empty()) {
      if (block && incoming_.empty()) aborted_ = true;
      return;
    }
    int rc = 0;
    do {
      rc = ::poll(pfds_.data(), pfds_.size(), block ? -1 : 0);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return;
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
      if ((pfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        pump_peer(pfd_ranks_[i]);
      }
    }
  }

  /// Blocking frame write with a read-draining progress loop (see the
  /// deadlock-freedom note in the file header). Throws AbortedError if
  /// the run aborts or the peer disappears mid-write.
  void write_frame(int dest, const FrameHeader& h, std::span<const std::byte> payload) {
    if (!rx_[static_cast<std::size_t>(dest)].open) {
      aborted_ = true;
      throw AbortedError();
    }
    const auto* hdr_bytes = reinterpret_cast<const std::byte*>(&h);
    const std::size_t total = sizeof(FrameHeader) + payload.size();
    std::size_t off = 0;
    while (off < total) {
      check_abort();
      if (!rx_[static_cast<std::size_t>(dest)].open) {
        aborted_ = true;
        throw AbortedError();
      }
      struct iovec iov[2];
      int iovcnt = 0;
      if (off < sizeof(FrameHeader)) {
        iov[iovcnt].iov_base = const_cast<std::byte*>(hdr_bytes) + off;
        iov[iovcnt].iov_len = sizeof(FrameHeader) - off;
        ++iovcnt;
        if (!payload.empty()) {
          iov[iovcnt].iov_base = const_cast<std::byte*>(payload.data());
          iov[iovcnt].iov_len = payload.size();
          ++iovcnt;
        }
      } else {
        const std::size_t poff = off - sizeof(FrameHeader);
        iov[iovcnt].iov_base = const_cast<std::byte*>(payload.data()) + poff;
        iov[iovcnt].iov_len = payload.size() - poff;
        ++iovcnt;
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
      const ssize_t k = ::sendmsg(fds_[static_cast<std::size_t>(dest)], &mh,
                                  MSG_NOSIGNAL);
      if (k > 0) {
        off += static_cast<std::size_t>(k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_writable(dest);
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      // EPIPE / ECONNRESET / ETIMEDOUT (TCP user-timeout on a vanished
      // host): the peer is gone mid-protocol.
      close_peer(dest, std::string("send failed: ") + plv::errno_str(errno));
      aborted_ = true;
      throw AbortedError();
    }
  }

  /// Parks until `dest` accepts bytes again, draining every readable peer
  /// meanwhile (including `dest` itself) so opposing floods drain.
  void wait_writable(int dest) {
    pfds_.clear();
    pfd_ranks_.clear();
    pfds_.push_back({fds_[static_cast<std::size_t>(dest)],
                     static_cast<short>(POLLOUT | POLLIN), 0});
    pfd_ranks_.push_back(dest);
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_ || r == dest || !rx_[static_cast<std::size_t>(r)].open) continue;
      pfds_.push_back({fds_[static_cast<std::size_t>(r)], POLLIN, 0});
      pfd_ranks_.push_back(r);
    }
    int rc = 0;
    do {
      rc = ::poll(pfds_.data(), pfds_.size(), -1);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return;
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
      if ((pfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        pump_peer(pfd_ranks_[i]);
      }
    }
  }

  const char* name_;
  int rank_;
  int nranks_;
  std::vector<int> fds_;
  std::vector<std::string> endpoints_;
  ChunkPool pool_;  // single-threaded: one process = one rank
  std::vector<PeerRx> rx_;
  std::vector<Chunk*> incoming_;  // completed Data/Marker frames, FIFO per src
  std::vector<std::deque<std::vector<std::byte>>> pending_collective_;
  std::vector<std::span<const std::byte>> empty_spans_;
  std::vector<pollfd> pfds_;      // poll scratch, reused
  std::vector<int> pfd_ranks_;
  PeerFailure failure_;
  bool has_failure_{false};
  bool aborted_{false};
};

/// Writes the whole buffer, best effort (status-pipe path).
inline void write_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t k = ::write(fd, data + off, len - off);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    return;
  }
}

/// Runs `body` as one rank against an already-wired transport and maps
/// the outcome to an exit code + error text. Shared by the proc and TCP
/// runners, parent and child sides alike.
///
/// With `report_peer_failure`, a peer failure recorded on the wire
/// upgrades the generic AbortedError unwind into a RemoteRankError naming
/// the dead peer and its endpoint. Fleet runners (proc, TCP loopback)
/// leave it off — their parent harvests every rank's exit status and
/// status pipe, which attributes the originating failure more precisely
/// than a survivor's view of a closed socket; the single-rank multi-host
/// TCP mode turns it on because the wire is all it has.
inline int run_rank_body(SocketFrameTransport& transport,
                         const std::function<void(Comm&)>& body, bool validate,
                         std::string& error_text, std::exception_ptr* keep_exception,
                         bool report_peer_failure = false) {
  try {
    if (validate) {
      ValidatingTransport checked(transport);
      {
        Comm comm(checked);
        body(comm);
      }
      // Goodbye checks (chunk leaks, post-goodbye traffic) run before the
      // wire-level Goodbye frame goes out; a ProtocolError here fails the
      // rank exactly like a body exception.
      checked.finalize();
    } else {
      Comm comm(transport);
      body(comm);
    }
    transport.finish();
    return kExitClean;
  } catch (const AbortedError&) {
    transport.raise_abort();  // rebroadcast; the originator reports the cause
    if (report_peer_failure) {
      if (const PeerFailure* dead = transport.peer_failure()) {
        // The peer vanished from under us (EOF / reset / torn frame), so
        // no Abort broadcast carries the cause — this rank's own
        // observation is the report. Survivors of an orderly abort (Abort
        // frame seen, no wire failure) stay kExitAborted.
        error_text = RemoteRankError(dead->rank, dead->detail, dead->endpoint).what();
        if (keep_exception != nullptr) {
          *keep_exception = std::make_exception_ptr(
              RemoteRankError(dead->rank, dead->detail, dead->endpoint));
        }
        return kExitFailed;
      }
    }
    return kExitAborted;
  } catch (const std::exception& e) {
    error_text = e.what();
    if (keep_exception != nullptr) *keep_exception = std::current_exception();
    transport.raise_abort();
    return kExitFailed;
  } catch (...) {
    error_text = "unknown exception";
    if (keep_exception != nullptr) *keep_exception = std::current_exception();
    transport.raise_abort();
    return kExitFailed;
  }
}

}  // namespace plv::pml::detail
