// The parallel messaging layer (PML): ranks, collectives, fine-grained sends.
//
// This is the reproduction's substitute for the custom BlueGene/Q / P7-IH
// messaging runtime the paper builds on (refs [27]-[29]). Each *rank* is a
// thread; ranks share no algorithm state and communicate only through this
// API, so the Louvain code above it is structured exactly like a
// distributed-memory port:
//
//   * collectives  — barrier, allreduce, allgather, alltoallv `exchange`,
//     all deterministic (combine in rank order) so fixed seeds give
//     bit-identical runs;
//   * fine-grained — `send_chunk`/`poll` with per-destination coalescing
//     (see aggregator.hpp) plus a counted-termination quiescence protocol,
//     matching the paper's active-message style state propagation;
//   * traffic counters — record/byte counts per rank, used by the scaling
//     benches to report communication volume where the 1-core container
//     gates wall-clock speedup.
//
// Quiescence protocol (counted termination, zero collective rounds):
// every fine-grained phase has an epoch number, and every Comm tracks how
// many records it sent to each peer during the current epoch. Entering
// `drain_until_quiescent`, a rank pushes one *control marker* per peer
// (through the same mailboxes as data) carrying that per-destination count,
// then polls — parking in Mailbox::wait_nonempty rather than spinning —
// until it has seen all nranks markers. Because mailbox delivery is FIFO
// per producer, a sender's data always precedes its marker, so "all
// markers seen" implies "all records delivered"; the received total is
// asserted against the marker counts in debug builds. No barrier or
// allreduce is involved: ranks leave the phase independently, and chunks
// from a neighbour that has already raced into the next epoch are deferred
// (never mis-delivered) until this rank's epoch catches up. Phase skew
// cannot exceed one epoch, since leaving epoch E requires every peer's
// epoch-E marker.
//
// Fail-fast semantics: a rank whose body throws records its exception,
// raises the runtime-wide abort flag, wakes every blocked mailbox waiter,
// and *drops* from the barrier (`arrive_and_drop`) instead of stranding
// peers mid-collective. Every collective checks the flag on entry and
// again after each barrier wait (before touching peer slots), throwing
// AbortedError; waiting polls recheck it on wakeup. The first real
// exception is rethrown from Runtime::run after all ranks have unwound —
// a throwing rank therefore terminates the whole run promptly instead of
// deadlocking it.
//
// SPMD typing convention: all ranks participating in a collective pass the
// same T. This mirrors MPI's untyped buffers and is asserted in debug
// builds via a per-collective type tag.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "pml/mailbox.hpp"

namespace plv::pml {

/// Thrown out of collectives and blocking polls on every surviving rank
/// once a peer has failed. Rank bodies normally let it propagate; the
/// Runtime swallows it and rethrows the originating rank's exception.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("pml: peer rank failed; run aborted") {}
};

/// Cumulative communication counters for one rank. Control markers (the
/// quiescence protocol's overhead) are not counted: stats describe payload
/// traffic only.
struct TrafficStats {
  std::uint64_t records_sent{0};
  std::uint64_t records_received{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t chunks_sent{0};
  std::uint64_t collectives{0};

  TrafficStats& operator+=(const TrafficStats& o) noexcept {
    records_sent += o.records_sent;
    records_received += o.records_received;
    bytes_sent += o.bytes_sent;
    chunks_sent += o.chunks_sent;
    collectives += o.collectives;
    return *this;
  }
};

namespace detail {

/// State shared by all ranks of one Runtime.
struct RuntimeState {
  explicit RuntimeState(int nranks)
      : nranks(nranks),
        barrier(nranks),
        slots(static_cast<std::size_t>(nranks), nullptr),
        mailboxes(static_cast<std::size_t>(nranks)),
        pools(static_cast<std::size_t>(nranks)) {}

  int nranks;
  std::barrier<> barrier;
  std::vector<const void*> slots;  // per-rank pointer for collectives
  std::vector<Mailbox> mailboxes;  // fine-grained receive queues
  std::vector<ChunkPool> pools;    // per-rank free lists; touched only by owner
  std::atomic<bool> aborted{false};

  /// Raises the abort flag and wakes every rank parked in a mailbox wait.
  void abort() noexcept {
    aborted.store(true, std::memory_order_seq_cst);
    for (auto& mb : mailboxes) mb.interrupt();
  }
};

}  // namespace detail

/// Per-rank communicator handle. All methods must be called from the
/// owning rank's thread only (there is no remote access; senders go
/// through the target's mailbox, which is thread-safe). Non-copyable: it
/// owns per-phase protocol state and any chunks deferred across epochs.
class Comm {
 public:
  Comm(detail::RuntimeState* state, int rank) noexcept
      : state_(state),
        rank_(rank),
        phase_sent_(static_cast<std::size_t>(state->nranks), 0) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  ~Comm() {
    for (Chunk* c : deferred_) pool().release(c);
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept { return state_->nranks; }

  void barrier() {
    ++stats_.collectives;
    sync();
  }

  // ---------------------------------------------------------------------
  // Collectives. All are synchronizing; every rank must call with the same
  // type and (for vector ops) the same length. Every one is an abort
  // point: if a peer has failed, AbortedError is thrown instead of
  // waiting on it.
  // ---------------------------------------------------------------------

  /// Element-wise reduction over one value per rank, combined in rank
  /// order (deterministic for non-associative ops like double addition).
  template <typename T, typename Op>
  [[nodiscard]] T allreduce(const T& value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    publish(&value);
    T acc = *source_ptr<T>(0);
    for (int r = 1; r < nranks(); ++r) acc = op(acc, *source_ptr<T>(r));
    retire();
    return acc;
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_max(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a < b ? b : a; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_min(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return b < a ? b : a; });
  }

  /// In-place element-wise sum of equal-length vectors across ranks
  /// (used for the ΔQ̂ gain histograms).
  template <typename T>
  void allreduce_vec_sum(std::vector<T>& vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    publish(&vec);
    std::vector<T> acc(vec.size(), T{});
    for (int r = 0; r < nranks(); ++r) {
      const auto& src = *source_ptr<std::vector<T>>(r);
      assert(src.size() == vec.size());
      for (std::size_t i = 0; i < vec.size(); ++i) acc[i] += src[i];
    }
    retire();           // all ranks have finished reading
    vec = std::move(acc);
    barrier();          // no rank reuses `vec` before all writes land
  }

  /// Gathers one value per rank, indexed by rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    publish(&value);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(nranks()));
    for (int r = 0; r < nranks(); ++r) out.push_back(*source_ptr<T>(r));
    retire();
    return out;
  }

  /// Concatenates per-rank vectors, in rank order.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& mine) {
    publish(&mine);
    std::vector<T> out;
    for (int r = 0; r < nranks(); ++r) {
      const auto& src = *source_ptr<std::vector<T>>(r);
      out.insert(out.end(), src.begin(), src.end());
    }
    retire();
    return out;
  }

  /// All-to-all variable exchange: `outgoing[d]` goes to rank d; returns
  /// everything addressed to this rank, concatenated in source-rank order
  /// (deterministic). `outgoing` must have nranks() entries and must stay
  /// unmodified until the call returns.
  template <typename T>
  [[nodiscard]] std::vector<T> exchange(const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
    }
    publish(&outgoing);
    std::vector<T> incoming;
    std::size_t total = 0;
    for (int r = 0; r < nranks(); ++r) {
      total += (*source_ptr<std::vector<std::vector<T>>>(r))[me()].size();
    }
    incoming.reserve(total);
    for (int r = 0; r < nranks(); ++r) {
      const auto& src = (*source_ptr<std::vector<std::vector<T>>>(r))[me()];
      incoming.insert(incoming.end(), src.begin(), src.end());
    }
    stats_.records_received += incoming.size();
    retire();
    return incoming;
  }

  /// Like exchange(), but keeps arrivals grouped by source rank:
  /// result[s] is exactly what rank s addressed to this rank. Needed by
  /// request/reply protocols (e.g. the Σtot fetch) where the reply must
  /// be routed back to, and matched up with, the requester.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> exchange_grouped(
      const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
    }
    publish(&outgoing);
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(nranks()));
    for (int r = 0; r < nranks(); ++r) {
      incoming[static_cast<std::size_t>(r)] =
          (*source_ptr<std::vector<std::vector<T>>>(r))[me()];
      stats_.records_received += incoming[static_cast<std::size_t>(r)].size();
    }
    retire();
    return incoming;
  }

  // ---------------------------------------------------------------------
  // Fine-grained messaging (active-message style). Senders usually go
  // through Aggregator (aggregator.hpp), which coalesces records straight
  // into pooled chunks and hands them over with send_filled — the
  // zero-copy path. send_chunk is the copy-once path for callers holding
  // a raw array.
  // ---------------------------------------------------------------------

  /// Takes a recycled chunk from the runtime pool with at least `bytes`
  /// of capacity. Pair with send_filled() or release_chunk().
  [[nodiscard]] Chunk* acquire_chunk(std::size_t bytes) {
    return pool().acquire(bytes);
  }

  /// Returns an acquired-but-unsent chunk to the pool.
  void release_chunk(Chunk* chunk) { pool().release(chunk); }

  /// Hands a filled chunk of `count` records to rank `dest`'s mailbox.
  /// Zero-copy: ownership of the node transfers to the receiver, which
  /// releases it back to the shared pool after processing.
  void send_filled(int dest, Chunk* chunk, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    assert(chunk != nullptr && !chunk->control);
    chunk->source = rank_;
    chunk->epoch = epoch_;
    phase_sent_[static_cast<std::size_t>(dest)] += count;
    stats_.records_sent += count;
    stats_.bytes_sent += chunk->size();
    ++stats_.chunks_sent;
    state_->mailboxes[static_cast<std::size_t>(dest)].push(chunk);
  }

  /// Copies `count` records of `record_size` bytes into a pooled chunk and
  /// deposits it into rank `dest`'s mailbox (one copy, no allocation in
  /// steady state).
  void send_chunk(int dest, const void* data, std::size_t record_size, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    Chunk* chunk = acquire_chunk(record_size * count);
    chunk->append(data, record_size * count);
    send_filled(dest, chunk, count);
  }

  /// Drains the mailbox, invoking `handler(source, span<const T>)` per chunk.
  /// Returns the number of records delivered. Chunks belonging to a later
  /// epoch (a neighbour already past this phase's drain) are set aside and
  /// delivered by the first poll of the matching epoch.
  template <typename T, typename Handler>
  std::size_t poll(Handler&& handler) {
    static_assert(std::is_trivially_copyable_v<T>);
    scratch_.clear();
    // Deferred chunks first: they arrived before anything drained now.
    if (!deferred_.empty()) {
      std::size_t kept = 0;
      for (Chunk* c : deferred_) {
        if (c->epoch == epoch_) {
          scratch_.push_back(c);
        } else {
          deferred_[kept++] = c;
        }
      }
      deferred_.resize(kept);
    }
    state_->mailboxes[me()].drain(scratch_);
    std::size_t records = 0;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      Chunk* c = scratch_[i];
      if (c->epoch != epoch_) {
        assert(c->epoch == epoch_ + 1);  // skew is bounded by one phase
        deferred_.push_back(c);
        continue;
      }
      if (c->control) {
        ++markers_seen_;
        expected_records_ += c->control_records;
        pool().release(c);
        continue;
      }
      assert(c->size() % sizeof(T) == 0);
      const std::size_t n = c->size() / sizeof(T);
      try {
        handler(c->source,
                std::span<const T>(reinterpret_cast<const T*>(c->data()), n));
      } catch (...) {
        // Recycle this and every unprocessed chunk before unwinding.
        for (std::size_t j = i; j < scratch_.size(); ++j) {
          if (scratch_[j]->epoch == epoch_) {
            pool().release(scratch_[j]);
          } else {
            deferred_.push_back(scratch_[j]);
          }
        }
        throw;
      }
      records += n;
      pool().release(c);
    }
    phase_received_ += records;
    stats_.records_received += records;
    return records;
  }

  /// Completes a fine-grained phase: delivers every record addressed to
  /// this rank, blocking (not spinning, and with no collective rounds)
  /// until the counted-termination markers from all ranks have arrived —
  /// see the protocol note in the header comment. Callers must have
  /// flushed their aggregators first, and must not send again until the
  /// call returns. Throws AbortedError if a peer fails mid-phase.
  template <typename T, typename Handler>
  void drain_until_quiescent(Handler&& handler) {
    // Announce end-of-phase to every rank (self included): one control
    // marker carrying the number of records this rank sent them.
    for (int d = 0; d < nranks(); ++d) {
      Chunk* marker = pool().acquire(0);
      marker->source = rank_;
      marker->epoch = epoch_;
      marker->control = true;
      marker->control_records = phase_sent_[static_cast<std::size_t>(d)];
      state_->mailboxes[static_cast<std::size_t>(d)].push(marker);
    }
    poll<T>(handler);
    while (markers_seen_ < static_cast<std::uint64_t>(nranks())) {
      state_->mailboxes[me()].wait_nonempty(
          [this] { return state_->aborted.load(std::memory_order_seq_cst); });
      check_abort();
      poll<T>(handler);
    }
    // FIFO-per-producer delivery means data precedes markers, so seeing
    // every marker implies having every record.
    assert(phase_received_ == expected_records_);
    ++epoch_;
    markers_seen_ = 0;
    expected_records_ = 0;
    phase_received_ = 0;
    std::fill(phase_sent_.begin(), phase_sent_.end(), 0);
    // Phase boundary: shed free-list nodes beyond the high-water mark so a
    // receive-heavy rank does not retain its peak footprint forever.
    pool().trim();
  }

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = TrafficStats{}; }

  /// High-water mark (in chunk nodes) for this rank's free list; trimmed at
  /// each fine-grained phase boundary. 0 = unbounded (never trim).
  void set_chunk_pool_watermark(std::size_t nodes) noexcept {
    pool().set_watermark(nodes);
  }
  [[nodiscard]] std::size_t chunk_pool_free_count() const noexcept {
    return state_->pools[me()].free_count();
  }

 private:
  [[nodiscard]] std::size_t me() const noexcept { return static_cast<std::size_t>(rank_); }

  /// This rank's chunk free list. Single-thread owned: the send path
  /// acquires here, the poll path releases drained (possibly foreign-born)
  /// nodes here, and nobody else ever touches it.
  [[nodiscard]] ChunkPool& pool() noexcept { return state_->pools[me()]; }

  void check_abort() const {
    if (state_->aborted.load(std::memory_order_seq_cst)) throw AbortedError();
  }

  /// One barrier phase with abort checks on both sides: never arrive when
  /// the run is already dead, and never touch peer state after waking
  /// without confirming every peer made it here too.
  void sync() {
    check_abort();
    state_->barrier.arrive_and_wait();
    check_abort();
  }

  void publish(const void* ptr) {
    state_->slots[me()] = ptr;
    ++stats_.collectives;
    sync();  // all pointers visible
  }

  template <typename T>
  [[nodiscard]] const T* source_ptr(int r) const noexcept {
    return static_cast<const T*>(state_->slots[static_cast<std::size_t>(r)]);
  }

  void retire() {
    sync();  // all ranks done reading
  }

  detail::RuntimeState* state_;
  int rank_;
  TrafficStats stats_;

  // Counted-termination bookkeeping for the current fine-grained phase.
  std::uint64_t epoch_{0};
  std::vector<std::uint64_t> phase_sent_;  // records sent per destination
  std::uint64_t phase_received_{0};
  std::uint64_t expected_records_{0};      // sum of marker counts addressed here
  std::uint64_t markers_seen_{0};
  std::vector<Chunk*> deferred_;           // next-epoch chunks, held back
  std::vector<Chunk*> scratch_;            // drain buffer, reused across polls
};

/// Spawns `nranks` rank threads running `body(Comm&)` and joins them.
/// Fail-fast: the first rank to throw stores its exception, flips the
/// shared abort flag, wakes all mailbox waiters, and drops out of the
/// barrier, so every peer's next (or current) collective throws
/// AbortedError instead of hanging. Peers unwound by AbortedError are not
/// treated as failures of their own; after all threads join, the original
/// exception is rethrown on the caller. Every rank — normal or failed —
/// leaves the barrier with arrive_and_drop on exit, so stragglers can
/// never block on a rank that has already finished.
class Runtime {
 public:
  static void run(int nranks, const std::function<void(Comm&)>& body) {
    if (nranks <= 0) throw std::invalid_argument("Runtime: nranks must be positive");
    detail::RuntimeState state(nranks);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&state, &body, &first_error, &error_mutex, r] {
        Comm comm(&state, r);
        bool failed = false;
        try {
          body(comm);
        } catch (const AbortedError&) {
          failed = true;  // peer-induced: the originating rank records the cause
        } catch (...) {
          {
            std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          failed = true;
        }
        if (failed) state.abort();
        state.barrier.arrive_and_drop();
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
    if (state.aborted.load(std::memory_order_seq_cst)) {
      // Possible only if a body threw AbortedError itself; still fail.
      throw AbortedError();
    }
  }
};

}  // namespace plv::pml
