// The parallel messaging layer (PML): ranks, collectives, fine-grained sends.
//
// This is the reproduction's substitute for the custom BlueGene/Q / P7-IH
// messaging runtime the paper builds on (refs [27]-[29]). Each *rank* is a
// thread or a process — chosen by TransportKind — and ranks share no
// algorithm state, communicating only through this API, so the Louvain
// code above it is structured exactly like a distributed-memory port:
//
//   * collectives  — barrier, allreduce, allgather, alltoallv `exchange`,
//     all deterministic (combine in rank order) so fixed seeds give
//     bit-identical runs on every transport;
//   * fine-grained — `send_chunk`/`poll` with per-destination coalescing
//     (see aggregator.hpp) plus a counted-termination quiescence protocol,
//     matching the paper's active-message style state propagation;
//   * traffic counters — record/byte counts per rank, used by the scaling
//     benches to report communication volume where the 1-core container
//     gates wall-clock speedup.
//
// Comm implements all of that ONCE over the Transport primitive set
// (transport.hpp): a synchronizing rank-ordered alltoallv, FIFO chunk
// lanes, a blocking incoming wait, and an abort flag. The protocol logic
// below is therefore transport-agnostic; backends only move bytes.
//
// Quiescence protocol (counted termination, zero collective rounds):
// every fine-grained phase has an epoch number, and every Comm tracks how
// many records it sent to each peer during the current epoch. Entering
// `drain_until_quiescent`, a rank sends one *control marker* per peer
// (through the same FIFO lanes as data) carrying that per-destination
// count, then polls — parking in Transport::wait_incoming rather than
// spinning — until it has seen all nranks markers. Because delivery is
// FIFO per producer, a sender's data always precedes its marker, so "all
// markers seen" implies "all records delivered"; the received total is
// checked against the marker counts — thrown as ProtocolError when
// protocol validation is on (transport_check.hpp: Debug default, or
// PLV_VALIDATE=1 / PLV_PARANOID=1), a debug assert otherwise. No barrier
// or allreduce is
// involved: ranks leave the phase independently, and chunks from a
// neighbour that has already raced into the next epoch are deferred
// (never mis-delivered) until this rank's epoch catches up. Phase skew
// cannot exceed one epoch, since leaving epoch E requires every peer's
// epoch-E marker.
//
// Fail-fast semantics: a rank whose body throws records its exception,
// raises the transport-wide abort flag, and wakes every blocked peer.
// Every collective checks the flag before and after its rendezvous,
// throwing AbortedError; waiting polls recheck it on wakeup. The first
// real exception is rethrown from Runtime::run after all ranks have
// unwound — a throwing rank therefore terminates the whole run promptly
// instead of deadlocking it. (On the process backend, exception types
// survive only for rank 0, which runs in the calling process; child
// failures surface as RemoteRankError carrying the original text.)
//
// SPMD typing convention: all ranks participating in a collective pass
// the same T, mirroring MPI's untyped buffers.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/traffic.hpp"
#include "pml/mailbox.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "pml/transport_proc.hpp"
#include "pml/transport_tcp.hpp"
#include "pml/transport_thread.hpp"

namespace plv::pml {

using plv::TrafficStats;

/// Per-rank communicator handle. All methods must be called from the
/// owning rank only (there is no remote access; senders go through the
/// transport, which is safe across ranks). Non-copyable: it owns
/// per-phase protocol state and any chunks deferred across epochs.
class Comm {
 public:
  explicit Comm(Transport& transport)
      : transport_(&transport),
        rank_(transport.rank()),
        // The typed quiescence count check (the one invariant the seam-level
        // checker cannot verify exactly, not knowing sizeof(T)) throws
        // whenever protocol validation is on — via the environment knobs or
        // because the transport underneath is already a ValidatingTransport.
        quiescence_enforced_(
            resolve_validate(false) ||
            dynamic_cast<const ValidatingTransport*>(&transport) != nullptr),
        phase_sent_(static_cast<std::size_t>(transport.nranks()), 0) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  ~Comm() {
    for (Chunk* c : deferred_) transport_->release_chunk(c);
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept { return transport_->nranks(); }

  /// Name of the backend carrying this run ("thread", "proc").
  [[nodiscard]] const char* transport_name() const noexcept {
    return transport_->name();
  }

  void barrier() {
    ++stats_.collectives;
    transport_->barrier();
  }

  // ---------------------------------------------------------------------
  // Collectives. All are synchronizing; every rank must call with the same
  // type and (for vector ops) the same length. Every one is an abort
  // point: if a peer has failed, AbortedError is thrown instead of
  // waiting on it.
  // ---------------------------------------------------------------------

  /// Element-wise reduction over one value per rank, combined in rank
  /// order (deterministic for non-associative ops like double addition).
  template <typename T, typename Op>
  [[nodiscard]] T allreduce(const T& value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(value_bytes(value));
    struct Sink final : CollectiveSink {
      void deliver(int source, std::span<const std::byte> bytes) override {
        assert(bytes.size() == sizeof(T));
        T v;
        std::memcpy(&v, bytes.data(), sizeof(T));
        acc = source == 0 ? v : (*op)(acc, v);
      }
      T acc{};
      Op* op{nullptr};
    } sink;
    sink.op = &op;
    transport_->alltoallv(spans_, sink);
    return sink.acc;
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_max(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a < b ? b : a; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_min(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return b < a ? b : a; });
  }

  /// In-place element-wise sum of equal-length vectors across ranks
  /// (used for the ΔQ̂ gain histograms). The overload taking `scratch`
  /// accumulates into that caller-owned buffer and swaps it in, so
  /// steady-state callers (the per-iteration gain histogram) allocate
  /// nothing; the single-argument form allocates a temporary accumulator.
  template <typename T>
  void allreduce_vec_sum(std::vector<T>& vec) {
    std::vector<T> scratch;
    allreduce_vec_sum(vec, scratch);
  }

  template <typename T>
  void allreduce_vec_sum(std::vector<T>& vec, std::vector<T>& scratch) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(vector_bytes(vec));
    struct Sink final : CollectiveSink {
      void deliver(int /*source*/, std::span<const std::byte> bytes) override {
        assert(bytes.size() == acc->size() * sizeof(T));
        for (std::size_t i = 0; i < acc->size(); ++i) {
          T v;
          std::memcpy(&v, bytes.data() + i * sizeof(T), sizeof(T));
          (*acc)[i] += v;
        }
      }
      std::vector<T>* acc{nullptr};
    } sink;
    scratch.assign(vec.size(), T{});
    sink.acc = &scratch;
    transport_->alltoallv(spans_, sink);
    // alltoallv returns only after every rank finished reading the
    // published spans, so rewriting vec here is race-free.
    std::swap(vec, scratch);
  }

  /// Gathers one value per rank, indexed by rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(value_bytes(value));
    struct Sink final : CollectiveSink {
      void deliver(int /*source*/, std::span<const std::byte> bytes) override {
        assert(bytes.size() == sizeof(T));
        T v;
        std::memcpy(&v, bytes.data(), sizeof(T));
        out.push_back(v);
      }
      std::vector<T> out;
    } sink;
    sink.out.reserve(static_cast<std::size_t>(nranks()));
    transport_->alltoallv(spans_, sink);
    return std::move(sink.out);
  }

  /// Concatenates per-rank vectors, in rank order.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(vector_bytes(mine));
    AppendSink<T> sink;
    transport_->alltoallv(spans_, sink);
    return std::move(sink.out);
  }

  /// All-to-all variable exchange: `outgoing[d]` goes to rank d; returns
  /// everything addressed to this rank, concatenated in source-rank order
  /// (deterministic). `outgoing` must have nranks() entries and must stay
  /// unmodified until the call returns.
  template <typename T>
  [[nodiscard]] std::vector<T> exchange(const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    ++stats_.collectives;
    spans_.clear();
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
      spans_.push_back(vector_bytes(dest));
    }
    AppendSink<T> sink;
    transport_->alltoallv(spans_, sink);
    stats_.records_received += sink.out.size();
    return std::move(sink.out);
  }

  /// Like exchange(), but keeps arrivals grouped by source rank:
  /// result[s] is exactly what rank s addressed to this rank. Needed by
  /// request/reply protocols (e.g. the Σtot fetch) where the reply must
  /// be routed back to, and matched up with, the requester.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> exchange_grouped(
      const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    ++stats_.collectives;
    spans_.clear();
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
      spans_.push_back(vector_bytes(dest));
    }
    struct Sink final : CollectiveSink {
      void deliver(int source, std::span<const std::byte> bytes) override {
        if (bytes.empty()) return;  // empty lane: data() may be null (UB in memcpy)
        auto& dst = incoming[static_cast<std::size_t>(source)];
        dst.resize(bytes.size() / sizeof(T));
        std::memcpy(dst.data(), bytes.data(), bytes.size());
      }
      std::vector<std::vector<T>> incoming;
    } sink;
    sink.incoming.resize(static_cast<std::size_t>(nranks()));
    transport_->alltoallv(spans_, sink);
    for (const auto& src : sink.incoming) stats_.records_received += src.size();
    return std::move(sink.incoming);
  }

  /// Streaming all-to-all over the fine-grained plane: `outgoing[d]` goes
  /// to rank d (like exchange()), but there is no collective rendezvous —
  /// payloads ship as pooled chunks through the FIFO lanes and the phase
  /// ends with the counted-termination marker protocol, so ranks enter and
  /// leave independently. Between sending and draining, `overlap()` runs
  /// on this rank — compute that does not depend on the arrivals (the
  /// refine loop's stay-score initialization) executes while peer data is
  /// in flight.
  ///
  /// Determinism contract: arrivals are staged per source rank and
  /// `on_record(source, span<const T>)` is invoked in ascending source
  /// order (FIFO within a source), exactly the order the blocking
  /// exchange() delivers — so floating-point apply order, and therefore
  /// every downstream artifact, is bit-identical to the blocking path.
  /// The apply is progressive: source s's records are handed over as soon
  /// as s's end-of-phase marker has arrived and sources 0..s-1 are done,
  /// so receivers consume early senders while stragglers still transmit.
  ///
  /// on_record must not send. Records/bytes counters advance exactly as
  /// exchange() would; no collective round is recorded.
  ///
  /// Wire shape: each remote destination receives exactly ONE chunk, a
  /// fused data+marker (control=true, control_records=payload record
  /// count, payload appended in the same node) — an empty lane
  /// degenerates to a pure marker. Fusing the end-of-phase marker into
  /// the data chunk halves the per-phase message count versus
  /// data-then-marker, which is the dominant cost of small dense
  /// exchanges (both backends ship the control flag and the payload in
  /// one frame already). The self lane never touches the transport: the
  /// drain applies it in rank order straight out of `outgoing[rank()]`,
  /// so `outgoing` must stay alive and unmodified until the call returns
  /// (exchange() requires the same). Markers stay uncounted in
  /// TrafficStats; only payloads advance records/bytes.
  template <typename T, typename OnRecord, typename OverlapWork>
  void exchange_streaming(const std::vector<std::vector<T>>& outgoing,
                          OnRecord&& on_record, OverlapWork&& overlap) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    for (int d = 0; d < nranks(); ++d) {
      if (d == rank_) continue;
      const auto& dest = outgoing[static_cast<std::size_t>(d)];
      const std::size_t bytes = dest.size() * sizeof(T);
      Chunk* chunk = transport_->acquire_chunk(bytes);
      chunk->source = rank_;
      chunk->epoch = epoch_;
      chunk->control = true;
      chunk->control_records = dest.size();
      if (!dest.empty()) {
        chunk->append(dest.data(), bytes);
        stats_.records_sent += dest.size();
        stats_.bytes_sent += bytes;
        ++stats_.chunks_sent;
      }
      transport_->send(d, chunk);
    }
    const auto& self = outgoing[static_cast<std::size_t>(rank_)];
    stats_.records_sent += self.size();
    stats_.bytes_sent += self.size() * sizeof(T);
    self_payload_ = {reinterpret_cast<const std::byte*>(self.data()),
                     self.size() * sizeof(T)};
    self_local_ = true;
    std::forward<OverlapWork>(overlap)();
    drain_streaming_impl<T>(std::forward<OnRecord>(on_record),
                            /*send_markers=*/false);
  }

  template <typename T, typename OnRecord>
  void exchange_streaming(const std::vector<std::vector<T>>& outgoing,
                          OnRecord&& on_record) {
    exchange_streaming<T>(outgoing, std::forward<OnRecord>(on_record), [] {});
  }

  // ---------------------------------------------------------------------
  // Fine-grained messaging (active-message style). Senders usually go
  // through Aggregator (aggregator.hpp), which coalesces records straight
  // into pooled chunks and hands them over with send_filled — the
  // zero-copy path on the thread backend. send_chunk is the copy-once
  // path for callers holding a raw array.
  // ---------------------------------------------------------------------

  /// Takes a recycled chunk from the rank's pool with at least `bytes`
  /// of capacity. Pair with send_filled() or release_chunk().
  [[nodiscard]] Chunk* acquire_chunk(std::size_t bytes) {
    return transport_->acquire_chunk(bytes);
  }

  /// Returns an acquired-but-unsent chunk to the pool.
  void release_chunk(Chunk* chunk) { transport_->release_chunk(chunk); }

  /// Hands a filled chunk of `count` records to rank `dest`. Ownership of
  /// the node transfers to the transport (zero-copy on threads: the
  /// receiver releases the same node back to the shared pool).
  void send_filled(int dest, Chunk* chunk, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    assert(chunk != nullptr && !chunk->control);
    chunk->source = rank_;
    chunk->epoch = epoch_;
    phase_sent_[static_cast<std::size_t>(dest)] += count;
    stats_.records_sent += count;
    stats_.bytes_sent += chunk->size();
    ++stats_.chunks_sent;
    transport_->send(dest, chunk);
  }

  /// send_filled variant that also ends the phase toward `dest`: the
  /// chunk ships as a fused data+marker whose control_records covers
  /// every record this rank sent `dest` this phase (this chunk included),
  /// so the drain needs no separate marker message. The caller must not
  /// send to `dest` again until the phase completes; pair with
  /// drain_streaming_finalized (Aggregator::flush_all_final does both
  /// halves of the send side).
  void send_filled_final(int dest, Chunk* chunk, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    assert(chunk != nullptr && !chunk->control);
    chunk->source = rank_;
    chunk->epoch = epoch_;
    chunk->control = true;
    chunk->control_records = phase_sent_[static_cast<std::size_t>(dest)] + count;
    phase_sent_[static_cast<std::size_t>(dest)] += count;
    stats_.records_sent += count;
    stats_.bytes_sent += chunk->size();
    ++stats_.chunks_sent;
    transport_->send(dest, chunk);
  }

  /// Pure end-of-phase marker toward one destination — the empty-lane
  /// counterpart of send_filled_final for callers that finalize each
  /// destination themselves instead of letting drain_streaming announce
  /// the phase end to everyone.
  void send_marker(int dest) {
    assert(dest >= 0 && dest < nranks());
    Chunk* marker = transport_->acquire_chunk(0);
    marker->source = rank_;
    marker->epoch = epoch_;
    marker->control = true;
    marker->control_records = phase_sent_[static_cast<std::size_t>(dest)];
    transport_->send(dest, marker);
  }

  /// Copies `count` records of `record_size` bytes into a pooled chunk
  /// and sends it to rank `dest` (one copy, no allocation in steady
  /// state).
  void send_chunk(int dest, const void* data, std::size_t record_size, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    Chunk* chunk = acquire_chunk(record_size * count);
    chunk->append(data, record_size * count);
    send_filled(dest, chunk, count);
  }

  /// Drains incoming chunks, invoking `handler(source, span<const T>)` per
  /// chunk. Returns the number of records delivered. Chunks belonging to
  /// a later epoch (a neighbour already past this phase's drain) are set
  /// aside and delivered by the first poll of the matching epoch.
  template <typename T, typename Handler>
  std::size_t poll(Handler&& handler) {
    static_assert(std::is_trivially_copyable_v<T>);
    scratch_.clear();
    // Deferred chunks first: they arrived before anything drained now.
    if (!deferred_.empty()) {
      std::size_t kept = 0;
      for (Chunk* c : deferred_) {
        if (c->epoch == epoch_) {
          scratch_.push_back(c);
        } else {
          deferred_[kept++] = c;
        }
      }
      deferred_.resize(kept);
    }
    transport_->drain(scratch_);
    std::size_t records = 0;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      Chunk* c = scratch_[i];
      if (c->epoch != epoch_) {
        assert(c->epoch == epoch_ + 1);  // skew is bounded by one phase
        deferred_.push_back(c);
        continue;
      }
      if (c->control) {
        // Fused data+marker chunks are an exchange_streaming wire shape;
        // SPMD phase alignment means they only ever drain via poll_staged.
        assert(c->size() == 0);
        ++markers_seen_;
        expected_records_ += c->control_records;
        transport_->release_chunk(c);
        continue;
      }
      assert(c->size() % sizeof(T) == 0);
      const std::size_t n = c->size() / sizeof(T);
      try {
        handler(c->source,
                std::span<const T>(reinterpret_cast<const T*>(c->data()), n));
      } catch (...) {
        // Recycle this and every unprocessed chunk before unwinding.
        for (std::size_t j = i; j < scratch_.size(); ++j) {
          if (scratch_[j]->epoch == epoch_) {
            transport_->release_chunk(scratch_[j]);
          } else {
            deferred_.push_back(scratch_[j]);
          }
        }
        throw;
      }
      records += n;
      transport_->release_chunk(c);
    }
    phase_received_ += records;
    stats_.records_received += records;
    return records;
  }

  /// Completes a fine-grained phase: delivers every record addressed to
  /// this rank, blocking (not spinning, and with no collective rounds)
  /// until the counted-termination markers from all ranks have arrived —
  /// see the protocol note in the header comment. Callers must have
  /// flushed their aggregators first, and must not send again until the
  /// call returns. Throws AbortedError if a peer fails mid-phase.
  template <typename T, typename Handler>
  void drain_until_quiescent(Handler&& handler) {
    // Announce end-of-phase to every rank (self included): one control
    // marker carrying the number of records this rank sent them.
    for (int d = 0; d < nranks(); ++d) send_marker(d);
    poll<T>(handler);
    while (markers_seen_ < static_cast<std::uint64_t>(nranks())) {
      transport_->wait_incoming();
      check_abort();
      poll<T>(handler);
    }
    // FIFO-per-producer delivery means data precedes markers, so seeing
    // every marker implies having every record. Thrown as ProtocolError
    // whenever validation is on (Debug default; PLV_VALIDATE/PLV_PARANOID
    // in Release); a Debug assert otherwise.
    detail::check_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                          phase_received_, expected_records_,
                                          transport_->name(), /*streaming=*/false);
    ++epoch_;
    markers_seen_ = 0;
    expected_records_ = 0;
    phase_received_ = 0;
    std::fill(phase_sent_.begin(), phase_sent_.end(), 0);
    // Phase boundary: shed free-list nodes beyond the high-water mark so a
    // receive-heavy rank does not retain its peak footprint forever.
    transport_->trim_pool();
  }

  /// Ordered-apply variant of drain_until_quiescent: the streaming side of
  /// exchange_streaming, usable directly by callers that sent through
  /// send_filled/send_chunk or an Aggregator. Arrivals are staged per
  /// source and `on_record(source, span<const T>)` fires in ascending
  /// source-rank order (FIFO within a source), progressively as each
  /// source's marker lands — deterministic apply order with overlap where
  /// the arrival schedule allows it. Same preconditions as
  /// drain_until_quiescent (aggregators flushed, no sends until return).
  template <typename T, typename OnRecord>
  void drain_streaming(OnRecord&& on_record) {
    drain_streaming_impl<T>(std::forward<OnRecord>(on_record),
                            /*send_markers=*/true);
  }

  /// drain_streaming for callers that already ended the phase toward
  /// every destination themselves (send_filled_final / send_marker per
  /// dest — Aggregator::flush_all_final does exactly that): no marker
  /// wave is sent here, the fused final chunks carry the counts.
  template <typename T, typename OnRecord>
  void drain_streaming_finalized(OnRecord&& on_record) {
    drain_streaming_impl<T>(std::forward<OnRecord>(on_record),
                            /*send_markers=*/false);
  }

 private:
  /// Shared body of drain_streaming and exchange_streaming. With
  /// send_markers, announces end-of-phase with one pure control chunk per
  /// peer (the send_filled/send_chunk/Aggregator flow); without, the
  /// caller already fused the marker into each destination's single data
  /// chunk and no extra message is needed.
  template <typename T, typename OnRecord>
  void drain_streaming_impl(OnRecord&& on_record, bool send_markers) {
    const auto P = static_cast<std::size_t>(nranks());
    if (staged_.size() != P) staged_.resize(P);
    marker_from_.assign(P, 0);
    next_apply_ = 0;
    if (self_local_) {
      // The self lane was kept out of the transport: account for it as
      // both an implicit marker and already-arrived records, so counted
      // termination and TrafficStats match the chunk-borne path exactly.
      marker_from_[static_cast<std::size_t>(rank_)] = 1;
      ++markers_seen_;
      const std::size_t n = self_payload_.size() / sizeof(T);
      expected_records_ += n;
      phase_received_ += n;
      stats_.records_received += n;
    }
    if (send_markers) {
      for (int d = 0; d < nranks(); ++d) send_marker(d);
    }
    try {
      poll_staged(sizeof(T));
      apply_ready_sources<T>(on_record);
      while (markers_seen_ < static_cast<std::uint64_t>(nranks()) ||
             next_apply_ < nranks()) {
        if (markers_seen_ < static_cast<std::uint64_t>(nranks())) {
          transport_->wait_incoming();
          check_abort();
        }
        poll_staged(sizeof(T));
        apply_ready_sources<T>(on_record);
      }
    } catch (...) {
      for (auto& chunks : staged_) {
        for (Chunk* c : chunks) transport_->release_chunk(c);
        chunks.clear();
      }
      self_local_ = false;
      self_payload_ = {};
      throw;
    }
    self_local_ = false;
    self_payload_ = {};
    detail::check_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                          phase_received_, expected_records_,
                                          transport_->name(), /*streaming=*/true);
    ++epoch_;
    markers_seen_ = 0;
    expected_records_ = 0;
    phase_received_ = 0;
    std::fill(phase_sent_.begin(), phase_sent_.end(), 0);
    transport_->trim_pool();
  }

 public:
  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = TrafficStats{}; }

  /// High-water mark (in chunk nodes) for this rank's free list; trimmed
  /// at each fine-grained phase boundary. 0 = unbounded (never trim).
  void set_chunk_pool_watermark(std::size_t nodes) noexcept {
    transport_->set_pool_watermark(nodes);
  }
  [[nodiscard]] std::size_t chunk_pool_free_count() const noexcept {
    return transport_->pool_free_count();
  }

 private:
  template <typename T>
  [[nodiscard]] static std::span<const std::byte> value_bytes(const T& v) noexcept {
    return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] static std::span<const std::byte> vector_bytes(
      const std::vector<T>& v) noexcept {
    return {reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T)};
  }

  /// Reusable sink that concatenates arrivals (rank order) into one
  /// typed vector, reserving exactly from the transport's size hint.
  template <typename T>
  struct AppendSink final : CollectiveSink {
    void total_hint(std::size_t bytes) override { out.reserve(bytes / sizeof(T)); }
    void deliver(int /*source*/, std::span<const std::byte> bytes) override {
      if (bytes.empty()) return;  // empty lane: data() may be null (UB in memcpy)
      assert(bytes.size() % sizeof(T) == 0);
      const std::size_t old = out.size();
      out.resize(old + bytes.size() / sizeof(T));
      std::memcpy(out.data() + old, bytes.data(), bytes.size());
    }
    std::vector<T> out;
  };

  /// poll() twin for the streaming drain: data chunks are retained in
  /// staged_[source] (arrival order = FIFO per source) instead of being
  /// applied and released; markers additionally set the per-source flag
  /// that gates the ordered progressive apply.
  void poll_staged(std::size_t record_size) {
    scratch_.clear();
    if (!deferred_.empty()) {
      std::size_t kept = 0;
      for (Chunk* c : deferred_) {
        if (c->epoch == epoch_) {
          scratch_.push_back(c);
        } else {
          deferred_[kept++] = c;
        }
      }
      deferred_.resize(kept);
    }
    transport_->drain(scratch_);
    std::size_t records = 0;
    for (Chunk* c : scratch_) {
      if (c->epoch != epoch_) {
        assert(c->epoch == epoch_ + 1);  // skew is bounded by one phase
        deferred_.push_back(c);
        continue;
      }
      if (c->control) {
        ++markers_seen_;
        expected_records_ += c->control_records;
        marker_from_[static_cast<std::size_t>(c->source)] = 1;
        // Fused data+marker (exchange_streaming's wire shape): the payload
        // rides in the control chunk, so stage it like a data chunk
        // instead of releasing the node.
        if (c->size() == 0) {
          transport_->release_chunk(c);
          continue;
        }
      }
      assert(c->size() % record_size == 0);
      records += c->size() / record_size;
      staged_[static_cast<std::size_t>(c->source)].push_back(c);
    }
    phase_received_ += records;
    stats_.records_received += records;
  }

  /// Applies (and releases) the staged chunks of every source whose marker
  /// has arrived and whose predecessors are all done — the in-order front
  /// of the phase. FIFO delivery means a source's marker trails its data,
  /// so a flagged source is complete.
  template <typename T, typename OnRecord>
  void apply_ready_sources(OnRecord&& on_record) {
    while (next_apply_ < nranks() &&
           marker_from_[static_cast<std::size_t>(next_apply_)] != 0) {
      if (self_local_ && next_apply_ == rank_) {
        // Zero-copy self lane: delivered straight from the caller's
        // outgoing buffer, in its rank-order slot like any other source.
        if (!self_payload_.empty()) {
          on_record(rank_, std::span<const T>(
                               reinterpret_cast<const T*>(self_payload_.data()),
                               self_payload_.size() / sizeof(T)));
        }
        ++next_apply_;
        continue;
      }
      auto& chunks = staged_[static_cast<std::size_t>(next_apply_)];
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        Chunk* c = chunks[i];
        const std::size_t n = c->size() / sizeof(T);
        try {
          on_record(next_apply_,
                    std::span<const T>(reinterpret_cast<const T*>(c->data()), n));
        } catch (...) {
          // Drop what was already applied; the phase-level catch in
          // drain_streaming releases the rest.
          chunks.erase(chunks.begin(), chunks.begin() + static_cast<std::ptrdiff_t>(i));
          throw;
        }
        transport_->release_chunk(c);
      }
      chunks.clear();
      ++next_apply_;
    }
  }

  /// The same payload for every destination (allreduce/allgather shape).
  void broadcast_spans(std::span<const std::byte> payload) {
    spans_.assign(static_cast<std::size_t>(nranks()), payload);
  }

  void check_abort() const {
    if (transport_->aborted()) throw AbortedError();
  }

  Transport* transport_;
  int rank_;
  // Whether the quiescence count mismatch throws (validation on) instead
  // of the historical Debug assert. Fixed at construction.
  bool quiescence_enforced_;
  TrafficStats stats_;
  std::vector<std::span<const std::byte>> spans_;  // per-collective scratch

  // Counted-termination bookkeeping for the current fine-grained phase.
  std::uint64_t epoch_{0};
  std::vector<std::uint64_t> phase_sent_;  // records sent per destination
  std::uint64_t phase_received_{0};
  std::uint64_t expected_records_{0};      // sum of marker counts addressed here
  std::uint64_t markers_seen_{0};
  std::vector<Chunk*> deferred_;           // next-epoch chunks, held back
  std::vector<Chunk*> scratch_;            // drain buffer, reused across polls

  // Streaming-drain staging: per-source chunk queues (FIFO), per-source
  // marker flags, and the in-order apply cursor. Live only inside
  // drain_streaming; buffers persist across phases to avoid reallocation.
  std::vector<std::vector<Chunk*>> staged_;
  std::vector<std::uint8_t> marker_from_;
  int next_apply_{0};
  // exchange_streaming's zero-copy self lane: a view into the caller's
  // outgoing[rank()] buffer, applied in rank order without ever touching
  // the transport. Valid only between send and drain completion.
  std::span<const std::byte> self_payload_{};
  bool self_local_{false};
};

/// Runs `body(Comm&)` on `nranks` ranks over the chosen transport and
/// joins them. Fail-fast: the first rank to throw stores its exception,
/// flips the shared abort flag, and wakes all waiters, so every peer's
/// next (or current) collective throws AbortedError instead of hanging.
/// Peers unwound by AbortedError are not treated as failures of their
/// own; after all ranks finish, the original exception is rethrown on the
/// caller (child-process failures as RemoteRankError).
class Runtime {
 public:
  /// Default entry: thread backend unless PLV_TRANSPORT overrides;
  /// protocol validation per build default unless PLV_VALIDATE /
  /// PLV_PARANOID override.
  static void run(int nranks, const std::function<void(Comm&)>& body) {
    run(nranks, body, resolve_transport(TransportKind::kThread));
  }

  /// Explicit-backend entry (no transport environment resolution — callers
  /// that honor PLV_TRANSPORT apply resolve_transport() themselves).
  /// Validation still follows the build default + environment.
  static void run(int nranks, const std::function<void(Comm&)>& body,
                  TransportKind kind) {
    run(nranks, body, kind, resolve_validate(kValidateTransportDefault));
  }

  /// Fully explicit entry: no environment resolution on either knob
  /// (callers apply resolve_transport/resolve_validate themselves). With
  /// `validate`, every rank's transport is wrapped in a ValidatingTransport
  /// (transport_check.hpp) and finalized — goodbye checks included — after
  /// a clean body return; a ProtocolError fails the run like any rank
  /// exception. `tcp` is consulted only by the kTcp backend (defaults
  /// select its loopback self-test fleet; PLV_HOSTS/PLV_RANK still apply
  /// inside run_tcp_ranks).
  static void run(int nranks, const std::function<void(Comm&)>& body,
                  TransportKind kind, bool validate, const TcpOptions& tcp = {}) {
    if (nranks <= 0) throw std::invalid_argument("Runtime: nranks must be positive");
    if (kind == TransportKind::kProc) {
      detail::run_proc_ranks(nranks, body, validate);
      return;
    }
    if (kind == TransportKind::kTcp) {
      detail::run_tcp_ranks(nranks, body, validate, tcp);
      return;
    }
    run_threads(nranks, body, validate);
  }

 private:
  static void run_threads(int nranks, const std::function<void(Comm&)>& body,
                          bool validate) {
    detail::ThreadShared state(nranks);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&state, &body, &first_error, &error_mutex, validate, r] {
        ThreadTransport transport(&state, r);
        bool failed = false;
        try {
          if (validate) {
            ValidatingTransport checked(transport);
            {
              Comm comm(checked);
              body(comm);
            }
            // Goodbye transition after the Comm destructor released its
            // deferred chunks; leaks and post-goodbye traffic throw.
            checked.finalize();
          } else {
            Comm comm(transport);
            body(comm);
          }
        } catch (const AbortedError&) {
          failed = true;  // peer-induced: the originating rank records the cause
        } catch (...) {
          {
            std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          failed = true;
        }
        if (failed) state.abort();
        // Leave the barrier permanently so stragglers can never block on
        // a rank that has already finished.
        state.barrier.arrive_and_drop();
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
    if (state.aborted.load(std::memory_order_seq_cst)) {
      // Possible only if a body threw AbortedError itself; still fail.
      throw AbortedError();
    }
  }
};

}  // namespace plv::pml
