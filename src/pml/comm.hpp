// The parallel messaging layer (PML): ranks, collectives, fine-grained sends.
//
// This is the reproduction's substitute for the custom BlueGene/Q / P7-IH
// messaging runtime the paper builds on (refs [27]-[29]). Each *rank* is a
// thread; ranks share no algorithm state and communicate only through this
// API, so the Louvain code above it is structured exactly like a
// distributed-memory port:
//
//   * collectives  — barrier, allreduce, allgather, alltoallv `exchange`,
//     all deterministic (combine in rank order) so fixed seeds give
//     bit-identical runs;
//   * fine-grained — `send_record`/`poll` with per-destination coalescing
//     (see aggregator.hpp) plus a quiescence protocol, matching the paper's
//     active-message style state propagation;
//   * traffic counters — record/byte counts per rank, used by the scaling
//     benches to report communication volume where the 1-core container
//     gates wall-clock speedup.
//
// SPMD typing convention: all ranks participating in a collective pass the
// same T. This mirrors MPI's untyped buffers and is asserted in debug
// builds via a per-collective type tag.
#pragma once

#include <atomic>
#include <barrier>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "pml/mailbox.hpp"

namespace plv::pml {

/// Cumulative communication counters for one rank.
struct TrafficStats {
  std::uint64_t records_sent{0};
  std::uint64_t records_received{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t chunks_sent{0};
  std::uint64_t collectives{0};

  TrafficStats& operator+=(const TrafficStats& o) noexcept {
    records_sent += o.records_sent;
    records_received += o.records_received;
    bytes_sent += o.bytes_sent;
    chunks_sent += o.chunks_sent;
    collectives += o.collectives;
    return *this;
  }
};

namespace detail {

/// State shared by all ranks of one Runtime.
struct RuntimeState {
  explicit RuntimeState(int nranks)
      : nranks(nranks),
        barrier(nranks),
        slots(static_cast<std::size_t>(nranks), nullptr),
        mailboxes(static_cast<std::size_t>(nranks)),
        sent(static_cast<std::size_t>(nranks)),
        received(static_cast<std::size_t>(nranks)) {
    for (auto& s : sent) s.store(0, std::memory_order_relaxed);
    for (auto& r : received) r.store(0, std::memory_order_relaxed);
  }

  int nranks;
  std::barrier<> barrier;
  std::vector<const void*> slots;         // per-rank pointer for collectives
  std::vector<Mailbox> mailboxes;         // fine-grained receive queues
  std::vector<std::atomic<std::uint64_t>> sent;      // records, per rank
  std::vector<std::atomic<std::uint64_t>> received;  // records, per rank
};

}  // namespace detail

/// Per-rank communicator handle. Cheap to copy; all methods must be called
/// from the owning rank's thread only (except none — there is no remote
/// access; senders go through the target's mailbox, which is thread-safe).
class Comm {
 public:
  Comm(detail::RuntimeState* state, int rank) noexcept : state_(state), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept { return state_->nranks; }

  void barrier() {
    ++stats_.collectives;
    state_->barrier.arrive_and_wait();
  }

  // ---------------------------------------------------------------------
  // Collectives. All are synchronizing; every rank must call with the same
  // type and (for vector ops) the same length.
  // ---------------------------------------------------------------------

  /// Element-wise reduction over one value per rank, combined in rank
  /// order (deterministic for non-associative ops like double addition).
  template <typename T, typename Op>
  [[nodiscard]] T allreduce(const T& value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    publish(&value);
    T acc = *source_ptr<T>(0);
    for (int r = 1; r < nranks(); ++r) acc = op(acc, *source_ptr<T>(r));
    retire();
    return acc;
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_max(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a < b ? b : a; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_min(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return b < a ? b : a; });
  }

  /// In-place element-wise sum of equal-length vectors across ranks
  /// (used for the ΔQ̂ gain histograms).
  template <typename T>
  void allreduce_vec_sum(std::vector<T>& vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    publish(&vec);
    std::vector<T> acc(vec.size(), T{});
    for (int r = 0; r < nranks(); ++r) {
      const auto& src = *source_ptr<std::vector<T>>(r);
      assert(src.size() == vec.size());
      for (std::size_t i = 0; i < vec.size(); ++i) acc[i] += src[i];
    }
    retire();           // all ranks have finished reading
    vec = std::move(acc);
    barrier();          // no rank reuses `vec` before all writes land
  }

  /// Gathers one value per rank, indexed by rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    publish(&value);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(nranks()));
    for (int r = 0; r < nranks(); ++r) out.push_back(*source_ptr<T>(r));
    retire();
    return out;
  }

  /// Concatenates per-rank vectors, in rank order.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& mine) {
    publish(&mine);
    std::vector<T> out;
    for (int r = 0; r < nranks(); ++r) {
      const auto& src = *source_ptr<std::vector<T>>(r);
      out.insert(out.end(), src.begin(), src.end());
    }
    retire();
    return out;
  }

  /// All-to-all variable exchange: `outgoing[d]` goes to rank d; returns
  /// everything addressed to this rank, concatenated in source-rank order
  /// (deterministic). `outgoing` must have nranks() entries and must stay
  /// unmodified until the call returns.
  template <typename T>
  [[nodiscard]] std::vector<T> exchange(const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
    }
    publish(&outgoing);
    std::vector<T> incoming;
    std::size_t total = 0;
    for (int r = 0; r < nranks(); ++r) {
      total += (*source_ptr<std::vector<std::vector<T>>>(r))[me()].size();
    }
    incoming.reserve(total);
    for (int r = 0; r < nranks(); ++r) {
      const auto& src = (*source_ptr<std::vector<std::vector<T>>>(r))[me()];
      incoming.insert(incoming.end(), src.begin(), src.end());
    }
    stats_.records_received += incoming.size();
    retire();
    return incoming;
  }

  /// Like exchange(), but keeps arrivals grouped by source rank:
  /// result[s] is exactly what rank s addressed to this rank. Needed by
  /// request/reply protocols (e.g. the Σtot fetch) where the reply must
  /// be routed back to, and matched up with, the requester.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> exchange_grouped(
      const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
    }
    publish(&outgoing);
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(nranks()));
    for (int r = 0; r < nranks(); ++r) {
      incoming[static_cast<std::size_t>(r)] =
          (*source_ptr<std::vector<std::vector<T>>>(r))[me()];
      stats_.records_received += incoming[static_cast<std::size_t>(r)].size();
    }
    retire();
    return incoming;
  }

  // ---------------------------------------------------------------------
  // Fine-grained messaging (active-message style). Senders usually go
  // through Aggregator (aggregator.hpp) which coalesces records into
  // chunks before calling send_chunk.
  // ---------------------------------------------------------------------

  /// Deposits a chunk of `count` records of `record_size` bytes each into
  /// rank `dest`'s mailbox.
  void send_chunk(int dest, const void* data, std::size_t record_size, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    state_->mailboxes[static_cast<std::size_t>(dest)].push(rank_, data, record_size * count);
    state_->sent[static_cast<std::size_t>(rank_)].fetch_add(count, std::memory_order_relaxed);
    stats_.records_sent += count;
    stats_.bytes_sent += record_size * count;
    ++stats_.chunks_sent;
  }

  /// Drains the mailbox, invoking `handler(source, span<const T>)` per chunk.
  /// Returns the number of records delivered.
  template <typename T, typename Handler>
  std::size_t poll(Handler&& handler) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<Chunk> chunks;
    state_->mailboxes[static_cast<std::size_t>(rank_)].drain(chunks);
    std::size_t records = 0;
    for (const Chunk& chunk : chunks) {
      assert(chunk.bytes.size() % sizeof(T) == 0);
      const std::size_t n = chunk.bytes.size() / sizeof(T);
      handler(chunk.source,
              std::span<const T>(reinterpret_cast<const T*>(chunk.bytes.data()), n));
      records += n;
    }
    state_->received[static_cast<std::size_t>(rank_)].fetch_add(records,
                                                                std::memory_order_relaxed);
    stats_.records_received += records;
    return records;
  }

  /// Completes a fine-grained phase: polls until every record sent by any
  /// rank during the phase has been received somewhere. Callers must have
  /// flushed their aggregators first, and must not send during drain.
  template <typename T, typename Handler>
  void drain_until_quiescent(Handler&& handler) {
    // No sends happen after this point, so the global sent count is final
    // after one reduction; keep polling until received catches up.
    poll<T>(handler);
    const std::uint64_t sent_total =
        allreduce_sum(state_->sent[static_cast<std::size_t>(rank_)].load(std::memory_order_relaxed));
    for (;;) {
      poll<T>(handler);
      const std::uint64_t recv_total = allreduce_sum(
          state_->received[static_cast<std::size_t>(rank_)].load(std::memory_order_relaxed));
      if (recv_total == sent_total) break;
    }
  }

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = TrafficStats{}; }

 private:
  [[nodiscard]] std::size_t me() const noexcept { return static_cast<std::size_t>(rank_); }

  void publish(const void* ptr) {
    state_->slots[me()] = ptr;
    ++stats_.collectives;
    state_->barrier.arrive_and_wait();  // all pointers visible
  }

  template <typename T>
  [[nodiscard]] const T* source_ptr(int r) const noexcept {
    return static_cast<const T*>(state_->slots[static_cast<std::size_t>(r)]);
  }

  void retire() {
    state_->barrier.arrive_and_wait();  // all ranks done reading
  }

  detail::RuntimeState* state_;
  int rank_;
  TrafficStats stats_;
};

/// Spawns `nranks` rank threads running `body(Comm&)` and joins them.
/// The first exception thrown by any rank is rethrown on the caller —
/// after all ranks exit, so the barrier is never left dangling. A rank
/// that throws would deadlock peers blocked in a collective; to keep
/// failures fail-fast rather than hanging, a throwing rank calls
/// std::terminate unless every other rank also exits. In practice rank
/// bodies must not throw past collectives; tests exercise the clean path.
class Runtime {
 public:
  static void run(int nranks, const std::function<void(Comm&)>& body) {
    if (nranks <= 0) throw std::invalid_argument("Runtime: nranks must be positive");
    detail::RuntimeState state(nranks);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&state, &body, &first_error, &error_mutex, r] {
        Comm comm(&state, r);
        try {
          body(comm);
        } catch (...) {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
};

}  // namespace plv::pml
