// The parallel messaging layer (PML): ranks, collectives, fine-grained sends.
//
// This is the reproduction's substitute for the custom BlueGene/Q / P7-IH
// messaging runtime the paper builds on (refs [27]-[29]). Each *rank* is a
// thread or a process — chosen by TransportKind — and ranks share no
// algorithm state, communicating only through this API, so the Louvain
// code above it is structured exactly like a distributed-memory port:
//
//   * collectives  — barrier, allreduce, allgather, alltoallv `exchange`,
//     all deterministic (combine in rank order) so fixed seeds give
//     bit-identical runs on every transport;
//   * fine-grained — `send_chunk`/`poll` with per-destination coalescing
//     (see aggregator.hpp) plus a counted-termination quiescence protocol,
//     matching the paper's active-message style state propagation;
//   * traffic counters — record/byte counts per rank, used by the scaling
//     benches to report communication volume where the 1-core container
//     gates wall-clock speedup.
//
// Comm implements all of that ONCE over the Transport primitive set
// (transport.hpp): a synchronizing rank-ordered alltoallv, FIFO chunk
// lanes, a blocking incoming wait, and an abort flag. The protocol logic
// below is therefore transport-agnostic; backends only move bytes.
//
// Quiescence protocol (counted termination, zero collective rounds):
// every fine-grained phase has an epoch number, and every Comm tracks how
// many records it sent to each peer during the current epoch. Entering
// `drain_until_quiescent`, a rank sends one *control marker* per peer
// (through the same FIFO lanes as data) carrying that per-destination
// count, then polls — parking in Transport::wait_incoming rather than
// spinning — until it has seen all nranks markers. Because delivery is
// FIFO per producer, a sender's data always precedes its marker, so "all
// markers seen" implies "all records delivered"; the received total is
// checked against the marker counts — thrown as ProtocolError when
// protocol validation is on (transport_check.hpp: Debug default, or
// PLV_VALIDATE=1 / PLV_PARANOID=1), a debug assert otherwise. No barrier
// or allreduce is
// involved: ranks leave the phase independently, and chunks from a
// neighbour that has already raced into the next epoch are deferred
// (never mis-delivered) until this rank's epoch catches up. Phase skew
// cannot exceed one epoch, since leaving epoch E requires every peer's
// epoch-E marker.
//
// Fail-fast semantics: a rank whose body throws records its exception,
// raises the transport-wide abort flag, and wakes every blocked peer.
// Every collective checks the flag before and after its rendezvous,
// throwing AbortedError; waiting polls recheck it on wakeup. The first
// real exception is rethrown from Runtime::run after all ranks have
// unwound — a throwing rank therefore terminates the whole run promptly
// instead of deadlocking it. (On the process backend, exception types
// survive only for rank 0, which runs in the calling process; child
// failures surface as RemoteRankError carrying the original text.)
//
// SPMD typing convention: all ranks participating in a collective pass
// the same T, mirroring MPI's untyped buffers.
//
// Long-lived rank bodies: nothing in the protocol assumes a rank body is
// one-shot. A body may run an unbounded command loop — detect, park, wake
// on the next batch, detect again — as long as every rank takes the same
// sequence of collective/phase steps. plv::Session leans on this to keep
// a fleet warm between update batches on every transport: rank 0 (which
// always runs in the calling process, forked and tcp-loopback backends
// included) dequeues host commands and rebroadcasts them through an
// ordinary allgatherv, so peers never touch host-side synchronization
// primitives across the fork boundary.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/sync.hpp"
#include "common/traffic.hpp"
#include "pml/mailbox.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "pml/transport_hybrid.hpp"
#include "pml/transport_proc.hpp"
#include "pml/transport_tcp.hpp"
#include "pml/transport_thread.hpp"

namespace plv::pml {

using plv::TrafficStats;

/// Per-rank communicator handle. All methods must be called from the
/// owning rank only (there is no remote access; senders go through the
/// transport, which is safe across ranks). Non-copyable: it owns
/// per-phase protocol state and any chunks deferred across epochs.
class Comm {
 public:
  explicit Comm(Transport& transport)
      : transport_(&transport),
        rank_(transport.rank()),
        // The typed quiescence count check (the one invariant the seam-level
        // checker cannot verify exactly, not knowing sizeof(T)) throws
        // whenever protocol validation is on — via the environment knobs or
        // because the transport underneath is already a ValidatingTransport.
        quiescence_enforced_(
            resolve_validate(false) ||
            dynamic_cast<const ValidatingTransport*>(&transport) != nullptr),
        topo_(transport.topology()),
        hier_(!topo_.trivial()),
        phase_sent_(static_cast<std::size_t>(transport.nranks()), 0),
        recv_from_(static_cast<std::size_t>(transport.nranks()), 0),
        expected_from_(static_cast<std::size_t>(transport.nranks()), 0) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  ~Comm() {
    for (Chunk* c : deferred_) transport_->release_chunk(c);
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nranks() const noexcept { return transport_->nranks(); }

  /// Name of the backend carrying this run ("thread", "proc").
  [[nodiscard]] const char* transport_name() const noexcept {
    return transport_->name();
  }

  void barrier() {
    ++stats_.collectives;
    if (hier_) {
      // The two-level collective is itself a synchronizing rendezvous;
      // an empty payload makes it a pure barrier without a second
      // leader-plane mechanism to keep ordered against the first.
      broadcast_spans({});
      NullSink sink;
      hier_alltoallv(sink);
      return;
    }
    transport_->barrier();
  }

  // ---------------------------------------------------------------------
  // Collectives. All are synchronizing; every rank must call with the same
  // type and (for vector ops) the same length. Every one is an abort
  // point: if a peer has failed, AbortedError is thrown instead of
  // waiting on it.
  // ---------------------------------------------------------------------

  /// Element-wise reduction over one value per rank, combined in rank
  /// order (deterministic for non-associative ops like double addition).
  template <typename T, typename Op>
  [[nodiscard]] T allreduce(const T& value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(value_bytes(value));
    struct Sink final : CollectiveSink {
      void deliver(int source, std::span<const std::byte> bytes) override {
        assert(bytes.size() == sizeof(T));
        T v;
        std::memcpy(&v, bytes.data(), sizeof(T));
        acc = source == 0 ? v : (*op)(acc, v);
      }
      T acc{};
      Op* op{nullptr};
    } sink;
    sink.op = &op;
    run_collective(sink);
    return sink.acc;
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_max(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a < b ? b : a; });
  }

  template <typename T>
  [[nodiscard]] T allreduce_min(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return b < a ? b : a; });
  }

  /// In-place element-wise sum of equal-length vectors across ranks
  /// (used for the ΔQ̂ gain histograms). The overload taking `scratch`
  /// accumulates into that caller-owned buffer and swaps it in, so
  /// steady-state callers (the per-iteration gain histogram) allocate
  /// nothing; the single-argument form allocates a temporary accumulator.
  template <typename T>
  void allreduce_vec_sum(std::vector<T>& vec) {
    std::vector<T> scratch;
    allreduce_vec_sum(vec, scratch);
  }

  template <typename T>
  void allreduce_vec_sum(std::vector<T>& vec, std::vector<T>& scratch) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(vector_bytes(vec));
    struct Sink final : CollectiveSink {
      void deliver(int /*source*/, std::span<const std::byte> bytes) override {
        assert(bytes.size() == acc->size() * sizeof(T));
        for (std::size_t i = 0; i < acc->size(); ++i) {
          T v;
          std::memcpy(&v, bytes.data() + i * sizeof(T), sizeof(T));
          (*acc)[i] += v;
        }
      }
      std::vector<T>* acc{nullptr};
    } sink;
    scratch.assign(vec.size(), T{});
    sink.acc = &scratch;
    run_collective(sink);
    // alltoallv returns only after every rank finished reading the
    // published spans, so rewriting vec here is race-free.
    std::swap(vec, scratch);
  }

  /// Gathers one value per rank, indexed by rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(value_bytes(value));
    struct Sink final : CollectiveSink {
      void deliver(int /*source*/, std::span<const std::byte> bytes) override {
        assert(bytes.size() == sizeof(T));
        T v;
        std::memcpy(&v, bytes.data(), sizeof(T));
        out.push_back(v);
      }
      std::vector<T> out;
    } sink;
    sink.out.reserve(static_cast<std::size_t>(nranks()));
    run_collective(sink);
    return std::move(sink.out);
  }

  /// Concatenates per-rank vectors, in rank order.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collectives;
    broadcast_spans(vector_bytes(mine));
    AppendSink<T> sink;
    run_collective(sink);
    return std::move(sink.out);
  }

  /// All-to-all variable exchange: `outgoing[d]` goes to rank d; returns
  /// everything addressed to this rank, concatenated in source-rank order
  /// (deterministic). `outgoing` must have nranks() entries and must stay
  /// unmodified until the call returns.
  template <typename T>
  [[nodiscard]] std::vector<T> exchange(const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    ++stats_.collectives;
    spans_.clear();
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
      spans_.push_back(vector_bytes(dest));
    }
    AppendSink<T> sink;
    run_collective(sink);
    stats_.records_received += sink.out.size();
    return std::move(sink.out);
  }

  /// Like exchange(), but keeps arrivals grouped by source rank:
  /// result[s] is exactly what rank s addressed to this rank. Needed by
  /// request/reply protocols (e.g. the Σtot fetch) where the reply must
  /// be routed back to, and matched up with, the requester.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> exchange_grouped(
      const std::vector<std::vector<T>>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    ++stats_.collectives;
    spans_.clear();
    for (const auto& dest : outgoing) {
      stats_.records_sent += dest.size();
      stats_.bytes_sent += dest.size() * sizeof(T);
      spans_.push_back(vector_bytes(dest));
    }
    struct Sink final : CollectiveSink {
      void deliver(int source, std::span<const std::byte> bytes) override {
        if (bytes.empty()) return;  // empty lane: data() may be null (UB in memcpy)
        auto& dst = incoming[static_cast<std::size_t>(source)];
        dst.resize(bytes.size() / sizeof(T));
        std::memcpy(dst.data(), bytes.data(), bytes.size());
      }
      std::vector<std::vector<T>> incoming;
    } sink;
    sink.incoming.resize(static_cast<std::size_t>(nranks()));
    run_collective(sink);
    for (const auto& src : sink.incoming) stats_.records_received += src.size();
    return std::move(sink.incoming);
  }

  /// Streaming all-to-all over the fine-grained plane: `outgoing[d]` goes
  /// to rank d (like exchange()), but there is no collective rendezvous —
  /// payloads ship as pooled chunks through the FIFO lanes and the phase
  /// ends with the counted-termination marker protocol, so ranks enter and
  /// leave independently. Between sending and draining, `overlap()` runs
  /// on this rank — compute that does not depend on the arrivals (the
  /// refine loop's stay-score initialization) executes while peer data is
  /// in flight.
  ///
  /// Determinism contract: arrivals are staged per source rank and
  /// `on_record(source, span<const T>)` is invoked in ascending source
  /// order (FIFO within a source), exactly the order the blocking
  /// exchange() delivers — so floating-point apply order, and therefore
  /// every downstream artifact, is bit-identical to the blocking path.
  /// The apply is progressive: source s's records are handed over as soon
  /// as s's end-of-phase marker has arrived and sources 0..s-1 are done,
  /// so receivers consume early senders while stragglers still transmit.
  ///
  /// on_record must not send. Records/bytes counters advance exactly as
  /// exchange() would; no collective round is recorded.
  ///
  /// Wire shape: each remote destination receives exactly ONE chunk, a
  /// fused data+marker (control=true, control_records=payload record
  /// count, payload appended in the same node) — an empty lane
  /// degenerates to a pure marker. Fusing the end-of-phase marker into
  /// the data chunk halves the per-phase message count versus
  /// data-then-marker, which is the dominant cost of small dense
  /// exchanges (both backends ship the control flag and the payload in
  /// one frame already). The self lane never touches the transport: the
  /// drain applies it in rank order straight out of `outgoing[rank()]`,
  /// so `outgoing` must stay alive and unmodified until the call returns
  /// (exchange() requires the same). Markers stay uncounted in
  /// TrafficStats; only payloads advance records/bytes.
  template <typename T, typename OnRecord, typename OverlapWork>
  void exchange_streaming(const std::vector<std::vector<T>>& outgoing,
                          OnRecord&& on_record, OverlapWork&& overlap) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(static_cast<int>(outgoing.size()) == nranks());
    for (int d = 0; d < nranks(); ++d) {
      if (d == rank_) continue;
      const auto& dest = outgoing[static_cast<std::size_t>(d)];
      // Hierarchical mode closes the phase by a counted settlement
      // collective instead of per-lane markers, so empty lanes ship
      // nothing at all and data chunks stay plain — that is the win the
      // inter_group_messages counter measures.
      if (hier_ && dest.empty()) {
        continue;
      }
      const std::size_t bytes = dest.size() * sizeof(T);
      Chunk* chunk = transport_->acquire_chunk(bytes);
      chunk->source = rank_;
      chunk->epoch = epoch_;
      chunk->control = !hier_;
      chunk->control_records = hier_ ? 0 : dest.size();
      if (!dest.empty()) {
        chunk->append(dest.data(), bytes);
        stats_.records_sent += dest.size();
        stats_.bytes_sent += bytes;
        ++stats_.chunks_sent;
      }
      if (cross_group(d)) ++stats_.inter_group_messages;
      transport_->send(d, chunk);
      if (hier_) phase_sent_[static_cast<std::size_t>(d)] += dest.size();
    }
    const auto& self = outgoing[static_cast<std::size_t>(rank_)];
    if (hier_) phase_sent_[static_cast<std::size_t>(rank_)] += self.size();
    stats_.records_sent += self.size();
    stats_.bytes_sent += self.size() * sizeof(T);
    self_payload_ = {reinterpret_cast<const std::byte*>(self.data()),
                     self.size() * sizeof(T)};
    self_local_ = true;
    std::forward<OverlapWork>(overlap)();
    drain_streaming_impl<T>(std::forward<OnRecord>(on_record),
                            /*send_markers=*/false);
  }

  template <typename T, typename OnRecord>
  void exchange_streaming(const std::vector<std::vector<T>>& outgoing,
                          OnRecord&& on_record) {
    exchange_streaming<T>(outgoing, std::forward<OnRecord>(on_record), [] {});
  }

  // ---------------------------------------------------------------------
  // Fine-grained messaging (active-message style). Senders usually go
  // through Aggregator (aggregator.hpp), which coalesces records straight
  // into pooled chunks and hands them over with send_filled — the
  // zero-copy path on the thread backend. send_chunk is the copy-once
  // path for callers holding a raw array.
  // ---------------------------------------------------------------------

  /// Takes a recycled chunk from the rank's pool with at least `bytes`
  /// of capacity. Pair with send_filled() or release_chunk().
  [[nodiscard]] Chunk* acquire_chunk(std::size_t bytes) {
    return transport_->acquire_chunk(bytes);
  }

  /// Returns an acquired-but-unsent chunk to the pool.
  void release_chunk(Chunk* chunk) { transport_->release_chunk(chunk); }

  /// Hands a filled chunk of `count` records to rank `dest`. Ownership of
  /// the node transfers to the transport (zero-copy on threads: the
  /// receiver releases the same node back to the shared pool).
  void send_filled(int dest, Chunk* chunk, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    assert(chunk != nullptr && !chunk->control);
    chunk->source = rank_;
    chunk->epoch = epoch_;
    phase_sent_[static_cast<std::size_t>(dest)] += count;
    stats_.records_sent += count;
    stats_.bytes_sent += chunk->size();
    ++stats_.chunks_sent;
    if (cross_group(dest)) ++stats_.inter_group_messages;
    transport_->send(dest, chunk);
  }

  /// send_filled variant that also ends the phase toward `dest`: the
  /// chunk ships as a fused data+marker whose control_records covers
  /// every record this rank sent `dest` this phase (this chunk included),
  /// so the drain needs no separate marker message. The caller must not
  /// send to `dest` again until the phase completes; pair with
  /// drain_streaming_finalized (Aggregator::flush_all_final does both
  /// halves of the send side).
  void send_filled_final(int dest, Chunk* chunk, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    assert(chunk != nullptr && !chunk->control);
    if (hier_) {
      // No per-lane markers in hierarchical mode: the phase closes by the
      // counted settlement collective, so a "final" send is a plain send.
      send_filled(dest, chunk, count);
      return;
    }
    chunk->source = rank_;
    chunk->epoch = epoch_;
    chunk->control = true;
    chunk->control_records = phase_sent_[static_cast<std::size_t>(dest)] + count;
    phase_sent_[static_cast<std::size_t>(dest)] += count;
    stats_.records_sent += count;
    stats_.bytes_sent += chunk->size();
    ++stats_.chunks_sent;
    if (cross_group(dest)) ++stats_.inter_group_messages;
    transport_->send(dest, chunk);
  }

  /// Pure end-of-phase marker toward one destination — the empty-lane
  /// counterpart of send_filled_final for callers that finalize each
  /// destination themselves instead of letting drain_streaming announce
  /// the phase end to everyone.
  void send_marker(int dest) {
    assert(dest >= 0 && dest < nranks());
    if (hier_) return;  // counts settle collectively; no marker traffic
    Chunk* marker = transport_->acquire_chunk(0);
    marker->source = rank_;
    marker->epoch = epoch_;
    marker->control = true;
    marker->control_records = phase_sent_[static_cast<std::size_t>(dest)];
    if (cross_group(dest)) ++stats_.inter_group_messages;
    transport_->send(dest, marker);
  }

  /// Copies `count` records of `record_size` bytes into a pooled chunk
  /// and sends it to rank `dest` (one copy, no allocation in steady
  /// state).
  void send_chunk(int dest, const void* data, std::size_t record_size, std::size_t count) {
    assert(dest >= 0 && dest < nranks());
    Chunk* chunk = acquire_chunk(record_size * count);
    chunk->append(data, record_size * count);
    send_filled(dest, chunk, count);
  }

  /// Drains incoming chunks, invoking `handler(source, span<const T>)` per
  /// chunk. Returns the number of records delivered. Chunks belonging to
  /// a later epoch (a neighbour already past this phase's drain) are set
  /// aside and delivered by the first poll of the matching epoch.
  template <typename T, typename Handler>
  std::size_t poll(Handler&& handler) {
    static_assert(std::is_trivially_copyable_v<T>);
    scratch_.clear();
    // Deferred chunks first: they arrived before anything drained now.
    if (!deferred_.empty()) {
      std::size_t kept = 0;
      for (Chunk* c : deferred_) {
        if (c->epoch == epoch_) {
          scratch_.push_back(c);
        } else {
          deferred_[kept++] = c;
        }
      }
      deferred_.resize(kept);
    }
    transport_->drain(scratch_);
    std::size_t records = 0;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      Chunk* c = scratch_[i];
      if (c->epoch != epoch_) {
        assert(c->epoch == epoch_ + 1);  // skew is bounded by one phase
        deferred_.push_back(c);
        continue;
      }
      if (c->control) {
        // Fused data+marker chunks are an exchange_streaming wire shape;
        // SPMD phase alignment means they only ever drain via poll_staged.
        assert(c->size() == 0);
        ++markers_seen_;
        expected_records_ += c->control_records;
        transport_->release_chunk(c);
        continue;
      }
      assert(c->size() % sizeof(T) == 0);
      const std::size_t n = c->size() / sizeof(T);
      recv_from_[static_cast<std::size_t>(c->source)] += n;
      try {
        handler(c->source,
                std::span<const T>(reinterpret_cast<const T*>(c->data()), n));
      } catch (...) {
        // Recycle this and every unprocessed chunk before unwinding.
        for (std::size_t j = i; j < scratch_.size(); ++j) {
          if (scratch_[j]->epoch == epoch_) {
            transport_->release_chunk(scratch_[j]);
          } else {
            deferred_.push_back(scratch_[j]);
          }
        }
        throw;
      }
      records += n;
      transport_->release_chunk(c);
    }
    phase_received_ += records;
    stats_.records_received += records;
    return records;
  }

  /// Completes a fine-grained phase: delivers every record addressed to
  /// this rank, blocking (not spinning, and with no collective rounds)
  /// until the counted-termination markers from all ranks have arrived —
  /// see the protocol note in the header comment. Callers must have
  /// flushed their aggregators first, and must not send again until the
  /// call returns. Throws AbortedError if a peer fails mid-phase.
  template <typename T, typename Handler>
  void drain_until_quiescent(Handler&& handler) {
    if (hier_) {
      // Hierarchical counted termination: instead of nranks marker
      // messages per rank, one two-level settlement collective exchanges
      // the per-destination sent counts, and the drain polls until the
      // arrivals match. Settlement completing implies every rank has
      // finished sending this epoch, so the counts are final.
      settle_counts_hier();
      poll<T>(handler);
      while (phase_received_ < expected_records_) {
        transport_->wait_incoming();
        check_abort();
        poll<T>(handler);
      }
      check_source_counts_hier();
      detail::check_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                            phase_received_, expected_records_,
                                            transport_->name(), /*streaming=*/false);
      end_phase();
      return;
    }
    // Announce end-of-phase to every rank (self included): one control
    // marker carrying the number of records this rank sent them.
    for (int d = 0; d < nranks(); ++d) send_marker(d);
    poll<T>(handler);
    while (markers_seen_ < static_cast<std::uint64_t>(nranks())) {
      transport_->wait_incoming();
      check_abort();
      poll<T>(handler);
    }
    // FIFO-per-producer delivery means data precedes markers, so seeing
    // every marker implies having every record. Thrown as ProtocolError
    // whenever validation is on (Debug default; PLV_VALIDATE/PLV_PARANOID
    // in Release); a Debug assert otherwise.
    detail::check_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                          phase_received_, expected_records_,
                                          transport_->name(), /*streaming=*/false);
    end_phase();
  }

  /// Ordered-apply variant of drain_until_quiescent: the streaming side of
  /// exchange_streaming, usable directly by callers that sent through
  /// send_filled/send_chunk or an Aggregator. Arrivals are staged per
  /// source and `on_record(source, span<const T>)` fires in ascending
  /// source-rank order (FIFO within a source), progressively as each
  /// source's marker lands — deterministic apply order with overlap where
  /// the arrival schedule allows it. Same preconditions as
  /// drain_until_quiescent (aggregators flushed, no sends until return).
  template <typename T, typename OnRecord>
  void drain_streaming(OnRecord&& on_record) {
    drain_streaming_impl<T>(std::forward<OnRecord>(on_record),
                            /*send_markers=*/true);
  }

  /// drain_streaming for callers that already ended the phase toward
  /// every destination themselves (send_filled_final / send_marker per
  /// dest — Aggregator::flush_all_final does exactly that): no marker
  /// wave is sent here, the fused final chunks carry the counts.
  template <typename T, typename OnRecord>
  void drain_streaming_finalized(OnRecord&& on_record) {
    drain_streaming_impl<T>(std::forward<OnRecord>(on_record),
                            /*send_markers=*/false);
  }

 private:
  /// Shared body of drain_streaming and exchange_streaming. With
  /// send_markers, announces end-of-phase with one pure control chunk per
  /// peer (the send_filled/send_chunk/Aggregator flow); without, the
  /// caller already fused the marker into each destination's single data
  /// chunk and no extra message is needed.
  template <typename T, typename OnRecord>
  void drain_streaming_impl(OnRecord&& on_record, bool send_markers) {
    if (hier_) {
      drain_streaming_hier<T>(std::forward<OnRecord>(on_record));
      return;
    }
    const auto P = static_cast<std::size_t>(nranks());
    if (staged_.size() != P) staged_.resize(P);
    marker_from_.assign(P, 0);
    next_apply_ = 0;
    if (self_local_) {
      // The self lane was kept out of the transport: account for it as
      // both an implicit marker and already-arrived records, so counted
      // termination and TrafficStats match the chunk-borne path exactly.
      marker_from_[static_cast<std::size_t>(rank_)] = 1;
      ++markers_seen_;
      const std::size_t n = self_payload_.size() / sizeof(T);
      expected_records_ += n;
      phase_received_ += n;
      stats_.records_received += n;
    }
    if (send_markers) {
      for (int d = 0; d < nranks(); ++d) send_marker(d);
    }
    try {
      poll_staged(sizeof(T));
      apply_ready_sources<T>(on_record);
      while (markers_seen_ < static_cast<std::uint64_t>(nranks()) ||
             next_apply_ < nranks()) {
        if (markers_seen_ < static_cast<std::uint64_t>(nranks())) {
          transport_->wait_incoming();
          check_abort();
        }
        poll_staged(sizeof(T));
        apply_ready_sources<T>(on_record);
      }
    } catch (...) {
      for (auto& chunks : staged_) {
        for (Chunk* c : chunks) transport_->release_chunk(c);
        chunks.clear();
      }
      self_local_ = false;
      self_payload_ = {};
      throw;
    }
    self_local_ = false;
    self_payload_ = {};
    detail::check_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                          phase_received_, expected_records_,
                                          transport_->name(), /*streaming=*/true);
    end_phase();
  }

  /// Hierarchical twin of the streaming drain: per-lane markers are
  /// replaced by one settlement collective that exchanges the
  /// per-destination sent counts through the two-level topology; a source
  /// is "complete" (its staged chunks ready for the ordered apply) once
  /// its arrivals match its settled count. FIFO lanes still bound the
  /// wait, and the apply order — ascending global source rank — is
  /// unchanged, so results stay bit-identical with the flat protocol.
  template <typename T, typename OnRecord>
  void drain_streaming_hier(OnRecord&& on_record) {
    const auto P = static_cast<std::size_t>(nranks());
    if (staged_.size() != P) staged_.resize(P);
    marker_from_.assign(P, 0);
    next_apply_ = 0;
    if (self_local_) {
      // Zero-copy self lane: already-arrived records. Its expectation
      // arrives with everyone else's through the settlement (phase_sent_
      // includes the self count), so only the receive side books here.
      const std::size_t n = self_payload_.size() / sizeof(T);
      recv_from_[static_cast<std::size_t>(rank_)] += n;
      phase_received_ += n;
      stats_.records_received += n;
    }
    try {
      settle_counts_hier();
      while (true) {
        poll_staged(sizeof(T));
        update_ready_hier();
        apply_ready_sources<T>(on_record);
        if (next_apply_ >= nranks()) break;
        transport_->wait_incoming();
        check_abort();
      }
    } catch (...) {
      for (auto& chunks : staged_) {
        for (Chunk* c : chunks) transport_->release_chunk(c);
        chunks.clear();
      }
      self_local_ = false;
      self_payload_ = {};
      throw;
    }
    self_local_ = false;
    self_payload_ = {};
    detail::check_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                          phase_received_, expected_records_,
                                          transport_->name(), /*streaming=*/true);
    end_phase();
  }

 public:
  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = TrafficStats{}; }

  /// High-water mark (in chunk nodes) for this rank's free list; trimmed
  /// at each fine-grained phase boundary. 0 = unbounded (never trim).
  void set_chunk_pool_watermark(std::size_t nodes) noexcept {
    transport_->set_pool_watermark(nodes);
  }
  [[nodiscard]] std::size_t chunk_pool_free_count() const noexcept {
    return transport_->pool_free_count();
  }

 private:
  template <typename T>
  [[nodiscard]] static std::span<const std::byte> value_bytes(const T& v) noexcept {
    return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] static std::span<const std::byte> vector_bytes(
      const std::vector<T>& v) noexcept {
    return {reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T)};
  }

  /// Reusable sink that concatenates arrivals (rank order) into one
  /// typed vector, reserving exactly from the transport's size hint.
  template <typename T>
  struct AppendSink final : CollectiveSink {
    void total_hint(std::size_t bytes) override { out.reserve(bytes / sizeof(T)); }
    void deliver(int /*source*/, std::span<const std::byte> bytes) override {
      if (bytes.empty()) return;  // empty lane: data() may be null (UB in memcpy)
      assert(bytes.size() % sizeof(T) == 0);
      const std::size_t old = out.size();
      out.resize(old + bytes.size() / sizeof(T));
      std::memcpy(out.data() + old, bytes.data(), bytes.size());
    }
    std::vector<T> out;
  };

  /// poll() twin for the streaming drain: data chunks are retained in
  /// staged_[source] (arrival order = FIFO per source) instead of being
  /// applied and released; markers additionally set the per-source flag
  /// that gates the ordered progressive apply.
  void poll_staged(std::size_t record_size) {
    scratch_.clear();
    if (!deferred_.empty()) {
      std::size_t kept = 0;
      for (Chunk* c : deferred_) {
        if (c->epoch == epoch_) {
          scratch_.push_back(c);
        } else {
          deferred_[kept++] = c;
        }
      }
      deferred_.resize(kept);
    }
    transport_->drain(scratch_);
    std::size_t records = 0;
    for (Chunk* c : scratch_) {
      if (c->epoch != epoch_) {
        assert(c->epoch == epoch_ + 1);  // skew is bounded by one phase
        deferred_.push_back(c);
        continue;
      }
      if (c->control) {
        ++markers_seen_;
        expected_records_ += c->control_records;
        marker_from_[static_cast<std::size_t>(c->source)] = 1;
        // Fused data+marker (exchange_streaming's wire shape): the payload
        // rides in the control chunk, so stage it like a data chunk
        // instead of releasing the node.
        if (c->size() == 0) {
          transport_->release_chunk(c);
          continue;
        }
      }
      assert(c->size() % record_size == 0);
      records += c->size() / record_size;
      recv_from_[static_cast<std::size_t>(c->source)] += c->size() / record_size;
      staged_[static_cast<std::size_t>(c->source)].push_back(c);
    }
    phase_received_ += records;
    stats_.records_received += records;
  }

  /// Applies (and releases) the staged chunks of every source whose marker
  /// has arrived and whose predecessors are all done — the in-order front
  /// of the phase. FIFO delivery means a source's marker trails its data,
  /// so a flagged source is complete.
  template <typename T, typename OnRecord>
  void apply_ready_sources(OnRecord&& on_record) {
    while (next_apply_ < nranks() &&
           marker_from_[static_cast<std::size_t>(next_apply_)] != 0) {
      if (self_local_ && next_apply_ == rank_) {
        // Zero-copy self lane: delivered straight from the caller's
        // outgoing buffer, in its rank-order slot like any other source.
        if (!self_payload_.empty()) {
          on_record(rank_, std::span<const T>(
                               reinterpret_cast<const T*>(self_payload_.data()),
                               self_payload_.size() / sizeof(T)));
        }
        ++next_apply_;
        continue;
      }
      auto& chunks = staged_[static_cast<std::size_t>(next_apply_)];
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        Chunk* c = chunks[i];
        const std::size_t n = c->size() / sizeof(T);
        try {
          on_record(next_apply_,
                    std::span<const T>(reinterpret_cast<const T*>(c->data()), n));
        } catch (...) {
          // Drop what was already applied; the phase-level catch in
          // drain_streaming releases the rest.
          chunks.erase(chunks.begin(), chunks.begin() + static_cast<std::ptrdiff_t>(i));
          throw;
        }
        transport_->release_chunk(c);
      }
      chunks.clear();
      ++next_apply_;
    }
  }

  /// The same payload for every destination (allreduce/allgather shape).
  void broadcast_spans(std::span<const std::byte> payload) {
    spans_.assign(static_cast<std::size_t>(nranks()), payload);
  }

  struct NullSink final : CollectiveSink {
    void deliver(int /*source*/, std::span<const std::byte> /*bytes*/) override {}
  };

  /// Whether `dest` lies outside this rank's topology group (with the
  /// trivial topology: every peer). Drives the inter_group_messages
  /// counter — the locality metric the hierarchical collectives optimize.
  [[nodiscard]] bool cross_group(int dest) const noexcept {
    return dest < topo_.leader || dest >= topo_.leader + topo_.group_size;
  }

  /// Routes a collective built in spans_ to the flat or the two-level
  /// implementation. Every collective entry point funnels through here.
  void run_collective(CollectiveSink& sink) {
    if (hier_) {
      hier_alltoallv(sink);
      return;
    }
    // Logical message count of a flat collective: one frame to every rank
    // outside this rank's group (with the trivial topology, every peer).
    stats_.inter_group_messages +=
        static_cast<std::uint64_t>(nranks() - topo_.group_size);
    transport_->alltoallv(spans_, sink);
  }

  [[nodiscard]] static std::uint64_t read_u64(const std::byte* p) noexcept {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static void append_u64(std::vector<std::byte>& blob, std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    blob.insert(blob.end(), p, p + sizeof(v));
  }
  static void append_bytes(std::vector<std::byte>& blob, std::span<const std::byte> s) {
    blob.insert(blob.end(), s.begin(), s.end());
  }

  /// Two-level alltoallv over a non-trivial topology (DESIGN.md decision
  /// 13). Three phases: every member ships its whole outgoing vector to
  /// its group leader over the shared-memory group plane (*up*), leaders
  /// exchange the cross-group traffic among themselves only (*across* —
  /// the sole inter-group communication), and each leader scatters the
  /// assembled per-member arrivals back down (*down*). Delivery to the
  /// user sink is ascending by global source rank, exactly the flat
  /// collective's order: groups are consecutive rank blocks, so walking
  /// groups ascending and members ascending IS walking global ranks
  /// ascending — results stay bit-identical.
  ///
  /// Blob shapes (u64 counts, host order — same-arch fleets only, like
  /// the frame protocol itself):
  ///   up:    [P × u64 size-per-dest][payloads, dest-ascending]
  ///   cross: [k_src × k_dst u64 matrix, src-major][payloads src-major]
  ///   down:  [P × u64 size-per-src][payloads, src-ascending]
  void hier_alltoallv(CollectiveSink& sink) {
    const auto P = static_cast<std::size_t>(nranks());
    assert(spans_.size() == P);
    const auto G = static_cast<std::size_t>(topo_.ngroups);
    const auto K = static_cast<std::size_t>(topo_.group_size);
    const int base = topo_.leader;
    const auto my_group = static_cast<std::size_t>(topo_.group);

    // -- Up ---------------------------------------------------------------
    up_blob_.clear();
    for (const auto& s : spans_) append_u64(up_blob_, s.size());
    for (const auto& s : spans_) append_bytes(up_blob_, s);
    group_out_.assign(K, {});
    group_out_[0] = {up_blob_.data(), up_blob_.size()};
    if (topo_.is_leader()) {
      if (member_blobs_.size() != K) member_blobs_.resize(K);
      struct UpSink final : CollectiveSink {
        void deliver(int source, std::span<const std::byte> bytes) override {
          auto& blob = (*blobs)[static_cast<std::size_t>(source - base)];
          blob.assign(bytes.begin(), bytes.end());
        }
        std::vector<std::vector<std::byte>>* blobs{nullptr};
        int base{0};
      } up_sink;
      up_sink.blobs = &member_blobs_;
      up_sink.base = base;
      transport_->group_alltoallv(group_out_, up_sink);
      // Per-member payload offsets into the up blobs (prefix sums of the
      // size headers), shared by the across and down assemblies.
      if (member_offsets_.size() != K) member_offsets_.resize(K);
      for (std::size_t i = 0; i < K; ++i) {
        const std::byte* mb = member_blobs_[i].data();
        auto& off = member_offsets_[i];
        off.resize(P + 1);
        std::uint64_t o = P * sizeof(std::uint64_t);
        for (std::size_t d = 0; d < P; ++d) {
          off[d] = o;
          o += read_u64(mb + d * sizeof(std::uint64_t));
        }
        off[P] = o;
      }
    } else {
      NullSink null;
      transport_->group_alltoallv(group_out_, null);
    }

    if (topo_.is_leader()) {
      // -- Across (leaders only; the inter-group rounds) --------------------
      if (G > 1) {
        if (cross_out_.size() != G) cross_out_.resize(G);
        if (cross_in_.size() != G) cross_in_.resize(G);
        leader_out_.assign(G, {});
        for (std::size_t h = 0; h < G; ++h) {
          if (h == my_group) continue;
          const auto hbase =
              static_cast<std::size_t>(topo_.group_begin(static_cast<int>(h)));
          const auto kh =
              static_cast<std::size_t>(topo_.group_count(static_cast<int>(h)));
          auto& blob = cross_out_[h];
          blob.clear();
          for (std::size_t i = 0; i < K; ++i) {
            const std::byte* mb = member_blobs_[i].data();
            for (std::size_t j = 0; j < kh; ++j) {
              append_u64(blob, read_u64(mb + (hbase + j) * sizeof(std::uint64_t)));
            }
          }
          for (std::size_t i = 0; i < K; ++i) {
            const std::byte* mb = member_blobs_[i].data();
            const auto& off = member_offsets_[i];
            for (std::size_t j = 0; j < kh; ++j) {
              append_bytes(blob, {mb + off[hbase + j],
                                  static_cast<std::size_t>(off[hbase + j + 1] -
                                                           off[hbase + j])});
            }
          }
          leader_out_[h] = {blob.data(), blob.size()};
        }
        struct CrossSink final : CollectiveSink {
          void deliver(int source, std::span<const std::byte> bytes) override {
            if (static_cast<std::size_t>(source) == own) return;
            (*blobs)[static_cast<std::size_t>(source)].assign(bytes.begin(),
                                                              bytes.end());
          }
          std::vector<std::vector<std::byte>>* blobs{nullptr};
          std::size_t own{0};
        } cross_sink;
        cross_sink.blobs = &cross_in_;
        cross_sink.own = my_group;
        transport_->leader_alltoallv(leader_out_, cross_sink);
        stats_.inter_group_messages += static_cast<std::uint64_t>(G - 1);
        // Payload offsets into each incoming cross blob: entry (i, j) of
        // the k_g × K src-major matrix.
        if (cross_offsets_.size() != G) cross_offsets_.resize(G);
        for (std::size_t g = 0; g < G; ++g) {
          if (g == my_group) continue;
          const auto kg =
              static_cast<std::size_t>(topo_.group_count(static_cast<int>(g)));
          const std::byte* cb = cross_in_[g].data();
          auto& off = cross_offsets_[g];
          off.resize(kg * K + 1);
          std::uint64_t o = kg * K * sizeof(std::uint64_t);
          for (std::size_t e = 0; e < kg * K; ++e) {
            off[e] = o;
            o += read_u64(cb + e * sizeof(std::uint64_t));
          }
          off[kg * K] = o;
        }
      }

      // Span of global source s's payload for member slot j of this
      // group, out of the staged up/cross blobs.
      auto source_payload = [&](std::size_t s, std::size_t j) {
        const auto gs = static_cast<std::size_t>(topo_.group_of(static_cast<int>(s)));
        if (gs == my_group) {
          const auto i = s - static_cast<std::size_t>(base);
          const auto& off = member_offsets_[i];
          const auto d = static_cast<std::size_t>(base) + j;
          return std::span<const std::byte>(
              member_blobs_[i].data() + off[d],
              static_cast<std::size_t>(off[d + 1] - off[d]));
        }
        const auto gbase =
            static_cast<std::size_t>(topo_.group_begin(static_cast<int>(gs)));
        const auto i = s - gbase;
        const auto& off = cross_offsets_[gs];
        const auto e = i * K + j;
        return std::span<const std::byte>(
            cross_in_[gs].data() + off[e],
            static_cast<std::size_t>(off[e + 1] - off[e]));
      };

      // -- Down -------------------------------------------------------------
      if (down_blobs_.size() != K) down_blobs_.resize(K);
      group_out_.assign(K, {});
      for (std::size_t j = 1; j < K; ++j) {
        auto& blob = down_blobs_[j];
        blob.clear();
        for (std::size_t s = 0; s < P; ++s) append_u64(blob, source_payload(s, j).size());
        for (std::size_t s = 0; s < P; ++s) append_bytes(blob, source_payload(s, j));
        group_out_[j] = {blob.data(), blob.size()};
      }
      NullSink null;  // the leader's own group arrivals here are all empty
      transport_->group_alltoallv(group_out_, null);
      // The leader's user delivery comes straight from the staged blobs.
      std::uint64_t total = 0;
      for (std::size_t s = 0; s < P; ++s) total += source_payload(s, 0).size();
      sink.total_hint(static_cast<std::size_t>(total));
      for (std::size_t s = 0; s < P; ++s) {
        sink.deliver(static_cast<int>(s), source_payload(s, 0));
      }
    } else {
      // -- Down (member side): parse the leader's blob in place and
      // forward ascending — the spans stay valid for the duration of the
      // delivery callback, which is all the sink contract promises.
      group_out_.assign(K, {});
      struct DownSink final : CollectiveSink {
        void deliver(int source, std::span<const std::byte> bytes) override {
          if (source != leader) return;
          const std::byte* p = bytes.data();
          assert(bytes.size() >= P * sizeof(std::uint64_t));
          std::uint64_t total = 0;
          for (std::size_t s = 0; s < P; ++s) {
            total += read_u64(p + s * sizeof(std::uint64_t));
          }
          user->total_hint(static_cast<std::size_t>(total));
          const std::byte* payload = p + P * sizeof(std::uint64_t);
          for (std::size_t s = 0; s < P; ++s) {
            const auto n =
                static_cast<std::size_t>(read_u64(p + s * sizeof(std::uint64_t)));
            user->deliver(static_cast<int>(s), {payload, n});
            payload += n;
          }
        }
        CollectiveSink* user{nullptr};
        std::size_t P{0};
        int leader{0};
      } down_sink;
      down_sink.user = &sink;
      down_sink.P = P;
      down_sink.leader = base;
      transport_->group_alltoallv(group_out_, down_sink);
    }
  }

  /// Hierarchical end-of-phase settlement: exchanges every rank's
  /// per-destination sent counts through the two-level collective,
  /// filling expected_from_ / expected_records_. Replaces the flat
  /// protocol's nranks-per-rank marker wave with one collective whose
  /// only inter-group traffic is the G-1 leader frames; like the markers
  /// it replaces, it is not counted in stats_.collectives. Its completion
  /// additionally implies every rank has finished sending this epoch, so
  /// the counts are final and the drain only waits for arrivals.
  void settle_counts_hier() {
    spans_.clear();
    for (const std::uint64_t& sent : phase_sent_) {
      spans_.push_back({reinterpret_cast<const std::byte*>(&sent), sizeof(sent)});
    }
    struct SettleSink final : CollectiveSink {
      void deliver(int source, std::span<const std::byte> bytes) override {
        assert(bytes.size() == sizeof(std::uint64_t));
        const std::uint64_t v = read_u64(bytes.data());
        (*expected)[static_cast<std::size_t>(source)] = v;
        total += v;
      }
      std::vector<std::uint64_t>* expected{nullptr};
      std::uint64_t total{0};
    } sink;
    sink.expected = &expected_from_;
    hier_alltoallv(sink);
    expected_records_ = sink.total;
  }

  /// Marks every source whose arrivals have reached its settled count as
  /// complete (its staged chunks become applyable), and flags a source
  /// that delivered MORE than it settled — the per-source contribution
  /// conservation check of the hierarchical protocol.
  void update_ready_hier() {
    for (int s = 0; s < nranks(); ++s) {
      const auto i = static_cast<std::size_t>(s);
      detail::check_source_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                                   s, recv_from_[i], expected_from_[i],
                                                   transport_->name());
      if (marker_from_[i] == 0 && recv_from_[i] >= expected_from_[i]) {
        marker_from_[i] = 1;
      }
    }
  }

  /// Per-source conservation audit at the end of a hierarchical unordered
  /// drain (totals matching can mask one source over-delivering while
  /// another under-delivers only if a third over-delivers too — catch the
  /// source, not just the sum).
  void check_source_counts_hier() {
    for (int s = 0; s < nranks(); ++s) {
      const auto i = static_cast<std::size_t>(s);
      detail::check_source_quiescence_conservation(quiescence_enforced_, rank_, epoch_,
                                                   s, recv_from_[i], expected_from_[i],
                                                   transport_->name());
    }
  }

  /// Common epilogue of every drain: advance the epoch (telling a
  /// topology-aware transport first — the hierarchical protocol closes
  /// epochs without markers, so the transport cannot infer the boundary
  /// from the wire) and reset the per-phase bookkeeping.
  void end_phase() {
    if (hier_) transport_->epoch_advance(epoch_ + 1);
    ++epoch_;
    markers_seen_ = 0;
    expected_records_ = 0;
    phase_received_ = 0;
    std::fill(phase_sent_.begin(), phase_sent_.end(), 0);
    std::fill(recv_from_.begin(), recv_from_.end(), 0);
    std::fill(expected_from_.begin(), expected_from_.end(), 0);
    // Phase boundary: shed free-list nodes beyond the high-water mark so a
    // receive-heavy rank does not retain its peak footprint forever.
    transport_->trim_pool();
  }

  void check_abort() const {
    if (transport_->aborted()) throw AbortedError();
  }

  Transport* transport_;
  int rank_;
  // Whether the quiescence count mismatch throws (validation on) instead
  // of the historical Debug assert. Fixed at construction.
  bool quiescence_enforced_;
  // Locality topology published by the transport, snapshotted at
  // construction (it is immutable for a run). hier_ switches every
  // collective and the quiescence protocol onto the two-level path.
  Topology topo_;
  bool hier_;
  TrafficStats stats_;
  std::vector<std::span<const std::byte>> spans_;  // per-collective scratch

  // Hierarchical-collective scratch (leaders use all of it; members only
  // up_blob_/group_out_). Persists across collectives to stay
  // allocation-free in steady state.
  std::vector<std::byte> up_blob_;
  std::vector<std::span<const std::byte>> group_out_;
  std::vector<std::span<const std::byte>> leader_out_;
  std::vector<std::vector<std::byte>> member_blobs_;
  std::vector<std::vector<std::uint64_t>> member_offsets_;
  std::vector<std::vector<std::byte>> cross_out_;
  std::vector<std::vector<std::byte>> cross_in_;
  std::vector<std::vector<std::uint64_t>> cross_offsets_;
  std::vector<std::vector<std::byte>> down_blobs_;

  // Counted-termination bookkeeping for the current fine-grained phase.
  std::uint64_t epoch_{0};
  std::vector<std::uint64_t> phase_sent_;  // records sent per destination
  std::uint64_t phase_received_{0};
  std::uint64_t expected_records_{0};      // sum of marker counts addressed here
  std::uint64_t markers_seen_{0};
  std::vector<Chunk*> deferred_;           // next-epoch chunks, held back
  std::vector<Chunk*> scratch_;            // drain buffer, reused across polls
  // Hierarchical counted termination: arrivals and settled expectations
  // per source (flat mode books recv_from_ too, but only reads totals).
  std::vector<std::uint64_t> recv_from_;
  std::vector<std::uint64_t> expected_from_;

  // Streaming-drain staging: per-source chunk queues (FIFO), per-source
  // marker flags, and the in-order apply cursor. Live only inside
  // drain_streaming; buffers persist across phases to avoid reallocation.
  std::vector<std::vector<Chunk*>> staged_;
  std::vector<std::uint8_t> marker_from_;
  int next_apply_{0};
  // exchange_streaming's zero-copy self lane: a view into the caller's
  // outgoing[rank()] buffer, applied in rank order without ever touching
  // the transport. Valid only between send and drain completion.
  std::span<const std::byte> self_payload_{};
  bool self_local_{false};
};

/// Runs `body(Comm&)` on `nranks` ranks over the chosen transport and
/// joins them. Fail-fast: the first rank to throw stores its exception,
/// flips the shared abort flag, and wakes all waiters, so every peer's
/// next (or current) collective throws AbortedError instead of hanging.
/// Peers unwound by AbortedError are not treated as failures of their
/// own; after all ranks finish, the original exception is rethrown on the
/// caller (child-process failures as RemoteRankError).
class Runtime {
 public:
  /// Default entry: thread backend unless PLV_TRANSPORT overrides;
  /// protocol validation per build default unless PLV_VALIDATE /
  /// PLV_PARANOID override.
  static void run(int nranks, const std::function<void(Comm&)>& body) {
    run(nranks, body, resolve_transport(TransportKind::kThread));
  }

  /// Explicit-backend entry (no transport environment resolution — callers
  /// that honor PLV_TRANSPORT apply resolve_transport() themselves).
  /// Validation still follows the build default + environment.
  static void run(int nranks, const std::function<void(Comm&)>& body,
                  TransportKind kind) {
    run(nranks, body, kind, resolve_validate(kValidateTransportDefault));
  }

  /// Fully explicit entry: no environment resolution on either knob
  /// (callers apply resolve_transport/resolve_validate themselves). With
  /// `validate`, every rank's transport is wrapped in a ValidatingTransport
  /// (transport_check.hpp) and finalized — goodbye checks included — after
  /// a clean body return; a ProtocolError fails the run like any rank
  /// exception. `tcp` is consulted only by the kTcp backend (defaults
  /// select its loopback self-test fleet; PLV_HOSTS/PLV_RANK still apply
  /// inside run_tcp_ranks); `hybrid` only by the kHybrid backend
  /// (PLV_RANKS_PER_PROC / PLV_FLAT_COLLECTIVES still apply inside
  /// run_hybrid_ranks).
  static void run(int nranks, const std::function<void(Comm&)>& body,
                  TransportKind kind, bool validate, const TcpOptions& tcp = {},
                  const HybridOptions& hybrid = {}) {
    if (nranks <= 0) throw std::invalid_argument("Runtime: nranks must be positive");
    if (kind == TransportKind::kProc) {
      detail::run_proc_ranks(nranks, body, validate);
      return;
    }
    if (kind == TransportKind::kTcp) {
      detail::run_tcp_ranks(nranks, body, validate, tcp);
      return;
    }
    if (kind == TransportKind::kHybrid) {
      detail::run_hybrid_ranks(nranks, body, validate, hybrid);
      return;
    }
    run_threads(nranks, body, validate);
  }

 private:
  static void run_threads(int nranks, const std::function<void(Comm&)>& body,
                          bool validate) {
    detail::ThreadShared state(nranks);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    // First-throwing rank wins; the guarded slot is the only cross-rank
    // mutable state in the launcher itself.
    struct {
      plv::Mutex mu;
      std::exception_ptr first PLV_GUARDED_BY(mu);
    } error;
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&state, &body, &error, validate, r] {
        ThreadTransport transport(&state, r);
        bool failed = false;
        try {
          if (validate) {
            ValidatingTransport checked(transport);
            {
              Comm comm(checked);
              body(comm);
            }
            // Goodbye transition after the Comm destructor released its
            // deferred chunks; leaks and post-goodbye traffic throw.
            checked.finalize();
          } else {
            Comm comm(transport);
            body(comm);
          }
        } catch (const AbortedError&) {
          failed = true;  // peer-induced: the originating rank records the cause
        } catch (...) {
          {
            plv::MutexLock lock(error.mu);
            if (!error.first) error.first = std::current_exception();
          }
          failed = true;
        }
        if (failed) state.abort();
        // Leave the barrier permanently so stragglers can never block on
        // a rank that has already finished.
        state.barrier.arrive_and_drop();
      });
    }
    for (auto& t : threads) t.join();
    {
      plv::MutexLock lock(error.mu);
      if (error.first) std::rethrow_exception(error.first);
    }
    if (state.aborted.load(std::memory_order_seq_cst)) {
      // Possible only if a body threw AbortedError itself; still fail.
      throw AbortedError();
    }
  }
};

}  // namespace plv::pml
