// ValidatingTransport implementation. See transport_check.hpp for the
// protocol being enforced and DESIGN.md decision 11 for the state machine.
#include "pml/transport_check.hpp"

#include <utility>

namespace plv::pml {

namespace {

[[nodiscard]] std::string format_violation(ProtocolViolation kind, int rank, int peer,
                                           std::uint64_t epoch,
                                           const std::string& detail) {
  std::string msg = "pml protocol violation [";
  msg += protocol_violation_name(kind);
  msg += "] on rank ";
  msg += std::to_string(rank);
  if (peer >= 0) {
    msg += ", peer lane ";
    msg += std::to_string(peer);
  }
  msg += ", epoch ";
  msg += std::to_string(epoch);
  msg += ": ";
  msg += detail;
  return msg;
}

}  // namespace

const char* protocol_violation_name(ProtocolViolation v) noexcept {
  switch (v) {
    case ProtocolViolation::kTrafficAfterGoodbye:
      return "traffic-after-goodbye";
    case ProtocolViolation::kDataAfterFinalMarker:
      return "data-after-final-marker";
    case ProtocolViolation::kDuplicateFinalMarker:
      return "duplicate-final-marker";
    case ProtocolViolation::kEpochSkew:
      return "epoch-skew";
    case ProtocolViolation::kQuiescenceMismatch:
      return "quiescence-mismatch";
    case ProtocolViolation::kChunkDoubleRelease:
      return "chunk-double-release";
    case ProtocolViolation::kForeignChunk:
      return "foreign-chunk";
    case ProtocolViolation::kChunkLeak:
      return "chunk-leak";
    case ProtocolViolation::kCollectiveShape:
      return "collective-shape";
    case ProtocolViolation::kCollectiveOrder:
      return "collective-order";
    case ProtocolViolation::kLeaderOnlyCollective:
      return "leader-only-collective";
    case ProtocolViolation::kHierarchicalMarker:
      return "hierarchical-marker";
  }
  return "unknown";
}

ProtocolError::ProtocolError(ProtocolViolation kind, int rank, int peer,
                             std::uint64_t epoch, const std::string& detail)
    : std::runtime_error(format_violation(kind, rank, peer, epoch, detail)),
      kind_(kind),
      rank_(rank),
      peer_(peer),
      epoch_(epoch) {}

namespace detail {

void check_quiescence_conservation(bool enforce, int rank, std::uint64_t epoch,
                                   std::uint64_t received, std::uint64_t expected,
                                   const char* transport, bool streaming) {
  if (received == expected) return;
  if (enforce) {
    throw ProtocolError(
        ProtocolViolation::kQuiescenceMismatch, rank, /*peer=*/-1, epoch,
        "quiescence record-count mismatch: received " + std::to_string(received) +
            ", markers promised " + std::to_string(expected) + " (transport " +
            transport + (streaming ? ", streaming drain)" : ")"));
  }
  // Historical Debug behavior when validation is off: hard-stop here so the
  // failing phase is inspectable in a debugger. (Unreachable above when the
  // counts agree; unreachable at all in enforcing configurations.)
  assert(false && "pml: quiescence record-count mismatch (set PLV_VALIDATE=1 for a thrown ProtocolError)");
}

void check_source_quiescence_conservation(bool enforce, int rank, std::uint64_t epoch,
                                          int source, std::uint64_t received,
                                          std::uint64_t expected, const char* transport) {
  if (received <= expected) return;
  if (enforce) {
    throw ProtocolError(
        ProtocolViolation::kQuiescenceMismatch, rank, source, epoch,
        "per-source quiescence mismatch: source " + std::to_string(source) +
            " settled " + std::to_string(expected) + " records but " +
            std::to_string(received) + " arrived (transport " + transport +
            ", hierarchical settlement)");
  }
  assert(false && "pml: per-source quiescence over-delivery (set PLV_VALIDATE=1 for a thrown ProtocolError)");
}

}  // namespace detail

ValidatingTransport::ValidatingTransport(Transport& inner)
    : inner_(inner),
      send_lanes_(static_cast<std::size_t>(inner.nranks())),
      recv_lanes_(static_cast<std::size_t>(inner.nranks())),
      hier_(!inner.topology().trivial()) {}

void ValidatingTransport::ensure_open(const char* op) const {
  if (closed_) {
    fail(ProtocolViolation::kTrafficAfterGoodbye, /*peer=*/-1, /*epoch=*/0,
         std::string(op) + "() called after finalize() closed this rank's protocol "
                           "machine (the goodbye state admits no further traffic)");
  }
}

void ValidatingTransport::fail(ProtocolViolation kind, int peer, std::uint64_t epoch,
                               const std::string& detail) const {
  throw ProtocolError(kind, inner_.rank(), peer, epoch,
                      detail + " (transport " + inner_.name() + ")");
}

void ValidatingTransport::barrier() {
  ensure_open("barrier");
  inner_.barrier();
}

void ValidatingTransport::run_ordered_collective(
    std::span<const std::span<const std::byte>> outgoing, CollectiveSink& sink,
    const char* plane, std::size_t expected_out, int first, int count,
    void (Transport::*op)(std::span<const std::span<const std::byte>>,
                          CollectiveSink&)) {
  if (enforcing() && outgoing.size() != expected_out) {
    fail(ProtocolViolation::kCollectiveShape, /*peer=*/-1, /*epoch=*/0,
         std::string(plane) + " called with " + std::to_string(outgoing.size()) +
             " outgoing payloads, expected " + std::to_string(expected_out) +
             " (exactly one per destination required)");
  }
  // Every delivery the backend makes is checked against the ordering
  // contract before the caller's sink sees it: exactly one payload per
  // expected source, ascending — the determinism guarantee rank-order
  // reductions build on, on every plane of the hierarchy.
  struct OrderSink final : CollectiveSink {
    const ValidatingTransport* self{nullptr};
    CollectiveSink* target{nullptr};
    const char* plane{nullptr};
    int first{0};
    int delivered{0};
    void total_hint(std::size_t bytes) override { target->total_hint(bytes); }
    void deliver(int source, std::span<const std::byte> bytes) override {
      if (self->enforcing() && source != first + delivered) {
        self->fail(ProtocolViolation::kCollectiveOrder, source, /*epoch=*/0,
                   std::string(plane) + " payload from source " +
                       std::to_string(source) + " delivered out of order (expected "
                                                "source " +
                       std::to_string(first + delivered) + " next)");
      }
      ++delivered;
      target->deliver(source, bytes);
    }
  } order;
  order.self = this;
  order.target = &sink;
  order.plane = plane;
  order.first = first;
  (inner_.*op)(outgoing, order);
  if (enforcing() && order.delivered != count) {
    fail(ProtocolViolation::kCollectiveOrder, /*peer=*/-1, /*epoch=*/0,
         std::string(plane) + " completed after delivering " +
             std::to_string(order.delivered) + " of " + std::to_string(count) +
             " per-source payloads");
  }
}

void ValidatingTransport::alltoallv(std::span<const std::span<const std::byte>> outgoing,
                                    CollectiveSink& sink) {
  ensure_open("alltoallv");
  run_ordered_collective(outgoing, sink, "alltoallv",
                         static_cast<std::size_t>(nranks()), /*first=*/0, nranks(),
                         &Transport::alltoallv);
}

void ValidatingTransport::group_alltoallv(
    std::span<const std::span<const std::byte>> outgoing, CollectiveSink& sink) {
  ensure_open("group_alltoallv");
  const Topology& t = inner_.topology();
  run_ordered_collective(outgoing, sink, "group collective plane",
                         static_cast<std::size_t>(t.group_size), /*first=*/t.leader,
                         t.group_size, &Transport::group_alltoallv);
}

void ValidatingTransport::leader_alltoallv(
    std::span<const std::span<const std::byte>> outgoing, CollectiveSink& sink) {
  ensure_open("leader_alltoallv");
  const Topology& t = inner_.topology();
  if (enforcing() && !t.is_leader()) {
    fail(ProtocolViolation::kLeaderOnlyCollective, /*peer=*/-1, /*epoch=*/0,
         "leader_alltoallv called by rank " + std::to_string(rank()) + " (member " +
             std::to_string(t.rank_in_group) + " of group " + std::to_string(t.group) +
             "): the inter-group plane admits group leaders only");
  }
  // Sources on the leader plane are group indices 0..G-1, not ranks.
  run_ordered_collective(outgoing, sink, "leader collective plane",
                         static_cast<std::size_t>(t.ngroups), /*first=*/0, t.ngroups,
                         &Transport::leader_alltoallv);
}

void ValidatingTransport::epoch_advance(std::uint64_t next_epoch) {
  ensure_open("epoch_advance");
  if (enforcing() && next_epoch != hier_epoch_ + 1) {
    fail(ProtocolViolation::kEpochSkew, /*peer=*/-1, next_epoch,
         "epoch_advance to " + std::to_string(next_epoch) +
             " while the settlement clock is at epoch " + std::to_string(hier_epoch_) +
             " (phases advance by exactly one)");
  }
  hier_epoch_ = next_epoch;
  inner_.epoch_advance(next_epoch);
}

Chunk* ValidatingTransport::acquire_chunk(std::size_t reserve_bytes) {
  ensure_open("acquire_chunk");
  Chunk* chunk = inner_.acquire_chunk(reserve_bytes);
  if (!ledger_.insert(chunk, detail::ChunkLedger::Origin::kAcquired) && enforcing()) {
    // The pool handed out a node this rank already holds — an ownership
    // corruption in the backend itself.
    fail(ProtocolViolation::kChunkDoubleRelease, /*peer=*/-1, /*epoch=*/0,
         "pool returned a chunk this rank already owns (backend free-list corruption)");
  }
  return chunk;
}

void ValidatingTransport::release_chunk(Chunk* chunk) {
  ensure_open("release_chunk");
  if (!ledger_.erase(chunk) && enforcing()) {
    fail(ProtocolViolation::kChunkDoubleRelease, /*peer=*/-1, /*epoch=*/0,
         "release of a chunk this rank does not own (double release, or a node "
         "that was already handed to send())");
  }
  inner_.release_chunk(chunk);
}

ValidatingTransport::Verdict ValidatingTransport::check_lane_step(
    Lane& lane, bool relaxed, bool is_control, std::uint64_t control_records,
    std::uint64_t epoch, std::size_t payload_bytes, const char* direction) {
  const auto e = static_cast<std::int64_t>(epoch);
  const char* frame = is_control ? "final marker" : "data frame";
  if (e <= lane.marker_epoch) {
    if (is_control) {
      return {false, ProtocolViolation::kDuplicateFinalMarker,
              std::string(direction) + " final marker for epoch " + std::to_string(epoch) +
                  ", but that phase was already closed by a final marker (exactly one "
                  "per phase per lane)"};
    }
    return {false, ProtocolViolation::kDataAfterFinalMarker,
            std::string(direction) + " data frame for epoch " + std::to_string(epoch) +
                " after that phase's final marker (data must precede the marker on "
                "its lane)"};
  }
  if (!relaxed && e != lane.marker_epoch + 1) {
    return {false, ProtocolViolation::kEpochSkew,
            std::string(direction) + " " + frame + " for epoch " + std::to_string(epoch) +
                " on a lane whose last finalized phase is " +
                std::to_string(lane.marker_epoch) +
                " (phase skew on a remote lane is bounded by one epoch)"};
  }
  if (lane.open_epoch >= 0 && e != lane.open_epoch) {
    return {false, ProtocolViolation::kEpochSkew,
            std::string(direction) + " " + frame + " for epoch " + std::to_string(epoch) +
                " while phase " + std::to_string(lane.open_epoch) +
                " is still open on the lane (its final marker never arrived)"};
  }
  if (!is_control) {
    lane.open_epoch = e;
    lane.open_bytes += payload_bytes;
    return {};
  }
  const std::uint64_t total = lane.open_bytes + payload_bytes;
  const bool zero_consistent = (control_records == 0) == (total == 0);
  if (!zero_consistent || (control_records != 0 && total % control_records != 0)) {
    return {false, ProtocolViolation::kQuiescenceMismatch,
            std::string(direction) + " final marker promises " +
                std::to_string(control_records) + " records, but " +
                std::to_string(total) +
                " payload bytes travelled on the lane this phase (bytes must be a "
                "positive whole multiple of the record count, or both zero)"};
  }
  lane.marker_epoch = e;
  lane.open_epoch = -1;
  lane.open_bytes = 0;
  return {};
}

ValidatingTransport::Verdict ValidatingTransport::check_lane_step_hier(
    bool is_control, std::uint64_t epoch, const char* direction) const {
  if (is_control) {
    return {false, ProtocolViolation::kHierarchicalMarker,
            std::string(direction) + " final marker for epoch " + std::to_string(epoch) +
                " on a hierarchical-topology run (phases close by the counted "
                "settlement collective; per-lane markers must never mix with it)"};
  }
  if (epoch != hier_epoch_ && epoch != hier_epoch_ + 1) {
    return {false, ProtocolViolation::kEpochSkew,
            std::string(direction) + " data frame for epoch " + std::to_string(epoch) +
                " while the settlement clock is at epoch " +
                std::to_string(hier_epoch_) +
                " (hierarchical phase skew is bounded by one epoch)"};
  }
  return {};
}

void ValidatingTransport::send(int dest, Chunk* chunk) {
  // Ownership transfers to the transport at the call, throw or not — so
  // every early exit below must dispose of the node first. A chunk we do
  // not own is left alone: its real owner (if any) still holds it.
  const bool owned = ledger_.erase(chunk);
  // dispose() frees the node (a released chunk may be recycled or deleted
  // immediately), so every field a failure message needs is captured first.
  const std::uint64_t epoch = chunk->epoch;
  const int source = chunk->source;
  const auto dispose = [&]() noexcept {
    if (owned) inner_.release_chunk(chunk);
  };
  if (closed_) {
    dispose();
    fail(ProtocolViolation::kTrafficAfterGoodbye, dest, epoch,
         "send() called after finalize() closed this rank's protocol machine");
  }
  if (enforcing()) {
    if (!owned) {
      fail(ProtocolViolation::kForeignChunk, dest, epoch,
           "send of a chunk this rank does not own (double send, or a node "
           "acquired outside the pool API)");
    }
    if (dest < 0 || dest >= nranks()) {
      dispose();
      fail(ProtocolViolation::kForeignChunk, dest, epoch,
           "send to out-of-range destination " + std::to_string(dest) +
               " (fleet has " + std::to_string(nranks()) + " ranks)");
    }
    if (source != rank()) {
      dispose();
      fail(ProtocolViolation::kForeignChunk, dest, epoch,
           "outgoing chunk stamped with source " + std::to_string(source) +
               ", but this rank is " + std::to_string(rank()));
    }
    Verdict v = hier_ ? check_lane_step_hier(chunk->control, epoch, "outgoing")
                      : check_lane_step(send_lanes_[static_cast<std::size_t>(dest)],
                                        /*relaxed=*/dest == rank(), chunk->control,
                                        chunk->control_records, epoch, chunk->size(),
                                        "outgoing");
    if (!v.ok) {
      dispose();
      fail(v.kind, dest, epoch, v.detail);
    }
  }
  inner_.send(dest, chunk);
}

void ValidatingTransport::inspect_arrival(Chunk* chunk,
                                          std::span<Chunk* const> undelivered) {
  // On a violation, this chunk and everything drained after it never
  // reaches the caller — hand the nodes back to the backend pool so a
  // rejected drain leaks nothing (none of them are ledgered yet).
  // The release frees this chunk too, so the lane identifiers the failure
  // message needs are captured before reject() runs.
  const int source = chunk->source;
  const std::uint64_t epoch = chunk->epoch;
  const auto reject = [&](ProtocolViolation kind, const std::string& detail) {
    for (Chunk* c : undelivered) inner_.release_chunk(c);
    fail(kind, source, epoch, detail);
  };
  if (source < 0 || source >= nranks()) {
    reject(ProtocolViolation::kForeignChunk,
           "arrival stamped with out-of-range source " + std::to_string(source) +
               " (fleet has " + std::to_string(nranks()) + " ranks)");
  }
  Lane& lane = recv_lanes_[static_cast<std::size_t>(source)];
  Verdict v = hier_ ? check_lane_step_hier(chunk->control, epoch, "incoming")
                    : check_lane_step(lane, /*relaxed=*/source == rank(),
                                      chunk->control, chunk->control_records, epoch,
                                      chunk->size(), "incoming");
  if (!v.ok) reject(v.kind, v.detail);
}

std::size_t ValidatingTransport::drain(std::vector<Chunk*>& out) {
  ensure_open("drain");
  drain_scratch_.clear();
  inner_.drain(drain_scratch_);
  for (std::size_t i = 0; i < drain_scratch_.size(); ++i) {
    Chunk* c = drain_scratch_[i];
    if (enforcing()) {
      inspect_arrival(c, std::span<Chunk* const>(drain_scratch_.data() + i,
                                                 drain_scratch_.size() - i));
    }
    if (!ledger_.insert(c, detail::ChunkLedger::Origin::kDrained) && enforcing()) {
      const int source = c->source;       // the release loop frees c itself,
      const std::uint64_t epoch = c->epoch;  // so capture the lane ids first
      for (std::size_t j = i; j < drain_scratch_.size(); ++j) {
        inner_.release_chunk(drain_scratch_[j]);
      }
      fail(ProtocolViolation::kForeignChunk, source, epoch,
           "transport delivered a chunk this rank already owns (a node sent and "
           "received without an ownership handoff)");
    }
    out.push_back(c);
  }
  return drain_scratch_.size();
}

void ValidatingTransport::wait_incoming() {
  ensure_open("wait_incoming");
  inner_.wait_incoming();
}

void ValidatingTransport::trim_pool() {
  // Comm trims at fine-grained phase boundaries, which is exactly when a
  // well-behaved rank holds no acquired-but-unsent chunks (aggregators are
  // flushed before the drain). Chunks of drained origin may legitimately
  // cross the boundary: a peer racing one epoch ahead gets its early
  // chunks deferred by Comm until the epochs line up.
  if (enforcing()) {
    const std::size_t held = ledger_.count(detail::ChunkLedger::Origin::kAcquired);
    if (held != 0) {
      fail(ProtocolViolation::kChunkLeak, /*peer=*/-1, /*epoch=*/0,
           std::to_string(held) + " chunk(s) acquired from the pool were neither "
                                  "sent nor released by the phase boundary");
    }
  }
  inner_.trim_pool();
}

void ValidatingTransport::finalize() {
  if (closed_) return;
  if (!inner_.aborted() && ledger_.size() != 0) {
    const std::size_t acquired = ledger_.count(detail::ChunkLedger::Origin::kAcquired);
    const std::size_t drained = ledger_.size() - acquired;
    closed_ = true;  // stay idempotent even when the goodbye check throws
    fail(ProtocolViolation::kChunkLeak, /*peer=*/-1, /*epoch=*/0,
         "rank reached goodbye still owning " + std::to_string(acquired) +
             " acquired and " + std::to_string(drained) +
             " drained chunk(s); all nodes must be sent or released before the "
             "body returns");
  }
  closed_ = true;
}

}  // namespace plv::pml
