// Process-per-rank launcher (implementation in transport_proc.cpp).
//
// Declared separately so comm.hpp can dispatch Runtime::run to the socket
// backend without pulling the POSIX machinery into every translation unit.
#pragma once

#include <functional>

namespace plv::pml {

class Comm;

namespace detail {

/// Forks nranks-1 child processes (rank 0 runs in the caller, so rank-0
/// result capture into caller-scope variables keeps working) connected by
/// a full mesh of Unix-domain stream sockets, runs `body` on every rank,
/// and harvests the children. Fail-fast mirrors the thread backend: the
/// first failing rank aborts the fleet; its error text (and, for rank 0,
/// its exception type) is re-raised on the caller — as RemoteRankError
/// when the failure happened in a child. With `validate`, each rank's
/// transport is wrapped in a ValidatingTransport (transport_check.hpp)
/// and finalized after a clean body return.
void run_proc_ranks(int nranks, const std::function<void(Comm&)>& body, bool validate);

}  // namespace detail
}  // namespace plv::pml
