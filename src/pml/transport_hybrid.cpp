// HybridTransport: thread-rank groups nested inside forked socket
// processes — the composed two-tier substrate of the hierarchical
// collectives.
//
// Shape: the fleet is cut into consecutive blocks of `ranks_per_proc`
// ranks. Each block is one OS process (group 0 is the calling process,
// so rank-0 result capture into caller-scope variables keeps working;
// groups 1..G-1 are forked children), and each rank inside a block is
// one thread of that process. Every rank owns a SocketFrameTransport by
// value over a pre-fork socketpair mesh — the full mesh, siblings
// included, so the fine-grained chunk plane, the abort plane, and the
// EOF failure detector are exactly the proc backend's, uniform across
// tiers. What the composition adds is the *collective* tiers:
//
//   group_alltoallv  — shared memory. Members publish span pointers into
//                      per-process slots and meet at a pump-aware group
//                      barrier (parked ranks keep draining their socket
//                      lanes so remote writers never stall against a
//                      member waiting on its siblings).
//   leader_alltoallv — leader-to-leader collective frames over the
//                      socket tier (send_collective/take_collective);
//                      non-leaders never touch the inter-group plane.
//
// topology() publishes the block structure, which is what switches Comm
// onto the two-level collectives; with HybridOptions::flat_collectives
// the same substrate reports the trivial topology instead, giving the
// A/B baseline the hierarchical path is measured against.
#include "pml/transport_hybrid.hpp"

#include <stdio_ext.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/errno_util.hpp"
#include "common/sync.hpp"
#include "pml/comm.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "pml/transport_socket.hpp"

namespace plv::pml {

HybridOptions resolve_hybrid_options(HybridOptions requested) {
  // Env knobs are read during single-threaded setup, before any worker
  // threads or forked children exist.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* rpp = std::getenv("PLV_RANKS_PER_PROC");
  if (rpp != nullptr && *rpp != '\0') {
    char* end = nullptr;
    const long v = std::strtol(rpp, &end, 10);
    if (end == rpp || *end != '\0' || v < 1 || v > 1 << 20) {
      throw std::invalid_argument(
          std::string("pml: PLV_RANKS_PER_PROC must be a positive integer, got '") +
          rpp + "'");
    }
    requested.ranks_per_proc = static_cast<int>(v);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* flat = std::getenv("PLV_FLAT_COLLECTIVES");
  if (flat != nullptr && *flat != '\0') {
    requested.flat_collectives = std::string_view(flat) != "0";
  }
  if (requested.ranks_per_proc == 0) requested.ranks_per_proc = 2;
  return requested;
}

namespace detail {
namespace {

/// Per-process state shared by the rank threads of one group: the
/// intra-group collective plane. `slots[j]` is member j's published
/// outgoing-span array during a group_alltoallv; the barrier is the
/// classic generation-counting rendezvous, with the twist that waiters
/// pump their own socket lanes (see HybridTransport::group_sync).
///
/// Synchronization map (no PLV_GUARDED_BY here on purpose): a member
/// writes only its own `slots` entry before the rendezvous and peers read
/// it only after — the generation bump (release store, acquire loads in
/// the waiters' spin) is the ordering edge, not a lock the analysis could
/// name. `count`/`generation` implement that rendezvous with explicit
/// orders; `aborted` is the group-local kill flag.
struct HybridShared {
  explicit HybridShared(int group_size)
      : slots(static_cast<std::size_t>(group_size), nullptr), size(group_size) {}

  std::vector<const std::span<const std::byte>*> slots;
  std::atomic<int> count{0};
  std::atomic<std::uint64_t> generation{0};
  int size;
  std::atomic<bool> aborted{false};
};

class HybridTransport final : public Transport {
 public:
  /// `fds` is this rank's row of the global socketpair mesh (self -1;
  /// sibling lanes are real socketpairs too). `topo` is the published
  /// topology — Topology::blocks normally, Topology::flat under the
  /// flat_collectives A/B baseline. `group_base`/`slot` locate the rank
  /// inside its hosting process independently of what topo reports, so
  /// the shared-memory plane stays wired even when the topology is
  /// flattened (Comm then simply never uses it).
  HybridTransport(int rank, int nranks, std::vector<int> fds, HybridShared* shared,
                  Topology topo, int group_base)
      : socket_("hybrid", rank, nranks, std::move(fds)),
        shared_(shared),
        topo_(std::move(topo)),
        group_base_(group_base),
        slot_(rank - group_base) {}

  [[nodiscard]] const char* name() const noexcept override { return socket_.name(); }
  [[nodiscard]] int rank() const noexcept override { return socket_.rank(); }
  [[nodiscard]] int nranks() const noexcept override { return socket_.nranks(); }

  // Flat collective plane: every lane exists in the mesh (siblings
  // included), so the socket implementation is complete as-is. This is
  // the baseline the hierarchical plane is benchmarked against.
  void barrier() override { socket_.barrier(); }
  void alltoallv(std::span<const std::span<const std::byte>> outgoing,
                 CollectiveSink& sink) override {
    socket_.alltoallv(outgoing, sink);
  }

  // Fine-grained plane: pure delegation. Chunk pools stay per-rank and
  // single-owner because even sibling sends cross a socketpair.
  [[nodiscard]] Chunk* acquire_chunk(std::size_t reserve_bytes) override {
    return socket_.acquire_chunk(reserve_bytes);
  }
  void release_chunk(Chunk* chunk) noexcept override { socket_.release_chunk(chunk); }
  void send(int dest, Chunk* chunk) override { socket_.send(dest, chunk); }
  std::size_t drain(std::vector<Chunk*>& out) override { return socket_.drain(out); }
  void wait_incoming() override { socket_.wait_incoming(); }

  [[nodiscard]] const Topology& topology() const override { return topo_; }

  void group_alltoallv(std::span<const std::span<const std::byte>> outgoing,
                       CollectiveSink& sink) override {
    assert(!topo_.trivial());
    assert(static_cast<int>(outgoing.size()) == topo_.group_size);
    shared_->slots[static_cast<std::size_t>(slot_)] = outgoing.data();
    group_sync();  // publish: every member's slot pointer is now visible
    std::size_t total = 0;
    for (int j = 0; j < topo_.group_size; ++j) {
      total += shared_->slots[static_cast<std::size_t>(j)][slot_].size();
    }
    sink.total_hint(total);
    for (int j = 0; j < topo_.group_size; ++j) {
      // slots[j][slot_] is member j's payload for this rank; ascending j
      // is ascending global source rank (consecutive blocks).
      sink.deliver(group_base_ + j, shared_->slots[static_cast<std::size_t>(j)][slot_]);
    }
    group_sync();  // consume: spans stay valid until every member is done
  }

  void leader_alltoallv(std::span<const std::span<const std::byte>> outgoing,
                        CollectiveSink& sink) override {
    assert(!topo_.trivial());
    assert(topo_.is_leader());
    assert(static_cast<int>(outgoing.size()) == topo_.ngroups);
    const int G = topo_.ngroups;
    for (int h = 0; h < G; ++h) {
      if (h == topo_.group) continue;
      socket_.send_collective(topo_.leaders[static_cast<std::size_t>(h)],
                              outgoing[static_cast<std::size_t>(h)]);
    }
    // Gather every peer leader's blob before delivering so the sink sees
    // ascending group order regardless of arrival order.
    cross_scratch_.assign(static_cast<std::size_t>(G), {});
    std::size_t total = outgoing[static_cast<std::size_t>(topo_.group)].size();
    for (int h = 0; h < G; ++h) {
      if (h == topo_.group) continue;
      cross_scratch_[static_cast<std::size_t>(h)] =
          socket_.take_collective(topo_.leaders[static_cast<std::size_t>(h)]);
      total += cross_scratch_[static_cast<std::size_t>(h)].size();
    }
    sink.total_hint(total);
    for (int h = 0; h < G; ++h) {
      if (h == topo_.group) {
        sink.deliver(h, outgoing[static_cast<std::size_t>(h)]);
      } else {
        const auto& blob = cross_scratch_[static_cast<std::size_t>(h)];
        sink.deliver(h, {blob.data(), blob.size()});
      }
    }
  }

  void raise_abort() noexcept override {
    // Order matters: siblings parked in group_sync watch the shared flag,
    // remote ranks get the best-effort Abort frames (and, failing those,
    // the EOF when this transport destructs).
    shared_->aborted.store(true, std::memory_order_release);
    socket_.raise_abort();
  }
  [[nodiscard]] bool aborted() const noexcept override {
    return socket_.aborted() || shared_->aborted.load(std::memory_order_acquire);
  }

  void set_pool_watermark(std::size_t nodes) noexcept override {
    socket_.set_pool_watermark(nodes);
  }
  void trim_pool() noexcept override { socket_.trim_pool(); }
  [[nodiscard]] std::size_t pool_free_count() const noexcept override {
    return socket_.pool_free_count();
  }

  void finish() noexcept { socket_.finish(); }

 private:
  /// Group rendezvous. Waiters spin on the barrier generation but keep
  /// pumping their own socket lanes: a remote rank mid-write to a parked
  /// member always finds its reader live, which is the same deadlock-
  /// freedom argument write_frame itself relies on. Unwinds with
  /// AbortedError once any rank (sibling or remote) has failed, so a
  /// group never waits forever on a dead member.
  void group_sync() {
    if (aborted()) throw AbortedError();
    const std::uint64_t gen = shared_->generation.load(std::memory_order_acquire);
    if (shared_->count.fetch_add(1, std::memory_order_acq_rel) + 1 == shared_->size) {
      shared_->count.store(0, std::memory_order_relaxed);
      shared_->generation.store(gen + 1, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (shared_->generation.load(std::memory_order_acquire) == gen) {
      if (aborted()) throw AbortedError();
      socket_.pump_incoming(false);
      if (++spins > 64) std::this_thread::yield();
    }
  }

  SocketFrameTransport socket_;
  HybridShared* shared_;
  Topology topo_;
  int group_base_;  ///< global rank of this process's first (leader) rank
  int slot_;        ///< this rank's index inside its hosting process
  std::vector<std::vector<std::byte>> cross_scratch_;
};

/// run_rank_body's logic for the hybrid wrapper (that helper is bound to
/// SocketFrameTransport by signature). Same outcome mapping: clean run
/// sends Goodbye, AbortedError rebroadcasts and stays peer-induced, any
/// other exception is this rank's own failure.
int run_hybrid_rank(HybridTransport& transport, const std::function<void(Comm&)>& body,
                    bool validate, std::string& error_text,
                    std::exception_ptr* keep_exception) {
  try {
    if (validate) {
      ValidatingTransport checked(transport);
      {
        Comm comm(checked);
        body(comm);
      }
      checked.finalize();
    } else {
      Comm comm(transport);
      body(comm);
    }
    transport.finish();
    return kExitClean;
  } catch (const AbortedError&) {
    transport.raise_abort();  // rebroadcast; the originator reports the cause
    return kExitAborted;
  } catch (const std::exception& e) {
    error_text = e.what();
    if (keep_exception != nullptr) *keep_exception = std::current_exception();
    transport.raise_abort();
    return kExitFailed;
  } catch (...) {
    error_text = "unknown exception";
    if (keep_exception != nullptr) *keep_exception = std::current_exception();
    transport.raise_abort();
    return kExitFailed;
  }
}

/// One process's share of the run, parent and child sides alike.
struct GroupOutcome {
  int code{kExitClean};
  int failed_rank{-1};
  std::string error_text;
  std::exception_ptr exception;  // meaningful in the calling process only
};

GroupOutcome run_group(int group, int nranks, const std::function<void(Comm&)>& body,
                       bool validate, const HybridOptions& resolved,
                       const std::vector<std::vector<int>>& mesh) {
  const int base = group * resolved.ranks_per_proc;
  const int count = std::min(resolved.ranks_per_proc, nranks - base);
  HybridShared shared(count);
  // Loser ranks race to record the group's outcome; lowest failed rank
  // wins, see the merge below.
  struct {
    plv::Mutex mu;
    GroupOutcome out PLV_GUARDED_BY(mu);
  } outcome;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) {
    const int r = base + j;
    threads.emplace_back([&, r] {
      std::string error_text;
      std::exception_ptr exception;
      int code = kExitFailed;
      try {
        Topology topo = resolved.flat_collectives
                            ? Topology::flat(nranks)
                            : Topology::blocks(nranks, resolved.ranks_per_proc, r);
        HybridTransport transport(r, nranks, mesh[static_cast<std::size_t>(r)], &shared,
                                  std::move(topo), base);
        code = run_hybrid_rank(transport, body, validate, error_text, &exception);
      } catch (const std::exception& e) {
        error_text = std::string("transport setup failed: ") + e.what();
        exception = std::current_exception();
        shared.aborted.store(true, std::memory_order_release);
      } catch (...) {
        error_text = "transport setup failed";
        exception = std::current_exception();
        shared.aborted.store(true, std::memory_order_release);
      }
      // Transport destructed above: this rank's lanes are closed, so
      // remote peers see Goodbye-then-EOF (clean) or bare EOF (failure).
      if (code == kExitClean) return;
      plv::MutexLock lock(outcome.mu);
      GroupOutcome& out = outcome.out;
      if (code == kExitFailed &&
          (out.code != kExitFailed || r < out.failed_rank)) {
        out.code = kExitFailed;
        out.failed_rank = r;
        out.error_text = error_text;
        out.exception = exception;
      } else if (out.code == kExitClean) {
        out.code = kExitAborted;
      }
    });
  }
  for (auto& t : threads) t.join();
  plv::MutexLock lock(outcome.mu);
  return std::move(outcome.out);
}

[[noreturn]] void hybrid_child_main(int group, int nranks,
                                    const std::function<void(Comm&)>& body, bool validate,
                                    const HybridOptions& resolved,
                                    const std::vector<std::vector<int>>& mesh,
                                    const std::vector<std::array<int, 2>>& status_pipes) {
  // Same fork hygiene as the proc backend: drop inherited stdio buffers,
  // neuter SIGPIPE, keep only this group's mesh rows and status write end.
  __fpurge(stdout);
  __fpurge(stderr);
  ::signal(SIGPIPE, SIG_IGN);
  const int base = group * resolved.ranks_per_proc;
  const int end = std::min(base + resolved.ranks_per_proc, nranks);
  for (int a = 0; a < nranks; ++a) {
    if (a >= base && a < end) continue;
    for (int b = 0; b < nranks; ++b) {
      const int fd = mesh[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      if (fd >= 0) ::close(fd);
    }
  }
  for (std::size_t g = 0; g < status_pipes.size(); ++g) {
    const auto& sp = status_pipes[g];
    if (sp[0] >= 0) ::close(sp[0]);
    if (static_cast<int>(g) != group && sp[1] >= 0) ::close(sp[1]);
  }
  const int status_fd = status_pipes[static_cast<std::size_t>(group)][1];
  const GroupOutcome out = run_group(group, nranks, body, validate, resolved, mesh);
  if (out.code == kExitFailed) {
    // "<failed rank>\n<error text>": the parent parses the rank back out
    // so RemoteRankError names the actual thread rank, not just the
    // group.
    const std::string payload =
        std::to_string(out.failed_rank) + "\n" +
        (out.error_text.empty() ? std::string("unknown failure") : out.error_text);
    write_all(status_fd, payload.data(), payload.size());
  }
  ::close(status_fd);
  ::_exit(out.code);
}

}  // namespace

void run_hybrid_ranks(int nranks, const std::function<void(Comm&)>& body, bool validate,
                      const HybridOptions& hybrid) {
  HybridOptions resolved = resolve_hybrid_options(hybrid);
  if (resolved.ranks_per_proc > nranks) resolved.ranks_per_proc = nranks;
  const int ngroups = (nranks + resolved.ranks_per_proc - 1) / resolved.ranks_per_proc;
  const auto n = static_cast<std::size_t>(nranks);

  // Full mesh of stream socketpairs, sibling lanes included: mesh[a][b]
  // is rank a's endpoint of the (a, b) lane. Created before the first
  // fork; every process closes the rows that are not its own.
  std::vector<std::vector<int>> mesh(n, std::vector<int>(n, -1));
  std::vector<std::array<int, 2>> status_pipes(static_cast<std::size_t>(ngroups),
                                               {-1, -1});
  auto close_all = [&]() noexcept {
    for (auto& row : mesh) {
      for (int& fd : row) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
    for (auto& sp : status_pipes) {
      for (int& fd : sp) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        const int err = errno;
        close_all();
        throw std::runtime_error(std::string("pml: socketpair failed: ") +
                                 plv::errno_str(err));
      }
      mesh[i][j] = sv[0];
      mesh[j][i] = sv[1];
    }
  }
  for (int g = 1; g < ngroups; ++g) {
    if (::pipe(status_pipes[static_cast<std::size_t>(g)].data()) != 0) {
      const int err = errno;
      close_all();
      throw std::runtime_error(std::string("pml: pipe failed: ") + plv::errno_str(err));
    }
  }

  std::fflush(nullptr);
  std::vector<pid_t> pids(static_cast<std::size_t>(ngroups), -1);
  for (int g = 1; g < ngroups; ++g) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      hybrid_child_main(g, nranks, body, validate, resolved, mesh, status_pipes);
    }
    if (pid < 0) {
      const int err = errno;
      close_all();
      for (int q = 1; q < g; ++q) {
        int st = 0;
        ::waitpid(pids[static_cast<std::size_t>(q)], &st, 0);
      }
      throw std::runtime_error(std::string("pml: fork failed: ") + plv::errno_str(err));
    }
    pids[static_cast<std::size_t>(g)] = pid;
  }

  // Parent keeps group 0's rows and the status read ends.
  const std::size_t parent_end =
      static_cast<std::size_t>(std::min(resolved.ranks_per_proc, nranks));
  for (std::size_t a = parent_end; a < n; ++a) {
    for (int& fd : mesh[a]) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  for (int g = 1; g < ngroups; ++g) {
    ::close(status_pipes[static_cast<std::size_t>(g)][1]);
    status_pipes[static_cast<std::size_t>(g)][1] = -1;
  }

  // Run group 0's ranks as threads of this process.
  const GroupOutcome parent = run_group(0, nranks, body, validate, resolved, mesh);
  // All parent-group transports are destructed: children see our EOFs.

  // Harvest children: error text first (EOF-delimited), then exit status.
  std::vector<int> group_code(static_cast<std::size_t>(ngroups), kExitClean);
  std::vector<int> group_rank(static_cast<std::size_t>(ngroups), -1);
  std::vector<std::string> group_error(static_cast<std::size_t>(ngroups));
  for (int g = 1; g < ngroups; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    std::string text;
    char buf[4096];
    for (;;) {
      const ssize_t k = ::read(status_pipes[gi][0], buf, sizeof(buf));
      if (k > 0) {
        text.append(buf, static_cast<std::size_t>(k));
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      break;
    }
    ::close(status_pipes[gi][0]);
    status_pipes[gi][0] = -1;
    int st = 0;
    pid_t rc = 0;
    do {
      rc = ::waitpid(pids[gi], &st, 0);
    } while (rc < 0 && errno == EINTR);
    const int leader = g * resolved.ranks_per_proc;
    if (rc < 0) {
      group_code[gi] = kExitFailed;
      group_rank[gi] = leader;
      group_error[gi] = std::string("waitpid failed: ") + plv::errno_str(errno);
    } else if (WIFEXITED(st)) {
      group_code[gi] = WEXITSTATUS(st);
      group_rank[gi] = leader;
      if (group_code[gi] == kExitFailed) {
        // Parse "<failed rank>\n<error text>" back apart; a payload
        // without the separator (e.g. a pre-pipe crash) keeps the text
        // and attributes the failure to the group leader.
        const std::size_t cut = text.find('\n');
        if (cut != std::string::npos) {
          const std::string head = text.substr(0, cut);
          char* endp = nullptr;
          const long r = std::strtol(head.c_str(), &endp, 10);
          if (endp != head.c_str() && *endp == '\0' && r >= 0 && r < nranks) {
            group_rank[gi] = static_cast<int>(r);
            text.erase(0, cut + 1);
          }
        }
        group_error[gi] = text.empty() ? "unknown failure" : text;
      }
    } else {
      // Signal death takes the whole group of thread ranks with it; the
      // leader rank stands in for the group in the report.
      group_code[gi] = kExitFailed;
      group_rank[gi] = leader;
      group_error[gi] = describe_wait_status(st);
    }
  }

  // The calling process's own failing rank wins (exception type
  // preserved); otherwise the lowest failing remote group reports.
  if (parent.code == kExitFailed && parent.exception) {
    std::rethrow_exception(parent.exception);
  }
  for (int g = 1; g < ngroups; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    if (group_code[gi] == kExitFailed) {
      throw RemoteRankError(group_rank[gi], group_error[gi].empty() ? "unknown failure"
                                                                    : group_error[gi]);
    }
  }
  for (int g = 1; g < ngroups; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    if (group_code[gi] != kExitClean && group_code[gi] != kExitAborted) {
      throw RemoteRankError(group_rank[gi], "group exited with unexpected status " +
                                                std::to_string(group_code[gi]));
    }
  }
  if (parent.code == kExitAborted ||
      std::any_of(group_code.begin(), group_code.end(),
                  [](int c) { return c == kExitAborted; })) {
    throw AbortedError();
  }
}

}  // namespace detail
}  // namespace plv::pml
