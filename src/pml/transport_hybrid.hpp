// Hybrid composed launcher (implementation in transport_hybrid.cpp).
//
// Declared separately so comm.hpp can dispatch Runtime::run to the hybrid
// backend without pulling the POSIX machinery into every translation
// unit. The substrate nests the thread tier inside the socket tier: the
// fleet is split into groups of `ranks_per_proc` consecutive ranks, each
// group is one forked process hosting its ranks as threads, and every
// rank owns a SocketFrameTransport over a pre-fork socketpair mesh for
// the fine-grained plane. The group tier adds a shared-memory collective
// plane (span slots + a pump-aware group barrier), and the transport
// publishes the non-trivial Topology that switches Comm onto the
// two-level hierarchical collectives.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace plv::pml {

class Comm;

/// Shape of a hybrid run. `ranks_per_proc` consecutive ranks share one
/// forked process (the last group may be ragged when it does not divide
/// nranks); 0 = auto (PLV_RANKS_PER_PROC, else 2). `flat_collectives`
/// keeps the composed substrate but reports the trivial topology, so Comm
/// stays on the flat collectives/quiescence protocol — the A/B baseline
/// the hierarchical path is benchmarked against (PLV_FLAT_COLLECTIVES=1
/// forces it).
struct HybridOptions {
  int ranks_per_proc{0};        ///< thread ranks per forked process; 0 = auto
  bool flat_collectives{false}; ///< report a trivial topology (A/B baseline)
};

/// Applies the PLV_RANKS_PER_PROC / PLV_FLAT_COLLECTIVES environment
/// overrides (if set and non-empty) on top of the configured options, and
/// resolves ranks_per_proc 0 to its default of 2 — same precedence rule
/// as resolve_transport, so one environment re-targets a whole binary.
[[nodiscard]] HybridOptions resolve_hybrid_options(HybridOptions requested);

namespace detail {

/// Runs `body` on every rank of a hybrid fleet: forked group processes
/// (group 0's ranks run as threads of the caller, so rank-0 result
/// capture into caller-scope variables keeps working) with
/// `hybrid.ranks_per_proc` rank threads each, wired by a full socketpair
/// mesh. Fail-fast mirrors the proc backend: the first failing rank
/// aborts the fleet; remote failures re-raise on the caller as
/// RemoteRankError naming the failed rank. With `validate`, each rank's
/// transport is wrapped in a ValidatingTransport.
void run_hybrid_ranks(int nranks, const std::function<void(Comm&)>& body, bool validate,
                      const HybridOptions& hybrid);

}  // namespace detail
}  // namespace plv::pml
