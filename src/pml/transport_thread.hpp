// ThreadTransport: the default thread-per-rank backend.
//
// This is the original pml substrate factored behind the Transport seam,
// with its two performance properties intact:
//
//   * collectives are zero-serialization — each rank publishes a pointer
//     to its span array through the shared `slots` vector and reads peer
//     payloads in place between two barrier phases;
//   * fine-grained sends are zero-copy — pooled Chunk pointers move
//     between per-rank mailboxes, never the bytes.
//
// The only cost added by the seam is one virtual dispatch per chunk /
// collective, amortized over thousands of records (bench/micro_pml guards
// the steady-state throughput).
#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <vector>

#include "pml/mailbox.hpp"
#include "pml/transport.hpp"

namespace plv::pml {

namespace detail {

/// State shared by all rank threads of one run.
///
/// Synchronization map (why nothing here carries a PLV_GUARDED_BY): the
/// `slots` entries are published between two barrier phases — a rank
/// writes only its own slot before the first arrive_and_wait and peers
/// read it only after, so the barrier itself is the release/acquire edge
/// and no lock exists for the analysis to name. `mailboxes` are
/// internally synchronized (lock-free MPSC + annotated wait path, see
/// mailbox.hpp); `pools` are strictly single-owner (only the rank's own
/// thread touches its pool); `aborted` is a plain seq_cst flag.
struct ThreadShared {
  explicit ThreadShared(int nranks)
      : nranks(nranks),
        barrier(nranks),
        slots(static_cast<std::size_t>(nranks), nullptr),
        mailboxes(static_cast<std::size_t>(nranks)),
        pools(static_cast<std::size_t>(nranks)) {}

  int nranks;
  std::barrier<> barrier;
  std::vector<const void*> slots;  // per-rank span-array pointer for collectives
  std::vector<Mailbox> mailboxes;  // fine-grained receive queues
  std::vector<ChunkPool> pools;    // per-rank free lists; touched only by owner
  std::atomic<bool> aborted{false};

  /// Raises the abort flag and wakes every rank parked in a mailbox wait.
  void abort() noexcept {
    aborted.store(true, std::memory_order_seq_cst);
    for (auto& mb : mailboxes) mb.interrupt();
  }
};

}  // namespace detail

class ThreadTransport final : public Transport {
 public:
  ThreadTransport(detail::ThreadShared* shared, int rank) noexcept
      : shared_(shared), rank_(rank) {}

  [[nodiscard]] const char* name() const noexcept override { return "thread"; }
  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int nranks() const noexcept override { return shared_->nranks; }

  void barrier() override { sync(); }

  void alltoallv(std::span<const std::span<const std::byte>> outgoing,
                 CollectiveSink& sink) override {
    assert(static_cast<int>(outgoing.size()) == nranks());
    shared_->slots[me()] = outgoing.data();
    sync();  // all span arrays visible
    std::size_t total = 0;
    for (int r = 0; r < nranks(); ++r) total += peer_payload(r).size();
    sink.total_hint(total);
    for (int r = 0; r < nranks(); ++r) sink.deliver(r, peer_payload(r));
    sync();  // all ranks done reading; spans may be reused after return
  }

  [[nodiscard]] Chunk* acquire_chunk(std::size_t reserve_bytes) override {
    return pool().acquire(reserve_bytes);
  }
  void release_chunk(Chunk* chunk) noexcept override { pool().release(chunk); }

  void send(int dest, Chunk* chunk) override {
    shared_->mailboxes[static_cast<std::size_t>(dest)].push(chunk);
  }

  std::size_t drain(std::vector<Chunk*>& out) override {
    return shared_->mailboxes[me()].drain(out);
  }

  void wait_incoming() override {
    shared_->mailboxes[me()].wait_nonempty([this] { return aborted(); });
  }

  void raise_abort() noexcept override { shared_->abort(); }
  [[nodiscard]] bool aborted() const noexcept override {
    return shared_->aborted.load(std::memory_order_seq_cst);
  }

  void set_pool_watermark(std::size_t nodes) noexcept override {
    pool().set_watermark(nodes);
  }
  void trim_pool() noexcept override { pool().trim(); }
  [[nodiscard]] std::size_t pool_free_count() const noexcept override {
    return shared_->pools[me()].free_count();
  }

 private:
  [[nodiscard]] std::size_t me() const noexcept {
    return static_cast<std::size_t>(rank_);
  }
  [[nodiscard]] ChunkPool& pool() noexcept { return shared_->pools[me()]; }

  /// Rank r's payload addressed to this rank, read in place from the
  /// peer's published span array.
  [[nodiscard]] std::span<const std::byte> peer_payload(int r) const noexcept {
    const auto* spans = static_cast<const std::span<const std::byte>*>(
        shared_->slots[static_cast<std::size_t>(r)]);
    return spans[me()];
  }

  void check_abort() const {
    if (aborted()) throw AbortedError();
  }

  /// One barrier phase with abort checks on both sides: never arrive when
  /// the run is already dead, and never touch peer state after waking
  /// without confirming every peer made it here too.
  void sync() {
    check_abort();
    shared_->barrier.arrive_and_wait();
    check_abort();
  }

  detail::ThreadShared* shared_;
  int rank_;
};

}  // namespace plv::pml
