// FlatMap — open-addressing hash map keyed by vertex/community ids.
//
// The inner loop's per-iteration scratch state (Σtot cache, Σin
// pre-aggregation, community bookkeeping, reference counts) used to live
// in node-based std::unordered_map/set, whose per-find pointer chase and
// per-insert allocation dominate the hot path once the messaging layer is
// zero-copy. FlatMap is the flat replacement: one contiguous slot array,
// linear probing, Fibonacci hashing (the paper's Eq. 6 choice,
// hashing/hash_fns.hpp), tombstone-free backward-shift deletion — the same
// layout discipline as hashing::EdgeTable, specialized for 32-bit keys.
//
// kInvalidVid is reserved as the empty sentinel; real vertex/community ids
// never take that value (common/types.hpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "hashing/hash_fns.hpp"

namespace plv {

template <typename Value>
class FlatMap {
 public:
  /// Pre-sizes so `expected` entries fit without growing.
  explicit FlatMap(std::size_t expected = 0) { reserve(expected); }

  /// Value slot for `key`, default-constructed on first access (the
  /// operator[] idiom).
  [[nodiscard]] Value& ref(vid_t key) {
    assert(key != kInvalidVid);
    if (size_ + 1 > max_entries_) grow();
    std::size_t idx = slot_of(key);
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.key == key) return slot.value;
      if (slot.key == kInvalidVid) {
        slot.key = key;
        slot.value = Value{};
        ++size_;
        return slot.value;
      }
      idx = (idx + 1) & mask_;
    }
  }

  [[nodiscard]] Value* find(vid_t key) noexcept {
    if (slots_.empty()) return nullptr;
    std::size_t idx = slot_of(key);
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.key == key) return &slot.value;
      if (slot.key == kInvalidVid) return nullptr;
      idx = (idx + 1) & mask_;
    }
  }

  [[nodiscard]] const Value* find(vid_t key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  [[nodiscard]] bool contains(vid_t key) const noexcept { return find(key) != nullptr; }

  /// Removes `key` by backward-shifting the probe chain (no tombstones, so
  /// load stays honest and scans stay dense). Returns false if absent.
  bool erase(vid_t key) noexcept {
    if (slots_.empty()) return false;
    std::size_t idx = slot_of(key);
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.key == key) break;
      if (slot.key == kInvalidVid) return false;
      idx = (idx + 1) & mask_;
    }
    std::size_t hole = idx;
    std::size_t next = (hole + 1) & mask_;
    while (slots_[next].key != kInvalidVid) {
      const std::size_t home = slot_of(slots_[next].key);
      // The entry at `next` may fill `hole` iff hole lies cyclically
      // within [home, next).
      if (((next - home) & mask_) >= ((next - hole) & mask_)) {
        slots_[hole] = slots_[next];
        hole = next;
      }
      next = (next + 1) & mask_;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Visits every entry as (key, Value&). Order is the probe order; callers
  /// must not depend on it semantically.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.key != kInvalidVid) fn(slot.key, slot.value);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kInvalidVid) fn(slot.key, slot.value);
    }
  }

  /// Removes all entries, keeping the capacity (cheap reuse across
  /// iterations).
  void clear() noexcept {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

  /// Ensures capacity for `expected` entries at the fixed 1/2 load factor.
  void reserve(std::size_t expected) {
    if (expected == 0) return;
    const auto target = static_cast<std::size_t>(next_pow2(expected * 2 + 1));
    if (target > slots_.size()) rehash(target);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    vid_t key{kInvalidVid};
    Value value{};
  };

  [[nodiscard]] std::size_t slot_of(vid_t key) const noexcept {
    return static_cast<std::size_t>(
        hashing::fibonacci_hash(static_cast<std::uint64_t>(key), slots_.size()));
  }

  void grow() { rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void rehash(std::size_t new_capacity) {
    assert(is_pow2(new_capacity));
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    max_entries_ = new_capacity / 2;
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.key != kInvalidVid) ref(slot.key) = slot.value;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_{0};
  std::size_t size_{0};
  std::size_t max_entries_{0};
};

}  // namespace plv
