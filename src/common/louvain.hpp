// Result types shared by the sequential baseline and the parallel engine.
//
// Both produce the same artifact shape — a hierarchy of levels, each with
// its partition, modularity and inner-loop traces — so the quality benches
// (Fig. 4/5, Table III) can compare them row by row.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace plv {

/// Per-inner-iteration telemetry of one hierarchy level. `moved_fraction`
/// is the fraction of the level's vertices that changed community in that
/// iteration — the quantity the paper's Fig. 2 plots against iteration
/// number to motivate the exponential threshold.
struct LevelTrace {
  std::vector<double> moved_fraction;
  std::vector<double> modularity;  // after each inner iteration
  // Sequential-engine extra (only filled when SeqOptions::prune is on):
  std::vector<double> evaluated_fraction;  // vertices examined per sweep
  // Parallel engine extras (empty for the sequential baseline):
  std::vector<double> epsilon;         // ε(iter) used by the heuristic
  std::vector<double> gain_cutoff;     // the ΔQ̂ the histogram selected
  std::vector<double> find_seconds;    // FIND BEST COMMUNITY, per iteration
  std::vector<double> update_seconds;  // UPDATE COMMUNITY INFORMATION
  std::vector<double> prop_seconds;    // STATE PROPAGATION
  // Propagation records shipped per iteration, summed over ranks — the
  // delta-vs-full traffic evidence (full rebuild ships Σ|In_Table|).
  std::vector<std::uint64_t> prop_records;
};

/// One hierarchy level (one outer-loop round).
struct LouvainLevel {
  vid_t num_vertices{0};           // vertex count of this level's graph
  std::size_t num_communities{0};  // communities found at this level
  std::vector<vid_t> labels;       // community per level-vertex, dense 0..k-1
  double modularity{0.0};
  double seconds{0.0};             // wall time of this level (refine + rebuild)
  LevelTrace trace;
};

/// Full run output. `final_labels[v]` is the top-level community of
/// original vertex v (the composition of all level partitions).
struct LouvainResult {
  std::vector<LouvainLevel> levels;
  std::vector<vid_t> final_labels;
  double final_modularity{0.0};
  PhaseTimers timers;

  [[nodiscard]] std::size_t num_levels() const noexcept { return levels.size(); }

  /// Labels of original vertices after `level + 1` coarsening rounds.
  [[nodiscard]] std::vector<vid_t> labels_at_level(std::size_t level) const {
    std::vector<vid_t> out(levels.empty() ? 0 : levels.front().labels.size());
    for (std::size_t v = 0; v < out.size(); ++v) {
      vid_t c = static_cast<vid_t>(v);
      for (std::size_t l = 0; l <= level && l < levels.size(); ++l) {
        c = levels[l].labels[c];
      }
      out[v] = c;
    }
    return out;
  }
};

/// Phase names matching the paper's Fig. 8 legend; both engines report
/// timings under these keys.
namespace phase {
inline constexpr const char* kStatePropagation = "STATE PROPAGATION";
inline constexpr const char* kFindBestCommunity = "FIND BEST COMMUNITY";
inline constexpr const char* kUpdateCommunity = "UPDATE COMMUNITY INFORMATION";
inline constexpr const char* kRefine = "REFINE";
inline constexpr const char* kGraphReconstruction = "GRAPH RECONSTRUCTION";
}  // namespace phase

}  // namespace plv
