// Result types shared by the sequential baseline and the parallel engine,
// plus the library front door plv::louvain().
//
// Both engines produce the same artifact shape — a hierarchy of levels,
// each with its partition, modularity and inner-loop traces — so the
// quality benches (Fig. 4/5, Table III) can compare them row by row.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "common/traffic.hpp"
#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace plv {

namespace core {
struct ParOptions;  // core/options.hpp
}

/// Per-inner-iteration telemetry of one hierarchy level. `moved_fraction`
/// is the fraction of the level's vertices that changed community in that
/// iteration — the quantity the paper's Fig. 2 plots against iteration
/// number to motivate the exponential threshold.
struct LevelTrace {
  std::vector<double> moved_fraction;
  std::vector<double> modularity;  // after each inner iteration
  // Sequential-engine extra (only filled when SeqOptions::prune is on):
  std::vector<double> evaluated_fraction;  // vertices examined per sweep
  // Parallel engine extras (empty for the sequential baseline):
  std::vector<double> epsilon;         // ε(iter) used by the heuristic
  std::vector<double> gain_cutoff;     // the ΔQ̂ the histogram selected
  std::vector<double> find_seconds;    // FIND BEST COMMUNITY, per iteration
  std::vector<double> update_seconds;  // UPDATE COMMUNITY INFORMATION
  std::vector<double> prop_seconds;    // STATE PROPAGATION
  // Propagation records shipped per iteration, summed over ranks — the
  // delta-vs-full traffic evidence (full rebuild ships Σ|In_Table|).
  std::vector<std::uint64_t> prop_records;
  // Vertices whose join search FIND actually ran per iteration, summed
  // over ranks — the whole level when unrestricted, the live frontier
  // under active-vertex scheduling or a pinned Session frontier. The
  // scanned-vertices/iteration evidence behind the pruning heuristics.
  std::vector<std::uint64_t> scanned_vertices;
};

/// One hierarchy level (one outer-loop round).
struct LouvainLevel {
  vid_t num_vertices{0};           // vertex count of this level's graph
  std::size_t num_communities{0};  // communities found at this level
  std::vector<vid_t> labels;       // community per level-vertex, dense 0..k-1
  double modularity{0.0};
  double seconds{0.0};             // wall time of this level (refine + rebuild)
  // Communication volume of this level, summed over ranks (parallel engine
  // only; zero for the sequential baseline).
  TrafficStats traffic;
  LevelTrace trace;
};

/// Full run output. `final_labels[v]` is the top-level community of
/// original vertex v (the composition of all level partitions).
struct LouvainResult {
  std::vector<LouvainLevel> levels;
  std::vector<vid_t> final_labels;
  double final_modularity{0.0};
  PhaseTimers timers;

  [[nodiscard]] std::size_t num_levels() const noexcept { return levels.size(); }

  /// Labels of original vertices after `level + 1` coarsening rounds.
  [[nodiscard]] std::vector<vid_t> labels_at_level(std::size_t level) const {
    std::vector<vid_t> out(levels.empty() ? 0 : levels.front().labels.size());
    for (std::size_t v = 0; v < out.size(); ++v) {
      vid_t c = static_cast<vid_t>(v);
      for (std::size_t l = 0; l <= level && l < levels.size(); ++l) {
        c = levels[l].labels[c];
      }
      out[v] = c;
    }
    return out;
  }
};

/// Artifact of a parallel run (and the return type of plv::louvain): the
/// common hierarchy plus communication volume and runtime telemetry.
struct Result : LouvainResult {
  TrafficStats traffic;              // whole-run volume, summed over ranks
  std::vector<double> rank_seconds;  // per-rank wall time (incl. waits)
  std::string transport;             // pml backend that carried the run
};

/// Produces the edge-list slice a given rank contributes to the input
/// graph. Slices must partition the edge multiset (each undirected edge
/// in exactly one slice); vertex ids may reference any vertex.
using EdgeSliceFn = std::function<graph::EdgeList(int rank, int nranks)>;

/// One batch of edge updates against an evolving graph: removals are
/// processed first, then inserts are appended (so a batch may legally
/// re-insert an edge it removes, e.g. to change its weight). A removal
/// must name an existing record exactly — same unordered endpoints, same
/// weight — because edge lists carry parallel edges as separate records
/// and a removal retracts exactly one of them. `n_vertices` is an
/// optional floor on the resulting vertex count, the way isolated new
/// vertices (no incident edge yet) enter the graph.
struct EdgeDelta {
  graph::EdgeList inserts;
  graph::EdgeList removals;
  vid_t n_vertices{0};

  [[nodiscard]] bool empty() const noexcept {
    return inserts.empty() && removals.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return inserts.size() + removals.size();
  }
};

/// Applies `delta` to `edges` in place (removals first, then inserts,
/// both in batch order — deterministic, so every rank of a fleet that
/// applies the same batch holds byte-identical replicas). Returns the
/// resulting vertex count: max(list's own count, delta.n_vertices).
/// Throws std::invalid_argument when a removal names no existing record.
inline vid_t apply_edge_delta(graph::EdgeList& edges, const EdgeDelta& delta) {
  auto& recs = edges.edges();
  for (const Edge& r : delta.removals) {
    const auto hit = std::find_if(recs.begin(), recs.end(), [&](const Edge& e) {
      const bool same_pair =
          (e.u == r.u && e.v == r.v) || (e.u == r.v && e.v == r.u);
      return same_pair && e.w == r.w;
    });
    if (hit == recs.end()) {
      throw std::invalid_argument(
          "apply_edge_delta: removal (" + std::to_string(r.u) + ", " +
          std::to_string(r.v) + ", w=" + std::to_string(r.w) +
          ") names no existing edge record");
    }
    recs.erase(hit);  // order-preserving compaction
  }
  for (const Edge& e : delta.inserts) edges.add(e.u, e.v, e.w);
  return std::max(edges.vertex_count(), delta.n_vertices);
}

/// Normalizes a warm-start seed against the *current* vertex count:
/// vertices beyond the seed's length (new since the seed was taken) and
/// labels referencing vanished vertices (>= n, e.g. after the graph
/// shrank) become singletons. This is what lets a partition taken before
/// an EdgeDelta keep seeding refinement after it.
[[nodiscard]] inline std::vector<vid_t> normalize_warm_labels(std::vector<vid_t> labels,
                                                              vid_t n) {
  const auto old = labels.size();
  labels.resize(n);
  for (std::size_t v = old; v < labels.size(); ++v) labels[v] = static_cast<vid_t>(v);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] >= n) labels[v] = static_cast<vid_t>(v);
  }
  return labels;
}

/// Immutable, epoch-stamped view of a community partition — what
/// Session::snapshot() returns. Snapshots are versioned (epoch 0 is the
/// initial full run; each Session::apply publishes the next) and shared
/// by pointer: readers hold a consistent partition for as long as they
/// keep the shared_ptr, while the refine pipeline publishes newer epochs
/// without ever touching published ones.
struct LabelSnapshot {
  std::uint64_t epoch{0};
  vid_t n_vertices{0};
  std::size_t num_communities{0};
  double modularity{0.0};
  bool incremental{false};  // produced by dirty-region re-refine, not a cold rebuild
  std::vector<vid_t> labels;

  /// Community of vertex v; throws std::out_of_range for unknown ids.
  [[nodiscard]] vid_t community_of(vid_t v) const {
    if (v >= labels.size()) {
      throw std::out_of_range("LabelSnapshot: vertex " + std::to_string(v) +
                              " out of range (n = " + std::to_string(labels.size()) + ")");
    }
    return labels[v];
  }

  /// All vertices labeled `c`, ascending (empty for unknown communities).
  [[nodiscard]] std::vector<vid_t> community_members(vid_t c) const {
    std::vector<vid_t> members;
    for (std::size_t v = 0; v < labels.size(); ++v) {
      if (labels[v] == c) members.push_back(static_cast<vid_t>(v));
    }
    return members;
  }
};

/// What plv::louvain (and plv::Session) should run on — one of four
/// ingestion modes behind a single entry point:
///
///   from_edges       cold start on a materialized edge list;
///   from_edges_warm  same, but refinement starts from a previous run's
///                    partition instead of singletons (dynamic graphs);
///   from_deltas      a materialized base list plus one EdgeDelta batch,
///                    evaluated as if apply_edge_delta had already run —
///                    the cold-baseline view of a streamed update;
///   from_stream      distributed ingestion — no rank ever materializes
///                    the whole edge list; each generates its own slice.
///
/// Ownership: every factory returns a NON-OWNING VIEW. Each referenced
/// object must stay alive — and unmodified — until the louvain() call
/// returns or the Session constructor finishes (Session copies what it
/// needs at construction; louvain() reads the referents concurrently from
/// all ranks for the whole run). Per factory:
///
///   from_edges        borrows `edges`;
///   from_edges_warm   borrows `edges` and `initial_labels`;
///   from_deltas       borrows `base` and `delta`;
///   from_stream       borrows `slice_of` — beware binding a temporary
///                     lambda: EdgeSliceFn is a std::function, so
///                     `from_stream([](int, int){...}, n)` dangles the
///                     moment the full expression ends. Name it first.
///
/// A moved-from GraphSource is expired: using it throws std::logic_error
/// (see require_live) instead of dereferencing stale pointers — the
/// sentinel that turns the lifetime footgun into a clear error.
class GraphSource {
 public:
  [[nodiscard]] static GraphSource from_edges(const graph::EdgeList& edges,
                                              vid_t n_vertices = 0) {
    GraphSource s;
    s.edges_ = &edges;
    s.n_vertices_ = n_vertices;
    s.live_ = true;
    return s;
  }

  [[nodiscard]] static GraphSource from_edges_warm(const graph::EdgeList& edges,
                                                   const std::vector<vid_t>& initial_labels,
                                                   vid_t n_vertices = 0) {
    GraphSource s;
    s.edges_ = &edges;
    s.initial_labels_ = &initial_labels;
    s.n_vertices_ = n_vertices;
    s.live_ = true;
    return s;
  }

  [[nodiscard]] static GraphSource from_deltas(const graph::EdgeList& base,
                                               const EdgeDelta& delta,
                                               vid_t n_vertices = 0) {
    GraphSource s;
    s.edges_ = &base;
    s.delta_ = &delta;
    s.n_vertices_ = n_vertices;
    s.live_ = true;
    return s;
  }

  [[nodiscard]] static GraphSource from_stream(const EdgeSliceFn& slice_of,
                                               vid_t n_vertices) {
    GraphSource s;
    s.slice_of_ = &slice_of;
    s.n_vertices_ = n_vertices;
    s.live_ = true;
    return s;
  }

  // Copying a view is fine (both copies borrow the same referents); a
  // *move* expires the source so stale uses fail loudly instead of
  // reading dangling pointers.
  GraphSource(const GraphSource&) = default;
  GraphSource& operator=(const GraphSource&) = default;
  GraphSource(GraphSource&& other) noexcept { steal(other); }
  GraphSource& operator=(GraphSource&& other) noexcept {
    if (this != &other) steal(other);
    return *this;
  }

  /// True once this source has been moved from (or was never built by a
  /// factory). Expired sources throw on use.
  [[nodiscard]] bool expired() const noexcept { return !live_; }

  /// The sentinel every consumer calls before touching the referents:
  /// throws std::logic_error naming the calling entry point when the
  /// source is expired. Cheap enough to stay on in release builds.
  void require_live(const char* caller) const {
    if (!live_) {
      throw std::logic_error(std::string(caller) +
                             ": GraphSource is expired (moved-from). The factories "
                             "return non-owning views; build a fresh source from the "
                             "live edge list / labels instead of reusing a moved one.");
    }
  }

  [[nodiscard]] const graph::EdgeList* edges() const noexcept { return edges_; }
  [[nodiscard]] const std::vector<vid_t>* initial_labels() const noexcept {
    return initial_labels_;
  }
  [[nodiscard]] const EdgeDelta* delta() const noexcept { return delta_; }
  [[nodiscard]] const EdgeSliceFn* stream() const noexcept { return slice_of_; }
  [[nodiscard]] vid_t n_vertices() const noexcept { return n_vertices_; }

 private:
  GraphSource() = default;

  void steal(GraphSource& other) noexcept {
    edges_ = other.edges_;
    initial_labels_ = other.initial_labels_;
    delta_ = other.delta_;
    slice_of_ = other.slice_of_;
    n_vertices_ = other.n_vertices_;
    live_ = other.live_;
    other.edges_ = nullptr;
    other.initial_labels_ = nullptr;
    other.delta_ = nullptr;
    other.slice_of_ = nullptr;
    other.live_ = false;
  }

  const graph::EdgeList* edges_{nullptr};
  const std::vector<vid_t>* initial_labels_{nullptr};
  const EdgeDelta* delta_{nullptr};
  const EdgeSliceFn* slice_of_{nullptr};
  vid_t n_vertices_{0};
  bool live_{false};
};

/// The library front door: one call for cold, warm, and streamed parallel
/// community detection. Validates `opts`, resolves the transport
/// (ParOptions::transport, overridable via PLV_TRANSPORT), runs the
/// engine on opts.nranks ranks, and returns the full artifact — labels,
/// per-level modularity/traffic, phase timers, and the transport that
/// carried the run. Deterministic for fixed options and input, on every
/// transport. Defined in core/louvain_par.cpp.
[[nodiscard]] Result louvain(const GraphSource& graph, const core::ParOptions& opts);

/// Phase names matching the paper's Fig. 8 legend; both engines report
/// timings under these keys.
namespace phase {
inline constexpr const char* kStatePropagation = "STATE PROPAGATION";
inline constexpr const char* kFindBestCommunity = "FIND BEST COMMUNITY";
inline constexpr const char* kUpdateCommunity = "UPDATE COMMUNITY INFORMATION";
inline constexpr const char* kRefine = "REFINE";
inline constexpr const char* kGraphReconstruction = "GRAPH RECONSTRUCTION";
}  // namespace phase

}  // namespace plv
