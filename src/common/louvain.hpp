// Result types shared by the sequential baseline and the parallel engine,
// plus the library front door plv::louvain().
//
// Both engines produce the same artifact shape — a hierarchy of levels,
// each with its partition, modularity and inner-loop traces — so the
// quality benches (Fig. 4/5, Table III) can compare them row by row.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "common/traffic.hpp"
#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace plv {

namespace core {
struct ParOptions;  // core/options.hpp
}

/// Per-inner-iteration telemetry of one hierarchy level. `moved_fraction`
/// is the fraction of the level's vertices that changed community in that
/// iteration — the quantity the paper's Fig. 2 plots against iteration
/// number to motivate the exponential threshold.
struct LevelTrace {
  std::vector<double> moved_fraction;
  std::vector<double> modularity;  // after each inner iteration
  // Sequential-engine extra (only filled when SeqOptions::prune is on):
  std::vector<double> evaluated_fraction;  // vertices examined per sweep
  // Parallel engine extras (empty for the sequential baseline):
  std::vector<double> epsilon;         // ε(iter) used by the heuristic
  std::vector<double> gain_cutoff;     // the ΔQ̂ the histogram selected
  std::vector<double> find_seconds;    // FIND BEST COMMUNITY, per iteration
  std::vector<double> update_seconds;  // UPDATE COMMUNITY INFORMATION
  std::vector<double> prop_seconds;    // STATE PROPAGATION
  // Propagation records shipped per iteration, summed over ranks — the
  // delta-vs-full traffic evidence (full rebuild ships Σ|In_Table|).
  std::vector<std::uint64_t> prop_records;
};

/// One hierarchy level (one outer-loop round).
struct LouvainLevel {
  vid_t num_vertices{0};           // vertex count of this level's graph
  std::size_t num_communities{0};  // communities found at this level
  std::vector<vid_t> labels;       // community per level-vertex, dense 0..k-1
  double modularity{0.0};
  double seconds{0.0};             // wall time of this level (refine + rebuild)
  // Communication volume of this level, summed over ranks (parallel engine
  // only; zero for the sequential baseline).
  TrafficStats traffic;
  LevelTrace trace;
};

/// Full run output. `final_labels[v]` is the top-level community of
/// original vertex v (the composition of all level partitions).
struct LouvainResult {
  std::vector<LouvainLevel> levels;
  std::vector<vid_t> final_labels;
  double final_modularity{0.0};
  PhaseTimers timers;

  [[nodiscard]] std::size_t num_levels() const noexcept { return levels.size(); }

  /// Labels of original vertices after `level + 1` coarsening rounds.
  [[nodiscard]] std::vector<vid_t> labels_at_level(std::size_t level) const {
    std::vector<vid_t> out(levels.empty() ? 0 : levels.front().labels.size());
    for (std::size_t v = 0; v < out.size(); ++v) {
      vid_t c = static_cast<vid_t>(v);
      for (std::size_t l = 0; l <= level && l < levels.size(); ++l) {
        c = levels[l].labels[c];
      }
      out[v] = c;
    }
    return out;
  }
};

/// Artifact of a parallel run (and the return type of plv::louvain): the
/// common hierarchy plus communication volume and runtime telemetry.
struct Result : LouvainResult {
  TrafficStats traffic;              // whole-run volume, summed over ranks
  std::vector<double> rank_seconds;  // per-rank wall time (incl. waits)
  std::string transport;             // pml backend that carried the run
};

/// Produces the edge-list slice a given rank contributes to the input
/// graph. Slices must partition the edge multiset (each undirected edge
/// in exactly one slice); vertex ids may reference any vertex.
using EdgeSliceFn = std::function<graph::EdgeList(int rank, int nranks)>;

/// What plv::louvain should run on — one of three ingestion modes behind
/// a single entry point:
///
///   from_edges       cold start on a materialized edge list;
///   from_edges_warm  same, but refinement starts from a previous run's
///                    partition instead of singletons (dynamic graphs);
///   from_stream      distributed ingestion — no rank ever materializes
///                    the whole edge list; each generates its own slice.
///
/// The source is a non-owning view: the referenced edge list / label
/// vector / slice function must outlive the louvain() call (they are
/// read concurrently by all ranks).
class GraphSource {
 public:
  [[nodiscard]] static GraphSource from_edges(const graph::EdgeList& edges,
                                              vid_t n_vertices = 0) {
    GraphSource s;
    s.edges_ = &edges;
    s.n_vertices_ = n_vertices;
    return s;
  }

  [[nodiscard]] static GraphSource from_edges_warm(const graph::EdgeList& edges,
                                                   const std::vector<vid_t>& initial_labels,
                                                   vid_t n_vertices = 0) {
    GraphSource s;
    s.edges_ = &edges;
    s.initial_labels_ = &initial_labels;
    s.n_vertices_ = n_vertices;
    return s;
  }

  [[nodiscard]] static GraphSource from_stream(const EdgeSliceFn& slice_of,
                                               vid_t n_vertices) {
    GraphSource s;
    s.slice_of_ = &slice_of;
    s.n_vertices_ = n_vertices;
    return s;
  }

  [[nodiscard]] const graph::EdgeList* edges() const noexcept { return edges_; }
  [[nodiscard]] const std::vector<vid_t>* initial_labels() const noexcept {
    return initial_labels_;
  }
  [[nodiscard]] const EdgeSliceFn* stream() const noexcept { return slice_of_; }
  [[nodiscard]] vid_t n_vertices() const noexcept { return n_vertices_; }

 private:
  GraphSource() = default;
  const graph::EdgeList* edges_{nullptr};
  const std::vector<vid_t>* initial_labels_{nullptr};
  const EdgeSliceFn* slice_of_{nullptr};
  vid_t n_vertices_{0};
};

/// The library front door: one call for cold, warm, and streamed parallel
/// community detection. Validates `opts`, resolves the transport
/// (ParOptions::transport, overridable via PLV_TRANSPORT), runs the
/// engine on opts.nranks ranks, and returns the full artifact — labels,
/// per-level modularity/traffic, phase timers, and the transport that
/// carried the run. Deterministic for fixed options and input, on every
/// transport. Defined in core/louvain_par.cpp.
[[nodiscard]] Result louvain(const GraphSource& graph, const core::ParOptions& opts);

/// Phase names matching the paper's Fig. 8 legend; both engines report
/// timings under these keys.
namespace phase {
inline constexpr const char* kStatePropagation = "STATE PROPAGATION";
inline constexpr const char* kFindBestCommunity = "FIND BEST COMMUNITY";
inline constexpr const char* kUpdateCommunity = "UPDATE COMMUNITY INFORMATION";
inline constexpr const char* kRefine = "REFINE";
inline constexpr const char* kGraphReconstruction = "GRAPH RECONSTRUCTION";
}  // namespace phase

}  // namespace plv
