// Wall-clock timers and named phase accumulators.
//
// The paper's Fig. 8 breaks execution into phases (REFINE, GRAPH
// RECONSTRUCTION, FIND BEST COMMUNITY, UPDATE COMMUNITY INFORMATION,
// STATE PROPAGATION). PhaseTimers accumulates per-phase wall time with
// the same phase names so the bench harness can print the same rows.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plv {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time into named phases. Phase names are interned on
/// first use; lookup is linear, which is fine for the handful of phases
/// the algorithm has (and keeps this header dependency-free).
class PhaseTimers {
 public:
  /// Adds `seconds` to phase `name`.
  void add(std::string_view name, double seconds) {
    entry(name).second += seconds;
  }

  /// Total accumulated for `name` (0 if never seen).
  [[nodiscard]] double get(std::string_view name) const noexcept {
    for (const auto& [phase, secs] : phases_) {
      if (phase == name) return secs;
    }
    return 0.0;
  }

  /// Sum over all phases.
  [[nodiscard]] double total() const noexcept {
    double sum = 0.0;
    for (const auto& [phase, secs] : phases_) sum += secs;
    return sum;
  }

  /// Merge another accumulator into this one (used to reduce per-rank
  /// timers into a single report).
  void merge(const PhaseTimers& other) {
    for (const auto& [phase, secs] : other.phases_) entry(phase).second += secs;
  }

  /// Scale every phase by `factor` (e.g. 1/nranks for a mean).
  void scale(double factor) noexcept {
    for (auto& [phase, secs] : phases_) secs *= factor;
  }

  void clear() noexcept { phases_.clear(); }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& items() const noexcept {
    return phases_;
  }

 private:
  std::pair<std::string, double>& entry(std::string_view name) {
    for (auto& item : phases_) {
      if (item.first == name) return item;
    }
    return phases_.emplace_back(std::string(name), 0.0);
  }

  std::vector<std::pair<std::string, double>> phases_;
};

/// RAII helper: adds the scope's elapsed wall time to a phase on exit.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string_view name) noexcept
      : timers_(timers), name_(name) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() { timers_.add(name_, timer_.seconds()); }

 private:
  PhaseTimers& timers_;
  std::string_view name_;
  WallTimer timer_;
};

}  // namespace plv
