// Deterministic, fast pseudo-random generators.
//
// All stochastic components (generators, tie-breaking, sampling) draw from
// these so that a fixed seed yields bit-identical runs — a property the
// test suite relies on (DESIGN.md, decision 5).
#pragma once

#include <cstdint>

namespace plv {

/// SplitMix64: used to seed other generators and as a cheap stateless mixer.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value (same permutation as splitmix64 minus
/// the counter). Useful for hashing seeds with indices.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Top-quality 64-bit generator with
/// a tiny state; our workhorse RNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Seed the four words via splitmix64 as recommended by the authors.
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 significant bits.
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Unbiased uniform integer in [0, bound). Lemire's rejection method.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Multiply-shift with rejection of the biased low region.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t x = (*this)();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Jump: advances 2^128 steps, giving a disjoint stream. Used to hand
  /// independent substreams to parallel ranks without re-seeding.
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ULL << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace plv
