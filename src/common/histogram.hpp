// Fixed-bin histograms and quantile selection.
//
// The parallel Louvain heuristic (Section IV-B) turns the vertex-fraction
// threshold ε into a modularity-gain cutoff ΔQ̂ by histogramming per-vertex
// best gains and selecting the smallest cutoff that keeps the top-ε mass.
// Histograms reduce across ranks by element-wise addition, so the global
// cutoff costs one allreduce instead of a distributed sort.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace plv {

/// Equal-width histogram over [lo, hi] with a configurable bin count.
/// Values outside the range clamp to the end bins, so the total count is
/// always the number of inserted samples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {
    assert(hi >= lo);
  }

  /// Re-ranges and zeroes the histogram in place, reusing the bin storage
  /// — persistent instances (the per-iteration gain histogram) pay no
  /// allocation once the bin count is stable.
  void reset(double lo, double hi, std::size_t bins) noexcept {
    assert(hi >= lo);
    lo_ = lo;
    hi_ = hi;
    counts_.assign(bins == 0 ? 1 : bins, 0);
  }

  void add(double value, std::uint64_t count = 1) noexcept {
    counts_[bin_of(value)] += count;
  }

  [[nodiscard]] std::size_t bin_of(double value) const noexcept {
    if (!(value > lo_)) return 0;  // also catches NaN
    if (value >= hi_) return counts_.size() - 1;
    const double t = (value - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
    return std::min(idx, counts_.size() - 1);
  }

  /// Lower edge of bin `i`.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (auto c : counts_) sum += c;
    return sum;
  }

  /// Smallest bin lower-edge t such that the mass in bins >= t is at most
  /// `fraction` of the total — i.e. a cutoff that selects (approximately)
  /// the top-`fraction` samples. With fraction >= 1 returns lo().
  [[nodiscard]] double top_fraction_cutoff(double fraction) const noexcept {
    const std::uint64_t n = total();
    if (n == 0 || fraction >= 1.0) return lo_;
    const auto budget = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(n)));
    std::uint64_t kept = 0;
    for (std::size_t i = counts_.size(); i-- > 0;) {
      kept += counts_[i];
      if (kept > budget) {
        // Bin i overshoots: cut at the *upper* edge of bin i (keep bins above).
        return bin_lo(i + 1 == counts_.size() ? counts_.size() - 1 : i + 1);
      }
      if (kept == budget) return bin_lo(i);
    }
    return lo_;
  }

  [[nodiscard]] std::vector<std::uint64_t>& counts() noexcept { return counts_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
};

/// Simple running summary statistics (count / mean / min / max).
struct Summary {
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};

  void add(double x) noexcept {
    if (count == 0) {
      min = max = x;
    } else {
      min = std::min(min, x);
      max = std::max(max, x);
    }
    sum += x;
    ++count;
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

}  // namespace plv
