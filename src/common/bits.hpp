// Small bit-manipulation helpers used by the hash tables and generators.
#pragma once

#include <bit>
#include <cstdint>

namespace plv {

/// Smallest power of two >= x (x = 0 maps to 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && std::has_single_bit(x);
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  return 63U - static_cast<unsigned>(std::countl_zero(x | 1));
}

}  // namespace plv
