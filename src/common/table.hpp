// Fixed-width text table printer.
//
// The bench harnesses print one table per paper table/figure; this keeps
// their output aligned and diff-friendly without a formatting dependency.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace plv {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Starts a new row; chain add() calls to fill cells.
  TextTable& row() {
    rows_.emplace_back();
    return *this;
  }

  TextTable& add(std::string cell) {
    rows_.back().push_back(std::move(cell));
    return *this;
  }

  TextTable& add(const char* cell) { return add(std::string(cell)); }

  TextTable& add(double value, int precision = 4) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return add(os.str());
  }

  template <typename Int>
    requires std::integral<Int>
  TextTable& add(Int value) {
    return add(std::to_string(value));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, header_, widths);
    std::size_t total = 0;
    for (auto w : widths) total += w + 3;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(os, row, widths);
    os.flush();
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell << "   ";
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plv
