// Minimal command-line option parser for the examples and bench harnesses.
//
// Supports `--name value` and `--name=value` forms plus boolean flags.
// Unknown options are collected so callers can reject or ignore them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace plv {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
    parse();
  }

  explicit Cli(std::vector<std::string> args) : args_(std::move(args)) { parse(); }

  [[nodiscard]] bool has(std::string_view name) const noexcept {
    for (const auto& [key, value] : options_) {
      if (key == name) return true;
    }
    return false;
  }

  [[nodiscard]] std::optional<std::string> get(std::string_view name) const {
    for (const auto& [key, value] : options_) {
      if (key == name) return value;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string get_string(std::string_view name, std::string_view dflt) const {
    auto v = get(name);
    return v ? *v : std::string(dflt);
  }

  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t dflt) const {
    auto v = get(name);
    return v && !v->empty() ? std::stoll(*v) : dflt;
  }

  [[nodiscard]] double get_double(std::string_view name, double dflt) const {
    auto v = get(name);
    return v && !v->empty() ? std::stod(*v) : dflt;
  }

  [[nodiscard]] bool get_bool(std::string_view name, bool dflt = false) const {
    auto v = get(name);
    if (!v) return dflt;
    return *v != "0" && *v != "false" && *v != "no";
  }

  /// Non-option positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  void parse() {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      std::string_view arg = args_[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        options_.emplace_back(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      } else if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) {
        options_.emplace_back(std::string(arg), args_[i + 1]);
        ++i;
      } else {
        options_.emplace_back(std::string(arg), "true");
      }
    }
  }

  std::vector<std::string> args_;
  std::vector<std::pair<std::string, std::string>> options_;
  std::vector<std::string> positional_;
};

}  // namespace plv
