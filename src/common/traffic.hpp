// Communication-volume counters shared by the messaging layer and the
// result types. Lives in common (not pml) so LouvainResult/Result can
// carry per-level traffic without depending on the runtime headers; pml
// re-exports it as pml::TrafficStats.
#pragma once

#include <cstdint>

namespace plv {

/// Cumulative communication counters for one rank (or, in results, summed
/// over ranks). Control markers — the quiescence protocol's overhead —
/// are not counted: stats describe payload traffic only.
struct TrafficStats {
  std::uint64_t records_sent{0};
  std::uint64_t records_received{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t chunks_sent{0};
  std::uint64_t collectives{0};
  /// Messages that crossed a topology-group boundary (with the trivial
  /// topology: every remote message; per collective, one per rank outside
  /// the group). The locality metric the hierarchical collectives cut —
  /// inter-group lanes are the expensive tier of a composed transport.
  std::uint64_t inter_group_messages{0};

  TrafficStats& operator+=(const TrafficStats& o) noexcept {
    records_sent += o.records_sent;
    records_received += o.records_received;
    bytes_sent += o.bytes_sent;
    chunks_sent += o.chunks_sent;
    collectives += o.collectives;
    inter_group_messages += o.inter_group_messages;
    return *this;
  }
};

/// Element-wise difference, for per-phase or per-level snapshots taken
/// against a running counter set. Caller guarantees `after` dominates.
[[nodiscard]] inline TrafficStats traffic_delta(const TrafficStats& after,
                                                const TrafficStats& before) noexcept {
  TrafficStats d;
  d.records_sent = after.records_sent - before.records_sent;
  d.records_received = after.records_received - before.records_received;
  d.bytes_sent = after.bytes_sent - before.bytes_sent;
  d.chunks_sent = after.chunks_sent - before.chunks_sent;
  d.collectives = after.collectives - before.collectives;
  d.inter_group_messages = after.inter_group_messages - before.inter_group_messages;
  return d;
}

}  // namespace plv
