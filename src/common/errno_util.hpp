#pragma once

// MT-safe errno rendering.  std::strerror writes into a shared static
// buffer (clang-tidy: concurrency-mt-unsafe); the transports report
// syscall failures from worker threads and forked children, so every
// errno-to-text conversion goes through errno_str(), which renders into
// a caller-local buffer via strerror_r.

#include <cstring>
#include <string>

namespace plv {
namespace detail {

// strerror_r has two incompatible signatures: XSI returns int and fills
// the buffer; GNU (glibc with _GNU_SOURCE, the default under g++/clang++
// on Linux) returns the message pointer and may ignore the buffer.  The
// overload set picks the right decoding at compile time.
inline const char* strerror_decode(int rc, const char* buf) {  // XSI
  return rc == 0 ? buf : "unknown error";
}
inline const char* strerror_decode(const char* msg, const char*) {  // GNU
  return msg != nullptr ? msg : "unknown error";
}

}  // namespace detail

inline std::string errno_str(int err) {
  char buf[256];
  buf[0] = '\0';
  return detail::strerror_decode(::strerror_r(err, buf, sizeof buf), buf);
}

}  // namespace plv
