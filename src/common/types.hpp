// Fundamental fixed-width types shared by every plouvain module.
//
// Vertex ids are 32-bit: the reproduction targets laptop-scale graphs
// (<= 2^31 vertices), and 32-bit ids halve the memory traffic of the
// hash tables, which dominate the runtime (paper, Section IV-A).
#pragma once

#include <cstdint>
#include <limits>

namespace plv {

/// Vertex identifier. Community labels share this space: a community is
/// named after one of its member vertices (the paper's convention, which
/// makes community ownership the same 1-D map as vertex ownership).
using vid_t = std::uint32_t;

/// Edge count / global index type. Graphs can exceed 2^32 edges.
using ecount_t = std::uint64_t;

/// Edge and degree weights. The Louvain algorithm is defined on weighted
/// graphs; coarsening accumulates integral weights into large values, so
/// double is the natural carrier (exact for sums below 2^53).
using weight_t = double;

/// Sentinel for "no vertex / no community".
inline constexpr vid_t kInvalidVid = std::numeric_limits<vid_t>::max();

/// A weighted, directed half-edge as produced by generators and IO.
/// Undirected graphs store both (u,v) and (v,u) halves in CSR, but edge
/// lists keep a single canonical record per undirected edge.
struct Edge {
  vid_t u{0};
  vid_t v{0};
  weight_t w{1.0};

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

/// Packs an ordered pair of 32-bit ids into the 64-bit key used by the
/// edge hash tables: high word = first element, low word = second.
/// This is the generalized form of the paper's Eq. 5 (which shifts by 16
/// and therefore only supports 16-bit ids; see hashing/hash_fns.hpp for
/// the literal Eq. 5 variant kept for fidelity experiments).
[[nodiscard]] constexpr std::uint64_t pack_key(vid_t hi, vid_t lo) noexcept {
  return (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
}

[[nodiscard]] constexpr vid_t key_hi(std::uint64_t key) noexcept {
  return static_cast<vid_t>(key >> 32);
}

[[nodiscard]] constexpr vid_t key_lo(std::uint64_t key) noexcept {
  return static_cast<vid_t>(key & 0xffffffffULL);
}

}  // namespace plv
