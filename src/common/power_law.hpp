// Discrete bounded power-law sampling.
//
// Both synthetic-graph substrates the paper evaluates with need it: LFR
// draws vertex degrees (exponent γ) and community sizes (exponent β) from
// bounded power laws; BTER consumes a power-law degree distribution.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.hpp"

namespace plv {

/// Samples integers k in [kmin, kmax] with P(k) ∝ k^(-exponent), by inverse
/// transform over the precomputed CDF. Exponent may be any real >= 0
/// (0 gives the uniform distribution over the range).
class PowerLawSampler {
 public:
  PowerLawSampler(std::uint32_t kmin, std::uint32_t kmax, double exponent)
      : kmin_(kmin), kmax_(kmax) {
    assert(kmin >= 1 && kmax >= kmin);
    cdf_.reserve(kmax - kmin + 1);
    double acc = 0.0;
    for (std::uint32_t k = kmin; k <= kmax; ++k) {
      acc += std::pow(static_cast<double>(k), -exponent);
      cdf_.push_back(acc);
    }
    for (double& c : cdf_) c /= acc;
    cdf_.back() = 1.0;  // guard against rounding
  }

  [[nodiscard]] std::uint32_t operator()(Xoshiro256& rng) const noexcept {
    const double u = rng.next_double();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return kmin_ + static_cast<std::uint32_t>(lo);
  }

  /// Expected value of the distribution (exact, from the CDF weights).
  [[nodiscard]] double mean() const noexcept {
    double m = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      m += static_cast<double>(kmin_ + i) * (cdf_[i] - prev);
      prev = cdf_[i];
    }
    return m;
  }

  [[nodiscard]] std::uint32_t kmin() const noexcept { return kmin_; }
  [[nodiscard]] std::uint32_t kmax() const noexcept { return kmax_; }

 private:
  std::uint32_t kmin_;
  std::uint32_t kmax_;
  std::vector<double> cdf_;  // cdf_[i] = P(K <= kmin_ + i)
};

}  // namespace plv
