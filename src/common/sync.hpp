// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// Every lock in the repo goes through these wrappers so that Clang's
// -Wthread-safety can prove the locking discipline at compile time:
// which fields a mutex guards (PLV_GUARDED_BY), which functions demand a
// held lock (PLV_REQUIRES), and where capabilities are acquired/released
// (PLV_ACQUIRE / PLV_RELEASE, or the scoped plv::MutexLock). On GCC the
// attribute macros expand to nothing and the wrappers are zero-overhead
// forwarding shims over the std primitives, so the annotations cost
// nothing where the analysis is unavailable.
//
// Conventions enforced elsewhere:
//   - tools/lint/plv_lint.py `raw-mutex-ban`: declaring std::mutex /
//     std::condition_variable outside this header is a lint error.
//   - tests/static_contract_test.cmake: negative-compile snippets prove
//     that violations of these annotations are rejected under Clang.
//
// CondVar waits are written as explicit while-loops at the call site
// (`while (!ready) cv.wait(mu);`) rather than predicate lambdas: the
// analysis is intra-procedural and does not carry the held-lock set into
// a lambda body, so a predicate reading guarded state would be flagged as
// an unguarded access even though the wait contract holds the lock.
// The while-loop form keeps the guarded reads in the annotated function
// body where the analysis can see the capability.

#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define PLV_TSA_ATTR(x) __attribute__((x))
#else
#define PLV_TSA_ATTR(x)  // no-op outside Clang
#endif

#define PLV_CAPABILITY(x) PLV_TSA_ATTR(capability(x))
#define PLV_SCOPED_CAPABILITY PLV_TSA_ATTR(scoped_lockable)
#define PLV_GUARDED_BY(x) PLV_TSA_ATTR(guarded_by(x))
#define PLV_PT_GUARDED_BY(x) PLV_TSA_ATTR(pt_guarded_by(x))
#define PLV_REQUIRES(...) PLV_TSA_ATTR(requires_capability(__VA_ARGS__))
#define PLV_ACQUIRE(...) PLV_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define PLV_RELEASE(...) PLV_TSA_ATTR(release_capability(__VA_ARGS__))
#define PLV_TRY_ACQUIRE(...) PLV_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define PLV_EXCLUDES(...) PLV_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define PLV_ASSERT_CAPABILITY(x) PLV_TSA_ATTR(assert_capability(x))
#define PLV_RETURN_CAPABILITY(x) PLV_TSA_ATTR(lock_returned(x))
#define PLV_NO_THREAD_SAFETY_ANALYSIS PLV_TSA_ATTR(no_thread_safety_analysis)

namespace plv {

class CondVar;

// Annotated std::mutex. Prefer the scoped plv::MutexLock over manual
// lock()/unlock() pairs; the manual form exists for adoption patterns.
class PLV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PLV_ACQUIRE() { mu_.lock(); }
  void unlock() PLV_RELEASE() { mu_.unlock(); }
  bool try_lock() PLV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scoped lock over plv::Mutex (the annotated std::scoped_lock).
class PLV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PLV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PLV_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to plv::Mutex. wait() demands the capability:
// the caller holds `mu` (typically via MutexLock), wait() releases it
// while parked and re-acquires before returning, so from the analysis'
// point of view the lock is held continuously across the call. Callers
// loop on their guarded predicate around wait() — see the header comment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) PLV_REQUIRES(mu) {
    // Adopt the already-held mutex for the std wait protocol, then
    // release() so the unique_lock destructor leaves it held for the
    // caller, matching the REQUIRES contract.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    // The spurious-wakeup loop lives at the call site (the repo-wide
    // `while (!pred) cv.wait(mu);` convention) so the predicate read
    // stays inside the caller's annotated critical section; this
    // wrapper is a single un-looped wait by design.
    // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions)
    cv_.wait(lk);
    lk.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace plv
