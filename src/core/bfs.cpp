#include "core/bfs.hpp"

#include <algorithm>
#include <queue>

#include "common/sync.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "pml/aggregator.hpp"

namespace plv::core {

namespace {

/// Frontier record: "u (at the current depth) reaches v".
struct VisitMsg {
  vid_t v;
  vid_t u;
};

BfsResult bfs_rank(pml::Comm& comm, const graph::EdgeList& edges, vid_t n, vid_t root,
                   const ParOptions& opts) {
  const graph::Partition1D part(opts.partition, n, comm.nranks());
  const int me = comm.rank();
  const vid_t local_n = part.local_count(me);

  // Per-owned adjacency (BFS wants to expand owned frontier vertices).
  // Parallel edges merge — BFS is topological, and deduplication keeps the
  // traversal accounting aligned with the CSR-based reference.
  std::vector<std::vector<vid_t>> adj(local_n);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (part.owner(e.u) == me) adj[part.to_local(e.u)].push_back(e.v);
    if (part.owner(e.v) == me) adj[part.to_local(e.v)].push_back(e.u);
  }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }

  std::vector<vid_t> depth(local_n, kInvalidVid);
  std::vector<vid_t> parent(local_n, kInvalidVid);
  std::vector<vid_t> frontier;
  if (part.owner(root) == me) {
    const vid_t l = part.to_local(root);
    depth[l] = 0;
    parent[l] = root;
    frontier.push_back(l);
  }

  BfsResult result;
  std::uint64_t local_edges = 0;
  for (vid_t level = 0;; ++level) {
    ++result.rounds;
    pml::Aggregator<VisitMsg> agg(comm, opts.aggregator_capacity);
    for (vid_t l : frontier) {
      const vid_t u = part.to_global(me, l);
      for (vid_t v : adj[l]) {
        agg.push(part.owner(v), VisitMsg{v, u});
        ++local_edges;
      }
    }
    agg.flush_all();
    std::vector<vid_t> next;
    comm.drain_until_quiescent<VisitMsg>([&](int, std::span<const VisitMsg> msgs) {
      for (const VisitMsg& m : msgs) {
        const vid_t l = part.to_local(m.v);
        if (depth[l] == kInvalidVid) {
          depth[l] = level + 1;
          parent[l] = m.u;
          next.push_back(l);
        } else if (depth[l] == level + 1 && m.u < parent[l]) {
          parent[l] = m.u;  // deterministic min-parent at equal depth
        }
      }
    });
    frontier = std::move(next);
    const std::uint64_t frontier_total =
        comm.allreduce_sum(static_cast<std::uint64_t>(frontier.size()));
    if (frontier_total == 0) break;
  }

  // Gather full arrays (identical on every rank afterwards).
  struct Entry {
    vid_t v;
    vid_t parent;
    vid_t depth;
  };
  std::vector<Entry> mine(local_n);
  for (vid_t l = 0; l < local_n; ++l) {
    mine[l] = {part.to_global(me, l), parent[l], depth[l]};
  }
  const auto all = comm.allgatherv(mine);
  result.parent.assign(n, kInvalidVid);
  result.depth.assign(n, kInvalidVid);
  for (const Entry& e : all) {
    result.parent[e.v] = e.parent;
    result.depth[e.v] = e.depth;
    if (e.depth != kInvalidVid) ++result.reached;
  }
  result.edges_traversed = comm.allreduce_sum(local_edges);
  return result;
}

}  // namespace

BfsResult bfs_parallel(const graph::EdgeList& edges, vid_t n_vertices, vid_t root,
                       const ParOptions& opts) {
  opts.validate();
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  if (n == 0 || root >= n) return BfsResult{};
  // Rank 0's hand-off to the launching thread, named as a capability (the
  // join in Runtime::run already orders it).
  struct {
    plv::Mutex mu;
    BfsResult value PLV_GUARDED_BY(mu);
  } result;
  pml::Runtime::run(
      opts.nranks,
      [&](pml::Comm& comm) {
        BfsResult local = bfs_rank(comm, edges, n, root, opts);
        if (comm.rank() == 0) {
          plv::MutexLock lock(result.mu);
          result.value = std::move(local);
        }
      },
      pml::resolve_transport(opts.transport),
      pml::resolve_validate(opts.validate_transport), opts.tcp_options());
  plv::MutexLock lock(result.mu);
  return std::move(result.value);
}

BfsResult bfs_seq(const graph::EdgeList& edges, vid_t n_vertices, vid_t root) {
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  BfsResult result;
  if (n == 0 || root >= n) return result;
  const auto g = graph::Csr::from_edges(edges, n);

  result.parent.assign(n, kInvalidVid);
  result.depth.assign(n, kInvalidVid);
  result.depth[root] = 0;
  result.parent[root] = root;
  result.reached = 1;
  std::queue<vid_t> queue;
  queue.push(root);
  int max_depth = 0;
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop();
    g.for_each_neighbor(u, [&](vid_t v, weight_t) {
      if (v == u) return;
      ++result.edges_traversed;
      if (result.depth[v] == kInvalidVid) {
        result.depth[v] = result.depth[u] + 1;
        result.parent[v] = u;
        max_depth = std::max(max_depth, static_cast<int>(result.depth[v]));
        ++result.reached;
        queue.push(v);
      } else if (result.depth[v] == result.depth[u] + 1 && u < result.parent[v]) {
        result.parent[v] = u;  // same min-parent rule as the parallel version
      }
    });
  }
  result.rounds = max_depth + 1;
  return result;
}

}  // namespace plv::core
