// Distributed breadth-first search on the pml runtime.
//
// The paper's messaging layer was originally engineered for Graph500-style
// BFS ("Traversing Trillions of Edges in Real-time", ref [27]) and SSSP
// (ref [28]); Louvain inherits it. Providing BFS on the same ownership and
// aggregation machinery both validates the substrate and gives users the
// companion traversal primitive: level-synchronous frontier expansion with
// per-destination coalescing, the same 1-D partition, and TEPS accounting.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/options.hpp"
#include "graph/edge_list.hpp"

namespace plv::core {

struct BfsResult {
  std::vector<vid_t> parent;  // kInvalidVid when unreached (root's parent = root)
  std::vector<vid_t> depth;   // kInvalidVid when unreached
  vid_t reached{0};           // vertices visited (including the root)
  ecount_t edges_traversed{0};
  int rounds{0};              // frontier-expansion rounds
};

/// Level-synchronous BFS from `root` over `opts.nranks` ranks.
/// Deterministic: among same-depth candidates, the smallest parent wins.
[[nodiscard]] BfsResult bfs_parallel(const graph::EdgeList& edges, vid_t n_vertices,
                                     vid_t root, const ParOptions& opts);

/// Sequential reference BFS (queue-based) with the same tie-break rule.
[[nodiscard]] BfsResult bfs_seq(const graph::EdgeList& edges, vid_t n_vertices,
                                vid_t root);

}  // namespace plv::core
