#include "core/components.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/sync.hpp"
#include "graph/partition.hpp"
#include "hashing/edge_table.hpp"
#include "pml/aggregator.hpp"

namespace plv::core {

namespace {

/// Frontier record: "vertex v might belong to component `comp`".
struct CompMsg {
  vid_t v;
  vid_t comp;
};

ComponentsResult components_rank(pml::Comm& comm, const graph::EdgeList& edges,
                                 vid_t n, const ParOptions& opts) {
  const graph::Partition1D part(opts.partition, n, comm.nranks());
  const int me = comm.rank();

  // Same In_Table layout as the Louvain engine: ((v, u), w) for owned u.
  hashing::EdgeTable in_table(2 * edges.size() / static_cast<std::size_t>(comm.nranks()) + 16,
                              opts.table_max_load, opts.hash);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (part.owner(e.v) == me) in_table.insert_or_add(pack_key(e.u, e.v), 1.0);
    if (part.owner(e.u) == me) in_table.insert_or_add(pack_key(e.v, e.u), 1.0);
  }

  const vid_t local_n = part.local_count(me);
  std::vector<vid_t> comp(local_n);
  for (vid_t l = 0; l < local_n; ++l) comp[l] = part.to_global(me, l);

  // Min-label propagation: whenever an owned vertex's component label
  // drops, broadcast the new label along its edges. Rounds repeat until a
  // global round moves nothing.
  ComponentsResult result;
  std::vector<bool> dirty(local_n, true);
  for (;;) {
    ++result.rounds;
    pml::Aggregator<CompMsg> agg(comm, opts.aggregator_capacity);
    in_table.for_each([&](std::uint64_t key, weight_t) {
      const vid_t v = key_hi(key);   // neighbor
      const vid_t u = key_lo(key);   // owned
      const vid_t l = part.to_local(u);
      if (!dirty[l]) return;
      agg.push(part.owner(v), CompMsg{v, comp[l]});
    });
    std::fill(dirty.begin(), dirty.end(), false);
    agg.flush_all();
    std::uint64_t local_changes = 0;
    comm.drain_until_quiescent<CompMsg>([&](int, std::span<const CompMsg> msgs) {
      for (const CompMsg& m : msgs) {
        const vid_t l = part.to_local(m.v);
        if (m.comp < comp[l]) {
          comp[l] = m.comp;
          if (!dirty[l]) {
            dirty[l] = true;
            ++local_changes;
          }
        }
      }
    });
    if (comm.allreduce_sum(local_changes) == 0) break;
  }

  // Gather the full assignment (identical on every rank).
  struct Pair {
    vid_t v;
    vid_t comp;
  };
  std::vector<Pair> mine(local_n);
  for (vid_t l = 0; l < local_n; ++l) mine[l] = {part.to_global(me, l), comp[l]};
  const auto all = comm.allgatherv(mine);
  result.component.resize(n);
  for (const Pair& p : all) result.component[p.v] = p.comp;

  std::unordered_set<vid_t> distinct(result.component.begin(), result.component.end());
  result.num_components = distinct.size();
  return result;
}

}  // namespace

ComponentsResult connected_components_parallel(const graph::EdgeList& edges,
                                               vid_t n_vertices, const ParOptions& opts) {
  opts.validate();
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  if (n == 0) return ComponentsResult{};
  struct {
    plv::Mutex mu;
    ComponentsResult value PLV_GUARDED_BY(mu);
  } result;
  pml::Runtime::run(
      opts.nranks,
      [&](pml::Comm& comm) {
        ComponentsResult local = components_rank(comm, edges, n, opts);
        if (comm.rank() == 0) {
          plv::MutexLock lock(result.mu);
          result.value = std::move(local);
        }
      },
      pml::resolve_transport(opts.transport),
      pml::resolve_validate(opts.validate_transport), opts.tcp_options());
  plv::MutexLock lock(result.mu);
  return std::move(result.value);
}

ComponentsResult connected_components_seq(const graph::EdgeList& edges, vid_t n_vertices) {
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  ComponentsResult result;
  if (n == 0) return result;

  // Union-find with path halving + union by label (keep the smaller root
  // so component ids match the parallel algorithm's min-label ids).
  std::vector<vid_t> parent(n);
  std::iota(parent.begin(), parent.end(), vid_t{0});
  auto find = [&](vid_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    vid_t a = find(e.u);
    vid_t b = find(e.v);
    if (a == b) continue;
    if (b < a) std::swap(a, b);
    parent[b] = a;  // smaller id becomes the root
  }
  result.component.resize(n);
  for (vid_t v = 0; v < n; ++v) result.component[v] = find(v);
  std::unordered_set<vid_t> distinct(result.component.begin(), result.component.end());
  result.num_components = distinct.size();
  result.rounds = 1;
  return result;
}

}  // namespace plv::core
