#include "core/louvain_par.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/flat_map.hpp"
#include "common/histogram.hpp"
#include "common/sync.hpp"
#include "common/timer.hpp"
#include "core/session.hpp"
#include "hashing/edge_table.hpp"
#include "pml/aggregator.hpp"

namespace plv::core {

namespace {

// ---------------------------------------------------------------------------
// Wire records. All 16 bytes, trivially copyable, no padding surprises.
// ---------------------------------------------------------------------------

/// STATE PROPAGATION: tells owner(v) that the in-edge (v,u) now points at
/// community c, i.e. Out_Table[(v,c)] += w (paper Algorithm 3). The same
/// record carries the *incremental* protocol: a set kRetractBit in `c`
/// turns the message into a retraction, Out_Table[(v, c&~bit)] -= w, so a
/// moved vertex ships one (retraction, assertion) pair per in-edge instead
/// of the whole table being rebuilt.
struct PropMsg {
  vid_t v;
  vid_t c;
  weight_t w;
};

/// Retraction flag in PropMsg::c. Community ids are vertex ids and the
/// engine holds vertex counts below 2^31 (common/types.hpp), so the top
/// bit is free; the delta path is disabled for (hypothetical) larger
/// levels anyway — see refine().
inline constexpr vid_t kRetractBit = 0x80000000u;

/// UPDATE: Σtot / member-count delta for community c, applied by owner(c).
/// On the overlapped pipeline the same record doubles as the global move
/// tally: each rank closes the streaming delta exchange by sending every
/// rank one record with c == kInvalidVid (never a real community id),
/// dcount = its local move count and dtot = its local delta-record count
/// (exact in a double far beyond any reachable table size). Receivers sum
/// the sentinels instead of running a separate MoveTally allreduce — one
/// collective round gone per iteration.
struct DeltaMsg {
  vid_t c;
  std::int32_t dcount;
  weight_t dtot;
};

/// Σin contribution for community c (Algorithm 4 lines 18-20).
struct SinMsg {
  vid_t c;
  std::int32_t pad{0};
  weight_t w;
};

/// Reply record of the Σtot fetch: community totals plus member count.
/// The member count feeds the singleton-swap guard (see
/// find_best_community); it is a consistent snapshot of the previous
/// iteration's state, like Σtot itself.
struct SigmaRep {
  weight_t sigma_tot;
  std::int64_t members;
};

/// GRAPH RECONSTRUCTION: coarse in-edge (src → dst) of weight w, delivered
/// to owner(dst) (paper Algorithm 5). Ids are already dense next-level ids.
struct EdgeMsg {
  vid_t src;
  vid_t dst;
  weight_t w;
};

/// Level-label gather: level vertex v belongs to dense community c.
struct LabelPair {
  vid_t v;
  vid_t c;
};

static_assert(sizeof(PropMsg) == 16 && sizeof(DeltaMsg) == 16 && sizeof(SinMsg) == 16 &&
              sizeof(EdgeMsg) == 16);

/// Per-community bookkeeping held by the community's owner.
struct CommInfo {
  weight_t sigma_tot{0};
  weight_t sigma_in{0};
  std::int64_t members{0};
};

/// One (community, weight) entry of a vertex's Out_Table row, mirrored by
/// the active-scheduling row index (RankEngine::rows_): the frontier scan
/// walks these instead of the full table, so the weight is carried here —
/// maintained by the same insert/retract sequence as the table slot, hence
/// bitwise the same value.
struct RowEntry {
  vid_t c;
  weight_t w;
};

/// Fills `table` with rank `me`'s slice of the level-0 In_Table: one
/// ((v, u), w) record per in-edge of an owned u, self-loops stored as
/// A(u, u) = 2w. Shared by one-shot ingestion (RankEngine::init_from_edges)
/// and the Session's resident-table cold rebuilds: the table layout — and
/// with it every downstream scan order — depends on the insertion
/// sequence, so running the *same* fill over the same list is what makes a
/// cold rebuild inside a fleet bit-identical to a one-shot run.
void fill_in_table(hashing::EdgeTable& table, const graph::EdgeList& edges,
                   const graph::Partition1D& part, int me, int nranks) {
  table.clear();
  table.reserve(2 * edges.size() / static_cast<std::size_t>(nranks) + 16);
  for (const Edge& e : edges) {
    if (e.u == e.v) {
      if (part.owner(e.u) == me) {
        table.insert_or_add(pack_key(e.u, e.u), 2 * e.w);  // A(u,u) = 2w
      }
      continue;
    }
    if (part.owner(e.v) == me) table.insert_or_add(pack_key(e.u, e.v), e.w);
    if (part.owner(e.u) == me) table.insert_or_add(pack_key(e.v, e.u), e.w);
  }
}

// ---------------------------------------------------------------------------
// One rank's view of one level plus the phase machinery.
// ---------------------------------------------------------------------------

class RankEngine {
 public:
  RankEngine(pml::Comm& comm, const ParOptions& opts)
      : comm_(comm),
        opts_(opts),
        part_(opts.partition, 0, comm.nranks()),
        in_table_(0, opts.table_max_load, opts.hash),
        out_table_(0, opts.table_max_load, opts.hash),
        prop_agg_(comm, opts.aggregator_capacity),
        sigma_reqs_(static_cast<std::size_t>(comm.nranks())) {
    comm_.set_chunk_pool_watermark(opts.chunk_pool_watermark);
  }

  /// Builds level 0 from the (shared, read-only) global edge list.
  void init_from_edges(const graph::EdgeList& edges, vid_t n) {
    part_ = graph::Partition1D(opts_.partition, n, comm_.nranks());
    n_level_ = n;
    level_index_ = 0;
    fill_in_table(in_table_, edges, part_, comm_.rank(), comm_.nranks());
    init_level_state();
    two_m_ = comm_.allreduce_sum(local_strength_sum());
  }

  /// Builds level 0 from an already-filled In_Table slice — the Session's
  /// resident table. The slice is *copied*, and a copy preserves the exact
  /// array layout, so a table filled by fill_in_table drives the same run
  /// a cold init_from_edges on the same list would (bit for bit), while a
  /// delta-patched table drives the incremental re-refine.
  void init_from_table(const hashing::EdgeTable& in0, vid_t n) {
    part_ = graph::Partition1D(opts_.partition, n, comm_.nranks());
    n_level_ = n;
    level_index_ = 0;
    in_table_ = in0;
    init_level_state();
    two_m_ = comm_.allreduce_sum(local_strength_sum());
  }

  /// Restricts refinement to the disturbed-vertex frontier: only vertices
  /// seeded here (the endpoints of changed edges) — plus those a
  /// retraction/assertion patch later touches, which is exactly how a
  /// neighbor learns its community surroundings changed — may move;
  /// everyone else's gain is zeroed before the threshold histogram. Call
  /// after init_from_table + warm_start. Level 0 only: reconstruction
  /// lifts the restriction, and run_levels stops after level 0 when the
  /// frontier never produced a move (an undisturbed partition cannot
  /// change at coarser levels either).
  void enable_frontier(const std::vector<vid_t>& seeds) {
    pinned_ = true;
    restricted_ = true;
    frontier_was_on_ = true;
    active_.assign(label_.size(), 0);
    const int me = comm_.rank();
    for (vid_t v : seeds) {
      if (v < n_level_ && part_.owner(v) == me) active_[part_.to_local(v)] = 1;
    }
  }

  [[nodiscard]] bool frontier_was_enabled() const noexcept { return frontier_was_on_; }
  [[nodiscard]] std::uint64_t last_level_moves() const noexcept { return level_moves_; }

  /// Re-seeds the community state from a prior partition (warm start).
  /// Must run after init_from_edges/init_from_slice: ownership arrays are
  /// already in place; only labels and the community store change. The
  /// Σtot request bookkeeping need not be touched here — the level's first
  /// propagation is always a full rebuild, which re-derives it.
  void warm_start(const std::vector<vid_t>& initial_labels) {
    assert(initial_labels.size() >= n_level_);
    const int me = comm_.rank();
    for (vid_t l = 0; l < static_cast<vid_t>(label_.size()); ++l) {
      label_[l] = initial_labels[part_.to_global(me, l)];
      assert(label_[l] < n_level_);
    }
    // Rebuild Σtot / member counts at the community owners.
    comms_.clear();
    std::vector<std::vector<DeltaMsg>> deltas(static_cast<std::size_t>(comm_.nranks()));
    for (vid_t l = 0; l < static_cast<vid_t>(label_.size()); ++l) {
      deltas[static_cast<std::size_t>(part_.owner(label_[l]))].push_back(
          DeltaMsg{label_[l], +1, strength_[l]});
    }
    const auto incoming = comm_.exchange(deltas);
    for (const DeltaMsg& d : incoming) {
      CommInfo& info = comms_.ref(d.c);
      info.sigma_tot += d.dtot;
      info.members += d.dcount;
    }
  }

  /// Builds level 0 from this rank's slice of a distributed edge stream:
  /// every In_Table entry is routed to its owner through the aggregators
  /// (records written straight into pooled chunks; the drain blocks on the
  /// mailbox instead of spinning on collectives), so no rank ever
  /// materializes the global edge list.
  void init_from_slice(const graph::EdgeList& slice, vid_t n) {
    part_ = graph::Partition1D(opts_.partition, n, comm_.nranks());
    n_level_ = n;
    level_index_ = 0;
    in_table_.clear();
    in_table_.reserve(2 * slice.size() / static_cast<std::size_t>(comm_.nranks()) + 16);
    pml::Aggregator<EdgeMsg> agg(comm_, opts_.aggregator_capacity);
    for (const Edge& e : slice) {
      if (e.u == e.v) {
        agg.push(part_.owner(e.u), EdgeMsg{e.u, e.u, 2 * e.w});
        continue;
      }
      agg.push(part_.owner(e.v), EdgeMsg{e.u, e.v, e.w});
      agg.push(part_.owner(e.u), EdgeMsg{e.v, e.u, e.w});
    }
    agg.flush_all_final();
    // Ordered streaming drain: arrivals apply in source-rank order, so the
    // table layout (and every scan over it) is deterministic across runs
    // and transports instead of arrival-timing dependent.
    comm_.drain_streaming_finalized<EdgeMsg>([&](int, std::span<const EdgeMsg> msgs) {
      for (const EdgeMsg& m : msgs) {
        in_table_.insert_or_add(pack_key(m.src, m.dst), m.w);
      }
    });
    init_level_state();
    two_m_ = comm_.allreduce_sum(local_strength_sum());
  }

  /// One full level: propagation, refine (inner loop), reconstruction.
  /// Returns the level artifact (identical on every rank). Sets
  /// `compressed` to false when nothing merged.
  LouvainLevel run_level(bool& compressed) {
    WallTimer level_timer;
    LouvainLevel level;
    level.num_vertices = n_level_;

    {
      ScopedPhase sp(timers_, phase::kStatePropagation);
      state_propagation_full();
    }
    // Σin was accumulated by the propagation drain itself; only the
    // owner exchange and the reduction remain.
    exchange_sigma_in();
    double q = comm_.allreduce_sum(local_modularity());

    {
      ScopedPhase sp(timers_, phase::kRefine);
      q = refine(level, q);
    }

    level.modularity = q;

    // Dense relabeling must happen before reconstruction so both the
    // reported labels and the next level's In_Table use the same ids.
    const std::vector<vid_t> relabel_keys = gather_surviving_communities();
    FlatMap<vid_t> dense(relabel_keys.size());
    for (std::size_t i = 0; i < relabel_keys.size(); ++i) {
      dense.ref(relabel_keys[i]) = static_cast<vid_t>(i);
    }
    level.num_communities = relabel_keys.size();
    level.labels = gather_level_labels(dense);

    {
      ScopedPhase sp(timers_, phase::kGraphReconstruction);
      graph_reconstruction(dense, static_cast<vid_t>(relabel_keys.size()));
    }

    compressed = static_cast<vid_t>(relabel_keys.size()) < level.num_vertices;
    level.seconds = level_timer.seconds();
    return level;
  }

  [[nodiscard]] const PhaseTimers& timers() const noexcept { return timers_; }
  [[nodiscard]] weight_t two_m() const noexcept { return two_m_; }
  [[nodiscard]] vid_t level_vertex_count() const noexcept { return n_level_; }

 private:
  struct InEdge {
    vid_t v;      // non-owned endpoint of the in-edge (v, u)
    weight_t w;
  };

  struct Move {
    vid_t l;      // local index of the moved vertex
    vid_t from;
    vid_t to;
  };

  /// Global per-iteration tally, allreduced so every rank takes the same
  /// full-vs-delta propagation decision.
  struct MoveTally {
    std::uint64_t moves{0};
    std::uint64_t delta_records{0};  // records a delta propagation would ship
  };

  // -- level state ----------------------------------------------------------

  /// Derives per-vertex arrays, the in-edge adjacency, and community
  /// bookkeeping from In_Table.
  void init_level_state() {
    const vid_t local_n = part_.local_count(comm_.rank());
    strength_.assign(local_n, 0.0);
    self_loop_.assign(local_n, 0.0);
    label_.resize(local_n);
    best_.assign(local_n, kInvalidVid);
    gain_.assign(local_n, 0.0);
    stay_score_.assign(local_n, 0.0);
    for (vid_t l = 0; l < local_n; ++l) {  // plv-lint: allow(refine-full-scan) -- level setup, runs once per level
      label_[l] = part_.to_global(comm_.rank(), l);
    }
    // CSR-style in-edge adjacency per owned vertex: the delta propagation
    // walks exactly the moved vertices' rows instead of scanning In_Table.
    adj_start_.assign(static_cast<std::size_t>(local_n) + 1, 0);
    in_table_.for_each([&](std::uint64_t key, weight_t w) {
      const vid_t u = key_lo(key);
      const vid_t v = key_hi(key);
      const vid_t l = part_.to_local(u);
      strength_[l] += w;
      if (v == u) self_loop_[l] = w;
      ++adj_start_[static_cast<std::size_t>(l) + 1];
    });
    for (std::size_t i = 1; i < adj_start_.size(); ++i) adj_start_[i] += adj_start_[i - 1];
    adj_.resize(in_table_.size());
    std::vector<std::size_t> cursor(adj_start_.begin(), adj_start_.end() - 1);
    in_table_.for_each([&](std::uint64_t key, weight_t w) {
      const std::size_t l = part_.to_local(key_lo(key));
      adj_[cursor[l]++] = InEdge{key_hi(key), w};
    });

    comms_.clear();
    comms_.reserve(static_cast<std::size_t>(local_n) + 1);
    for (vid_t l = 0; l < local_n; ++l) {  // plv-lint: allow(refine-full-scan) -- level setup, runs once per level
      const vid_t u = part_.to_global(comm_.rank(), l);
      comms_.ref(u) = CommInfo{strength_[l], 0.0, 1};
    }
    out_table_.clear();
    out_table_.reserve(in_table_.size() + 16);
    moves_.clear();
    iters_since_rebuild_ = 0;
    // What a full propagation costs, in records: one per In_Table entry,
    // summed over ranks. The per-iteration full-vs-delta decision compares
    // the (allreduced) delta cost against this.
    full_prop_records_ = comm_.allreduce_sum(static_cast<std::uint64_t>(in_table_.size()));
    // A pinned (Session) frontier applies to the level it was seeded on;
    // coarser levels (and fresh inits) refine unrestricted. Active-vertex
    // scheduling, by contrast, re-arms on every level: all vertices start
    // schedulable, and the first delta propagation shrinks the set to the
    // disturbed region. Small levels opt out entirely: restricting moves
    // admits fewer movers per round, so convergence stretches across more
    // iterations — a fine trade while FIND dominates, a loss once the
    // level is collective-bound (scanning a few hundred vertices is free,
    // but every extra iteration pays the full reduction rounds).
    pinned_ = false;
    restricted_ = false;
    prune_ = opts_.refine.active_scheduling &&
             n_level_ >= opts_.refine.min_frontier_vertices;
    use_rows_ = prune_;
    if (prune_) {
      active_.assign(local_n, 1);
    } else {
      active_.clear();
    }
    if (use_rows_) {
      rows_.assign(local_n, {});
    } else {
      rows_.clear();
    }
  }

  [[nodiscard]] weight_t local_strength_sum() const noexcept {
    weight_t s = 0;
    for (weight_t k : strength_) s += k;
    return s;
  }

  // -- STATE PROPAGATION (Algorithm 3) --------------------------------------

  /// Full rebuild: clears Out_Table and re-ships every In_Table entry
  /// under its current label. Re-derives the Σtot request bookkeeping from
  /// scratch, which also resets any floating-point drift the incremental
  /// path accumulated on non-integer weights. The drain doubles as the Σin
  /// accumulation pass: a record (v, c, w) with label(v) == c is exactly a
  /// Σin contribution, so sin_acc_ is rebuilt from scratch here — fused
  /// into the receive loop instead of a separate full table scan.
  void state_propagation_full() {
    out_table_.clear();
    sin_acc_.clear();
    sin_acc_.reserve(label_.size() + 1);
    if (use_rows_) {
      for (auto& row : rows_) row.clear();
    }
    in_table_.for_each([&](std::uint64_t key, weight_t w) {
      const vid_t v = key_hi(key);
      const vid_t u = key_lo(key);  // owned
      prop_agg_.push(part_.owner(v), PropMsg{v, label_[part_.to_local(u)], w});
    });
    prop_agg_.flush_all_final();
    comm_.drain_streaming_finalized<PropMsg>([&](int /*src*/,
                                                 std::span<const PropMsg> msgs) {
      for (const PropMsg& m : msgs) {
        const vid_t lv = part_.to_local(m.v);
        const bool fresh = out_table_.insert_or_add(pack_key(m.v, m.c), m.w);
        if (use_rows_) row_insert(lv, m.c, m.w, fresh);
        if (label_[lv] == m.c) sin_acc_.ref(m.c) += m.w;
      }
    });
    rebuild_sigma_requests();
    iters_since_rebuild_ = 0;
    drift_accum_ = 0.0;
    // A rebuild re-ships every row, so the pruned frontier's "nothing
    // changed near me" premise is void: reactivate the whole partition.
    // (Pinned Session frontiers are exempt — their restriction is the
    // caller's dirty-region contract, and the level's initial full
    // propagation must not clobber the seeds.)
    if (prune_ && !pinned_) {
      std::fill(active_.begin(), active_.end(), std::uint8_t{1});
      restricted_ = false;
    }
  }

  /// Incremental maintenance: ships one (retraction, assertion) pair per
  /// in-edge of each vertex that moved this iteration; receivers patch
  /// Out_Table in place (count-based erase-on-zero keeps the table as
  /// dense as a rebuild would). Requires every rank to have taken the
  /// same full-vs-delta decision — see refine().
  void state_propagation_delta() {
    if (prune_) {
      // Next iteration's frontier: the vertices that moved this sweep plus
      // — via the patch drain below — everyone whose neighborhood those
      // moves changed. The wakeup deliberately rides the existing PropMsg
      // patch stream instead of a dedicated message kind: a patch to entry
      // (v, c) *is* the statement "a neighbor of v changed community", so
      // a separate wakeup channel would duplicate the same (v, source)
      // pairs byte for byte (DESIGN.md decision 15).
      restricted_ = true;
      std::fill(active_.begin(), active_.end(), std::uint8_t{0});
      for (const Move& mv : moves_) active_[mv.l] = 1;
    }
    for (const Move& mv : moves_) {
      assert(mv.from < kRetractBit && mv.to < kRetractBit);
      const std::size_t begin = adj_start_[mv.l];
      const std::size_t end = adj_start_[static_cast<std::size_t>(mv.l) + 1];
      for (std::size_t i = begin; i < end; ++i) {
        const InEdge& e = adj_[i];
        const int dest = part_.owner(e.v);
        prop_agg_.push(dest, PropMsg{e.v, mv.from | kRetractBit, e.w});
        prop_agg_.push(dest, PropMsg{e.v, mv.to, e.w});
      }
    }
    prop_agg_.flush_all_final();
    // Each patch also carries Σin forward: under the receiver's (already
    // post-move) labels, a patch to entry (v, c) shifts the community's
    // internal weight exactly when label(v) == c. Combined with the local
    // adjustments made at move time (update_communities), sin_acc_ lands
    // on the same value a fresh post-propagation scan would compute —
    // exactly, in integer-weight arithmetic; within one iteration's
    // rounding otherwise (the fused FIND scan re-derives it next
    // iteration, so the drift never compounds).
    comm_.drain_streaming_finalized<PropMsg>([&](int /*src*/,
                                                 std::span<const PropMsg> msgs) {
      for (const PropMsg& m : msgs) {
        const vid_t lv = part_.to_local(m.v);
        // A patched vertex just learned its surroundings changed — that is
        // the disturbed-vertex frontier growing (Lu & Halappanavar's
        // disturbance propagation): it may move from the next sweep on.
        if (restricted_) active_[lv] = 1;
        if ((m.c & kRetractBit) != 0) {
          const vid_t c = m.c & ~kRetractBit;
          const bool erased = out_table_.retract(pack_key(m.v, c), m.w);
          if (erased) ref_sub(c);
          if (use_rows_) row_retract(lv, c, m.w, erased);
          if (label_[lv] == c) sin_acc_.ref(c) -= m.w;
        } else {
          const bool fresh = out_table_.insert_or_add(pack_key(m.v, m.c), m.w);
          if (fresh) ref_add(m.c);
          if (use_rows_) row_insert(lv, m.c, m.w, fresh);
          if (label_[lv] == m.c) sin_acc_.ref(m.c) += m.w;
        }
      }
    });
    ++iters_since_rebuild_;
  }

  // -- Σtot request bookkeeping ---------------------------------------------

  /// The FIND phase must fetch Σtot for every community this rank's
  /// Out_Table references plus every owned vertex's own community. Rather
  /// than re-collecting that set each iteration (a full table scan plus a
  /// sort), the engine keeps it persistent: comm_refs_ counts, per
  /// community, the Out_Table entries naming it plus the owned vertices
  /// labeled with it; sigma_reqs_ holds the per-owner sorted request
  /// lists; refs_dirty_ logs communities whose count touched zero or left
  /// it, and apply_sigma_request_changes() folds the log in with one
  /// linear merge per affected owner.
  void ref_add(vid_t c) {
    if (++comm_refs_.ref(c) == 1) refs_dirty_.push_back(c);
  }

  void ref_sub(vid_t c) {
    std::uint32_t* r = comm_refs_.find(c);
    assert(r != nullptr && *r > 0);
    if (--*r == 0) refs_dirty_.push_back(c);
  }

  // -- active-scheduling row index ------------------------------------------

  /// Mirrors one Out_Table insert into vertex lv's sorted community row.
  /// `fresh` is the table's own "new slot" verdict, so row membership can
  /// never disagree with table membership (the table's contribution count,
  /// not a weight comparison, decides emptiness).
  void row_insert(vid_t l, vid_t c, weight_t w, bool fresh) {
    auto& row = rows_[l];
    const auto it = std::lower_bound(
        row.begin(), row.end(), c,
        [](const RowEntry& e, vid_t key) { return e.c < key; });
    if (fresh) {
      assert(it == row.end() || it->c != c);
      row.insert(it, RowEntry{c, w});
    } else {
      assert(it != row.end() && it->c == c);
      it->w += w;
    }
  }

  /// Mirrors one Out_Table retraction; `erased` is the table's
  /// slot-went-empty verdict.
  void row_retract(vid_t l, vid_t c, weight_t w, bool erased) {
    auto& row = rows_[l];
    const auto it = std::lower_bound(
        row.begin(), row.end(), c,
        [](const RowEntry& e, vid_t key) { return e.c < key; });
    assert(it != row.end() && it->c == c);
    if (erased) {
      row.erase(it);
    } else {
      it->w -= w;
    }
  }

  /// Re-derives comm_refs_ and sigma_reqs_ from the freshly rebuilt
  /// Out_Table and current labels.
  void rebuild_sigma_requests() {
    comm_refs_.clear();
    comm_refs_.reserve(out_table_.size() / 2 + label_.size() + 1);
    out_table_.for_each(
        [&](std::uint64_t key, weight_t) { ++comm_refs_.ref(key_lo(key)); });
    for (vid_t c : label_) ++comm_refs_.ref(c);
    for (auto& reqs : sigma_reqs_) reqs.clear();
    comm_refs_.for_each([&](vid_t c, std::uint32_t&) {
      sigma_reqs_[static_cast<std::size_t>(part_.owner(c))].push_back(c);
    });
    for (auto& reqs : sigma_reqs_) std::sort(reqs.begin(), reqs.end());
    refs_dirty_.clear();
  }

  /// Folds the dirty log into the sorted request lists. A community is
  /// requested iff its reference count is positive *now* — entries that
  /// bounced through zero and back within one iteration net out here.
  void apply_sigma_request_changes() {
    if (refs_dirty_.empty()) return;
    std::sort(refs_dirty_.begin(), refs_dirty_.end());
    refs_dirty_.erase(std::unique(refs_dirty_.begin(), refs_dirty_.end()),
                      refs_dirty_.end());
    const std::size_t nranks = sigma_reqs_.size();
    std::vector<std::vector<vid_t>> add(nranks);
    std::vector<std::vector<vid_t>> del(nranks);
    for (vid_t c : refs_dirty_) {
      const std::uint32_t* r = comm_refs_.find(c);
      const bool needed = r != nullptr && *r > 0;
      const auto owner = static_cast<std::size_t>(part_.owner(c));
      const auto& reqs = sigma_reqs_[owner];
      const bool listed = std::binary_search(reqs.begin(), reqs.end(), c);
      if (needed && !listed) {
        add[owner].push_back(c);
      } else if (!needed && listed) {
        del[owner].push_back(c);
      }
      if (!needed && r != nullptr) comm_refs_.erase(c);  // no zombie zeros
    }
    refs_dirty_.clear();
    for (std::size_t r = 0; r < nranks; ++r) {
      if (add[r].empty() && del[r].empty()) continue;
      std::vector<vid_t> merged;  // add/del inherit the dirty log's order
      merged.reserve(sigma_reqs_[r].size() + add[r].size());
      std::size_t ai = 0;
      std::size_t di = 0;
      for (vid_t c : sigma_reqs_[r]) {
        while (ai < add[r].size() && add[r][ai] < c) merged.push_back(add[r][ai++]);
        if (di < del[r].size() && del[r][di] == c) {
          ++di;
          continue;
        }
        merged.push_back(c);
      }
      while (ai < add[r].size()) merged.push_back(add[r][ai++]);
      sigma_reqs_[r] = std::move(merged);
    }
  }

  // -- FIND BEST COMMUNITY (Algorithm 4 lines 6-9) --------------------------

  /// Fetches Σtot for every community referenced by this rank's Out_Table
  /// (request/reply to the owners, request lists maintained incrementally),
  /// then scans the table ONCE to fill best_/gain_ per owned vertex AND
  /// re-derive the Σin pre-aggregation: an entry (u, c) with c == label(u)
  /// is a Σin contribution and never a join candidate, so the branch that
  /// used to skip it now accumulates it — compute_sigma_in's second full
  /// scan is gone.
  ///
  /// With opts_.overlap the request/reply rides the streaming plane: the
  /// Σtot requests are on the wire while this rank runs the stay-score
  /// initialization (the Out_Table lookups, the σ-independent half), and
  /// no collective rendezvous happens at all. Both modes execute the same
  /// arithmetic in the same order; only the transport pattern differs.
  void find_best_community() {
    apply_sigma_request_changes();
    const auto nranks = static_cast<std::size_t>(comm_.nranks());
    const vid_t local_n = static_cast<vid_t>(label_.size());

    // How many vertices this sweep actually considers for a move — the
    // scanned-vertices telemetry and the scan-strategy input alike.
    if (restricted_) {
      std::uint64_t count = 0;
      for (std::uint8_t a : active_) count += a;
      scanned_ = count;
    } else {
      scanned_ = static_cast<std::uint64_t>(local_n);
    }
    // Scan-strategy choice (active scheduling): when the live frontier is
    // small enough, walk only the active vertices' community rows; above
    // the threshold the fused full-table scan (inactive rows skipped) wins
    // on sequential locality. Both strategies compute identical labels —
    // the exact comparator below makes the winner independent of candidate
    // enumeration order — so this is a per-rank-local performance choice.
    const bool row_scan =
        use_rows_ && restricted_ &&
        static_cast<double>(scanned_) <=
            opts_.refine.frontier_scan_threshold * static_cast<double>(local_n);
    // Active scheduling implies exact minimum-label tie-breaking: the row
    // walk and the fused scan enumerate candidates in different orders,
    // and only an order-independent tie rule keeps them bit-equivalent.
    const bool exact_ties =
        opts_.refine.min_label_ties || opts_.refine.active_scheduling;

    // σ-independent half of the stay score: w_stay = Out[(u, cu)] − self
    // loop. The σ term is folded in after the replies arrive.
    auto stay_init = [&] {
      for (vid_t l = 0; l < local_n; ++l) {  // plv-lint: allow(refine-full-scan) -- best_/gain_ reset must cover every vertex; the frontier skip below prunes the table lookups
        const vid_t cu = label_[l];
        best_[l] = cu;
        gain_[l] = 0.0;
        // Frontier pruning: vertices outside the disturbed region cannot
        // move this iteration (their gain stays 0 and update_communities
        // never reads best_score_), so their stay score is never consumed
        // — skip the table lookup.
        if (restricted_ && active_[l] == 0) {
          stay_score_[l] = 0.0;
          continue;
        }
        const vid_t u = part_.to_global(comm_.rank(), l);
        stay_score_[l] = out_table_.find(pack_key(u, cu)).value_or(0.0) - self_loop_[l];
      }
    };
    auto build_reply = [&](const std::vector<vid_t>& reqs, std::vector<SigmaRep>& rep) {
      rep.clear();
      rep.reserve(reqs.size());
      for (vid_t c : reqs) {
        const CommInfo* info = comms_.find(c);
        rep.push_back(info == nullptr ? SigmaRep{0, 0}
                                      : SigmaRep{info->sigma_tot, info->members});
      }
    };

    std::size_t total_reqs = 0;
    for (const auto& reqs : sigma_reqs_) total_reqs += reqs.size();

    if (opts_.overlap) {
      if (req_in_.size() != nranks) req_in_.resize(nranks);
      for (auto& reqs : req_in_) reqs.clear();
      if (replies_.size() != nranks) replies_.resize(nranks);
      // Requests stream to the owners while we run the stay-score loop.
      comm_.exchange_streaming<vid_t>(
          sigma_reqs_,
          [&](int src, std::span<const vid_t> reqs) {
            auto& dst = req_in_[static_cast<std::size_t>(src)];
            dst.insert(dst.end(), reqs.begin(), reqs.end());
          },
          stay_init);
      for (std::size_t r = 0; r < nranks; ++r) build_reply(req_in_[r], replies_[r]);
      sigma_cache_.clear();
      sigma_cache_.reserve(total_reqs + 1);
      // Replies from owner r answer sigma_reqs_[r] in order; a per-source
      // cursor keeps the pairing correct across chunk boundaries.
      reply_cursor_.assign(nranks, 0);
      comm_.exchange_streaming<SigmaRep>(replies_, [&](int src,
                                                       std::span<const SigmaRep> vals) {
        const auto& reqs = sigma_reqs_[static_cast<std::size_t>(src)];
        auto& cur = reply_cursor_[static_cast<std::size_t>(src)];
        for (const SigmaRep& v : vals) {
          assert(cur < reqs.size());
          sigma_cache_.ref(reqs[cur++]) = v;
        }
      });
    } else {
      const auto incoming = comm_.exchange_grouped(sigma_reqs_);
      std::vector<std::vector<SigmaRep>> replies(nranks);
      for (std::size_t r = 0; r < nranks; ++r) build_reply(incoming[r], replies[r]);
      const auto answered = comm_.exchange_grouped(replies);
      sigma_cache_.clear();
      sigma_cache_.reserve(total_reqs + 1);
      for (std::size_t r = 0; r < nranks; ++r) {
        const auto& reqs = sigma_reqs_[r];
        const auto& vals = answered[r];
        assert(reqs.size() == vals.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) sigma_cache_.ref(reqs[i]) = vals[i];
      }
      stay_init();
    }

    // Fold the σ term into the stay score (identical arithmetic on both
    // paths: (w_stay) − γ(σ − k)k/2m, left-associated as before). γ is
    // hoisted once for the two hot loops below.
    const double gamma = opts_.resolution;
    for (vid_t l = 0; l < local_n; ++l) {  // plv-lint: allow(refine-full-scan) -- O(1)/vertex σ fold; the skip below prunes the lookups
      if (restricted_ && active_[l] == 0) continue;  // stay score unused
      const SigmaRep* own = sigma_cache_.find(label_[l]);
      assert(own != nullptr);
      stay_score_[l] -= gamma * (own->sigma_tot - strength_[l]) *
                        strength_[l] / two_m_;
    }
    // best_score starts equal to stay_score; track it in gain_ scaled later.
    best_score_ = stay_score_;

    if (row_scan) {
      // Frontier row walk: only the active vertices are visited — the
      // whole point of active scheduling — so Σin is NOT re-derived here;
      // the incremental carry (move-time adjustment + patch-drain deltas)
      // stays authoritative until the next fused scan or full rebuild.
      // That is exact in integer/dyadic-weight arithmetic; otherwise the
      // rebuild cadence bounds the drift, exactly as it does for the
      // Out_Table weights themselves (DESIGN.md decision 8).
      for (vid_t l = 0; l < local_n; ++l) {  // plv-lint: allow(refine-full-scan) -- sequential bitmap sweep; the join search runs for active vertices only
        if (active_[l] == 0) continue;
        const vid_t cu = label_[l];
        for (const RowEntry& row : rows_[l]) {
          const vid_t c = row.c;
          if (c == cu) continue;
          const SigmaRep* target = sigma_cache_.find(c);
          assert(target != nullptr);
          if (target->members == 1 && sigma_cache_.find(cu)->members == 1 && c > cu) {
            continue;
          }
          const double score =
              row.w - gamma * target->sigma_tot * strength_[l] / two_m_;
          // Row mode implies the exact comparator (exact_ties above).
          if (score > best_score_[l] || (score == best_score_[l] && c < best_[l])) {
            best_score_[l] = score;
            best_[l] = c;
          }
        }
        gain_[l] = best_[l] == cu ? 0.0
                                  : 2.0 * (best_score_[l] - stay_score_[l]) / two_m_;
      }
      return;
    }

    // The single fused scan: Σin accumulation (c == cu) + join search
    // (c != cu). Comparing joins by (w_uc − Σtot_c·k_u/2m) is equivalent
    // to comparing ΔQ (metrics/modularity.hpp); the final gain is the
    // join-vs-stay difference rescaled to true ΔQ units.
    sin_acc_.clear();
    sin_acc_.reserve(label_.size() + 1);
    out_table_.for_each([&](std::uint64_t key, weight_t w) {
      const vid_t u = key_hi(key);
      const vid_t c = key_lo(key);
      const vid_t l = part_.to_local(u);
      const vid_t cu = label_[l];
      if (c == cu) {
        sin_acc_.ref(c) += w;  // Σin accounting: every row counts, active or not
        return;
      }
      // Frontier pruning (Sahu's unchanged-vertex idea): an undisturbed
      // vertex may not move this iteration, so its join search — the σ
      // lookup and score compare, the scan's dominant cost — is skipped.
      // best_[l] stays at label_[l] from stay_init, so its gain is 0.
      if (restricted_ && active_[l] == 0) return;
      const SigmaRep* target = sigma_cache_.find(c);
      assert(target != nullptr);
      // Singleton-swap guard (Lu et al. [11], cited by the paper): when a
      // lone vertex considers joining another singleton community, only
      // the smaller-labeled side may move. Without it, synchronous
      // updates let pairs of singletons swap communities forever — the
      // oscillation Section III warns about.
      if (target->members == 1 && sigma_cache_.find(cu)->members == 1 && c > cu) return;
      const double score =
          w - gamma * target->sigma_tot * strength_[l] / two_m_;
      // Tie handling: the default comparator prefers the smaller community
      // id only inside a 1e-15 score band (kept bit-for-bit for the
      // default configuration); with min-label tie-breaking the rule is
      // exact, so the chosen target cannot depend on enumeration order
      // (Lu & Halappanavar's determinism argument).
      const bool better =
          exact_ties ? (score > best_score_[l] ||
                        (score == best_score_[l] && c < best_[l]))
                     : (score > best_score_[l] + 1e-15 ||
                        (score > best_score_[l] - 1e-15 && c < best_[l]));
      if (better) {
        best_score_[l] = score;
        best_[l] = c;
      }
    });
    // Inactive vertices kept best_[l] == label_[l] through the scan, so
    // this leaves their gain at 0 — out of the threshold histogram and
    // the move sweep alike — with no separate masking pass.
    for (vid_t l = 0; l < local_n; ++l) {  // plv-lint: allow(refine-full-scan) -- gain finalize is O(1)/vertex with no table access
      gain_[l] =
          best_[l] == label_[l] ? 0.0 : 2.0 * (best_score_[l] - stay_score_[l]) / two_m_;
    }
  }

  // -- threshold selection (Section IV-B) -----------------------------------

  /// Translates ε(iter) into the global gain cutoff ΔQ̂ via an allreduced
  /// histogram of positive gains. A single pass over gain_ collects the
  /// positive values (into a persistent buffer) together with the local
  /// max, so the histogram fill re-reads a compact array instead of
  /// walking the full gain vector a second time; the histogram and the
  /// reduction scratch are persistent too — no steady-state allocation.
  [[nodiscard]] double gain_cutoff(int iter, double& eps_out) {
    const double eps = epsilon_of(opts_.threshold, opts_.p1, opts_.p2, iter);
    eps_out = eps;
    double local_max = 0.0;
    pos_gains_.clear();
    for (double g : gain_) {
      if (g > 0.0) {
        local_max = std::max(local_max, g);
        pos_gains_.push_back(g);
      }
    }
    struct MaxCount {
      double max;
      std::uint64_t count;
    };
    const auto agg = comm_.allreduce(
        MaxCount{local_max, pos_gains_.size()}, [](const MaxCount& a, const MaxCount& b) {
          return MaxCount{a.max < b.max ? b.max : a.max, a.count + b.count};
        });
    if (agg.count == 0 || agg.max <= 0.0) return -1.0;  // signals "no mover"
    if (eps >= 1.0) return 0.0;                         // all positive gains move

    hist_.reset(0.0, agg.max, opts_.gain_histogram_bins);
    for (double g : pos_gains_) hist_.add(g);
    comm_.allreduce_vec_sum(hist_.counts(), hist_scratch_);

    // ε is a fraction of *all* level vertices (the paper sorts ΔQ_u over
    // V); convert to a fraction of the positive-gain population.
    const double budget = eps * static_cast<double>(n_level_);
    const double frac = std::min(1.0, budget / static_cast<double>(agg.count));
    return hist_.top_fraction_cutoff(frac);
  }

  // -- UPDATE COMMUNITY INFORMATION (Algorithm 4 lines 13-15) ---------------

  /// Moves every owned vertex whose gain clears the cutoff; ships Σtot and
  /// member-count deltas to the community owners; records the move list
  /// the delta propagation would replay. Returns the global tally.
  ///
  /// Each move also carries the local Σin pre-aggregation forward: row
  /// (u, from) stops counting toward Σin(from) and row (u, to) starts
  /// counting toward Σin(to) — both against the *pre-propagation* table
  /// the fused scan just read; the propagation drain patches in the edge
  /// re-pointing afterwards (see state_propagation_delta).
  [[nodiscard]] MoveTally update_communities(double cutoff) {
    delta_out_.resize(static_cast<std::size_t>(comm_.nranks()));
    for (auto& dest : delta_out_) dest.clear();
    auto& deltas = delta_out_;
    MoveTally local;
    moves_.clear();
    if (cutoff >= 0.0) {
      const vid_t local_n = static_cast<vid_t>(label_.size());
      for (vid_t l = 0; l < local_n; ++l) {  // plv-lint: allow(refine-full-scan) -- gain_ is dense; pruned vertices hold gain 0 and fall to the first branch
        if (gain_[l] <= 0.0 || gain_[l] < cutoff) continue;
        const vid_t from = label_[l];
        const vid_t to = best_[l];
        if (from == to) continue;
        label_[l] = to;
        moves_.push_back(Move{l, from, to});
        ref_sub(from);
        ref_add(to);
        const vid_t u = part_.to_global(comm_.rank(), l);
        sin_acc_.ref(from) -= out_table_.find(pack_key(u, from)).value_or(0.0);
        sin_acc_.ref(to) += out_table_.find(pack_key(u, to)).value_or(0.0);
        deltas[static_cast<std::size_t>(part_.owner(from))].push_back(
            DeltaMsg{from, -1, -strength_[l]});
        deltas[static_cast<std::size_t>(part_.owner(to))].push_back(
            DeltaMsg{to, +1, strength_[l]});
        ++local.moves;
        local.delta_records +=
            2 * (adj_start_[static_cast<std::size_t>(l) + 1] - adj_start_[l]);
      }
    }
    if (opts_.overlap) {
      // The global move tally piggybacks on the delta exchange itself:
      // every rank appends one sentinel (c == kInvalidVid) per peer with
      // its local counts, and the ordered drain sums them — no separate
      // MoveTally allreduce round. Both counts are integers, exact in a
      // double far beyond any reachable size.
      for (auto& dest : deltas) {
        dest.push_back(DeltaMsg{kInvalidVid, static_cast<std::int32_t>(local.moves),
                                static_cast<weight_t>(local.delta_records)});
      }
      MoveTally global;
      comm_.exchange_streaming<DeltaMsg>(
          deltas, [&](int /*src*/, std::span<const DeltaMsg> msgs) {
            for (const DeltaMsg& d : msgs) {
              if (d.c == kInvalidVid) {
                global.moves += static_cast<std::uint64_t>(d.dcount);
                global.delta_records += static_cast<std::uint64_t>(d.dtot);
                continue;
              }
              CommInfo& info = comms_.ref(d.c);
              info.sigma_tot += d.dtot;
              info.members += d.dcount;
            }
          });
      return global;
    }
    const auto incoming = comm_.exchange(deltas);
    for (const DeltaMsg& d : incoming) {
      CommInfo& info = comms_.ref(d.c);
      info.sigma_tot += d.dtot;
      info.members += d.dcount;
    }
    return comm_.allreduce(local, [](const MoveTally& a, const MoveTally& b) {
      return MoveTally{a.moves + b.moves, a.delta_records + b.delta_records};
    });
  }

  // -- Σin + modularity (Algorithm 4 lines 18-25) ----------------------------

  /// Ships the local Σin pre-aggregation (sin_acc_, maintained by the
  /// fused find scan + move-time carry + propagation-drain patches — the
  /// second full Out_Table scan the old compute_sigma_in ran is gone) to
  /// the community owners. Local pre-aggregation keeps message volume at
  /// one record per (rank, community) pair.
  void exchange_sigma_in() {
    comms_.for_each([](vid_t, CommInfo& info) { info.sigma_in = 0.0; });
    sin_out_.resize(static_cast<std::size_t>(comm_.nranks()));
    for (auto& dest : sin_out_) dest.clear();
    sin_acc_.for_each([&](vid_t c, weight_t& w) {
      sin_out_[static_cast<std::size_t>(part_.owner(c))].push_back(SinMsg{c, 0, w});
    });
    if (opts_.overlap) {
      comm_.exchange_streaming<SinMsg>(
          sin_out_, [&](int /*src*/, std::span<const SinMsg> msgs) {
            for (const SinMsg& m : msgs) comms_.ref(m.c).sigma_in += m.w;
          });
    } else {
      const auto incoming = comm_.exchange(sin_out_);
      for (const SinMsg& m : incoming) comms_.ref(m.c).sigma_in += m.w;
    }
  }

  /// This rank's modularity contribution (sum over owned communities);
  /// the caller reduces it — standalone or merged with other per-iteration
  /// scalars into one combined allreduce (see refine).
  [[nodiscard]] double local_modularity() const {
    double q_local = 0.0;
    comms_.for_each([&](vid_t, const CommInfo& info) {
      if (info.members <= 0) return;
      const double tot = info.sigma_tot / two_m_;
      q_local += info.sigma_in / two_m_ - opts_.resolution * tot * tot;
    });
    return q_local;
  }

  // -- REFINE (Algorithm 4) ---------------------------------------------------

  /// Per-level convergence tolerance under threshold scaling: level L
  /// refines against max(q_tolerance, initial_tolerance / decay^L), so the
  /// coarse early levels converge in fewer sweeps and the cascade tightens
  /// geometrically toward the final tolerance (Sahu's threshold scaling).
  /// With initial_tolerance = 0 (default) this is exactly q_tolerance.
  [[nodiscard]] double level_tolerance() const {
    const RefinePlan& plan = opts_.refine;
    if (!(plan.initial_tolerance > 0.0)) return plan.q_tolerance;
    const double scaled = plan.initial_tolerance /
                          std::pow(plan.tolerance_decay, static_cast<double>(level_index_));
    return std::max(plan.q_tolerance, scaled);
  }

  double refine(LouvainLevel& level, double q_initial) {
    double prev_q = q_initial;
    int stagnant = 0;
    level_moves_ = 0;
    const double level_tol = level_tolerance();
    // The same scaled tolerance also floors the histogram cutoff: a move
    // must clear its per-vertex share of the level tolerance, so
    // sub-tolerance shuffling can't keep coarse levels iterating. 0 when
    // scaling is off — the cutoff is then exactly the histogram's.
    const double gain_floor =
        opts_.refine.initial_tolerance > 0.0 && n_level_ > 0
            ? level_tol / static_cast<double>(n_level_)
            : 0.0;
    // The retraction encoding borrows PropMsg::c's top bit, so the delta
    // path needs community ids below 2^31 — always true for vid_t levels
    // in practice, but guard anyway so correctness never hinges on it.
    const bool delta_possible = n_level_ < kRetractBit;
    for (int iter = 1; iter <= opts_.max_inner_iterations; ++iter) {
      WallTimer t;
      find_best_community();
      const std::uint64_t scanned_local = scanned_;
      const double find_s = t.seconds();
      timers_.add(phase::kFindBestCommunity, find_s);

      double eps = 1.0;
      double cutoff = gain_cutoff(iter, eps);
      // Same allreduced inputs on every rank, so the floored cutoff is
      // globally consistent; -1 (no mover anywhere) passes through.
      if (cutoff >= 0.0 && gain_floor > cutoff) cutoff = gain_floor;

      t.reset();
      const MoveTally moved = update_communities(cutoff);
      level_moves_ += moved.moves;
      const double update_s = t.seconds();
      timers_.add(phase::kUpdateCommunity, update_s);

      // Full-vs-delta is a *global* decision (receivers must know whether
      // to clear Out_Table), taken from allreduced inputs so every rank
      // picks the same branch: rebuild when the cadence says so, when the
      // accumulated churn since the last rebuild crosses the adaptive
      // drift threshold (reacting to actual table turnover rather than a
      // blind counter — the counter stays as the hard upper bound), or
      // when the delta would ship at least as many records as a rebuild —
      // the delta path never loses on traffic.
      const double churn =
          full_prop_records_ > 0
              ? static_cast<double>(moved.delta_records) /
                    static_cast<double>(full_prop_records_)
              : 0.0;
      // In pinned (Session) frontier mode the propagation is forced onto
      // the delta path: a full rebuild costs O(|In_Table|) — the
      // cold-start term the dirty-region re-refine exists to avoid — and
      // only the patches grow the disturbed set. The flag is
      // command-driven (identical on every rank), so the decision stays
      // globally consistent. Active scheduling deliberately keeps cadence
      // rebuilds live: a rebuild reactivates the whole partition, which is
      // what bounds both the FP drift and the pruning approximation.
      const bool rebuild_due =
          !pinned_ &&
          ((opts_.full_rebuild_every > 0 &&
            iters_since_rebuild_ + 1 >= opts_.full_rebuild_every) ||
           (opts_.adaptive_rebuild_drift > kAdaptiveRebuildOff &&
            drift_accum_ + churn >= opts_.adaptive_rebuild_drift));
      const bool delta_wins =
          delta_possible &&
          (pinned_ || moved.delta_records < full_prop_records_);
      t.reset();
      const std::uint64_t sent_before = comm_.stats().records_sent;
      if (rebuild_due || !delta_wins) {
        state_propagation_full();  // resets drift_accum_
      } else {
        drift_accum_ += churn;
        state_propagation_delta();
      }
      const std::uint64_t prop_sent = comm_.stats().records_sent - sent_before;
      const double prop_s = t.seconds();
      timers_.add(phase::kStatePropagation, prop_s);

      exchange_sigma_in();
      double q;
      std::uint64_t prop_sent_global;
      std::uint64_t scanned_global;
      if (opts_.overlap) {
        // One combined reduction closes the iteration: modularity and the
        // trace's propagation + scan volumes share a single collective
        // round. The q sum visits ranks in ascending order, exactly like
        // allreduce_sum, so the value is bitwise the phased one.
        struct IterStats {
          double q;
          std::uint64_t prop_sent;
          std::uint64_t scanned;
        };
        const auto stats = comm_.allreduce(
            IterStats{local_modularity(), prop_sent, scanned_local},
            [](const IterStats& a, const IterStats& b) {
              return IterStats{a.q + b.q, a.prop_sent + b.prop_sent,
                               a.scanned + b.scanned};
            });
        q = stats.q;
        prop_sent_global = stats.prop_sent;
        scanned_global = stats.scanned;
      } else {
        q = comm_.allreduce_sum(local_modularity());
        if (opts_.record_trace) {
          // Integer-sum reduction of the trace volumes — still one
          // collective round, matching the overlap path's sums exactly.
          struct TraceStats {
            std::uint64_t prop_sent;
            std::uint64_t scanned;
          };
          const auto stats = comm_.allreduce(
              TraceStats{prop_sent, scanned_local},
              [](const TraceStats& a, const TraceStats& b) {
                return TraceStats{a.prop_sent + b.prop_sent, a.scanned + b.scanned};
              });
          prop_sent_global = stats.prop_sent;
          scanned_global = stats.scanned;
        } else {
          prop_sent_global = 0;
          scanned_global = 0;
        }
      }

      if (opts_.record_trace) {
        level.trace.moved_fraction.push_back(static_cast<double>(moved.moves) /
                                             static_cast<double>(n_level_));
        level.trace.modularity.push_back(q);
        level.trace.epsilon.push_back(eps);
        level.trace.gain_cutoff.push_back(cutoff);
        level.trace.find_seconds.push_back(find_s);
        level.trace.update_seconds.push_back(update_s);
        level.trace.prop_seconds.push_back(prop_s);
        level.trace.prop_records.push_back(prop_sent_global);
        level.trace.scanned_vertices.push_back(scanned_global);
      }

      // One stagnant iteration can just mean a low-ε round; require a
      // window of them (all ranks see the same global q/moves, so the
      // decision is uniform). Under threshold scaling the window tests the
      // level's scaled tolerance instead of the final one.
      stagnant = q - prev_q < level_tol ? stagnant + 1 : 0;
      prev_q = q;  // report the Q of the labels we actually hold
      if (moved.moves == 0 || stagnant >= opts_.stagnation_window) break;
    }
    return prev_q;
  }

  // -- GRAPH RECONSTRUCTION (Algorithm 5) -------------------------------------

  /// Sorted global list of communities that still have members.
  [[nodiscard]] std::vector<vid_t> gather_surviving_communities() {
    std::vector<vid_t> mine;
    comms_.for_each([&](vid_t c, const CommInfo& info) {
      if (info.members > 0) mine.push_back(c);
    });
    std::sort(mine.begin(), mine.end());
    std::vector<vid_t> all = comm_.allgatherv(mine);
    std::sort(all.begin(), all.end());
    return all;
  }

  /// Full label vector of this level (dense community ids), identical on
  /// every rank.
  [[nodiscard]] std::vector<vid_t> gather_level_labels(const FlatMap<vid_t>& dense) {
    std::vector<LabelPair> mine;
    mine.reserve(label_.size());
    for (vid_t l = 0; l < static_cast<vid_t>(label_.size()); ++l) {
      const vid_t* c = dense.find(label_[l]);
      assert(c != nullptr);
      mine.push_back(LabelPair{part_.to_global(comm_.rank(), l), *c});
    }
    const std::vector<LabelPair> all = comm_.allgatherv(mine);
    std::vector<vid_t> labels(n_level_, 0);
    for (const LabelPair& p : all) labels[p.v] = p.c;
    return labels;
  }

  /// Rewrites the Out_Table into the next level's In_Table (all-to-all) and
  /// re-derives the level state.
  void graph_reconstruction(const FlatMap<vid_t>& dense, vid_t next_n) {
    graph::Partition1D next_part(opts_.partition, next_n, comm_.nranks());

    hashing::EdgeTable next_in(out_table_.size() / 2 + 16, opts_.table_max_load,
                               opts_.hash);
    // Swap the receive target in place so the handler can hash directly.
    pml::Aggregator<EdgeMsg> agg(comm_, opts_.aggregator_capacity);
    out_table_.for_each([&](std::uint64_t key, weight_t w) {
      const vid_t u = key_hi(key);
      const vid_t c = key_lo(key);
      const vid_t* src = dense.find(label_[part_.to_local(u)]);
      const vid_t* dst = dense.find(c);
      assert(src != nullptr && dst != nullptr);
      agg.push(next_part.owner(*dst), EdgeMsg{*src, *dst, w});
    });
    agg.flush_all_final();
    // Ordered streaming drain: chunks are consumed as they arrive but
    // applied in ascending source-rank order, so the next level's In_Table
    // layout is arrival-timing independent (and identical across overlap
    // modes and transports).
    comm_.drain_streaming_finalized<EdgeMsg>([&](int /*src*/,
                                                 std::span<const EdgeMsg> msgs) {
      for (const EdgeMsg& m : msgs) {
        next_in.insert_or_add(pack_key(m.src, m.dst), m.w);
      }
    });

    in_table_ = std::move(next_in);
    part_ = next_part;
    n_level_ = next_n;
    init_level_state();
    ++level_index_;  // the next refine round runs one tolerance step tighter
  }

  // -- members ---------------------------------------------------------------

  pml::Comm& comm_;
  const ParOptions& opts_;
  graph::Partition1D part_;
  vid_t n_level_{0};
  weight_t two_m_{0};

  hashing::EdgeTable in_table_;
  hashing::EdgeTable out_table_;

  // Per owned vertex (local index):
  std::vector<weight_t> strength_;
  std::vector<weight_t> self_loop_;
  std::vector<vid_t> label_;
  std::vector<vid_t> best_;
  std::vector<double> gain_;
  std::vector<double> stay_score_;

  // In-edge adjacency (CSR over local indices), derived from In_Table once
  // per level; row l holds the (v, w) of every in-edge (v, u_l).
  std::vector<std::size_t> adj_start_;
  std::vector<InEdge> adj_;

  // Moves of the current iteration, replayed by the delta propagation.
  std::vector<Move> moves_;
  int iters_since_rebuild_{0};
  std::uint64_t full_prop_records_{0};

  // Shared frontier infrastructure. While restricted_ is on, only vertices
  // with a set active_ bit may move, and the delta-propagation drain sets
  // the bit of every patched vertex (the neighbor wakeup). Two producers
  // feed it: the pinned Session frontier (pinned_; seeded from changed
  // edges, forces the delta path, level 0 only) and active-vertex
  // scheduling (prune_; every level, the set re-derives each delta
  // iteration as movers ∪ patched and a full rebuild reactivates all).
  // use_rows_ keeps the per-vertex sorted community rows (rows_) mirrored
  // off the Out_Table so a small frontier can scan rows instead of the
  // table. frontier_was_on_ remembers a pinned request across the level
  // transition (the restriction itself is per-level) so run_levels can
  // stop after a no-op level 0; level_moves_ is that level's global move
  // count; scanned_ counts the vertices whose join search the last FIND
  // actually ran.
  bool pinned_{false};
  bool restricted_{false};
  bool prune_{false};
  bool use_rows_{false};
  bool frontier_was_on_{false};
  std::vector<std::uint8_t> active_;
  std::vector<std::vector<RowEntry>> rows_;
  std::uint64_t level_moves_{0};
  std::uint64_t scanned_{0};
  // Level counter for threshold scaling: 0 on every fresh ingestion,
  // incremented by each reconstruction.
  int level_index_{0};
  // Accumulated fractional Out_Table turnover since the last full rebuild
  // (Σ delta_records / full_prop_records); drives the adaptive rebuild
  // trigger. Built from allreduced tallies only, so it is identical on
  // every rank.
  double drift_accum_{0.0};

  // Persistent propagation aggregator: its per-destination chunks are
  // reacquired from the pool across iterations and levels instead of
  // being re-set-up per phase.
  pml::Aggregator<PropMsg> prop_agg_;

  FlatMap<CommInfo> comms_;        // owned communities
  FlatMap<SigmaRep> sigma_cache_;  // fetched Σtot + members
  FlatMap<weight_t> sin_acc_;      // Σin pre-aggregation, carried forward

  // Σtot request bookkeeping (see the comment block above ref_add).
  FlatMap<std::uint32_t> comm_refs_;
  std::vector<std::vector<vid_t>> sigma_reqs_;
  std::vector<vid_t> refs_dirty_;

  // Persistent per-iteration scratch (steady state allocates nothing):
  // the σ-augmented best score, the positive-gain compaction, the gain
  // histogram + its reduction scratch, and the streaming Σtot
  // request/reply staging.
  std::vector<double> best_score_;
  std::vector<double> pos_gains_;
  Histogram hist_{0.0, 0.0, 1};
  std::vector<std::uint64_t> hist_scratch_;
  std::vector<std::vector<vid_t>> req_in_;
  std::vector<std::vector<SigmaRep>> replies_;
  std::vector<std::size_t> reply_cursor_;
  std::vector<std::vector<SinMsg>> sin_out_;
  std::vector<std::vector<DeltaMsg>> delta_out_;

  PhaseTimers timers_;
};

// ---------------------------------------------------------------------------
// Vertex-following (RefinePlan::vertex_following): fold every vertex with
// exactly one distinct neighbor onto that neighbor before the fleet runs,
// then hand it the anchor's final community afterwards. A degree-1 vertex
// always sits in its unique neighbor's community in an optimal partition
// (detaching it can only lose its edge's internal weight), so the refine
// sweeps need never consider it.
// ---------------------------------------------------------------------------

struct FoldPlan {
  /// anchor[v] == kInvalidVid when v keeps its place; otherwise v was
  /// folded and follows anchor[v]'s final community.
  std::vector<vid_t> anchor;
  graph::EdgeList edges;  // the folded list the fleet actually runs on
  bool any{false};
};

/// Decides the fold in ONE pass over the original degrees — folding is
/// deliberately not iterated: peeling a path end-to-end would glue whole
/// chains into one community (a 4-chain's optimum is two pairs, not one
/// quad). A leaf's edge turns into an anchor self-loop of the same weight,
/// which preserves every vertex strength, Σin, and 2m, so the folded
/// graph's modularity equals the original's under the unfolded labels; the
/// leaf itself survives as an isolated zero-strength singleton no sweep
/// revisits. Mutual leaf pairs fold the larger id onto the smaller, and an
/// anchor is never itself folded (a vertex with a folded-away neighbor has
/// either only that neighbor — the mutual case — or at least two distinct
/// neighbors), so the unfold is single-step.
///
/// A leaf carrying a self-loop is NOT folded. The always-join guarantee
/// is ΔQ = (w/m)·(1 − Σtot(u)/2m) > 0 for a leaf whose strength is its
/// one edge; a self-loop inflates the leaf's strength (the Σtot penalty
/// of joining) while the attachment gain stays w, so staying singleton
/// can be optimal — e.g. a self-looped pendant on a tight cycle.
FoldPlan plan_vertex_following(const graph::EdgeList& edges, vid_t n) {
  FoldPlan plan;
  plan.anchor.assign(n, kInvalidVid);
  std::vector<vid_t> nbr(n, kInvalidVid);
  std::vector<std::uint8_t> multi(n, 0);
  std::vector<std::uint8_t> loop(n, 0);
  for (const Edge& e : edges) {
    if (e.u == e.v) {  // a self-loop is not a neighbor, but bars folding
      loop[e.u] = 1;
      continue;
    }
    const auto touch = [&](vid_t a, vid_t b) {
      if (nbr[a] == kInvalidVid) {
        nbr[a] = b;
      } else if (nbr[a] != b) {
        multi[a] = 1;
      }
    };
    touch(e.u, e.v);
    touch(e.v, e.u);
  }
  for (vid_t v = 0; v < n; ++v) {
    if (nbr[v] == kInvalidVid || multi[v] != 0 || loop[v] != 0) continue;
    const vid_t u = nbr[v];
    const bool mutual = nbr[u] == v && multi[u] == 0 && loop[u] == 0;
    if (mutual && v < u) continue;  // the smaller id of a leaf pair anchors
    plan.anchor[v] = u;
    plan.any = true;
  }
  if (!plan.any) return plan;
  for (const Edge& e : edges) {
    const vid_t u = plan.anchor[e.u] != kInvalidVid ? plan.anchor[e.u] : e.u;
    const vid_t v = plan.anchor[e.v] != kInvalidVid ? plan.anchor[e.v] : e.v;
    plan.edges.add(u, v, e.w);
  }
  return plan;
}

/// Rewrites the fleet's result for the original graph: every folded vertex
/// takes its anchor's community in the final labels and in the level-0
/// label vector. The folded singletons' ghost communities become empty;
/// their dense ids stay in the id space (num_communities is the id-space
/// size, so the labels < num_communities invariant holds) and
/// Hierarchy::tree drops the now-empty nodes. The reported modularity
/// needs no correction — the fold preserves it exactly (see
/// plan_vertex_following).
void unfold_vertex_following(const FoldPlan& plan, ParResult& result) {
  if (!plan.any || result.levels.empty()) return;
  auto& l0 = result.levels.front();
  for (vid_t v = 0; v < static_cast<vid_t>(plan.anchor.size()); ++v) {
    const vid_t a = plan.anchor[v];
    if (a == kInvalidVid) continue;
    result.final_labels[v] = result.final_labels[a];
    l0.labels[v] = l0.labels[a];
  }
}

/// Shared post-ingestion driver: runs the level loop on an initialized
/// engine and assembles the (rank-identical) result.
ParResult run_levels(pml::Comm& comm, RankEngine& engine, vid_t n, const ParOptions& opts,
                     WallTimer& busy) {
  ParResult result;
  result.transport = comm.transport_name();
  result.final_labels.resize(n);
  if (engine.two_m() <= 0) {
    // Weightless graph: every vertex is its own community, Q = 0 by
    // convention (Eq. 3 is undefined at m = 0). Avoids NaNs downstream.
    std::iota(result.final_labels.begin(), result.final_labels.end(), vid_t{0});
    result.rank_seconds = comm.allgather(busy.seconds());
    return result;
  }
  std::iota(result.final_labels.begin(), result.final_labels.end(), vid_t{0});

  // All TrafficStats fields reduce together in one collective round
  // (they used to be five separate allreduces of skew per level).
  const auto sum_traffic = [&comm](const TrafficStats& local) {
    return comm.allreduce(local, [](const TrafficStats& a, const TrafficStats& b) {
      TrafficStats sum = a;
      sum += b;
      return sum;
    });
  };

  double prev_q = -2.0;  // below any attainable modularity
  for (int level_idx = 0; level_idx < opts.max_levels; ++level_idx) {
    bool compressed = false;
    const TrafficStats level_start = comm.stats();
    LouvainLevel level = engine.run_level(compressed);
    // Per-level communication volume: this rank's delta over the level,
    // summed across ranks. (The reduction below counts toward the *next*
    // level's delta — one rank-identical collective of skew.)
    level.traffic = sum_traffic(traffic_delta(comm.stats(), level_start));

    const bool improved = level.modularity - prev_q >= opts.q_tolerance;
    if (!improved && level_idx > 0) break;

    for (vid_t v = 0; v < n; ++v) {
      result.final_labels[v] = level.labels[result.final_labels[v]];
    }
    prev_q = level.modularity;
    result.final_modularity = level.modularity;
    result.levels.push_back(std::move(level));
    if (!compressed) break;
    // A frontier run whose disturbed region never produced a move left
    // the partition exactly as warm-seeded; the coarser levels were
    // already converged by the epoch that produced that seed, so stop
    // after level 0 instead of re-walking the whole hierarchy.
    if (level_idx == 0 && engine.frontier_was_enabled() && engine.last_level_moves() == 0) {
      break;
    }
  }

  // Aggregate telemetry. Phase timers reduce by max over ranks (the
  // critical path); traffic sums; wall time gathers per rank.
  PhaseTimers reduced;
  for (const auto& [name, secs] : engine.timers().items()) {
    reduced.add(name, comm.allreduce_max(secs));
  }
  result.timers = reduced;

  result.traffic = sum_traffic(comm.stats());
  result.rank_seconds = comm.allgather(busy.seconds());
  return result;
}

}  // namespace

ParResult louvain_rank(pml::Comm& comm, const graph::EdgeList& edges, vid_t n_vertices,
                       const ParOptions& opts) {
  opts.validate();
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  if (n == 0) {
    ParResult empty;
    empty.transport = comm.transport_name();
    return empty;
  }
  WallTimer busy;
  RankEngine engine(comm, opts);
  engine.init_from_edges(edges, n);
  return run_levels(comm, engine, n, opts, busy);
}

// ---------------------------------------------------------------------------
// One-shot launch bodies. These are the non-deprecated internals: both the
// plv::louvain front door and the [[deprecated]] core::louvain_parallel*
// wrappers forward here, so the library itself never calls a deprecated
// symbol (the CI builds with -Werror).
// ---------------------------------------------------------------------------

static ParResult parallel_impl(const graph::EdgeList& edges, vid_t n_vertices,
                               const ParOptions& opts) {
  opts.validate();
  const pml::TransportKind kind = pml::resolve_transport(opts.transport);
  // Rank 0 (a fleet thread under the thread transport) hands its result
  // across to the launching thread; the guarded slot names that edge even
  // though Runtime::run's join already orders it.
  struct {
    plv::Mutex mu;
    ParResult value PLV_GUARDED_BY(mu);
  } result;
  {
    plv::MutexLock lock(result.mu);
    result.value.transport = pml::transport_kind_name(kind);
  }
  // Vertex-following is a whole-graph preprocessing pass, so it lives on
  // the launch side: the fleet runs the folded list (against the original
  // vertex count — folded vertices stay as isolated singletons, keeping
  // ids and ownership stable) and the unfold rewrites the result after
  // the ranks have joined.
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  FoldPlan fold;
  const graph::EdgeList* run_edges = &edges;
  if (opts.refine.vertex_following && n > 0) {
    fold = plan_vertex_following(edges, n);
    if (fold.any) run_edges = &fold.edges;
  }
  pml::Runtime::run(
      opts.nranks,
      [&](pml::Comm& comm) {
        ParResult local = louvain_rank(comm, *run_edges, n, opts);
        if (comm.rank() == 0) {
          plv::MutexLock lock(result.mu);
          result.value = std::move(local);
        }
      },
      kind, pml::resolve_validate(opts.validate_transport), opts.tcp_options(),
      opts.hybrid_options());
  plv::MutexLock lock(result.mu);
  unfold_vertex_following(fold, result.value);
  return std::move(result.value);
}

static ParResult warm_impl(const graph::EdgeList& edges, vid_t n_vertices,
                           const std::vector<vid_t>& initial_labels,
                           const ParOptions& opts) {
  opts.validate();
  const pml::TransportKind kind = pml::resolve_transport(opts.transport);
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  struct {
    plv::Mutex mu;
    ParResult value PLV_GUARDED_BY(mu);
  } result;
  {
    plv::MutexLock lock(result.mu);
    result.value.transport = pml::transport_kind_name(kind);
    if (n == 0) return std::move(result.value);
  }
  // Seeds taken before an EdgeDelta stay usable after it: vertices the
  // seed does not cover and labels referencing vanished vertices become
  // singletons instead of rejecting the whole seed.
  std::vector<vid_t> labels = normalize_warm_labels(initial_labels, n);
  FoldPlan fold;
  const graph::EdgeList* run_edges = &edges;
  if (opts.refine.vertex_following) {
    fold = plan_vertex_following(edges, n);
    if (fold.any) {
      run_edges = &fold.edges;
      // A folded vertex is an isolated ghost inside the fleet; seeding it
      // into a real community would inflate that community's member count
      // (which the singleton-swap guard consults), so its warm label
      // resets to self. The unfold reattaches it regardless of the seed.
      for (vid_t v = 0; v < n; ++v) {
        if (fold.anchor[v] != kInvalidVid) labels[v] = v;
      }
    }
  }
  pml::Runtime::run(
      opts.nranks,
      [&](pml::Comm& comm) {
        WallTimer busy;
        RankEngine engine(comm, opts);
        engine.init_from_edges(*run_edges, n);
        engine.warm_start(labels);
        ParResult local = run_levels(comm, engine, n, opts, busy);
        if (comm.rank() == 0) {
          plv::MutexLock lock(result.mu);
          result.value = std::move(local);
        }
      },
      kind, pml::resolve_validate(opts.validate_transport), opts.tcp_options(),
      opts.hybrid_options());
  plv::MutexLock lock(result.mu);
  unfold_vertex_following(fold, result.value);
  return std::move(result.value);
}

static ParResult streamed_impl(const EdgeSliceFn& slice_of, vid_t n_vertices,
                               const ParOptions& opts) {
  opts.validate();
  const pml::TransportKind kind = pml::resolve_transport(opts.transport);
  struct {
    plv::Mutex mu;
    ParResult value PLV_GUARDED_BY(mu);
  } result;
  {
    plv::MutexLock lock(result.mu);
    result.value.transport = pml::transport_kind_name(kind);
    if (n_vertices == 0) return std::move(result.value);
  }
  pml::Runtime::run(
      opts.nranks,
      [&](pml::Comm& comm) {
        WallTimer busy;
        RankEngine engine(comm, opts);
        const graph::EdgeList slice = slice_of(comm.rank(), comm.nranks());
        engine.init_from_slice(slice, n_vertices);
        ParResult local = run_levels(comm, engine, n_vertices, opts, busy);
        if (comm.rank() == 0) {
          plv::MutexLock lock(result.mu);
          result.value = std::move(local);
        }
      },
      kind, pml::resolve_validate(opts.validate_transport), opts.tcp_options(),
      opts.hybrid_options());
  plv::MutexLock lock(result.mu);
  return std::move(result.value);
}

#if defined(PLV_COMPAT)
ParResult louvain_parallel(const graph::EdgeList& edges, vid_t n_vertices,
                           const ParOptions& opts) {
  return parallel_impl(edges, n_vertices, opts);
}

ParResult louvain_parallel_warm(const graph::EdgeList& edges, vid_t n_vertices,
                                const std::vector<vid_t>& initial_labels,
                                const ParOptions& opts) {
  return warm_impl(edges, n_vertices, initial_labels, opts);
}

ParResult louvain_parallel_streamed(const EdgeSliceFn& slice_of, vid_t n_vertices,
                                    const ParOptions& opts) {
  return streamed_impl(slice_of, n_vertices, opts);
}
#endif  // PLV_COMPAT

// ---------------------------------------------------------------------------
// The resident fleet body behind plv::Session (core/session.hpp). Every
// rank holds a patchable replica of the evolving edge list plus its slice
// of the level-0 In_Table; rank 0 — which every transport runs inside the
// calling process — doubles as the command pump.
// ---------------------------------------------------------------------------

namespace detail {

namespace {

/// Fixed-size header of one broadcast fleet command.
struct WireCmd {
  std::uint32_t kind{0};
  vid_t n_floor{0};
  std::uint64_t seq{0};
};

/// Rank-0-sourced broadcast built from the one collective every transport
/// shares: peers contribute nothing, so the allgatherv concatenation *is*
/// rank 0's payload. Peers park here between batches — the fleet stays
/// warm with no polling on any transport.
template <typename T>
std::vector<T> bcast_from_root(pml::Comm& comm, std::vector<T> payload) {
  if (comm.rank() != 0) payload.clear();
  return comm.allgatherv(payload);
}

}  // namespace

void session_rank_body(pml::Comm& comm, SessionShared& shared) {
  const ParOptions& opts = shared.opts;
  const int me = comm.rank();
  const int nranks = comm.nranks();

  // ---- Resident per-rank state. ----
  graph::EdgeList edges;
  if (shared.init_stream != nullptr) {
    // Gather the stream's slices once: unlike one-shot streamed ingestion,
    // a Session patches its replica in place across batches, so every rank
    // must hold the materialized list.
    const graph::EdgeList slice = (*shared.init_stream)(me, nranks);
    const std::vector<Edge> mine(slice.begin(), slice.end());
    for (const Edge& e : comm.allgatherv(mine)) edges.add(e.u, e.v, e.w);
  } else {
    edges = shared.init_edges;
  }
  vid_t n = std::max(shared.init_n, edges.vertex_count());

  hashing::EdgeTable in0(0, opts.table_max_load, opts.hash);
  {
    const graph::Partition1D part(opts.partition, n, nranks);
    fill_in_table(in0, edges, part, me, nranks);
  }
  std::vector<vid_t> labels;  // latest full label vector (every rank)
  int batches_since_cold = 0;

  // One detection pass over the resident table. The engine is built fresh
  // per pass on purpose: persistent engine scratch (table capacities in
  // particular) would shift scan orders away from what a one-shot cold
  // run produces, breaking the cold path's bit-for-bit equivalence.
  const auto detect = [&](const std::vector<vid_t>* warm,
                          const std::vector<vid_t>* frontier_seeds) {
    WallTimer busy;
    RankEngine engine(comm, opts);
    engine.init_from_table(in0, n);
    if (warm != nullptr) engine.warm_start(*warm);
    if (frontier_seeds != nullptr) engine.enable_frontier(*frontier_seeds);
    return run_levels(comm, engine, n, opts, busy);
  };

  const auto publish = [&](std::uint64_t seq, const ParResult& r, bool incremental) {
    labels = r.final_labels;
    if (me != 0) return;
    auto snap = std::make_shared<LabelSnapshot>();
    snap->epoch = seq;
    snap->n_vertices = n;
    snap->num_communities =
        r.levels.empty() ? static_cast<std::size_t>(n) : r.levels.back().num_communities;
    snap->modularity = r.final_modularity;
    snap->incremental = incremental;
    snap->labels = r.final_labels;
    {
      // Publish side of the snapshot contract (see SessionShared::snap):
      // the fully built snapshot is swapped in and the epoch bumped under
      // `mu`; the unlock is the release edge readers pair with.
      plv::MutexLock lock(shared.mu);
      shared.snap = std::move(snap);
      shared.completed = seq;
    }
    shared.cv.notify_all();
  };

  // ---- Epoch 0: the initial full run. ----
  {
    std::vector<vid_t> warm;
    const std::vector<vid_t>* seed = nullptr;
    if (!shared.init_labels.empty()) {
      warm = normalize_warm_labels(shared.init_labels, n);
      seed = &warm;
    }
    publish(0, detect(seed, nullptr), false);
  }

  // ---- The command pump. Only rank 0 (same process as the Session
  // handle on every transport) touches the shared queue; peers learn each
  // command through the broadcast. ----
  for (;;) {
    WireCmd cmd{};
    std::vector<Edge> ins;
    std::vector<Edge> del;
    if (me == 0) {
      plv::MutexLock lock(shared.mu);
      while (!shared.has_command) shared.cv.wait(shared.mu);
      shared.has_command = false;
      cmd = WireCmd{static_cast<std::uint32_t>(shared.command.kind),
                    shared.command.delta.n_vertices, shared.command.seq};
      ins.assign(shared.command.delta.inserts.begin(), shared.command.delta.inserts.end());
      del.assign(shared.command.delta.removals.begin(), shared.command.delta.removals.end());
    }
    cmd = bcast_from_root(comm, std::vector<WireCmd>{cmd}).front();
    ins = bcast_from_root(comm, std::move(ins));
    del = bcast_from_root(comm, std::move(del));
    if (cmd.kind == static_cast<std::uint32_t>(SessionCommand::Kind::kShutdown)) return;

    EdgeDelta delta;
    delta.n_vertices = cmd.n_floor;
    for (const Edge& e : ins) delta.inserts.add(e.u, e.v, e.w);
    for (const Edge& e : del) delta.removals.add(e.u, e.v, e.w);

    // Throws when a removal names no existing record — fleet-fatal, and
    // identical on every rank (same replica, same batch), so the whole
    // fleet fails the same way and Session::apply rethrows it.
    const std::size_t edges_before = edges.size();
    const vid_t new_n = std::max(n, apply_edge_delta(edges, delta));
    ++batches_since_cold;

    const bool cadence_due = opts.streaming.rebuild_every_batches > 0 &&
                             batches_since_cold >= opts.streaming.rebuild_every_batches;
    const bool too_big =
        edges_before == 0 ||
        static_cast<double>(delta.size()) >
            opts.streaming.max_delta_fraction * static_cast<double>(edges_before);
    // The incremental path needs ownership that survives vertex growth
    // (cyclic) and the PropMsg retraction encoding (ids below the bit).
    const bool incremental_capable =
        opts.partition == graph::PartitionKind::kCyclic && new_n < kRetractBit;

    if (cadence_due || too_big || !incremental_capable) {
      // Cold rebuild inside the resident fleet: refill the In_Table from
      // scratch — a fresh fill_in_table layout, hence bit-identical to a
      // one-shot run on the updated list — and run from singletons.
      const graph::Partition1D part(opts.partition, new_n, nranks);
      fill_in_table(in0, edges, part, me, nranks);
      n = new_n;
      batches_since_cold = 0;
      publish(cmd.seq, detect(nullptr, nullptr), false);
      continue;
    }

    // Incremental apply: patch the resident In_Table in place — the same
    // retraction/assertion idea the Out_Table runs per iteration, applied
    // to the level-0 topology — then re-refine from the previous epoch's
    // labels, restricted to the disturbed frontier when configured.
    const graph::Partition1D part(opts.partition, new_n, nranks);
    const auto patch = [&](const graph::EdgeList& batch, bool insert) {
      for (const Edge& e : batch) {
        if (e.u == e.v) {
          if (part.owner(e.u) == me) {
            if (insert) {
              in0.insert_or_add(pack_key(e.u, e.u), 2 * e.w);
            } else {
              in0.retract(pack_key(e.u, e.u), 2 * e.w);
            }
          }
          continue;
        }
        if (part.owner(e.v) == me) {
          if (insert) {
            in0.insert_or_add(pack_key(e.u, e.v), e.w);
          } else {
            in0.retract(pack_key(e.u, e.v), e.w);
          }
        }
        if (part.owner(e.u) == me) {
          if (insert) {
            in0.insert_or_add(pack_key(e.v, e.u), e.w);
          } else {
            in0.retract(pack_key(e.v, e.u), e.w);
          }
        }
      }
    };
    patch(delta.removals, /*insert=*/false);
    patch(delta.inserts, /*insert=*/true);
    n = new_n;

    const std::vector<vid_t> warm = normalize_warm_labels(std::move(labels), n);
    std::vector<vid_t> seeds;
    seeds.reserve(2 * delta.size());
    for (const Edge& e : delta.removals) {
      seeds.push_back(e.u);
      seeds.push_back(e.v);
    }
    for (const Edge& e : delta.inserts) {
      seeds.push_back(e.u);
      seeds.push_back(e.v);
    }
    publish(cmd.seq, detect(&warm, opts.streaming.frontier ? &seeds : nullptr), true);
  }
}

}  // namespace detail

}  // namespace plv::core

namespace plv {

Result louvain(const GraphSource& graph, const core::ParOptions& opts) {
  graph.require_live("louvain");
  if (graph.stream() != nullptr) {
    return core::streamed_impl(*graph.stream(), graph.n_vertices(), opts);
  }
  if (graph.edges() == nullptr) {
    throw std::invalid_argument("louvain: GraphSource carries no edges and no stream");
  }
  if (graph.delta() != nullptr) {
    // The cold-baseline view of a streamed update: materialize the updated
    // list, then run cold on it — what Session::apply must match under the
    // deterministic streaming plan.
    graph::EdgeList updated = *graph.edges();
    const vid_t n =
        std::max(graph.n_vertices(), apply_edge_delta(updated, *graph.delta()));
    return core::parallel_impl(updated, n, opts);
  }
  if (graph.initial_labels() != nullptr) {
    return core::warm_impl(*graph.edges(), graph.n_vertices(), *graph.initial_labels(),
                           opts);
  }
  return core::parallel_impl(*graph.edges(), graph.n_vertices(), opts);
}

}  // namespace plv
