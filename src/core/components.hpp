// Distributed connected components on the Louvain machinery.
//
// The paper closes by arguing its dual-hash-table + fine-grained messaging
// design "can also be used to analyze other large-scale dynamic graph
// problems" (Section VII). This module is that claim made concrete: the
// same 1-D ownership, the same In_Table layout, the same aggregator-based
// propagation — running min-label frontier exchanges instead of
// modularity refinement.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/options.hpp"
#include "graph/edge_list.hpp"
#include "pml/comm.hpp"

namespace plv::core {

struct ComponentsResult {
  std::vector<vid_t> component;  // per vertex: min vertex id of its component
  std::size_t num_components{0};
  int rounds{0};  // propagation rounds until quiescence
};

/// Computes connected components of the undirected graph over
/// `opts.nranks` ranks. Deterministic; component ids are the minimum
/// vertex id in each component.
[[nodiscard]] ComponentsResult connected_components_parallel(const graph::EdgeList& edges,
                                                             vid_t n_vertices,
                                                             const ParOptions& opts);

/// Sequential union-find reference (used by tests and small callers).
[[nodiscard]] ComponentsResult connected_components_seq(const graph::EdgeList& edges,
                                                        vid_t n_vertices);

}  // namespace plv::core
