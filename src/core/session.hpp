// plv::Session — the long-lived streaming front door.
//
// A Session keeps a whole fleet resident: the ranks spawned at
// construction stay alive (threads, forked processes, TCP mesh peers, or
// hybrid groups — whatever ParOptions::transport selects), each holding
// its replica of the edge list, its slice of the level-0 In_Table, and
// the current composed partition. apply(EdgeDelta) patches the In_Table
// in place and re-refines only the disturbed region (StreamingPlan
// controls the frontier and the cold-rebuild cadence); snapshot() hands
// out immutable epoch-stamped partitions that readers keep for as long
// as they like, without ever blocking an in-flight apply.
//
// How the fleet stays warm: every pml transport runs rank 0 inside the
// calling process (threads trivially; proc/tcp/hybrid fork only ranks
// 1..n-1), so rank 0's body doubles as the command pump — it blocks on
// the Session's queue, then broadcasts each command to the peers through
// ordinary Comm collectives. Peers spend idle time parked in that
// broadcast; no transport is torn down between batches.
//
// Threading contract: apply()/close() serialize against each other;
// snapshot()/query()/community_members()/epoch() may be called from any
// thread at any time (they take the queue mutex only for a pointer copy,
// never for the duration of a refine).
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "common/louvain.hpp"
#include "common/sync.hpp"
#include "core/options.hpp"

namespace plv {

namespace pml {
class Comm;
}  // namespace pml

namespace core::detail {

/// One queued fleet command. kApply carries the delta; kShutdown ends the
/// rank bodies (and thereby the fleet).
struct SessionCommand {
  enum class Kind : std::uint32_t { kApply = 1, kShutdown = 2 };
  Kind kind{Kind::kApply};
  EdgeDelta delta;
  std::uint64_t seq{0};
};

/// State shared between the Session handle (user threads) and rank 0 of
/// the resident fleet. Only the rank-0 process ever touches the mutex /
/// condition variable / snapshot slot; forked peers see a copy-on-write
/// image of the init fields and learn everything else through Comm
/// broadcasts.
struct SessionShared {
  // Immutable after construction (read by every rank, including forked
  // children via the pre-fork memory image).
  graph::EdgeList init_edges;
  std::vector<vid_t> init_labels;  // empty = cold initial run
  const EdgeSliceFn* init_stream{nullptr};
  vid_t init_n{0};
  core::ParOptions opts;

  // Command queue + completion signalling (rank-0 process only). `mu`
  // guards everything below it; the fields above are frozen before the
  // fleet spawns and need no capability.
  plv::Mutex mu;
  plv::CondVar cv;
  bool has_command PLV_GUARDED_BY(mu){false};
  SessionCommand command PLV_GUARDED_BY(mu);
  std::uint64_t completed PLV_GUARDED_BY(mu){0};  // epoch of the latest published snapshot
  bool dead PLV_GUARDED_BY(mu){false};
  std::exception_ptr error PLV_GUARDED_BY(mu);

  // Latest published snapshot. Publication contract: the rank-0 pump
  // builds the LabelSnapshot outside any lock, then swaps this
  // shared_ptr and bumps `completed` under `mu` (release side); readers
  // copy the pointer under the same `mu` (acquire side) and use the
  // immutable snapshot lock-free from then on. The mutex hand-off is the
  // only release/acquire edge a reader needs — everything reachable from
  // `snap` was written before the publish-side unlock.
  std::shared_ptr<const LabelSnapshot> snap PLV_GUARDED_BY(mu);
};

/// The SPMD body every rank of the resident fleet runs; defined in
/// louvain_par.cpp next to the engine it drives.
void session_rank_body(::plv::pml::Comm& comm, SessionShared& shared);

}  // namespace core::detail

class Session {
 public:
  /// Spawns the fleet, runs the initial full detection on `source`
  /// (cold, warm-seeded, delta-composed, or streamed — any GraphSource
  /// mode), and publishes epoch 0 before returning. The source's
  /// referents are only borrowed for the duration of the constructor:
  /// the Session copies the edge list (or gathers the stream's slices)
  /// into fleet-resident state.
  ///
  /// Requirements checked here: StreamingPlan::frontier needs the cyclic
  /// partition (block ownership shifts with the vertex count), and a
  /// multi-host TCP fleet can only be driven from its rank-0 process.
  Session(const GraphSource& source, const core::ParOptions& opts);

  /// Shuts the fleet down (close()) if still running.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Applies one batch of edge updates and blocks until the new epoch is
  /// published, returning its snapshot. Throws if the batch is invalid
  /// (e.g. a removal naming no existing edge) or the fleet has died —
  /// after a throw the Session is dead and only close() remains useful.
  std::shared_ptr<const LabelSnapshot> apply(const EdgeDelta& batch);

  /// Latest published snapshot (never null after construction). Readers
  /// keep the returned pointer as long as they like; in-flight applies
  /// publish new epochs without touching it.
  [[nodiscard]] std::shared_ptr<const LabelSnapshot> snapshot() const;

  /// Epoch of the latest published snapshot (0 = initial run).
  [[nodiscard]] std::uint64_t epoch() const;

  /// Community of vertex v in the latest snapshot.
  [[nodiscard]] vid_t query(vid_t v) const;

  /// Members of community c in the latest snapshot, ascending.
  [[nodiscard]] std::vector<vid_t> community_members(vid_t c) const;

  /// Stops the fleet and joins it. Idempotent; called by the destructor.
  void close();

 private:
  std::shared_ptr<const LabelSnapshot> wait_for_epoch(std::uint64_t seq);

  std::unique_ptr<core::detail::SessionShared> shared_;
  std::thread fleet_;
  plv::Mutex apply_mu_;  // serializes apply()/close() callers
  // last command seq handed to the fleet
  std::uint64_t submitted_ PLV_GUARDED_BY(apply_mu_){0};
  bool closed_ PLV_GUARDED_BY(apply_mu_){false};
};

}  // namespace plv
