#include "core/hierarchy.hpp"

#include <ostream>
#include <stdexcept>

namespace plv::core {

Hierarchy::Hierarchy(const LouvainResult& result) {
  n_ = static_cast<vid_t>(result.final_labels.size());
  level_labels_.reserve(result.levels.size());
  levels_.reserve(result.levels.size());
  std::vector<vid_t> composed(n_);
  for (vid_t v = 0; v < n_; ++v) composed[v] = v;
  for (const LouvainLevel& level : result.levels) {
    level_labels_.push_back(level.labels);
    for (vid_t v = 0; v < n_; ++v) composed[v] = level.labels[composed[v]];
    levels_.push_back(composed);
  }
}

std::size_t Hierarchy::communities_at(std::size_t level) const {
  if (level >= level_labels_.size()) throw std::out_of_range("Hierarchy: level");
  vid_t max_label = 0;
  for (vid_t c : level_labels_[level]) max_label = std::max(max_label, c);
  return level_labels_[level].empty() ? 0 : static_cast<std::size_t>(max_label) + 1;
}

const std::vector<vid_t>& Hierarchy::labels_at(std::size_t level) const {
  if (level >= levels_.size()) throw std::out_of_range("Hierarchy: level");
  return levels_[level];
}

std::vector<vid_t> Hierarchy::members(std::size_t level, vid_t c) const {
  const auto& labels = labels_at(level);
  std::vector<vid_t> out;
  for (vid_t v = 0; v < n_; ++v) {
    if (labels[v] == c) out.push_back(v);
  }
  return out;
}

vid_t Hierarchy::parent_of(std::size_t level, vid_t c) const {
  if (level >= level_labels_.size()) throw std::out_of_range("Hierarchy: level");
  if (level + 1 >= level_labels_.size()) return kInvalidVid;
  // Community c of `level` is vertex c of level+1's input graph.
  const auto& next = level_labels_[level + 1];
  if (c >= next.size()) throw std::out_of_range("Hierarchy: community");
  return next[c];
}

std::vector<TreeNode> Hierarchy::tree() const {
  std::vector<TreeNode> nodes;
  for (std::size_t level = 0; level < level_labels_.size(); ++level) {
    const std::size_t k = communities_at(level);
    std::vector<std::uint64_t> sizes(k, 0);
    for (vid_t v = 0; v < n_; ++v) ++sizes[levels_[level][v]];
    for (vid_t c = 0; c < static_cast<vid_t>(k); ++c) {
      // An id can hold zero original vertices: vertex-following leaves the
      // folded singletons' ghost communities in the dense id space but
      // reattaches their members to the anchors. Empty ids are bookkeeping,
      // not communities — the tree skips them.
      if (sizes[c] == 0) continue;
      nodes.push_back(TreeNode{level, c, parent_of(level, c), sizes[c]});
    }
  }
  return nodes;
}

void Hierarchy::write_tree(std::ostream& os) const {
  // Blondel format: concatenated levels of "child parent" pairs with ids
  // renumbered per level block. Level -1 (original vertices -> level-0
  // communities) first.
  for (std::size_t level = 0; level < level_labels_.size(); ++level) {
    const auto& labels = level_labels_[level];
    for (std::size_t child = 0; child < labels.size(); ++child) {
      os << child << ' ' << labels[child] << '\n';
    }
  }
}

}  // namespace plv::core
