// Parallel Louvain for distributed-memory execution — the paper's core
// contribution (Algorithms 2–5).
//
// Every rank owns a 1-D slice of the vertices plus the communities whose
// label vertex it owns. Two hash tables per rank carry the graph:
//
//   In_Table  — ((v, u), w) for owned u: the in-edges, immutable within a
//               level; the authoritative copy of the topology.
//   Out_Table — ((u, c), w) for owned u: the out-edge weight of u into
//               each neighboring *community* c. Built from the In_Table by
//               the level's first STATE PROPAGATION, then maintained
//               *incrementally*: moved vertices ship retraction/assertion
//               pairs that patch the table in place, with full rebuilds on
//               a configurable cadence (ParOptions::full_rebuild_every)
//               and whenever a rebuild would ship fewer records.
//
// One outer level = STATE PROPAGATION → REFINE (inner loop: FIND BEST
// COMMUNITY, threshold ΔQ̂ selection, UPDATE COMMUNITY INFORMATION,
// re-propagation, Σin/modularity) → GRAPH RECONSTRUCTION (all-to-all
// rewrite of the Out_Table into the next level's In_Table).
#pragma once

#include <functional>

#include "common/louvain.hpp"
#include "core/options.hpp"
#include "graph/edge_list.hpp"
#include "pml/comm.hpp"

namespace plv::core {

/// Parallel run artifact: the common hierarchy plus communication volume.
/// (The type now lives in common/louvain.hpp as plv::Result so the
/// plv::louvain front door can return it; this alias keeps the historical
/// core-level name working.)
using ParResult = plv::Result;

#if defined(PLV_COMPAT)
/// Runs the parallel algorithm over `edges` on `opts.nranks` ranks,
/// returning per-level partitions, modularity, traces, phase timers
/// (Fig. 8 names) and traffic counters. The rank substrate is
/// opts.transport (threads by default, forked processes with kProc),
/// overridable via PLV_TRANSPORT. `n_vertices` may be 0 to size from the
/// edge list. Deterministic for fixed options and input, on every
/// transport.
///
/// Compat-only (configure with -DPLV_COMPAT=ON): the GraphSource front
/// door covers this and the other two ingestion modes behind one entry
/// point, and is where new capabilities (EdgeDelta composition, Session
/// residency, vertex-following) land.
[[deprecated(
    "call plv::louvain(plv::GraphSource::from_edges(edges, n), opts) instead")]]
[[nodiscard]] ParResult louvain_parallel(const graph::EdgeList& edges, vid_t n_vertices,
                                         const ParOptions& opts);
#endif  // PLV_COMPAT

/// SPMD entry point: the body of one rank, running against an existing
/// communicator (exposed so tests can drive the engine inside their own
/// Runtime and inspect per-rank behavior). All ranks must pass the same
/// `edges`, `n_vertices`, and options. Rank 0's return value carries the
/// full result; other ranks return an empty result.
///
/// This is a test seam, not an application entry point — production code
/// goes through plv::louvain / plv::Session, which own the fleet launch
/// (the repo lint bans louvain_rank calls outside tests/).
[[nodiscard]] ParResult louvain_rank(pml::Comm& comm, const graph::EdgeList& edges,
                                     vid_t n_vertices, const ParOptions& opts);

/// Produces the edge-list slice a given rank contributes to the input
/// graph (now defined in common/louvain.hpp for the plv::louvain front
/// door; aliased here for existing call sites).
using EdgeSliceFn = plv::EdgeSliceFn;

#if defined(PLV_COMPAT)
/// Distributed ingestion: no rank ever sees the whole edge list. Each
/// rank generates its slice and streams the In_Table entries to the edge
/// endpoints' owners through the coalescing aggregators — the way the
/// paper's largest runs feed 138 G-edge R-MAT/BTER streams. Produces
/// bit-identical results to a from_edges run on the concatenated slices
/// (verified by tests/streamed_ingest_test).
///
/// Compat-only (-DPLV_COMPAT=ON), superseded by the GraphSource front door.
[[deprecated(
    "call plv::louvain(plv::GraphSource::from_stream(slice_of, n), opts) instead")]]
[[nodiscard]] ParResult louvain_parallel_streamed(const EdgeSliceFn& slice_of,
                                                  vid_t n_vertices,
                                                  const ParOptions& opts);
#endif  // PLV_COMPAT

#if defined(PLV_COMPAT)
/// Warm start — the payoff of the dual-hash dynamic-graph design the
/// paper advertises (Sections I-B, VII): when the graph evolves (edges
/// added/removed), restart refinement from the previous run's partition
/// instead of from singletons. The In_Table is rebuilt from the new
/// edges (it is rewritten wholesale every level anyway); the community
/// state (labels, Σtot, member counts) is seeded from `initial_labels`
/// (one label per vertex; label values are vertex ids or any ids < n).
/// Converges in far fewer inner iterations than a cold start when the
/// change is incremental (tests/warm_start_test). Seeds are normalized
/// (normalize_warm_labels): uncovered vertices and labels referencing
/// vanished vertices become singletons instead of rejecting the seed.
///
/// Deprecated in favor of the GraphSource front door — and for repeated
/// updates, plv::Session keeps the fleet and the In_Table resident
/// instead of rebuilding both per call.
[[deprecated(
    "call plv::louvain(plv::GraphSource::from_edges_warm(edges, labels, n), opts) "
    "instead; for repeated updates use plv::Session")]]
[[nodiscard]] ParResult louvain_parallel_warm(const graph::EdgeList& edges,
                                              vid_t n_vertices,
                                              const std::vector<vid_t>& initial_labels,
                                              const ParOptions& opts);
#endif  // PLV_COMPAT

}  // namespace plv::core
