// Hierarchy navigation and export.
//
// The paper stresses that — unlike most parallel competitors (Section VI:
// "All those algorithms fail to unfold the hierarchical organization") —
// its algorithm produces the full multi-level community structure. This
// module makes that structure usable: per-level membership queries, the
// community tree, and the classic Blondel "tree" text format for
// interoperability with the original Louvain tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/louvain.hpp"
#include "common/types.hpp"

namespace plv::core {

/// One node of the community tree: a community at some level.
struct TreeNode {
  std::size_t level{0};      // 0 = first coarsening
  vid_t community{0};        // dense id within that level
  vid_t parent{kInvalidVid}; // community at level+1 containing this one
  std::uint64_t size{0};     // original vertices contained
};

class Hierarchy {
 public:
  /// Builds the navigation structure from a (sequential or parallel)
  /// Louvain result over `n` original vertices.
  explicit Hierarchy(const LouvainResult& result);

  [[nodiscard]] std::size_t num_levels() const noexcept { return levels_.size(); }
  [[nodiscard]] vid_t num_vertices() const noexcept { return n_; }

  /// Number of communities at `level`.
  [[nodiscard]] std::size_t communities_at(std::size_t level) const;

  /// Labels of the *original* vertices at `level` (composition of all
  /// coarsenings up to and including it).
  [[nodiscard]] const std::vector<vid_t>& labels_at(std::size_t level) const;

  /// Original vertices belonging to community `c` of `level`.
  [[nodiscard]] std::vector<vid_t> members(std::size_t level, vid_t c) const;

  /// The community at `level + 1` that contains community `c` of `level`
  /// (kInvalidVid at the top level).
  [[nodiscard]] vid_t parent_of(std::size_t level, vid_t c) const;

  /// All tree nodes, level by level.
  [[nodiscard]] std::vector<TreeNode> tree() const;

  /// Writes the Blondel tree format: one "node parent" pair per line,
  /// levels concatenated, original vertices first. Compatible with the
  /// reference implementation's hierarchy tools.
  void write_tree(std::ostream& os) const;

 private:
  vid_t n_{0};
  std::vector<std::vector<vid_t>> level_labels_;  // per level: label per level-vertex
  std::vector<std::vector<vid_t>> levels_;        // per level: label per ORIGINAL vertex
};

}  // namespace plv::core
