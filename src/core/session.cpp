#include "core/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "pml/comm.hpp"

namespace plv {

using core::detail::SessionCommand;
using core::detail::SessionShared;

Session::Session(const GraphSource& source, const core::ParOptions& opts) {
  source.require_live("Session");
  opts.validate();
  if (opts.streaming.frontier && opts.partition == graph::PartitionKind::kBlock) {
    throw std::invalid_argument(
        "Session: StreamingPlan::frontier requires the cyclic partition — block "
        "ownership shifts when the vertex count grows, which would invalidate the "
        "resident In_Table slices (set streaming.frontier = false or "
        "partition = kCyclic)");
  }
  if (opts.transport == pml::TransportKind::kTcp && opts.tcp_rank > 0) {
    throw std::invalid_argument(
        "Session: a multi-host tcp fleet is driven from its rank-0 process; this "
        "process is tcp_rank " + std::to_string(opts.tcp_rank) +
        " (run the Session handle where tcp_rank is 0)");
  }

  shared_ = std::make_unique<SessionShared>();
  shared_->opts = opts;
  shared_->init_n = source.n_vertices();
  if (source.stream() != nullptr) {
    shared_->init_stream = source.stream();
  } else {
    if (source.edges() == nullptr) {
      throw std::invalid_argument("Session: GraphSource carries no edges and no stream");
    }
    shared_->init_edges = *source.edges();  // owned replica from here on
    if (source.delta() != nullptr) {
      shared_->init_n =
          std::max(shared_->init_n, apply_edge_delta(shared_->init_edges, *source.delta()));
    }
    if (source.initial_labels() != nullptr) shared_->init_labels = *source.initial_labels();
  }

  SessionShared& shared = *shared_;
  const pml::TransportKind kind = pml::resolve_transport(opts.transport);
  fleet_ = std::thread([&shared, kind] {
    try {
      pml::Runtime::run(
          shared.opts.nranks,
          [&shared](pml::Comm& comm) { core::detail::session_rank_body(comm, shared); },
          kind, pml::resolve_validate(shared.opts.validate_transport),
          shared.opts.tcp_options(), shared.opts.hybrid_options());
    } catch (...) {
      plv::MutexLock lock(shared.mu);
      shared.dead = true;
      shared.error = std::current_exception();
    }
    shared.cv.notify_all();
  });

  // Block until epoch 0 (the initial full run) is published, so a
  // constructed Session always has a snapshot to serve.
  try {
    (void)wait_for_epoch(0);
  } catch (...) {
    if (fleet_.joinable()) fleet_.join();
    throw;
  }
}

Session::~Session() {
  try {
    close();
  } catch (...) {
    // Destructors don't throw; close() already recorded the failure.
  }
}

std::shared_ptr<const LabelSnapshot> Session::wait_for_epoch(std::uint64_t seq) {
  plv::MutexLock lock(shared_->mu);
  // snap != nullptr distinguishes "epoch 0 published" from the freshly
  // constructed state (completed starts at 0 before any run finishes).
  while (!shared_->dead && (shared_->snap == nullptr || shared_->completed < seq)) {
    shared_->cv.wait(shared_->mu);
  }
  if (shared_->snap == nullptr || shared_->completed < seq) {
    // Don't leave pending waiters racing a half-torn-down fleet.
    if (shared_->error != nullptr) std::rethrow_exception(shared_->error);
    throw std::runtime_error("Session: fleet exited before completing the command");
  }
  return shared_->snap;
}

std::shared_ptr<const LabelSnapshot> Session::apply(const EdgeDelta& batch) {
  plv::MutexLock serialize(apply_mu_);
  if (closed_) throw std::logic_error("Session: apply() after close()");
  const std::uint64_t seq = submitted_ + 1;
  {
    plv::MutexLock lock(shared_->mu);
    if (shared_->dead) {
      if (shared_->error != nullptr) std::rethrow_exception(shared_->error);
      throw std::runtime_error("Session: fleet is dead");
    }
    shared_->command = SessionCommand{SessionCommand::Kind::kApply, batch, seq};
    shared_->has_command = true;
  }
  shared_->cv.notify_all();
  submitted_ = seq;
  return wait_for_epoch(seq);
}

std::shared_ptr<const LabelSnapshot> Session::snapshot() const {
  plv::MutexLock lock(shared_->mu);
  return shared_->snap;
}

std::uint64_t Session::epoch() const {
  plv::MutexLock lock(shared_->mu);
  return shared_->completed;
}

vid_t Session::query(vid_t v) const { return snapshot()->community_of(v); }

std::vector<vid_t> Session::community_members(vid_t c) const {
  return snapshot()->community_members(c);
}

void Session::close() {
  plv::MutexLock serialize(apply_mu_);
  if (closed_) return;
  closed_ = true;
  {
    plv::MutexLock lock(shared_->mu);
    if (!shared_->dead) {
      shared_->command =
          SessionCommand{SessionCommand::Kind::kShutdown, EdgeDelta{}, submitted_ + 1};
      shared_->has_command = true;
    }
  }
  shared_->cv.notify_all();
  if (fleet_.joinable()) fleet_.join();
}

}  // namespace plv
