// Configuration of the parallel Louvain engine.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "graph/partition.hpp"
#include "hashing/hash_fns.hpp"

namespace plv::core {

/// The convergence heuristic's ε(iter) model (paper Section IV-B).
enum class ThresholdModel {
  /// ε = p1 · e^(1 / (p2 · iter)): the paper's Eq. 7. For small p2 this
  /// decays steeply from p1·e^(1/p2) at iteration 1 toward an asymptotic
  /// *floor* of p1 — matching Fig. 2's shape, where the update fraction
  /// drops fast but keeps a few-percent tail out to 30 iterations. The
  /// floor matters: it keeps the top-gain vertices moving until real
  /// convergence instead of freezing the graph. Library default.
  kPaperEq7,
  /// ε = p1 · e^(−iter / p2): a pure exponential decay (to zero) —
  /// ablation variant showing why Eq. 7's floor is needed (without it,
  /// level-0 refinement freezes before the communities finish forming;
  /// see bench/ablation_threshold).
  kExponentialDecay,
  /// ε = 1 for every iteration: every positive-gain vertex moves — the
  /// "parallel without heuristic" baseline of Fig. 4.
  kNone,
};

/// Fraction of vertices allowed to move at inner iteration `iter` (1-based).
[[nodiscard]] inline double epsilon_of(ThresholdModel model, double p1, double p2,
                                       int iter) noexcept {
  double eps = 1.0;
  switch (model) {
    case ThresholdModel::kPaperEq7:
      eps = p1 * std::exp(1.0 / (p2 * static_cast<double>(iter)));
      break;
    case ThresholdModel::kExponentialDecay:
      eps = p1 * std::exp(-static_cast<double>(iter) / p2);
      break;
    case ThresholdModel::kNone:
      eps = 1.0;
      break;
  }
  return std::clamp(eps, 0.0, 1.0);
}

struct ParOptions {
  int nranks{4};
  graph::PartitionKind partition{graph::PartitionKind::kCyclic};

  // Convergence. The inner loop stops on zero moves or after
  // `stagnation_window` consecutive iterations with < q_tolerance
  // improvement (one stagnant low-ε iteration is normal, not convergence).
  double q_tolerance{1e-6};
  int max_inner_iterations{64};
  int max_levels{32};
  int stagnation_window{2};

  // The paper's heuristic (Section IV-B), Eq. 7 with (p1, p2) from our own
  // Fig. 2 regression (bench/fig2_heuristic_regression): ε(1) ≈ 0.84,
  // decaying to a ~3% floor — the same shape as the paper's LFR traces.
  ThresholdModel threshold{ThresholdModel::kPaperEq7};
  double p1{0.03};
  double p2{0.3};
  std::size_t gain_histogram_bins{512};

  // Hash-table configuration (Section V-C). 1/4 load factor is the
  // paper's chosen speed/memory compromise.
  hashing::HashKind hash{hashing::HashKind::kFibonacci};
  double table_max_load{0.25};

  // Messaging: per-destination coalescing buffer, in records. 0 = auto-size
  // from the fleet size and record width (pml::auto_aggregator_capacity);
  // explicit values are honored for sweeps.
  std::size_t aggregator_capacity{0};

  // Free-list high-water mark, in chunk nodes per rank; trimmed at phase
  // boundaries. 0 = unbounded.
  std::size_t chunk_pool_watermark{256};

  // Out_Table maintenance cadence: a full state-propagation rebuild every N
  // inner iterations, with incremental retraction/assertion deltas in
  // between. 1 = rebuild every iteration (the legacy behavior), 0 = never
  // rebuild (pure delta). Independent of cadence, an iteration falls back
  // to a full rebuild whenever the delta would ship at least as many
  // records — so the delta path never loses on traffic. On integer-weight
  // graphs the two paths are bit-identical; on irrational weights the
  // cadence bounds floating-point drift (see DESIGN.md).
  int full_rebuild_every{16};

  // Resolution γ of generalized modularity (1 = Newman's Eq. 3). Larger
  // values favor more, smaller communities.
  double resolution{1.0};

  // Telemetry.
  bool record_trace{true};
};

}  // namespace plv::core
