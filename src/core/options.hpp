// Configuration of the parallel Louvain engine.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/partition.hpp"
#include "hashing/hash_fns.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "pml/transport_hybrid.hpp"
#include "pml/transport_tcp.hpp"

namespace plv::core {

// Named values for the knobs whose numeric defaults double as mode
// switches. Use these instead of raw 0/1 literals at call sites — the
// literal alone does not say *which* special behavior it selects.

/// ParOptions::aggregator_capacity — size the per-destination coalescing
/// buffers from the fleet size and record width
/// (pml::auto_aggregator_capacity) instead of a fixed record count.
inline constexpr std::size_t kAutoAggregatorCapacity = 0;

/// ParOptions::chunk_pool_watermark — never trim the per-rank chunk free
/// list (the historical unbounded-pool behavior).
inline constexpr std::size_t kUnboundedChunkPool = 0;

/// ParOptions::full_rebuild_every — rebuild the Out_Table from scratch in
/// every inner iteration (the legacy pre-delta behavior; the ablation
/// baseline for the incremental-maintenance benches).
inline constexpr int kRebuildEveryIteration = 1;

/// ParOptions::full_rebuild_every — never schedule a cadence rebuild; ship
/// retraction/assertion deltas only (the traffic-based fallback to a full
/// rebuild still applies when the delta would be larger).
inline constexpr int kNeverRebuild = 0;

/// ParOptions::adaptive_rebuild_drift — disable the churn-driven rebuild
/// trigger; only the fixed cadence and the traffic fallback schedule full
/// rebuilds.
inline constexpr double kAdaptiveRebuildOff = 0.0;

/// StreamingPlan::rebuild_every_batches — run a full cold rebuild inside
/// the resident fleet on *every* Session::apply. In this mode an apply is
/// exactly a cold run on the updated graph, so its labels are
/// bit-identical to plv::louvain on the same edge list — the
/// exact-equivalence mode the streaming test suite pins.
inline constexpr int kColdRebuildEveryBatch = 1;

/// StreamingPlan::rebuild_every_batches — never schedule a cadence cold
/// rebuild; every batch takes the incremental path (the
/// max_delta_fraction fallback still forces a cold rebuild for batches
/// too large to benefit).
inline constexpr int kNeverColdRebuild = 0;

/// The convergence heuristic's ε(iter) model (paper Section IV-B).
enum class ThresholdModel {
  /// ε = p1 · e^(1 / (p2 · iter)): the paper's Eq. 7. For small p2 this
  /// decays steeply from p1·e^(1/p2) at iteration 1 toward an asymptotic
  /// *floor* of p1 — matching Fig. 2's shape, where the update fraction
  /// drops fast but keeps a few-percent tail out to 30 iterations. The
  /// floor matters: it keeps the top-gain vertices moving until real
  /// convergence instead of freezing the graph. Library default.
  kPaperEq7,
  /// ε = p1 · e^(−iter / p2): a pure exponential decay (to zero) —
  /// ablation variant showing why Eq. 7's floor is needed (without it,
  /// level-0 refinement freezes before the communities finish forming;
  /// see bench/ablation_threshold).
  kExponentialDecay,
  /// ε = 1 for every iteration: every positive-gain vertex moves — the
  /// "parallel without heuristic" baseline of Fig. 4.
  kNone,
};

/// Fraction of vertices allowed to move at inner iteration `iter` (1-based).
[[nodiscard]] inline double epsilon_of(ThresholdModel model, double p1, double p2,
                                       int iter) noexcept {
  double eps = 1.0;
  switch (model) {
    case ThresholdModel::kPaperEq7:
      eps = p1 * std::exp(1.0 / (p2 * static_cast<double>(iter)));
      break;
    case ThresholdModel::kExponentialDecay:
      eps = p1 * std::exp(-static_cast<double>(iter) / p2);
      break;
    case ThresholdModel::kNone:
      eps = 1.0;
      break;
  }
  return std::clamp(eps, 0.0, 1.0);
}

/// The refinement half of the configuration — every knob that shapes the
/// REFINE inner loop and the level cascade, grouped the way Katana's
/// LouvainClusteringPlan groups its clustering knobs. Lives nested inside
/// ParOptions (ParOptions::refine); the historical flat field names remain
/// as reference aliases, so existing call sites keep compiling unchanged.
struct RefinePlan {
  // Convergence. The inner loop stops on zero moves or after
  // `stagnation_window` consecutive iterations with < q_tolerance
  // improvement (one stagnant low-ε iteration is normal, not convergence).
  double q_tolerance{1e-6};
  int max_inner_iterations{64};
  int max_levels{32};
  int stagnation_window{2};

  // The paper's heuristic (Section IV-B), Eq. 7 with (p1, p2) from our own
  // Fig. 2 regression (bench/fig2_heuristic_regression): ε(1) ≈ 0.84,
  // decaying to a ~3% floor — the same shape as the paper's LFR traces.
  ThresholdModel threshold{ThresholdModel::kPaperEq7};
  double p1{0.03};
  double p2{0.3};
  std::size_t gain_histogram_bins{512};

  // Out_Table maintenance cadence: a full state-propagation rebuild every
  // N inner iterations, with incremental retraction/assertion deltas in
  // between. kRebuildEveryIteration restores the legacy always-rebuild
  // behavior; kNeverRebuild ships deltas only. Independent of cadence, an
  // iteration falls back to a full rebuild whenever the delta would ship
  // at least as many records — so the delta path never loses on traffic.
  // On integer-weight graphs the two paths are bit-identical; on
  // irrational weights the cadence bounds floating-point drift (see
  // DESIGN.md).
  int full_rebuild_every{16};

  // Adaptive rebuild trigger: a full rebuild also fires when the
  // accumulated delta churn since the last rebuild — Σ delta_records /
  // full_prop_records, i.e. fractional Out_Table weight turnover — crosses
  // this threshold. Rebuilds react to actual drift pressure instead of a
  // blind iteration count; `full_rebuild_every` stays as the hard upper
  // bound. Derived from allreduced tallies, so every rank fires on the
  // same iteration. kAdaptiveRebuildOff (0) disables the trigger.
  double adaptive_rebuild_drift{2.0};

  // Overlapped refine pipeline (default): Σtot request/reply, move-delta
  // and Σin exchanges ride the streaming fine-grained plane (no collective
  // rendezvous; arrivals staged per source and applied in rank order, so
  // results stay bit-identical), the stay-score initialization overlaps
  // the Σtot wire time, the global move tally piggybacks on the delta
  // exchange, and modularity + trace volume share one combined reduction.
  // false restores the phased path — blocking collectives, separate
  // reductions — as the A/B baseline.
  bool overlap{true};

  // Resolution γ of generalized modularity (1 = Newman's Eq. 3). Larger
  // values favor more, smaller communities.
  double resolution{1.0};

  // --- Convergence heuristics beyond Eq. 7 (DESIGN.md decision 15). All
  // default off; with every knob at its default the engine is bit-identical
  // to the pre-heuristic baseline on all transports and maintenance paths.

  // Active-vertex scheduling (Sahu's unchanged-vertex pruning): after the
  // first delta propagation of a level, only vertices that moved last
  // iteration or absorbed a retraction/assertion patch (i.e. a neighbor's
  // community changed — the wakeup rides the existing PropMsg stream) are
  // rescanned by FIND; everyone else keeps gain 0 and cannot move. A full
  // cadence/traffic rebuild reactivates the whole partition, so the
  // incremental-vs-rebuilt exactness story is unchanged. Implies
  // min-label tie-breaking (the frontier scan order must not affect ties).
  bool active_scheduling{false};

  // Scan-strategy switch for active scheduling: when the live frontier is
  // at most this fraction of the local partition, FIND walks the per-vertex
  // community rows of the active vertices only; above it, the fused full
  // Out_Table scan (with inactive vertices skipped) is cheaper. 0 = always
  // fused, 1 = always rows. Both strategies produce identical labels (the
  // equivalence suite pins threshold 0 vs 1), so this is purely a
  // performance dial.
  double frontier_scan_threshold{0.25};

  // Levels smaller than this refine unrestricted even under active
  // scheduling. Restricting moves to the frontier admits fewer movers per
  // round, stretching convergence across more iterations — worth it while
  // the FIND scan dominates, a net loss once the level graph is small
  // enough that per-iteration collective rounds dominate and scanning
  // everything is effectively free. 0 = prune every level.
  vid_t min_frontier_vertices{1024};

  // Minimum-label tie-breaking (Lu & Halappanavar): equal-gain candidates
  // resolve to the smallest community id under *exact* comparison, making
  // the chosen target independent of candidate enumeration order. The
  // default comparator prefers smaller ids only within a 1e-15 score band
  // (kept for bit-compat); this makes the tie rule exact.
  bool min_label_ties{false};

  // Vertex-following (Lu & Halappanavar): before the level-0 refine, fold
  // each vertex with exactly one distinct neighbor onto that neighbor
  // (its edge becomes an anchor self-loop, so modularity is unchanged),
  // and unfold at the end by assigning it the anchor's final community.
  // Degree-1 vertices always join their unique neighbor in an optimal
  // partition, so this removes them from every refine sweep. Applied on
  // the cold and warm one-shot paths; streamed ingestion and Session
  // applies skip it (the fold is a whole-graph preprocessing pass).
  bool vertex_following{false};

  // Threshold scaling (Sahu): level L refines against tolerance
  // max(q_tolerance, initial_tolerance / tolerance_decay^L) — coarse early
  // levels converge in fewer sweeps, and the cascade tightens geometrically
  // toward the final q_tolerance. The same per-level tolerance also floors
  // the histogram gain cutoff at tolerance / n_level, so sub-tolerance
  // shuffling doesn't keep iterations alive. 0 = off (every level uses
  // q_tolerance directly).
  double initial_tolerance{0.0};
  double tolerance_decay{10.0};

  /// Preset: every convergence heuristic on — the configuration the
  /// BM_FrontierAB bench and the quality-parity suite exercise. The
  /// 1e-3 starting tolerance is deliberate: 1e-2 converges fastest but
  /// costs ~0.02 modularity on the LFR reference inputs, while 1e-3
  /// combined with active scheduling matches (slightly beats) the
  /// stock-default quality at a fraction of the scan volume.
  [[nodiscard]] static RefinePlan heuristics() {
    RefinePlan plan;
    plan.active_scheduling = true;
    plan.min_label_ties = true;
    plan.vertex_following = true;
    plan.initial_tolerance = 1e-3;
    plan.tolerance_decay = 10.0;
    return plan;
  }

  /// Preset: bit-reproducible across maintenance paths — the Out_Table is
  /// rebuilt every iteration (no incremental drift even on irrational
  /// weights) and the churn trigger is off. The slowest, most auditable
  /// configuration; what the equivalence suites pin.
  [[nodiscard]] static RefinePlan deterministic() {
    RefinePlan plan;
    plan.full_rebuild_every = kRebuildEveryIteration;
    plan.adaptive_rebuild_drift = kAdaptiveRebuildOff;
    return plan;
  }

  /// Preset: lowest-traffic steady state — no cadence rebuilds at all;
  /// only the churn trigger and the records-shipped fallback schedule
  /// them. Results stay bit-identical on integer-weight graphs.
  [[nodiscard]] static RefinePlan fast() {
    RefinePlan plan;
    plan.full_rebuild_every = kNeverRebuild;
    return plan;
  }
};

/// The streaming half of the configuration — how plv::Session turns
/// EdgeDelta batches into new label epochs. Ignored by one-shot
/// plv::louvain runs.
struct StreamingPlan {
  // Cold-rebuild cadence, in batches: every Nth Session::apply discards
  // the warm state and re-runs from scratch on the updated edge list —
  // the bound on how far incremental refinement may drift from a cold
  // partition. kColdRebuildEveryBatch (1) makes every apply exactly a
  // cold run (the exact-equivalence mode); kNeverColdRebuild (0) never
  // schedules one.
  int rebuild_every_batches{16};

  // Dirty-region re-refinement: seed the disturbed-vertex frontier from
  // the endpoints of changed edges and let only frontier vertices move,
  // growing the frontier through the retraction/assertion patches their
  // moves ship (Lu & Halappanavar's disturbed set, Sahu's pruning).
  // false = warm-seeded but unrestricted refinement between cold
  // rebuilds. Requires the cyclic partition (vertex ownership must not
  // shift as the vertex count grows); Session enforces that at
  // construction.
  bool frontier{true};

  // Batches touching more than this fraction of the current edge list
  // take the cold path regardless of cadence — a graph-wide rewrite
  // disturbs everything, so incremental refinement would redo a cold
  // run's work with extra bookkeeping.
  double max_delta_fraction{0.25};

  /// Preset: every apply is a cold run on the updated graph —
  /// bit-identical to one-shot plv::louvain, at cold-start latency.
  [[nodiscard]] static StreamingPlan deterministic() {
    StreamingPlan plan;
    plan.rebuild_every_batches = kColdRebuildEveryBatch;
    plan.frontier = false;
    return plan;
  }

  /// Preset: minimum update latency — incremental frontier refinement on
  /// every batch, no cadence rebuilds (the size fallback still applies).
  [[nodiscard]] static StreamingPlan fast() {
    StreamingPlan plan;
    plan.rebuild_every_batches = kNeverColdRebuild;
    plan.frontier = true;
    return plan;
  }
};

struct ParOptions {
  int nranks{4};
  graph::PartitionKind partition{graph::PartitionKind::kCyclic};

  // Rank substrate: threads (default, shared-memory zero-copy), forked
  // processes over Unix-domain sockets, or a TCP mesh (multi-host capable).
  // The PLV_TRANSPORT environment variable, when set, overrides this for
  // every entry point that calls pml::resolve_transport — which all core
  // front doors do. Results are bit-identical across backends for fixed
  // seeds.
  pml::TransportKind transport{pml::TransportKind::kThread};

  // TCP mesh shape (kTcp only; see pml::TcpOptions). Both empty/-1 =
  // the loopback self-test fleet: the caller forks one rank per entry of
  // a 127.0.0.1 ephemeral-port mesh — zero configuration, what CI and
  // PLV_TRANSPORT=tcp use. For a real multi-host run, `hosts` carries one
  // "host:port" per rank (the same list on every host; index = rank) and
  // `tcp_rank` says which entry this process is. PLV_HOSTS / PLV_RANK
  // override these at run time, like PLV_TRANSPORT does for `transport`.
  std::vector<std::string> hosts;
  int tcp_rank{-1};

  /// The pml launch options the configured TCP knobs describe.
  [[nodiscard]] pml::TcpOptions tcp_options() const {
    pml::TcpOptions tcp;
    tcp.hosts = hosts;
    tcp.self_rank = tcp_rank;
    return tcp;
  }

  // Hybrid composed-transport shape (kHybrid only; see pml::HybridOptions):
  // consecutive blocks of `ranks_per_proc` ranks share one forked process
  // as threads, and Comm runs the two-level hierarchical collectives over
  // that topology. 0 = auto (PLV_RANKS_PER_PROC, else 2). flat_collectives
  // keeps the composed substrate but publishes the trivial topology — the
  // flat-protocol A/B baseline (PLV_FLAT_COLLECTIVES=1 overrides).
  int ranks_per_proc{0};
  bool flat_collectives{false};

  /// The pml launch options the configured hybrid knobs describe.
  [[nodiscard]] pml::HybridOptions hybrid_options() const {
    pml::HybridOptions hybrid;
    hybrid.ranks_per_proc = ranks_per_proc;
    hybrid.flat_collectives = flat_collectives;
    return hybrid;
  }

  // Protocol verification: wrap every rank's transport in the
  // ValidatingTransport state-machine checker (pml/transport_check.hpp),
  // which enforces marker ordering, epoch contiguity, quiescence byte
  // conservation, chunk-pool ownership, and collective rank order —
  // throwing ProtocolError on the first violation. Defaults on in Debug
  // builds and off in optimized builds; the PLV_VALIDATE (or legacy
  // PLV_PARANOID) environment variable overrides this for every entry
  // point that calls pml::resolve_validate — which all core front doors
  // do. Costs one extra virtual hop plus a hash update per chunk; keep it
  // off for published benchmark numbers (the benches refuse to publish
  // otherwise).
  bool validate_transport{pml::kValidateTransportDefault};

  // Hash-table configuration (Section V-C). 1/4 load factor is the
  // paper's chosen speed/memory compromise.
  hashing::HashKind hash{hashing::HashKind::kFibonacci};
  double table_max_load{0.25};

  // Messaging: per-destination coalescing buffer, in records.
  // kAutoAggregatorCapacity sizes it from the fleet size and record width
  // (pml::auto_aggregator_capacity); explicit values are honored for
  // sweeps.
  std::size_t aggregator_capacity{kAutoAggregatorCapacity};

  // Free-list high-water mark, in chunk nodes per rank; trimmed at phase
  // boundaries. kUnboundedChunkPool = never trim.
  std::size_t chunk_pool_watermark{256};

  // Telemetry.
  bool record_trace{true};

  // The plan groups (see RefinePlan / StreamingPlan above). These are the
  // authoritative storage; the flat aliases below are references into
  // them, kept so the historical field names (`opts.p1 = ...`) keep
  // working unchanged.
  RefinePlan refine;
  StreamingPlan streaming;

  // Field-compat aliases. Reading or writing one touches the nested plan
  // directly. The user-defined copy/move operations below copy only the
  // value members, so each object's aliases always bind to its *own*
  // plans (the default memberwise copy would silently alias the source's).
  double& q_tolerance = refine.q_tolerance;
  int& max_inner_iterations = refine.max_inner_iterations;
  int& max_levels = refine.max_levels;
  int& stagnation_window = refine.stagnation_window;
  ThresholdModel& threshold = refine.threshold;
  double& p1 = refine.p1;
  double& p2 = refine.p2;
  std::size_t& gain_histogram_bins = refine.gain_histogram_bins;
  int& full_rebuild_every = refine.full_rebuild_every;
  double& adaptive_rebuild_drift = refine.adaptive_rebuild_drift;
  bool& overlap = refine.overlap;
  double& resolution = refine.resolution;

  // No move operations: with user-defined copy operations none are
  // implicitly declared, so rvalues copy — correct (the aliases must
  // rebind per object) and cheap (hosts is the only allocation).
  ParOptions() = default;
  ParOptions(const ParOptions& other) : ParOptions() { *this = other; }
  ParOptions& operator=(const ParOptions& other) {
    nranks = other.nranks;
    partition = other.partition;
    transport = other.transport;
    hosts = other.hosts;
    tcp_rank = other.tcp_rank;
    ranks_per_proc = other.ranks_per_proc;
    flat_collectives = other.flat_collectives;
    validate_transport = other.validate_transport;
    hash = other.hash;
    table_max_load = other.table_max_load;
    aggregator_capacity = other.aggregator_capacity;
    chunk_pool_watermark = other.chunk_pool_watermark;
    record_trace = other.record_trace;
    refine = other.refine;
    streaming = other.streaming;
    return *this;
  }

  /// Preset: the most auditable configuration — deterministic refine plan
  /// (rebuild every iteration) plus cold-rebuild-every-batch streaming.
  [[nodiscard]] static ParOptions deterministic() {
    ParOptions opts;
    opts.refine = RefinePlan::deterministic();
    opts.streaming = StreamingPlan::deterministic();
    return opts;
  }

  /// Preset: lowest latency — delta-only refine plan plus frontier
  /// streaming with no cadence rebuilds.
  [[nodiscard]] static ParOptions fast() {
    ParOptions opts;
    opts.refine = RefinePlan::fast();
    opts.streaming = StreamingPlan::fast();
    return opts;
  }

  /// Rejects inconsistent knob combinations with messages that name the
  /// offending field, the offered value, and the accepted range. Called
  /// by every core entry point before any rank is spawned, so a bad
  /// configuration fails on the caller instead of aborting a fleet.
  void validate() const {
    auto fail = [](const std::string& msg) { throw std::invalid_argument("ParOptions: " + msg); };
    if (nranks < 1) {
      fail("nranks must be >= 1, got " + std::to_string(nranks));
    }
    // Negated comparisons so NaN fails the check instead of slipping by.
    if (!(q_tolerance >= 0.0)) {
      fail("q_tolerance must be >= 0, got " + std::to_string(q_tolerance));
    }
    if (max_inner_iterations < 1) {
      fail("max_inner_iterations must be >= 1, got " +
           std::to_string(max_inner_iterations) + " (the inner loop needs at least one sweep)");
    }
    if (max_levels < 1) {
      fail("max_levels must be >= 1, got " + std::to_string(max_levels));
    }
    if (stagnation_window < 1) {
      fail("stagnation_window must be >= 1, got " + std::to_string(stagnation_window));
    }
    if (threshold != ThresholdModel::kNone) {
      if (!(p1 > 0.0)) {
        fail("p1 must be > 0 when a threshold model is active, got " + std::to_string(p1) +
             " (use ThresholdModel::kNone to disable the heuristic)");
      }
      if (!(p2 > 0.0)) {
        fail("p2 must be > 0 when a threshold model is active, got " + std::to_string(p2) +
             " (use ThresholdModel::kNone to disable the heuristic)");
      }
    }
    if (gain_histogram_bins < 1) {
      fail("gain_histogram_bins must be >= 1, got " + std::to_string(gain_histogram_bins));
    }
    if (!(table_max_load > 0.0) || !(table_max_load <= 1.0)) {
      fail("table_max_load must be in (0, 1], got " + std::to_string(table_max_load));
    }
    // Records are at most a few dozen bytes; this bound keeps
    // capacity * record_size far from std::size_t overflow while allowing
    // any buffer that could conceivably fit in memory.
    constexpr std::size_t kMaxAggregatorCapacity =
        std::numeric_limits<std::size_t>::max() / 256;
    if (aggregator_capacity > kMaxAggregatorCapacity) {
      fail("aggregator_capacity " + std::to_string(aggregator_capacity) +
           " would overflow the chunk byte size; use kAutoAggregatorCapacity (0) to auto-size");
    }
    if (full_rebuild_every < 0) {
      fail("full_rebuild_every must be >= 0, got " + std::to_string(full_rebuild_every) +
           " (kNeverRebuild = 0 ships deltas only, kRebuildEveryIteration = 1 always rebuilds)");
    }
    // Negated so NaN is rejected too.
    if (!(adaptive_rebuild_drift >= 0.0)) {
      fail("adaptive_rebuild_drift must be >= 0, got " +
           std::to_string(adaptive_rebuild_drift) +
           " (kAdaptiveRebuildOff = 0 disables the churn-driven rebuild trigger)");
    }
    if (streaming.rebuild_every_batches < 0) {
      fail("streaming.rebuild_every_batches must be >= 0, got " +
           std::to_string(streaming.rebuild_every_batches) +
           " (kNeverColdRebuild = 0 disables cadence cold rebuilds, "
           "kColdRebuildEveryBatch = 1 makes every apply a cold run)");
    }
    // Negated comparisons so NaN fails instead of slipping by.
    if (!(streaming.max_delta_fraction >= 0.0) || !(streaming.max_delta_fraction <= 1.0)) {
      fail("streaming.max_delta_fraction must be in [0, 1], got " +
           std::to_string(streaming.max_delta_fraction));
    }
    if (!(resolution > 0.0) || !std::isfinite(resolution)) {
      fail("resolution must be a positive finite value, got " + std::to_string(resolution));
    }
    // Negated comparisons so NaN fails the range checks.
    if (!(refine.frontier_scan_threshold >= 0.0) ||
        !(refine.frontier_scan_threshold <= 1.0)) {
      fail("frontier_scan_threshold must be in [0, 1], got " +
           std::to_string(refine.frontier_scan_threshold) +
           " (0 = always the fused scan, 1 = always the row scan)");
    }
    if (!(refine.initial_tolerance >= 0.0) || !std::isfinite(refine.initial_tolerance)) {
      fail("initial_tolerance must be >= 0 and finite, got " +
           std::to_string(refine.initial_tolerance) + " (0 disables threshold scaling)");
    }
    if (refine.initial_tolerance > 0.0 && !(refine.tolerance_decay > 1.0)) {
      fail("tolerance_decay must be > 1 when threshold scaling is on, got " +
           std::to_string(refine.tolerance_decay) +
           " (each level divides the tolerance by this factor)");
    }
    if (transport != pml::TransportKind::kThread &&
        transport != pml::TransportKind::kProc &&
        transport != pml::TransportKind::kTcp &&
        transport != pml::TransportKind::kHybrid) {
      fail("transport holds an invalid TransportKind value " +
           std::to_string(static_cast<int>(transport)) +
           " (valid: kThread, kProc, kTcp, kHybrid)");
    }
    // Hybrid topology shape: catch an inconsistent fleet here, on the
    // caller, instead of mid-fork inside the launcher.
    if (ranks_per_proc < 0) {
      fail("ranks_per_proc must be >= 1 (or 0 for auto), got " +
           std::to_string(ranks_per_proc));
    }
    if (transport != pml::TransportKind::kHybrid) {
      if (ranks_per_proc != 0) {
        fail("ranks_per_proc is set (" + std::to_string(ranks_per_proc) +
             ") but transport is not kHybrid; the group shape only applies to "
             "the hybrid composed backend");
      }
      if (flat_collectives) {
        fail("flat_collectives is set but transport is not kHybrid; the other "
             "backends publish the trivial topology and run the flat "
             "collectives already");
      }
    } else if (ranks_per_proc != 0 && nranks % ranks_per_proc != 0) {
      fail("ranks_per_proc " + std::to_string(ranks_per_proc) +
           " does not divide nranks " + std::to_string(nranks) +
           "; hybrid groups are equal consecutive blocks (one forked process "
           "hosting ranks_per_proc thread ranks each)");
    }
    // TCP mesh shape: catch a fleet that could never connect here, on the
    // caller, instead of five seconds later inside connect().
    if (tcp_rank < -1) {
      fail("tcp_rank must be -1 (loopback self-test) or a rank index, got " +
           std::to_string(tcp_rank));
    }
    if (transport != pml::TransportKind::kTcp) {
      if (!hosts.empty()) {
        fail("hosts is set (" + std::to_string(hosts.size()) +
             " entries) but transport is not kTcp; a host list only applies to "
             "the tcp backend (the hybrid backend forks its process groups "
             "locally — a multi-host hybrid tier is not supported)");
      }
      if (tcp_rank != -1) {
        fail("tcp_rank is set (" + std::to_string(tcp_rank) +
             ") but transport is not kTcp");
      }
    } else {
      if (tcp_rank >= 0 && hosts.empty()) {
        fail("transport is kTcp with tcp_rank " + std::to_string(tcp_rank) +
             " but no hosts; a multi-host run needs one host:port per rank "
             "(leave tcp_rank = -1 for the loopback self-test)");
      }
      if (!hosts.empty()) {
        if (static_cast<int>(hosts.size()) != nranks) {
          fail("hosts has " + std::to_string(hosts.size()) + " entries but nranks is " +
               std::to_string(nranks) + "; a tcp fleet needs one host:port per rank");
        }
        if (tcp_rank < 0) {
          fail("hosts is set but tcp_rank is -1; a multi-host tcp run must say "
               "which entry this process is (--rank / PLV_RANK)");
        }
        if (tcp_rank >= nranks) {
          fail("tcp_rank " + std::to_string(tcp_rank) + " out of range for " +
               std::to_string(nranks) + " ranks");
        }
        for (const std::string& entry : hosts) {
          try {
            (void)pml::parse_host_list(entry);
          } catch (const std::invalid_argument& e) {
            fail(std::string("hosts entry invalid: ") + e.what());
          }
        }
      }
    }
  }
};

}  // namespace plv::core
