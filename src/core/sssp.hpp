// Distributed single-source shortest paths on the pml runtime.
//
// Ref [28] of the paper ("Scalable Single Source Shortest Path algorithms
// for Massively Parallel Systems") is the second workload its messaging
// layer was engineered for. This is a label-correcting (Bellman-Ford
// style) formulation in the same mold as the Louvain phases: owned
// distance state, relaxation messages through per-destination
// aggregators, each round fenced by the messaging layer's collective-free
// counted-termination quiescence, plus one convergence allreduce per
// round to decide whether any distance still changed.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/options.hpp"
#include "graph/edge_list.hpp"

namespace plv::core {

struct SsspResult {
  std::vector<weight_t> distance;  // +inf when unreached
  std::vector<vid_t> parent;       // kInvalidVid when unreached; root -> root
  vid_t reached{0};
  int rounds{0};
  std::uint64_t relaxations{0};  // distance-improving updates applied
};

/// Distance value used for "unreached".
[[nodiscard]] weight_t sssp_infinity() noexcept;

/// Distributed label-correcting SSSP from `root`. Edge weights must be
/// non-negative (checked; throws std::invalid_argument otherwise).
/// Deterministic: equal-distance ties resolve to the smallest parent id.
[[nodiscard]] SsspResult sssp_parallel(const graph::EdgeList& edges, vid_t n_vertices,
                                       vid_t root, const ParOptions& opts);

/// Sequential Dijkstra reference with the same tie-break rule.
[[nodiscard]] SsspResult sssp_seq(const graph::EdgeList& edges, vid_t n_vertices,
                                  vid_t root);

}  // namespace plv::core
