#include "core/sssp.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "common/sync.hpp"
#include "graph/partition.hpp"
#include "pml/aggregator.hpp"

namespace plv::core {

namespace {

/// Relaxation record: "v can be reached with total distance d via u".
struct RelaxMsg {
  vid_t v;
  vid_t u;
  weight_t d;
};

void check_weights(const graph::EdgeList& edges) {
  for (const Edge& e : edges) {
    if (e.w < 0) throw std::invalid_argument("sssp: negative edge weight");
  }
}

/// Per-owned adjacency with parallel edges merged by MIN weight (the
/// shortest-path semantics of a multigraph; note this differs from the
/// Louvain/CSR convention, which sums parallel edges).
std::vector<std::vector<std::pair<vid_t, weight_t>>> build_adjacency(
    const graph::EdgeList& edges, const graph::Partition1D& part, int me) {
  std::vector<std::vector<std::pair<vid_t, weight_t>>> adj(part.local_count(me));
  auto push = [&](vid_t owned, vid_t nbr, weight_t w) {
    adj[part.to_local(owned)].emplace_back(nbr, w);
  };
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (part.owner(e.u) == me) push(e.u, e.v, e.w);
    if (part.owner(e.v) == me) push(e.v, e.u, e.w);
  }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    // Keep the cheapest copy of each neighbor.
    std::size_t out = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (out > 0 && row[out - 1].first == row[i].first) continue;  // sorted: first is min
      row[out++] = row[i];
    }
    row.resize(out);
  }
  return adj;
}

SsspResult sssp_rank(pml::Comm& comm, const graph::EdgeList& edges, vid_t n, vid_t root,
                     const ParOptions& opts) {
  const graph::Partition1D part(opts.partition, n, comm.nranks());
  const int me = comm.rank();
  const auto adj = build_adjacency(edges, part, me);
  const vid_t local_n = part.local_count(me);
  const weight_t inf = sssp_infinity();

  std::vector<weight_t> dist(local_n, inf);
  std::vector<bool> dirty(local_n, false);
  if (part.owner(root) == me) {
    dist[part.to_local(root)] = 0;
    dirty[part.to_local(root)] = true;
  }

  SsspResult result;
  std::uint64_t local_relax = 0;
  for (;;) {
    ++result.rounds;
    pml::Aggregator<RelaxMsg> agg(comm, opts.aggregator_capacity);
    for (vid_t l = 0; l < local_n; ++l) {
      if (!dirty[l]) continue;
      dirty[l] = false;
      const vid_t u = part.to_global(me, l);
      for (const auto& [v, w] : adj[l]) {
        agg.push(part.owner(v), RelaxMsg{v, u, dist[l] + w});
      }
    }
    agg.flush_all();
    std::uint64_t changes = 0;
    comm.drain_until_quiescent<RelaxMsg>([&](int, std::span<const RelaxMsg> msgs) {
      for (const RelaxMsg& m : msgs) {
        const vid_t l = part.to_local(m.v);
        if (m.d < dist[l]) {
          dist[l] = m.d;
          if (!dirty[l]) {
            dirty[l] = true;
            ++changes;
          }
          ++local_relax;
        }
      }
    });
    if (comm.allreduce_sum(changes) == 0) break;
  }

  // Parent post-pass: every settled vertex offers itself as parent; the
  // receiver keeps the smallest id among exact-distance predecessors.
  std::vector<vid_t> parent(local_n, kInvalidVid);
  if (part.owner(root) == me) parent[part.to_local(root)] = root;
  {
    pml::Aggregator<RelaxMsg> agg(comm, opts.aggregator_capacity);
    for (vid_t l = 0; l < local_n; ++l) {
      if (dist[l] == inf) continue;
      const vid_t u = part.to_global(me, l);
      for (const auto& [v, w] : adj[l]) {
        agg.push(part.owner(v), RelaxMsg{v, u, dist[l] + w});
      }
    }
    agg.flush_all();
    comm.drain_until_quiescent<RelaxMsg>([&](int, std::span<const RelaxMsg> msgs) {
      for (const RelaxMsg& m : msgs) {
        const vid_t l = part.to_local(m.v);
        if (part.to_global(me, l) == root) continue;
        if (dist[l] != inf && m.d == dist[l] && m.u < parent[l]) parent[l] = m.u;
      }
    });
  }

  // Gather (identical on all ranks).
  struct Entry {
    vid_t v;
    vid_t parent;
    weight_t d;
  };
  std::vector<Entry> mine(local_n);
  for (vid_t l = 0; l < local_n; ++l) {
    mine[l] = {part.to_global(me, l), parent[l], dist[l]};
  }
  const auto all = comm.allgatherv(mine);
  result.distance.assign(n, inf);
  result.parent.assign(n, kInvalidVid);
  for (const Entry& e : all) {
    result.distance[e.v] = e.d;
    result.parent[e.v] = e.parent;
    if (e.d != inf) ++result.reached;
  }
  result.relaxations = comm.allreduce_sum(local_relax);
  return result;
}

}  // namespace

weight_t sssp_infinity() noexcept { return std::numeric_limits<weight_t>::infinity(); }

SsspResult sssp_parallel(const graph::EdgeList& edges, vid_t n_vertices, vid_t root,
                         const ParOptions& opts) {
  check_weights(edges);
  opts.validate();
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  if (n == 0 || root >= n) return SsspResult{};
  struct {
    plv::Mutex mu;
    SsspResult value PLV_GUARDED_BY(mu);
  } result;
  pml::Runtime::run(
      opts.nranks,
      [&](pml::Comm& comm) {
        SsspResult local = sssp_rank(comm, edges, n, root, opts);
        if (comm.rank() == 0) {
          plv::MutexLock lock(result.mu);
          result.value = std::move(local);
        }
      },
      pml::resolve_transport(opts.transport),
      pml::resolve_validate(opts.validate_transport), opts.tcp_options());
  plv::MutexLock lock(result.mu);
  return std::move(result.value);
}

SsspResult sssp_seq(const graph::EdgeList& edges, vid_t n_vertices, vid_t root) {
  check_weights(edges);
  const vid_t n = std::max(n_vertices, edges.vertex_count());
  SsspResult result;
  if (n == 0 || root >= n) return result;
  const weight_t inf = sssp_infinity();

  // Min-merged adjacency for the whole graph.
  std::vector<std::vector<std::pair<vid_t, weight_t>>> adj(n);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    adj[e.u].emplace_back(e.v, e.w);
    adj[e.v].emplace_back(e.u, e.w);
  }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (out > 0 && row[out - 1].first == row[i].first) continue;
      row[out++] = row[i];
    }
    row.resize(out);
  }

  result.distance.assign(n, inf);
  result.parent.assign(n, kInvalidVid);
  result.distance[root] = 0;
  result.parent[root] = root;

  using Item = std::pair<weight_t, vid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0, root);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > result.distance[u]) continue;  // stale
    for (const auto& [v, w] : adj[u]) {
      if (d + w < result.distance[v]) {
        result.distance[v] = d + w;
        heap.emplace(d + w, v);
        ++result.relaxations;
      }
    }
  }

  // Same min-parent post-pass as the parallel version.
  for (vid_t u = 0; u < n; ++u) {
    if (result.distance[u] == inf) continue;
    if (result.distance[u] != inf) ++result.reached;
    for (const auto& [v, w] : adj[u]) {
      if (v == root || result.distance[v] == inf) continue;
      if (result.distance[u] + w == result.distance[v] && u < result.parent[v]) {
        result.parent[v] = u;
      }
    }
  }
  result.rounds = 1;
  return result;
}

}  // namespace plv::core
