// Compressed sparse row graph with the "ordered-pair" weight convention.
//
// Adjacency entries store A(u,v), the symmetric weighted adjacency value
// for the *ordered* pair (u,v):
//
//   * an undirected edge {u,v}, u != v, of weight w sets A(u,v)=A(v,u)=w;
//   * a self loop of weight w sets A(u,u) = 2w.
//
// With this convention every edge-list record adds exactly 2w to
//   two_m = Σ_u Σ_v A(u,v),
// the vertex strength is the plain row sum, and Louvain coarsening is
// *exact*: giving community c a self loop of (unordered) weight Σ_in^c/2
// reproduces the fine graph's modularity for the induced partition
// (verified by tests/graph_coarsen_test).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace plv::graph {

class Csr {
 public:
  Csr() = default;

  /// Builds a CSR over `n_vertices` (>= edge list's vertex_count; pass 0
  /// to size from the list). Duplicate records accumulate.
  static Csr from_edges(const EdgeList& edges, vid_t n_vertices = 0);

  [[nodiscard]] vid_t num_vertices() const noexcept { return n_; }

  /// Number of stored adjacency entries (ordered pairs, after merging).
  [[nodiscard]] ecount_t num_entries() const noexcept {
    return static_cast<ecount_t>(adj_.size());
  }

  /// Number of undirected edges implied (self loops count once).
  [[nodiscard]] ecount_t num_undirected_edges() const noexcept { return undirected_edges_; }

  /// Σ_u Σ_v A(u,v) — twice the total undirected weight m.
  [[nodiscard]] weight_t two_m() const noexcept { return two_m_; }
  [[nodiscard]] weight_t total_weight() const noexcept { return two_m_ / 2; }

  /// Weighted degree (strength) of u: Σ_v A(u,v); self loops contribute 2w.
  [[nodiscard]] weight_t strength(vid_t u) const noexcept { return strength_[u]; }

  /// A(u,u): twice the unordered self-loop weight at u.
  [[nodiscard]] weight_t self_loop(vid_t u) const noexcept { return self_loop_[u]; }

  /// Unweighted degree = number of distinct neighbors (incl. u itself if
  /// it has a self loop).
  [[nodiscard]] ecount_t degree(vid_t u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::span<const vid_t> neighbors(vid_t u) const noexcept {
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::span<const weight_t> weights(vid_t u) const noexcept {
    return {wgt_.data() + offsets_[u], wgt_.data() + offsets_[u + 1]};
  }

  /// Visits (v, A(u,v)) for every neighbor v of u.
  template <typename Fn>
  void for_each_neighbor(vid_t u, Fn&& fn) const {
    for (ecount_t i = offsets_[u]; i < offsets_[u + 1]; ++i) fn(adj_[i], wgt_[i]);
  }

  /// Exports the undirected edge list (u <= v, self loops with their
  /// unordered weight). Inverse of from_edges up to record merging.
  [[nodiscard]] EdgeList to_edges() const;

 private:
  vid_t n_{0};
  ecount_t undirected_edges_{0};
  weight_t two_m_{0};
  std::vector<ecount_t> offsets_;   // n_+1
  std::vector<vid_t> adj_;          // neighbor ids, sorted per row
  std::vector<weight_t> wgt_;       // A(u,v) per entry
  std::vector<weight_t> strength_;  // row sums
  std::vector<weight_t> self_loop_;
};

}  // namespace plv::graph
