// Edge lists — the interchange format between generators, IO, and CSR.
//
// An EdgeList stores one record per *undirected* edge {u,v} (self loops
// allowed). Duplicate records are legal and mean parallel edges; the CSR
// builder and the distributed In_Table constructor accumulate their
// weights, matching the paper's insert-or-add hash semantics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace plv::graph {

class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(std::vector<Edge> edges) : edges_(std::move(edges)) {}

  void add(vid_t u, vid_t v, weight_t w = 1.0) { edges_.push_back({u, v, w}); }

  void reserve(std::size_t n) { edges_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() noexcept { return edges_; }

  [[nodiscard]] auto begin() const noexcept { return edges_.begin(); }
  [[nodiscard]] auto end() const noexcept { return edges_.end(); }

  /// 1 + the largest vertex id mentioned (0 for an empty list).
  [[nodiscard]] vid_t vertex_count() const noexcept {
    vid_t max_id = 0;
    bool any = false;
    for (const Edge& e : edges_) {
      max_id = std::max({max_id, e.u, e.v});
      any = true;
    }
    return any ? max_id + 1 : 0;
  }

  /// Sum of record weights (each undirected edge once).
  [[nodiscard]] weight_t total_weight() const noexcept {
    weight_t sum = 0;
    for (const Edge& e : edges_) sum += e.w;
    return sum;
  }

  /// Normalizes records so u <= v and merges duplicates by weight
  /// accumulation. Useful before comparing edge sets in tests.
  void canonicalize() {
    for (Edge& e : edges_) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    std::size_t out = 0;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (out > 0 && edges_[out - 1].u == edges_[i].u && edges_[out - 1].v == edges_[i].v) {
        edges_[out - 1].w += edges_[i].w;
      } else {
        edges_[out++] = edges_[i];
      }
    }
    edges_.resize(out);
  }

 private:
  std::vector<Edge> edges_;
};

}  // namespace plv::graph
