// 1-D vertex partitions.
//
// The paper linearly splits vertices across compute nodes "according to a
// simple modulo function" (Section IV-A) — our kCyclic. A contiguous
// kBlock split is provided as an ablation: cyclic spreads the heavy heads
// of skewed degree distributions across ranks, block preserves locality.
// Community labels live in the vertex id space, so community ownership is
// the same map.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.hpp"

namespace plv::graph {

enum class PartitionKind { kCyclic, kBlock };

class Partition1D {
 public:
  Partition1D(PartitionKind kind, vid_t n, int nranks) noexcept
      : kind_(kind), n_(n), nranks_(nranks) {
    assert(nranks >= 1);
  }

  [[nodiscard]] PartitionKind kind() const noexcept { return kind_; }
  [[nodiscard]] vid_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }

  [[nodiscard]] int owner(vid_t v) const noexcept {
    assert(v < n_);
    if (kind_ == PartitionKind::kCyclic) {
      return static_cast<int>(v % static_cast<vid_t>(nranks_));
    }
    // Block: first `rem` ranks get (base+1) vertices.
    const vid_t base = n_ / static_cast<vid_t>(nranks_);
    const vid_t rem = n_ % static_cast<vid_t>(nranks_);
    const vid_t cut = rem * (base + 1);
    if (v < cut) return static_cast<int>(v / (base + 1));
    return static_cast<int>(rem + (v - cut) / (base == 0 ? 1 : base));
  }

  /// Number of vertices owned by `rank`.
  [[nodiscard]] vid_t local_count(int rank) const noexcept {
    const auto r = static_cast<vid_t>(rank);
    const auto p = static_cast<vid_t>(nranks_);
    if (kind_ == PartitionKind::kCyclic) {
      return n_ / p + (r < n_ % p ? 1 : 0);
    }
    const vid_t base = n_ / p;
    const vid_t rem = n_ % p;
    return base + (r < rem ? 1 : 0);
  }

  /// Dense local index of `v` within its owner.
  [[nodiscard]] vid_t to_local(vid_t v) const noexcept {
    if (kind_ == PartitionKind::kCyclic) {
      return v / static_cast<vid_t>(nranks_);
    }
    return v - first_of(owner(v));
  }

  /// Global id of the `local`-th vertex of `rank`.
  [[nodiscard]] vid_t to_global(int rank, vid_t local) const noexcept {
    if (kind_ == PartitionKind::kCyclic) {
      return local * static_cast<vid_t>(nranks_) + static_cast<vid_t>(rank);
    }
    return first_of(rank) + local;
  }

 private:
  [[nodiscard]] vid_t first_of(int rank) const noexcept {
    const auto r = static_cast<vid_t>(rank);
    const auto p = static_cast<vid_t>(nranks_);
    const vid_t base = n_ / p;
    const vid_t rem = n_ % p;
    return r * base + (r < rem ? r : rem);
  }

  PartitionKind kind_;
  vid_t n_;
  int nranks_;
};

}  // namespace plv::graph
