#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace plv::graph {

Csr Csr::from_edges(const EdgeList& edges, vid_t n_vertices) {
  Csr g;
  const vid_t implied = edges.vertex_count();
  g.n_ = std::max(n_vertices, implied);
  g.offsets_.assign(static_cast<std::size_t>(g.n_) + 1, 0);
  g.strength_.assign(g.n_, 0.0);
  g.self_loop_.assign(g.n_, 0.0);
  if (g.n_ == 0) return g;

  // Pass 1: count raw (pre-merge) entries per row. Each non-loop record
  // contributes one entry to each endpoint's row; a loop contributes one.
  for (const Edge& e : edges) {
    ++g.offsets_[e.u + 1];
    if (e.u != e.v) ++g.offsets_[e.v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  // Pass 2: scatter raw entries.
  const auto raw_total = static_cast<std::size_t>(g.offsets_.back());
  g.adj_.resize(raw_total);
  g.wgt_.resize(raw_total);
  std::vector<ecount_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    if (e.u == e.v) {
      g.adj_[cursor[e.u]] = e.u;
      g.wgt_[cursor[e.u]++] = 2 * e.w;  // A(u,u) = 2w by convention
    } else {
      g.adj_[cursor[e.u]] = e.v;
      g.wgt_[cursor[e.u]++] = e.w;
      g.adj_[cursor[e.v]] = e.u;
      g.wgt_[cursor[e.v]++] = e.w;
    }
  }

  // Pass 3: sort each row and merge duplicate neighbors (parallel edges).
  std::vector<ecount_t> new_offsets(g.offsets_.size(), 0);
  ecount_t write = 0;
  std::vector<std::pair<vid_t, weight_t>> row;
  for (vid_t u = 0; u < g.n_; ++u) {
    row.clear();
    for (ecount_t i = g.offsets_[u]; i < g.offsets_[u + 1]; ++i) {
      row.emplace_back(g.adj_[i], g.wgt_[i]);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const ecount_t row_start = write;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (write > row_start && g.adj_[write - 1] == row[i].first) {
        g.wgt_[write - 1] += row[i].second;
      } else {
        g.adj_[write] = row[i].first;
        g.wgt_[write] = row[i].second;
        ++write;
      }
    }
    new_offsets[u + 1] = write;
    weight_t s = 0;
    for (ecount_t i = row_start; i < write; ++i) {
      s += g.wgt_[i];
      if (g.adj_[i] == u) g.self_loop_[u] = g.wgt_[i];
    }
    g.strength_[u] = s;
    g.two_m_ += s;
  }
  g.offsets_ = std::move(new_offsets);
  g.adj_.resize(write);
  g.wgt_.resize(write);
  g.adj_.shrink_to_fit();
  g.wgt_.shrink_to_fit();

  // Count undirected edges: (entries - loops)/2 + loops.
  ecount_t loops = 0;
  for (vid_t u = 0; u < g.n_; ++u) {
    if (g.self_loop_[u] != 0.0) ++loops;
  }
  g.undirected_edges_ = (static_cast<ecount_t>(g.adj_.size()) - loops) / 2 + loops;
  return g;
}

EdgeList Csr::to_edges() const {
  EdgeList out;
  out.reserve(static_cast<std::size_t>(undirected_edges_));
  for (vid_t u = 0; u < n_; ++u) {
    for_each_neighbor(u, [&](vid_t v, weight_t a) {
      if (v > u) {
        out.add(u, v, a);
      } else if (v == u) {
        out.add(u, u, a / 2);  // back to unordered self-loop weight
      }
    });
  }
  return out;
}

}  // namespace plv::graph
