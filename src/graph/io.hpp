// Text and binary edge-list IO, plus community-assignment files.
//
// Text format: one edge per line, "u v [w]", '#'-prefixed comment lines
// skipped (SNAP-compatible, which is where the paper's real-world graphs
// come from). Binary format: a small header plus packed Edge records —
// used to cache generated graphs between bench runs.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace plv::graph {

/// Loads a whitespace-separated text edge list. Throws std::runtime_error
/// on unopenable files or malformed lines.
[[nodiscard]] EdgeList load_edge_list_text(const std::string& path);

void save_edge_list_text(const EdgeList& edges, const std::string& path);

/// Binary round-trip (magic + count + packed records).
[[nodiscard]] EdgeList load_edge_list_binary(const std::string& path);
void save_edge_list_binary(const EdgeList& edges, const std::string& path);

/// Community files: line i holds the community label of vertex i.
[[nodiscard]] std::vector<vid_t> load_communities(const std::string& path);
void save_communities(const std::vector<vid_t>& labels, const std::string& path);

}  // namespace plv::graph
