#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

namespace plv::graph {

GraphStats graph_stats(const Csr& g) {
  GraphStats s;
  s.vertices = g.num_vertices();
  s.undirected_edges = g.num_undirected_edges();
  s.total_weight = g.total_weight();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const ecount_t d = g.degree(v);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_vertices;
    if (g.self_loop(v) != 0.0) ++s.self_loops;
  }
  if (s.vertices > 0) {
    s.avg_degree =
        static_cast<double>(g.num_entries()) / static_cast<double>(s.vertices);
  }
  return s;
}

std::vector<std::uint64_t> degree_histogram(const Csr& g) {
  std::vector<std::uint64_t> hist;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto d = static_cast<std::size_t>(g.degree(v));
    if (hist.size() <= d) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

double degree_powerlaw_exponent(const Csr& g, ecount_t d_min) {
  // Discrete MLE approximation: γ ≈ 1 + n / Σ ln(d_i / (d_min - 0.5)).
  double log_sum = 0.0;
  std::uint64_t n = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const ecount_t d = g.degree(v);
    if (d < d_min) continue;
    log_sum += std::log(static_cast<double>(d) /
                        (static_cast<double>(d_min) - 0.5));
    ++n;
  }
  if (n < 2 || log_sum <= 0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace plv::graph
