#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace plv::graph {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x504c564745444745ULL;  // "PLVGEDGE"

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

}  // namespace

EdgeList load_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open edge list", path);
  EdgeList edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      fail("malformed edge at line " + std::to_string(lineno), path);
    }
    ls >> w;  // optional
    edges.add(static_cast<vid_t>(u), static_cast<vid_t>(v), w);
  }
  return edges;
}

void save_edge_list_text(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot write edge list", path);
  out << "# plouvain edge list: u v w\n";
  for (const Edge& e : edges) {
    out << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
  if (!out) fail("write failed", path);
}

EdgeList load_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open edge list", path);
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kBinaryMagic) fail("bad binary edge list header", path);
  std::vector<Edge> edges(count);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!in) fail("truncated binary edge list", path);
  return EdgeList(std::move(edges));
}

void save_edge_list_binary(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot write edge list", path);
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t count = edges.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!out) fail("write failed", path);
}

std::vector<vid_t> load_communities(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open community file", path);
  std::vector<vid_t> labels;
  std::uint64_t label = 0;
  while (in >> label) labels.push_back(static_cast<vid_t>(label));
  return labels;
}

void save_communities(const std::vector<vid_t>& labels, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot write community file", path);
  for (vid_t c : labels) out << c << '\n';
  if (!out) fail("write failed", path);
}

}  // namespace plv::graph
