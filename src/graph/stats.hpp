// Descriptive graph statistics — the quantities Table I reports for each
// evaluation graph (vertices, edges, degree profile) plus the degree
// distribution used to sanity-check the generators against their targets.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace plv::graph {

struct GraphStats {
  vid_t vertices{0};
  ecount_t undirected_edges{0};
  weight_t total_weight{0};
  double avg_degree{0.0};
  ecount_t max_degree{0};
  vid_t isolated_vertices{0};
  ecount_t self_loops{0};
};

[[nodiscard]] GraphStats graph_stats(const Csr& g);

/// degree_histogram()[d] = number of vertices with (unweighted) degree d.
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const Csr& g);

/// Estimates the power-law exponent of the degree distribution by a
/// discrete MLE (Clauset-Shalizi-Newman) over degrees >= d_min. Returns 0
/// when fewer than two vertices qualify.
[[nodiscard]] double degree_powerlaw_exponent(const Csr& g, ecount_t d_min = 4);

}  // namespace plv::graph
