#include "seq/louvain_seq.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

#include "common/random.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"

namespace plv::seq {

namespace {

/// Running Σin/Σtot bookkeeping for the level being refined.
struct LevelState {
  std::vector<vid_t> labels;        // community of each vertex
  std::vector<weight_t> sigma_in;   // ordered-pair internal weight per community
  std::vector<weight_t> sigma_tot;  // summed strength per community

  explicit LevelState(const graph::Csr& g) {
    const vid_t n = g.num_vertices();
    labels.resize(n);
    std::iota(labels.begin(), labels.end(), vid_t{0});
    sigma_in.assign(n, 0.0);
    sigma_tot.assign(n, 0.0);
    for (vid_t v = 0; v < n; ++v) {
      sigma_in[v] = g.self_loop(v);
      sigma_tot[v] = g.strength(v);
    }
  }

  [[nodiscard]] double modularity(weight_t two_m, double resolution) const {
    double q = 0.0;
    for (std::size_t c = 0; c < sigma_tot.size(); ++c) {
      const double tot = sigma_tot[c] / two_m;
      q += sigma_in[c] / two_m - resolution * tot * tot;
    }
    return q;
  }
};

}  // namespace

LouvainLevel refine_level(const graph::Csr& g, const SeqOptions& opts) {
  const vid_t n = g.num_vertices();
  const weight_t two_m = g.two_m();
  LevelState state(g);

  LouvainLevel level;
  level.num_vertices = n;
  if (n == 0 || two_m <= 0) {
    level.labels = state.labels;
    level.num_communities = n;
    return level;
  }

  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), vid_t{0});
  if (opts.shuffle_seed != 0) {
    Xoshiro256 rng(opts.shuffle_seed);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
  }

  // Scratch: weight from the current vertex to each touched community.
  std::vector<weight_t> w_to(n, 0.0);
  std::vector<vid_t> touched;
  touched.reserve(64);

  // Pruning state: a vertex is re-examined only while marked active.
  std::vector<char> active(opts.prune ? n : 0, 1);

  double prev_q = state.modularity(two_m, opts.resolution);
  for (int iter = 0; iter < opts.max_inner_iterations; ++iter) {
    vid_t moves = 0;
    vid_t evaluated = 0;
    for (vid_t idx = 0; idx < n; ++idx) {
      const vid_t u = order[idx];
      if (opts.prune) {
        if (!active[u]) continue;
        active[u] = 0;  // sleeps until a neighbor moves
      }
      ++evaluated;
      const vid_t cu = state.labels[u];
      const weight_t ku = g.strength(u);

      // Gather w_{u→c} for all neighbor communities (self loop excluded:
      // it moves with u and cancels in every gain comparison).
      touched.clear();
      g.for_each_neighbor(u, [&](vid_t v, weight_t a) {
        if (v == u) return;
        const vid_t cv = state.labels[v];
        if (w_to[cv] == 0.0) touched.push_back(cv);
        w_to[cv] += a;
      });

      // Remove u from its community, then pick the best join (including
      // rejoining cu). Gain of joining c: 2(w_uc/2m − Σtot_c·ku/(2m)²);
      // comparing joins is equivalent to comparing w_uc − Σtot_c·ku/2m.
      state.sigma_tot[cu] -= ku;
      state.sigma_in[cu] -= 2 * w_to[cu] + g.self_loop(u);

      vid_t best_c = cu;
      double best_score = w_to[cu] - opts.resolution * state.sigma_tot[cu] * ku / two_m;
      for (vid_t c : touched) {
        const double score = w_to[c] - opts.resolution * state.sigma_tot[c] * ku / two_m;
        // Strict improvement with smallest-label tie break keeps the sweep
        // deterministic regardless of gather order.
        if (score > best_score + 1e-15 ||
            (score > best_score - 1e-15 && c < best_c)) {
          best_score = score;
          best_c = c;
        }
      }

      state.sigma_tot[best_c] += ku;
      state.sigma_in[best_c] += 2 * w_to[best_c] + g.self_loop(u);
      state.labels[u] = best_c;
      if (best_c != cu) {
        ++moves;
        if (opts.prune) {
          // A move perturbs the gains of everything adjacent — wake them.
          active[u] = 1;
          g.for_each_neighbor(u, [&](vid_t v, weight_t) { active[v] = 1; });
        }
      }

      for (vid_t c : touched) w_to[c] = 0.0;
      w_to[cu] = 0.0;
    }

    const double q = state.modularity(two_m, opts.resolution);
    if (opts.record_trace) {
      level.trace.moved_fraction.push_back(static_cast<double>(moves) /
                                           static_cast<double>(n));
      level.trace.modularity.push_back(q);
      if (opts.prune) {
        level.trace.evaluated_fraction.push_back(static_cast<double>(evaluated) /
                                                 static_cast<double>(n));
      }
    }
    const bool converged = moves == 0 || q - prev_q < opts.q_tolerance;
    prev_q = q;
    if (converged) break;
  }

  level.labels = std::move(state.labels);
  level.num_communities = metrics::normalize_labels(level.labels);
  level.modularity = prev_q;
  return level;
}

graph::Csr coarsen(const graph::Csr& g, const std::vector<vid_t>& labels,
                   std::size_t num_communities) {
  assert(labels.size() >= g.num_vertices());
  graph::EdgeList coarse;
  coarse.reserve(static_cast<std::size_t>(g.num_undirected_edges()) / 2 + 1);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const vid_t cu = labels[u];
    g.for_each_neighbor(u, [&](vid_t v, weight_t a) {
      if (v > u) {
        coarse.add(cu, labels[v], a);  // unordered fine weight once
      } else if (v == u) {
        coarse.add(cu, cu, a / 2);  // fine self loop: unordered weight
      }
    });
  }
  return graph::Csr::from_edges(coarse, static_cast<vid_t>(num_communities));
}

LouvainResult louvain(const graph::Csr& g, const SeqOptions& opts) {
  LouvainResult result;
  result.final_labels.resize(g.num_vertices());
  std::iota(result.final_labels.begin(), result.final_labels.end(), vid_t{0});

  graph::Csr current = g;  // copy; levels shrink fast so this dominates once
  double prev_q = metrics::modularity(g, result.final_labels, opts.resolution);
  result.final_modularity = prev_q;

  for (int level_idx = 0; level_idx < opts.max_levels; ++level_idx) {
    WallTimer timer;
    LouvainLevel level = refine_level(current, opts);
    result.timers.add(phase::kRefine, timer.seconds());

    const bool improved = level.modularity - prev_q >= opts.q_tolerance;
    const bool compressed = level.num_communities < current.num_vertices();
    if (!improved && level_idx > 0) break;

    // Project this level's labels onto the original vertices.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      result.final_labels[v] = level.labels[result.final_labels[v]];
    }
    prev_q = level.modularity;
    result.final_modularity = level.modularity;

    timer.reset();
    graph::Csr next = coarsen(current, level.labels, level.num_communities);
    result.timers.add(phase::kGraphReconstruction, timer.seconds());

    result.levels.push_back(std::move(level));
    if (!compressed) break;  // stable: nothing merged, next level identical
    current = std::move(next);
  }
  return result;
}

}  // namespace plv::seq
