// Sequential Louvain (Blondel et al. 2008) — the paper's Algorithm 1.
//
// This is the quality and performance baseline for every comparison in
// the paper's Section V: vertices sweep in order, each greedily joining
// the neighbor community with the highest modularity gain, with updates
// applied immediately; when a sweep makes no move, the level's
// communities become supervertices and the graph is coarsened (the
// outer loop).
#pragma once

#include <cstdint>

#include "common/louvain.hpp"
#include "graph/csr.hpp"

namespace plv::seq {

struct SeqOptions {
  /// Stop the inner loop when a full sweep improves modularity by less
  /// than this (and stop the outer loop on the same condition across
  /// levels).
  double q_tolerance{1e-6};
  int max_inner_iterations{128};
  int max_levels{32};
  /// 0 keeps natural vertex order (deterministic, matches the reference
  /// implementation); otherwise vertices sweep in a seeded random order.
  std::uint64_t shuffle_seed{0};
  /// Record per-iteration move fractions / modularity (Fig. 2 traces).
  bool record_trace{true};
  /// Resolution γ of generalized modularity (1 = Newman). Larger values
  /// favor more, smaller communities — the standard Louvain extension.
  double resolution{1.0};
  /// Vertex pruning (Lu, Kalyanaraman, Halappanavar, Choudhury — the
  /// paper's ref [11]): after a sweep, only vertices with a recently
  /// moved neighbor are re-evaluated. An approximation — a vertex whose
  /// neighborhood is quiet can still gain from remote Σtot drift — but
  /// one that skips most of the sweep after iteration 1 at nearly equal
  /// quality (see tests/louvain_seq_test "Pruning*").
  bool prune{false};
};

/// Runs the full hierarchy on `g` and returns per-level partitions,
/// modularity, and traces.
[[nodiscard]] LouvainResult louvain(const graph::Csr& g, const SeqOptions& opts = {});

/// One refinement pass on a single level (no coarsening): sweeps until
/// convergence, returns the level partition. Exposed separately so tests
/// can check invariants mid-hierarchy.
[[nodiscard]] LouvainLevel refine_level(const graph::Csr& g, const SeqOptions& opts);

/// Builds the coarse graph induced by `labels` (dense 0..k-1) on `g`:
/// supervertex per community, edge weights summed, internal weight as
/// self loops — the paper's Algorithm 1 lines 24-26.
[[nodiscard]] graph::Csr coarsen(const graph::Csr& g, const std::vector<vid_t>& labels,
                                 std::size_t num_communities);

}  // namespace plv::seq
