// Label propagation (Raghavan, Albert, Kumara 2007) — the baseline family
// behind several systems the paper compares against: Staudt & Meyerhenke
// [10], Soman & Narang's GPU algorithm [45], and Ovelgönne's Hadoop
// ensemble [12] all build on LP. Implemented here as a quality/speed
// comparator for the Louvain engines: LP is faster per sweep but yields
// lower modularity and no hierarchy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace plv::seq {

struct LabelPropOptions {
  int max_iterations{64};
  /// Stop when fewer than this fraction of vertices change label.
  double min_change_fraction{0.001};
  /// Seed for the sweep order (0 = natural order) and tie breaking.
  std::uint64_t seed{1};
};

struct LabelPropResult {
  std::vector<vid_t> labels;  // community per vertex (arbitrary ids)
  int iterations{0};
  bool converged{false};
};

/// Asynchronous weighted label propagation: each vertex adopts the label
/// with the largest incident weight among its neighbors, ties broken by
/// smallest label; sweeps repeat until (almost) nothing changes.
[[nodiscard]] LabelPropResult label_propagation(const graph::Csr& g,
                                                const LabelPropOptions& opts = {});

}  // namespace plv::seq
