#include "seq/label_prop.hpp"

#include <numeric>

#include "common/random.hpp"

namespace plv::seq {

LabelPropResult label_propagation(const graph::Csr& g, const LabelPropOptions& opts) {
  const vid_t n = g.num_vertices();
  LabelPropResult result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), vid_t{0});
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), vid_t{0});
  if (opts.seed != 0) {
    Xoshiro256 rng(opts.seed);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
  }

  // Scratch: accumulated weight per touched label.
  std::vector<weight_t> weight_of(n, 0.0);
  std::vector<vid_t> touched;
  touched.reserve(64);

  const auto min_changes =
      static_cast<vid_t>(opts.min_change_fraction * static_cast<double>(n));
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    vid_t changes = 0;
    for (vid_t idx = 0; idx < n; ++idx) {
      const vid_t u = order[idx];
      touched.clear();
      g.for_each_neighbor(u, [&](vid_t v, weight_t a) {
        if (v == u) return;  // self loops don't vote
        const vid_t lv = result.labels[v];
        if (weight_of[lv] == 0.0) touched.push_back(lv);
        weight_of[lv] += a;
      });
      if (touched.empty()) continue;
      vid_t best = result.labels[u];
      weight_t best_w = weight_of[best];  // 0 unless a neighbor shares it
      for (vid_t l : touched) {
        if (weight_of[l] > best_w || (weight_of[l] == best_w && l < best)) {
          best = l;
          best_w = weight_of[l];
        }
      }
      for (vid_t l : touched) weight_of[l] = 0.0;
      if (best != result.labels[u]) {
        result.labels[u] = best;
        ++changes;
      }
    }
    result.iterations = iter + 1;
    if (changes <= min_changes) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace plv::seq
