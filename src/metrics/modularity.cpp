#include "metrics/modularity.hpp"

#include <cassert>
#include <unordered_map>

namespace plv::metrics {

CommunityWeights community_weights(const graph::Csr& g, const std::vector<vid_t>& labels) {
  assert(labels.size() >= g.num_vertices());
  vid_t max_label = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) max_label = std::max(max_label, labels[v]);
  CommunityWeights w;
  w.sigma_in.assign(static_cast<std::size_t>(max_label) + 1, 0.0);
  w.sigma_tot.assign(static_cast<std::size_t>(max_label) + 1, 0.0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const vid_t cu = labels[u];
    w.sigma_tot[cu] += g.strength(u);
    g.for_each_neighbor(u, [&](vid_t v, weight_t a) {
      if (labels[v] == cu) w.sigma_in[cu] += a;  // ordered pairs: counted twice
    });
  }
  return w;
}

double modularity(const graph::Csr& g, const std::vector<vid_t>& labels,
                  double resolution) {
  const weight_t two_m = g.two_m();
  if (two_m <= 0 || g.num_vertices() == 0) return 0.0;
  const CommunityWeights w = community_weights(g, labels);
  double q = 0.0;
  for (std::size_t c = 0; c < w.sigma_tot.size(); ++c) {
    const double tot = w.sigma_tot[c] / two_m;
    q += w.sigma_in[c] / two_m - resolution * tot * tot;
  }
  return q;
}

}  // namespace plv::metrics
