#include "metrics/partition_utils.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/bits.hpp"

namespace plv::metrics {

std::size_t normalize_labels(std::vector<vid_t>& labels) {
  std::unordered_map<vid_t, vid_t> remap;
  remap.reserve(labels.size() / 4 + 1);
  for (vid_t& label : labels) {
    auto [it, inserted] = remap.try_emplace(label, static_cast<vid_t>(remap.size()));
    label = it->second;
  }
  return remap.size();
}

std::size_t count_communities(const std::vector<vid_t>& labels) {
  std::vector<vid_t> copy = labels;
  std::sort(copy.begin(), copy.end());
  return static_cast<std::size_t>(
      std::unique(copy.begin(), copy.end()) - copy.begin());
}

std::vector<std::uint64_t> community_sizes(const std::vector<vid_t>& labels) {
  std::vector<vid_t> normalized = labels;
  const std::size_t k = normalize_labels(normalized);
  std::vector<std::uint64_t> sizes(k, 0);
  for (vid_t c : normalized) ++sizes[c];
  return sizes;
}

double evolution_ratio(const std::vector<vid_t>& labels) {
  if (labels.empty()) return 0.0;
  return static_cast<double>(count_communities(labels)) /
         static_cast<double>(labels.size());
}

std::vector<std::uint64_t> size_distribution_log2(const std::vector<vid_t>& labels) {
  std::vector<std::uint64_t> dist;
  for (std::uint64_t size : community_sizes(labels)) {
    const unsigned bin = log2_floor(size);
    if (dist.size() <= bin) dist.resize(bin + 1, 0);
    ++dist[bin];
  }
  return dist;
}

}  // namespace plv::metrics
