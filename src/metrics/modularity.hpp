// Newman's modularity (paper Eq. 3) and the modularity gain (Eq. 4).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace plv::metrics {

/// Q = Σ_c [ Σin_c/2m − γ·(Σtot_c/2m)² ] over the partition given by
/// `labels` (labels[v] = community of v; arbitrary label values), with
/// resolution γ (Reichardt–Bornholdt generalized modularity; γ = 1 is
/// Newman's Eq. 3). Σin_c is in ordered-pair terms (each internal
/// undirected edge counted twice, self loops via A(u,u)) and Σtot_c is
/// the summed strength — consistent with the Csr weight convention,
/// which makes coarsening exact. Returns 0 for an empty graph.
[[nodiscard]] double modularity(const graph::Csr& g, const std::vector<vid_t>& labels,
                                double resolution = 1.0);

/// Per-community Σin (ordered pairs) and Σtot (strengths), indexed by
/// label value; useful for tests that cross-check the distributed
/// bookkeeping against a direct computation.
struct CommunityWeights {
  std::vector<weight_t> sigma_in;
  std::vector<weight_t> sigma_tot;
};

[[nodiscard]] CommunityWeights community_weights(const graph::Csr& g,
                                                 const std::vector<vid_t>& labels);

/// Modularity gain of moving an *isolated* vertex u into community c —
/// the paper's Eq. 4, restated exactly in the Csr ordered-pair convention
/// so that it equals the true change of `modularity()`:
///
///   ΔQ = [ (Ain_c + 2·w_uc + A_uu)/2m − ((K_c + k_u)/2m)² ]          (c ∪ {u})
///      − [ Ain_c/2m − (K_c/2m)² ]                                    (c)
///      − [ A_uu/2m − (k_u/2m)² ]                                     ({u})
///      = 2·( w_uc/2m − K_c·k_u/(2m)² )
///
/// where w_uc = Σ_{v∈c} A(u,v) is what a scan of u's adjacency (or of the
/// Out_Table row (u,c)) accumulates, K_c = Σtot excluding u, k_u = u's
/// strength, and 2m = Csr::two_m(). The gain of *removing* u from its
/// current community is the negative of this with that community's values
/// (w_uc excluding u's self loop, K_c excluding k_u).
[[nodiscard]] inline double delta_q_join(weight_t w_uc, weight_t sigma_tot_excl_u,
                                         weight_t strength_u, weight_t two_m) {
  if (two_m <= 0) return 0.0;
  return 2.0 * (w_uc / two_m - (sigma_tot_excl_u * strength_u) / (two_m * two_m));
}

}  // namespace plv::metrics
