#include "metrics/quality.hpp"

#include <algorithm>

#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"

namespace plv::metrics {

double coverage(const graph::Csr& g, const std::vector<vid_t>& labels) {
  if (g.two_m() <= 0) return 0.0;
  const CommunityWeights w = community_weights(g, labels);
  double in = 0.0;
  for (double s : w.sigma_in) in += s;
  return in / g.two_m();
}

ConductanceSummary conductance(const graph::Csr& g, const std::vector<vid_t>& labels) {
  std::vector<vid_t> normalized(labels.begin(),
                                labels.begin() + g.num_vertices());
  const std::size_t k = normalize_labels(normalized);

  std::vector<double> volume(k, 0.0);
  std::vector<double> cut(k, 0.0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const vid_t cu = normalized[u];
    volume[cu] += g.strength(u);
    g.for_each_neighbor(u, [&](vid_t v, weight_t a) {
      if (normalized[v] != cu) cut[cu] += a;
    });
  }
  const double total = g.two_m();

  ConductanceSummary s;
  s.per_community.resize(k, 0.0);
  std::size_t counted = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double denom = std::min(volume[c], total - volume[c]);
    const double phi = denom > 0 ? cut[c] / denom : 0.0;
    s.per_community[c] = phi;
    s.max = std::max(s.max, phi);
    if (volume[c] > 0) {
      s.mean += phi;
      ++counted;
    }
  }
  if (counted > 0) s.mean /= static_cast<double>(counted);
  return s;
}

}  // namespace plv::metrics
