#include "metrics/similarity.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "metrics/partition_utils.hpp"

namespace plv::metrics {

namespace {

/// Sparse contingency table n_ij = |{v : a(v)=i, b(v)=j}| with marginals.
struct Contingency {
  std::unordered_map<std::uint64_t, std::uint64_t> cells;  // (i<<32|j) -> count
  std::vector<std::uint64_t> row;                          // |a_i|
  std::vector<std::uint64_t> col;                          // |b_j|
  std::uint64_t n{0};

  static Contingency build(const std::vector<vid_t>& a_in, const std::vector<vid_t>& b_in) {
    if (a_in.size() != b_in.size() || a_in.empty()) {
      throw std::invalid_argument("similarity: labelings must be non-empty, equal length");
    }
    std::vector<vid_t> a = a_in;
    std::vector<vid_t> b = b_in;
    const std::size_t ka = normalize_labels(a);
    const std::size_t kb = normalize_labels(b);
    Contingency t;
    t.n = a.size();
    t.row.assign(ka, 0);
    t.col.assign(kb, 0);
    t.cells.reserve(std::max(ka, kb) * 2);
    for (std::size_t v = 0; v < a.size(); ++v) {
      ++t.row[a[v]];
      ++t.col[b[v]];
      ++t.cells[pack_key(a[v], b[v])];
    }
    return t;
  }
};

[[nodiscard]] double choose2(std::uint64_t x) noexcept {
  return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
}

struct PairCounts {
  double s_ab{0.0};  // Σ_ij C(n_ij, 2): pairs together in both
  double s_a{0.0};   // Σ_i C(a_i, 2)
  double s_b{0.0};   // Σ_j C(b_j, 2)
  double total{0.0}; // C(n, 2)
};

PairCounts pair_counts(const Contingency& t) {
  PairCounts p;
  for (const auto& [key, count] : t.cells) p.s_ab += choose2(count);
  for (auto a : t.row) p.s_a += choose2(a);
  for (auto b : t.col) p.s_b += choose2(b);
  p.total = choose2(t.n);
  return p;
}

double nmi_of(const Contingency& t) {
  const double n = static_cast<double>(t.n);
  double mutual = 0.0;
  for (const auto& [key, count] : t.cells) {
    const double nij = static_cast<double>(count);
    const double ai = static_cast<double>(t.row[key_hi(key)]);
    const double bj = static_cast<double>(t.col[key_lo(key)]);
    mutual += (nij / n) * std::log(n * nij / (ai * bj));
  }
  double ha = 0.0, hb = 0.0;
  for (auto a : t.row) {
    const double p = static_cast<double>(a) / n;
    if (p > 0) ha -= p * std::log(p);
  }
  for (auto b : t.col) {
    const double p = static_cast<double>(b) / n;
    if (p > 0) hb -= p * std::log(p);
  }
  if (ha + hb == 0.0) return 1.0;  // both partitions trivial and identical
  return 2.0 * mutual / (ha + hb);
}

double f_measure_of(const Contingency& t) {
  // Weighted best-match F1: each community i of A is matched with the
  // community j of B maximizing F1(i,j) = 2 n_ij / (a_i + b_j).
  std::vector<double> best(t.row.size(), 0.0);
  for (const auto& [key, count] : t.cells) {
    const std::size_t i = key_hi(key);
    const std::size_t j = key_lo(key);
    const double f1 = 2.0 * static_cast<double>(count) /
                      static_cast<double>(t.row[i] + t.col[j]);
    best[i] = std::max(best[i], f1);
  }
  double f = 0.0;
  for (std::size_t i = 0; i < t.row.size(); ++i) {
    f += static_cast<double>(t.row[i]) / static_cast<double>(t.n) * best[i];
  }
  return f;
}

double nvd_of(const Contingency& t) {
  // Van Dongen: D = 2n − Σ_i max_j n_ij − Σ_j max_i n_ij; NVD = D / (2n).
  std::vector<std::uint64_t> row_max(t.row.size(), 0);
  std::vector<std::uint64_t> col_max(t.col.size(), 0);
  for (const auto& [key, count] : t.cells) {
    row_max[key_hi(key)] = std::max(row_max[key_hi(key)], count);
    col_max[key_lo(key)] = std::max(col_max[key_lo(key)], count);
  }
  std::uint64_t sum = 0;
  for (auto m : row_max) sum += m;
  for (auto m : col_max) sum += m;
  const double two_n = 2.0 * static_cast<double>(t.n);
  return (two_n - static_cast<double>(sum)) / two_n;
}

}  // namespace

SimilarityScores similarity(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  const Contingency t = Contingency::build(a, b);
  const PairCounts p = pair_counts(t);
  SimilarityScores s;
  s.nmi = nmi_of(t);
  s.f_measure = f_measure_of(t);
  s.nvd = nvd_of(t);
  if (p.total > 0) {
    s.rand_index = (p.total + 2.0 * p.s_ab - p.s_a - p.s_b) / p.total;
    const double expected = p.s_a * p.s_b / p.total;
    const double denom = 0.5 * (p.s_a + p.s_b) - expected;
    s.adjusted_rand_index = denom == 0.0 ? 1.0 : (p.s_ab - expected) / denom;
  } else {
    s.rand_index = 1.0;
    s.adjusted_rand_index = 1.0;
  }
  const double ji_denom = p.s_a + p.s_b - p.s_ab;
  s.jaccard_index = ji_denom == 0.0 ? 1.0 : p.s_ab / ji_denom;
  return s;
}

double nmi(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  return nmi_of(Contingency::build(a, b));
}
double f_measure(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  return f_measure_of(Contingency::build(a, b));
}
double normalized_van_dongen(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  return nvd_of(Contingency::build(a, b));
}
double rand_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  return similarity(a, b).rand_index;
}
double adjusted_rand_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  return similarity(a, b).adjusted_rand_index;
}
double jaccard_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  return similarity(a, b).jaccard_index;
}

}  // namespace plv::metrics
