// Partition similarity metrics — the full Table III battery.
//
// The paper groups them in three families (Section V-B):
//   * information-theoretic: NMI;
//   * cluster matching: F-measure, Normalized Van Dongen (NVD);
//   * pair counting: Rand Index (RI), Adjusted Rand Index (ARI),
//     Jaccard Index (JI).
// Identical partitions give NVD = 0 and all others = 1 (paper footnote 1).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace plv::metrics {

struct SimilarityScores {
  double nmi{0.0};
  double f_measure{0.0};
  double nvd{0.0};
  double rand_index{0.0};
  double adjusted_rand_index{0.0};
  double jaccard_index{0.0};
};

/// Computes all Table III metrics between two labelings of the same
/// vertex set. Label values are arbitrary (normalized internally).
/// Precondition: a.size() == b.size() and both non-empty.
[[nodiscard]] SimilarityScores similarity(const std::vector<vid_t>& a,
                                          const std::vector<vid_t>& b);

/// Individual metrics (each recomputes the contingency table; use
/// similarity() when you need several).
[[nodiscard]] double nmi(const std::vector<vid_t>& a, const std::vector<vid_t>& b);
[[nodiscard]] double f_measure(const std::vector<vid_t>& a, const std::vector<vid_t>& b);
[[nodiscard]] double normalized_van_dongen(const std::vector<vid_t>& a,
                                           const std::vector<vid_t>& b);
[[nodiscard]] double rand_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b);
[[nodiscard]] double adjusted_rand_index(const std::vector<vid_t>& a,
                                         const std::vector<vid_t>& b);
[[nodiscard]] double jaccard_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b);

}  // namespace plv::metrics
