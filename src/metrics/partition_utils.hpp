// Utilities over partitions (label vectors): normalization, sizes,
// evolution ratio, and size distributions — the raw material for the
// paper's Fig. 4b (evolution ratio) and Fig. 5 (size distribution).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace plv::metrics {

/// Relabels communities to dense ids 0..k-1 (first-seen order).
/// Returns the number of distinct communities k.
std::size_t normalize_labels(std::vector<vid_t>& labels);

/// Number of distinct labels (does not modify input).
[[nodiscard]] std::size_t count_communities(const std::vector<vid_t>& labels);

/// Member count per community, indexed by normalized label.
[[nodiscard]] std::vector<std::uint64_t> community_sizes(const std::vector<vid_t>& labels);

/// |communities| / |V| — the paper's evolution ratio (Fig. 4b). A value of
/// 1 means nothing merged; lower is better.
[[nodiscard]] double evolution_ratio(const std::vector<vid_t>& labels);

/// Size-distribution histogram with power-of-two size bins: slot i counts
/// communities of size in [2^i, 2^(i+1)). Matches Fig. 5's log-binned
/// x-axis.
[[nodiscard]] std::vector<std::uint64_t> size_distribution_log2(
    const std::vector<vid_t>& labels);

}  // namespace plv::metrics
