// Additional partition quality measures beyond modularity: coverage,
// performance, and per-community conductance. Modularity is the paper's
// headline metric (Eq. 3), but community-detection practice cross-checks
// against these — they expose pathologies (e.g. one giant community has
// coverage 1 but terrible conductance balance) that modularity alone
// can mask.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace plv::metrics {

/// Fraction of edge weight that is intra-community: Σ_c Σin_c / 2m.
/// 1 when no edge crosses communities.
[[nodiscard]] double coverage(const graph::Csr& g, const std::vector<vid_t>& labels);

/// Conductance of one community c: cut(c) / min(vol(c), vol(V∖c)) where
/// cut is the weight leaving c and vol is the summed strength. Lower is
/// better; 0 for a disconnected community.
struct ConductanceSummary {
  std::vector<double> per_community;  // indexed by normalized label
  double max{0.0};
  double mean{0.0};  // unweighted mean over communities with volume > 0
};

[[nodiscard]] ConductanceSummary conductance(const graph::Csr& g,
                                             const std::vector<vid_t>& labels);

}  // namespace plv::metrics
