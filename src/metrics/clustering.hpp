// Global clustering coefficient via exact triangle counting.
//
// The paper parameterizes its BTER runs by GCC (0.15 vs 0.55) to
// differentiate community structure (Fig. 9a); this metric closes the
// loop by measuring the GCC our BTER generator actually realizes.
#pragma once

#include "graph/csr.hpp"

namespace plv::metrics {

struct TriangleCounts {
  std::uint64_t triangles{0};  // each triangle counted once
  std::uint64_t wedges{0};     // paths of length 2, Σ_v C(deg(v), 2)
};

/// Exact count by sorted-adjacency intersection. Self loops and edge
/// weights are ignored (GCC is a topological quantity). O(Σ deg(v)^1.5).
[[nodiscard]] TriangleCounts count_triangles(const graph::Csr& g);

/// GCC = 3 · triangles / wedges (0 when the graph has no wedges).
[[nodiscard]] double global_clustering_coefficient(const graph::Csr& g);

}  // namespace plv::metrics
