#include "metrics/clustering.hpp"

#include <algorithm>
#include <vector>

namespace plv::metrics {

TriangleCounts count_triangles(const graph::Csr& g) {
  TriangleCounts out;
  const vid_t n = g.num_vertices();

  // Effective degree excluding self loops, for the wedge count.
  for (vid_t v = 0; v < n; ++v) {
    std::uint64_t d = 0;
    g.for_each_neighbor(v, [&](vid_t u, weight_t) {
      if (u != v) ++d;
    });
    out.wedges += d * (d - 1) / 2;
  }

  // Count each triangle once via the u < v < w orientation: for every
  // edge (u,v) with u < v, intersect the >v suffixes of both sorted rows.
  for (vid_t u = 0; u < n; ++u) {
    const auto nbr_u = g.neighbors(u);
    for (vid_t v : nbr_u) {
      if (v <= u) continue;
      const auto nbr_v = g.neighbors(v);
      // Two-pointer intersection of the w > v regions.
      auto it_u = std::upper_bound(nbr_u.begin(), nbr_u.end(), v);
      auto it_v = std::upper_bound(nbr_v.begin(), nbr_v.end(), v);
      while (it_u != nbr_u.end() && it_v != nbr_v.end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_v < *it_u) {
          ++it_v;
        } else {
          ++out.triangles;
          ++it_u;
          ++it_v;
        }
      }
    }
  }
  return out;
}

double global_clustering_coefficient(const graph::Csr& g) {
  const TriangleCounts t = count_triangles(g);
  if (t.wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(t.triangles) / static_cast<double>(t.wedges);
}

}  // namespace plv::metrics
