// Hash functions evaluated in the paper (Section V-C, Fig. 6).
//
// The paper compares concatenated, linear-congruential, bitwise, and
// Fibonacci hashing for distributing edge keys over hash bins, and selects
// Fibonacci (Knuth, TAOCP vol. 3; paper Eq. 6) for its load balance at
// negligible cost. All functions here map a 64-bit key to a bin index in
// [0, M) with M a power of two.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace plv::hashing {

/// 2^64 / φ, the multiplier that realizes Eq. 6 in integer arithmetic:
/// H(x) = floor(M/W * ((φ⁻¹ · W · x) mod W)) with W = 2^64 reduces, for M a
/// power of two, to the top log2(M) bits of (x * K) mod 2^64.
inline constexpr std::uint64_t kFibonacciMultiplier = 0x9e3779b97f4a7c15ULL;

/// Fibonacci (golden-ratio multiplicative) hash — the paper's choice.
[[nodiscard]] constexpr std::uint64_t fibonacci_hash(std::uint64_t key,
                                                     std::uint64_t table_size) noexcept {
  assert(is_pow2(table_size));
  if (table_size <= 1) return 0;  // a 1-bin table has only bin 0
  const unsigned shift = 64U - log2_floor(table_size);
  return (key * kFibonacciMultiplier) >> shift;
}

/// Linear congruential hash (paper ref [39]): h(x) = (a·x + b) mod p mod M,
/// with the classic MMIX multiplier. Competitive with Fibonacci in the
/// paper's study but with slightly longer max bin chains.
[[nodiscard]] constexpr std::uint64_t lcg_hash(std::uint64_t key,
                                               std::uint64_t table_size) noexcept {
  assert(is_pow2(table_size));
  if (table_size <= 1) return 0;  // a 1-bin table has only bin 0
  const std::uint64_t mixed = key * 6364136223846793005ULL + 1442695040888963407ULL;
  // Take high bits: low bits of an LCG step are weak.
  const unsigned shift = 64U - log2_floor(table_size);
  return mixed >> shift;
}

/// Bitwise (xor-fold) hash: folds the key's halves together and masks.
/// Cheap but structurally weak on packed (hi,lo) edge keys where both
/// halves are small integers — exactly the failure mode Fig. 6 exposes.
[[nodiscard]] constexpr std::uint64_t bitwise_hash(std::uint64_t key,
                                                   std::uint64_t table_size) noexcept {
  assert(is_pow2(table_size));
  std::uint64_t x = key;
  x ^= x >> 32;
  x ^= x >> 16;
  return x & (table_size - 1);
}

/// Concatenated hash: uses the packed key directly modulo the table size.
/// The weakest candidate — consecutive vertex ids map to consecutive bins.
[[nodiscard]] constexpr std::uint64_t concat_hash(std::uint64_t key,
                                                  std::uint64_t table_size) noexcept {
  assert(is_pow2(table_size));
  return key & (table_size - 1);
}

enum class HashKind {
  kFibonacci,
  kLinearCongruential,
  kBitwise,
  kConcatenated,
};

[[nodiscard]] constexpr std::uint64_t apply_hash(HashKind kind, std::uint64_t key,
                                                 std::uint64_t table_size) noexcept {
  switch (kind) {
    case HashKind::kFibonacci:
      return fibonacci_hash(key, table_size);
    case HashKind::kLinearCongruential:
      return lcg_hash(key, table_size);
    case HashKind::kBitwise:
      return bitwise_hash(key, table_size);
    case HashKind::kConcatenated:
      return concat_hash(key, table_size);
  }
  return 0;  // unreachable
}

[[nodiscard]] constexpr const char* hash_kind_name(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kFibonacci:
      return "fibonacci";
    case HashKind::kLinearCongruential:
      return "lcg";
    case HashKind::kBitwise:
      return "bitwise";
    case HashKind::kConcatenated:
      return "concat";
  }
  return "?";
}

/// The paper's literal Eq. 5 key packing: f(t1,t2) = (t1 << 16) | t2.
///
/// Precondition: t1 < 2^16 and t2 < 2^16. The packing is only injective
/// for 16-bit ids — a larger t2 bleeds into t1's field and *aliases*
/// other pairs (e.g. (0, 2^16) packs identically to (1, 0)). Kept for
/// fidelity experiments only; debug builds assert the precondition, and
/// callers on arbitrary graphs must use pack_key() (32/32 split,
/// common/types.hpp) instead. See the ROADMAP audit note.
[[nodiscard]] constexpr std::uint64_t pack_key_eq5(vid_t t1, vid_t t2) noexcept {
  assert(t1 < (1U << 16) && t2 < (1U << 16) && "pack_key_eq5: ids must be < 2^16");
  return (static_cast<std::uint64_t>(t1) << 16) | static_cast<std::uint64_t>(t2);
}

}  // namespace plv::hashing
