// EdgeTable — the open-addressing hash table behind In_Table and Out_Table.
//
// Both of the paper's tables store ((a,b), w) triples keyed by a packed
// pair of 32-bit ids (In_Table: (source vertex, owned vertex); Out_Table:
// (owned vertex, neighbor community)), with insert-or-accumulate semantics
// and linear probing (Algorithms 3 and 5). In_Table is rebuilt wholesale
// per level, so fast clear() and dense sequential scans stay first-class.
//
// Out_Table is additionally maintained *incrementally*: when a vertex
// moves community, its in-neighbors' entries are patched with a
// retraction (old community) / assertion (new community) pair instead of
// rebuilding the whole table. To support that, every entry carries a
// contribution count — the number of in-edges currently accumulated into
// it. retract() removes one contribution, and when the count reaches zero
// the entry is deleted by backward-shifting the probe chain (tombstone-
// free, so the table stays dense and scans never stumble over graves).
// Counting contributions — rather than testing the weight against zero —
// makes emptiness detection exact even when floating-point accumulation
// leaves dust in the weight.
//
// The inverse load factor is configurable; the paper settles on 1/4 as the
// speed/memory compromise (Fig. 6d) and we default to the same.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/histogram.hpp"
#include "common/types.hpp"
#include "hashing/hash_fns.hpp"

namespace plv::hashing {

/// Probe-chain occupancy statistics, for the Fig. 6-style analyses.
struct TableStats {
  std::uint64_t entries{0};
  std::uint64_t capacity{0};
  double avg_probe_length{0.0};  // mean probes per occupied entry (1 = no collision)
  std::uint64_t max_probe_length{0};
};

class EdgeTable {
 public:
  /// `expected_entries` pre-sizes the table so that the load factor stays at
  /// or below `max_load` (entries/capacity) without growing.
  explicit EdgeTable(std::size_t expected_entries = 0, double max_load = 0.25,
                     HashKind hash = HashKind::kFibonacci)
      : hash_(hash), max_load_(clamp_load(max_load)) {
    reserve(expected_entries);
  }

  /// Inserts `key` with weight `w`, or adds `w` to the existing entry,
  /// recording one contribution either way. Returns true if a new entry
  /// was created.
  bool insert_or_add(std::uint64_t key, weight_t w) {
    assert(key != kEmptyKey);
    if ((size_ + 1) > max_entries_) grow();
    std::size_t idx = slot_of(key);
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.key == kEmptyKey) {
        slot.key = key;
        slot.weight = w;
        slot.count = 1;
        ++size_;
        return true;
      }
      if (slot.key == key) {
        slot.weight += w;
        ++slot.count;
        return false;
      }
      idx = (idx + 1) & mask_;
    }
  }

  /// Removes one contribution of weight `w` from `key`: the inverse of a
  /// prior insert_or_add. When the last contribution is retracted the
  /// entry is erased (backward shift, no tombstone) regardless of any
  /// floating-point dust left in the weight. Returns true if the entry
  /// was erased. Retracting a key that is not present is a caller bug
  /// (asserted in debug, no-op in release).
  bool retract(std::uint64_t key, weight_t w) {
    assert(key != kEmptyKey);
    if (slots_.empty()) {
      assert(false && "retract on empty table");
      return false;
    }
    std::size_t idx = slot_of(key);
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.key == key) break;
      if (slot.key == kEmptyKey) {
        assert(false && "retract of absent key");
        return false;
      }
      idx = (idx + 1) & mask_;
    }
    Slot& slot = slots_[idx];
    assert(slot.count > 0);
    slot.weight -= w;
    if (--slot.count > 0) return false;
    erase_at(idx);
    --size_;
    return true;
  }

  /// Contributions currently accumulated into `key` (0 if absent).
  [[nodiscard]] std::uint32_t contributions(std::uint64_t key) const noexcept {
    if (slots_.empty()) return 0;
    std::size_t idx = slot_of(key);
    for (;;) {
      const Slot& slot = slots_[idx];
      if (slot.key == key) return slot.count;
      if (slot.key == kEmptyKey) return 0;
      idx = (idx + 1) & mask_;
    }
  }

  /// Weight stored under `key`, if present.
  [[nodiscard]] std::optional<weight_t> find(std::uint64_t key) const noexcept {
    if (slots_.empty()) return std::nullopt;
    std::size_t idx = slot_of(key);
    for (;;) {
      const Slot& slot = slots_[idx];
      if (slot.key == key) return slot.weight;
      if (slot.key == kEmptyKey) return std::nullopt;
      idx = (idx + 1) & mask_;
    }
  }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return find(key).has_value();
  }

  /// Visits every occupied entry as (key, weight). Order is the probe
  /// order, which is deterministic for a fixed insertion multiset because
  /// insert-or-add is commutative in its effect on final contents —
  /// callers must still not depend on it semantically.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.weight);
    }
  }

  /// Removes all entries, keeping the current capacity.
  void clear() noexcept {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

  /// Ensures capacity for `expected_entries` at the configured load factor.
  void reserve(std::size_t expected_entries) {
    const std::size_t needed = required_capacity(expected_entries);
    if (needed > slots_.size()) rehash(needed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] double load_factor() const noexcept {
    return slots_.empty() ? 0.0 : static_cast<double>(size_) / static_cast<double>(slots_.size());
  }
  [[nodiscard]] HashKind hash_kind() const noexcept { return hash_; }

  /// Sum of all stored weights (used by conservation-law tests).
  [[nodiscard]] weight_t total_weight() const noexcept {
    weight_t sum = 0;
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) sum += slot.weight;
    }
    return sum;
  }

  /// Probe-length statistics over current contents.
  [[nodiscard]] TableStats stats() const {
    TableStats st;
    st.entries = size_;
    st.capacity = slots_.size();
    if (size_ == 0 || slots_.empty()) return st;
    std::uint64_t total_probes = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].key == kEmptyKey) continue;
      const std::size_t home = slot_of(slots_[i].key);
      const std::uint64_t probes = 1 + ((i + slots_.size() - home) & mask_);
      total_probes += probes;
      st.max_probe_length = std::max(st.max_probe_length, probes);
    }
    st.avg_probe_length = static_cast<double>(total_probes) / static_cast<double>(size_);
    return st;
  }

 private:
  static constexpr std::uint64_t kEmptyKey = ~0ULL;

  struct Slot {
    std::uint64_t key{kEmptyKey};
    weight_t weight{0};
    std::uint32_t count{0};  // contributions accumulated into this entry
  };

  /// Deletes the entry at `idx` by backward-shifting the rest of its
  /// probe chain into the hole — the tombstone-free erase linear probing
  /// admits. An entry at `next` may move into the hole iff the hole lies
  /// cyclically within [home(next), next).
  void erase_at(std::size_t idx) noexcept {
    std::size_t hole = idx;
    std::size_t next = (hole + 1) & mask_;
    while (slots_[next].key != kEmptyKey) {
      const std::size_t home = slot_of(slots_[next].key);
      if (((next - home) & mask_) >= ((next - hole) & mask_)) {
        slots_[hole] = slots_[next];
        hole = next;
      }
      next = (next + 1) & mask_;
    }
    slots_[hole] = Slot{};
  }

  static double clamp_load(double load) noexcept {
    if (load <= 0.0) return 0.25;
    return load > 0.9 ? 0.9 : load;
  }

  [[nodiscard]] std::size_t required_capacity(std::size_t entries) const noexcept {
    if (entries == 0) return 0;
    const auto target = static_cast<std::size_t>(static_cast<double>(entries) / max_load_) + 1;
    return static_cast<std::size_t>(next_pow2(target));
  }

  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(apply_hash(hash_, key, slots_.size()));
  }

  void grow() { rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void rehash(std::size_t new_capacity) {
    assert(is_pow2(new_capacity));
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    max_entries_ = static_cast<std::size_t>(max_load_ * static_cast<double>(new_capacity));
    if (max_entries_ == 0) max_entries_ = 1;
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.key != kEmptyKey) place(slot);
    }
  }

  /// Reinserts a fully-formed slot during rehash (preserves the
  /// contribution count, which insert_or_add would reset to 1).
  void place(const Slot& moved) {
    std::size_t idx = slot_of(moved.key);
    while (slots_[idx].key != kEmptyKey) idx = (idx + 1) & mask_;
    slots_[idx] = moved;
    ++size_;
  }

  HashKind hash_;
  double max_load_;
  std::vector<Slot> slots_;
  std::size_t mask_{0};
  std::size_t size_{0};
  std::size_t max_entries_{0};
};

}  // namespace plv::hashing
