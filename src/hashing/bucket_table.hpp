// BucketTable — separate-chaining table used for the Fig. 6 hash study.
//
// The paper reports per-thread entry counts and average/maximum *bin*
// lengths when an R-MAT edge set is hashed across the threads of a node.
// Chaining makes "bin length" directly observable (an open-addressing
// probe chain conflates neighboring bins), so the hash-behavior bench uses
// this table while the algorithm itself uses the faster EdgeTable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "hashing/hash_fns.hpp"

namespace plv::hashing {

/// Bin-occupancy metrics as defined in the paper: the average counts only
/// non-empty bins (footnote 3 of the paper).
struct BinStats {
  std::uint64_t entries{0};
  std::uint64_t bins{0};
  std::uint64_t nonempty_bins{0};
  double avg_bin_length{0.0};
  std::uint64_t max_bin_length{0};
};

class BucketTable {
 public:
  BucketTable(std::size_t bins, HashKind hash)
      : hash_(hash), bins_(static_cast<std::size_t>(next_pow2(bins))) {}

  void insert_or_add(std::uint64_t key, weight_t w) {
    auto& bin = bins_[static_cast<std::size_t>(apply_hash(hash_, key, bins_.size()))];
    for (auto& entry : bin) {
      if (entry.key == key) {
        entry.weight += w;
        return;
      }
    }
    bin.push_back({key, w});
    ++size_;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    const auto& bin = bins_[static_cast<std::size_t>(apply_hash(hash_, key, bins_.size()))];
    return std::any_of(bin.begin(), bin.end(),
                       [key](const Entry& e) { return e.key == key; });
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }

  /// Occupancy of one bin.
  [[nodiscard]] std::size_t bin_length(std::size_t bin) const noexcept {
    return bins_[bin].size();
  }

  [[nodiscard]] BinStats stats() const noexcept {
    BinStats st;
    st.entries = size_;
    st.bins = bins_.size();
    for (const auto& bin : bins_) {
      if (bin.empty()) continue;
      ++st.nonempty_bins;
      st.max_bin_length = std::max(st.max_bin_length,
                                   static_cast<std::uint64_t>(bin.size()));
    }
    if (st.nonempty_bins > 0) {
      st.avg_bin_length =
          static_cast<double>(st.entries) / static_cast<double>(st.nonempty_bins);
    }
    return st;
  }

  /// Bin stats restricted to the contiguous bin range [first, last) — the
  /// Fig. 6 setup partitions a node's bins uniformly across its threads.
  [[nodiscard]] BinStats stats_range(std::size_t first, std::size_t last) const noexcept {
    BinStats st;
    st.bins = last - first;
    for (std::size_t b = first; b < last && b < bins_.size(); ++b) {
      const auto len = bins_[b].size();
      st.entries += len;
      if (len == 0) continue;
      ++st.nonempty_bins;
      st.max_bin_length = std::max(st.max_bin_length, static_cast<std::uint64_t>(len));
    }
    if (st.nonempty_bins > 0) {
      st.avg_bin_length =
          static_cast<double>(st.entries) / static_cast<double>(st.nonempty_bins);
    }
    return st;
  }

 private:
  struct Entry {
    std::uint64_t key;
    weight_t weight;
  };

  HashKind hash_;
  std::vector<std::vector<Entry>> bins_;
  std::size_t size_{0};
};

}  // namespace plv::hashing
