#include "gen/rmat.hpp"

#include "common/random.hpp"
#include "common/types.hpp"

namespace plv::gen {

namespace {

/// One pass of a 4-round Feistel network over 2*half bits.
std::uint64_t feistel_pass(std::uint64_t x, unsigned half, std::uint64_t seed) {
  const std::uint64_t half_mask = (1ULL << half) - 1;
  std::uint64_t left = x >> half;
  std::uint64_t right = x & half_mask;
  for (int round = 0; round < 4; ++round) {
    const std::uint64_t f =
        mix64(right ^ (seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(round + 1))) &
        half_mask;
    const std::uint64_t new_left = right;
    right = (left ^ f) & half_mask;
    left = new_left;
  }
  return (left << half) | right;
}

/// Bijective id scramble over [0, 2^scale): a Feistel permutation of the
/// enclosing power-of-four domain with cycle-walking, which restricts any
/// bijection of a superset to a bijection of the subdomain.
vid_t scramble(vid_t id, unsigned scale, std::uint64_t seed) {
  const unsigned half = (scale + 1) / 2;
  const std::uint64_t n = 1ULL << scale;
  std::uint64_t out = id;
  do {
    out = feistel_pass(out, half, seed);
  } while (out >= n);
  return static_cast<vid_t>(out);
}

Edge make_edge(const RmatParams& p, std::uint64_t index) {
  // Derive an independent RNG stream per edge from (seed, index).
  std::uint64_t sm = p.seed ^ mix64(index + 0x12345);
  Xoshiro256 rng(splitmix64(sm));
  std::uint64_t u = 0, v = 0;
  for (unsigned level = 0; level < p.scale; ++level) {
    const double r = rng.next_double();
    std::uint64_t ubit = 0, vbit = 0;
    if (r < p.a) {
      // top-left
    } else if (r < p.a + p.b) {
      vbit = 1;
    } else if (r < p.a + p.b + p.c) {
      ubit = 1;
    } else {
      ubit = 1;
      vbit = 1;
    }
    u = (u << 1) | ubit;
    v = (v << 1) | vbit;
  }
  vid_t su = static_cast<vid_t>(u);
  vid_t sv = static_cast<vid_t>(v);
  if (p.scramble_ids) {
    su = scramble(su, p.scale, p.seed);
    sv = scramble(sv, p.scale, p.seed);
  }
  return Edge{su, sv, 1.0};
}

}  // namespace

graph::EdgeList rmat_slice(const RmatParams& p, std::uint64_t first_edge,
                           std::uint64_t count) {
  graph::EdgeList edges;
  edges.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Edge e = make_edge(p, first_edge + i);
    if (!p.allow_self_loops && e.u == e.v) {
      // Deterministic redraw from a shifted stream.
      std::uint64_t attempt = 1;
      while (e.u == e.v) {
        e = make_edge(p, first_edge + i + (attempt++ << 48));
      }
    }
    edges.add(e.u, e.v, e.w);
  }
  return edges;
}

graph::EdgeList rmat(const RmatParams& p) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(p.edge_factor) << p.scale;
  return rmat_slice(p, 0, total);
}

}  // namespace plv::gen
