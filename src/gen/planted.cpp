#include "gen/planted.hpp"

#include "common/random.hpp"

namespace plv::gen {

PlantedGraph planted_partition(const PlantedParams& p) {
  PlantedGraph out;
  const vid_t n = p.communities * p.community_size;
  out.ground_truth.resize(n);
  for (vid_t v = 0; v < n; ++v) out.ground_truth[v] = v / p.community_size;

  Xoshiro256 rng(p.seed);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) {
      const bool same = out.ground_truth[u] == out.ground_truth[v];
      const double prob = same ? p.p_intra : p.p_inter;
      if (rng.next_double() < prob) out.edges.add(u, v, 1.0);
    }
  }
  return out;
}

PlantedGraph ring_of_cliques(vid_t cliques, vid_t clique_size, std::uint64_t /*seed*/) {
  PlantedGraph out;
  const vid_t n = cliques * clique_size;
  out.ground_truth.resize(n);
  for (vid_t c = 0; c < cliques; ++c) {
    const vid_t base = c * clique_size;
    for (vid_t i = 0; i < clique_size; ++i) {
      out.ground_truth[base + i] = c;
      for (vid_t j = i + 1; j < clique_size; ++j) {
        out.edges.add(base + i, base + j, 1.0);
      }
    }
    // One bridge to the next clique (wrapping), connecting "corner"
    // vertices so the bridge endpoints are unambiguous.
    if (cliques > 1) {
      const vid_t next_base = ((c + 1) % cliques) * clique_size;
      out.edges.add(base + clique_size - 1, next_base, 1.0);
    }
  }
  return out;
}

}  // namespace plv::gen
