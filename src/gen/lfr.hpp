// LFR benchmark graphs (Lancichinetti & Fortunato, Phys. Rev. E 80, 2009).
//
// The paper fits its convergence heuristic on LFR traces (Section IV-B,
// Fig. 2) and uses LFR for the quality study (Table III). LFR generates
// graphs with built-in communities:
//
//   * vertex degrees follow a power law with exponent γ,
//   * community sizes follow a power law with exponent β,
//   * each vertex spends a fraction (1-μ) of its degree inside its own
//     community and μ outside — μ is the "mixing parameter".
//
// This implementation follows the standard construction: sample degrees
// and community sizes, assign vertices to communities subject to the
// internal-degree ≤ community-size-1 constraint, then realize internal
// and external edges with a configuration-model stub pairing plus
// duplicate/self-loop rejection. Unresolvable stubs after the rewiring
// budget are dropped and reported, so the realized graph can fall
// slightly short of the requested degree sequence (as in the reference
// implementation).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace plv::gen {

struct LfrParams {
  vid_t n{10000};
  std::uint32_t k_min{8};    // degree power-law support
  std::uint32_t k_max{64};
  double gamma{2.5};         // degree exponent
  std::uint32_t c_min{32};   // community size power-law support
  std::uint32_t c_max{512};
  double beta{1.5};          // community size exponent
  double mu{0.3};            // mixing: fraction of each degree outside
  std::uint64_t seed{1};
  int rewire_rounds{32};     // stub re-pairing attempts before dropping
};

struct LfrGraph {
  graph::EdgeList edges;
  std::vector<vid_t> ground_truth;  // planted community per vertex
  std::uint64_t dropped_stubs{0};   // stubs unresolvable without conflicts
  std::size_t num_communities{0};
};

[[nodiscard]] LfrGraph lfr(const LfrParams& params);

}  // namespace plv::gen
