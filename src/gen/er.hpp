// Erdős–Rényi G(n, m) generator — the community-free null model used by
// tests (modularity of a random graph's trivial partitions, hash-table
// stress inputs) and by the BTER phase-2 edges.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace plv::gen {

struct ErParams {
  vid_t n{1024};
  std::uint64_t m{8192};
  std::uint64_t seed{1};
  bool allow_self_loops{false};
};

[[nodiscard]] graph::EdgeList erdos_renyi(const ErParams& params);

}  // namespace plv::gen
