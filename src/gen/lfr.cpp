#include "gen/lfr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "common/power_law.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace plv::gen {

namespace {

/// Shuffle via Fisher-Yates with our deterministic RNG.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.next_below(i)]);
  }
}

/// Samples community sizes until they cover exactly n vertices. The last
/// community is trimmed; if the trim leaves it below c_min it is merged
/// into its predecessor.
std::vector<std::uint32_t> sample_community_sizes(const LfrParams& p, Xoshiro256& rng) {
  PowerLawSampler sampler(p.c_min, p.c_max, p.beta);
  std::vector<std::uint32_t> sizes;
  std::uint64_t total = 0;
  while (total < p.n) {
    std::uint32_t s = sampler(rng);
    if (total + s > p.n) s = static_cast<std::uint32_t>(p.n - total);
    sizes.push_back(s);
    total += s;
  }
  if (sizes.size() > 1 && sizes.back() < p.c_min) {
    sizes[sizes.size() - 2] += sizes.back();
    sizes.pop_back();
  }
  return sizes;
}

/// Pairs stubs into edges, rejecting self loops, duplicates, and (when
/// `same_forbidden` is set) pairs within one community. Conflicting stubs
/// are re-shuffled and re-paired for `rounds` rounds; leftovers return.
std::uint64_t pair_stubs(std::vector<vid_t> stubs, const std::vector<vid_t>* labels,
                         int rounds, Xoshiro256& rng, graph::EdgeList& out,
                         std::unordered_set<std::uint64_t>& seen) {
  auto conflict = [&](vid_t a, vid_t b) {
    if (a == b) return true;
    if (labels != nullptr && (*labels)[a] == (*labels)[b]) return true;
    const std::uint64_t key = a < b ? pack_key(a, b) : pack_key(b, a);
    return seen.contains(key);
  };
  for (int round = 0; round < rounds && stubs.size() >= 2; ++round) {
    shuffle(stubs, rng);
    std::vector<vid_t> leftover;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const vid_t a = stubs[i];
      const vid_t b = stubs[i + 1];
      if (conflict(a, b)) {
        leftover.push_back(a);
        leftover.push_back(b);
        continue;
      }
      const std::uint64_t key = a < b ? pack_key(a, b) : pack_key(b, a);
      seen.insert(key);
      out.add(a, b, 1.0);
    }
    if (stubs.size() % 2 == 1) leftover.push_back(stubs.back());
    if (leftover.size() == stubs.size()) break;  // no progress possible
    stubs = std::move(leftover);
  }
  return stubs.size();
}

}  // namespace

LfrGraph lfr(const LfrParams& p) {
  if (p.mu < 0.0 || p.mu > 1.0) throw std::invalid_argument("lfr: mu must be in [0,1]");
  if (p.k_min < 1 || p.k_max < p.k_min) throw std::invalid_argument("lfr: bad degree range");
  if (p.c_min < 2 || p.c_max < p.c_min) throw std::invalid_argument("lfr: bad size range");

  LfrGraph out;
  Xoshiro256 rng(p.seed);

  // 1. Degree sequence and planned internal degrees.
  PowerLawSampler deg_sampler(p.k_min, p.k_max, p.gamma);
  std::vector<std::uint32_t> degree(p.n);
  std::vector<std::uint32_t> internal(p.n);
  for (vid_t v = 0; v < p.n; ++v) {
    degree[v] = deg_sampler(rng);
    internal[v] = static_cast<std::uint32_t>(std::lround((1.0 - p.mu) * degree[v]));
    internal[v] = std::min(internal[v], degree[v]);
  }

  // 2. Community sizes.
  std::vector<std::uint32_t> sizes = sample_community_sizes(p, rng);
  out.num_communities = sizes.size();

  // 3. Assignment: process vertices by decreasing internal degree; among
  //    communities large enough for the vertex (size-1 >= internal degree)
  //    pick the one with the most remaining room. Communities become
  //    eligible in decreasing-size order as the required degree drops.
  std::vector<vid_t> order(p.n);
  std::iota(order.begin(), order.end(), vid_t{0});
  std::sort(order.begin(), order.end(),
            [&](vid_t a, vid_t b) { return internal[a] > internal[b]; });

  std::vector<std::size_t> comm_by_size(sizes.size());
  std::iota(comm_by_size.begin(), comm_by_size.end(), std::size_t{0});
  std::sort(comm_by_size.begin(), comm_by_size.end(),
            [&](std::size_t a, std::size_t b) { return sizes[a] > sizes[b]; });

  std::vector<std::uint32_t> remaining(sizes.begin(), sizes.end());
  out.ground_truth.assign(p.n, 0);
  // Max-heap of (remaining, community) over eligible communities.
  using HeapItem = std::pair<std::uint32_t, std::size_t>;
  std::priority_queue<HeapItem> eligible;
  std::size_t next_to_enroll = 0;

  for (vid_t idx = 0; idx < p.n; ++idx) {
    const vid_t v = order[idx];
    while (next_to_enroll < comm_by_size.size() &&
           sizes[comm_by_size[next_to_enroll]] >= internal[v] + 1) {
      const std::size_t c = comm_by_size[next_to_enroll++];
      eligible.emplace(remaining[c], c);
    }
    std::size_t chosen = sizes.size();
    // Pop stale heap entries (remaining changed since push).
    while (!eligible.empty()) {
      auto [room, c] = eligible.top();
      eligible.pop();
      if (room != remaining[c]) continue;  // stale
      if (room == 0) continue;
      chosen = c;
      break;
    }
    if (chosen == sizes.size()) {
      // Every eligible community is full; fall back to the fullest-room
      // community overall and clamp the internal degree to fit it.
      std::uint32_t best_room = 0;
      for (std::size_t c = 0; c < sizes.size(); ++c) {
        if (remaining[c] > best_room) {
          best_room = remaining[c];
          chosen = c;
        }
      }
      assert(chosen != sizes.size());  // Σ sizes == n, so room must exist
      internal[v] = std::min<std::uint32_t>(internal[v], sizes[chosen] - 1);
    }
    out.ground_truth[v] = static_cast<vid_t>(chosen);
    --remaining[chosen];
    eligible.emplace(remaining[chosen], chosen);
  }

  // 4. Internal edges: per-community configuration model.
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::vector<vid_t>> members(sizes.size());
  for (vid_t v = 0; v < p.n; ++v) members[out.ground_truth[v]].push_back(v);

  for (std::size_t c = 0; c < sizes.size(); ++c) {
    std::vector<vid_t> stubs;
    for (vid_t v : members[c]) {
      for (std::uint32_t s = 0; s < internal[v]; ++s) stubs.push_back(v);
    }
    if (stubs.size() % 2 == 1) stubs.pop_back();  // drop one stub for parity
    out.dropped_stubs += pair_stubs(std::move(stubs), nullptr, p.rewire_rounds, rng,
                                    out.edges, seen);
  }

  // 5. External edges: global configuration model forbidding same-community
  //    pairs.
  std::vector<vid_t> ext_stubs;
  for (vid_t v = 0; v < p.n; ++v) {
    const std::uint32_t ext = degree[v] - std::min(degree[v], internal[v]);
    for (std::uint32_t s = 0; s < ext; ++s) ext_stubs.push_back(v);
  }
  if (ext_stubs.size() % 2 == 1) ext_stubs.pop_back();
  out.dropped_stubs += pair_stubs(std::move(ext_stubs), &out.ground_truth,
                                  p.rewire_rounds, rng, out.edges, seen);

  return out;
}

}  // namespace plv::gen
