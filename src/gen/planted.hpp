// Planted-partition graphs: k communities with dense intra- and sparse
// inter-community edges, plus the degenerate "ring of cliques".
//
// These have an unambiguous, deterministic ground truth, which makes them
// the backbone of the correctness tests: Louvain (sequential or parallel)
// must recover the planted communities exactly when the contrast is high.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace plv::gen {

struct PlantedParams {
  vid_t communities{8};
  vid_t community_size{16};
  double p_intra{0.8};   // edge probability inside a community
  double p_inter{0.01};  // edge probability across communities
  std::uint64_t seed{1};
};

struct PlantedGraph {
  graph::EdgeList edges;
  std::vector<vid_t> ground_truth;  // community label per vertex
};

[[nodiscard]] PlantedGraph planted_partition(const PlantedParams& params);

/// k disjoint cliques of size s, adjacent cliques joined by a single edge
/// forming a ring. The classic Louvain sanity graph.
[[nodiscard]] PlantedGraph ring_of_cliques(vid_t cliques, vid_t clique_size,
                                           std::uint64_t seed = 0);

}  // namespace plv::gen
