#include "gen/er.hpp"

#include "common/random.hpp"

namespace plv::gen {

graph::EdgeList erdos_renyi(const ErParams& p) {
  graph::EdgeList edges;
  edges.reserve(p.m);
  Xoshiro256 rng(p.seed);
  for (std::uint64_t i = 0; i < p.m; ++i) {
    vid_t u = static_cast<vid_t>(rng.next_below(p.n));
    vid_t v = static_cast<vid_t>(rng.next_below(p.n));
    while (!p.allow_self_loops && u == v && p.n > 1) {
      v = static_cast<vid_t>(rng.next_below(p.n));
    }
    edges.add(u, v, 1.0);
  }
  return edges;
}

}  // namespace plv::gen
