#include "gen/bter.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "common/power_law.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace plv::gen {

BterGraph bter(const BterParams& p) {
  if (p.gcc_target < 0.0 || p.gcc_target > 1.0) {
    throw std::invalid_argument("bter: gcc_target must be in [0,1]");
  }
  if (p.d_min < 1 || p.d_max < p.d_min) throw std::invalid_argument("bter: bad degree range");

  BterGraph out;
  Xoshiro256 rng(p.seed);

  // Degree sequence, sorted ascending so consecutive vertices have similar
  // degree — the precondition for affinity blocking.
  PowerLawSampler sampler(p.d_min, p.d_max, p.gamma);
  std::vector<std::uint32_t> degree(p.n);
  for (auto& d : degree) d = sampler(rng);
  std::sort(degree.begin(), degree.end());

  const double rho = std::cbrt(p.gcc_target);

  // Phase 1: affinity blocks. A block groups (d+1) consecutive vertices
  // where d is the degree of its first (smallest-degree) member, realized
  // as ER(block, rho).
  out.blocks.assign(p.n, 0);
  std::vector<std::uint32_t> excess(p.n, 0);
  std::unordered_set<std::uint64_t> seen;
  vid_t begin = 0;
  vid_t block_id = 0;
  while (begin < p.n) {
    const vid_t block_size = std::min<vid_t>(degree[begin] + 1, p.n - begin);
    const vid_t end = begin + block_size;
    for (vid_t v = begin; v < end; ++v) {
      out.blocks[v] = block_id;
      // Expected intra-block degree is rho*(block_size-1); the remainder
      // of the vertex's degree is spent in phase 2.
      const double intra = rho * static_cast<double>(block_size - 1);
      const double left = static_cast<double>(degree[v]) - intra;
      excess[v] = left > 0 ? static_cast<std::uint32_t>(std::lround(left)) : 0;
    }
    for (vid_t u = begin; u < end; ++u) {
      for (vid_t v = u + 1; v < end; ++v) {
        if (rng.next_double() < rho) {
          out.edges.add(u, v, 1.0);
          seen.insert(pack_key(u, v));
        }
      }
    }
    begin = end;
    ++block_id;
  }
  out.num_blocks = block_id;

  // Phase 2: Chung–Lu matching on excess degrees. Stub pairing with self
  // loop / duplicate rejection; a bounded number of redraw rounds keeps
  // generation linear.
  std::vector<vid_t> stubs;
  for (vid_t v = 0; v < p.n; ++v) {
    for (std::uint32_t s = 0; s < excess[v]; ++s) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.pop_back();
  for (int round = 0; round < 16 && stubs.size() >= 2; ++round) {
    // Fisher-Yates shuffle.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
    }
    std::vector<vid_t> leftover;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const vid_t a = std::min(stubs[i], stubs[i + 1]);
      const vid_t b = std::max(stubs[i], stubs[i + 1]);
      if (a == b || seen.contains(pack_key(a, b))) {
        leftover.push_back(stubs[i]);
        leftover.push_back(stubs[i + 1]);
        continue;
      }
      seen.insert(pack_key(a, b));
      out.edges.add(a, b, 1.0);
    }
    if (leftover.size() == stubs.size()) break;
    stubs = std::move(leftover);
  }

  return out;
}

}  // namespace plv::gen
