// BTER — Block Two-Level Erdős–Rényi generator (Seshadhri, Kolda, Pinar,
// Phys. Rev. E 85, 2012; Kolda et al. 2013).
//
// The paper's P7-IH scalability runs (Fig. 9, Table I) use BTER because —
// unlike R-MAT — it produces parametric community structure: phase 1
// groups vertices of similar degree into *affinity blocks* realized as
// dense Erdős–Rényi subgraphs (the communities), phase 2 spends each
// vertex's excess degree on a Chung–Lu style global matching.
//
// The paper differentiates runs by target Global Clustering Coefficient
// (GCC 0.15 vs 0.55): a higher GCC means denser blocks and therefore
// stronger community structure and higher modularity. We expose the same
// knob: `gcc_target` sets the intra-block connectivity ρ = gcc^(1/3)
// (within an ER block the probability that two neighbors close a triangle
// is ρ, and ρ³ is the block's triangle density), so measured GCC grows
// monotonically with the parameter. The tests assert the monotonicity and
// the paper's modularity ordering rather than exact GCC values.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace plv::gen {

struct BterParams {
  vid_t n{1 << 16};
  std::uint32_t d_min{4};    // degree power-law support
  std::uint32_t d_max{128};
  double gamma{2.0};         // degree exponent
  double gcc_target{0.55};   // drives intra-block connectivity
  std::uint64_t seed{1};
};

struct BterGraph {
  graph::EdgeList edges;
  std::vector<vid_t> blocks;  // affinity block of each vertex (≈ community)
  std::size_t num_blocks{0};
};

[[nodiscard]] BterGraph bter(const BterParams& params);

}  // namespace plv::gen
