// R-MAT generator (Chakrabarti, Zhan, Faloutsos; Graph500 flavor).
//
// The paper uses Graph500-conforming R-MAT graphs (Table I: 2^SCALE
// vertices, 2^(SCALE+4) edges, i.e. edge factor 16) for the hash study
// (Fig. 6) and for BG/Q scalability (Fig. 9). R-MAT has heavy-tailed
// degrees but — as the paper notes — no marked community structure.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace plv::gen {

struct RmatParams {
  unsigned scale{16};          // 2^scale vertices
  unsigned edge_factor{16};    // edges = edge_factor * 2^scale
  double a{0.57};              // Graph500 quadrant probabilities
  double b{0.19};
  double c{0.19};
  std::uint64_t seed{1};
  bool scramble_ids{true};     // Graph500 vertex permutation
  bool allow_self_loops{true};
};

/// Generates the full edge list. Weights are 1.
[[nodiscard]] graph::EdgeList rmat(const RmatParams& params);

/// Generates only the slice [first_edge, first_edge + count) of the edge
/// stream — each edge is a pure function of (seed, index), so ranks can
/// generate disjoint slices of the same graph independently (this is how
/// the weak-scaling bench builds per-rank work without a shared pass).
[[nodiscard]] graph::EdgeList rmat_slice(const RmatParams& params,
                                         std::uint64_t first_edge, std::uint64_t count);

}  // namespace plv::gen
