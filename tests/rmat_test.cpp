#include "gen/rmat.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/csr.hpp"

namespace plv::gen {
namespace {

TEST(Rmat, ProducesRequestedEdgeCount) {
  RmatParams p{.scale = 10, .edge_factor = 8, .seed = 1};
  const auto edges = rmat(p);
  EXPECT_EQ(edges.size(), (8ULL << 10));
}

TEST(Rmat, VertexIdsWithinScale) {
  RmatParams p{.scale = 12, .edge_factor = 4, .seed = 2};
  const auto edges = rmat(p);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, 1u << 12);
    EXPECT_LT(e.v, 1u << 12);
  }
}

TEST(Rmat, DeterministicForFixedSeed) {
  RmatParams p{.scale = 10, .edge_factor = 4, .seed = 99};
  const auto a = rmat(p);
  const auto b = rmat(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(Rmat, DifferentSeedsDiffer) {
  RmatParams p1{.scale = 10, .edge_factor = 4, .seed = 1};
  RmatParams p2{.scale = 10, .edge_factor = 4, .seed = 2};
  const auto a = rmat(p1);
  const auto b = rmat(p2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.edges()[i] == b.edges()[i]) ++same;
  }
  EXPECT_LT(same, a.size() / 100);
}

TEST(Rmat, SlicesComposeToFullStream) {
  RmatParams p{.scale = 8, .edge_factor = 8, .seed = 5};
  const auto full = rmat(p);
  const std::uint64_t total = full.size();
  graph::EdgeList stitched;
  for (std::uint64_t off = 0; off < total; off += 1000) {
    const auto part = rmat_slice(p, off, std::min<std::uint64_t>(1000, total - off));
    for (const Edge& e : part) stitched.add(e.u, e.v, e.w);
  }
  ASSERT_EQ(stitched.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(stitched.edges()[i], full.edges()[i]);
  }
}

TEST(Rmat, NoSelfLoopsWhenDisallowed) {
  RmatParams p{.scale = 10, .edge_factor = 8, .seed = 3, .allow_self_loops = false};
  const auto edges = rmat(p);
  for (const Edge& e : edges) EXPECT_NE(e.u, e.v);
}

TEST(Rmat, SkewedDegreesWithGraph500Params) {
  // R-MAT with a=0.57 must be far more skewed than uniform: the max
  // degree should exceed several times the average.
  RmatParams p{.scale = 12, .edge_factor = 8, .seed = 7};
  const auto g = graph::Csr::from_edges(rmat(p), 1u << 12);
  ecount_t max_deg = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) max_deg = std::max(max_deg, g.degree(v));
  const double avg_deg =
      static_cast<double>(g.num_entries()) / static_cast<double>(g.num_vertices());
  EXPECT_GT(static_cast<double>(max_deg), 5.0 * avg_deg);
}

TEST(Rmat, ScrambleProducesDispersedIds) {
  // Without scrambling, quadrant probabilities concentrate low ids; with
  // it, the heavy vertices spread across the id space.
  RmatParams p{.scale = 12, .edge_factor = 8, .seed = 11, .scramble_ids = true};
  const auto edges = rmat(p);
  std::uint64_t high_half = 0;
  for (const Edge& e : edges) {
    if (e.u >= (1u << 11)) ++high_half;
  }
  // Unscrambled R-MAT with a=0.57 puts ~34% of sources in the high half;
  // scrambled should be near 50%.
  EXPECT_GT(high_half, edges.size() * 40 / 100);
}

TEST(Rmat, UnscrambledConcentratesLowIds) {
  RmatParams p{.scale = 12, .edge_factor = 8, .seed = 11, .scramble_ids = false};
  const auto edges = rmat(p);
  std::uint64_t low_half = 0;
  for (const Edge& e : edges) {
    if (e.u < (1u << 11)) ++low_half;
  }
  EXPECT_GT(low_half, edges.size() * 55 / 100);
}

}  // namespace
}  // namespace plv::gen
