#include "metrics/clustering.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "graph/csr.hpp"

namespace plv::metrics {
namespace {

TEST(Triangles, TriangleGraph) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  const auto g = graph::Csr::from_edges(e);
  const TriangleCounts t = count_triangles(g);
  EXPECT_EQ(t.triangles, 1u);
  EXPECT_EQ(t.wedges, 3u);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 1.0);
}

TEST(Triangles, CompleteGraphK5) {
  graph::EdgeList e;
  for (vid_t u = 0; u < 5; ++u) {
    for (vid_t v = u + 1; v < 5; ++v) e.add(u, v);
  }
  const auto g = graph::Csr::from_edges(e);
  const TriangleCounts t = count_triangles(g);
  EXPECT_EQ(t.triangles, 10u);  // C(5,3)
  EXPECT_EQ(t.wedges, 5u * 6);  // 5 vertices * C(4,2)
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 1.0);
}

TEST(Triangles, StarHasWedgesButNoTriangles) {
  graph::EdgeList e;
  for (vid_t v = 1; v <= 6; ++v) e.add(0, v);
  const auto g = graph::Csr::from_edges(e);
  const TriangleCounts t = count_triangles(g);
  EXPECT_EQ(t.triangles, 0u);
  EXPECT_EQ(t.wedges, 15u);  // C(6,2)
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
}

TEST(Triangles, PathGraph) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3);
  const auto g = graph::Csr::from_edges(e);
  const TriangleCounts t = count_triangles(g);
  EXPECT_EQ(t.triangles, 0u);
  EXPECT_EQ(t.wedges, 2u);
}

TEST(Triangles, SelfLoopsAreIgnored) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(0, 0, 3.0);
  const auto g = graph::Csr::from_edges(e);
  const TriangleCounts t = count_triangles(g);
  EXPECT_EQ(t.triangles, 1u);
  EXPECT_EQ(t.wedges, 3u);
}

TEST(Triangles, EmptyAndSingleVertex) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(graph::Csr{}), 0.0);
  graph::EdgeList e;
  e.add(0, 0, 1.0);
  const auto g = graph::Csr::from_edges(e);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
}

TEST(Triangles, ErGccMatchesDensity) {
  // For G(n, m), expected GCC ≈ p = 2m / (n(n-1)).
  const auto edges = gen::erdos_renyi({.n = 300, .m = 4000, .seed = 6});
  const auto g = graph::Csr::from_edges(edges, 300);
  const double p = 2.0 * 4000 / (300.0 * 299.0);
  EXPECT_NEAR(global_clustering_coefficient(g), p, p * 0.35);
}

}  // namespace
}  // namespace plv::metrics
