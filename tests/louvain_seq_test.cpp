#include "seq/louvain_seq.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/er.hpp"
#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/similarity.hpp"

namespace plv::seq {
namespace {

TEST(SeqLouvain, RecoversRingOfCliques) {
  const auto graph = gen::ring_of_cliques(8, 5);
  const auto g = graph::Csr::from_edges(graph.edges, 40);
  const LouvainResult result = louvain(g);
  EXPECT_EQ(metrics::count_communities(result.final_labels), 8u);
  // Exact recovery: each clique is one community.
  EXPECT_NEAR(metrics::nmi(result.final_labels, graph.ground_truth), 1.0, 1e-9);
  EXPECT_NEAR(result.final_modularity, metrics::modularity(g, result.final_labels), 1e-9);
}

TEST(SeqLouvain, RecoversPlantedPartition) {
  const auto graph = gen::planted_partition(
      {.communities = 6, .community_size = 20, .p_intra = 0.7, .p_inter = 0.01, .seed = 3});
  const auto g = graph::Csr::from_edges(graph.edges, 120);
  const LouvainResult result = louvain(g);
  EXPECT_GT(metrics::nmi(result.final_labels, graph.ground_truth), 0.95);
  EXPECT_GT(result.final_modularity, 0.6);
}

TEST(SeqLouvain, ReportedModularityMatchesRecomputation) {
  const auto lfr_graph = gen::lfr({.n = 1000, .mu = 0.3, .seed = 4});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 1000);
  const LouvainResult result = louvain(g);
  EXPECT_NEAR(result.final_modularity, metrics::modularity(g, result.final_labels), 1e-9);
}

TEST(SeqLouvain, ModularityIsMonotoneAcrossLevels) {
  const auto lfr_graph = gen::lfr({.n = 1500, .mu = 0.4, .seed = 5});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 1500);
  const LouvainResult result = louvain(g);
  for (std::size_t l = 1; l < result.levels.size(); ++l) {
    EXPECT_GE(result.levels[l].modularity, result.levels[l - 1].modularity - 1e-9);
  }
}

TEST(SeqLouvain, InnerLoopModularityIsMonotone) {
  // The sequential greedy sweep never decreases Q.
  const auto lfr_graph = gen::lfr({.n = 1000, .mu = 0.3, .seed = 6});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 1000);
  const LouvainResult result = louvain(g);
  for (const auto& level : result.levels) {
    for (std::size_t i = 1; i < level.trace.modularity.size(); ++i) {
      EXPECT_GE(level.trace.modularity[i], level.trace.modularity[i - 1] - 1e-9);
    }
  }
}

TEST(SeqLouvain, MoveFractionDecaysOverIterations) {
  // The empirical basis of the paper's heuristic (Fig. 2): most movement
  // happens in the first sweep.
  const auto lfr_graph = gen::lfr({.n = 3000, .mu = 0.4, .seed = 7});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 3000);
  const LouvainResult result = louvain(g);
  const auto& frac = result.levels.front().trace.moved_fraction;
  ASSERT_GE(frac.size(), 2u);
  EXPECT_GT(frac[0], 0.5);
  EXPECT_LT(frac.back(), frac[0]);
}

TEST(SeqLouvain, HierarchyShrinksMonotonically) {
  const auto lfr_graph = gen::lfr({.n = 2000, .mu = 0.3, .seed = 8});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 2000);
  const LouvainResult result = louvain(g);
  EXPECT_GE(result.num_levels(), 2u);
  for (const auto& level : result.levels) {
    EXPECT_LE(level.num_communities, level.num_vertices);
  }
  for (std::size_t l = 1; l < result.levels.size(); ++l) {
    EXPECT_EQ(result.levels[l].num_vertices, result.levels[l - 1].num_communities);
  }
}

TEST(SeqLouvain, FinalLabelsEqualComposedLevelLabels) {
  const auto graph = gen::planted_partition(
      {.communities = 5, .community_size = 12, .p_intra = 0.8, .p_inter = 0.02, .seed = 9});
  const auto g = graph::Csr::from_edges(graph.edges, 60);
  const LouvainResult result = louvain(g);
  ASSERT_GE(result.num_levels(), 1u);
  const auto composed = result.labels_at_level(result.num_levels() - 1);
  EXPECT_EQ(composed, result.final_labels);
}

TEST(SeqLouvain, EmptyAndTrivialGraphs) {
  const graph::Csr empty;
  const LouvainResult r1 = louvain(empty);
  EXPECT_TRUE(r1.final_labels.empty());

  graph::EdgeList one_edge;
  one_edge.add(0, 1);
  const auto g = graph::Csr::from_edges(one_edge);
  const LouvainResult r2 = louvain(g);
  EXPECT_EQ(r2.final_labels[0], r2.final_labels[1]);
}

TEST(SeqLouvain, IsolatedVerticesStaySingletons) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  const auto g = graph::Csr::from_edges(e, 6);  // vertices 3,4,5 isolated
  const LouvainResult result = louvain(g);
  EXPECT_EQ(result.final_labels[0], result.final_labels[1]);
  EXPECT_NE(result.final_labels[3], result.final_labels[4]);
  EXPECT_NE(result.final_labels[3], result.final_labels[0]);
}

TEST(SeqLouvain, DeterministicInNaturalOrder) {
  const auto lfr_graph = gen::lfr({.n = 800, .mu = 0.3, .seed = 10});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 800);
  const LouvainResult a = louvain(g);
  const LouvainResult b = louvain(g);
  EXPECT_EQ(a.final_labels, b.final_labels);
  EXPECT_DOUBLE_EQ(a.final_modularity, b.final_modularity);
}

TEST(SeqLouvain, ShuffledOrderStillFindsGoodCommunities) {
  const auto graph = gen::planted_partition(
      {.communities = 6, .community_size = 15, .p_intra = 0.8, .p_inter = 0.02, .seed = 11});
  const auto g = graph::Csr::from_edges(graph.edges, 90);
  SeqOptions opts;
  opts.shuffle_seed = 1234;
  const LouvainResult result = louvain(g, opts);
  EXPECT_GT(metrics::nmi(result.final_labels, graph.ground_truth), 0.9);
}

TEST(Coarsen, PreservesTotalWeight) {
  const auto lfr_graph = gen::lfr({.n = 500, .mu = 0.3, .seed = 12});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 500);
  SeqOptions opts;
  const LouvainLevel level = refine_level(g, opts);
  const auto coarse = coarsen(g, level.labels, level.num_communities);
  EXPECT_NEAR(coarse.two_m(), g.two_m(), 1e-6);
}

TEST(Coarsen, SingletonModularityEqualsFinePartitionModularity) {
  // The exactness property the weight convention is designed for.
  const auto lfr_graph = gen::lfr({.n = 500, .mu = 0.3, .seed = 13});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 500);
  SeqOptions opts;
  const LouvainLevel level = refine_level(g, opts);
  const auto coarse = coarsen(g, level.labels, level.num_communities);
  std::vector<vid_t> coarse_singletons(coarse.num_vertices());
  std::iota(coarse_singletons.begin(), coarse_singletons.end(), vid_t{0});
  EXPECT_NEAR(metrics::modularity(coarse, coarse_singletons),
              metrics::modularity(g, level.labels), 1e-9);
}

TEST(Coarsen, EdgeCountNeverGrows) {
  const auto er_edges = gen::erdos_renyi({.n = 300, .m = 1200, .seed = 14});
  const auto g = graph::Csr::from_edges(er_edges, 300);
  SeqOptions opts;
  const LouvainLevel level = refine_level(g, opts);
  const auto coarse = coarsen(g, level.labels, level.num_communities);
  EXPECT_LE(coarse.num_undirected_edges(), g.num_undirected_edges());
}

TEST(SeqLouvain, PruningPreservesQualityWhileSkippingWork) {
  const auto lfr_graph = gen::lfr({.n = 3000, .mu = 0.35, .seed = 16});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 3000);
  SeqOptions pruned;
  pruned.prune = true;
  const LouvainResult with = louvain(g, pruned);
  const LouvainResult without = louvain(g);
  // Quality within a few percent (pruning is the approximation of the
  // paper's ref [11], not an exact transformation)...
  EXPECT_GT(with.final_modularity, 0.95 * without.final_modularity);
  // ...while later sweeps examine only a fraction of the vertices.
  const auto& evaluated = with.levels.front().trace.evaluated_fraction;
  ASSERT_GE(evaluated.size(), 2u);
  EXPECT_DOUBLE_EQ(evaluated.front(), 1.0);  // first sweep sees everyone
  EXPECT_LT(evaluated.back(), 0.6);
}

TEST(SeqLouvain, PruningIsDeterministic) {
  const auto lfr_graph = gen::lfr({.n = 800, .mu = 0.3, .seed = 17});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 800);
  SeqOptions opts;
  opts.prune = true;
  const LouvainResult a = louvain(g, opts);
  const LouvainResult b = louvain(g, opts);
  EXPECT_EQ(a.final_labels, b.final_labels);
}

TEST(SeqLouvain, PruningOffLeavesTraceEmpty) {
  const auto lfr_graph = gen::lfr({.n = 400, .mu = 0.3, .seed = 18});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 400);
  const LouvainResult r = louvain(g);
  EXPECT_TRUE(r.levels.front().trace.evaluated_fraction.empty());
}

TEST(SeqLouvain, LevelZeroDoesMostOfTheWork) {
  // Paper Section V-B: >94% of vertices merge in the first iteration for
  // the social graphs; our LFR stand-ins show the same first-level
  // dominance (evolution ratio well below 0.5 after level 0).
  const auto lfr_graph = gen::lfr({.n = 3000, .mu = 0.3, .seed = 15});
  const auto g = graph::Csr::from_edges(lfr_graph.edges, 3000);
  const LouvainResult result = louvain(g);
  const double ratio = static_cast<double>(result.levels[0].num_communities) / 3000.0;
  EXPECT_LT(ratio, 0.5);
}

}  // namespace
}  // namespace plv::seq
