// Generalized-modularity resolution parameter γ across metrics and both
// engines (the standard Louvain extension; γ = 1 reproduces the paper).
#include <gtest/gtest.h>

#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "seq/louvain_seq.hpp"

namespace plv {
namespace {

TEST(Resolution, GammaOneIsDefaultModularity) {
  const auto g = gen::lfr({.n = 500, .mu = 0.3, .seed = 81});
  const auto csr = graph::Csr::from_edges(g.edges, 500);
  EXPECT_DOUBLE_EQ(metrics::modularity(csr, g.ground_truth),
                   metrics::modularity(csr, g.ground_truth, 1.0));
}

TEST(Resolution, KnownValueOnTwoTriangles) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(3, 4);
  e.add(4, 5);
  e.add(3, 5);
  e.add(2, 3);
  const auto g = graph::Csr::from_edges(e);
  const std::vector<vid_t> split = {0, 0, 0, 1, 1, 1};
  // Q_γ = 2*(6/14 − γ(7/14)²) = 6/7 − γ/2.
  for (double gamma : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(metrics::modularity(g, split, gamma), 6.0 / 7.0 - gamma / 2.0, 1e-12);
  }
}

TEST(Resolution, HigherGammaYieldsMoreCommunitiesSeq) {
  const auto g = gen::lfr({.n = 2000, .mu = 0.25, .seed = 82});
  const auto csr = graph::Csr::from_edges(g.edges, 2000);
  seq::SeqOptions lo, hi;
  lo.resolution = 0.5;
  hi.resolution = 4.0;
  const auto r_lo = seq::louvain(csr, lo);
  const auto r_hi = seq::louvain(csr, hi);
  EXPECT_LT(metrics::count_communities(r_lo.final_labels),
            metrics::count_communities(r_hi.final_labels));
}

TEST(Resolution, HigherGammaYieldsMoreCommunitiesPar) {
  const auto g = gen::lfr({.n = 2000, .mu = 0.25, .seed = 83});
  core::ParOptions lo, hi;
  lo.nranks = hi.nranks = 4;
  lo.resolution = 0.5;
  hi.resolution = 4.0;
  const auto r_lo = plv::louvain(GraphSource::from_edges(g.edges, 2000), lo);
  const auto r_hi = plv::louvain(GraphSource::from_edges(g.edges, 2000), hi);
  EXPECT_LT(metrics::count_communities(r_lo.final_labels),
            metrics::count_communities(r_hi.final_labels));
}

TEST(Resolution, ReportedQMatchesRecomputationAtGamma) {
  const auto g = gen::lfr({.n = 800, .mu = 0.3, .seed = 84});
  const auto csr = graph::Csr::from_edges(g.edges, 800);
  for (double gamma : {0.5, 2.0}) {
    seq::SeqOptions sopts;
    sopts.resolution = gamma;
    const auto rs = seq::louvain(csr, sopts);
    EXPECT_NEAR(rs.final_modularity,
                metrics::modularity(csr, rs.final_labels, gamma), 1e-9);

    core::ParOptions popts;
    popts.nranks = 3;
    popts.resolution = gamma;
    const auto rp = plv::louvain(GraphSource::from_edges(g.edges, 800), popts);
    EXPECT_NEAR(rp.final_modularity,
                metrics::modularity(csr, rp.final_labels, gamma), 1e-9);
  }
}

// γ must reach the streamed-ingestion path too: a from_stream run over
// round-robin slices is the same graph through a different front door,
// so its γ-generalized gains — and therefore its labels and reported Q —
// must exactly match the materialized from_edges run at the same γ.
TEST(Resolution, StreamedIngestionHonorsGamma) {
  const auto g = gen::lfr({.n = 1000, .mu = 0.25, .seed = 86});
  const EdgeSliceFn slice = [&](int rank, int nranks) {
    graph::EdgeList s;
    for (std::size_t i = static_cast<std::size_t>(rank); i < g.edges.size();
         i += static_cast<std::size_t>(nranks)) {
      s.add(g.edges.edges()[i].u, g.edges.edges()[i].v, g.edges.edges()[i].w);
    }
    return s;
  };
  for (double gamma : {0.5, 4.0}) {
    core::ParOptions opts;
    opts.nranks = 4;
    opts.resolution = gamma;
    const auto streamed = plv::louvain(GraphSource::from_stream(slice, 1000), opts);
    const auto cold = plv::louvain(GraphSource::from_edges(g.edges, 1000), opts);
    EXPECT_EQ(streamed.final_labels, cold.final_labels) << "gamma " << gamma;
    EXPECT_EQ(streamed.final_modularity, cold.final_modularity) << "gamma " << gamma;
    const auto csr = graph::Csr::from_edges(g.edges, 1000);
    EXPECT_NEAR(streamed.final_modularity,
                metrics::modularity(csr, streamed.final_labels, gamma), 1e-9);
  }
  // The γ extremes must actually bite through the streamed door too.
  core::ParOptions lo_opts, hi_opts;
  lo_opts.nranks = hi_opts.nranks = 4;
  lo_opts.resolution = 0.5;
  hi_opts.resolution = 4.0;
  const auto lo = plv::louvain(GraphSource::from_stream(slice, 1000), lo_opts);
  const auto hi = plv::louvain(GraphSource::from_stream(slice, 1000), hi_opts);
  EXPECT_LT(metrics::count_communities(lo.final_labels),
            metrics::count_communities(hi.final_labels));
}

TEST(Resolution, TinyGammaMergesEverythingConnected) {
  const auto g = gen::planted_partition(
      {.communities = 4, .community_size = 16, .p_intra = 0.5, .p_inter = 0.05, .seed = 85});
  seq::SeqOptions opts;
  opts.resolution = 0.01;  // penalty vanishes: one giant community per component
  const auto r = seq::louvain(graph::Csr::from_edges(g.edges, 64), opts);
  EXPECT_LE(metrics::count_communities(r.final_labels), 3u);
}

}  // namespace
}  // namespace plv
