// Shared scaffolding for tests that run over both pml transports.
//
// Two things change when a test body runs under TransportKind::kProc
// instead of kThread:
//
//  - gtest EXPECT/ASSERT failures recorded inside a forked child never
//    reach the parent's test result — the child's gtest state dies with
//    the child. Rank bodies must report failures by *throwing* instead
//    (the runtime propagates rank exceptions to the caller on every
//    transport); use PLV_RANK_CHECK / PLV_RANK_CHECK_EQ below.
//
//  - cross-rank shared-memory captures (atomics, vectors written by
//    rank != 0) see copy-on-write copies in child processes. Results
//    must flow through the Comm collectives, or be written by rank 0
//    only (rank 0 always runs in the calling process on both backends).
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "pml/transport.hpp"

namespace plv::pml {

/// Parks any inherited PLV_TRANSPORT for the lifetime of the object and
/// restores it on destruction. Tests that pass explicit transports
/// through ParOptions need this: the CI proc legs export PLV_TRANSPORT
/// binary-wide, and resolve_transport lets the environment win over the
/// options value.
class ScopedTransportEnv {
 public:
  ScopedTransportEnv() {
    const char* value = std::getenv("PLV_TRANSPORT");
    had_env_ = value != nullptr;
    if (had_env_) saved_ = value;
    unsetenv("PLV_TRANSPORT");
  }
  ~ScopedTransportEnv() {
    if (had_env_) setenv("PLV_TRANSPORT", saved_.c_str(), 1);
  }
  ScopedTransportEnv(const ScopedTransportEnv&) = delete;
  ScopedTransportEnv& operator=(const ScopedTransportEnv&) = delete;

 private:
  bool had_env_{false};
  std::string saved_;
};

/// Every backend a parameterized suite should cover. The tcp entry runs
/// the loopback self-test fleet (TcpOptions defaults): forked ranks over
/// 127.0.0.1 ephemeral ports, no configuration. The hybrid entry runs
/// the composed two-tier fleet (HybridOptions defaults: groups of 2
/// thread ranks per forked process), which exercises the hierarchical
/// collectives and the counted-settlement quiescence protocol.
inline constexpr TransportKind kAllTransports[] = {
    TransportKind::kThread, TransportKind::kProc, TransportKind::kTcp,
    TransportKind::kHybrid};

// ThreadSanitizer cannot follow fork(): the child inherits a snapshot of
// the TSan runtime's internal state and deadlocks or reports spurious
// races. The proc and tcp-loopback parameterizations both fork, so both
// skip under TSan builds.
#if defined(__SANITIZE_THREAD__)
#define PLV_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PLV_TSAN_ENABLED 1
#else
#define PLV_TSAN_ENABLED 0
#endif
#else
#define PLV_TSAN_ENABLED 0
#endif

[[nodiscard]] inline constexpr bool transport_supported_in_this_build(
    TransportKind kind) {
  return !(PLV_TSAN_ENABLED &&
           (kind == TransportKind::kProc || kind == TransportKind::kTcp ||
            kind == TransportKind::kHybrid));
}

/// GTEST_SKIP (must run in the test body or SetUp) when `kind` cannot run
/// in this build.
#define PLV_SKIP_IF_UNSUPPORTED(kind)                                        \
  do {                                                                       \
    if (!::plv::pml::transport_supported_in_this_build(kind)) {              \
      GTEST_SKIP() << "forking transport skipped under ThreadSanitizer: "    \
                      "TSan cannot follow fork() (the child inherits a "     \
                      "snapshot of TSan's shadow state and deadlocks); "     \
                      "the forked-child path gets its sanitizer coverage "   \
                      "from the ASan+UBSan CI legs (PLV_SANITIZE), where "   \
                      "proc and tcp run in full";                            \
    }                                                                        \
  } while (0)

/// Throw-based check for use inside rank bodies (see header comment).
#define PLV_RANK_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream plv_os_;                                         \
      plv_os_ << __FILE__ << ":" << __LINE__                              \
              << ": rank check failed: " #cond;                           \
      throw std::runtime_error(plv_os_.str());                            \
    }                                                                     \
  } while (0)

/// Throw-based equality check; operands must be streamable.
#define PLV_RANK_CHECK_EQ(a, b)                                           \
  do {                                                                    \
    const auto plv_a_ = (a);                                              \
    const auto plv_b_ = (b);                                              \
    if (!(plv_a_ == plv_b_)) {                                            \
      std::ostringstream plv_os_;                                         \
      plv_os_ << __FILE__ << ":" << __LINE__                              \
              << ": rank check failed: " #a " == " #b " (" << plv_a_      \
              << " vs " << plv_b_ << ")";                                 \
      throw std::runtime_error(plv_os_.str());                            \
    }                                                                     \
  } while (0)

/// Name suffix for INSTANTIATE_TEST_SUITE_P over kAllTransports.
[[nodiscard]] inline std::string transport_test_name(TransportKind kind) {
  return transport_kind_name(kind);
}

}  // namespace plv::pml
