// TCP backend fault injection and option plumbing.
//
// Three layers under test:
//
//  - parse_host_list / resolve_tcp_options / run_tcp_ranks shape checks:
//    every malformed host list or rank/hosts combination must be rejected
//    with an actionable message before any socket is opened.
//
//  - The frame pump's torn-stream handling, driven directly over a raw
//    socketpair (transport_socket.hpp documents this use): a frame
//    truncated mid-header or mid-payload must surface as a recorded
//    PeerFailure naming the peer, its endpoint, and the exact truncation
//    point — never a silent retry into a desynced stream. A goodbye
//    followed by EOF is the one clean shutdown.
//
//  - Whole-fleet fault injection on real loopback TCP: a rank SIGKILLed
//    mid-exchange, a listener that never comes up, and a forged handshake
//    (bad version / bad magic) must each unwind the survivors within the
//    fail-fast deadline with RemoteRankError naming the dead endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pml/comm.hpp"
#include "pml/transport_socket.hpp"
#include "pml/transport_tcp.hpp"
#include "transport_param.hpp"

namespace plv::pml {
namespace {

using namespace std::chrono_literals;

/// See pml_failfast_test.cpp: on timeout the future is leaked on purpose —
/// its destructor would join the hung run and wedge the test binary.
[[nodiscard]] bool finished_in_time(std::future<void>& fut,
                                    std::chrono::seconds deadline) {
  if (fut.wait_for(deadline) == std::future_status::ready) return true;
  new std::future<void>(std::move(fut));
  return false;
}

/// Reserves a free loopback port by binding :0 and reading the assignment
/// back. The port is released before use (tiny reuse race, acceptable in
/// tests: make_listener sets SO_REUSEADDR).
[[nodiscard]] std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

// ---------------------------------------------------------------------------
// Host list and option plumbing.

TEST(TcpHostList, ParsesAndTrimsEntries) {
  const auto hosts = parse_host_list(" a:1 , b.example.com:65535,127.0.0.1:7000");
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[0], "a:1");
  EXPECT_EQ(hosts[1], "b.example.com:65535");
  EXPECT_EQ(hosts[2], "127.0.0.1:7000");
}

TEST(TcpHostList, RejectsMalformedEntries) {
  EXPECT_THROW((void)parse_host_list(""), std::invalid_argument);
  EXPECT_THROW((void)parse_host_list("a:1,,b:2"), std::invalid_argument);
  EXPECT_THROW((void)parse_host_list("no-port"), std::invalid_argument);
  EXPECT_THROW((void)parse_host_list(":7000"), std::invalid_argument);
  EXPECT_THROW((void)parse_host_list("a:port"), std::invalid_argument);
  EXPECT_THROW((void)parse_host_list("a:0"), std::invalid_argument);
  EXPECT_THROW((void)parse_host_list("a:70000"), std::invalid_argument);
}

TEST(TcpHostList, ErrorNamesTheOffendingEntry) {
  try {
    (void)parse_host_list("good:1,bad");
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("entry 1"), std::string::npos) << what;
    EXPECT_NE(what.find("'bad'"), std::string::npos) << what;
    EXPECT_NE(what.find("host:port"), std::string::npos) << what;
  }
}

TEST(TcpOptionsEnv, HostsAndRankOverrideConfiguredValues) {
  setenv("PLV_HOSTS", "10.0.0.1:7000, 10.0.0.2:7000", 1);
  setenv("PLV_RANK", "1", 1);
  TcpOptions configured;
  configured.hosts = {"stale:1"};
  configured.self_rank = 0;
  const TcpOptions resolved = resolve_tcp_options(configured);
  unsetenv("PLV_HOSTS");
  unsetenv("PLV_RANK");
  ASSERT_EQ(resolved.hosts.size(), 2u);
  EXPECT_EQ(resolved.hosts[0], "10.0.0.1:7000");
  EXPECT_EQ(resolved.hosts[1], "10.0.0.2:7000");
  EXPECT_EQ(resolved.self_rank, 1);
}

TEST(TcpOptionsEnv, NonNumericRankIsRejected) {
  setenv("PLV_RANK", "banana", 1);
  EXPECT_THROW((void)resolve_tcp_options({}), std::invalid_argument);
  unsetenv("PLV_RANK");
}

TEST(TcpRunShape, RankWithoutHostListIsRejected) {
  TcpOptions opt;
  opt.self_rank = 0;
  try {
    detail::run_tcp_ranks(2, [](Comm&) {}, false, opt);
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no host list"), std::string::npos)
        << e.what();
  }
}

TEST(TcpRunShape, HostCountMustMatchRankCount) {
  TcpOptions opt;
  opt.hosts = {"a:1", "b:2"};
  opt.self_rank = 0;
  EXPECT_THROW(detail::run_tcp_ranks(3, [](Comm&) {}, false, opt),
               std::invalid_argument);
}

TEST(TcpRunShape, SelfRankMustIndexTheHostList) {
  TcpOptions opt;
  opt.hosts = {"a:1", "b:2"};
  opt.self_rank = 5;
  EXPECT_THROW(detail::run_tcp_ranks(2, [](Comm&) {}, false, opt),
               std::invalid_argument);
}

TEST(TcpRunShape, ConnectTimeoutMustBePositive) {
  TcpOptions opt;
  opt.connect_timeout_ms = 0;
  EXPECT_THROW(detail::run_tcp_ranks(2, [](Comm&) {}, false, opt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Torn-stream regression tests: the pump over a raw socketpair, with the
// test playing a peer that dies mid-frame. A truncated frame must be
// recorded (and the lane closed), never silently retried.

/// One transport lane (this side plays rank 0, the test socket plays rank
/// 1 at a labeled endpoint) plus the test's raw end of the pair.
struct SeveredLane {
  detail::SocketFrameTransport transport;
  int peer_fd;
};

[[nodiscard]] SeveredLane make_lane() {
  int sv[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  return {detail::SocketFrameTransport("tcp", 0, 2, {-1, sv[1]},
                                       {"", "10.0.0.9:7001"}),
          sv[0]};
}

TEST(TcpTornStream, SeveredMidHeaderRecordsTruncationPoint) {
  auto lane = make_lane();
  detail::FrameHeader h{};
  h.kind = detail::kFrameData;
  h.payload_bytes = 100;
  ASSERT_EQ(::send(lane.peer_fd, &h, 16, 0), 16);  // half a header, then death
  ::close(lane.peer_fd);
  lane.transport.wait_incoming();
  EXPECT_TRUE(lane.transport.aborted());
  const auto* failure = lane.transport.peer_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_EQ(failure->rank, 1);
  EXPECT_EQ(failure->endpoint, "10.0.0.9:7001");
  EXPECT_NE(failure->detail.find("16 of 32 header bytes"), std::string::npos)
      << failure->detail;
}

TEST(TcpTornStream, SeveredMidPayloadRecordsTruncationPoint) {
  auto lane = make_lane();
  detail::FrameHeader h{};
  h.kind = detail::kFrameData;
  h.payload_bytes = 100;
  h.epoch = 7;
  ASSERT_EQ(::send(lane.peer_fd, &h, sizeof(h), 0),
            static_cast<ssize_t>(sizeof(h)));
  const std::vector<char> partial(40, 'x');
  ASSERT_EQ(::send(lane.peer_fd, partial.data(), partial.size(), 0), 40);
  ::close(lane.peer_fd);
  lane.transport.wait_incoming();
  EXPECT_TRUE(lane.transport.aborted());
  const auto* failure = lane.transport.peer_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_EQ(failure->rank, 1);
  EXPECT_NE(failure->detail.find("40 of 100 payload bytes"), std::string::npos)
      << failure->detail;
  EXPECT_NE(failure->detail.find("epoch 7"), std::string::npos) << failure->detail;
}

TEST(TcpTornStream, OversizedLengthPrefixIsDesyncNotAllocation) {
  auto lane = make_lane();
  detail::FrameHeader h{};
  h.kind = detail::kFrameData;
  h.payload_bytes = detail::kMaxFramePayload + 1;
  ASSERT_EQ(::send(lane.peer_fd, &h, sizeof(h), 0),
            static_cast<ssize_t>(sizeof(h)));
  lane.transport.wait_incoming();
  EXPECT_TRUE(lane.transport.aborted());
  const auto* failure = lane.transport.peer_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->detail.find("desynced stream"), std::string::npos)
      << failure->detail;
  ::close(lane.peer_fd);
}

TEST(TcpTornStream, UnknownFrameKindIsDesync) {
  auto lane = make_lane();
  detail::FrameHeader h{};
  h.kind = 99;
  ASSERT_EQ(::send(lane.peer_fd, &h, sizeof(h), 0),
            static_cast<ssize_t>(sizeof(h)));
  lane.transport.wait_incoming();
  EXPECT_TRUE(lane.transport.aborted());
  const auto* failure = lane.transport.peer_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->detail.find("unknown frame kind 99"), std::string::npos)
      << failure->detail;
  ::close(lane.peer_fd);
}

TEST(TcpTornStream, EofWithoutGoodbyeIsAFailure) {
  auto lane = make_lane();
  ::close(lane.peer_fd);  // peer vanishes between frames
  lane.transport.wait_incoming();
  EXPECT_TRUE(lane.transport.aborted());
  const auto* failure = lane.transport.peer_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_NE(failure->detail.find("between frames, without goodbye"),
            std::string::npos)
      << failure->detail;
}

TEST(TcpTornStream, GoodbyeThenEofIsCleanShutdown) {
  auto lane = make_lane();
  detail::FrameHeader h{};
  h.kind = detail::kFrameGoodbye;
  ASSERT_EQ(::send(lane.peer_fd, &h, sizeof(h), 0),
            static_cast<ssize_t>(sizeof(h)));
  ::close(lane.peer_fd);
  // drain(), not wait_incoming(): with every lane retired and nothing
  // queued, a *blocking* wait can never make progress and aborts by
  // design; the non-blocking pump observes the goodbye + EOF as-is.
  std::vector<Chunk*> out;
  EXPECT_EQ(lane.transport.drain(out), 0u);
  EXPECT_FALSE(lane.transport.aborted());
  EXPECT_EQ(lane.transport.peer_failure(), nullptr);
}

// ---------------------------------------------------------------------------
// Whole-fleet fault injection on real loopback TCP.

TEST(TcpFaultInjection, KilledRankUnwindsFleetNamingItsEndpoint) {
  PLV_SKIP_IF_UNSUPPORTED(TransportKind::kTcp);
  auto fut = std::async(std::launch::async, [] {
    Runtime::run(
        4,
        [](Comm& comm) {
          comm.barrier();  // mesh is up and exchanging before the kill
          if (comm.rank() == 2) std::raise(SIGKILL);
          for (int i = 0; i < 1'000'000; ++i) comm.barrier();
        },
        TransportKind::kTcp, /*validate=*/false);
  });
  // The ISSUE's fail-fast bound: survivors unwind within 5 seconds.
  ASSERT_TRUE(finished_in_time(fut, 5s)) << "fleet hung after SIGKILL";
  try {
    fut.get();
    FAIL() << "expected RemoteRankError";
  } catch (const RemoteRankError& e) {
    EXPECT_EQ(e.rank, 2);
    EXPECT_NE(e.endpoint.find("127.0.0.1:"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("killed by signal 9"), std::string::npos)
        << e.what();
  }
}

TEST(TcpFaultInjection, SingleRankModeReportsDeadPeerEndpoint) {
  PLV_SKIP_IF_UNSUPPORTED(TransportKind::kTcp);
  const std::vector<std::string> hosts = {
      "127.0.0.1:" + std::to_string(pick_free_port()),
      "127.0.0.1:" + std::to_string(pick_free_port())};
  // Rank 1 lives in a forked process (fork *before* the async thread) and
  // kills itself after the first barrier.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    ::signal(SIGPIPE, SIG_IGN);
    TcpOptions opt;
    opt.hosts = hosts;
    opt.self_rank = 1;
    try {
      detail::run_tcp_ranks(
          2,
          [](Comm& comm) {
            comm.barrier();
            std::raise(SIGKILL);
          },
          false, opt);
    } catch (...) {
    }
    ::_exit(0);
  }
  auto fut = std::async(std::launch::async, [&hosts] {
    TcpOptions opt;
    opt.hosts = hosts;
    opt.self_rank = 0;
    detail::run_tcp_ranks(
        2,
        [](Comm& comm) {
          for (int i = 0; i < 1'000'000; ++i) comm.barrier();
        },
        false, opt);
  });
  const bool done = finished_in_time(fut, 10s);
  int st = 0;
  ::waitpid(pid, &st, 0);
  ASSERT_TRUE(done) << "survivor hung after peer SIGKILL";
  try {
    fut.get();
    FAIL() << "expected RemoteRankError";
  } catch (const RemoteRankError& e) {
    // Single-rank mode has only the wire: the survivor upgrades the
    // observed EOF to a report naming rank 1's configured endpoint.
    EXPECT_EQ(e.rank, 1);
    EXPECT_EQ(e.endpoint, hosts[1]) << e.what();
    EXPECT_NE(std::string(e.what()).find("connection closed"), std::string::npos)
        << e.what();
  }
}

TEST(TcpFaultInjection, ListenerNeverComesUpTimesOutPromptly) {
  const std::vector<std::string> hosts = {
      "127.0.0.1:" + std::to_string(pick_free_port()),  // never bound
      "127.0.0.1:" + std::to_string(pick_free_port())};
  auto fut = std::async(std::launch::async, [&hosts] {
    TcpOptions opt;
    opt.hosts = hosts;
    opt.self_rank = 1;
    opt.connect_timeout_ms = 800;
    detail::run_tcp_ranks(2, [](Comm&) {}, false, opt);
  });
  ASSERT_TRUE(finished_in_time(fut, 10s)) << "connect retry never timed out";
  try {
    fut.get();
    FAIL() << "expected RemoteRankError";
  } catch (const RemoteRankError& e) {
    EXPECT_EQ(e.rank, 0);
    EXPECT_EQ(e.endpoint, hosts[0]) << e.what();
    EXPECT_NE(std::string(e.what()).find("connect timed out"), std::string::npos)
        << e.what();
  }
}

/// Starts rank 0 of a would-be 2-rank fleet, connects a raw socket to its
/// listener, sends the forged handshake, and returns what rank 0 threw.
void expect_handshake_rejection(const detail::TcpHandshake& forged,
                                const std::string& expected_text) {
  const std::vector<std::string> hosts = {
      "127.0.0.1:" + std::to_string(pick_free_port()),
      "127.0.0.1:" + std::to_string(pick_free_port())};
  auto fut = std::async(std::launch::async, [&hosts] {
    TcpOptions opt;
    opt.hosts = hosts;
    opt.self_rank = 0;
    detail::run_tcp_ranks(2, [](Comm&) {}, false, opt);
  });
  // Rank 0's listener comes up asynchronously; retry the connect briefly.
  int fd = -1;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(std::stoi(hosts[0].substr(10))));
  while (std::chrono::steady_clock::now() < deadline) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(50ms);
  }
  ASSERT_GE(fd, 0) << "rank 0's listener never accepted";
  ASSERT_EQ(::send(fd, &forged, sizeof(forged), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(forged)));
  ASSERT_TRUE(finished_in_time(fut, 10s)) << "rank 0 hung on a bad handshake";
  ::close(fd);
  try {
    fut.get();
    FAIL() << "expected handshake rejection";
  } catch (const RemoteRankError& e) {
    EXPECT_NE(std::string(e.what()).find(expected_text), std::string::npos)
        << e.what();
  }
}

TEST(TcpFaultInjection, HandshakeVersionMismatchIsRejected) {
  detail::TcpHandshake forged{};
  forged.magic = detail::kTcpHandshakeMagic;
  forged.version = detail::kTcpProtocolVersion + 7;
  forged.rank = 1;
  forged.world = 2;
  expect_handshake_rejection(forged, "protocol version mismatch");
}

TEST(TcpFaultInjection, HandshakeBadMagicIsRejected) {
  detail::TcpHandshake forged{};
  forged.magic = 0xDEADBEEF;
  forged.version = detail::kTcpProtocolVersion;
  forged.rank = 1;
  forged.world = 2;
  expect_handshake_rejection(forged, "bad magic");
}

}  // namespace
}  // namespace plv::pml
