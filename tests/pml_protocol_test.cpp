// Negative tests for the ValidatingTransport protocol checker: a
// FaultyTransport test double deliberately commits each violation class —
// on the send side by driving the decorator's API the way a buggy caller
// would, on the receive side by scripting protocol-violating frames into
// drain() the way a buggy backend would — and every test asserts the
// checker rejects the transition with the intended ProtocolError kind.
// Positive coverage (the checker stays silent on conforming traffic over
// both real backends) rides along at the bottom.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pml/aggregator.hpp"
#include "pml/comm.hpp"
#include "pml/mailbox.hpp"
#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "transport_param.hpp"

namespace plv::pml {
namespace {

// ---------------------------------------------------------------------------
// The test double. Chunks are plain heap nodes; release deletes, so ASan
// verifies the checker's dispose-before-throw paths leak nothing.
// ---------------------------------------------------------------------------
class FaultyTransport final : public Transport {
 public:
  enum class CollectiveMode {
    kInOrder,     // conforming: one delivery per source, ascending
    kOutOfOrder,  // delivers source 1 before source 0
    kIncomplete,  // skips the last source entirely
  };

  explicit FaultyTransport(int nranks = 2, int rank = 0)
      : rank_(rank), nranks_(nranks), topo_(Topology::flat(nranks)) {}

  /// Re-describes the fleet's locality (call BEFORE wrapping in a
  /// ValidatingTransport — the checker samples topology() once at
  /// construction to pick flat vs hierarchical lane checking).
  void set_topology(Topology t) { topo_ = std::move(t); }
  [[nodiscard]] const Topology& topology() const override { return topo_; }

  ~FaultyTransport() override {
    for (Chunk* c : scripted_) delete c;
    for (Chunk* c : loopback_) delete c;
  }

  [[nodiscard]] const char* name() const noexcept override { return "faulty"; }
  [[nodiscard]] int rank() const noexcept override { return rank_; }
  [[nodiscard]] int nranks() const noexcept override { return nranks_; }

  void barrier() override {}

  void alltoallv(std::span<const std::span<const std::byte>> /*outgoing*/,
                 CollectiveSink& sink) override {
    switch (collective_mode) {
      case CollectiveMode::kInOrder:
        for (int s = 0; s < nranks_; ++s) sink.deliver(s, {});
        return;
      case CollectiveMode::kOutOfOrder:
        sink.deliver(1, {});
        sink.deliver(0, {});
        for (int s = 2; s < nranks_; ++s) sink.deliver(s, {});
        return;
      case CollectiveMode::kIncomplete:
        for (int s = 0; s + 1 < nranks_; ++s) sink.deliver(s, {});
        return;
    }
  }

  void group_alltoallv(std::span<const std::span<const std::byte>> /*outgoing*/,
                       CollectiveSink& sink) override {
    // Group members ascending by global rank (the contract), except under
    // the scripted violation modes.
    const int base = topo_.leader;
    const int size = topo_.group_size;
    switch (collective_mode) {
      case CollectiveMode::kInOrder:
        for (int j = 0; j < size; ++j) sink.deliver(base + j, {});
        return;
      case CollectiveMode::kOutOfOrder:
        sink.deliver(base + 1, {});
        sink.deliver(base, {});
        for (int j = 2; j < size; ++j) sink.deliver(base + j, {});
        return;
      case CollectiveMode::kIncomplete:
        for (int j = 0; j + 1 < size; ++j) sink.deliver(base + j, {});
        return;
    }
  }

  void leader_alltoallv(std::span<const std::span<const std::byte>> /*outgoing*/,
                        CollectiveSink& sink) override {
    // Peer group leaders ascending by group index.
    const int groups = topo_.ngroups;
    switch (collective_mode) {
      case CollectiveMode::kInOrder:
        for (int g = 0; g < groups; ++g) sink.deliver(g, {});
        return;
      case CollectiveMode::kOutOfOrder:
        sink.deliver(1, {});
        sink.deliver(0, {});
        for (int g = 2; g < groups; ++g) sink.deliver(g, {});
        return;
      case CollectiveMode::kIncomplete:
        for (int g = 0; g + 1 < groups; ++g) sink.deliver(g, {});
        return;
    }
  }

  [[nodiscard]] Chunk* acquire_chunk(std::size_t reserve_bytes) override {
    Chunk* c = new Chunk();
    c->reserve(reserve_bytes);
    ++live_chunks;
    return c;
  }

  void release_chunk(Chunk* chunk) override {
    --live_chunks;
    delete chunk;
  }

  void send(int dest, Chunk* chunk) override {
    if (dest == rank_) {
      loopback_.push_back(chunk);  // self lane: delivered by the next drain
      return;
    }
    --live_chunks;
    delete chunk;  // remote lane of a rank-local double: bytes vanish
  }

  std::size_t drain(std::vector<Chunk*>& out) override {
    const std::size_t n = scripted_.size() + loopback_.size();
    out.insert(out.end(), scripted_.begin(), scripted_.end());
    out.insert(out.end(), loopback_.begin(), loopback_.end());
    scripted_.clear();
    loopback_.clear();
    return n;
  }

  void wait_incoming() override {}

  void raise_abort() noexcept override { aborted_ = true; }
  [[nodiscard]] bool aborted() const noexcept override { return aborted_; }

  void set_pool_watermark(std::size_t) noexcept override {}
  void trim_pool() override {}
  [[nodiscard]] std::size_t pool_free_count() const noexcept override { return 0; }

  /// Scripts one wire frame for the next drain(): what a (possibly buggy)
  /// backend would deliver. `payload_records` uint64 records ride along.
  Chunk* script_arrival(int source, std::uint64_t epoch, bool control,
                        std::uint64_t control_records, std::size_t payload_records) {
    Chunk* c = new Chunk();
    ++live_chunks;
    c->source = source;
    c->epoch = epoch;
    c->control = control;
    c->control_records = control_records;
    for (std::size_t i = 0; i < payload_records; ++i) {
      const std::uint64_t v = i;
      c->append(&v, sizeof(v));
    }
    scripted_.push_back(c);
    return c;
  }

  CollectiveMode collective_mode{CollectiveMode::kInOrder};
  int live_chunks{0};  // acquired or scripted, not yet deleted

 private:
  int rank_;
  int nranks_;
  Topology topo_;
  std::vector<Chunk*> scripted_;
  std::vector<Chunk*> loopback_;
  bool aborted_{false};
};

/// Catches the ProtocolError thrown by `fn` and returns its kind;
/// ADD_FAILUREs (and returns a sentinel) if nothing was thrown.
template <typename Fn>
ProtocolViolation thrown_violation(Fn&& fn) {
  try {
    fn();
  } catch (const ProtocolError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a ProtocolError, none was thrown";
  return ProtocolViolation{-1};
}

/// A filled outgoing data chunk as Comm would stamp it.
Chunk* make_outgoing(ValidatingTransport& vt, int source, std::uint64_t epoch,
                     std::size_t payload_records, bool control = false,
                     std::uint64_t control_records = 0) {
  Chunk* c = vt.acquire_chunk(payload_records * sizeof(std::uint64_t));
  c->source = source;
  c->epoch = epoch;
  c->control = control;
  c->control_records = control_records;
  for (std::size_t i = 0; i < payload_records; ++i) {
    const std::uint64_t v = i;
    c->append(&v, sizeof(v));
  }
  return c;
}

/// Drains through the checker and releases everything delivered (keeps the
/// ledger clean so later goodbye checks see only the intended state).
/// drain() hands over the chunks it validated before a mid-drain violation
/// throws, so the delivered prefix must be released even on the error path.
void drain_and_release(ValidatingTransport& vt) {
  std::vector<Chunk*> got;
  try {
    vt.drain(got);
  } catch (...) {
    for (Chunk* c : got) vt.release_chunk(c);
    throw;
  }
  for (Chunk* c : got) vt.release_chunk(c);
}

// ---------------------------------------------------------------------------
// Send-side transitions (a buggy caller above the seam).
// ---------------------------------------------------------------------------

TEST(ProtocolChecker, SendAfterGoodbyeIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  vt.finalize();
  EXPECT_EQ(thrown_violation([&] {
              // The node is acquired from the *inner* transport: acquiring
              // through the closed checker would already throw.
              Chunk* c = inner.acquire_chunk(8);
              try {
                vt.send(1, c);
              } catch (...) {
                inner.release_chunk(c);  // checker never owned it
                throw;
              }
            }),
            ProtocolViolation::kTrafficAfterGoodbye);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, AnyTrafficAfterGoodbyeIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  vt.finalize();
  vt.finalize();  // idempotent, still closed
  EXPECT_EQ(thrown_violation([&] { vt.barrier(); }),
            ProtocolViolation::kTrafficAfterGoodbye);
  EXPECT_EQ(thrown_violation([&] { (void)vt.acquire_chunk(8); }),
            ProtocolViolation::kTrafficAfterGoodbye);
  EXPECT_EQ(thrown_violation([&] {
              std::vector<Chunk*> out;
              (void)vt.drain(out);
            }),
            ProtocolViolation::kTrafficAfterGoodbye);
}

TEST(ProtocolChecker, DataAfterFinalMarkerOnSendLaneIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  vt.send(1, make_outgoing(vt, 0, 0, 4));
  vt.send(1, make_outgoing(vt, 0, 0, 0, /*control=*/true, /*control_records=*/4));
  EXPECT_EQ(thrown_violation(
                [&] { vt.send(1, make_outgoing(vt, 0, 0, 2)); }),
            ProtocolViolation::kDataAfterFinalMarker);
  EXPECT_EQ(inner.live_chunks, 0);  // the rejected send disposed of its chunk
}

TEST(ProtocolChecker, DuplicateFinalMarkerOnSendLaneIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  vt.send(1, make_outgoing(vt, 0, 0, 0, /*control=*/true, 0));
  EXPECT_EQ(thrown_violation([&] {
              vt.send(1, make_outgoing(vt, 0, 0, 0, /*control=*/true, 0));
            }),
            ProtocolViolation::kDuplicateFinalMarker);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, EpochSkewOnSendLaneIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  // First phase on a remote lane must be epoch 0; jumping ahead is skew.
  EXPECT_EQ(thrown_violation(
                [&] { vt.send(1, make_outgoing(vt, 0, 2, 1)); }),
            ProtocolViolation::kEpochSkew);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, SelfLaneMaySkipEpochsButNeverRegress) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  // exchange_streaming keeps self phases off the transport, so the next
  // transported self phase may arrive at a later epoch — legal.
  vt.send(0, make_outgoing(vt, 0, 0, 0, /*control=*/true, 0));
  vt.send(0, make_outgoing(vt, 0, 3, 0, /*control=*/true, 0));
  drain_and_release(vt);
  // Ordering still holds: a frame for an already-closed phase is rejected.
  EXPECT_EQ(thrown_violation(
                [&] { vt.send(0, make_outgoing(vt, 0, 1, 1)); }),
            ProtocolViolation::kDataAfterFinalMarker);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, UnderpromisingFinalMarkerOnSendLaneIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  vt.send(1, make_outgoing(vt, 0, 0, 4));  // 32 payload bytes this phase
  EXPECT_EQ(thrown_violation([&] {
              // Marker promises 0 records despite the bytes above.
              vt.send(1, make_outgoing(vt, 0, 0, 0, /*control=*/true, 0));
            }),
            ProtocolViolation::kQuiescenceMismatch);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, SendOfForeignChunkIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  Chunk* c = vt.acquire_chunk(8);
  c->source = 0;
  vt.send(0, c);  // ownership gone (loopback queue holds it)
  EXPECT_EQ(thrown_violation([&] { vt.send(0, c); }),
            ProtocolViolation::kForeignChunk);
  drain_and_release(vt);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, MisstampedSourceOnOutgoingChunkIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  EXPECT_EQ(thrown_violation([&] {
              Chunk* c = make_outgoing(vt, /*source=*/1, 0, 1);  // rank is 0
              vt.send(1, c);
            }),
            ProtocolViolation::kForeignChunk);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, ChunkDoubleReleaseIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  Chunk* c = vt.acquire_chunk(8);
  vt.release_chunk(c);
  EXPECT_EQ(thrown_violation([&] { vt.release_chunk(c); }),
            ProtocolViolation::kChunkDoubleRelease);
}

TEST(ProtocolChecker, ChunkHeldAcrossPhaseBoundaryIsALeak) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  Chunk* c = vt.acquire_chunk(8);
  EXPECT_EQ(thrown_violation([&] { vt.trim_pool(); }),
            ProtocolViolation::kChunkLeak);
  vt.release_chunk(c);
  vt.trim_pool();  // clean after the release
}

TEST(ProtocolChecker, ChunkHeldAtGoodbyeIsALeak) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  Chunk* c = vt.acquire_chunk(8);
  EXPECT_EQ(thrown_violation([&] { vt.finalize(); }),
            ProtocolViolation::kChunkLeak);
  inner.release_chunk(c);  // the checker is closed now; clean up directly
}

// ---------------------------------------------------------------------------
// Receive-side transitions (a buggy backend below the seam).
// ---------------------------------------------------------------------------

TEST(ProtocolChecker, DataAfterFinalMarkerOnRecvLaneIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  inner.script_arrival(1, 0, /*control=*/false, 0, 2);
  inner.script_arrival(1, 0, /*control=*/true, /*control_records=*/2, 0);
  drain_and_release(vt);
  inner.script_arrival(1, 0, /*control=*/false, 0, 1);  // phase 0 is closed
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kDataAfterFinalMarker);
  EXPECT_EQ(inner.live_chunks, 0);  // rejected arrivals went back to the pool
}

TEST(ProtocolChecker, DuplicateFinalMarkerOnRecvLaneIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  inner.script_arrival(1, 0, /*control=*/true, 0, 0);
  inner.script_arrival(1, 0, /*control=*/true, 0, 0);
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kDuplicateFinalMarker);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, EpochSkewOnRecvLaneIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  inner.script_arrival(1, 0, /*control=*/true, 0, 0);
  inner.script_arrival(1, 2, /*control=*/false, 0, 1);  // epoch 1 skipped
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kEpochSkew);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, MiscountedQuiescenceMarkerIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  inner.script_arrival(1, 0, /*control=*/false, 0, 2);  // 16 payload bytes
  inner.script_arrival(1, 0, /*control=*/true, /*control_records=*/3, 0);
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kQuiescenceMismatch);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, FusedDataMarkerCountsItsOwnPayload) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  // exchange_streaming's wire shape: one control chunk carrying the whole
  // lane payload. 2 records promised, 2 carried — conforming.
  inner.script_arrival(1, 0, /*control=*/true, /*control_records=*/2, 2);
  drain_and_release(vt);
  // Next phase promises 2 but carries 3 — bytes not a multiple.
  inner.script_arrival(1, 1, /*control=*/true, /*control_records=*/3, 2);
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kQuiescenceMismatch);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, ArrivalWithOutOfRangeSourceIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  inner.script_arrival(7, 0, /*control=*/false, 0, 1);  // fleet has 2 ranks
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kForeignChunk);
  EXPECT_EQ(inner.live_chunks, 0);
}

// ---------------------------------------------------------------------------
// Collective plane.
// ---------------------------------------------------------------------------

struct CountingSink final : CollectiveSink {
  void deliver(int, std::span<const std::byte>) override { ++deliveries; }
  int deliveries{0};
};

TEST(ProtocolChecker, MalformedCollectiveShapeIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(1);  // fleet has 2 ranks
  EXPECT_EQ(thrown_violation([&] { vt.alltoallv(outgoing, sink); }),
            ProtocolViolation::kCollectiveShape);
}

TEST(ProtocolChecker, OutOfOrderCollectiveDeliveryIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  inner.collective_mode = FaultyTransport::CollectiveMode::kOutOfOrder;
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(2);
  EXPECT_EQ(thrown_violation([&] { vt.alltoallv(outgoing, sink); }),
            ProtocolViolation::kCollectiveOrder);
}

TEST(ProtocolChecker, IncompleteCollectiveDeliveryIsRejected) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  inner.collective_mode = FaultyTransport::CollectiveMode::kIncomplete;
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(2);
  EXPECT_EQ(thrown_violation([&] { vt.alltoallv(outgoing, sink); }),
            ProtocolViolation::kCollectiveOrder);
  EXPECT_EQ(sink.deliveries, 1);  // delivery 0 reached the sink before the stop
}

// ---------------------------------------------------------------------------
// Hierarchical planes (non-trivial topology): the leader-only rule on the
// inter-group plane, shape/order on both new planes, the no-markers rule
// of the counted-settlement quiescence protocol, and the epoch_advance
// clock.
// ---------------------------------------------------------------------------

/// A 4-rank fleet in two groups of two, seen from `rank` (transports are
/// pinned objects, so the double is wrapped rather than returned).
struct HierFaulty {
  explicit HierFaulty(int rank) : inner(4, rank) {
    inner.set_topology(Topology::blocks(4, 2, rank));
  }
  FaultyTransport inner;
};

TEST(ProtocolChecker, NonLeaderOnInterGroupPlaneIsRejected) {
  HierFaulty hier(/*rank=*/1);  // member 1 of group 0
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(2);  // ngroups entries
  // The unguarded call IS the scenario. plv-lint: allow(leader-collective-pairing)
  EXPECT_EQ(thrown_violation([&] { vt.leader_alltoallv(outgoing, sink); }),
            ProtocolViolation::kLeaderOnlyCollective);
  EXPECT_EQ(sink.deliveries, 0);  // rejected before touching the wire
}

TEST(ProtocolChecker, MalformedGroupCollectiveShapeIsRejected) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(4);  // group has 2 members
  EXPECT_EQ(thrown_violation([&] { vt.group_alltoallv(outgoing, sink); }),
            ProtocolViolation::kCollectiveShape);
}

TEST(ProtocolChecker, MalformedLeaderCollectiveShapeIsRejected) {
  HierFaulty hier(/*rank=*/2);  // leader of group 1
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(4);  // fleet has 2 groups
  // Bare-plane violation test. plv-lint: allow(leader-collective-pairing)
  EXPECT_EQ(thrown_violation([&] { vt.leader_alltoallv(outgoing, sink); }),
            ProtocolViolation::kCollectiveShape);
}

TEST(ProtocolChecker, OutOfOrderGroupDeliveryIsRejected) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  inner.collective_mode = FaultyTransport::CollectiveMode::kOutOfOrder;
  ValidatingTransport vt(inner);
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(2);
  EXPECT_EQ(thrown_violation([&] { vt.group_alltoallv(outgoing, sink); }),
            ProtocolViolation::kCollectiveOrder);
}

TEST(ProtocolChecker, IncompleteLeaderDeliveryIsRejected) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  inner.collective_mode = FaultyTransport::CollectiveMode::kIncomplete;
  ValidatingTransport vt(inner);
  CountingSink sink;
  std::vector<std::span<const std::byte>> outgoing(2);
  // Bare-plane violation test. plv-lint: allow(leader-collective-pairing)
  EXPECT_EQ(thrown_violation([&] { vt.leader_alltoallv(outgoing, sink); }),
            ProtocolViolation::kCollectiveOrder);
}

TEST(ProtocolChecker, MarkerOnHierarchicalSendLaneIsRejected) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  // The counted-settlement protocol closes phases by exchanged counts;
  // a per-lane marker means two termination mechanisms are mixing.
  EXPECT_EQ(thrown_violation([&] {
              vt.send(1, make_outgoing(vt, 0, 0, 0, /*control=*/true,
                                       /*control_records=*/0));
            }),
            ProtocolViolation::kHierarchicalMarker);
  EXPECT_EQ(inner.live_chunks, 0);  // the rejected send disposed of its chunk
}

TEST(ProtocolChecker, MarkerOnHierarchicalRecvLaneIsRejected) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  inner.script_arrival(1, 0, /*control=*/true, /*control_records=*/1, 1);
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kHierarchicalMarker);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, HierarchicalEpochSkewIsBoundedByOnePhase) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  // Current epoch and one ahead are legal (one-phase skew window)...
  vt.send(1, make_outgoing(vt, 0, 0, 1));
  vt.send(1, make_outgoing(vt, 0, 1, 1));
  vt.epoch_advance(1);
  vt.send(1, make_outgoing(vt, 0, 2, 1));
  // ...two ahead of the settlement clock is a protocol break.
  EXPECT_EQ(thrown_violation([&] { vt.send(1, make_outgoing(vt, 0, 3, 1)); }),
            ProtocolViolation::kEpochSkew);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, HierarchicalStaleEpochArrivalIsRejected) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  vt.epoch_advance(1);
  vt.epoch_advance(2);
  // A rank can only pass settlement for epoch e once every peer finished
  // sending into e; data for epoch 0 arriving now proves a counting bug.
  inner.script_arrival(1, 0, /*control=*/false, 0, 1);
  EXPECT_EQ(thrown_violation([&] { drain_and_release(vt); }),
            ProtocolViolation::kEpochSkew);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, NonMonotonicEpochAdvanceIsRejected) {
  HierFaulty hier(/*rank=*/0);
  FaultyTransport& inner = hier.inner;
  ValidatingTransport vt(inner);
  vt.epoch_advance(1);
  EXPECT_EQ(thrown_violation([&] { vt.epoch_advance(3); }),
            ProtocolViolation::kEpochSkew);
}

TEST(ProtocolChecker, SettlementOverDeliveryIsRejected) {
  // The per-source conservation check behind the settlement collective:
  // a source settled 2 records for this phase but 3 arrived.
  EXPECT_EQ(thrown_violation([&] {
              detail::check_source_quiescence_conservation(
                  /*enforce=*/true, /*rank=*/0, /*epoch=*/0, /*source=*/1,
                  /*received=*/3, /*expected=*/2, "faulty");
            }),
            ProtocolViolation::kQuiescenceMismatch);
  // Exact and under-delivery-so-far are silent (under-delivery at drain
  // end is caught by the aggregate totals instead).
  EXPECT_NO_THROW(detail::check_source_quiescence_conservation(true, 0, 0, 1, 2, 2,
                                                               "faulty"));
  EXPECT_NO_THROW(detail::check_source_quiescence_conservation(true, 0, 0, 1, 1, 2,
                                                               "faulty"));
}

// ---------------------------------------------------------------------------
// The folded typed quiescence check (Comm layer, sizeof(T)-exact) and the
// abort exemption.
// ---------------------------------------------------------------------------

TEST(ProtocolChecker, TypedQuiescenceCountMismatchSurfacesThroughComm) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  // Byte-consistent but count-wrong: 2 uint64 records on the wire, marker
  // promises 4 (16 % 4 == 0, so only Comm's sizeof-aware check can see it).
  inner.script_arrival(1, 0, /*control=*/false, 0, 2);
  inner.script_arrival(1, 0, /*control=*/true, /*control_records=*/4, 0);
  Comm comm(vt);
  const ProtocolViolation kind = thrown_violation([&] {
    comm.drain_until_quiescent<std::uint64_t>([](int, std::span<const std::uint64_t>) {});
  });
  EXPECT_EQ(kind, ProtocolViolation::kQuiescenceMismatch);
  EXPECT_EQ(inner.live_chunks, 0);
}

TEST(ProtocolChecker, ChecksRelaxOnceAborted) {
  FaultyTransport inner;
  ValidatingTransport vt(inner);
  Chunk* held = vt.acquire_chunk(8);
  inner.script_arrival(1, 5, /*control=*/false, 0, 1);  // wild skew
  vt.raise_abort();
  // An aborted fleet unwinds through half-open phases and held chunks;
  // none of that may throw on top of the original failure.
  EXPECT_NO_THROW(drain_and_release(vt));
  EXPECT_NO_THROW(vt.release_chunk(held));
  EXPECT_NO_THROW(vt.trim_pool());
  EXPECT_NO_THROW(vt.finalize());
  EXPECT_EQ(inner.live_chunks, 0);
}

// ---------------------------------------------------------------------------
// Environment knob resolution (PLV_VALIDATE wins, PLV_PARANOID aliases).
// ---------------------------------------------------------------------------

TEST(ValidateEnv, RequestedValuePassesThroughWithoutEnv) {
  EXPECT_TRUE(detail::parse_validate_env(nullptr, nullptr, true));
  EXPECT_FALSE(detail::parse_validate_env(nullptr, nullptr, false));
  EXPECT_TRUE(detail::parse_validate_env("", "", true));
  EXPECT_FALSE(detail::parse_validate_env("", "", false));
}

TEST(ValidateEnv, ValidateVariableOverridesBothWays) {
  EXPECT_TRUE(detail::parse_validate_env("1", nullptr, false));
  EXPECT_FALSE(detail::parse_validate_env("0", nullptr, true));
  // PLV_VALIDATE beats PLV_PARANOID when both are set.
  EXPECT_FALSE(detail::parse_validate_env("0", "1", true));
}

TEST(ValidateEnv, ParanoidAliasEnablesValidation) {
  // Legacy soak scripts export PLV_PARANOID=1; that now means full
  // protocol validation, not just the quiescence count promotion.
  EXPECT_TRUE(detail::parse_validate_env(nullptr, "1", false));
  EXPECT_FALSE(detail::parse_validate_env(nullptr, "0", true));
}

TEST(ValidateEnv, DefaultTracksBuildType) {
#ifdef NDEBUG
  EXPECT_FALSE(kValidateTransportDefault);
#else
  EXPECT_TRUE(kValidateTransportDefault);
#endif
}

// ---------------------------------------------------------------------------
// Positive coverage: conforming traffic over both REAL backends with the
// checker explicitly on, exercising every protocol feature the checker
// models (collectives, aggregated sends, streaming exchange, self lane,
// phase reuse) — the checker must stay silent and results must be right.
// ---------------------------------------------------------------------------

class ValidatedTransports : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }
  void run(int nranks, const std::function<void(Comm&)>& body) const {
    Runtime::run(nranks, body, GetParam(), /*validate=*/true);
  }
};

TEST_P(ValidatedTransports, ConformingTrafficPassesAllPlanes) {
  run(4, [](Comm& comm) {
    const int P = comm.nranks();
    // Collective plane.
    const int sum = comm.allreduce_sum(comm.rank() + 1);
    PLV_RANK_CHECK_EQ(sum, P * (P + 1) / 2);
    comm.barrier();
    // Aggregated fine-grained phase (pure markers close the lanes).
    std::uint64_t received = 0;
    {
      Aggregator<std::uint64_t> agg(comm, 8);
      for (int d = 0; d < P; ++d) {
        for (int i = 0; i < 10 + d; ++i) agg.push(d, static_cast<std::uint64_t>(i));
      }
      agg.flush_all();
    }
    comm.drain_until_quiescent<std::uint64_t>(
        [&](int, std::span<const std::uint64_t> recs) { received += recs.size(); });
    PLV_RANK_CHECK_EQ(received, static_cast<std::uint64_t>(P * (10 + comm.rank())));
    // Streaming exchange (fused data+marker chunks + zero-copy self lane),
    // twice, to reuse lanes across epochs.
    for (int round = 0; round < 2; ++round) {
      std::vector<std::vector<std::uint64_t>> out(static_cast<std::size_t>(P));
      for (int d = 0; d < P; ++d) {
        out[static_cast<std::size_t>(d)].assign(
            static_cast<std::size_t>(comm.rank() + d + round), 7);
      }
      std::uint64_t streamed = 0;
      comm.exchange_streaming<std::uint64_t>(
          out, [&](int, std::span<const std::uint64_t> recs) { streamed += recs.size(); });
      std::uint64_t expect = 0;
      for (int s = 0; s < P; ++s) expect += static_cast<std::uint64_t>(s + comm.rank() + round);
      PLV_RANK_CHECK_EQ(streamed, expect);
    }
  });
}

TEST_P(ValidatedTransports, FinalizedAggregatorDrainPasses) {
  run(3, [](Comm& comm) {
    const int P = comm.nranks();
    Aggregator<std::uint64_t> agg(comm, 4);
    for (int d = 0; d < P; ++d) {
      for (int i = 0; i < 5; ++i) agg.push(d, static_cast<std::uint64_t>(d));
    }
    agg.flush_all_final();  // fused final markers, no marker wave
    std::uint64_t received = 0;
    comm.drain_streaming_finalized<std::uint64_t>(
        [&](int, std::span<const std::uint64_t> recs) { received += recs.size(); });
    PLV_RANK_CHECK_EQ(received, static_cast<std::uint64_t>(P * 5));
  });
}

TEST_P(ValidatedTransports, TransportNameIsUnchangedByValidation) {
  run(2, [&](Comm& comm) {
    PLV_RANK_CHECK_EQ(std::string(comm.transport_name()),
                      std::string(transport_kind_name(GetParam())));
  });
}

TEST_P(ValidatedTransports, RankFailureStillPropagatesUnderValidation) {
  // A failing rank aborts the fleet; the checker must not convert the
  // unwind (half-open phases, undrained chunks) into a ProtocolError that
  // masks the original failure. The caller must still see the injected
  // message (verbatim on thread; wrapped in RemoteRankError on proc).
  try {
    run(3, [](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("injected rank failure");
      for (;;) {
        comm.barrier();  // peers park here until the abort wakes them
      }
    });
    ADD_FAILURE() << "expected the injected rank failure to propagate";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("injected rank failure"), std::string::npos)
        << "propagated a different error: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, ValidatedTransports,
                         ::testing::ValuesIn(kAllTransports),
                         [](const ::testing::TestParamInfo<TransportKind>& info) {
                           return transport_test_name(info.param);
                         });

}  // namespace
}  // namespace plv::pml
