#include "common/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace plv {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Mix64, IsAPermutationSample) {
  // mix64 must not collide on a small dense range (it is bijective).
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 10000; ++x) seen.insert(mix64(x));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowZeroAndOneReturnZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t kBound = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.next_below(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(counts[b], kN / kBound, kN / kBound * 0.1);
  }
}

TEST(Xoshiro256, JumpGivesDisjointStream) {
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace plv
