#include "core/components.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "gen/planted.hpp"
#include "gen/rmat.hpp"

namespace plv::core {
namespace {

ParOptions opts_with(int nranks) {
  ParOptions o;
  o.nranks = nranks;
  return o;
}

TEST(ComponentsSeq, TwoTrianglesAndIsolated) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(3, 4);
  const auto r = connected_components_seq(e, 6);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_EQ(r.component[0], 0u);
  EXPECT_EQ(r.component[2], 0u);
  EXPECT_EQ(r.component[3], 3u);
  EXPECT_EQ(r.component[5], 5u);
}

TEST(ComponentsSeq, ComponentIdIsMinVertex) {
  graph::EdgeList e;
  e.add(9, 4);
  e.add(4, 7);
  const auto r = connected_components_seq(e, 10);
  EXPECT_EQ(r.component[9], 4u);
  EXPECT_EQ(r.component[7], 4u);
  EXPECT_EQ(r.component[4], 4u);
}

class ComponentsPar : public ::testing::TestWithParam<int> {};

TEST_P(ComponentsPar, MatchesSequentialOnChains) {
  // A long path is the worst case for min-label propagation (diameter
  // rounds) — good stress for the frontier logic.
  graph::EdgeList e;
  for (vid_t v = 1; v < 64; ++v) e.add(v - 1, v);
  const auto seq = connected_components_seq(e, 64);
  const auto par = connected_components_parallel(e, 64, opts_with(GetParam()));
  EXPECT_EQ(par.component, seq.component);
  EXPECT_EQ(par.num_components, 1u);
}

TEST_P(ComponentsPar, MatchesSequentialOnPlanted) {
  const auto g = gen::planted_partition(
      {.communities = 5, .community_size = 20, .p_intra = 0.3, .p_inter = 0.0, .seed = 7});
  const auto seq = connected_components_seq(g.edges, 100);
  const auto par = connected_components_parallel(g.edges, 100, opts_with(GetParam()));
  EXPECT_EQ(par.component, seq.component);
}

TEST_P(ComponentsPar, MatchesSequentialOnRmat) {
  gen::RmatParams p;
  p.scale = 10;
  p.edge_factor = 2;  // sparse: many components
  p.seed = 8;
  const auto edges = gen::rmat(p);
  const auto seq = connected_components_seq(edges, 1u << 10);
  const auto par = connected_components_parallel(edges, 1u << 10, opts_with(GetParam()));
  EXPECT_EQ(par.component, seq.component);
  EXPECT_EQ(par.num_components, seq.num_components);
  EXPECT_GT(par.num_components, 1u);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ComponentsPar, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "nranks" + std::to_string(info.param);
                         });

TEST(ComponentsPar, EmptyGraph) {
  const auto r = connected_components_parallel(graph::EdgeList{}, 0, opts_with(2));
  EXPECT_TRUE(r.component.empty());
  EXPECT_EQ(r.num_components, 0u);
}

TEST(ComponentsPar, SelfLoopsDoNotConnect) {
  graph::EdgeList e;
  e.add(0, 0, 2.0);
  e.add(1, 2);
  const auto r = connected_components_parallel(e, 3, opts_with(2));
  EXPECT_EQ(r.num_components, 2u);
}

TEST(ComponentsPar, RoundsBoundedByDiameter) {
  graph::EdgeList e;
  for (vid_t v = 1; v < 32; ++v) e.add(v - 1, v);
  const auto r = connected_components_parallel(e, 32, opts_with(4));
  EXPECT_LE(r.rounds, 34);  // diameter + slack for the final empty round
  EXPECT_GE(r.rounds, 2);
}

}  // namespace
}  // namespace plv::core
