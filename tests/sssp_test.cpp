#include "core/sssp.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "gen/er.hpp"
#include "gen/rmat.hpp"

namespace plv::core {
namespace {

ParOptions opts_with(int nranks) {
  ParOptions o;
  o.nranks = nranks;
  return o;
}

TEST(SsspSeq, WeightedPath) {
  graph::EdgeList e;
  e.add(0, 1, 2.0);
  e.add(1, 2, 3.0);
  e.add(0, 2, 10.0);
  const auto r = sssp_seq(e, 3, 0);
  EXPECT_DOUBLE_EQ(r.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(r.distance[1], 2.0);
  EXPECT_DOUBLE_EQ(r.distance[2], 5.0);  // via 1, not the direct 10
  EXPECT_EQ(r.parent[2], 1u);
}

TEST(SsspSeq, ParallelEdgesTakeCheapest) {
  graph::EdgeList e;
  e.add(0, 1, 9.0);
  e.add(0, 1, 2.0);
  const auto r = sssp_seq(e, 2, 0);
  EXPECT_DOUBLE_EQ(r.distance[1], 2.0);
}

TEST(SsspSeq, UnreachableIsInfinity) {
  graph::EdgeList e;
  e.add(0, 1, 1.0);
  const auto r = sssp_seq(e, 3, 0);
  EXPECT_EQ(r.distance[2], sssp_infinity());
  EXPECT_EQ(r.parent[2], kInvalidVid);
  EXPECT_EQ(r.reached, 2u);
}

TEST(SsspSeq, RejectsNegativeWeights) {
  graph::EdgeList e;
  e.add(0, 1, -1.0);
  EXPECT_THROW(sssp_seq(e, 2, 0), std::invalid_argument);
  EXPECT_THROW(sssp_parallel(e, 2, 0, opts_with(2)), std::invalid_argument);
}

class SsspPar : public ::testing::TestWithParam<int> {};

TEST_P(SsspPar, MatchesDijkstraOnRandomIntegerWeights) {
  // Integer weights make equal-cost path sums exactly representable, so
  // the min-parent tie break is well-defined across engines.
  Xoshiro256 rng(9);
  graph::EdgeList e;
  constexpr vid_t kN = 300;
  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<vid_t>(rng.next_below(kN));
    auto v = static_cast<vid_t>(rng.next_below(kN));
    if (u == v) v = (v + 1) % kN;
    e.add(u, v, static_cast<weight_t>(1 + rng.next_below(9)));
  }
  const auto seq = sssp_seq(e, kN, 0);
  const auto par = sssp_parallel(e, kN, 0, opts_with(GetParam()));
  EXPECT_EQ(par.distance, seq.distance);
  EXPECT_EQ(par.parent, seq.parent);
  EXPECT_EQ(par.reached, seq.reached);
}

TEST_P(SsspPar, MatchesDijkstraOnRmatUnitWeights) {
  gen::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 33;
  const auto edges = gen::rmat(p);
  const auto seq = sssp_seq(edges, 1u << 9, 3);
  const auto par = sssp_parallel(edges, 1u << 9, 3, opts_with(GetParam()));
  EXPECT_EQ(par.distance, seq.distance);
  EXPECT_EQ(par.parent, seq.parent);
}

TEST_P(SsspPar, TreeDistancesAreConsistent) {
  const auto edges = gen::erdos_renyi({.n = 200, .m = 800, .seed = 10});
  graph::EdgeList weighted;
  Xoshiro256 rng(11);
  for (const Edge& e : edges) {
    weighted.add(e.u, e.v, static_cast<weight_t>(1 + rng.next_below(5)));
  }
  const auto r = sssp_parallel(weighted, 200, 0, opts_with(GetParam()));
  // dist[v] == dist[parent[v]] + w(parent[v], v) for every reached vertex.
  for (vid_t v = 0; v < 200; ++v) {
    if (v == 0 || r.distance[v] == sssp_infinity()) continue;
    const vid_t p = r.parent[v];
    ASSERT_NE(p, kInvalidVid);
    weight_t w_min = sssp_infinity();
    for (const Edge& e : weighted) {
      if ((e.u == p && e.v == v) || (e.u == v && e.v == p)) w_min = std::min(w_min, e.w);
    }
    EXPECT_DOUBLE_EQ(r.distance[v], r.distance[p] + w_min);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SsspPar, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "nranks" + std::to_string(info.param);
                         });

TEST(SsspPar, UnitWeightsReduceToBfsDepths) {
  gen::RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  p.seed = 34;
  const auto edges = gen::rmat(p);
  const auto r = sssp_parallel(edges, 1u << 8, 0, opts_with(3));
  const auto d = sssp_seq(edges, 1u << 8, 0);
  EXPECT_EQ(r.distance, d.distance);
}

}  // namespace
}  // namespace plv::core
