#include "common/power_law.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace plv {
namespace {

TEST(PowerLaw, SamplesWithinSupport) {
  PowerLawSampler s(4, 64, 2.5);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto k = s(rng);
    EXPECT_GE(k, 4u);
    EXPECT_LE(k, 64u);
  }
}

TEST(PowerLaw, DegenerateSupportAlwaysReturnsThatValue) {
  PowerLawSampler s(7, 7, 2.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s(rng), 7u);
}

TEST(PowerLaw, HigherExponentSkewsSmaller) {
  Xoshiro256 rng1(2), rng2(2);
  PowerLawSampler gentle(2, 128, 1.5);
  PowerLawSampler steep(2, 128, 3.5);
  double sum_gentle = 0, sum_steep = 0;
  for (int i = 0; i < 20000; ++i) {
    sum_gentle += gentle(rng1);
    sum_steep += steep(rng2);
  }
  EXPECT_GT(sum_gentle, sum_steep);
}

TEST(PowerLaw, ExponentZeroIsUniform) {
  PowerLawSampler s(1, 10, 0.0);
  Xoshiro256 rng(3);
  std::vector<int> counts(11, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[s(rng)];
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(counts[k], kN / 10, kN / 10 * 0.1);
  }
}

TEST(PowerLaw, EmpiricalMeanMatchesAnalyticMean) {
  PowerLawSampler s(4, 64, 2.0);
  Xoshiro256 rng(4);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += s(rng);
  EXPECT_NEAR(sum / kN, s.mean(), 0.1);
}

TEST(PowerLaw, FrequenciesDecreaseWithK) {
  PowerLawSampler s(1, 100, 2.5);
  Xoshiro256 rng(5);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 200000; ++i) ++counts[s(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], counts[20]);
}

}  // namespace
}  // namespace plv
