#include "pml/comm.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <tuple>

#include "transport_param.hpp"

namespace plv::pml {
namespace {

// Every Comm contract test runs on both transports and several fleet
// sizes. Rank bodies report failures by throwing (PLV_RANK_CHECK) so the
// proc backend — where ranks > 0 are forked children — surfaces them too.
class CommTest
    : public ::testing::TestWithParam<std::tuple<TransportKind, int>> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(kind()); }
  [[nodiscard]] TransportKind kind() const { return std::get<0>(GetParam()); }
  [[nodiscard]] int nranks() const { return std::get<1>(GetParam()); }
  void run(const std::function<void(Comm&)>& body) const {
    Runtime::run(nranks(), body, kind());
  }
};

TEST_P(CommTest, RankAndSizeAreConsistent) {
  const int n = nranks();
  run([&](Comm& comm) {
    PLV_RANK_CHECK_EQ(comm.nranks(), n);
    PLV_RANK_CHECK(comm.rank() >= 0);
    PLV_RANK_CHECK(comm.rank() < n);
    // Rank ids are a permutation of 0..n-1: their sum is fixed, and the
    // reduction reaches every rank (shared-memory counters would not
    // cross the proc backend's process boundary).
    PLV_RANK_CHECK_EQ(comm.allreduce_sum(comm.rank()), n * (n - 1) / 2);
  });
}

TEST_P(CommTest, AllreduceSum) {
  const int n = nranks();
  run([&](Comm& comm) {
    const std::uint64_t total = comm.allreduce_sum<std::uint64_t>(comm.rank() + 1);
    PLV_RANK_CHECK_EQ(total, static_cast<std::uint64_t>(n) * (n + 1) / 2);
  });
}

TEST_P(CommTest, AllreduceMinMax) {
  const int n = nranks();
  run([&](Comm& comm) {
    PLV_RANK_CHECK_EQ(comm.allreduce_max(comm.rank()), n - 1);
    PLV_RANK_CHECK_EQ(comm.allreduce_min(comm.rank()), 0);
  });
}

TEST_P(CommTest, AllreduceDoubleIsDeterministicAcrossRuns) {
  std::vector<double> results(2, 0.0);
  for (int run_idx = 0; run_idx < 2; ++run_idx) {
    double out = 0.0;  // written by rank 0 only: the calling process on
                       // both backends, so the capture is safe.
    run([&](Comm& comm) {
      // Values chosen so naive reassociation would give different bits.
      const double mine = 1.0 / (comm.rank() + 3.7);
      const double total = comm.allreduce_sum(mine);
      if (comm.rank() == 0) out = total;
    });
    results[static_cast<std::size_t>(run_idx)] = out;
  }
  EXPECT_EQ(results[0], results[1]);  // bitwise equal: rank-order combine
}

TEST_P(CommTest, AllreduceVecSum) {
  const int n = nranks();
  run([&](Comm& comm) {
    std::vector<std::uint64_t> counts(8, 0);
    counts[static_cast<std::size_t>(comm.rank()) % 8] = 1;
    comm.allreduce_vec_sum(counts);
    const std::uint64_t total = std::accumulate(counts.begin(), counts.end(), 0ULL);
    PLV_RANK_CHECK_EQ(total, static_cast<std::uint64_t>(n));
  });
}

TEST_P(CommTest, AllgatherIsRankIndexed) {
  const int n = nranks();
  run([&](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 10);
    PLV_RANK_CHECK_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      PLV_RANK_CHECK_EQ(all[static_cast<std::size_t>(r)], r * 10);
    }
  });
}

TEST_P(CommTest, AllgathervConcatenatesInRankOrder) {
  const int n = nranks();
  run([&](Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1, comm.rank());
    const auto all = comm.allgatherv(mine);
    std::size_t expected = 0;
    for (int r = 0; r < n; ++r) expected += static_cast<std::size_t>(r) + 1;
    PLV_RANK_CHECK_EQ(all.size(), expected);
    // Check grouping: values must be non-decreasing.
    for (std::size_t i = 1; i < all.size(); ++i) {
      PLV_RANK_CHECK(all[i - 1] <= all[i]);
    }
  });
}

TEST_P(CommTest, ExchangeRoutesByDestination) {
  const int n = nranks();
  run([&](Comm& comm) {
    // Rank r sends value r*100+d to each destination d.
    std::vector<std::vector<int>> outgoing(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      outgoing[static_cast<std::size_t>(d)].push_back(comm.rank() * 100 + d);
    }
    const auto incoming = comm.exchange(outgoing);
    PLV_RANK_CHECK_EQ(incoming.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      // rank order, source s
      PLV_RANK_CHECK_EQ(incoming[static_cast<std::size_t>(s)],
                        s * 100 + comm.rank());
    }
  });
}

TEST_P(CommTest, ExchangeGroupedMatchesRequestReply) {
  const int n = nranks();
  run([&](Comm& comm) {
    std::vector<std::vector<int>> requests(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      for (int i = 0; i <= comm.rank(); ++i) {
        requests[static_cast<std::size_t>(d)].push_back(i);
      }
    }
    const auto incoming = comm.exchange_grouped(requests);
    // Reply with value*2, grouped per source.
    std::vector<std::vector<int>> replies(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      for (int v : incoming[static_cast<std::size_t>(s)]) {
        replies[static_cast<std::size_t>(s)].push_back(v * 2);
      }
    }
    const auto answers = comm.exchange_grouped(replies);
    for (int s = 0; s < n; ++s) {
      PLV_RANK_CHECK_EQ(answers[static_cast<std::size_t>(s)].size(),
                        static_cast<std::size_t>(comm.rank()) + 1);
      for (int i = 0; i <= comm.rank(); ++i) {
        PLV_RANK_CHECK_EQ(answers[static_cast<std::size_t>(s)]
                                 [static_cast<std::size_t>(i)],
                          i * 2);
      }
    }
  });
}

TEST_P(CommTest, FineGrainedSendAndQuiescence) {
  const int n = nranks();
  run([&](Comm& comm) {
    // Every rank sends its rank id to every rank, one record at a time.
    for (int d = 0; d < n; ++d) {
      const int value = comm.rank();
      comm.send_chunk(d, &value, sizeof value, 1);
    }
    std::uint64_t received_sum = 0;
    std::size_t records = 0;
    comm.drain_until_quiescent<int>([&](int /*src*/, std::span<const int> vals) {
      for (int v : vals) {
        received_sum += static_cast<std::uint64_t>(v);
        ++records;
      }
    });
    PLV_RANK_CHECK_EQ(records, static_cast<std::size_t>(n));
    PLV_RANK_CHECK_EQ(received_sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
  });
}

TEST_P(CommTest, ExchangeStreamingMatchesExchange) {
  const int n = nranks();
  run([&](Comm& comm) {
    // Same routing contract as exchange(): rank r sends r*100+d to each
    // destination d; records arrive grouped per source, sources applied
    // in ascending rank order.
    std::vector<std::vector<int>> outgoing(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      outgoing[static_cast<std::size_t>(d)].push_back(comm.rank() * 100 + d);
    }
    std::vector<int> sources;
    std::vector<int> values;
    comm.exchange_streaming<int>(outgoing, [&](int src, std::span<const int> vals) {
      for (int v : vals) {
        sources.push_back(src);
        values.push_back(v);
      }
    });
    PLV_RANK_CHECK_EQ(values.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      PLV_RANK_CHECK_EQ(sources[static_cast<std::size_t>(s)], s);
      PLV_RANK_CHECK_EQ(values[static_cast<std::size_t>(s)], s * 100 + comm.rank());
    }
  });
}

TEST_P(CommTest, ExchangeStreamingRunsOverlapWorkBeforeDrain) {
  const int n = nranks();
  run([&](Comm& comm) {
    std::vector<std::vector<int>> outgoing(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) outgoing[static_cast<std::size_t>(d)] = {comm.rank()};
    bool overlap_ran = false;
    bool record_seen_before_overlap = false;
    comm.exchange_streaming<int>(
        outgoing,
        [&](int /*src*/, std::span<const int> /*vals*/) {
          if (!overlap_ran) record_seen_before_overlap = true;
        },
        [&] { overlap_ran = true; });
    PLV_RANK_CHECK(overlap_ran);
    PLV_RANK_CHECK(!record_seen_before_overlap);
  });
}

TEST_P(CommTest, ExchangeStreamingHandlesEmptyAndSkewedLoads) {
  const int n = nranks();
  run([&](Comm& comm) {
    // Only rank 0 sends, and only to the highest rank — every other
    // (source, dest) lane is empty, exercising the no-data marker path.
    std::vector<std::vector<std::uint64_t>> outgoing(static_cast<std::size_t>(n));
    if (comm.rank() == 0) {
      outgoing[static_cast<std::size_t>(n - 1)] = {7, 8, 9};
    }
    std::uint64_t sum = 0;
    comm.exchange_streaming<std::uint64_t>(
        outgoing, [&](int src, std::span<const std::uint64_t> vals) {
          PLV_RANK_CHECK_EQ(src, 0);
          for (auto v : vals) sum += v;
        });
    PLV_RANK_CHECK_EQ(sum, comm.rank() == n - 1 ? 24u : 0u);
  });
}

TEST_P(CommTest, StreamingDrainAppliesSourcesInRankOrderAcrossChunks) {
  const int n = nranks();
  run([&](Comm& comm) {
    // Several chunks per (source, dest) lane: the drain must preserve
    // FIFO within a source and ascending order across sources even when
    // chunks from a later source arrive first.
    for (int round = 0; round < 3; ++round) {
      for (int d = 0; d < n; ++d) {
        const int value = comm.rank() * 10 + round;
        comm.send_chunk(d, &value, sizeof value, 1);
      }
    }
    std::vector<int> seen;
    comm.drain_streaming<int>([&](int /*src*/, std::span<const int> vals) {
      seen.insert(seen.end(), vals.begin(), vals.end());
    });
    PLV_RANK_CHECK_EQ(seen.size(), static_cast<std::size_t>(n) * 3);
    for (int s = 0; s < n; ++s) {
      for (int round = 0; round < 3; ++round) {
        PLV_RANK_CHECK_EQ(seen[static_cast<std::size_t>(s * 3 + round)],
                          s * 10 + round);
      }
    }
  });
}

TEST_P(CommTest, StreamingDrainMatchesQuiescentDrainTotals) {
  const int n = nranks();
  run([&](Comm& comm) {
    // Back-to-back phases over the same Comm: a streaming drain followed
    // by a classic quiescent drain — epochs must stay aligned and both
    // must deliver every record exactly once.
    for (int phase = 0; phase < 2; ++phase) {
      for (int d = 0; d < n; ++d) {
        const int value = comm.rank() + phase * 1000;
        comm.send_chunk(d, &value, sizeof value, 1);
      }
      std::uint64_t sum = 0;
      const auto handler = [&](int /*src*/, std::span<const int> vals) {
        for (int v : vals) sum += static_cast<std::uint64_t>(v);
      };
      if (phase == 0) {
        comm.drain_streaming<int>(handler);
      } else {
        comm.drain_until_quiescent<int>(handler);
      }
      const std::uint64_t expect =
          static_cast<std::uint64_t>(n) * (n - 1) / 2 +
          static_cast<std::uint64_t>(phase) * 1000 * static_cast<std::uint64_t>(n);
      PLV_RANK_CHECK_EQ(sum, expect);
    }
  });
}

TEST_P(CommTest, TrafficCountersTrackExchange) {
  const int n = nranks();
  run([&](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> outgoing(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) outgoing[static_cast<std::size_t>(d)] = {1, 2, 3};
    (void)comm.exchange(outgoing);
    PLV_RANK_CHECK_EQ(comm.stats().records_sent, static_cast<std::uint64_t>(n) * 3);
    PLV_RANK_CHECK_EQ(comm.stats().records_received,
                      static_cast<std::uint64_t>(n) * 3);
    PLV_RANK_CHECK_EQ(comm.stats().bytes_sent, static_cast<std::uint64_t>(n) * 3 * 8);
  });
}

TEST_P(CommTest, ChunkPoolTrimmedAtPhaseBoundary) {
  const int n = nranks();
  run([&](Comm& comm) {
    constexpr std::size_t kWatermark = 4;
    comm.set_chunk_pool_watermark(kWatermark);
    // Flood every destination with many small chunks so each rank's pool
    // accumulates far more released nodes than the watermark...
    for (int round = 0; round < 8; ++round) {
      for (int d = 0; d < n; ++d) {
        const int value = comm.rank();
        comm.send_chunk(d, &value, sizeof value, 1);
      }
      comm.drain_until_quiescent<int>([](int, std::span<const int>) {});
      // ...and verify the phase boundary clamped the free list back down.
      PLV_RANK_CHECK(comm.chunk_pool_free_count() <= kWatermark);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    TransportsByRankCounts, CommTest,
    ::testing::Combine(::testing::ValuesIn(kAllTransports),
                       ::testing::Values(1, 2, 3, 4, 8)),
    [](const auto& info) {
      return transport_test_name(std::get<0>(info.param)) + "_nranks" +
             std::to_string(std::get<1>(info.param));
    });

class RuntimeTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }
};

TEST_P(RuntimeTest, RejectsNonPositiveRankCount) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}, GetParam()), std::invalid_argument);
  EXPECT_THROW(Runtime::run(-3, [](Comm&) {}, GetParam()), std::invalid_argument);
}

TEST_P(RuntimeTest, PropagatesRankException) {
  EXPECT_THROW(
      Runtime::run(
          1, [](Comm&) { throw std::runtime_error("rank failure"); }, GetParam()),
      std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Transports, RuntimeTest,
                         ::testing::ValuesIn(kAllTransports),
                         [](const auto& info) {
                           return transport_test_name(info.param);
                         });

TEST(Transport, ParseAndResolve) {
  EXPECT_EQ(parse_transport_kind("thread"), TransportKind::kThread);
  EXPECT_EQ(parse_transport_kind("threads"), TransportKind::kThread);
  EXPECT_EQ(parse_transport_kind("proc"), TransportKind::kProc);
  EXPECT_EQ(parse_transport_kind("process"), TransportKind::kProc);
  EXPECT_EQ(parse_transport_kind("processes"), TransportKind::kProc);
  EXPECT_THROW((void)parse_transport_kind("smoke-signals"), std::invalid_argument);

  // resolve_transport: a non-empty PLV_TRANSPORT wins over the requested
  // default; unset or empty leaves the default untouched. Restore the
  // caller's value afterwards (CI legs set it binary-wide).
  const char* saved = std::getenv("PLV_TRANSPORT");
  const std::string saved_value = saved != nullptr ? saved : "";
  unsetenv("PLV_TRANSPORT");
  EXPECT_EQ(resolve_transport(TransportKind::kProc), TransportKind::kProc);
  setenv("PLV_TRANSPORT", "proc", 1);
  EXPECT_EQ(resolve_transport(TransportKind::kThread), TransportKind::kProc);
  setenv("PLV_TRANSPORT", "", 1);
  EXPECT_EQ(resolve_transport(TransportKind::kThread), TransportKind::kThread);
  if (saved != nullptr) {
    setenv("PLV_TRANSPORT", saved_value.c_str(), 1);
  } else {
    unsetenv("PLV_TRANSPORT");
  }
}

}  // namespace
}  // namespace plv::pml
