#include "pml/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace plv::pml {
namespace {

class CommTest : public ::testing::TestWithParam<int> {};

TEST_P(CommTest, RankAndSizeAreConsistent) {
  const int nranks = GetParam();
  std::atomic<int> sum{0};
  Runtime::run(nranks, [&](Comm& comm) {
    EXPECT_EQ(comm.nranks(), nranks);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), nranks);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), nranks * (nranks - 1) / 2);
}

TEST_P(CommTest, AllreduceSum) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    const std::uint64_t total = comm.allreduce_sum<std::uint64_t>(comm.rank() + 1);
    EXPECT_EQ(total, static_cast<std::uint64_t>(nranks) * (nranks + 1) / 2);
  });
}

TEST_P(CommTest, AllreduceMinMax) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    EXPECT_EQ(comm.allreduce_max(comm.rank()), nranks - 1);
    EXPECT_EQ(comm.allreduce_min(comm.rank()), 0);
  });
}

TEST_P(CommTest, AllreduceDoubleIsDeterministicAcrossRuns) {
  const int nranks = GetParam();
  std::vector<double> results(2, 0.0);
  for (int run = 0; run < 2; ++run) {
    std::atomic<double> out{0.0};
    Runtime::run(nranks, [&](Comm& comm) {
      // Values chosen so naive reassociation would give different bits.
      const double mine = 1.0 / (comm.rank() + 3.7);
      const double total = comm.allreduce_sum(mine);
      if (comm.rank() == 0) out = total;
    });
    results[run] = out;
  }
  EXPECT_EQ(results[0], results[1]);  // bitwise equal: rank-order combine
}

TEST_P(CommTest, AllreduceVecSum) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    std::vector<std::uint64_t> counts(8, 0);
    counts[static_cast<std::size_t>(comm.rank()) % 8] = 1;
    comm.allreduce_vec_sum(counts);
    std::uint64_t total = std::accumulate(counts.begin(), counts.end(), 0ULL);
    EXPECT_EQ(total, static_cast<std::uint64_t>(nranks));
  });
}

TEST_P(CommTest, AllgatherIsRankIndexed) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 10);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) EXPECT_EQ(all[r], r * 10);
  });
}

TEST_P(CommTest, AllgathervConcatenatesInRankOrder) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1, comm.rank());
    const auto all = comm.allgatherv(mine);
    std::size_t expected = 0;
    for (int r = 0; r < nranks; ++r) expected += static_cast<std::size_t>(r) + 1;
    ASSERT_EQ(all.size(), expected);
    // Check grouping: values must be non-decreasing.
    for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LE(all[i - 1], all[i]);
  });
}

TEST_P(CommTest, ExchangeRoutesByDestination) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    // Rank r sends value r*100+d to each destination d.
    std::vector<std::vector<int>> outgoing(static_cast<std::size_t>(nranks));
    for (int d = 0; d < nranks; ++d) outgoing[d].push_back(comm.rank() * 100 + d);
    const auto incoming = comm.exchange(outgoing);
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(nranks));
    for (int s = 0; s < nranks; ++s) {
      EXPECT_EQ(incoming[s], s * 100 + comm.rank());  // rank order, source s
    }
  });
}

TEST_P(CommTest, ExchangeGroupedMatchesRequestReply) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    std::vector<std::vector<int>> requests(static_cast<std::size_t>(nranks));
    for (int d = 0; d < nranks; ++d) {
      for (int i = 0; i <= comm.rank(); ++i) requests[d].push_back(i);
    }
    const auto incoming = comm.exchange_grouped(requests);
    // Reply with value*2, grouped per source.
    std::vector<std::vector<int>> replies(static_cast<std::size_t>(nranks));
    for (int s = 0; s < nranks; ++s) {
      for (int v : incoming[s]) replies[s].push_back(v * 2);
    }
    const auto answers = comm.exchange_grouped(replies);
    for (int s = 0; s < nranks; ++s) {
      ASSERT_EQ(answers[s].size(), static_cast<std::size_t>(comm.rank()) + 1);
      for (int i = 0; i <= comm.rank(); ++i) EXPECT_EQ(answers[s][i], i * 2);
    }
  });
}

TEST_P(CommTest, FineGrainedSendAndQuiescence) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    // Every rank sends its rank id to every rank, one record at a time.
    for (int d = 0; d < nranks; ++d) {
      const int value = comm.rank();
      comm.send_chunk(d, &value, sizeof value, 1);
    }
    std::uint64_t received_sum = 0;
    std::size_t records = 0;
    comm.drain_until_quiescent<int>([&](int /*src*/, std::span<const int> vals) {
      for (int v : vals) {
        received_sum += static_cast<std::uint64_t>(v);
        ++records;
      }
    });
    EXPECT_EQ(records, static_cast<std::size_t>(nranks));
    EXPECT_EQ(received_sum, static_cast<std::uint64_t>(nranks) * (nranks - 1) / 2);
  });
}

TEST_P(CommTest, TrafficCountersTrackExchange) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> outgoing(static_cast<std::size_t>(nranks));
    for (int d = 0; d < nranks; ++d) outgoing[d] = {1, 2, 3};
    (void)comm.exchange(outgoing);
    EXPECT_EQ(comm.stats().records_sent, static_cast<std::uint64_t>(nranks) * 3);
    EXPECT_EQ(comm.stats().records_received, static_cast<std::uint64_t>(nranks) * 3);
    EXPECT_EQ(comm.stats().bytes_sent, static_cast<std::uint64_t>(nranks) * 3 * 8);
  });
}

TEST_P(CommTest, ChunkPoolTrimmedAtPhaseBoundary) {
  const int nranks = GetParam();
  Runtime::run(nranks, [&](Comm& comm) {
    constexpr std::size_t kWatermark = 4;
    comm.set_chunk_pool_watermark(kWatermark);
    // Flood every destination with many small chunks so each rank's pool
    // accumulates far more released nodes than the watermark...
    for (int round = 0; round < 8; ++round) {
      for (int d = 0; d < nranks; ++d) {
        const int value = comm.rank();
        comm.send_chunk(d, &value, sizeof value, 1);
      }
      comm.drain_until_quiescent<int>([](int, std::span<const int>) {});
      // ...and verify the phase boundary clamped the free list back down.
      EXPECT_LE(comm.chunk_pool_free_count(), kWatermark);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommTest, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "nranks" + std::to_string(info.param);
                         });

TEST(Runtime, RejectsNonPositiveRankCount) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), std::invalid_argument);
  EXPECT_THROW(Runtime::run(-3, [](Comm&) {}), std::invalid_argument);
}

TEST(Runtime, PropagatesRankException) {
  EXPECT_THROW(
      Runtime::run(1, [](Comm&) { throw std::runtime_error("rank failure"); }),
      std::runtime_error);
}

}  // namespace
}  // namespace plv::pml
