// Distributed ingestion must be a pure refactoring of the input path:
// a from_stream GraphSource over slices == from_edges over their
// concatenation, bit for bit.
#include <gtest/gtest.h>

#include "common/louvain.hpp"
#include "core/options.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"

namespace plv::core {
namespace {

ParOptions opts_with(int nranks) {
  ParOptions o;
  o.nranks = nranks;
  return o;
}

/// Round-robin slicing of a fixed edge list.
EdgeSliceFn round_robin(const graph::EdgeList& edges) {
  return [&edges](int rank, int nranks) {
    graph::EdgeList slice;
    for (std::size_t i = static_cast<std::size_t>(rank); i < edges.size();
         i += static_cast<std::size_t>(nranks)) {
      slice.add(edges.edges()[i].u, edges.edges()[i].v, edges.edges()[i].w);
    }
    return slice;
  };
}

class StreamedIngest : public ::testing::TestWithParam<int> {};

TEST_P(StreamedIngest, BitIdenticalToMonolithicOnLfr) {
  const auto g = gen::lfr({.n = 800, .mu = 0.35, .seed = 71});
  const auto mono = plv::louvain(GraphSource::from_edges(g.edges, 800), opts_with(GetParam()));
  const EdgeSliceFn slice = round_robin(g.edges);
  const auto streamed =
      plv::louvain(GraphSource::from_stream(slice, 800), opts_with(GetParam()));
  EXPECT_EQ(streamed.final_labels, mono.final_labels);
  EXPECT_DOUBLE_EQ(streamed.final_modularity, mono.final_modularity);
  EXPECT_EQ(streamed.num_levels(), mono.num_levels());
}

TEST_P(StreamedIngest, RmatSlicesComposeLikeTheGenerator) {
  // The intended production use: each rank generates its own R-MAT slice
  // directly (rmat_slice), never materializing the global stream.
  gen::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 72;
  const std::uint64_t total = static_cast<std::uint64_t>(p.edge_factor) << p.scale;
  const auto rmat_edges = gen::rmat(p);
  const auto mono =
      plv::louvain(GraphSource::from_edges(rmat_edges, 1u << p.scale), opts_with(GetParam()));
  const EdgeSliceFn rmat_sliced = [&](int rank, int nranks) {
        const std::uint64_t per = total / static_cast<std::uint64_t>(nranks);
        const std::uint64_t first = per * static_cast<std::uint64_t>(rank);
        const std::uint64_t count =
            rank == nranks - 1 ? total - first : per;  // remainder to last rank
    return gen::rmat_slice(p, first, count);
  };
  const auto streamed =
      plv::louvain(GraphSource::from_stream(rmat_sliced, 1u << p.scale), opts_with(GetParam()));
  EXPECT_EQ(streamed.final_labels, mono.final_labels);
  EXPECT_DOUBLE_EQ(streamed.final_modularity, mono.final_modularity);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, StreamedIngest, ::testing::Values(1, 2, 3, 4),
                         [](const auto& info) {
                           return "nranks" + std::to_string(info.param);
                         });

TEST(StreamedIngest, SelfLoopsAndWeightsSurviveRouting) {
  graph::EdgeList edges;
  edges.add(0, 1, 2.5);
  edges.add(2, 2, 1.5);
  edges.add(1, 2, 0.5);
  const auto mono = plv::louvain(GraphSource::from_edges(edges, 3), opts_with(2));
  const EdgeSliceFn slice = round_robin(edges);
  const auto streamed = plv::louvain(GraphSource::from_stream(slice, 3), opts_with(2));
  EXPECT_EQ(streamed.final_labels, mono.final_labels);
  EXPECT_DOUBLE_EQ(streamed.final_modularity, mono.final_modularity);
}

TEST(StreamedIngest, EmptyGraph) {
  const EdgeSliceFn nothing = [](int, int) { return graph::EdgeList{}; };
  const auto r = plv::louvain(GraphSource::from_stream(nothing, 0), opts_with(2));
  EXPECT_TRUE(r.final_labels.empty());
}

}  // namespace
}  // namespace plv::core
