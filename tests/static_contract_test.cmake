# Driver for the static concurrency-contract harness (run via
# `cmake -P`).  Three modes:
#
#   MODE=compile-fail  SNIPPET must be REJECTED by clang++ under
#                      -Wthread-safety -Werror=thread-safety.
#   MODE=compile-pass  SNIPPET must compile clean under the same flags
#                      (positive control: proves the harness compiles).
#   MODE=lint-fail     plv_lint.py --root LINT_ROOT must exit 1
#                      (fixture tree holds a deliberate violation).
#
# Compile modes need a clang++ (CLANGXX); when none was found at
# configure time the test prints the skip marker matched by its
# SKIP_REGULAR_EXPRESSION property and exits 0, so GCC-only hosts skip
# rather than fail.  Lint modes only need Python and are never skipped.
#
# Inputs: MODE, SNIPPET, CLANGXX, SRC_DIR (compile modes);
#         MODE, PYTHON, LINT, LINT_ROOT (lint mode).

if(MODE STREQUAL "compile-fail" OR MODE STREQUAL "compile-pass")
  if(NOT CLANGXX)
    message(STATUS "PLV_SKIP_NO_CLANG: clang++ not found; thread-safety "
                   "negative-compile checks need the clang analysis")
    return()
  endif()
  execute_process(
    COMMAND ${CLANGXX} -std=c++20 -fsyntax-only
            -Wthread-safety -Werror=thread-safety
            -I ${SRC_DIR} ${SNIPPET}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(MODE STREQUAL "compile-fail")
    if(rc EQUAL 0)
      message(FATAL_ERROR "expected ${SNIPPET} to be rejected under "
                          "-Werror=thread-safety, but it compiled clean")
    endif()
    # The rejection must come from the thread-safety analysis, not from
    # an unrelated breakage (bad include path, syntax error).
    if(NOT err MATCHES "thread-safety")
      message(FATAL_ERROR "${SNIPPET} failed to compile, but not with a "
                          "thread-safety diagnostic:\n${err}")
    endif()
    message(STATUS "rejected as expected: ${SNIPPET}")
  else()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "positive control ${SNIPPET} must compile "
                          "clean under -Werror=thread-safety:\n${err}")
    endif()
    message(STATUS "compiled clean: ${SNIPPET}")
  endif()
elseif(MODE STREQUAL "lint-fail")
  execute_process(
    COMMAND ${PYTHON} ${LINT} --root ${LINT_ROOT}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR "expected plv_lint to flag ${LINT_ROOT} "
                        "(exit 1), got exit ${rc}:\n${out}${err}")
  endif()
  message(STATUS "flagged as expected: ${LINT_ROOT}\n${out}")
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
