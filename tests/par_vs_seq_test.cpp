// Cross-engine comparisons: the paper's central quality claim is that the
// parallel algorithm with the convergence heuristic matches the sequential
// baseline (Fig. 4, Fig. 5, Table III). These tests pin that property at
// test scale.
#include <gtest/gtest.h>

#include "core/louvain_par.hpp"
#include "gen/bter.hpp"
#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/similarity.hpp"
#include "seq/louvain_seq.hpp"

namespace plv {
namespace {

struct EngineOutputs {
  LouvainResult seq;
  core::ParResult par;
  graph::Csr csr;
};

EngineOutputs run_both(const graph::EdgeList& edges, vid_t n, int nranks = 4) {
  EngineOutputs out;
  out.csr = graph::Csr::from_edges(edges, n);
  out.seq = seq::louvain(out.csr);
  core::ParOptions popts;
  popts.nranks = nranks;
  out.par = plv::louvain(GraphSource::from_edges(edges, n), popts);
  return out;
}

TEST(ParVsSeq, ModularityOnParWithSeqForLfr) {
  const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 41});
  const auto out = run_both(g.edges, 2000);
  // Paper: "on par with the original sequential algorithm".
  EXPECT_GT(out.par.final_modularity, 0.9 * out.seq.final_modularity);
}

TEST(ParVsSeq, ModularityOnParWithSeqForHarderMixing) {
  const auto g = gen::lfr({.n = 2000, .mu = 0.5, .seed = 42});
  const auto out = run_both(g.edges, 2000);
  EXPECT_GT(out.par.final_modularity, 0.85 * out.seq.final_modularity);
}

TEST(ParVsSeq, SimilarityMetricsHighOnLfr) {
  // Table III shape: NMI / F / RI / ARI / JI high, NVD low, comparing
  // parallel vs sequential partitions.
  const auto g = gen::lfr({.n = 2000, .mu = 0.4, .seed = 43});
  const auto out = run_both(g.edges, 2000);
  const auto s = metrics::similarity(out.par.final_labels, out.seq.final_labels);
  EXPECT_GT(s.nmi, 0.75);
  EXPECT_GT(s.rand_index, 0.9);
  EXPECT_LT(s.nvd, 0.35);
}

TEST(ParVsSeq, CommunityCountsSameOrderOfMagnitude) {
  const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 44});
  const auto out = run_both(g.edges, 2000);
  const auto k_seq = metrics::count_communities(out.seq.final_labels);
  const auto k_par = metrics::count_communities(out.par.final_labels);
  EXPECT_LT(k_par, k_seq * 4 + 8);
  EXPECT_GT(k_par * 4 + 8, k_seq);
}

TEST(ParVsSeq, SizeDistributionsOverlap) {
  // Fig. 5 shape: similar community size distributions.
  const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 45});
  const auto out = run_both(g.edges, 2000);
  auto d_seq = metrics::size_distribution_log2(out.seq.final_labels);
  auto d_par = metrics::size_distribution_log2(out.par.final_labels);
  const std::size_t bins = std::max(d_seq.size(), d_par.size());
  d_seq.resize(bins, 0);
  d_par.resize(bins, 0);
  // L1 distance between normalized distributions below 0.8 (of max 2.0).
  double l1 = 0;
  const double n_seq = static_cast<double>(metrics::count_communities(out.seq.final_labels));
  const double n_par = static_cast<double>(metrics::count_communities(out.par.final_labels));
  for (std::size_t b = 0; b < bins; ++b) {
    l1 += std::abs(d_seq[b] / n_seq - d_par[b] / n_par);
  }
  EXPECT_LT(l1, 0.8);
}

TEST(ParVsSeq, BothRecoverPlantedStructure) {
  const auto g = gen::planted_partition(
      {.communities = 10, .community_size = 20, .p_intra = 0.6, .p_inter = 0.01, .seed = 46});
  const auto out = run_both(g.edges, 200);
  EXPECT_GT(metrics::nmi(out.seq.final_labels, g.ground_truth), 0.95);
  EXPECT_GT(metrics::nmi(out.par.final_labels, g.ground_truth), 0.95);
}

TEST(ParVsSeq, BterCommunityQualityComparable) {
  const auto g = gen::bter({.n = 2000, .gcc_target = 0.5, .seed = 47});
  const auto out = run_both(g.edges, 2000);
  EXPECT_GT(out.par.final_modularity, 0.85 * out.seq.final_modularity);
}

TEST(ParVsSeq, HeuristicBeatsNaiveOnModularityPerRound) {
  // Fig. 4a shape: at equal outer-round budget the heuristic dominates.
  const auto g = gen::lfr({.n = 2000, .mu = 0.4, .seed = 48});
  core::ParOptions with;
  with.nranks = 4;
  with.max_levels = 1;  // one outer round only
  core::ParOptions without = with;
  without.threshold = core::ThresholdModel::kNone;
  const auto a = plv::louvain(GraphSource::from_edges(g.edges, 2000), with);
  const auto b = plv::louvain(GraphSource::from_edges(g.edges, 2000), without);
  ASSERT_FALSE(a.levels.empty());
  ASSERT_FALSE(b.levels.empty());
  EXPECT_GE(a.levels[0].modularity, b.levels[0].modularity - 0.02);
}

TEST(ParVsSeq, EvolutionRatioComparable) {
  // Fig. 4b: evolution ratio (communities/vertices) after level 0 is
  // similar between engines.
  const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 49});
  const auto out = run_both(g.edges, 2000);
  const double r_seq = static_cast<double>(out.seq.levels[0].num_communities) / 2000.0;
  const double r_par = static_cast<double>(out.par.levels[0].num_communities) / 2000.0;
  EXPECT_LT(std::abs(r_seq - r_par), 0.3);
}

}  // namespace
}  // namespace plv
