#include "hashing/edge_table.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/random.hpp"

namespace plv::hashing {
namespace {

TEST(EdgeTable, InsertAndFind) {
  EdgeTable t;
  EXPECT_TRUE(t.insert_or_add(pack_key(1, 2), 3.0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.find(pack_key(1, 2)).value(), 3.0);
  EXPECT_FALSE(t.find(pack_key(2, 1)).has_value());
}

TEST(EdgeTable, InsertOrAddAccumulates) {
  EdgeTable t;
  EXPECT_TRUE(t.insert_or_add(pack_key(7, 9), 1.5));
  EXPECT_FALSE(t.insert_or_add(pack_key(7, 9), 2.5));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.find(pack_key(7, 9)).value(), 4.0);
}

TEST(EdgeTable, EmptyTableFindsNothing) {
  EdgeTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.find(42).has_value());
  EXPECT_FALSE(t.contains(42));
}

TEST(EdgeTable, ClearKeepsCapacity) {
  EdgeTable t(100);
  const auto cap = t.capacity();
  for (std::uint64_t i = 0; i < 100; ++i) t.insert_or_add(i, 1.0);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_FALSE(t.contains(5));
}

TEST(EdgeTable, GrowsBeyondInitialReserve) {
  EdgeTable t(4);
  for (std::uint64_t i = 0; i < 10000; ++i) t.insert_or_add(i * 7 + 1, 1.0);
  EXPECT_EQ(t.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.contains(i * 7 + 1)) << i;
  }
}

TEST(EdgeTable, RespectsConfiguredLoadFactor) {
  EdgeTable t(0, 0.125);
  for (std::uint64_t i = 1; i <= 1000; ++i) t.insert_or_add(i, 1.0);
  EXPECT_LE(t.load_factor(), 0.125 + 1e-9);
}

TEST(EdgeTable, TotalWeightSumsEverything) {
  EdgeTable t;
  t.insert_or_add(1, 1.0);
  t.insert_or_add(2, 2.0);
  t.insert_or_add(1, 3.0);
  EXPECT_DOUBLE_EQ(t.total_weight(), 6.0);
}

TEST(EdgeTable, ForEachVisitsAllEntriesOnce) {
  EdgeTable t;
  std::map<std::uint64_t, weight_t> expected;
  Xoshiro256 rng(17);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.next_below(2000);  // force duplicates
    expected[key] += 1.0;
    t.insert_or_add(key, 1.0);
  }
  std::map<std::uint64_t, weight_t> seen;
  t.for_each([&](std::uint64_t key, weight_t w) { seen[key] += w; });
  EXPECT_EQ(seen, expected);
}

TEST(EdgeTable, MatchesReferenceMapUnderRandomWorkload) {
  EdgeTable t;
  std::map<std::uint64_t, weight_t> ref;
  Xoshiro256 rng(23);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = pack_key(static_cast<vid_t>(rng.next_below(300)),
                                       static_cast<vid_t>(rng.next_below(300)));
    const weight_t w = static_cast<weight_t>(rng.next_below(10)) + 0.5;
    t.insert_or_add(key, w);
    ref[key] += w;
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [key, w] : ref) {
    ASSERT_TRUE(t.find(key).has_value());
    EXPECT_DOUBLE_EQ(t.find(key).value(), w);
  }
}

TEST(EdgeTableRetract, RoundTripsOneContribution) {
  EdgeTable t;
  t.insert_or_add(pack_key(3, 4), 2.5);
  EXPECT_EQ(t.contributions(pack_key(3, 4)), 1u);
  EXPECT_TRUE(t.retract(pack_key(3, 4), 2.5));  // last contribution ⇒ erased
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.contains(pack_key(3, 4)));
  EXPECT_EQ(t.contributions(pack_key(3, 4)), 0u);
}

TEST(EdgeTableRetract, ErasesOnZeroContributionsNotZeroWeight) {
  EdgeTable t;
  // Irrational-ish weights that leave floating-point dust when subtracted.
  t.insert_or_add(pack_key(1, 2), 0.1);
  t.insert_or_add(pack_key(1, 2), 0.2);
  EXPECT_EQ(t.contributions(pack_key(1, 2)), 2u);
  EXPECT_FALSE(t.retract(pack_key(1, 2), 0.2));  // one contribution left
  EXPECT_TRUE(t.contains(pack_key(1, 2)));
  // 0.1 + 0.2 - 0.2 != 0.1 exactly, but the entry survives on count alone.
  EXPECT_NEAR(t.find(pack_key(1, 2)).value(), 0.1, 1e-15);
  EXPECT_TRUE(t.retract(pack_key(1, 2), 0.1));  // count 0 ⇒ erased despite dust
  EXPECT_TRUE(t.empty());
}

TEST(EdgeTableRetract, BackwardShiftKeepsProbeChainsReachable) {
  // kConcatenated hashes key → key & mask, so keys ≡ mod 16 collide and
  // chains near slot 15 wrap to slot 0 — the hardest case for
  // tombstone-free deletion. The first insert grows the table to 16 slots.
  EdgeTable t(0, 0.9, HashKind::kConcatenated);
  const std::uint64_t keys[] = {14, 30, 46, 15, 31, 47};  // homes 14,14,14,15,15,15
  for (std::uint64_t k : keys) t.insert_or_add(k, static_cast<weight_t>(k));
  ASSERT_EQ(t.capacity(), 16u);
  // Deleting from the middle of the wrapped chain must backward-shift the
  // displaced tail (46, 15, 31, 47 sit in slots 0..3) into the hole.
  EXPECT_TRUE(t.retract(30, 30.0));
  for (std::uint64_t k : keys) {
    if (k == 30) {
      EXPECT_FALSE(t.contains(k));
    } else {
      ASSERT_TRUE(t.contains(k)) << k;
      EXPECT_DOUBLE_EQ(t.find(k).value(), static_cast<weight_t>(k));
    }
  }
  // Head deletion plus re-insertion reuses the compacted chain correctly.
  EXPECT_TRUE(t.retract(14, 14.0));
  EXPECT_TRUE(t.insert_or_add(62, 62.0));  // home 14 again
  for (std::uint64_t k : {46u, 15u, 31u, 47u, 62u}) {
    ASSERT_TRUE(t.contains(k)) << k;
  }
  EXPECT_EQ(t.size(), 5u);
}

TEST(EdgeTableRetract, RehashPreservesContributionCounts) {
  EdgeTable t(2);  // tiny: inserting below forces at least one grow/rehash
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t k = 1; k <= 500; ++k) t.insert_or_add(k, 1.0);
  }
  EXPECT_EQ(t.contributions(250), 3u);
  // Two retracts must leave the entry; the third erases it.
  EXPECT_FALSE(t.retract(250, 1.0));
  EXPECT_FALSE(t.retract(250, 1.0));
  EXPECT_TRUE(t.retract(250, 1.0));
  EXPECT_FALSE(t.contains(250));
}

TEST(EdgeTableRetract, MatchesReferenceModelUnderRandomChurn) {
  EdgeTable t;
  struct Ref {
    weight_t w{0};
    std::uint32_t count{0};
  };
  std::map<std::uint64_t, Ref> ref;
  Xoshiro256 rng(41);
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t key = rng.next_below(400) + 1;
    const weight_t w = static_cast<weight_t>(rng.next_below(8)) + 1.0;
    auto it = ref.find(key);
    const bool do_retract = it != ref.end() && it->second.count > 0 && rng.next_below(2) == 0;
    if (do_retract) {
      const bool erased = t.retract(key, w);
      it->second.w -= w;
      if (--it->second.count == 0) {
        EXPECT_TRUE(erased);
        ref.erase(it);
      } else {
        EXPECT_FALSE(erased);
      }
    } else {
      t.insert_or_add(key, w);
      Ref& r = ref[key];
      r.w += w;
      ++r.count;
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [key, r] : ref) {
    ASSERT_TRUE(t.contains(key)) << key;
    EXPECT_EQ(t.contributions(key), r.count);
    EXPECT_NEAR(t.find(key).value(), r.w, 1e-9);
  }
}

class EdgeTableHashParam : public ::testing::TestWithParam<HashKind> {};

TEST_P(EdgeTableHashParam, CorrectUnderEveryHashFunction) {
  EdgeTable t(0, 0.25, GetParam());
  for (std::uint64_t i = 0; i < 4096; ++i) t.insert_or_add(i, 2.0);
  EXPECT_EQ(t.size(), 4096u);
  for (std::uint64_t i = 0; i < 4096; ++i) ASSERT_TRUE(t.contains(i));
  EXPECT_DOUBLE_EQ(t.total_weight(), 8192.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EdgeTableHashParam,
                         ::testing::Values(HashKind::kFibonacci,
                                           HashKind::kLinearCongruential,
                                           HashKind::kBitwise,
                                           HashKind::kConcatenated),
                         [](const auto& info) {
                           return std::string(hash_kind_name(info.param));
                         });

TEST(EdgeTableStats, ProbeLengthsReflectOccupancy) {
  EdgeTable t(1000, 0.25);
  for (std::uint64_t i = 0; i < 1000; ++i) t.insert_or_add(mix64(i), 1.0);
  const TableStats st = t.stats();
  EXPECT_EQ(st.entries, 1000u);
  EXPECT_GE(st.avg_probe_length, 1.0);
  EXPECT_GE(st.max_probe_length, 1u);
  EXPECT_LT(st.avg_probe_length, 2.0);  // 1/4 load ⇒ short chains
}

TEST(EdgeTableStats, EmptyTableStats) {
  EdgeTable t;
  const TableStats st = t.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_DOUBLE_EQ(st.avg_probe_length, 0.0);
}

TEST(EdgeTableStats, LowerLoadFactorShortensProbes) {
  EdgeTable dense(1 << 12, 0.9);
  EdgeTable sparse(1 << 12, 0.125);
  for (std::uint64_t i = 0; i < (1 << 12); ++i) {
    dense.insert_or_add(mix64(i) | 1, 1.0);
    sparse.insert_or_add(mix64(i) | 1, 1.0);
  }
  EXPECT_LE(sparse.stats().avg_probe_length, dense.stats().avg_probe_length);
}

}  // namespace
}  // namespace plv::hashing
