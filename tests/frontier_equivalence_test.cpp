// Frontier-pruned refine: equivalence and edge-case pins.
//
// The row-indexed frontier scan and the fused full scan are two
// strategies for the same FIND — the row index mirrors Out_Table rows
// through the table's own fresh/erased verdicts with weights maintained
// in the same arithmetic order, and both strategies use the exact
// min-label comparator whenever active scheduling is on. So forcing the
// strategy choice to either extreme (frontier_scan_threshold 1 = row
// scan whenever the frontier is restricted, 0 = always fused) must give
// bit-identical labels, modularity, and per-iteration trace on every
// transport, across cold, warm, and streamed ingestion.
//
// With the heuristics off (the default), the engine must scan the full
// partition every iteration — pinned here through the scanned-vertices
// trace so a future change can't silently turn pruning on by default —
// and the heuristics bundle must hold quality parity while scanning
// strictly less.
//
// Vertex-following folds degree-1 vertices onto their anchors before
// level 0 and unfolds at the end; the edge cases live here: chains (a
// single pass on ORIGINAL degrees must not glue a 4-chain into one
// community), mutual leaf pairs (a lone edge: exactly one side folds),
// self-loops on leaves, isolated vertices (no neighbor, never folded),
// and stars (every leaf folds onto the hub).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/louvain.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "transport_param.hpp"

namespace plv {
namespace {

constexpr int kRanks = 4;

class FrontierEquivalence : public ::testing::TestWithParam<pml::TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }

 private:
  pml::ScopedTransportEnv park_env_;
};

const graph::EdgeList& lfr_input() {
  static const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 23});
  return g.edges;
}

/// Round-robin slicing of a fixed edge list (streamed-ingestion input).
EdgeSliceFn round_robin(const graph::EdgeList& edges) {
  return [&edges](int rank, int nranks) {
    graph::EdgeList slice;
    for (std::size_t i = static_cast<std::size_t>(rank); i < edges.size();
         i += static_cast<std::size_t>(nranks)) {
      slice.add(edges.edges()[i].u, edges.edges()[i].v, edges.edges()[i].w);
    }
    return slice;
  };
}

/// Active scheduling on, with the row-vs-fused strategy switch forced to
/// one extreme. threshold 1: every restricted FIND takes the row scan;
/// threshold 0: the fused scan always runs (the row index is still
/// maintained, exercising its mirroring).
core::ParOptions scheduling_opts(pml::TransportKind kind, double threshold) {
  core::ParOptions opts;
  opts.nranks = kRanks;
  opts.transport = kind;
  opts.refine.active_scheduling = true;
  opts.refine.frontier_scan_threshold = threshold;
  return opts;
}

void expect_bit_identical(const Result& row, const Result& fused) {
  EXPECT_EQ(row.final_modularity, fused.final_modularity);
  EXPECT_EQ(row.final_labels, fused.final_labels);
  ASSERT_EQ(row.num_levels(), fused.num_levels());
  for (std::size_t l = 0; l < row.num_levels(); ++l) {
    EXPECT_EQ(row.levels[l].labels, fused.levels[l].labels) << "level " << l;
    EXPECT_EQ(row.levels[l].modularity, fused.levels[l].modularity) << "level " << l;
    // The per-iteration trace is a bitwise artifact of the trajectory:
    // same moves, same propagation volume, same frontier population.
    EXPECT_EQ(row.levels[l].trace.modularity, fused.levels[l].trace.modularity)
        << "level " << l;
    EXPECT_EQ(row.levels[l].trace.scanned_vertices,
              fused.levels[l].trace.scanned_vertices)
        << "level " << l;
    EXPECT_EQ(row.levels[l].trace.prop_records, fused.levels[l].trace.prop_records)
        << "level " << l;
  }
}

TEST_P(FrontierEquivalence, RowScanMatchesFusedScanCold) {
  const auto row = louvain(GraphSource::from_edges(lfr_input()),
                           scheduling_opts(GetParam(), 1.0));
  const auto fused = louvain(GraphSource::from_edges(lfr_input()),
                             scheduling_opts(GetParam(), 0.0));
  expect_bit_identical(row, fused);
}

TEST_P(FrontierEquivalence, RowScanMatchesFusedScanWarm) {
  core::ParOptions seed_opts;
  seed_opts.nranks = kRanks;
  seed_opts.transport = GetParam();
  const auto seed = louvain(GraphSource::from_edges(lfr_input()), seed_opts);
  const auto row =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed.final_labels),
              scheduling_opts(GetParam(), 1.0));
  const auto fused =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed.final_labels),
              scheduling_opts(GetParam(), 0.0));
  expect_bit_identical(row, fused);
}

TEST_P(FrontierEquivalence, RowScanMatchesFusedScanStreamed) {
  const EdgeSliceFn slice = round_robin(lfr_input());
  const auto row = louvain(GraphSource::from_stream(slice, 2000),
                           scheduling_opts(GetParam(), 1.0));
  const auto fused = louvain(GraphSource::from_stream(slice, 2000),
                             scheduling_opts(GetParam(), 0.0));
  expect_bit_identical(row, fused);
}

// With the heuristics at their defaults (all off) every FIND must scan
// the whole level graph: scanned_vertices[i] == num_vertices for every
// iteration of every level. This is the "default-off is the PR 8 full
// scan" pin — pruning may never switch itself on.
TEST_P(FrontierEquivalence, DefaultOffScansFullPartition) {
  core::ParOptions opts;
  opts.nranks = kRanks;
  opts.transport = GetParam();
  const auto r = louvain(GraphSource::from_edges(lfr_input()), opts);
  for (std::size_t l = 0; l < r.num_levels(); ++l) {
    ASSERT_FALSE(r.levels[l].trace.scanned_vertices.empty()) << "level " << l;
    for (const std::uint64_t scanned : r.levels[l].trace.scanned_vertices) {
      EXPECT_EQ(scanned, static_cast<std::uint64_t>(r.levels[l].num_vertices))
          << "level " << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, FrontierEquivalence,
                         ::testing::ValuesIn(pml::kAllTransports),
                         [](const auto& info) {
                           return pml::transport_test_name(info.param);
                         });

// The full bundle must hold quality parity on the LFR input while doing
// strictly less FIND work than the stock full scan. The trajectory is
// different by design, so the comparison is quality + work, not bits.
TEST(FrontierHeuristics, BundleHoldsQualityParityWithFewerScans) {
  pml::ScopedTransportEnv park_env;
  core::ParOptions stock;
  stock.nranks = kRanks;
  core::ParOptions bundle = stock;
  bundle.refine = core::RefinePlan::heuristics();

  const auto base = louvain(GraphSource::from_edges(lfr_input()), stock);
  const auto heur = louvain(GraphSource::from_edges(lfr_input()), bundle);

  EXPECT_NEAR(heur.final_modularity, base.final_modularity, 0.02);

  std::uint64_t base_scanned = 0;
  std::uint64_t heur_scanned = 0;
  for (const auto& level : base.levels) {
    for (std::uint64_t s : level.trace.scanned_vertices) base_scanned += s;
  }
  for (const auto& level : heur.levels) {
    for (std::uint64_t s : level.trace.scanned_vertices) heur_scanned += s;
  }
  EXPECT_LT(heur_scanned, base_scanned);
}

// --- Vertex-following edge cases (thread transport, tiny graphs). ---

core::ParOptions vf_opts(bool follow) {
  core::ParOptions opts;
  opts.nranks = 2;
  opts.refine.vertex_following = follow;
  return opts;
}

// A 4-chain's optimum is two pairs; folding must run ONE pass on the
// original degrees (an iterated fold would glue the whole chain: after
// 0->1 and 3->2, vertices 1 and 2 look degree-1 again).
TEST(VertexFollowing, FourChainKeepsTwoPairs) {
  pml::ScopedTransportEnv park_env;
  graph::EdgeList chain;
  chain.add(0, 1);
  chain.add(1, 2);
  chain.add(2, 3);
  const auto r = louvain(GraphSource::from_edges(chain), vf_opts(true));
  ASSERT_EQ(r.final_labels.size(), 4u);
  EXPECT_EQ(r.final_labels[0], r.final_labels[1]);
  EXPECT_EQ(r.final_labels[2], r.final_labels[3]);
  EXPECT_NE(r.final_labels[1], r.final_labels[2]);
  const auto plain = louvain(GraphSource::from_edges(chain), vf_opts(false));
  EXPECT_NEAR(r.final_modularity, plain.final_modularity, 1e-12);
}

// A 5-chain has interior anchors of degree 2: only the end leaves fold,
// and each ends up co-membered with its anchor.
TEST(VertexFollowing, FiveChainLeavesJoinAnchors) {
  pml::ScopedTransportEnv park_env;
  graph::EdgeList chain;
  for (vid_t v = 0; v < 4; ++v) chain.add(v, v + 1);
  const auto r = louvain(GraphSource::from_edges(chain), vf_opts(true));
  ASSERT_EQ(r.final_labels.size(), 5u);
  EXPECT_EQ(r.final_labels[0], r.final_labels[1]);
  EXPECT_EQ(r.final_labels[4], r.final_labels[3]);
}

// A lone edge is a mutual leaf pair: exactly one side folds (larger id
// onto smaller), the other is its anchor — never both, which would
// orphan the pair.
TEST(VertexFollowing, MutualLeafPairFoldsOneSide) {
  pml::ScopedTransportEnv park_env;
  graph::EdgeList pair;
  pair.add(0, 1);
  const auto r = louvain(GraphSource::from_edges(pair), vf_opts(true));
  ASSERT_EQ(r.final_labels.size(), 2u);
  EXPECT_EQ(r.final_labels[0], r.final_labels[1]);
}

// A leaf carrying a self-loop must NOT fold: the always-join guarantee
// ΔQ = (w/m)(1 − Σtot(u)/2m) > 0 assumes the leaf's strength is its one
// edge, and the loop inflates the strength while the attachment gain
// stays w. On this graph (self-looped pendant on a triangle) the optimum
// keeps the pendant as its own singleton — folding would pin it to the
// triangle and lose modularity. With no other foldable vertex, the
// vertex-following run must be bit-identical to the plain one.
TEST(VertexFollowing, SelfLoopedLeafIsNotFolded) {
  pml::ScopedTransportEnv park_env;
  graph::EdgeList g;
  g.add(0, 0);  // self-loop on the pendant
  g.add(0, 1);
  g.add(1, 2);
  g.add(2, 3);
  g.add(3, 1);
  const auto r = louvain(GraphSource::from_edges(g), vf_opts(true));
  const auto plain = louvain(GraphSource::from_edges(g), vf_opts(false));
  ASSERT_EQ(r.final_labels.size(), 4u);
  EXPECT_EQ(r.final_modularity, plain.final_modularity);
  EXPECT_EQ(r.final_labels, plain.final_labels);
  // The singleton pendant is the optimum here, not a co-membership.
  EXPECT_NE(r.final_labels[0], r.final_labels[1]);
}

// An isolated vertex has no neighbor, so it is not a leaf: it must
// survive the fold/unfold round trip as its own singleton.
TEST(VertexFollowing, IsolatedVertexStaysSingleton) {
  pml::ScopedTransportEnv park_env;
  graph::EdgeList g;
  g.add(0, 1);
  g.add(1, 2);
  // Vertex 3 exists only through the explicit vertex count.
  const auto r = louvain(GraphSource::from_edges(g, 4), vf_opts(true));
  ASSERT_EQ(r.final_labels.size(), 4u);
  EXPECT_NE(r.final_labels[3], r.final_labels[0]);
  EXPECT_NE(r.final_labels[3], r.final_labels[1]);
  EXPECT_NE(r.final_labels[3], r.final_labels[2]);
}

// Every spoke of a star folds onto the hub; the whole star is one
// community (the K_{1,n} modularity optimum).
TEST(VertexFollowing, StarCollapsesOntoHub) {
  pml::ScopedTransportEnv park_env;
  graph::EdgeList star;
  for (vid_t leaf = 1; leaf <= 5; ++leaf) star.add(0, leaf);
  const auto r = louvain(GraphSource::from_edges(star), vf_opts(true));
  ASSERT_EQ(r.final_labels.size(), 6u);
  for (vid_t v = 1; v <= 5; ++v) {
    EXPECT_EQ(r.final_labels[v], r.final_labels[0]) << "leaf " << v;
  }
}

// Warm start composes with vertex-following: the fold must not corrupt a
// seeded partition's quality on a structured input.
TEST(VertexFollowing, WarmStartHoldsQuality) {
  pml::ScopedTransportEnv park_env;
  const auto& edges = lfr_input();
  core::ParOptions seed_opts;
  seed_opts.nranks = kRanks;
  const auto seed = louvain(GraphSource::from_edges(edges), seed_opts);
  core::ParOptions warm_opts = seed_opts;
  warm_opts.refine.vertex_following = true;
  const auto warm =
      louvain(GraphSource::from_edges_warm(edges, seed.final_labels), warm_opts);
  EXPECT_GE(warm.final_modularity, seed.final_modularity - 0.02);
}

}  // namespace
}  // namespace plv
