#include "core/hierarchy.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "seq/louvain_seq.hpp"

namespace plv::core {
namespace {

LouvainResult run_seq(const graph::EdgeList& edges, vid_t n) {
  return seq::louvain(graph::Csr::from_edges(edges, n));
}

TEST(Hierarchy, LevelsAndLabelsMatchResult) {
  const auto g = gen::lfr({.n = 1000, .mu = 0.3, .seed = 61});
  const auto result = run_seq(g.edges, 1000);
  const Hierarchy h(result);
  ASSERT_EQ(h.num_levels(), result.num_levels());
  EXPECT_EQ(h.num_vertices(), 1000u);
  EXPECT_EQ(h.labels_at(h.num_levels() - 1), result.final_labels);
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    EXPECT_EQ(h.labels_at(l), result.labels_at_level(l));
    EXPECT_EQ(h.communities_at(l), result.levels[l].num_communities);
  }
}

TEST(Hierarchy, MembersPartitionTheVertexSet) {
  const auto g = gen::planted_partition(
      {.communities = 5, .community_size = 16, .p_intra = 0.8, .p_inter = 0.02, .seed = 62});
  const Hierarchy h(run_seq(g.edges, 80));
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    std::size_t total = 0;
    for (vid_t c = 0; c < static_cast<vid_t>(h.communities_at(l)); ++c) {
      const auto members = h.members(l, c);
      total += members.size();
      for (vid_t v : members) EXPECT_EQ(h.labels_at(l)[v], c);
    }
    EXPECT_EQ(total, 80u);
  }
}

TEST(Hierarchy, ParentChainsAreConsistent) {
  const auto g = gen::lfr({.n = 1500, .mu = 0.3, .seed = 63});
  const auto result = run_seq(g.edges, 1500);
  const Hierarchy h(result);
  if (h.num_levels() < 2) GTEST_SKIP() << "graph collapsed in one level";
  for (std::size_t l = 0; l + 1 < h.num_levels(); ++l) {
    for (vid_t c = 0; c < static_cast<vid_t>(h.communities_at(l)); ++c) {
      const vid_t parent = h.parent_of(l, c);
      ASSERT_NE(parent, kInvalidVid);
      // Every member of c must carry label `parent` at level l+1.
      for (vid_t v : h.members(l, c)) {
        EXPECT_EQ(h.labels_at(l + 1)[v], parent);
      }
    }
  }
  // Top level has no parents.
  EXPECT_EQ(h.parent_of(h.num_levels() - 1, 0), kInvalidVid);
}

TEST(Hierarchy, TreeNodeSizesSumToN) {
  const auto g = gen::lfr({.n = 800, .mu = 0.3, .seed = 64});
  const Hierarchy h(run_seq(g.edges, 800));
  const auto nodes = h.tree();
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    std::uint64_t total = 0;
    for (const TreeNode& node : nodes) {
      if (node.level == l) total += node.size;
    }
    EXPECT_EQ(total, 800u) << "level " << l;
  }
}

TEST(Hierarchy, WorksOnParallelResults) {
  const auto g = gen::lfr({.n = 800, .mu = 0.3, .seed = 65});
  ParOptions opts;
  opts.nranks = 4;
  const ParResult result = plv::louvain(GraphSource::from_edges(g.edges, 800), opts);
  const Hierarchy h(result);
  EXPECT_EQ(h.labels_at(h.num_levels() - 1), result.final_labels);
}

TEST(Hierarchy, WriteTreeEmitsOneLinePerChild) {
  const auto g = gen::planted_partition(
      {.communities = 3, .community_size = 8, .p_intra = 0.9, .p_inter = 0.02, .seed = 66});
  const auto result = run_seq(g.edges, 24);
  const Hierarchy h(result);
  std::ostringstream os;
  h.write_tree(os);
  std::size_t lines = 0;
  std::string line;
  std::istringstream is(os.str());
  std::size_t expected = 0;
  for (std::size_t l = 0; l < result.num_levels(); ++l) {
    expected += result.levels[l].labels.size();
  }
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, expected);
}

TEST(Hierarchy, OutOfRangeThrows) {
  const auto g = gen::planted_partition(
      {.communities = 3, .community_size = 8, .p_intra = 0.9, .p_inter = 0.02, .seed = 67});
  const Hierarchy h(run_seq(g.edges, 24));
  EXPECT_THROW((void)h.labels_at(99), std::out_of_range);
  EXPECT_THROW((void)h.communities_at(99), std::out_of_range);
  EXPECT_THROW((void)h.parent_of(99, 0), std::out_of_range);
}

}  // namespace
}  // namespace plv::core
