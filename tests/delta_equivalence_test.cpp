// Delta-vs-full-rebuild equivalence of Out_Table maintenance.
//
// The incremental STATE PROPAGATION (retraction/assertion pairs for moved
// vertices, ParOptions::full_rebuild_every > 1) must be indistinguishable
// from rebuilding the table every iteration. On unit/integer-weight graphs
// every accumulation is an exact integer sum in doubles, so the two paths
// are *bit-compatible*: identical labels and modularity for every rebuild
// cadence, including "never rebuild". Non-integer weights accumulate
// bounded floating-point dust in patched entries; the count-based
// erase-on-zero keeps the table's density exact regardless, and the
// cadence bounds the drift (see DESIGN.md).
//
// Also pins the perf claim that motivates the whole mechanism: steady-
// state iterations ship a small multiple of moved-vertex degrees instead
// of Σ|In_Table| records.
#include <gtest/gtest.h>

#include <numeric>

#include "common/random.hpp"
#include "core/louvain_par.hpp"
#include "gen/er.hpp"
#include "gen/lfr.hpp"

namespace plv::core {
namespace {

ParOptions opts_with_cadence(int cadence, int nranks = 4) {
  ParOptions opts;
  opts.nranks = nranks;
  opts.full_rebuild_every = cadence;
  return opts;
}

/// Cadences under test: every iteration (the legacy rebuild-always path),
/// a mid value, and never (pure delta after the level's initial build).
constexpr int kCadences[] = {1, 4, 0};

TEST(DeltaEquivalence, LfrLabelsBitCompatibleAcrossCadences) {
  const auto g = gen::lfr({.n = 1500, .mu = 0.3, .seed = 7});
  const auto reference = plv::louvain(GraphSource::from_edges(g.edges, 1500), opts_with_cadence(1));
  for (int cadence : {4, 0}) {
    const auto r = plv::louvain(GraphSource::from_edges(g.edges, 1500), opts_with_cadence(cadence));
    EXPECT_EQ(r.final_labels, reference.final_labels) << "cadence " << cadence;
    EXPECT_NEAR(r.final_modularity, reference.final_modularity, 1e-12);
    ASSERT_EQ(r.levels.size(), reference.levels.size());
    for (std::size_t lvl = 0; lvl < r.levels.size(); ++lvl) {
      EXPECT_EQ(r.levels[lvl].labels, reference.levels[lvl].labels)
          << "cadence " << cadence << " level " << lvl;
      EXPECT_NEAR(r.levels[lvl].modularity, reference.levels[lvl].modularity, 1e-12);
    }
  }
}

TEST(DeltaEquivalence, RandomizedErGraphsAgreeAcrossCadencesAndRanks) {
  // ER graphs have no community structure — refinement churns labels for
  // many low-gain iterations, stressing long delta chains between rebuilds.
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const auto edges = gen::erdos_renyi({.n = 600, .m = 3000, .seed = seed});
    for (int nranks : {1, 4}) {
      const auto reference =
          plv::louvain(GraphSource::from_edges(edges, 600), opts_with_cadence(1, nranks));
      for (int cadence : {4, 0}) {
        const auto r =
            plv::louvain(GraphSource::from_edges(edges, 600), opts_with_cadence(cadence, nranks));
        EXPECT_EQ(r.final_labels, reference.final_labels)
            << "seed " << seed << " nranks " << nranks << " cadence " << cadence;
        EXPECT_NEAR(r.final_modularity, reference.final_modularity, 1e-12);
      }
    }
  }
}

TEST(DeltaEquivalence, IntegerWeightedGraphStaysExact) {
  // Integer (but non-unit) weights: sums stay below 2^53, so delta
  // maintenance is still exact arithmetic.
  Xoshiro256 rng(21);
  graph::EdgeList edges;
  const vid_t n = 400;
  for (int i = 0; i < 2400; ++i) {
    const auto u = static_cast<vid_t>(rng.next_below(n));
    const auto v = static_cast<vid_t>(rng.next_below(n));
    edges.add(u, v, static_cast<weight_t>(rng.next_below(9) + 1));
  }
  const auto reference = plv::louvain(GraphSource::from_edges(edges, n), opts_with_cadence(1));
  for (int cadence : {4, 0}) {
    const auto r = plv::louvain(GraphSource::from_edges(edges, n), opts_with_cadence(cadence));
    EXPECT_EQ(r.final_labels, reference.final_labels) << "cadence " << cadence;
    EXPECT_NEAR(r.final_modularity, reference.final_modularity, 1e-12);
  }
}

TEST(DeltaEquivalence, WarmStartEntryPointAgreesAcrossCadences) {
  const auto g = gen::lfr({.n = 1000, .mu = 0.25, .seed = 31});
  // Seed from a coarse prior partition (the planted truth, perturbed by
  // collapsing pairs) so the warm path actually skips iterations.
  std::vector<vid_t> warm(1000);
  for (vid_t v = 0; v < 1000; ++v) warm[v] = g.ground_truth[v] / 2 * 2 % 1000;
  const auto reference =
      plv::louvain(GraphSource::from_edges_warm(g.edges, warm, 1000), opts_with_cadence(1));
  for (int cadence : {4, 0}) {
    const auto r = plv::louvain(GraphSource::from_edges_warm(g.edges, warm, 1000), opts_with_cadence(cadence));
    EXPECT_EQ(r.final_labels, reference.final_labels) << "cadence " << cadence;
    EXPECT_NEAR(r.final_modularity, reference.final_modularity, 1e-12);
  }
}

TEST(DeltaEquivalence, StreamedEntryPointAgreesAcrossCadences) {
  const auto g = gen::lfr({.n = 1000, .mu = 0.3, .seed = 37});
  const EdgeSliceFn slice_of = [&](int rank, int nranks) {
    graph::EdgeList slice;  // round-robin by record index
    for (std::size_t i = static_cast<std::size_t>(rank); i < g.edges.size();
         i += static_cast<std::size_t>(nranks)) {
      const Edge& e = g.edges.edges()[i];
      slice.add(e.u, e.v, e.w);
    }
    return slice;
  };
  const auto reference =
      plv::louvain(GraphSource::from_stream(slice_of, 1000), opts_with_cadence(1));
  for (int cadence : {4, 0}) {
    const auto r = plv::louvain(GraphSource::from_stream(slice_of, 1000), opts_with_cadence(cadence));
    EXPECT_EQ(r.final_labels, reference.final_labels) << "cadence " << cadence;
    EXPECT_NEAR(r.final_modularity, reference.final_modularity, 1e-12);
  }
}

TEST(DeltaEquivalence, FractionalWeightsDriftStaysBounded) {
  // Non-integer weights: bit-compatibility is not guaranteed (patched
  // entries carry floating-point dust), but the partition quality the two
  // paths reach must agree to well under any meaningful ΔQ.
  Xoshiro256 rng(47);
  graph::EdgeList edges;
  const vid_t n = 400;
  for (int i = 0; i < 2400; ++i) {
    const auto u = static_cast<vid_t>(rng.next_below(n));
    const auto v = static_cast<vid_t>(rng.next_below(n));
    edges.add(u, v, 0.1 * static_cast<weight_t>(rng.next_below(20) + 1));
  }
  const auto reference = plv::louvain(GraphSource::from_edges(edges, n), opts_with_cadence(1));
  for (int cadence : {4, 0}) {
    const auto r = plv::louvain(GraphSource::from_edges(edges, n), opts_with_cadence(cadence));
    EXPECT_NEAR(r.final_modularity, reference.final_modularity, 1e-6)
        << "cadence " << cadence;
  }
}

TEST(AdaptiveCadence, TrajectoryIsBitCompatibleAcrossDriftThresholds) {
  // The churn-driven rebuild trigger only changes *when* full rebuilds
  // happen, never what they compute: on integer-weight graphs every drift
  // threshold must reproduce the rebuild-always trajectory bitwise.
  const auto g = gen::lfr({.n = 1500, .mu = 0.3, .seed = 7});
  const auto reference = plv::louvain(GraphSource::from_edges(g.edges, 1500), opts_with_cadence(1));
  for (double drift : {kAdaptiveRebuildOff, 1e-9, 0.5, 8.0}) {
    auto opts = opts_with_cadence(kNeverRebuild);
    opts.adaptive_rebuild_drift = drift;
    const auto r = plv::louvain(GraphSource::from_edges(g.edges, 1500), opts);
    EXPECT_EQ(r.final_labels, reference.final_labels) << "drift " << drift;
    EXPECT_NEAR(r.final_modularity, reference.final_modularity, 1e-12);
  }
}

TEST(AdaptiveCadence, TrafficSitsBetweenPureDeltaAndAlwaysRebuild) {
  // A mid drift threshold fires *some* rebuilds: more records than the
  // trigger-off pure-delta run, fewer than rebuilding every iteration.
  const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 53});
  const auto always = plv::louvain(GraphSource::from_edges(g.edges, 2000), opts_with_cadence(1));
  auto off_opts = opts_with_cadence(kNeverRebuild);
  off_opts.adaptive_rebuild_drift = kAdaptiveRebuildOff;
  const auto pure_delta = plv::louvain(GraphSource::from_edges(g.edges, 2000), off_opts);
  auto mid_opts = opts_with_cadence(kNeverRebuild);
  mid_opts.adaptive_rebuild_drift = 0.25;
  const auto adaptive = plv::louvain(GraphSource::from_edges(g.edges, 2000), mid_opts);

  ASSERT_EQ(adaptive.final_labels, always.final_labels);
  EXPECT_GT(adaptive.traffic.records_sent, pure_delta.traffic.records_sent)
      << "drift threshold 0.25 never fired a rebuild";
  EXPECT_LT(adaptive.traffic.records_sent, always.traffic.records_sent)
      << "drift threshold 0.25 rebuilt every iteration";
}

TEST(AdaptiveCadence, CounterStaysHardUpperBound) {
  // An enormous drift threshold never fires, so the fixed cadence must
  // still bound the time between rebuilds: cadence 4 with drift ∞ ships
  // the same records as cadence 4 with the trigger off.
  const auto g = gen::lfr({.n = 1500, .mu = 0.3, .seed = 7});
  auto huge_opts = opts_with_cadence(4);
  huge_opts.adaptive_rebuild_drift = 1e18;
  auto off_opts = opts_with_cadence(4);
  off_opts.adaptive_rebuild_drift = kAdaptiveRebuildOff;
  const auto huge = plv::louvain(GraphSource::from_edges(g.edges, 1500), huge_opts);
  const auto off = plv::louvain(GraphSource::from_edges(g.edges, 1500), off_opts);
  EXPECT_EQ(huge.final_labels, off.final_labels);
  EXPECT_EQ(huge.traffic.records_sent, off.traffic.records_sent);
}

TEST(DeltaTraffic, SteadyStateIterationsShipFarFewerRecords) {
  // The acceptance bar of the incremental path: once the first iteration's
  // mass migration is done, an all-iterations trace must show the delta
  // runs shipping at least 5× fewer propagation records than rebuilding
  // every iteration — measured on the same graph, same labels (the paths
  // are bit-compatible, so iteration counts line up exactly).
  const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 53});
  const auto full = plv::louvain(GraphSource::from_edges(g.edges, 2000), opts_with_cadence(1));
  const auto delta = plv::louvain(GraphSource::from_edges(g.edges, 2000), opts_with_cadence(0));
  ASSERT_EQ(full.final_labels, delta.final_labels);  // same trajectory
  ASSERT_FALSE(full.levels.empty());

  const auto& full_recs = full.levels[0].trace.prop_records;
  const auto& delta_recs = delta.levels[0].trace.prop_records;
  ASSERT_EQ(full_recs.size(), delta_recs.size());
  ASSERT_GE(full_recs.size(), 3u) << "need steady-state iterations to compare";

  // Iteration 1 moves most vertices; the delta path is allowed to fall
  // back to a full rebuild there (it must never ship more than one).
  for (std::size_t i = 0; i < full_recs.size(); ++i) {
    EXPECT_LE(delta_recs[i], full_recs[i]) << "iteration " << i + 1;
  }
  std::uint64_t full_steady = 0;
  std::uint64_t delta_steady = 0;
  for (std::size_t i = 1; i < full_recs.size(); ++i) {
    full_steady += full_recs[i];
    delta_steady += delta_recs[i];
  }
  EXPECT_GE(full_steady, 5 * delta_steady)
      << "steady-state traffic reduction below 5x: full=" << full_steady
      << " delta=" << delta_steady;

  // The reduction must show up in the run totals too.
  EXPECT_LT(delta.traffic.records_sent, full.traffic.records_sent);
}

}  // namespace
}  // namespace plv::core
