#include "metrics/quality.hpp"

#include <gtest/gtest.h>

#include "gen/planted.hpp"
#include "graph/csr.hpp"

namespace plv::metrics {
namespace {

graph::Csr two_triangles() {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(3, 4);
  e.add(4, 5);
  e.add(3, 5);
  e.add(2, 3);
  return graph::Csr::from_edges(e);
}

TEST(Coverage, AllInOneCommunityIsOne) {
  const auto g = two_triangles();
  EXPECT_DOUBLE_EQ(coverage(g, {0, 0, 0, 0, 0, 0}), 1.0);
}

TEST(Coverage, SingletonsHaveZeroCoverageWithoutSelfLoops) {
  const auto g = two_triangles();
  EXPECT_DOUBLE_EQ(coverage(g, {0, 1, 2, 3, 4, 5}), 0.0);
}

TEST(Coverage, TriangleSplitValue) {
  const auto g = two_triangles();
  // 6 of 7 edges internal.
  EXPECT_NEAR(coverage(g, {0, 0, 0, 1, 1, 1}), 6.0 / 7.0, 1e-12);
}

TEST(Conductance, PerfectSplitHasLowConductance) {
  const auto g = two_triangles();
  const auto s = conductance(g, {0, 0, 0, 1, 1, 1});
  // Each triangle: cut 1, volume 7 ⇒ φ = 1/7.
  ASSERT_EQ(s.per_community.size(), 2u);
  EXPECT_NEAR(s.per_community[0], 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.per_community[1], 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.max, 1.0 / 7.0, 1e-12);
}

TEST(Conductance, SingletonOfDegreeDHasConductanceOne) {
  const auto g = two_triangles();
  const auto s = conductance(g, {0, 1, 1, 1, 1, 1});
  // Community {0}: cut 2, vol 2 ⇒ φ = 1.
  EXPECT_NEAR(s.per_community[0], 1.0, 1e-12);
}

TEST(Conductance, BadPartitionScoresWorseThanPlanted) {
  const auto planted = gen::planted_partition(
      {.communities = 4, .community_size = 25, .p_intra = 0.5, .p_inter = 0.02, .seed = 31});
  const auto g = graph::Csr::from_edges(planted.edges, 100);
  const auto good = conductance(g, planted.ground_truth);
  std::vector<vid_t> stripes(100);
  for (vid_t v = 0; v < 100; ++v) stripes[v] = v % 4;  // ignores structure
  const auto bad = conductance(g, stripes);
  EXPECT_LT(good.mean, bad.mean);
  EXPECT_LT(good.max, bad.max + 1e-12);
}

TEST(Conductance, CoverageAndConductanceAreConsistent) {
  // Total cut = (1 - coverage)·2m; mean conductance over the partition
  // must be positive exactly when coverage < 1.
  const auto g = two_triangles();
  const std::vector<vid_t> labels = {0, 0, 1, 1, 2, 2};
  const double cov = coverage(g, labels);
  const auto s = conductance(g, labels);
  EXPECT_LT(cov, 1.0);
  EXPECT_GT(s.mean, 0.0);
}

}  // namespace
}  // namespace plv::metrics
