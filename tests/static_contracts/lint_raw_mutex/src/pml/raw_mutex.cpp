// Violation class: raw-mutex-ban.  std::mutex outside common/sync.hpp
// must be rejected by plv_lint (use the annotated plv::Mutex wrapper).
#include <mutex>

std::mutex stray_mu;

void touch() {
  std::lock_guard<std::mutex> lock(stray_mu);
}
