// Violation class: release without hold.  unlock() releases a
// capability that was never acquired on this path (undefined behaviour
// on std::mutex).
#include "common/sync.hpp"

plv::Mutex mu;

void stray_release() {
  mu.unlock();  // expected-error: releasing 'mu' that is not held
}

int main() {
  stray_release();
  return 0;
}
