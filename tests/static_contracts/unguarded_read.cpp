// Violation class: unguarded read.  `hits` is PLV_GUARDED_BY(mu), but
// read_unlocked() touches it without holding the capability.  Clang's
// thread-safety analysis must reject this under -Werror=thread-safety.
#include "common/sync.hpp"

struct Counter {
  plv::Mutex mu;
  int hits PLV_GUARDED_BY(mu) = 0;

  int read_unlocked() {
    return hits;  // expected-error: reading 'hits' requires holding 'mu'
  }
};

int main() {
  Counter c;
  return c.read_unlocked();
}
