// Violation class: missing REQUIRES at a call site.  bump() declares
// PLV_REQUIRES(mu); the caller invokes it with the lock not held.
#include "common/sync.hpp"

struct Counter {
  plv::Mutex mu;
  int hits PLV_GUARDED_BY(mu) = 0;

  void bump() PLV_REQUIRES(mu) { ++hits; }
};

void poke(Counter& c) {
  c.bump();  // expected-error: calling 'bump' requires holding 'mu'
}

int main() {
  Counter c;
  poke(c);
  return 0;
}
