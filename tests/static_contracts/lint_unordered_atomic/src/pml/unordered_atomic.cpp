// Violation class: explicit-memory-order.  Atomic operations in the
// concurrency core must name their memory_order; the default-seq_cst
// shorthand hides the protocol and must be rejected by plv_lint.
#include <atomic>

std::atomic<int> generation{0};

int snapshot() {
  return generation.load();
}
