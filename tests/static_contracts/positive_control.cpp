// Positive control: idiomatic use of every annotated primitive.  This
// file must compile CLEAN under -Wthread-safety -Werror=thread-safety —
// it proves the harness actually compiles the snippets (a broken
// include path would make the negative cases "fail" vacuously).
//
// It also pins the repo's cv-wait convention: an explicit while-loop
// around CondVar::wait(mu) inside the annotated critical section, never
// a predicate lambda (the analysis is intra-procedural and cannot see
// held locks inside lambda bodies).
#include "common/sync.hpp"

struct Gate {
  plv::Mutex mu;
  plv::CondVar cv;
  bool open PLV_GUARDED_BY(mu) = false;

  void release() {
    plv::MutexLock lock(mu);
    open = true;
    cv.notify_all();
  }

  void pass() {
    plv::MutexLock lock(mu);
    while (!open) {
      cv.wait(mu);
    }
  }

  bool peek() PLV_REQUIRES(mu) { return open; }

  bool try_peek() PLV_EXCLUDES(mu) {
    plv::MutexLock lock(mu);
    return peek();
  }
};

int main() {
  Gate g;
  g.release();
  g.pass();
  return g.try_peek() ? 0 : 1;
}
