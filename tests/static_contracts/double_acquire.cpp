// Violation class: double acquire.  The second lock() acquires a
// capability that is already held (self-deadlock with plv::Mutex,
// which is non-recursive).
#include "common/sync.hpp"

plv::Mutex mu;

void deadlock() {
  mu.lock();
  mu.lock();  // expected-error: acquiring 'mu' that is already held
  mu.unlock();
  mu.unlock();
}

int main() {
  deadlock();
  return 0;
}
