// plv::Session — the streaming front door. The contract under test:
//
//  * deterministic plan (rebuild_every_batches = 1, frontier off): every
//    apply() is bit-identical to a cold plv::louvain() of the patched
//    edge list — on every transport backend;
//  * fast plan (pure incremental): applies are flagged incremental, stay
//    close to the cold partition in quality, and the reported Q always
//    matches a recomputation on the true current graph;
//  * snapshots are immutable versioned values: epoch-monotone, readable
//    concurrently with applies, and an old snapshot never changes;
//  * failed applies (removing an absent edge) surface on the caller and
//    kill the session, but the last good snapshot keeps serving.
#include "core/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "common/louvain.hpp"
#include "common/random.hpp"
#include "core/options.hpp"
#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/similarity.hpp"
#include "transport_param.hpp"

namespace plv {
namespace {

core::ParOptions session_opts(int nranks, core::StreamingPlan plan,
                              pml::TransportKind kind = pml::TransportKind::kThread) {
  core::ParOptions opts;
  opts.nranks = nranks;
  opts.transport = kind;
  opts.streaming = plan;
  return opts;
}

/// Deterministic churn batch: remove what the previous batch inserted,
/// insert `k` fresh random edges (mirrors bench/micro_streaming).
EdgeDelta make_batch(Xoshiro256& rng, std::vector<Edge>& pending, vid_t n,
                     std::size_t k) {
  EdgeDelta delta;
  for (const Edge& e : pending) delta.removals.add(e.u, e.v, e.w);
  pending.clear();
  for (std::size_t i = 0; i < k; ++i) {
    const auto u = static_cast<vid_t>(rng.next_below(n));
    auto v = static_cast<vid_t>(rng.next_below(n));
    while (v == u) v = static_cast<vid_t>(rng.next_below(n));
    delta.inserts.add(u, v, 1.0);
    pending.push_back(Edge{u, v, 1.0});
  }
  return delta;
}

class SessionTransports : public ::testing::TestWithParam<pml::TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }

 private:
  pml::ScopedTransportEnv park_env_;
};

TEST_P(SessionTransports, DeterministicPlanMatchesColdRunEveryEpoch) {
  // The acceptance bar: with every batch a full rebuild, the session's
  // labels must be indistinguishable from throwing the patched edge list
  // at the cold front door — bitwise, on every backend.
  const auto g = gen::lfr({.n = 600, .mu = 0.3, .seed = 101});
  const vid_t n = 600;
  const auto opts =
      session_opts(4, core::StreamingPlan::deterministic(), GetParam());

  Session session(GraphSource::from_edges(g.edges, n), opts);
  graph::EdgeList mirror = g.edges;
  {
    const auto cold = louvain(GraphSource::from_edges(mirror, n), opts);
    const auto snap = session.snapshot();
    EXPECT_EQ(snap->epoch, 0u);
    EXPECT_EQ(snap->labels, cold.final_labels);
    EXPECT_EQ(snap->modularity, cold.final_modularity);
  }

  Xoshiro256 rng(102);
  std::vector<Edge> pending;
  for (std::uint64_t b = 1; b <= 3; ++b) {
    const EdgeDelta delta = make_batch(rng, pending, n, 40);
    apply_edge_delta(mirror, delta);
    const auto snap = session.apply(delta);
    const auto cold = louvain(GraphSource::from_edges(mirror, n), opts);
    EXPECT_EQ(snap->epoch, b);
    EXPECT_FALSE(snap->incremental);
    EXPECT_EQ(snap->labels, cold.final_labels) << "epoch " << b;
    EXPECT_EQ(snap->modularity, cold.final_modularity) << "epoch " << b;
  }
  session.close();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, SessionTransports,
                         ::testing::ValuesIn(pml::kAllTransports),
                         [](const auto& info) {
                           return pml::transport_test_name(info.param);
                         });

TEST(Session, InitialSnapshotMatchesFromDeltasColdRun) {
  // A delta-composed source seeds the session exactly like the front door.
  pml::ScopedTransportEnv park;
  const auto g = gen::lfr({.n = 400, .mu = 0.3, .seed = 103});
  EdgeDelta d0;
  d0.inserts.add(0, 399, 1.0);
  d0.inserts.add(1, 398, 1.0);
  const auto opts = session_opts(2, core::StreamingPlan::deterministic());
  const auto cold = louvain(GraphSource::from_deltas(g.edges, d0, 400), opts);
  Session session(GraphSource::from_deltas(g.edges, d0, 400), opts);
  const auto snap = session.snapshot();
  EXPECT_EQ(snap->labels, cold.final_labels);
  EXPECT_EQ(snap->modularity, cold.final_modularity);
}

TEST(Session, IncrementalApplyKeepsQualityAndExactModularity) {
  pml::ScopedTransportEnv park;
  const auto g = gen::planted_partition(
      {.communities = 8, .community_size = 32, .p_intra = 0.4, .p_inter = 0.005, .seed = 104});
  const vid_t n = 8 * 32;
  const auto opts = session_opts(4, core::StreamingPlan::fast());
  Session session(GraphSource::from_edges(g.edges, n), opts);

  graph::EdgeList mirror = g.edges;
  Xoshiro256 rng(105);
  std::vector<Edge> pending;
  for (int b = 0; b < 3; ++b) {
    const EdgeDelta delta = make_batch(rng, pending, n, 20);
    apply_edge_delta(mirror, delta);
    const auto snap = session.apply(delta);
    EXPECT_TRUE(snap->incremental);
    // Reported Q is computed on the patched In_Table — it must agree with
    // an independent recomputation on the mirror graph.
    const auto csr = graph::Csr::from_edges(mirror, n);
    EXPECT_NEAR(snap->modularity, metrics::modularity(csr, snap->labels), 1e-9);
    // Dirty-region re-refine keeps the partition close to a cold one.
    const auto cold = louvain(GraphSource::from_edges(mirror, n),
                              session_opts(4, core::StreamingPlan::deterministic()));
    EXPECT_GT(metrics::nmi(snap->labels, cold.final_labels), 0.8) << "batch " << b;
    EXPECT_GT(snap->modularity, 0.9 * cold.final_modularity) << "batch " << b;
  }
}

TEST(Session, SnapshotsAreImmutableVersionedValues) {
  pml::ScopedTransportEnv park;
  const auto g = gen::lfr({.n = 300, .mu = 0.3, .seed = 106});
  const auto opts = session_opts(2, core::StreamingPlan::fast());
  Session session(GraphSource::from_edges(g.edges, 300), opts);

  const auto epoch0 = session.snapshot();
  const auto labels0 = epoch0->labels;  // deep copy to compare against later

  EdgeDelta delta;
  for (vid_t v = 0; v < 40; ++v) delta.inserts.add(v, 299 - v, 1.0);
  const auto epoch1 = session.apply(delta);

  // The old snapshot is untouched by the newer epoch...
  EXPECT_EQ(epoch0->epoch, 0u);
  EXPECT_EQ(epoch0->labels, labels0);
  // ...and the session now serves the new one.
  EXPECT_EQ(epoch1->epoch, 1u);
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.snapshot()->epoch, 1u);
}

TEST(Session, EmptyDeltaAdvancesEpochAndKeepsLabels) {
  pml::ScopedTransportEnv park;
  const auto g = gen::lfr({.n = 300, .mu = 0.3, .seed = 107});
  const auto opts = session_opts(2, core::StreamingPlan::deterministic());
  Session session(GraphSource::from_edges(g.edges, 300), opts);
  const auto before = session.snapshot();
  const auto after = session.apply(EdgeDelta{});
  EXPECT_EQ(after->epoch, before->epoch + 1);
  EXPECT_EQ(after->labels, before->labels);
  EXPECT_EQ(after->modularity, before->modularity);
}

TEST(Session, VertexAdditionsJoinAndIsolatesStaySingletons) {
  pml::ScopedTransportEnv park;
  const auto g = gen::planted_partition(
      {.communities = 4, .community_size = 16, .p_intra = 0.6, .p_inter = 0.01, .seed = 108});
  const vid_t n = 64;
  const auto opts = session_opts(2, core::StreamingPlan::fast());
  Session session(GraphSource::from_edges(g.edges, n), opts);

  // Grow the vertex set: 64..66 appear, 64 wired into community 0's
  // anchor, 65 and 66 isolated.
  EdgeDelta delta;
  delta.n_vertices = 67;
  delta.inserts.add(64, 0, 4.0);
  delta.inserts.add(64, 1, 4.0);
  const auto snap = session.apply(delta);
  ASSERT_EQ(snap->n_vertices, 67u);
  ASSERT_EQ(snap->labels.size(), 67u);
  EXPECT_EQ(snap->community_of(64), snap->community_of(0));
  // Labels are compacted community ids: the isolated newcomers each sit
  // in their own singleton community, distinct from each other.
  EXPECT_NE(snap->community_of(65), snap->community_of(66));
  EXPECT_EQ(session.community_members(snap->community_of(65)),
            std::vector<vid_t>{65u});
  EXPECT_EQ(session.community_members(snap->community_of(66)),
            std::vector<vid_t>{66u});

  // community_members and query agree with the label vector.
  const auto members = session.community_members(snap->community_of(0));
  EXPECT_NE(std::find(members.begin(), members.end(), 64u), members.end());
  EXPECT_EQ(session.query(65), snap->community_of(65));
}

TEST(Session, EdgeDeletionsShrinkCommunities) {
  pml::ScopedTransportEnv park;
  // Two triangles joined by a bridge; delete the bridge and the halves
  // must fall apart into two communities.
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(3, 4);
  e.add(4, 5);
  e.add(3, 5);
  e.add(2, 3, 0.5);
  const auto opts = session_opts(2, core::StreamingPlan::fast());
  Session session(GraphSource::from_edges(e, 6), opts);

  EdgeDelta delta;
  delta.removals.add(2, 3, 0.5);
  const auto snap = session.apply(delta);
  EXPECT_EQ(snap->community_of(0), snap->community_of(2));
  EXPECT_EQ(snap->community_of(3), snap->community_of(5));
  EXPECT_NE(snap->community_of(0), snap->community_of(3));
}

TEST(Session, ConcurrentReadersSeeMonotoneEpochsDuringApplies) {
  pml::ScopedTransportEnv park;
  const auto g = gen::lfr({.n = 400, .mu = 0.3, .seed = 109});
  const vid_t n = 400;
  const auto opts = session_opts(2, core::StreamingPlan::fast());
  Session session(GraphSource::from_edges(g.edges, n), opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = session.snapshot();
        if (snap->epoch < last || snap->labels.size() != snap->n_vertices) {
          violation.store(true);
        }
        last = snap->epoch;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Xoshiro256 rng(110);
  std::vector<Edge> pending;
  for (int b = 0; b < 4; ++b) {
    (void)session.apply(make_batch(rng, pending, n, 30));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(violation.load());
  // Reads proceed while applies are in flight — a blocked reader would
  // have managed only a handful.
  EXPECT_GT(reads.load(), 4u);
}

TEST(Session, ExpiredGraphSourceIsRejected) {
  pml::ScopedTransportEnv park;
  graph::EdgeList e;
  e.add(0, 1);
  GraphSource src = GraphSource::from_edges(e, 2);
  GraphSource moved = std::move(src);
  const auto opts = session_opts(1, core::StreamingPlan::fast());
  EXPECT_THROW(Session(src, opts), std::logic_error);
  EXPECT_NO_THROW({
    Session ok(moved, opts);
    ok.close();
  });
}

TEST(Session, FrontierRequiresCyclicPartition) {
  pml::ScopedTransportEnv park;
  graph::EdgeList e;
  e.add(0, 1);
  auto opts = session_opts(1, core::StreamingPlan::fast());
  opts.partition = graph::PartitionKind::kBlock;
  EXPECT_THROW(Session(GraphSource::from_edges(e, 2), opts), std::invalid_argument);
  // Frontier off: block partitions are fine (every apply runs cold).
  opts.streaming.frontier = false;
  Session session(GraphSource::from_edges(e, 2), opts);
  EdgeDelta delta;
  delta.inserts.add(0, 1, 1.0);
  const auto snap = session.apply(delta);
  EXPECT_FALSE(snap->incremental);
}

TEST(Session, BadRemovalFailsTheApplyButKeepsServingSnapshots) {
  pml::ScopedTransportEnv park;
  const auto g = gen::lfr({.n = 200, .mu = 0.3, .seed = 111});
  const auto opts = session_opts(2, core::StreamingPlan::fast());
  Session session(GraphSource::from_edges(g.edges, 200), opts);
  const auto good = session.snapshot();

  EdgeDelta bogus;
  bogus.removals.add(0, 1, 123.456);  // no such record
  EXPECT_THROW((void)session.apply(bogus), std::invalid_argument);

  // The fleet is gone, but reads still serve the last good epoch.
  EXPECT_EQ(session.snapshot()->epoch, good->epoch);
  EXPECT_THROW((void)session.apply(EdgeDelta{}), std::exception);
  session.close();
}

TEST(Session, ApplyAfterCloseThrows) {
  pml::ScopedTransportEnv park;
  graph::EdgeList e;
  e.add(0, 1);
  const auto opts = session_opts(1, core::StreamingPlan::fast());
  Session session(GraphSource::from_edges(e, 2), opts);
  session.close();
  session.close();  // idempotent
  EXPECT_THROW((void)session.apply(EdgeDelta{}), std::logic_error);
}

}  // namespace
}  // namespace plv
