#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace plv {
namespace {

Cli make(std::vector<std::string> args) { return Cli(std::move(args)); }

TEST(Cli, ParsesSpaceSeparatedValues) {
  auto cli = make({"--nodes", "8", "--name", "zeus"});
  EXPECT_EQ(cli.get_int("nodes", 0), 8);
  EXPECT_EQ(cli.get_string("name", ""), "zeus");
}

TEST(Cli, ParsesEqualsForm) {
  auto cli = make({"--scale=20", "--mu=0.4"});
  EXPECT_EQ(cli.get_int("scale", 0), 20);
  EXPECT_DOUBLE_EQ(cli.get_double("mu", 0.0), 0.4);
}

TEST(Cli, BooleanFlagWithoutValue) {
  auto cli = make({"--verbose", "--fast"});
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_TRUE(cli.get_bool("fast"));
  EXPECT_FALSE(cli.get_bool("slow"));
}

TEST(Cli, BooleanExplicitFalse) {
  auto cli = make({"--heuristic=false", "--trace=0"});
  EXPECT_FALSE(cli.get_bool("heuristic", true));
  EXPECT_FALSE(cli.get_bool("trace", true));
}

TEST(Cli, DefaultsWhenMissing) {
  auto cli = make({});
  EXPECT_EQ(cli.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("y", 2.5), 2.5);
  EXPECT_EQ(cli.get_string("z", "dflt"), "dflt");
}

TEST(Cli, PositionalArgumentsPreserved) {
  auto cli = make({"input.txt", "--scale", "4", "output.txt"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(Cli, HasDetectsPresence) {
  auto cli = make({"--present"});
  EXPECT_TRUE(cli.has("present"));
  EXPECT_FALSE(cli.has("absent"));
}

}  // namespace
}  // namespace plv
