#include "hashing/hash_fns.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"

namespace plv::hashing {
namespace {

class HashFnTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashFnTest, StaysWithinTable) {
  const HashKind kind = GetParam();
  Xoshiro256 rng(1);
  for (std::uint64_t size : {16ULL, 1024ULL, 1ULL << 20}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(apply_hash(kind, rng(), size), size);
    }
  }
}

TEST_P(HashFnTest, SingleBinTableAlwaysHitsBinZero) {
  // Regression: fibonacci_hash/lcg_hash shifted by 64 for table_size == 1,
  // which is UB and (with the old clamp-to-63 workaround) could return
  // bin 1 of a 1-bin table.
  const HashKind kind = GetParam();
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(apply_hash(kind, rng(), 1), 0u);
  }
  for (std::uint64_t key : {0ULL, 1ULL, ~0ULL}) {
    EXPECT_EQ(apply_hash(kind, key, 1), 0u);
  }
}

TEST_P(HashFnTest, TwoBinTableStaysInRange) {
  const HashKind kind = GetParam();
  Xoshiro256 rng(8);
  bool saw[2] = {false, false};
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t bin = apply_hash(kind, rng(), 2);
    ASSERT_LT(bin, 2u);
    saw[bin] = true;
  }
  // With 1000 random keys both bins of a 2-bin table must be used.
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST_P(HashFnTest, IsDeterministic) {
  const HashKind kind = GetParam();
  for (std::uint64_t key : {0ULL, 1ULL, 12345ULL, ~0ULL - 1}) {
    EXPECT_EQ(apply_hash(kind, key, 4096), apply_hash(kind, key, 4096));
  }
}

TEST_P(HashFnTest, NameIsNonEmpty) {
  EXPECT_STRNE(hash_kind_name(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashFnTest,
                         ::testing::Values(HashKind::kFibonacci,
                                           HashKind::kLinearCongruential,
                                           HashKind::kBitwise,
                                           HashKind::kConcatenated),
                         [](const auto& info) {
                           return std::string(hash_kind_name(info.param));
                         });

/// Chi-square-ish balance check on sequential edge keys — the workload
/// shape that motivated the paper's Fig. 6: packed (u,v) keys with small,
/// correlated halves. Fibonacci and LCG must spread them; concat by
/// construction cannot.
double max_bin_share(HashKind kind, std::uint64_t table_size, int keys) {
  std::vector<int> bins(table_size, 0);
  for (int u = 0; u < keys; ++u) {
    ++bins[apply_hash(kind, pack_key(static_cast<vid_t>(u), static_cast<vid_t>(u + 1)),
                      table_size)];
  }
  int max = 0;
  for (int b : bins) max = std::max(max, b);
  return static_cast<double>(max) * static_cast<double>(table_size) / keys;
}

TEST(HashQuality, FibonacciBalancesSequentialEdgeKeys) {
  // A perfectly uniform spread gives share 1; allow generous slack.
  EXPECT_LT(max_bin_share(HashKind::kFibonacci, 1024, 100000), 2.0);
}

TEST(HashQuality, LcgBalancesSequentialEdgeKeys) {
  EXPECT_LT(max_bin_share(HashKind::kLinearCongruential, 1024, 100000), 2.0);
}

TEST(HashQuality, FibonacciBeatsBitwiseOnStructuredKeys) {
  // Bitwise xor-fold collapses correlated halves into few bins.
  const double fib = max_bin_share(HashKind::kFibonacci, 4096, 100000);
  const double bitw = max_bin_share(HashKind::kBitwise, 4096, 100000);
  EXPECT_LT(fib, bitw);
}

TEST(Eq5Packing, MatchesPaperLayoutFor16BitIds) {
  EXPECT_EQ(pack_key_eq5(1, 2), (1ULL << 16) | 2ULL);
  EXPECT_EQ(pack_key_eq5(0xffff, 0xffff), (0xffffULL << 16) | 0xffffULL);
}

TEST(Eq5Packing, AliasingBoundary) {
  // The last non-aliasing pair: both ids at the 16-bit ceiling round-trip.
  const std::uint64_t top = pack_key_eq5(0xffff, 0xffff);
  EXPECT_EQ(top >> 16, 0xffffULL);
  EXPECT_EQ(top & 0xffffULL, 0xffffULL);
#ifdef NDEBUG
  // Documented limitation of the literal Eq. 5: ids >= 2^16 alias — the
  // second id bleeds into the first id's field, e.g. (0, 2^16) packs
  // identically to (1, 0). Only observable in release builds; debug
  // builds assert the precondition instead (checked below).
  EXPECT_EQ(pack_key_eq5(1, 0x10000), pack_key_eq5(1, 0));
  EXPECT_EQ(pack_key_eq5(0, 0x10000), pack_key_eq5(1, 0));
#endif
}

#ifndef NDEBUG
TEST(Eq5PackingDeathTest, RejectsIdsAbove16BitsInDebug) {
  // Precondition violations must die loudly rather than silently alias.
  EXPECT_DEATH((void)pack_key_eq5(0, 0x10000), "pack_key_eq5");
  EXPECT_DEATH((void)pack_key_eq5(0x10000, 0), "pack_key_eq5");
}
#endif

TEST(FibonacciHash, MatchesEq6Definition) {
  // Eq. 6 with W = 2^64 and M = 2^k equals the top k bits of x * (W/φ).
  const std::uint64_t x = 0x123456789abcdefULL;
  const std::uint64_t m = 1ULL << 12;
  const std::uint64_t expected = (x * kFibonacciMultiplier) >> (64 - 12);
  EXPECT_EQ(fibonacci_hash(x, m), expected);
}

}  // namespace
}  // namespace plv::hashing
