// Randomized stress tests of the messaging layer: many rounds of mixed
// collectives and fine-grained traffic, validated against locally
// computable ground truth. These are the failure-injection-style tests
// for the substrate every higher layer depends on.
//
// Parameterized over both transports; rank bodies report failures by
// throwing (PLV_RANK_CHECK) so forked proc-backend children surface them.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <numeric>
#include <thread>

#include "common/random.hpp"
#include "pml/aggregator.hpp"
#include "pml/comm.hpp"
#include "transport_param.hpp"

namespace plv::pml {
namespace {

class PmlStress : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }
  void run(int nranks, const std::function<void(Comm&)>& body) const {
    Runtime::run(nranks, body, GetParam());
  }
};

TEST_P(PmlStress, RepeatedMixedCollectivesStayConsistent) {
  constexpr int kRounds = 200;
  run(4, [&](Comm& comm) {
    Xoshiro256 rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      // Values derived from (round, rank) so every rank can predict the
      // global result independently.
      const std::uint64_t mine = mix64(static_cast<std::uint64_t>(round) * 31 +
                                       static_cast<std::uint64_t>(comm.rank())) %
                                 1000;
      std::uint64_t expected_sum = 0, expected_max = 0;
      for (int r = 0; r < comm.nranks(); ++r) {
        const std::uint64_t v =
            mix64(static_cast<std::uint64_t>(round) * 31 + static_cast<std::uint64_t>(r)) %
            1000;
        expected_sum += v;
        expected_max = std::max(expected_max, v);
      }
      PLV_RANK_CHECK_EQ(comm.allreduce_sum(mine), expected_sum);
      PLV_RANK_CHECK_EQ(comm.allreduce_max(mine), expected_max);
      const auto gathered = comm.allgather(mine);
      for (int r = 0; r < comm.nranks(); ++r) {
        PLV_RANK_CHECK_EQ(gathered[static_cast<std::size_t>(r)],
                          mix64(static_cast<std::uint64_t>(round) * 31 +
                                static_cast<std::uint64_t>(r)) %
                              1000);
      }
      (void)rng();
    }
  });
}

TEST_P(PmlStress, RandomizedExchangeConservesRecords) {
  constexpr int kRounds = 50;
  run(5, [&](Comm& comm) {
    Xoshiro256 rng(77 + static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::vector<std::uint64_t>> outgoing(5);
      std::uint64_t sent_checksum = 0;
      for (int d = 0; d < 5; ++d) {
        const std::uint64_t count = rng.next_below(20);
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t value = rng();
          outgoing[static_cast<std::size_t>(d)].push_back(value);
          sent_checksum += value;
        }
      }
      const auto incoming = comm.exchange(outgoing);
      std::uint64_t recv_checksum = 0;
      for (std::uint64_t v : incoming) recv_checksum += v;
      // Globally, everything sent is received exactly once.
      PLV_RANK_CHECK_EQ(comm.allreduce_sum(sent_checksum),
                        comm.allreduce_sum(recv_checksum));
    }
  });
}

TEST_P(PmlStress, FineGrainedFloodDeliversEverything) {
  // Every rank floods every rank with small chunks through an
  // aggregator with a tiny capacity (maximum chunking overhead).
  run(6, [&](Comm& comm) {
    struct Rec {
      std::uint32_t src;
      std::uint32_t seq;
    };
    constexpr std::uint32_t kPerDest = 500;
    Aggregator<Rec> agg(comm, 3);
    for (std::uint32_t seq = 0; seq < kPerDest; ++seq) {
      for (int d = 0; d < comm.nranks(); ++d) {
        agg.push(d, Rec{static_cast<std::uint32_t>(comm.rank()), seq});
      }
    }
    agg.flush_all();
    std::map<std::uint32_t, std::uint64_t> per_source;
    std::map<std::uint32_t, std::uint64_t> seq_sums;
    comm.drain_until_quiescent<Rec>([&](int, std::span<const Rec> recs) {
      for (const Rec& r : recs) {
        ++per_source[r.src];
        seq_sums[r.src] += r.seq;
      }
    });
    PLV_RANK_CHECK_EQ(per_source.size(), 6u);
    const std::uint64_t expected_seq_sum =
        static_cast<std::uint64_t>(kPerDest) * (kPerDest - 1) / 2;
    for (const auto& [src, count] : per_source) {
      PLV_RANK_CHECK_EQ(count, kPerDest);
      PLV_RANK_CHECK_EQ(seq_sums[src], expected_seq_sum);
    }
  });
}

TEST_P(PmlStress, InterleavedPhasesDoNotLeakRecords) {
  // Two consecutive fine-grained phases with different record types: the
  // quiescence protocol must fence them perfectly.
  run(3, [&](Comm& comm) {
    struct A {
      std::uint64_t tag;
    };
    struct B {
      std::uint64_t tag;
    };
    for (int phase = 0; phase < 10; ++phase) {
      Aggregator<A> agg_a(comm, 4);
      for (int d = 0; d < comm.nranks(); ++d) agg_a.push(d, A{0xAAAA});
      agg_a.flush_all();
      std::size_t got_a = 0;
      comm.drain_until_quiescent<A>([&](int, std::span<const A> recs) {
        for (const A& a : recs) {
          PLV_RANK_CHECK_EQ(a.tag, 0xAAAAu);
          ++got_a;
        }
      });
      PLV_RANK_CHECK_EQ(got_a, 3u);

      Aggregator<B> agg_b(comm, 4);
      for (int d = 0; d < comm.nranks(); ++d) agg_b.push(d, B{0xBBBB});
      agg_b.flush_all();
      std::size_t got_b = 0;
      comm.drain_until_quiescent<B>([&](int, std::span<const B> recs) {
        for (const B& b : recs) {
          PLV_RANK_CHECK_EQ(b.tag, 0xBBBBu);
          ++got_b;
        }
      });
      PLV_RANK_CHECK_EQ(got_b, 3u);
    }
  });
}

TEST_P(PmlStress, QuiescenceTerminatesWithInterleavedSendPoll) {
  // The counted-termination protocol must converge even when ranks
  // interleave sends with early polls mid-phase: every record sent before
  // the drain is counted by exactly one marker, no matter how polling and
  // sending are shuffled against each other across 8 ranks.
  constexpr int kRounds = 20;
  run(8, [&](Comm& comm) {
    struct Rec {
      std::uint32_t src;
      std::uint32_t round;
    };
    Xoshiro256 rng(42 + static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      Aggregator<Rec> agg(comm, 2);
      std::uint64_t got = 0;
      auto handler = [&](int, std::span<const Rec> recs) {
        for (const Rec& r : recs) {
          PLV_RANK_CHECK_EQ(r.round, static_cast<std::uint32_t>(round));
          ++got;
        }
      };
      // Each rank sends a random number of records to random destinations,
      // polling opportunistically between bursts so receives overlap sends.
      const std::uint64_t bursts = 1 + rng.next_below(8);
      std::uint64_t sent = 0;
      for (std::uint64_t b = 0; b < bursts; ++b) {
        const std::uint64_t records = rng.next_below(40);
        for (std::uint64_t i = 0; i < records; ++i) {
          const int dest = static_cast<int>(rng.next_below(8));
          agg.push(dest, Rec{static_cast<std::uint32_t>(comm.rank()),
                             static_cast<std::uint32_t>(round)});
          ++sent;
        }
        comm.poll<Rec>(handler);  // mid-phase poll, markers not yet sent
      }
      agg.flush_all();
      comm.drain_until_quiescent<Rec>(handler);
      // Globally nothing is lost or duplicated.
      PLV_RANK_CHECK_EQ(comm.allreduce_sum(sent), comm.allreduce_sum(got));
    }
  });
}

TEST_P(PmlStress, PhaseSkewDeferralKeepsEpochsSeparate) {
  // Ranks deliberately race ahead: a fast rank finishes its drain and
  // immediately starts sending epoch-(E+1) traffic while slow ranks are
  // still polling epoch E. Epoch tags must defer early chunks, never
  // deliver them into the wrong phase.
  constexpr int kPhases = 50;
  run(6, [&](Comm& comm) {
    for (int phase = 0; phase < kPhases; ++phase) {
      // Odd ranks stall before sending so even ranks run a phase ahead.
      if (comm.rank() % 2 == 1 && phase % 5 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      Aggregator<std::uint64_t> agg(comm, 1);  // one record per chunk
      const auto tag = static_cast<std::uint64_t>(phase);
      for (int d = 0; d < comm.nranks(); ++d) agg.push(d, tag);
      agg.flush_all();
      std::uint64_t got = 0;
      comm.drain_until_quiescent<std::uint64_t>(
          [&](int, std::span<const std::uint64_t> recs) {
            for (std::uint64_t v : recs) {
              // A mismatch here means a record leaked across phases.
              PLV_RANK_CHECK_EQ(v, tag);
              ++got;
            }
          });
      PLV_RANK_CHECK_EQ(got, static_cast<std::uint64_t>(comm.nranks()));
    }
  });
}

TEST_P(PmlStress, ManyRanksOnOneCore) {
  // Oversubscription: 16 ranks on this 1-core container must still
  // complete a full collective + fine-grained workout.
  run(16, [&](Comm& comm) {
    const int total = comm.allreduce_sum(1);
    PLV_RANK_CHECK_EQ(total, 16);
    Aggregator<int> agg(comm, 8);
    agg.push((comm.rank() + 1) % 16, comm.rank());
    agg.flush_all();
    int received = -1;
    comm.drain_until_quiescent<int>([&](int, std::span<const int> recs) {
      received = recs[0];
    });
    PLV_RANK_CHECK_EQ(received, (comm.rank() + 15) % 16);
  });
}

INSTANTIATE_TEST_SUITE_P(Transports, PmlStress,
                         ::testing::ValuesIn(kAllTransports),
                         [](const auto& info) {
                           return transport_test_name(info.param);
                         });

}  // namespace
}  // namespace plv::pml
