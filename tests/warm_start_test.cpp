#include <gtest/gtest.h>

#include <algorithm>

#include "common/louvain.hpp"
#include "common/random.hpp"
#include "core/options.hpp"
#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/similarity.hpp"

namespace plv::core {
namespace {

ParOptions opts_with(int nranks) {
  ParOptions o;
  o.nranks = nranks;
  return o;
}

TEST(WarmStart, GroundTruthSeedConvergesImmediately) {
  const auto g = gen::planted_partition(
      {.communities = 8, .community_size = 16, .p_intra = 0.8, .p_inter = 0.01, .seed = 95});
  // Seed with the planted labels (mapped into vertex-id space: use the
  // first member of each community as its label).
  std::vector<vid_t> seed_labels(128);
  for (vid_t v = 0; v < 128; ++v) seed_labels[v] = g.ground_truth[v] * 16;
  const auto warm =
      plv::louvain(GraphSource::from_edges_warm(g.edges, seed_labels, 128), opts_with(4));
  // Already optimal: one level, no quality loss vs cold start.
  const auto cold = plv::louvain(GraphSource::from_edges(g.edges, 128), opts_with(4));
  EXPECT_GE(warm.final_modularity, cold.final_modularity - 1e-9);
  EXPECT_GT(metrics::nmi(warm.final_labels, g.ground_truth), 0.99);
  ASSERT_FALSE(warm.levels.empty());
  EXPECT_LE(warm.levels.front().trace.moved_fraction.size(),
            cold.levels.front().trace.moved_fraction.size());
}

TEST(WarmStart, MatchesColdStartQualityFromSingletonSeed) {
  // Warm start from the trivial partition must behave like a cold start.
  const auto g = gen::lfr({.n = 800, .mu = 0.3, .seed = 96});
  std::vector<vid_t> singletons(800);
  for (vid_t v = 0; v < 800; ++v) singletons[v] = v;
  const auto warm =
      plv::louvain(GraphSource::from_edges_warm(g.edges, singletons, 800), opts_with(3));
  const auto cold = plv::louvain(GraphSource::from_edges(g.edges, 800), opts_with(3));
  EXPECT_EQ(warm.final_labels, cold.final_labels);
  EXPECT_DOUBLE_EQ(warm.final_modularity, cold.final_modularity);
}

TEST(WarmStart, IncrementalUpdateConvergesFasterThanCold) {
  // The dynamic-graph scenario: detect, perturb the graph slightly,
  // re-detect warm vs cold.
  auto g = gen::lfr({.n = 2000, .mu = 0.25, .seed = 97});
  const auto base = plv::louvain(GraphSource::from_edges(g.edges, 2000), opts_with(4));

  // Perturb: add 1% random edges.
  Xoshiro256 rng(98);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<vid_t>(rng.next_below(2000));
    auto v = static_cast<vid_t>(rng.next_below(2000));
    if (u == v) v = (v + 1) % 2000;
    g.edges.add(u, v, 1.0);
  }
  // Seed labels must live in vertex-id space; use each community's first
  // member id.
  std::vector<vid_t> seed(2000, kInvalidVid);
  std::vector<vid_t> first_member(2000, kInvalidVid);
  for (vid_t v = 0; v < 2000; ++v) {
    const vid_t c = base.final_labels[v];
    if (first_member[c] == kInvalidVid) first_member[c] = v;
    seed[v] = first_member[c];
  }

  const auto warm = plv::louvain(GraphSource::from_edges_warm(g.edges, seed, 2000), opts_with(4));
  const auto cold = plv::louvain(GraphSource::from_edges(g.edges, 2000), opts_with(4));

  auto total_iters = [](const Result& r) {
    std::size_t iters = 0;
    for (const auto& level : r.levels) iters += level.trace.moved_fraction.size();
    return iters;
  };
  EXPECT_LT(total_iters(warm), total_iters(cold));
  EXPECT_GT(warm.final_modularity, 0.95 * cold.final_modularity);
  // Warm result stays close to the pre-perturbation communities.
  EXPECT_GT(metrics::nmi(warm.final_labels, base.final_labels), 0.8);
}

TEST(WarmStart, ReportedQMatchesRecomputation) {
  const auto g = gen::lfr({.n = 600, .mu = 0.35, .seed = 99});
  std::vector<vid_t> seed(600);
  for (vid_t v = 0; v < 600; ++v) seed[v] = v / 3;  // arbitrary coarse seed
  const auto r = plv::louvain(GraphSource::from_edges_warm(g.edges, seed, 600), opts_with(2));
  const auto csr = graph::Csr::from_edges(g.edges, 600);
  EXPECT_NEAR(r.final_modularity, metrics::modularity(csr, r.final_labels), 1e-9);
}

// Historically malformed seeds threw; normalize_warm_labels now repairs
// them so a label vector carried across graph updates (vertices appearing
// or vanishing between epochs) keeps working as a seed. These tests pin
// the repair semantics.

TEST(WarmStart, ShortSeedGrowsWithSelfLabels) {
  // Seed shorter than n (the graph gained vertices since the labels were
  // computed): the unseeded tail starts as singletons.
  graph::EdgeList e;
  e.add(0, 1);
  const auto direct = normalize_warm_labels({0}, 2);
  EXPECT_EQ(direct, (std::vector<vid_t>{0, 1}));
  const auto r = plv::louvain(GraphSource::from_edges_warm(e, {0}, 2), opts_with(1));
  EXPECT_EQ(r.final_labels.size(), 2u);
  EXPECT_EQ(r.final_labels[0], r.final_labels[1]);  // the edge pulls them together
}

TEST(WarmStart, VanishedVertexLabelsResetToSelf) {
  // Seed referencing a vertex id that no longer exists (the graph shrank,
  // or the label pointed at a community anchored on a removed vertex):
  // out-of-range entries reset to self-labels instead of throwing.
  graph::EdgeList e;
  e.add(0, 1);
  const auto direct = normalize_warm_labels({0, 7}, 2);
  EXPECT_EQ(direct, (std::vector<vid_t>{0, 1}));
  const auto r = plv::louvain(GraphSource::from_edges_warm(e, {0, 7}, 2), opts_with(1));
  EXPECT_EQ(r.final_labels.size(), 2u);
  EXPECT_EQ(r.final_labels[0], r.final_labels[1]);
}

TEST(WarmStart, IsolatedNewVerticesStaySingletons) {
  // Vertex additions with no incident edges: the warm run must keep them
  // as their own singleton communities, not attach them anywhere.
  const auto g = gen::planted_partition(
      {.communities = 4, .community_size = 16, .p_intra = 0.6, .p_inter = 0.01, .seed = 41});
  const auto base = plv::louvain(GraphSource::from_edges(g.edges, 64), opts_with(2));
  // Grow the vertex set to 70 without touching the edge set.
  const auto warm =
      plv::louvain(GraphSource::from_edges_warm(g.edges, base.final_labels, 70), opts_with(2));
  ASSERT_EQ(warm.final_labels.size(), 70u);
  // Final labels are compacted community ids, so "stays a singleton"
  // means: the isolated vertex's community contains exactly itself.
  for (vid_t v = 64; v < 70; ++v) {
    const vid_t c = warm.final_labels[v];
    EXPECT_EQ(std::count(warm.final_labels.begin(), warm.final_labels.end(), c), 1)
        << "vertex " << v;
  }
  // The connected part is unaffected by the isolated tail.
  EXPECT_GT(metrics::nmi(std::vector<vid_t>(warm.final_labels.begin(),
                                            warm.final_labels.begin() + 64),
                         base.final_labels),
            0.99);
}

TEST(WarmStart, SeedSurvivesVertexDeletionRelabeling) {
  // The deletion scenario: a graph loses its tail vertices and the old
  // labels (computed at the larger n) are replayed as the seed. Entries
  // pointing into the vanished range must not poison the run.
  auto g = gen::lfr({.n = 500, .mu = 0.2, .seed = 43});
  const auto base = plv::louvain(GraphSource::from_edges(g.edges, 500), opts_with(2));
  // Keep only edges among the first 400 vertices.
  graph::EdgeList kept;
  for (const Edge& e : g.edges) {
    if (e.u < 400 && e.v < 400) kept.add(e.u, e.v, e.w);
  }
  std::vector<vid_t> stale(base.final_labels.begin(), base.final_labels.begin() + 400);
  const auto warm = plv::louvain(GraphSource::from_edges_warm(kept, stale, 400), opts_with(2));
  const auto csr = graph::Csr::from_edges(kept, 400);
  EXPECT_NEAR(warm.final_modularity, metrics::modularity(csr, warm.final_labels), 1e-9);
  EXPECT_GT(warm.final_modularity, 0.0);
}

TEST(WarmStart, FromDeltasEmptyBatchMatchesColdRun) {
  // from_deltas with an empty batch is just a cold run on the base graph.
  const auto g = gen::lfr({.n = 400, .mu = 0.3, .seed = 44});
  EdgeDelta empty;
  EXPECT_TRUE(empty.empty());
  const auto via_delta = plv::louvain(GraphSource::from_deltas(g.edges, empty, 400), opts_with(2));
  const auto cold = plv::louvain(GraphSource::from_edges(g.edges, 400), opts_with(2));
  EXPECT_EQ(via_delta.final_labels, cold.final_labels);
  EXPECT_DOUBLE_EQ(via_delta.final_modularity, cold.final_modularity);
}

}  // namespace
}  // namespace plv::core
