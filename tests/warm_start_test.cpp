#include <gtest/gtest.h>


#include "common/random.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/similarity.hpp"

namespace plv::core {
namespace {

ParOptions opts_with(int nranks) {
  ParOptions o;
  o.nranks = nranks;
  return o;
}

TEST(WarmStart, GroundTruthSeedConvergesImmediately) {
  const auto g = gen::planted_partition(
      {.communities = 8, .community_size = 16, .p_intra = 0.8, .p_inter = 0.01, .seed = 95});
  // Seed with the planted labels (mapped into vertex-id space: use the
  // first member of each community as its label).
  std::vector<vid_t> seed_labels(128);
  for (vid_t v = 0; v < 128; ++v) seed_labels[v] = g.ground_truth[v] * 16;
  const auto warm = louvain_parallel_warm(g.edges, 128, seed_labels, opts_with(4));
  // Already optimal: one level, no quality loss vs cold start.
  const auto cold = louvain_parallel(g.edges, 128, opts_with(4));
  EXPECT_GE(warm.final_modularity, cold.final_modularity - 1e-9);
  EXPECT_GT(metrics::nmi(warm.final_labels, g.ground_truth), 0.99);
  ASSERT_FALSE(warm.levels.empty());
  EXPECT_LE(warm.levels.front().trace.moved_fraction.size(),
            cold.levels.front().trace.moved_fraction.size());
}

TEST(WarmStart, MatchesColdStartQualityFromSingletonSeed) {
  // Warm start from the trivial partition must behave like a cold start.
  const auto g = gen::lfr({.n = 800, .mu = 0.3, .seed = 96});
  std::vector<vid_t> singletons(800);
  for (vid_t v = 0; v < 800; ++v) singletons[v] = v;
  const auto warm = louvain_parallel_warm(g.edges, 800, singletons, opts_with(3));
  const auto cold = louvain_parallel(g.edges, 800, opts_with(3));
  EXPECT_EQ(warm.final_labels, cold.final_labels);
  EXPECT_DOUBLE_EQ(warm.final_modularity, cold.final_modularity);
}

TEST(WarmStart, IncrementalUpdateConvergesFasterThanCold) {
  // The dynamic-graph scenario: detect, perturb the graph slightly,
  // re-detect warm vs cold.
  auto g = gen::lfr({.n = 2000, .mu = 0.25, .seed = 97});
  const auto base = louvain_parallel(g.edges, 2000, opts_with(4));

  // Perturb: add 1% random edges.
  Xoshiro256 rng(98);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<vid_t>(rng.next_below(2000));
    auto v = static_cast<vid_t>(rng.next_below(2000));
    if (u == v) v = (v + 1) % 2000;
    g.edges.add(u, v, 1.0);
  }
  // Seed labels must live in vertex-id space; use each community's first
  // member id.
  std::vector<vid_t> seed(2000, kInvalidVid);
  std::vector<vid_t> first_member(2000, kInvalidVid);
  for (vid_t v = 0; v < 2000; ++v) {
    const vid_t c = base.final_labels[v];
    if (first_member[c] == kInvalidVid) first_member[c] = v;
    seed[v] = first_member[c];
  }

  const auto warm = louvain_parallel_warm(g.edges, 2000, seed, opts_with(4));
  const auto cold = louvain_parallel(g.edges, 2000, opts_with(4));

  auto total_iters = [](const ParResult& r) {
    std::size_t iters = 0;
    for (const auto& level : r.levels) iters += level.trace.moved_fraction.size();
    return iters;
  };
  EXPECT_LT(total_iters(warm), total_iters(cold));
  EXPECT_GT(warm.final_modularity, 0.95 * cold.final_modularity);
  // Warm result stays close to the pre-perturbation communities.
  EXPECT_GT(metrics::nmi(warm.final_labels, base.final_labels), 0.8);
}

TEST(WarmStart, ReportedQMatchesRecomputation) {
  const auto g = gen::lfr({.n = 600, .mu = 0.35, .seed = 99});
  std::vector<vid_t> seed(600);
  for (vid_t v = 0; v < 600; ++v) seed[v] = v / 3;  // arbitrary coarse seed
  const auto r = louvain_parallel_warm(g.edges, 600, seed, opts_with(2));
  const auto csr = graph::Csr::from_edges(g.edges, 600);
  EXPECT_NEAR(r.final_modularity, metrics::modularity(csr, r.final_labels), 1e-9);
}

TEST(WarmStart, RejectsBadSeeds) {
  graph::EdgeList e;
  e.add(0, 1);
  EXPECT_THROW(louvain_parallel_warm(e, 2, {0}, opts_with(1)), std::invalid_argument);
  EXPECT_THROW(louvain_parallel_warm(e, 2, {0, 7}, opts_with(1)), std::invalid_argument);
}

}  // namespace
}  // namespace plv::core
