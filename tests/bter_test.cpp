#include "gen/bter.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "metrics/clustering.hpp"
#include "metrics/modularity.hpp"

namespace plv::gen {
namespace {

BterParams params(double gcc, std::uint64_t seed = 1) {
  return BterParams{.n = 4000,
                    .d_min = 4,
                    .d_max = 64,
                    .gamma = 2.0,
                    .gcc_target = gcc,
                    .seed = seed};
}

TEST(Bter, BlocksCoverAllVertices) {
  const auto g = bter(params(0.4));
  ASSERT_EQ(g.blocks.size(), 4000u);
  EXPECT_GT(g.num_blocks, 50u);
  for (vid_t b : g.blocks) EXPECT_LT(b, g.num_blocks);
}

TEST(Bter, BlocksAreContiguousRanges) {
  const auto g = bter(params(0.4));
  for (std::size_t v = 1; v < g.blocks.size(); ++v) {
    EXPECT_GE(g.blocks[v], g.blocks[v - 1]);
    EXPECT_LE(g.blocks[v] - g.blocks[v - 1], 1u);
  }
}

TEST(Bter, Deterministic) {
  const auto a = bter(params(0.5, 3));
  const auto b = bter(params(0.5, 3));
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges.edges()[i], b.edges.edges()[i]);
  }
}

TEST(Bter, NoSelfLoopsOrDuplicateEdges) {
  auto g = bter(params(0.5));
  const std::size_t before = g.edges.size();
  for (const Edge& e : g.edges) EXPECT_NE(e.u, e.v);
  g.edges.canonicalize();
  EXPECT_EQ(g.edges.size(), before);
}

TEST(Bter, MeasuredGccGrowsWithTarget) {
  // The paper's Fig. 9a knob: higher GCC target ⇒ denser blocks.
  const auto low = bter(params(0.15));
  const auto high = bter(params(0.55));
  const auto g_low = graph::Csr::from_edges(low.edges, 4000);
  const auto g_high = graph::Csr::from_edges(high.edges, 4000);
  const double gcc_low = metrics::global_clustering_coefficient(g_low);
  const double gcc_high = metrics::global_clustering_coefficient(g_high);
  EXPECT_GT(gcc_high, gcc_low + 0.05);
}

TEST(Bter, HigherGccGivesHigherBlockModularity) {
  // Matches the paper's observation: GCC 0.55 ⇒ modularity 0.926 vs
  // GCC 0.15 ⇒ 0.693 (we check the ordering, not the values).
  const auto low = bter(params(0.15));
  const auto high = bter(params(0.55));
  const auto g_low = graph::Csr::from_edges(low.edges, 4000);
  const auto g_high = graph::Csr::from_edges(high.edges, 4000);
  EXPECT_GT(metrics::modularity(g_high, high.blocks),
            metrics::modularity(g_low, low.blocks));
}

TEST(Bter, AverageDegreeTracksDistribution) {
  const auto g = bter(params(0.4));
  const auto csr = graph::Csr::from_edges(g.edges, 4000);
  const double avg = csr.two_m() / 4000.0;
  EXPECT_GT(avg, 3.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Bter, RejectsBadParameters) {
  auto p = params(1.5);
  EXPECT_THROW(bter(p), std::invalid_argument);
  p = params(0.5);
  p.d_max = 2;
  p.d_min = 4;
  EXPECT_THROW(bter(p), std::invalid_argument);
}

}  // namespace
}  // namespace plv::gen
