#include "pml/aggregator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "transport_param.hpp"

namespace plv::pml {
namespace {

struct Record {
  int source;
  int payload;
};

class AggregatorTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }
  void run(int nranks, const std::function<void(Comm&)>& body) const {
    Runtime::run(nranks, body, GetParam());
  }
};

TEST_P(AggregatorTest, DeliversEverythingAfterFlush) {
  run(4, [&](Comm& comm) {
    Aggregator<Record> agg(comm, 8);
    // Each rank sends 100 records round-robin across destinations.
    for (int i = 0; i < 100; ++i) {
      agg.push(i % comm.nranks(), Record{comm.rank(), i});
    }
    agg.flush_all();
    int received = 0;
    comm.drain_until_quiescent<Record>([&](int, std::span<const Record> recs) {
      received += static_cast<int>(recs.size());
    });
    PLV_RANK_CHECK_EQ(received, 100);  // 4 ranks * 25 records each to me
  });
}

TEST_P(AggregatorTest, CoalescesIntoCapacitySizedChunks) {
  run(2, [&](Comm& comm) {
    Aggregator<Record> agg(comm, 10);
    for (int i = 0; i < 95; ++i) agg.push(1 - comm.rank(), Record{comm.rank(), i});
    agg.flush_all();
    // 95 records with capacity 10 → 9 full + 1 partial = 10 chunks.
    PLV_RANK_CHECK_EQ(comm.stats().chunks_sent, 10u);
    comm.drain_until_quiescent<Record>([](int, std::span<const Record>) {});
  });
}

TEST_P(AggregatorTest, PreservesRecordContents) {
  run(3, [&](Comm& comm) {
    Aggregator<Record> agg(comm, 4);
    for (int i = 0; i < 30; ++i) {
      agg.push((comm.rank() + 1) % comm.nranks(), Record{comm.rank(), i * 7});
    }
    agg.flush_all();
    std::map<int, std::vector<int>> by_source;
    comm.drain_until_quiescent<Record>([&](int, std::span<const Record> recs) {
      for (const Record& r : recs) by_source[r.source].push_back(r.payload);
    });
    const int expected_source = (comm.rank() + comm.nranks() - 1) % comm.nranks();
    PLV_RANK_CHECK_EQ(by_source.size(), 1u);
    PLV_RANK_CHECK(by_source.contains(expected_source));
    auto& payloads = by_source[expected_source];
    std::sort(payloads.begin(), payloads.end());
    for (int i = 0; i < 30; ++i) {
      PLV_RANK_CHECK_EQ(payloads[static_cast<std::size_t>(i)], i * 7);
    }
  });
}

TEST_P(AggregatorTest, ZeroCapacityAutoSizes) {
  run(1, [&](Comm& comm) {
    Aggregator<Record> agg(comm, 0);
    PLV_RANK_CHECK_EQ(agg.capacity(), auto_aggregator_capacity(1, sizeof(Record)));
    // 8-byte records, 1 rank: 64 KiB target chunk → 8192 records.
    PLV_RANK_CHECK_EQ(agg.capacity(), 8192u);
    agg.push(0, Record{0, 1});
    agg.flush_all();
    int n = 0;
    comm.drain_until_quiescent<Record>(
        [&](int, std::span<const Record> recs) { n += static_cast<int>(recs.size()); });
    PLV_RANK_CHECK_EQ(n, 1);
  });
}

TEST_P(AggregatorTest, SelfSendsWork) {
  run(2, [&](Comm& comm) {
    Aggregator<Record> agg(comm, 16);
    agg.push(comm.rank(), Record{comm.rank(), 42});
    agg.flush_all();
    int payload = -1;
    comm.drain_until_quiescent<Record>([&](int src, std::span<const Record> recs) {
      PLV_RANK_CHECK_EQ(src, comm.rank());
      payload = recs[0].payload;
    });
    PLV_RANK_CHECK_EQ(payload, 42);
  });
}

INSTANTIATE_TEST_SUITE_P(Transports, AggregatorTest,
                         ::testing::ValuesIn(kAllTransports),
                         [](const auto& info) {
                           return transport_test_name(info.param);
                         });

TEST(Aggregator, AutoCapacityScalesWithFleetAndRecordSize) {
  // Small fleets get the 64 KiB target chunk.
  EXPECT_EQ(auto_aggregator_capacity(4, 16), 4096u);   // the historical default
  EXPECT_EQ(auto_aggregator_capacity(1, 8), 8192u);
  // Wide fleets hit the 4 MiB total-footprint cap: nranks * cap * size ≤ 4 MiB.
  EXPECT_EQ(auto_aggregator_capacity(1024, 16), 256u);
  EXPECT_LE(1024u * auto_aggregator_capacity(1024, 16) * 16, 4u * 1024 * 1024);
  // But never below the 64-record coalescing floor.
  EXPECT_EQ(auto_aggregator_capacity(100000, 16), 64u);
  // Degenerate inputs stay sane.
  EXPECT_EQ(auto_aggregator_capacity(0, 16), auto_aggregator_capacity(1, 16));
  EXPECT_EQ(auto_aggregator_capacity(4, 0), 64u);
}

}  // namespace
}  // namespace plv::pml
