#include "metrics/similarity.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace plv::metrics {
namespace {

TEST(Similarity, IdenticalPartitionsAreAllPerfect) {
  // Paper footnote 1: identical structures give NVD 0 and the rest 1.
  const std::vector<vid_t> a = {0, 0, 1, 1, 2, 2, 2};
  const SimilarityScores s = similarity(a, a);
  EXPECT_NEAR(s.nmi, 1.0, 1e-12);
  EXPECT_NEAR(s.f_measure, 1.0, 1e-12);
  EXPECT_NEAR(s.nvd, 0.0, 1e-12);
  EXPECT_NEAR(s.rand_index, 1.0, 1e-12);
  EXPECT_NEAR(s.adjusted_rand_index, 1.0, 1e-12);
  EXPECT_NEAR(s.jaccard_index, 1.0, 1e-12);
}

TEST(Similarity, LabelValuesAreIrrelevant) {
  const std::vector<vid_t> a = {0, 0, 1, 1, 2};
  const std::vector<vid_t> b = {9, 9, 4, 4, 7};
  const SimilarityScores s = similarity(a, b);
  EXPECT_NEAR(s.nmi, 1.0, 1e-12);
  EXPECT_NEAR(s.adjusted_rand_index, 1.0, 1e-12);
}

TEST(Similarity, CompletelyDifferentPartitions) {
  // a: all together; b: all separate.
  const std::vector<vid_t> a = {0, 0, 0, 0};
  const std::vector<vid_t> b = {0, 1, 2, 3};
  const SimilarityScores s = similarity(a, b);
  EXPECT_NEAR(s.nmi, 0.0, 1e-12);        // zero mutual information
  EXPECT_NEAR(s.rand_index, 0.0, 1e-12); // no pair agrees
  EXPECT_LT(s.adjusted_rand_index, 0.1);
  EXPECT_NEAR(s.jaccard_index, 0.0, 1e-12);
  EXPECT_GT(s.nvd, 0.0);
}

TEST(Similarity, KnownContingencyValues) {
  // a = {0,0,1,1}, b = {0,1,0,1}: independent halves.
  const std::vector<vid_t> a = {0, 0, 1, 1};
  const std::vector<vid_t> b = {0, 1, 0, 1};
  const SimilarityScores s = similarity(a, b);
  // Pairs: C(4,2)=6 total; together-in-a = {01,23}; together-in-b = {02,13};
  // no pair together in both ⇒ s_ab=0; RI = (6+0-2-2)/6 = 1/3.
  EXPECT_NEAR(s.rand_index, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.jaccard_index, 0.0, 1e-12);
  EXPECT_NEAR(s.nmi, 0.0, 1e-12);  // independent ⇒ zero MI
  // ARI: (0 − 2·2/6) / ((2+2)/2 − 2·2/6) = (−2/3)/(4/3) = −0.5.
  EXPECT_NEAR(s.adjusted_rand_index, -0.5, 1e-12);
}

TEST(Similarity, SymmetricUnderSwap) {
  const std::vector<vid_t> a = {0, 0, 1, 1, 2, 0, 1};
  const std::vector<vid_t> b = {0, 1, 1, 1, 2, 2, 0};
  const SimilarityScores ab = similarity(a, b);
  const SimilarityScores ba = similarity(b, a);
  EXPECT_NEAR(ab.nmi, ba.nmi, 1e-12);
  EXPECT_NEAR(ab.rand_index, ba.rand_index, 1e-12);
  EXPECT_NEAR(ab.adjusted_rand_index, ba.adjusted_rand_index, 1e-12);
  EXPECT_NEAR(ab.jaccard_index, ba.jaccard_index, 1e-12);
  EXPECT_NEAR(ab.nvd, ba.nvd, 1e-12);
}

TEST(Similarity, RefinementScoresBetterThanRandomRelabeling) {
  // b refines a (splits each community in two): high but imperfect scores.
  std::vector<vid_t> a(1000), refined(1000), shuffled(1000);
  Xoshiro256 rng(5);
  for (vid_t v = 0; v < 1000; ++v) {
    a[v] = v / 100;
    refined[v] = v / 50;
    shuffled[v] = static_cast<vid_t>(rng.next_below(10));
  }
  const SimilarityScores good = similarity(a, refined);
  const SimilarityScores bad = similarity(a, shuffled);
  EXPECT_GT(good.nmi, bad.nmi);
  EXPECT_GT(good.adjusted_rand_index, bad.adjusted_rand_index);
  EXPECT_GT(good.jaccard_index, bad.jaccard_index);
  EXPECT_LT(good.nvd, bad.nvd);
  EXPECT_GT(good.f_measure, bad.f_measure);
}

TEST(Similarity, RandomIndependentPartitionsHaveNearZeroAri) {
  // ARI is chance-corrected: independent labelings ⇒ ≈ 0 even though the
  // raw Rand index is high.
  std::vector<vid_t> a(5000), b(5000);
  Xoshiro256 rng(11);
  for (std::size_t v = 0; v < 5000; ++v) {
    a[v] = static_cast<vid_t>(rng.next_below(20));
    b[v] = static_cast<vid_t>(rng.next_below(20));
  }
  const SimilarityScores s = similarity(a, b);
  EXPECT_NEAR(s.adjusted_rand_index, 0.0, 0.02);
  EXPECT_GT(s.rand_index, 0.85);
}

TEST(Similarity, BoundsHoldOnRandomInputs) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<vid_t> a(200), b(200);
    for (std::size_t v = 0; v < 200; ++v) {
      a[v] = static_cast<vid_t>(rng.next_below(1 + trial));
      b[v] = static_cast<vid_t>(rng.next_below(1 + (trial * 3) % 11));
    }
    const SimilarityScores s = similarity(a, b);
    EXPECT_GE(s.nmi, -1e-12);
    EXPECT_LE(s.nmi, 1.0 + 1e-12);
    EXPECT_GE(s.f_measure, 0.0);
    EXPECT_LE(s.f_measure, 1.0 + 1e-12);
    EXPECT_GE(s.nvd, -1e-12);
    EXPECT_LE(s.nvd, 1.0 + 1e-12);
    EXPECT_GE(s.rand_index, -1e-12);
    EXPECT_LE(s.rand_index, 1.0 + 1e-12);
    EXPECT_LE(s.adjusted_rand_index, 1.0 + 1e-12);
    EXPECT_GE(s.jaccard_index, -1e-12);
    EXPECT_LE(s.jaccard_index, 1.0 + 1e-12);
  }
}

TEST(Similarity, ThrowsOnMismatchedOrEmptyInput) {
  EXPECT_THROW((void)similarity({0, 1}, {0}), std::invalid_argument);
  EXPECT_THROW((void)similarity({}, {}), std::invalid_argument);
}

TEST(Similarity, SingleVertex) {
  const SimilarityScores s = similarity({0}, {5});
  EXPECT_NEAR(s.nmi, 1.0, 1e-12);
  EXPECT_NEAR(s.nvd, 0.0, 1e-12);
  EXPECT_NEAR(s.rand_index, 1.0, 1e-12);
}

TEST(SimilarityIndividual, MatchBatchResults) {
  const std::vector<vid_t> a = {0, 0, 1, 2, 2, 1};
  const std::vector<vid_t> b = {0, 1, 1, 2, 2, 0};
  const SimilarityScores s = similarity(a, b);
  EXPECT_DOUBLE_EQ(nmi(a, b), s.nmi);
  EXPECT_DOUBLE_EQ(f_measure(a, b), s.f_measure);
  EXPECT_DOUBLE_EQ(normalized_van_dongen(a, b), s.nvd);
  EXPECT_DOUBLE_EQ(rand_index(a, b), s.rand_index);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), s.adjusted_rand_index);
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), s.jaccard_index);
}

}  // namespace
}  // namespace plv::metrics
