// Unit tests for the chunk pool and the lock-free MPSC mailbox, including
// the blocking wait the quiescence protocol and abort path depend on.
#include "pml/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace plv::pml {
namespace {

TEST(Chunk, AppendGrowsAndPreservesContents) {
  Chunk c;
  std::vector<std::uint32_t> values(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    values[i] = i * 7;
    c.append(&values[i], sizeof(std::uint32_t));
  }
  ASSERT_EQ(c.size(), 1000 * sizeof(std::uint32_t));
  EXPECT_EQ(std::memcmp(c.data(), values.data(), c.size()), 0);
}

TEST(Chunk, RecycleKeepsStorageCapacity) {
  Chunk c;
  c.reserve(4096);
  const std::byte* storage = c.data();
  c.source = 3;
  c.control = true;
  c.recycle();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.source, -1);
  EXPECT_FALSE(c.control);
  EXPECT_GE(c.capacity(), 4096u);
  EXPECT_EQ(c.data(), storage);  // no reallocation
}

TEST(Chunk, CursorWriteMatchesAppend) {
  Chunk c;
  c.reserve(64);
  const std::uint64_t value = 0xDEADBEEFCAFEF00DULL;
  std::memcpy(c.raw(), &value, sizeof value);
  c.set_size(sizeof value);
  ASSERT_EQ(c.size(), sizeof value);
  std::uint64_t back = 0;
  std::memcpy(&back, c.data(), sizeof back);
  EXPECT_EQ(back, value);
}

TEST(ChunkPool, ReusesReleasedNodes) {
  ChunkPool pool;
  Chunk* a = pool.acquire(128);
  pool.release(a);
  Chunk* b = pool.acquire(64);  // smaller request must still reuse
  EXPECT_EQ(b, a);
  EXPECT_GE(b->capacity(), 128u);
  pool.release(b);
}

TEST(ChunkPool, TracksFreeCount) {
  ChunkPool pool;
  EXPECT_EQ(pool.free_count(), 0u);
  Chunk* a = pool.acquire(32);
  Chunk* b = pool.acquire(32);
  EXPECT_EQ(pool.free_count(), 0u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.free_count(), 2u);
  Chunk* c = pool.acquire(32);
  EXPECT_EQ(pool.free_count(), 1u);
  pool.release(c);
}

TEST(ChunkPool, TrimEnforcesWatermark) {
  ChunkPool pool;
  pool.set_watermark(2);
  std::vector<Chunk*> held;
  for (int i = 0; i < 8; ++i) held.push_back(pool.acquire(64));
  for (Chunk* c : held) pool.release(c);
  EXPECT_EQ(pool.free_count(), 8u);
  pool.trim();
  EXPECT_EQ(pool.free_count(), 2u);
  // Survivors are still usable after the trim.
  Chunk* a = pool.acquire(64);
  Chunk* b = pool.acquire(64);
  EXPECT_EQ(pool.free_count(), 0u);
  pool.release(a);
  pool.release(b);
}

TEST(ChunkPool, ZeroWatermarkNeverTrims) {
  ChunkPool pool;  // watermark defaults to 0 = unbounded
  std::vector<Chunk*> held;
  for (int i = 0; i < 16; ++i) held.push_back(pool.acquire(16));
  for (Chunk* c : held) pool.release(c);
  pool.trim();
  EXPECT_EQ(pool.free_count(), 16u);
  pool.set_watermark(0);
  pool.trim();
  EXPECT_EQ(pool.free_count(), 16u);
}

TEST(ChunkPool, TrimUnderWatermarkIsANoOp) {
  ChunkPool pool;
  pool.set_watermark(8);
  Chunk* a = pool.acquire(16);
  pool.release(a);
  pool.trim();
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.acquire(16), a);  // the survivor is the same node
  pool.release(a);
}

TEST(Mailbox, DrainPreservesPerProducerFifoOrder) {
  // The quiescence protocol requires a sender's data chunks to be
  // delivered before its end-of-phase marker.
  ChunkPool pool;
  Mailbox mb;
  constexpr int kChunks = 100;
  for (int i = 0; i < kChunks; ++i) {
    Chunk* c = pool.acquire(sizeof(int));
    c->append(&i, sizeof i);
    mb.push(c);
  }
  std::vector<Chunk*> out;
  EXPECT_EQ(mb.drain(out), static_cast<std::size_t>(kChunks));
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kChunks));
  for (int i = 0; i < kChunks; ++i) {
    int v = -1;
    std::memcpy(&v, out[i]->data(), sizeof v);
    EXPECT_EQ(v, i);
    pool.release(out[i]);
  }
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, ConcurrentProducersLoseNothing) {
  Mailbox mb;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, p] {
      ChunkPool local;  // pools are single-owner; one per producer thread
      for (int i = 0; i < kPerProducer; ++i) {
        Chunk* c = local.acquire(sizeof(int));
        const int v = p * kPerProducer + i;
        c->append(&v, sizeof v);
        c->source = p;
        mb.push(c);
      }
      // Nodes were handed to the mailbox; the consumer deletes them.
    });
  }
  for (auto& t : producers) t.join();
  std::vector<Chunk*> out;
  mb.drain(out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::vector<int> last_seen(kProducers, -1);
  std::uint64_t sum = 0;
  for (Chunk* c : out) {
    int v = -1;
    std::memcpy(&v, c->data(), sizeof v);
    // FIFO per producer: values from one source arrive in push order.
    EXPECT_GT(v, last_seen[static_cast<std::size_t>(c->source)]);
    last_seen[static_cast<std::size_t>(c->source)] = v;
    sum += static_cast<std::uint64_t>(v);
    delete c;
  }
  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(Mailbox, WaitNonemptyWakesOnPush) {
  ChunkPool pool;
  Mailbox mb;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    const bool nonempty = mb.wait_nonempty([] { return false; });
    EXPECT_TRUE(nonempty);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Chunk* c = pool.acquire(8);
  const std::uint64_t v = 1;
  c->append(&v, sizeof v);
  mb.push(c);
  consumer.join();
  EXPECT_TRUE(woke.load());
  std::vector<Chunk*> out;
  mb.drain(out);
  for (Chunk* drained : out) pool.release(drained);
}

TEST(Mailbox, WaitNonemptyReturnsOnStopSignal) {
  Mailbox mb;
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    const bool nonempty = mb.wait_nonempty([&] { return stop.load(); });
    EXPECT_FALSE(nonempty);  // nothing was ever pushed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  mb.interrupt();
  consumer.join();
}

TEST(Mailbox, WaitNonemptyReturnsImmediatelyWhenChunksQueued) {
  ChunkPool pool;
  Mailbox mb;
  mb.push(pool.acquire(8));
  EXPECT_TRUE(mb.wait_nonempty([] { return false; }));
  std::vector<Chunk*> out;
  mb.drain(out);
  for (Chunk* c : out) pool.release(c);
}

}  // namespace
}  // namespace plv::pml
