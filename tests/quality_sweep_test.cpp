// Property-style quality sweeps over the LFR mixing parameter — the
// detectability ladder both engines must climb the same way: ground-truth
// recovery degrades monotonically-ish with μ, and at every detectable μ
// the parallel engine stays within a constant factor of the sequential
// baseline (the paper's Fig. 4 claim expressed as a parameterized test).
#include <gtest/gtest.h>

#include "common/louvain.hpp"
#include "core/options.hpp"
#include "gen/lfr.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/similarity.hpp"
#include "seq/louvain_seq.hpp"

namespace plv {
namespace {

class MuSweep : public ::testing::TestWithParam<double> {};

gen::LfrGraph make(double mu) {
  return gen::lfr({.n = 1500,
                   .k_min = 8,
                   .k_max = 40,
                   .c_min = 24,
                   .c_max = 128,
                   .mu = mu,
                   .seed = 500 + static_cast<std::uint64_t>(mu * 100)});
}

TEST_P(MuSweep, SequentialRecoversDetectableStructure) {
  const double mu = GetParam();
  const auto g = make(mu);
  const auto csr = graph::Csr::from_edges(g.edges, 1500);
  const auto r = seq::louvain(csr);
  const double nmi = metrics::nmi(r.final_labels, g.ground_truth);
  if (mu <= 0.3) {
    EXPECT_GT(nmi, 0.85) << "mu=" << mu;
  } else if (mu <= 0.45) {
    EXPECT_GT(nmi, 0.6) << "mu=" << mu;
  }  // above ~0.5 the structure is near the detectability limit at n=1500
}

TEST_P(MuSweep, ParallelWithinConstantFactorOfSequential) {
  const double mu = GetParam();
  const auto g = make(mu);
  const auto csr = graph::Csr::from_edges(g.edges, 1500);
  const auto s = seq::louvain(csr);
  core::ParOptions opts;
  opts.nranks = 4;
  const auto p = louvain(GraphSource::from_edges(g.edges, 1500), opts);
  EXPECT_GT(p.final_modularity, 0.8 * s.final_modularity) << "mu=" << mu;
  EXPECT_NEAR(p.final_modularity, metrics::modularity(csr, p.final_labels), 1e-9);
}

TEST_P(MuSweep, GroundTruthModularityBoundsHold) {
  const double mu = GetParam();
  const auto g = make(mu);
  const auto csr = graph::Csr::from_edges(g.edges, 1500);
  const double q_truth = metrics::modularity(csr, g.ground_truth);
  // Planted partitions obey Q ≈ (1-μ) − Σ(vol_c/2m)² > (1-μ) − 0.2 roughly;
  // assert the loose, always-true envelope.
  EXPECT_LE(q_truth, 1.0);
  EXPECT_GT(q_truth, 0.5 - mu);
}

INSTANTIATE_TEST_SUITE_P(Mixing, MuSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
                         [](const auto& info) {
                           return "mu" + std::to_string(static_cast<int>(
                                             info.param * 100 + 0.5));
                         });

}  // namespace
}  // namespace plv
