// Classic graph families with analytically known community behavior —
// cheap, sharp checks on both engines.
#include <gtest/gtest.h>

#include "core/louvain_par.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "seq/louvain_seq.hpp"

namespace plv {
namespace {

graph::EdgeList complete_graph(vid_t n) {
  graph::EdgeList e;
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) e.add(u, v);
  }
  return e;
}

graph::EdgeList star_graph(vid_t leaves) {
  graph::EdgeList e;
  for (vid_t v = 1; v <= leaves; ++v) e.add(0, v);
  return e;
}

graph::EdgeList complete_bipartite(vid_t a, vid_t b) {
  graph::EdgeList e;
  for (vid_t u = 0; u < a; ++u) {
    for (vid_t v = 0; v < b; ++v) e.add(u, a + v);
  }
  return e;
}

core::ParOptions par2() {
  core::ParOptions o;
  o.nranks = 2;
  return o;
}

TEST(EdgeCases, CompleteGraphCollapsesToOneCommunity) {
  const auto e = complete_graph(12);
  const auto g = graph::Csr::from_edges(e);
  const auto s = seq::louvain(g);
  EXPECT_EQ(metrics::count_communities(s.final_labels), 1u);
  EXPECT_NEAR(s.final_modularity, 0.0, 1e-12);  // Q of the whole graph is 0

  const auto p = plv::louvain(GraphSource::from_edges(e, 12), par2());
  EXPECT_EQ(metrics::count_communities(p.final_labels), 1u);
}

TEST(EdgeCases, StarGraphIsOneCommunity) {
  // Any split of a star cuts hub-leaf edges for no internal gain.
  const auto e = star_graph(10);
  const auto s = seq::louvain(graph::Csr::from_edges(e));
  EXPECT_EQ(metrics::count_communities(s.final_labels), 1u);
  const auto p = plv::louvain(GraphSource::from_edges(e, 11), par2());
  EXPECT_EQ(metrics::count_communities(p.final_labels), 1u);
}

TEST(EdgeCases, CompleteBipartiteStaysTogetherOrBalanced) {
  // K(6,6): the modularity optimum is weak; whatever the engines do must
  // be a valid non-negative-Q partition and both must agree on Q within
  // a wide band.
  const auto e = complete_bipartite(6, 6);
  const auto g = graph::Csr::from_edges(e);
  const auto s = seq::louvain(g);
  const auto p = plv::louvain(GraphSource::from_edges(e, 12), par2());
  EXPECT_GE(s.final_modularity, -1e-12);   // greedy sequential never goes below 0
  EXPECT_GE(p.final_modularity, -0.05);    // parallel reports its true final state
  EXPECT_NEAR(s.final_modularity, p.final_modularity, 0.3);
}

TEST(EdgeCases, TwoDisconnectedCliquesSplitExactly) {
  graph::EdgeList e = complete_graph(5);
  for (vid_t u = 0; u < 5; ++u) {
    for (vid_t v = u + 1; v < 5; ++v) e.add(5 + u, 5 + v);
  }
  const auto s = seq::louvain(graph::Csr::from_edges(e, 10));
  EXPECT_EQ(metrics::count_communities(s.final_labels), 2u);
  EXPECT_NEAR(s.final_modularity, 0.5, 1e-12);  // two equal halves: Q = 1/2

  const auto p = plv::louvain(GraphSource::from_edges(e, 10), par2());
  EXPECT_EQ(metrics::count_communities(p.final_labels), 2u);
  EXPECT_NEAR(p.final_modularity, 0.5, 1e-12);
}

TEST(EdgeCases, PathGraphProducesContiguousSegments) {
  graph::EdgeList e;
  constexpr vid_t n = 24;
  for (vid_t v = 1; v < n; ++v) e.add(v - 1, v);
  const auto s = seq::louvain(graph::Csr::from_edges(e, n));
  // Louvain on a path yields contiguous runs: neighbors-of-neighbors in
  // the same community must form intervals.
  for (vid_t v = 2; v < n; ++v) {
    if (s.final_labels[v] == s.final_labels[v - 2]) {
      EXPECT_EQ(s.final_labels[v - 1], s.final_labels[v]);
    }
  }
  EXPECT_GT(s.final_modularity, 0.5);
}

TEST(EdgeCases, SingleVertexSelfLoopOnly) {
  graph::EdgeList e;
  e.add(0, 0, 4.0);
  const auto s = seq::louvain(graph::Csr::from_edges(e));
  EXPECT_EQ(metrics::count_communities(s.final_labels), 1u);
  EXPECT_NEAR(s.final_modularity, 0.0, 1e-12);  // Σin = 2m, Σtot = 2m
  const auto p = plv::louvain(GraphSource::from_edges(e, 1), par2());
  EXPECT_NEAR(p.final_modularity, 0.0, 1e-12);
}

TEST(EdgeCases, HeavySelfLoopsAnchorVertices) {
  // Self loops add internal weight wherever the vertex goes — they must
  // not bias it toward any neighbor.
  graph::EdgeList e;
  e.add(0, 0, 100.0);
  e.add(1, 1, 100.0);
  e.add(0, 1, 1.0);
  const auto g = graph::Csr::from_edges(e);
  const auto s = seq::louvain(g);
  EXPECT_NEAR(s.final_modularity, metrics::modularity(g, s.final_labels), 1e-12);
  const auto p = plv::louvain(GraphSource::from_edges(e, 2), par2());
  EXPECT_NEAR(p.final_modularity, metrics::modularity(g, p.final_labels), 1e-12);
}

}  // namespace
}  // namespace plv
