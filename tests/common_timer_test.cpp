#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace plv {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(PhaseTimers, AccumulatesByName) {
  PhaseTimers timers;
  timers.add("REFINE", 1.0);
  timers.add("REFINE", 0.5);
  timers.add("GRAPH RECONSTRUCTION", 0.25);
  EXPECT_DOUBLE_EQ(timers.get("REFINE"), 1.5);
  EXPECT_DOUBLE_EQ(timers.get("GRAPH RECONSTRUCTION"), 0.25);
  EXPECT_DOUBLE_EQ(timers.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(timers.total(), 1.75);
}

TEST(PhaseTimers, MergeAndScale) {
  PhaseTimers a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 4.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.get("x"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("y"), 2.0);
}

TEST(ScopedPhase, AddsOnDestruction) {
  PhaseTimers timers;
  {
    ScopedPhase p(timers, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(timers.get("scope"), 0.005);
}

}  // namespace
}  // namespace plv
