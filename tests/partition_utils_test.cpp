#include "metrics/partition_utils.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace plv::metrics {
namespace {

TEST(PartitionUtils, NormalizeLabelsFirstSeenOrder) {
  std::vector<vid_t> labels = {7, 7, 3, 9, 3};
  const std::size_t k = normalize_labels(labels);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(labels, (std::vector<vid_t>{0, 0, 1, 2, 1}));
}

TEST(PartitionUtils, NormalizeIdempotent) {
  std::vector<vid_t> labels = {0, 1, 2, 1, 0};
  std::vector<vid_t> copy = labels;
  normalize_labels(copy);
  EXPECT_EQ(copy, labels);
}

TEST(PartitionUtils, CountCommunities) {
  EXPECT_EQ(count_communities({5, 5, 5}), 1u);
  EXPECT_EQ(count_communities({1, 2, 3, 2, 1}), 3u);
}

TEST(PartitionUtils, CommunitySizes) {
  const auto sizes = community_sizes({4, 4, 9, 4, 9});
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 3u);  // label 4 seen first
  EXPECT_EQ(sizes[1], 2u);
}

TEST(PartitionUtils, SizesSumToVertexCount) {
  std::vector<vid_t> labels(1000);
  for (std::size_t v = 0; v < 1000; ++v) labels[v] = static_cast<vid_t>(v % 37);
  const auto sizes = community_sizes(labels);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0ULL), 1000u);
}

TEST(PartitionUtils, EvolutionRatio) {
  EXPECT_DOUBLE_EQ(evolution_ratio({0, 0, 0, 0}), 0.25);
  EXPECT_DOUBLE_EQ(evolution_ratio({0, 1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(evolution_ratio({}), 0.0);
}

TEST(PartitionUtils, SizeDistributionLog2Bins) {
  // Communities of sizes 1, 2, 3, 8 → bins: [1]:1, [2,3]:2, [8,15]:1.
  std::vector<vid_t> labels;
  labels.insert(labels.end(), 1, 0);
  labels.insert(labels.end(), 2, 1);
  labels.insert(labels.end(), 3, 2);
  labels.insert(labels.end(), 8, 3);
  const auto dist = size_distribution_log2(labels);
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[1], 2u);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[3], 1u);
}

}  // namespace
}  // namespace plv::metrics
