#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"

namespace plv::gen {
namespace {

TEST(ErdosRenyi, ProducesRequestedEdges) {
  const auto edges = erdos_renyi({.n = 100, .m = 500, .seed = 1});
  EXPECT_EQ(edges.size(), 500u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(ErdosRenyi, SelfLoopsOnlyWhenAllowed) {
  const auto edges = erdos_renyi({.n = 4, .m = 5000, .seed = 2, .allow_self_loops = true});
  bool any_loop = false;
  for (const Edge& e : edges) any_loop |= (e.u == e.v);
  EXPECT_TRUE(any_loop);
}

TEST(ErdosRenyi, Deterministic) {
  const auto a = erdos_renyi({.n = 50, .m = 100, .seed = 9});
  const auto b = erdos_renyi({.n = 50, .m = 100, .seed = 9});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(PlantedPartition, GroundTruthShape) {
  const auto g = planted_partition({.communities = 5, .community_size = 10, .seed = 1});
  ASSERT_EQ(g.ground_truth.size(), 50u);
  for (vid_t v = 0; v < 50; ++v) EXPECT_EQ(g.ground_truth[v], v / 10);
}

TEST(PlantedPartition, IntraDenserThanInter) {
  const auto g = planted_partition(
      {.communities = 4, .community_size = 25, .p_intra = 0.5, .p_inter = 0.02, .seed = 3});
  std::uint64_t intra = 0, inter = 0;
  for (const Edge& e : g.edges) {
    (g.ground_truth[e.u] == g.ground_truth[e.v] ? intra : inter) += 1;
  }
  // 4 * C(25,2) * 0.5 = 600 expected intra; C(100,2)-4*C(25,2) pairs * 0.02
  // = 75 expected inter.
  EXPECT_GT(intra, inter * 3);
}

TEST(PlantedPartition, PlantedPartitionHasHighModularity) {
  const auto g = planted_partition(
      {.communities = 8, .community_size = 16, .p_intra = 0.8, .p_inter = 0.01, .seed = 5});
  const auto csr = graph::Csr::from_edges(g.edges, 8 * 16);
  EXPECT_GT(metrics::modularity(csr, g.ground_truth), 0.6);
}

TEST(RingOfCliques, StructureIsExact) {
  const auto g = ring_of_cliques(4, 5);
  // 4 cliques of C(5,2)=10 edges + 4 bridges.
  EXPECT_EQ(g.edges.size(), 4u * 10 + 4);
  ASSERT_EQ(g.ground_truth.size(), 20u);
  const auto csr = graph::Csr::from_edges(g.edges, 20);
  // Every vertex has degree 4 within its clique; bridge endpoints get +1.
  vid_t bridged = 0;
  for (vid_t v = 0; v < 20; ++v) {
    EXPECT_GE(csr.degree(v), 4u);
    EXPECT_LE(csr.degree(v), 5u);
    if (csr.degree(v) == 5u) ++bridged;
  }
  EXPECT_EQ(bridged, 8u);  // two endpoints per bridge
}

TEST(RingOfCliques, GroundTruthModularityIsNearOptimal) {
  const auto g = ring_of_cliques(8, 6);
  const auto csr = graph::Csr::from_edges(g.edges, 48);
  const double q = metrics::modularity(csr, g.ground_truth);
  EXPECT_GT(q, 0.7);
}

TEST(RingOfCliques, SingleCliqueHasNoBridges) {
  const auto g = ring_of_cliques(1, 4);
  EXPECT_EQ(g.edges.size(), 6u);
}

}  // namespace
}  // namespace plv::gen
