#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"

namespace plv::graph {
namespace {

EdgeList triangle() {
  EdgeList e;
  e.add(0, 1, 1.0);
  e.add(1, 2, 2.0);
  e.add(0, 2, 3.0);
  return e;
}

TEST(Csr, TriangleBasics) {
  const Csr g = Csr::from_edges(triangle());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_EQ(g.num_entries(), 6u);  // each edge appears in two rows
  EXPECT_DOUBLE_EQ(g.two_m(), 12.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
  EXPECT_DOUBLE_EQ(g.strength(0), 4.0);
  EXPECT_DOUBLE_EQ(g.strength(1), 3.0);
  EXPECT_DOUBLE_EQ(g.strength(2), 5.0);
}

TEST(Csr, StrengthSumEqualsTwoM) {
  const auto edges = gen::erdos_renyi({.n = 500, .m = 3000, .seed = 7});
  const Csr g = Csr::from_edges(edges);
  weight_t sum = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) sum += g.strength(v);
  EXPECT_DOUBLE_EQ(sum, g.two_m());
}

TEST(Csr, SelfLoopConvention) {
  EdgeList e;
  e.add(0, 0, 2.5);  // unordered self-loop weight 2.5
  e.add(0, 1, 1.0);
  const Csr g = Csr::from_edges(e);
  EXPECT_DOUBLE_EQ(g.self_loop(0), 5.0);       // A(0,0) = 2w
  EXPECT_DOUBLE_EQ(g.strength(0), 6.0);        // 5 + 1
  EXPECT_DOUBLE_EQ(g.two_m(), 7.0);            // 5 + 2*1
  EXPECT_EQ(g.num_undirected_edges(), 2u);
}

TEST(Csr, ParallelEdgesAccumulate) {
  EdgeList e;
  e.add(0, 1, 1.0);
  e.add(1, 0, 2.0);
  e.add(0, 1, 3.0);
  const Csr g = Csr::from_edges(e);
  EXPECT_EQ(g.num_undirected_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 6.0);
  EXPECT_DOUBLE_EQ(g.two_m(), 12.0);
}

TEST(Csr, NeighborsAreSorted) {
  EdgeList e;
  e.add(5, 1);
  e.add(5, 9);
  e.add(5, 3);
  e.add(5, 7);
  const Csr g = Csr::from_edges(e);
  const auto nbrs = g.neighbors(5);
  for (std::size_t i = 1; i < nbrs.size(); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
}

TEST(Csr, ExplicitVertexCountAddsIsolatedVertices) {
  EdgeList e;
  e.add(0, 1);
  const Csr g = Csr::from_edges(e, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
  EXPECT_DOUBLE_EQ(g.strength(9), 0.0);
}

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::from_edges(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_undirected_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.two_m(), 0.0);
}

TEST(Csr, ToEdgesRoundTripsCanonicalForm) {
  EdgeList original = triangle();
  original.add(2, 2, 4.0);  // add a self loop
  const Csr g = Csr::from_edges(original);
  EdgeList back = g.to_edges();
  back.canonicalize();
  original.canonicalize();
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.edges()[i].u, original.edges()[i].u);
    EXPECT_EQ(back.edges()[i].v, original.edges()[i].v);
    EXPECT_DOUBLE_EQ(back.edges()[i].w, original.edges()[i].w);
  }
}

TEST(Csr, RoundTripPreservesTwoM) {
  const auto edges = gen::erdos_renyi({.n = 200, .m = 1000, .seed = 3});
  const Csr g = Csr::from_edges(edges);
  const Csr g2 = Csr::from_edges(g.to_edges(), g.num_vertices());
  EXPECT_DOUBLE_EQ(g.two_m(), g2.two_m());
  EXPECT_EQ(g.num_entries(), g2.num_entries());
}

TEST(EdgeListTest, VertexCountAndTotalWeight) {
  EdgeList e;
  EXPECT_EQ(e.vertex_count(), 0u);
  e.add(3, 9, 2.0);
  e.add(1, 2, 0.5);
  EXPECT_EQ(e.vertex_count(), 10u);
  EXPECT_DOUBLE_EQ(e.total_weight(), 2.5);
}

TEST(EdgeListTest, CanonicalizeMergesAndOrders) {
  EdgeList e;
  e.add(2, 1, 1.0);
  e.add(1, 2, 2.0);
  e.add(0, 1, 1.0);
  e.canonicalize();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.edges()[0].u, 0u);
  EXPECT_EQ(e.edges()[1].u, 1u);
  EXPECT_EQ(e.edges()[1].v, 2u);
  EXPECT_DOUBLE_EQ(e.edges()[1].w, 3.0);
}

}  // namespace
}  // namespace plv::graph
