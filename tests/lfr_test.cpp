#include "gen/lfr.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"

namespace plv::gen {
namespace {

LfrParams small(double mu, std::uint64_t seed = 1) {
  return LfrParams{.n = 2000,
                   .k_min = 8,
                   .k_max = 40,
                   .gamma = 2.5,
                   .c_min = 20,
                   .c_max = 100,
                   .beta = 1.5,
                   .mu = mu,
                   .seed = seed};
}

TEST(Lfr, GroundTruthCoversAllVertices) {
  const auto g = lfr(small(0.3));
  ASSERT_EQ(g.ground_truth.size(), 2000u);
  EXPECT_GT(g.num_communities, 10u);
  for (vid_t label : g.ground_truth) {
    EXPECT_LT(label, g.num_communities);
  }
}

TEST(Lfr, CommunitySizesWithinBounds) {
  const auto g = lfr(small(0.3));
  const auto sizes = metrics::community_sizes(g.ground_truth);
  for (std::uint64_t s : sizes) {
    EXPECT_GE(s, 2u);     // merge rule can only grow the minimum
    EXPECT_LE(s, 200u);   // c_max plus one merged remainder
  }
}

TEST(Lfr, MixingParameterIsApproximatelyRealized) {
  for (double mu : {0.1, 0.3, 0.5}) {
    const auto g = lfr(small(mu));
    std::uint64_t inter = 0;
    for (const Edge& e : g.edges) {
      if (g.ground_truth[e.u] != g.ground_truth[e.v]) ++inter;
    }
    const double realized = static_cast<double>(inter) / static_cast<double>(g.edges.size());
    EXPECT_NEAR(realized, mu, 0.12) << "mu=" << mu;
  }
}

TEST(Lfr, LowMixingGivesHighGroundTruthModularity) {
  const auto g = lfr(small(0.1));
  const auto csr = graph::Csr::from_edges(g.edges, 2000);
  EXPECT_GT(metrics::modularity(csr, g.ground_truth), 0.6);
}

TEST(Lfr, ModularityDecreasesWithMixing) {
  const auto g1 = lfr(small(0.1));
  const auto g2 = lfr(small(0.6));
  const auto c1 = graph::Csr::from_edges(g1.edges, 2000);
  const auto c2 = graph::Csr::from_edges(g2.edges, 2000);
  EXPECT_GT(metrics::modularity(c1, g1.ground_truth),
            metrics::modularity(c2, g2.ground_truth) + 0.1);
}

TEST(Lfr, DegreesApproximatelyFollowRequestedRange) {
  const auto g = lfr(small(0.3));
  const auto csr = graph::Csr::from_edges(g.edges, 2000);
  double avg = 0;
  for (vid_t v = 0; v < 2000; ++v) avg += static_cast<double>(csr.degree(v));
  avg /= 2000;
  // Power law (8..40, gamma 2.5) has mean ~12; stub drops lose a little.
  EXPECT_GT(avg, 7.0);
  EXPECT_LT(avg, 25.0);
}

TEST(Lfr, DeterministicForFixedSeed) {
  const auto a = lfr(small(0.4, 7));
  const auto b = lfr(small(0.4, 7));
  ASSERT_EQ(a.edges.size(), b.edges.size());
  EXPECT_EQ(a.ground_truth, b.ground_truth);
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges.edges()[i], b.edges.edges()[i]);
  }
}

TEST(Lfr, NoSelfLoopsOrDuplicates) {
  auto g = lfr(small(0.3));
  const std::size_t before = g.edges.size();
  for (const Edge& e : g.edges) EXPECT_NE(e.u, e.v);
  g.edges.canonicalize();
  EXPECT_EQ(g.edges.size(), before);  // canonicalize merges duplicates; none expected
}

TEST(Lfr, DroppedStubsAreSmallFraction) {
  const auto g = lfr(small(0.3));
  EXPECT_LT(g.dropped_stubs, 2 * g.edges.size() / 10);
}

TEST(Lfr, RejectsBadParameters) {
  LfrParams p = small(0.3);
  p.mu = 1.5;
  EXPECT_THROW(lfr(p), std::invalid_argument);
  p = small(0.3);
  p.k_max = 2;
  EXPECT_THROW(lfr(p), std::invalid_argument);
  p = small(0.3);
  p.c_min = 1;
  EXPECT_THROW(lfr(p), std::invalid_argument);
}

TEST(Lfr, MuZeroHasNoInterCommunityEdges) {
  const auto g = lfr(small(0.0));
  for (const Edge& e : g.edges) {
    EXPECT_EQ(g.ground_truth[e.u], g.ground_truth[e.v]);
  }
}

}  // namespace
}  // namespace plv::gen
