#include "seq/label_prop.hpp"

#include <gtest/gtest.h>

#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/similarity.hpp"
#include "seq/louvain_seq.hpp"

namespace plv::seq {
namespace {

TEST(LabelProp, MostlyRecoversRingOfCliques) {
  // LPA can merge adjacent cliques across bridges (a known LPA failure
  // mode — one reason the paper builds on Louvain); it must still find
  // most of the clique structure.
  const auto graph = gen::ring_of_cliques(6, 6);
  const auto g = graph::Csr::from_edges(graph.edges, 36);
  const LabelPropResult r = label_propagation(g);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(metrics::nmi(r.labels, graph.ground_truth), 0.75);
  const auto k = metrics::count_communities(r.labels);
  EXPECT_GE(k, 3u);
  EXPECT_LE(k, 6u);
}

TEST(LabelProp, RecoversStrongPlantedPartition) {
  const auto graph = gen::planted_partition(
      {.communities = 6, .community_size = 20, .p_intra = 0.8, .p_inter = 0.01, .seed = 3});
  const auto g = graph::Csr::from_edges(graph.edges, 120);
  const LabelPropResult r = label_propagation(g);
  EXPECT_GT(metrics::nmi(r.labels, graph.ground_truth), 0.9);
}

TEST(LabelProp, ConvergesWithinBudget) {
  const auto graph = gen::lfr({.n = 2000, .mu = 0.3, .seed = 4});
  const auto g = graph::Csr::from_edges(graph.edges, 2000);
  const LabelPropResult r = label_propagation(g);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 64);
  EXPECT_GT(r.iterations, 0);
}

TEST(LabelProp, LouvainBeatsItOnModularity) {
  // The reason the paper builds on Louvain rather than LP (Section VI):
  // LP is fast but produces lower-modularity partitions.
  const auto graph = gen::lfr({.n = 2000, .mu = 0.4, .seed = 5});
  const auto g = graph::Csr::from_edges(graph.edges, 2000);
  const LabelPropResult lp = label_propagation(g);
  const LouvainResult lv = louvain(g);
  EXPECT_GE(lv.final_modularity, metrics::modularity(g, lp.labels) - 1e-9);
}

TEST(LabelProp, EmptyGraph) {
  const LabelPropResult r = label_propagation(graph::Csr{});
  EXPECT_TRUE(r.labels.empty());
  EXPECT_TRUE(r.converged);
}

TEST(LabelProp, IsolatedVerticesKeepOwnLabels) {
  graph::EdgeList e;
  e.add(0, 1);
  const auto g = graph::Csr::from_edges(e, 4);
  const LabelPropResult r = label_propagation(g);
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_EQ(r.labels[2], 2u);
  EXPECT_EQ(r.labels[3], 3u);
}

TEST(LabelProp, DeterministicForFixedSeed) {
  const auto graph = gen::lfr({.n = 1000, .mu = 0.3, .seed = 6});
  const auto g = graph::Csr::from_edges(graph.edges, 1000);
  LabelPropOptions opts;
  opts.seed = 42;
  const LabelPropResult a = label_propagation(g, opts);
  const LabelPropResult b = label_propagation(g, opts);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(LabelProp, WeightedVotesDominate) {
  // Vertex 2 connects to community {0,1} with weight 1 each and to
  // vertex 3 with weight 10: it must side with 3.
  graph::EdgeList e;
  e.add(0, 1, 5.0);
  e.add(0, 2, 1.0);
  e.add(1, 2, 1.0);
  e.add(2, 3, 10.0);
  e.add(3, 4, 5.0);
  const auto g = graph::Csr::from_edges(e, 5);
  const LabelPropResult r = label_propagation(g);
  EXPECT_EQ(r.labels[2], r.labels[3]);
}

}  // namespace
}  // namespace plv::seq
