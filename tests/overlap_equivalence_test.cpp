// Overlap-mode determinism: the overlapped refine pipeline (streaming
// exchanges, fused Σin scan, piggybacked move tally, merged reductions)
// must produce bit-identical labels and modularity to the phased path,
// on both transports. The streaming drain stages chunks per source and
// applies them in ascending rank order, and the merged reductions fold
// in the same rank order as the separate ones — so not just the answer
// but every intermediate floating-point value matches.
//
// Traffic is deterministic too, with one *known* difference: overlap
// replaces the MoveTally allreduce with P sentinel records per rank per
// refine iteration (nranks² records globally per iteration), so
// records_sent differs by exactly that overhead — asserted below — and
// the collective-round count strictly drops (the point of the PR).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/louvain.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "transport_param.hpp"

namespace plv {
namespace {

constexpr int kRanks = 4;

class OverlapEquivalence : public ::testing::TestWithParam<pml::TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }

 private:
  pml::ScopedTransportEnv park_env_;
};

const graph::EdgeList& lfr_input() {
  static const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 23});
  return g.edges;
}

core::ParOptions opts_for(pml::TransportKind kind, bool overlap) {
  core::ParOptions opts;
  opts.nranks = kRanks;
  opts.transport = kind;
  opts.overlap = overlap;
  return opts;
}

/// Sentinel records one level's refine loop ships in overlap mode: one
/// DeltaMsg per (rank, peer) pair per iteration. The iteration count is
/// read off the level trace (record_trace defaults on).
std::uint64_t sentinel_records(const LouvainLevel& level) {
  return static_cast<std::uint64_t>(level.trace.modularity.size()) *
         static_cast<std::uint64_t>(kRanks) * static_cast<std::uint64_t>(kRanks);
}

void expect_equivalent(const Result& on, const Result& off) {
  // Bitwise-equal, not nearly-equal: the two pipelines must execute the
  // same arithmetic in the same order.
  EXPECT_EQ(on.final_modularity, off.final_modularity);
  EXPECT_EQ(on.final_labels, off.final_labels);
  ASSERT_EQ(on.num_levels(), off.num_levels());
  std::uint64_t total_sentinels = 0;
  for (std::size_t l = 0; l < on.num_levels(); ++l) {
    EXPECT_EQ(on.levels[l].labels, off.levels[l].labels) << "level " << l;
    EXPECT_EQ(on.levels[l].modularity, off.levels[l].modularity) << "level " << l;
    ASSERT_EQ(on.levels[l].trace.modularity.size(),
              off.levels[l].trace.modularity.size())
        << "level " << l;
    // Per-iteration trace values are bitwise artifacts of the pipeline
    // too: cutoffs, per-iteration Q, and propagation volume must match.
    EXPECT_EQ(on.levels[l].trace.modularity, off.levels[l].trace.modularity)
        << "level " << l;
    EXPECT_EQ(on.levels[l].trace.gain_cutoff, off.levels[l].trace.gain_cutoff)
        << "level " << l;
    EXPECT_EQ(on.levels[l].trace.prop_records, off.levels[l].trace.prop_records)
        << "level " << l;
    // Traffic differs only by the piggybacked tally sentinels.
    const std::uint64_t sentinels = sentinel_records(on.levels[l]);
    total_sentinels += sentinels;
    EXPECT_EQ(on.levels[l].traffic.records_sent,
              off.levels[l].traffic.records_sent + sentinels)
        << "level " << l;
    EXPECT_EQ(on.levels[l].traffic.records_received,
              off.levels[l].traffic.records_received + sentinels)
        << "level " << l;
    // Fewer collective rounds is the PR's reason to exist.
    EXPECT_LT(on.levels[l].traffic.collectives, off.levels[l].traffic.collectives)
        << "level " << l;
  }
  // The run total includes the final, discarded level (run_levels drops a
  // level that failed to improve, but its traffic was still spent), whose
  // iteration count is not in the result — so the total difference is the
  // recorded sentinels plus whole iterations' worth from that level.
  ASSERT_GE(on.traffic.records_sent, off.traffic.records_sent);
  const std::uint64_t diff = on.traffic.records_sent - off.traffic.records_sent;
  EXPECT_GE(diff, total_sentinels);
  EXPECT_EQ(diff % (static_cast<std::uint64_t>(kRanks) * kRanks), 0u);
  EXPECT_LT(on.traffic.collectives, off.traffic.collectives);
}

TEST_P(OverlapEquivalence, ColdStartIsBitIdentical) {
  const auto on = louvain(GraphSource::from_edges(lfr_input()),
                          opts_for(GetParam(), /*overlap=*/true));
  const auto off = louvain(GraphSource::from_edges(lfr_input()),
                           opts_for(GetParam(), /*overlap=*/false));
  expect_equivalent(on, off);
}

TEST_P(OverlapEquivalence, WarmStartIsBitIdentical) {
  const auto seed_run = louvain(GraphSource::from_edges(lfr_input()),
                                opts_for(GetParam(), /*overlap=*/true));
  const auto on =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(GetParam(), /*overlap=*/true));
  const auto off =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(GetParam(), /*overlap=*/false));
  expect_equivalent(on, off);
}

// The delta-maintenance ablation must stay bit-identical under overlap:
// the carried Σin and the piggybacked tally interact with both the
// always-rebuild and the never-rebuild cadence.
TEST_P(OverlapEquivalence, RebuildCadenceExtremesAreBitIdentical) {
  for (const int cadence :
       {core::kRebuildEveryIteration, core::kNeverRebuild}) {
    auto on_opts = opts_for(GetParam(), /*overlap=*/true);
    auto off_opts = opts_for(GetParam(), /*overlap=*/false);
    on_opts.full_rebuild_every = off_opts.full_rebuild_every = cadence;
    const auto on = louvain(GraphSource::from_edges(lfr_input()), on_opts);
    const auto off = louvain(GraphSource::from_edges(lfr_input()), off_opts);
    expect_equivalent(on, off);
  }
}

// The phased path must also stay transport-independent (the default-on
// overlap path is pinned by transport_equivalence_test).
TEST(OverlapEquivalenceCross, PhasedPathIsTransportIndependent) {
  PLV_SKIP_IF_UNSUPPORTED(pml::TransportKind::kProc);
  pml::ScopedTransportEnv park_env;
  const auto thread_r =
      louvain(GraphSource::from_edges(lfr_input()),
              opts_for(pml::TransportKind::kThread, /*overlap=*/false));
  const auto proc_r =
      louvain(GraphSource::from_edges(lfr_input()),
              opts_for(pml::TransportKind::kProc, /*overlap=*/false));
  EXPECT_EQ(thread_r.final_modularity, proc_r.final_modularity);
  EXPECT_EQ(thread_r.final_labels, proc_r.final_labels);
  EXPECT_EQ(thread_r.traffic.records_sent, proc_r.traffic.records_sent);
}

INSTANTIATE_TEST_SUITE_P(Transports, OverlapEquivalence,
                         ::testing::ValuesIn(pml::kAllTransports),
                         [](const auto& info) {
                           return pml::transport_test_name(info.param);
                         });

}  // namespace
}  // namespace plv
