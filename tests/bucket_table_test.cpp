#include "hashing/bucket_table.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace plv::hashing {
namespace {

TEST(BucketTable, InsertContainsAccumulate) {
  BucketTable t(64, HashKind::kFibonacci);
  t.insert_or_add(pack_key(1, 2), 1.0);
  t.insert_or_add(pack_key(1, 2), 2.0);
  t.insert_or_add(pack_key(3, 4), 1.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(pack_key(1, 2)));
  EXPECT_FALSE(t.contains(pack_key(2, 1)));
}

TEST(BucketTable, BinCountRoundsToPow2) {
  BucketTable t(100, HashKind::kFibonacci);
  EXPECT_EQ(t.bin_count(), 128u);
}

TEST(BucketTable, StatsCountNonemptyBinsOnly) {
  // Paper footnote 3: average bin length counts only non-empty bins.
  BucketTable t(1024, HashKind::kFibonacci);
  t.insert_or_add(1, 1.0);
  t.insert_or_add(2, 1.0);
  const BinStats st = t.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_LE(st.nonempty_bins, 2u);
  EXPECT_GE(st.avg_bin_length, 1.0);
}

TEST(BucketTable, MaxBinLengthTracksWorstBin) {
  BucketTable t(16, HashKind::kConcatenated);
  // Concat hash of keys 0,16,32,... all land in bin 0.
  for (std::uint64_t i = 0; i < 8; ++i) t.insert_or_add(i * 16, 1.0);
  EXPECT_EQ(t.stats().max_bin_length, 8u);
}

TEST(BucketTable, RangeStatsPartitionTheTable) {
  BucketTable t(256, HashKind::kFibonacci);
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) t.insert_or_add(rng(), 1.0);
  const BinStats full = t.stats();
  std::uint64_t entries = 0;
  for (std::size_t first = 0; first < 256; first += 64) {
    entries += t.stats_range(first, first + 64).entries;
  }
  EXPECT_EQ(entries, full.entries);
}

TEST(BucketTable, FibonacciSpreadsBetterThanConcatOnStructuredKeys) {
  BucketTable fib(512, HashKind::kFibonacci);
  BucketTable cat(512, HashKind::kConcatenated);
  // Structured workload: keys share the low half (same destination).
  for (vid_t u = 0; u < 4096; ++u) {
    fib.insert_or_add(pack_key(u, 7) << 9, 1.0);
    cat.insert_or_add(pack_key(u, 7) << 9, 1.0);
  }
  EXPECT_LT(fib.stats().max_bin_length, cat.stats().max_bin_length);
}

}  // namespace
}  // namespace plv::hashing
