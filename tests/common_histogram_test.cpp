#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace plv {
namespace {

TEST(Histogram, TotalCountsAllSamplesIncludingOutOfRange) {
  Histogram h(0.0, 1.0, 10);
  h.add(-5.0);
  h.add(0.5);
  h.add(99.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinOfClampsEnds) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.bin_of(-1.0), 0u);
  EXPECT_EQ(h.bin_of(2.0), 9u);
  EXPECT_EQ(h.bin_of(0.95), 9u);
  EXPECT_EQ(h.bin_of(0.05), 0u);
}

TEST(Histogram, BinEdgesAreEquallySpaced) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, TopFractionCutoffSelectsUpperTail) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // Keeping the top 10% should cut around 90.
  const double cutoff = h.top_fraction_cutoff(0.10);
  EXPECT_NEAR(cutoff, 90.0, 2.0);
}

TEST(Histogram, TopFractionOneKeepsEverything) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) h.add(5.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(2.0), 0.0);
}

TEST(Histogram, TopFractionOnEmptyHistogramIsLo) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.5), 0.0);
}

TEST(Histogram, CutoffNeverExceedsRange) {
  Histogram h(0.0, 1.0, 16);
  for (int i = 0; i < 1000; ++i) h.add(0.999);
  const double cutoff = h.top_fraction_cutoff(0.001);
  EXPECT_LE(cutoff, 1.0);
  EXPECT_GE(cutoff, 0.0);
}

// -- edge-bin regressions for top_fraction_cutoff ---------------------------
// The gain-cutoff selection hits these shapes in practice: late-iteration
// gain distributions collapse into the top bin (every remaining mover has
// ~the max gain), ε ≥ 1 asks for everything, and tiny configured bin
// counts degenerate to a single bin.

TEST(Histogram, AllMassInTopBinCutsAtThatBinsLowerEdge) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(9.99);
  // The top bin overshoots any fractional budget; the cutoff must clamp
  // to the top bin's own lower edge (keep-bins-above would be empty and
  // bin index size() would be out of range).
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.10), h.bin_lo(9));
  EXPECT_LE(h.top_fraction_cutoff(0.10), h.hi());
  // An exact-budget hit in the top bin also cuts at its lower edge.
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.0 - 1e-12), h.bin_lo(9));
}

TEST(Histogram, FractionOneAndAboveAlwaysReturnsLoEvenWithTopHeavyMass) {
  Histogram h(-2.0, 3.0, 8);
  for (int i = 0; i < 17; ++i) h.add(2.9);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.0), -2.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.5), -2.0);
}

TEST(Histogram, SingleBinHistogramCutsAtLo) {
  Histogram h(0.0, 4.0, 1);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i % 5));
  // One bin holds all mass, so every fraction keeps everything: the only
  // representable cutoff is lo.
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.01), 0.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.99), 0.0);
}

TEST(Histogram, ZeroBinRequestDegeneratesToOneBin) {
  Histogram h(0.0, 1.0, 0);
  EXPECT_EQ(h.bins(), 1u);
  h.add(0.7);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.5), 0.0);
}

TEST(Histogram, ResetRerangesAndZeroesInPlace) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.4);
  h.add(0.9);
  h.reset(2.0, 6.0, 4);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.lo(), 2.0);
  EXPECT_DOUBLE_EQ(h.hi(), 6.0);
  h.add(5.9);
  EXPECT_EQ(h.bin_of(5.9), 3u);
  EXPECT_EQ(h.total(), 1u);
  // Degenerate re-range mirrors the constructor's zero-bin handling.
  h.reset(0.0, 0.0, 0);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.total(), 0u);
}

// The threshold-scaling refine loop reuses one persistent histogram: each
// level re-ranges it to that level's gain spread and then floors the
// selected cutoff at the level tolerance divided by the level size (the
// geometric cascade of RefinePlan::initial_tolerance / decay^level). The
// reset must leave no stale mass behind — a count surviving a re-range
// would shift the top-fraction cutoff of every later level — and the
// floored cutoff must track the tightening tolerance, not the old range.
TEST(Histogram, ResetWithScaledThresholdTightensCutoffPerLevel) {
  Histogram h(0.0, 1.0, 32);
  const double initial_tolerance = 1e-2;
  const double decay = 10.0;
  double prev_floored = 0.0;
  for (int level = 0; level < 3; ++level) {
    // Level graphs shrink as the cascade coarsens; gains shrink with them.
    const double gain_hi = 1.0 / static_cast<double>(1 << level);
    h.reset(0.0, gain_hi, 32);
    ASSERT_EQ(h.total(), 0u) << "stale mass survived reset at level " << level;
    ASSERT_EQ(h.bins(), 32u);
    for (int i = 0; i < 64; ++i) {
      h.add(gain_hi * static_cast<double>(i) / 64.0);
    }
    const double level_tol =
        initial_tolerance / std::pow(decay, static_cast<double>(level));
    const double n_level = 100.0;
    const double gain_floor = level_tol / n_level;
    const double cutoff = std::max(h.top_fraction_cutoff(0.25), gain_floor);
    // The selection itself keeps the top quartile of the re-ranged spread…
    EXPECT_NEAR(cutoff, 0.75 * gain_hi, gain_hi / 16.0) << "level " << level;
    // …and the floor can only bind from below: never above the range.
    EXPECT_GE(cutoff, gain_floor);
    EXPECT_LE(cutoff, gain_hi);
    if (level > 0) {
      EXPECT_LT(cutoff, prev_floored) << "level " << level;
    }
    prev_floored = cutoff;
  }
}

// When a late level's gains collapse under the scaled tolerance, the
// floor takes over the cutoff entirely: sub-tolerance shuffling must not
// keep iterations alive just because the histogram still has mass.
TEST(Histogram, ScaledFloorDominatesSubToleranceGains) {
  Histogram h(0.0, 1.0, 16);
  const double gain_floor = 1e-4;  // level_tol / n_level
  h.reset(0.0, 5e-5, 16);          // every gain below the floor
  for (int i = 0; i < 32; ++i) h.add(4e-5);
  const double cutoff = std::max(h.top_fraction_cutoff(0.5), gain_floor);
  EXPECT_DOUBLE_EQ(cutoff, gain_floor);
  EXPECT_GT(cutoff, h.hi());  // nothing in range survives the floor
}

TEST(Summary, TracksMinMaxMean) {
  Summary s;
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Summary, EmptyMeanIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace plv
