#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace plv {
namespace {

TEST(Histogram, TotalCountsAllSamplesIncludingOutOfRange) {
  Histogram h(0.0, 1.0, 10);
  h.add(-5.0);
  h.add(0.5);
  h.add(99.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinOfClampsEnds) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.bin_of(-1.0), 0u);
  EXPECT_EQ(h.bin_of(2.0), 9u);
  EXPECT_EQ(h.bin_of(0.95), 9u);
  EXPECT_EQ(h.bin_of(0.05), 0u);
}

TEST(Histogram, BinEdgesAreEquallySpaced) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, TopFractionCutoffSelectsUpperTail) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // Keeping the top 10% should cut around 90.
  const double cutoff = h.top_fraction_cutoff(0.10);
  EXPECT_NEAR(cutoff, 90.0, 2.0);
}

TEST(Histogram, TopFractionOneKeepsEverything) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) h.add(5.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(2.0), 0.0);
}

TEST(Histogram, TopFractionOnEmptyHistogramIsLo) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.5), 0.0);
}

TEST(Histogram, CutoffNeverExceedsRange) {
  Histogram h(0.0, 1.0, 16);
  for (int i = 0; i < 1000; ++i) h.add(0.999);
  const double cutoff = h.top_fraction_cutoff(0.001);
  EXPECT_LE(cutoff, 1.0);
  EXPECT_GE(cutoff, 0.0);
}

// -- edge-bin regressions for top_fraction_cutoff ---------------------------
// The gain-cutoff selection hits these shapes in practice: late-iteration
// gain distributions collapse into the top bin (every remaining mover has
// ~the max gain), ε ≥ 1 asks for everything, and tiny configured bin
// counts degenerate to a single bin.

TEST(Histogram, AllMassInTopBinCutsAtThatBinsLowerEdge) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(9.99);
  // The top bin overshoots any fractional budget; the cutoff must clamp
  // to the top bin's own lower edge (keep-bins-above would be empty and
  // bin index size() would be out of range).
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.10), h.bin_lo(9));
  EXPECT_LE(h.top_fraction_cutoff(0.10), h.hi());
  // An exact-budget hit in the top bin also cuts at its lower edge.
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.0 - 1e-12), h.bin_lo(9));
}

TEST(Histogram, FractionOneAndAboveAlwaysReturnsLoEvenWithTopHeavyMass) {
  Histogram h(-2.0, 3.0, 8);
  for (int i = 0; i < 17; ++i) h.add(2.9);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.0), -2.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(1.5), -2.0);
}

TEST(Histogram, SingleBinHistogramCutsAtLo) {
  Histogram h(0.0, 4.0, 1);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i % 5));
  // One bin holds all mass, so every fraction keeps everything: the only
  // representable cutoff is lo.
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.01), 0.0);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.99), 0.0);
}

TEST(Histogram, ZeroBinRequestDegeneratesToOneBin) {
  Histogram h(0.0, 1.0, 0);
  EXPECT_EQ(h.bins(), 1u);
  h.add(0.7);
  EXPECT_DOUBLE_EQ(h.top_fraction_cutoff(0.5), 0.0);
}

TEST(Histogram, ResetRerangesAndZeroesInPlace) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.4);
  h.add(0.9);
  h.reset(2.0, 6.0, 4);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.lo(), 2.0);
  EXPECT_DOUBLE_EQ(h.hi(), 6.0);
  h.add(5.9);
  EXPECT_EQ(h.bin_of(5.9), 3u);
  EXPECT_EQ(h.total(), 1u);
  // Degenerate re-range mirrors the constructor's zero-bin handling.
  h.reset(0.0, 0.0, 0);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Summary, TracksMinMaxMean) {
  Summary s;
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Summary, EmptyMeanIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace plv
