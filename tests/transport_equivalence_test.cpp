// Cross-transport determinism: the thread, proc, and tcp backends must
// produce bit-identical artifacts for the same options and input. The
// engine's determinism argument (rank-order collective combining,
// deterministic tie-breaks) is transport-independent — this test pins
// that claim. The tcp legs run the loopback self-test fleet (forked
// ranks over 127.0.0.1 ephemeral ports).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/louvain.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "transport_param.hpp"

namespace plv {
namespace {

// These tests pass explicit transports through ParOptions, so a
// PLV_TRANSPORT value inherited from the environment (CI proc/tcp legs
// set it binary-wide) must be parked for the duration of each test.
class TransportEquivalence : public ::testing::Test {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(pml::TransportKind::kProc); }

 private:
  pml::ScopedTransportEnv park_env_;
};

const graph::EdgeList& lfr_input() {
  static const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 23});
  return g.edges;
}

core::ParOptions opts_for(pml::TransportKind kind) {
  core::ParOptions opts;
  opts.nranks = 4;
  opts.transport = kind;
  return opts;
}

/// Asserts `r` matches the thread-backend reference bit for bit: labels,
/// modularity, level artifacts, and communication volume.
void expect_identical(const Result& thread_r, const Result& r,
                      const std::string& transport) {
  EXPECT_EQ(thread_r.transport, "thread");
  EXPECT_EQ(r.transport, transport);
  // Bitwise-equal modularity, not nearly-equal: both backends must
  // combine partial sums in the same (rank) order.
  EXPECT_EQ(thread_r.final_modularity, r.final_modularity) << transport;
  EXPECT_EQ(thread_r.final_labels, r.final_labels) << transport;
  ASSERT_EQ(thread_r.num_levels(), r.num_levels()) << transport;
  for (std::size_t l = 0; l < thread_r.num_levels(); ++l) {
    EXPECT_EQ(thread_r.levels[l].labels, r.levels[l].labels)
        << transport << " level " << l;
    EXPECT_EQ(thread_r.levels[l].modularity, r.levels[l].modularity)
        << transport << " level " << l;
    // Communication volume is part of the deterministic artifact too.
    EXPECT_EQ(thread_r.levels[l].traffic.records_sent,
              r.levels[l].traffic.records_sent)
        << transport << " level " << l;
  }
  EXPECT_EQ(thread_r.traffic.records_sent, r.traffic.records_sent) << transport;
}

TEST_F(TransportEquivalence, ColdStartIsBitIdentical) {
  const auto thread_r = louvain(GraphSource::from_edges(lfr_input()),
                                opts_for(pml::TransportKind::kThread));
  const auto proc_r = louvain(GraphSource::from_edges(lfr_input()),
                              opts_for(pml::TransportKind::kProc));
  expect_identical(thread_r, proc_r, "proc");
  const auto tcp_r = louvain(GraphSource::from_edges(lfr_input()),
                             opts_for(pml::TransportKind::kTcp));
  expect_identical(thread_r, tcp_r, "tcp");
}

TEST_F(TransportEquivalence, WarmStartIsBitIdentical) {
  // Seed the warm start from a run's own output so the initial partition
  // is realistic rather than synthetic.
  const auto seed_run = louvain(GraphSource::from_edges(lfr_input()),
                                opts_for(pml::TransportKind::kThread));
  const auto thread_r =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(pml::TransportKind::kThread));
  const auto proc_r =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(pml::TransportKind::kProc));
  expect_identical(thread_r, proc_r, "proc");
  const auto tcp_r =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(pml::TransportKind::kTcp));
  expect_identical(thread_r, tcp_r, "tcp");
}

TEST_F(TransportEquivalence, StreamedIngestIsBitIdentical) {
  // Each rank contributes a deterministic stripe of the edge list.
  const EdgeSliceFn slice = [](int rank, int nranks) {
    const auto& all = lfr_input().edges();
    graph::EdgeList mine;
    for (std::size_t i = static_cast<std::size_t>(rank); i < all.size();
         i += static_cast<std::size_t>(nranks)) {
      mine.add(all[i].u, all[i].v, all[i].w);
    }
    return mine;
  };
  const vid_t n = lfr_input().vertex_count();
  const auto thread_r = louvain(GraphSource::from_stream(slice, n),
                                opts_for(pml::TransportKind::kThread));
  const auto proc_r =
      louvain(GraphSource::from_stream(slice, n), opts_for(pml::TransportKind::kProc));
  expect_identical(thread_r, proc_r, "proc");
  const auto tcp_r =
      louvain(GraphSource::from_stream(slice, n), opts_for(pml::TransportKind::kTcp));
  expect_identical(thread_r, tcp_r, "tcp");
}

TEST_F(TransportEquivalence, EnvOverrideWinsOverOptions) {
  setenv("PLV_TRANSPORT", "proc", 1);
  const auto r = louvain(GraphSource::from_edges(lfr_input()),
                         opts_for(pml::TransportKind::kThread));
  unsetenv("PLV_TRANSPORT");
  EXPECT_EQ(r.transport, "proc");
}

TEST_F(TransportEquivalence, EnvOverrideSelectsTcp) {
  setenv("PLV_TRANSPORT", "tcp", 1);
  const auto r = louvain(GraphSource::from_edges(lfr_input()),
                         opts_for(pml::TransportKind::kThread));
  unsetenv("PLV_TRANSPORT");
  EXPECT_EQ(r.transport, "tcp");
}

}  // namespace
}  // namespace plv
