// Cross-transport determinism: the thread, proc, and tcp backends must
// produce bit-identical artifacts for the same options and input. The
// engine's determinism argument (rank-order collective combining,
// deterministic tie-breaks) is transport-independent — this test pins
// that claim. The tcp legs run the loopback self-test fleet (forked
// ranks over 127.0.0.1 ephemeral ports).
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <future>
#include <string>
#include <utility>

#include "common/louvain.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "pml/comm.hpp"
#include "transport_param.hpp"

namespace plv {
namespace {

// These tests pass explicit transports through ParOptions, so a
// PLV_TRANSPORT value inherited from the environment (CI proc/tcp legs
// set it binary-wide) must be parked for the duration of each test.
class TransportEquivalence : public ::testing::Test {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(pml::TransportKind::kProc); }

 private:
  pml::ScopedTransportEnv park_env_;
};

const graph::EdgeList& lfr_input() {
  static const auto g = gen::lfr({.n = 2000, .mu = 0.3, .seed = 23});
  return g.edges;
}

core::ParOptions opts_for(pml::TransportKind kind) {
  core::ParOptions opts;
  opts.nranks = 4;
  opts.transport = kind;
  return opts;
}

/// A 4-rank hybrid fleet, two thread ranks per forked process (2x2).
/// `flat` keeps the composed substrate but runs the flat collectives —
/// the hierarchical path's A/B baseline.
core::ParOptions hybrid_opts(bool flat = false) {
  core::ParOptions opts = opts_for(pml::TransportKind::kHybrid);
  opts.ranks_per_proc = 2;
  opts.flat_collectives = flat;
  return opts;
}

/// Asserts `r` matches the thread-backend reference bit for bit: labels,
/// modularity, level artifacts, and communication volume.
void expect_identical(const Result& thread_r, const Result& r,
                      const std::string& transport) {
  EXPECT_EQ(thread_r.transport, "thread");
  EXPECT_EQ(r.transport, transport);
  // Bitwise-equal modularity, not nearly-equal: both backends must
  // combine partial sums in the same (rank) order.
  EXPECT_EQ(thread_r.final_modularity, r.final_modularity) << transport;
  EXPECT_EQ(thread_r.final_labels, r.final_labels) << transport;
  ASSERT_EQ(thread_r.num_levels(), r.num_levels()) << transport;
  for (std::size_t l = 0; l < thread_r.num_levels(); ++l) {
    EXPECT_EQ(thread_r.levels[l].labels, r.levels[l].labels)
        << transport << " level " << l;
    EXPECT_EQ(thread_r.levels[l].modularity, r.levels[l].modularity)
        << transport << " level " << l;
    // Communication volume is part of the deterministic artifact too.
    EXPECT_EQ(thread_r.levels[l].traffic.records_sent,
              r.levels[l].traffic.records_sent)
        << transport << " level " << l;
  }
  EXPECT_EQ(thread_r.traffic.records_sent, r.traffic.records_sent) << transport;
}

TEST_F(TransportEquivalence, ColdStartIsBitIdentical) {
  const auto thread_r = louvain(GraphSource::from_edges(lfr_input()),
                                opts_for(pml::TransportKind::kThread));
  const auto proc_r = louvain(GraphSource::from_edges(lfr_input()),
                              opts_for(pml::TransportKind::kProc));
  expect_identical(thread_r, proc_r, "proc");
  const auto tcp_r = louvain(GraphSource::from_edges(lfr_input()),
                             opts_for(pml::TransportKind::kTcp));
  expect_identical(thread_r, tcp_r, "tcp");
}

TEST_F(TransportEquivalence, WarmStartIsBitIdentical) {
  // Seed the warm start from a run's own output so the initial partition
  // is realistic rather than synthetic.
  const auto seed_run = louvain(GraphSource::from_edges(lfr_input()),
                                opts_for(pml::TransportKind::kThread));
  const auto thread_r =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(pml::TransportKind::kThread));
  const auto proc_r =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(pml::TransportKind::kProc));
  expect_identical(thread_r, proc_r, "proc");
  const auto tcp_r =
      louvain(GraphSource::from_edges_warm(lfr_input(), seed_run.final_labels),
              opts_for(pml::TransportKind::kTcp));
  expect_identical(thread_r, tcp_r, "tcp");
}

TEST_F(TransportEquivalence, StreamedIngestIsBitIdentical) {
  // Each rank contributes a deterministic stripe of the edge list.
  const EdgeSliceFn slice = [](int rank, int nranks) {
    const auto& all = lfr_input().edges();
    graph::EdgeList mine;
    for (std::size_t i = static_cast<std::size_t>(rank); i < all.size();
         i += static_cast<std::size_t>(nranks)) {
      mine.add(all[i].u, all[i].v, all[i].w);
    }
    return mine;
  };
  const vid_t n = lfr_input().vertex_count();
  const auto thread_r = louvain(GraphSource::from_stream(slice, n),
                                opts_for(pml::TransportKind::kThread));
  const auto proc_r =
      louvain(GraphSource::from_stream(slice, n), opts_for(pml::TransportKind::kProc));
  expect_identical(thread_r, proc_r, "proc");
  const auto tcp_r =
      louvain(GraphSource::from_stream(slice, n), opts_for(pml::TransportKind::kTcp));
  expect_identical(thread_r, tcp_r, "tcp");
}

TEST_F(TransportEquivalence, HybridColdStartIsBitIdentical) {
  // The composed two-tier backend — hierarchical collectives and the
  // counted-settlement quiescence protocol — must reproduce the flat
  // thread reference bit for bit: the (group, rank-in-group) combine
  // order over consecutive-block groups IS global rank order.
  const auto thread_r = louvain(GraphSource::from_edges(lfr_input()),
                                opts_for(pml::TransportKind::kThread));
  const auto hybrid_r = louvain(GraphSource::from_edges(lfr_input()), hybrid_opts());
  expect_identical(thread_r, hybrid_r, "hybrid");
}

TEST_F(TransportEquivalence, HybridHierarchicalMatchesHybridFlat) {
  // Same substrate, both collective disciplines: flat_collectives keeps
  // the composed transport but publishes the trivial topology (flat
  // collectives + marker quiescence), so any artifact difference would
  // be the hierarchical path's fault specifically.
  const auto flat_r =
      louvain(GraphSource::from_edges(lfr_input()), hybrid_opts(/*flat=*/true));
  const auto hier_r = louvain(GraphSource::from_edges(lfr_input()), hybrid_opts());
  EXPECT_EQ(flat_r.final_modularity, hier_r.final_modularity);
  EXPECT_EQ(flat_r.final_labels, hier_r.final_labels);
  ASSERT_EQ(flat_r.num_levels(), hier_r.num_levels());
  for (std::size_t l = 0; l < flat_r.num_levels(); ++l) {
    EXPECT_EQ(flat_r.levels[l].labels, hier_r.levels[l].labels) << "level " << l;
    EXPECT_EQ(flat_r.levels[l].modularity, hier_r.levels[l].modularity)
        << "level " << l;
  }
  // The headline locality win: with 2x2 groups, each collective crosses
  // the group boundary once per peer leader instead of once per remote
  // rank, so the hierarchical run must strictly cut inter-group traffic.
  EXPECT_LT(hier_r.traffic.inter_group_messages, flat_r.traffic.inter_group_messages);
  EXPECT_GT(hier_r.traffic.inter_group_messages, 0u);
}

TEST_F(TransportEquivalence, SigkilledGroupMemberUnwindsFleetPromptly) {
  // Fault injection at the process level: a non-leader member of a
  // forked group dies without unwinding (SIGKILL, no Goodbye, no abort
  // frame). Survivors must see the EOF, abort, and the caller must get a
  // RemoteRankError naming a rank of the dead group — promptly, not
  // after a timeout.
  using pml::Comm;
  auto fut = std::async(std::launch::async, [] {
    pml::Runtime::run(
        4,
        [](Comm& comm) {
          if (comm.rank() == 3) {
            (void)::raise(SIGKILL);  // takes down the whole group process
          }
          for (int i = 0; i < 1'000'000; ++i) comm.barrier();
        },
        pml::TransportKind::kHybrid, /*validate=*/false, {},
        pml::HybridOptions{.ranks_per_proc = 2, .flat_collectives = false});
  });
  if (fut.wait_for(std::chrono::seconds(5)) != std::future_status::ready) {
    // Leak the future on purpose: joining a hung run would wedge the
    // whole test binary.
    new std::future<void>(std::move(fut));
    FAIL() << "hybrid fleet did not unwind within 5s of a SIGKILLed member";
  }
  try {
    fut.get();
    FAIL() << "expected a RemoteRankError";
  } catch (const pml::RemoteRankError& e) {
    // Rank 3 dies mid-signal, taking sibling rank 2 with it; the parent
    // decodes the wait status against the group, whose report names its
    // leader (rank 2).
    EXPECT_TRUE(e.rank == 2 || e.rank == 3) << e.what();
    EXPECT_NE(std::string(e.what()).find("killed by signal"), std::string::npos)
        << e.what();
  }
}

TEST_F(TransportEquivalence, EnvOverrideWinsOverOptions) {
  setenv("PLV_TRANSPORT", "proc", 1);
  const auto r = louvain(GraphSource::from_edges(lfr_input()),
                         opts_for(pml::TransportKind::kThread));
  unsetenv("PLV_TRANSPORT");
  EXPECT_EQ(r.transport, "proc");
}

TEST_F(TransportEquivalence, EnvOverrideSelectsTcp) {
  setenv("PLV_TRANSPORT", "tcp", 1);
  const auto r = louvain(GraphSource::from_edges(lfr_input()),
                         opts_for(pml::TransportKind::kThread));
  unsetenv("PLV_TRANSPORT");
  EXPECT_EQ(r.transport, "tcp");
}

TEST_F(TransportEquivalence, EnvOverrideSelectsHybrid) {
  setenv("PLV_TRANSPORT", "hybrid", 1);
  const auto r = louvain(GraphSource::from_edges(lfr_input()),
                         opts_for(pml::TransportKind::kThread));
  unsetenv("PLV_TRANSPORT");
  EXPECT_EQ(r.transport, "hybrid");
  // The env-selected hybrid run is still the same deterministic artifact.
  const auto thread_r = louvain(GraphSource::from_edges(lfr_input()),
                                opts_for(pml::TransportKind::kThread));
  EXPECT_EQ(thread_r.final_labels, r.final_labels);
}

}  // namespace
}  // namespace plv
