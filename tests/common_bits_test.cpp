#include "common/bits.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace plv {
namespace {

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(1ULL << 50), 50u);
}

TEST(Types, PackKeyRoundTrips) {
  const std::uint64_t key = pack_key(0xdeadbeef, 0x12345678);
  EXPECT_EQ(key_hi(key), 0xdeadbeefu);
  EXPECT_EQ(key_lo(key), 0x12345678u);
}

TEST(Types, PackKeyIsInjectiveOnSwaps) {
  EXPECT_NE(pack_key(1, 2), pack_key(2, 1));
}

TEST(Types, InvalidVidIsMax) {
  EXPECT_EQ(kInvalidVid, 0xffffffffu);
}

}  // namespace
}  // namespace plv
