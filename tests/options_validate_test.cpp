// ParOptions::validate() — every core entry point calls it before any
// rank is spawned, so inconsistent knob combinations must fail on the
// caller with a message naming the offending field.
#include "core/options.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/louvain_par.hpp"
#include "graph/edge_list.hpp"

namespace plv::core {
namespace {

/// Expects validate() to throw std::invalid_argument mentioning `field`.
void expect_rejected(const ParOptions& opts, const std::string& field) {
  try {
    opts.validate();
    FAIL() << "expected rejection mentioning \"" << field << "\"";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ParOptions"), std::string::npos) << what;
    EXPECT_NE(what.find(field), std::string::npos) << what;
  }
}

TEST(OptionsValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(ParOptions{}.validate());
}

TEST(OptionsValidate, RejectsNonPositiveRankCount) {
  ParOptions opts;
  opts.nranks = 0;
  expect_rejected(opts, "nranks");
  opts.nranks = -4;
  expect_rejected(opts, "nranks");
}

TEST(OptionsValidate, RejectsNegativeOrNanTolerance) {
  ParOptions opts;
  opts.q_tolerance = -1e-9;
  expect_rejected(opts, "q_tolerance");
  opts.q_tolerance = std::nan("");
  expect_rejected(opts, "q_tolerance");
}

TEST(OptionsValidate, RejectsDegenerateIterationLimits) {
  ParOptions opts;
  opts.max_inner_iterations = 0;
  expect_rejected(opts, "max_inner_iterations");
  opts = ParOptions{};
  opts.max_levels = 0;
  expect_rejected(opts, "max_levels");
  opts = ParOptions{};
  opts.stagnation_window = 0;
  expect_rejected(opts, "stagnation_window");
  opts = ParOptions{};
  opts.gain_histogram_bins = 0;
  expect_rejected(opts, "gain_histogram_bins");
}

TEST(OptionsValidate, RejectsNonPositiveHeuristicParams) {
  ParOptions opts;
  opts.p1 = 0.0;
  expect_rejected(opts, "p1");
  opts = ParOptions{};
  opts.p2 = -0.3;
  expect_rejected(opts, "p2");
  // ...but with the heuristic off, p1/p2 are unused and unchecked.
  opts = ParOptions{};
  opts.threshold = ThresholdModel::kNone;
  opts.p1 = 0.0;
  opts.p2 = 0.0;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsOutOfRangeTableLoad) {
  ParOptions opts;
  opts.table_max_load = 0.0;
  expect_rejected(opts, "table_max_load");
  opts.table_max_load = 1.5;
  expect_rejected(opts, "table_max_load");
  opts.table_max_load = 1.0;  // boundary is allowed
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsOverflowingAggregatorCapacity) {
  ParOptions opts;
  opts.aggregator_capacity = std::numeric_limits<std::size_t>::max();
  expect_rejected(opts, "aggregator_capacity");
  opts.aggregator_capacity = kAutoAggregatorCapacity;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsNegativeRebuildCadence) {
  ParOptions opts;
  opts.full_rebuild_every = -1;
  expect_rejected(opts, "full_rebuild_every");
  opts.full_rebuild_every = kNeverRebuild;
  EXPECT_NO_THROW(opts.validate());
  opts.full_rebuild_every = kRebuildEveryIteration;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsNegativeOrNanAdaptiveRebuildDrift) {
  ParOptions opts;
  opts.adaptive_rebuild_drift = -0.5;
  expect_rejected(opts, "adaptive_rebuild_drift");
  opts.adaptive_rebuild_drift = std::nan("");
  expect_rejected(opts, "adaptive_rebuild_drift");
  opts.adaptive_rebuild_drift = kAdaptiveRebuildOff;
  EXPECT_NO_THROW(opts.validate());
  opts.adaptive_rebuild_drift = 2.0;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsNonFiniteResolution) {
  ParOptions opts;
  opts.resolution = 0.0;
  expect_rejected(opts, "resolution");
  opts.resolution = std::numeric_limits<double>::infinity();
  expect_rejected(opts, "resolution");
  opts.resolution = std::nan("");
  expect_rejected(opts, "resolution");
}

TEST(OptionsValidate, RejectsOutOfRangeFrontierScanThreshold) {
  ParOptions opts;
  opts.refine.frontier_scan_threshold = -0.1;
  expect_rejected(opts, "frontier_scan_threshold");
  opts.refine.frontier_scan_threshold = 1.5;
  expect_rejected(opts, "frontier_scan_threshold");
  opts.refine.frontier_scan_threshold = std::nan("");
  expect_rejected(opts, "frontier_scan_threshold");
  // Both extremes are meaningful (0 = always fused, 1 = always row scan).
  opts.refine.frontier_scan_threshold = 0.0;
  EXPECT_NO_THROW(opts.validate());
  opts.refine.frontier_scan_threshold = 1.0;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsBadThresholdScaling) {
  ParOptions opts;
  opts.refine.initial_tolerance = -1e-3;
  expect_rejected(opts, "initial_tolerance");
  opts.refine.initial_tolerance = std::numeric_limits<double>::infinity();
  expect_rejected(opts, "initial_tolerance");
  opts.refine.initial_tolerance = std::nan("");
  expect_rejected(opts, "initial_tolerance");
  // Scaling on requires a genuinely tightening cascade: decay must
  // exceed 1 or every level would see the same (or a looser) tolerance.
  opts.refine.initial_tolerance = 1e-2;
  opts.refine.tolerance_decay = 1.0;
  expect_rejected(opts, "tolerance_decay");
  opts.refine.tolerance_decay = std::nan("");
  expect_rejected(opts, "tolerance_decay");
  opts.refine.tolerance_decay = 10.0;
  EXPECT_NO_THROW(opts.validate());
  // Scaling off (0) ignores the decay entirely.
  opts.refine.initial_tolerance = 0.0;
  opts.refine.tolerance_decay = 0.5;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsPlans, HeuristicsPresetValidatesAndPinsItsContract) {
  ParOptions opts;
  opts.refine = RefinePlan::heuristics();
  EXPECT_NO_THROW(opts.validate());
  EXPECT_TRUE(opts.refine.active_scheduling);
  EXPECT_TRUE(opts.refine.min_label_ties);
  EXPECT_TRUE(opts.refine.vertex_following);
  EXPECT_GT(opts.refine.initial_tolerance, 0.0);
  EXPECT_GT(opts.refine.tolerance_decay, 1.0);
  // The stock default keeps every heuristic off — the PR 8 behavior.
  const RefinePlan stock;
  EXPECT_FALSE(stock.active_scheduling);
  EXPECT_FALSE(stock.min_label_ties);
  EXPECT_FALSE(stock.vertex_following);
  EXPECT_EQ(stock.initial_tolerance, 0.0);
}

TEST(OptionsValidate, RejectsCorruptedTransportEnum) {
  ParOptions opts;
  opts.transport = static_cast<pml::TransportKind>(42);
  expect_rejected(opts, "transport");
}

TEST(OptionsValidate, TcpDefaultsSelectTheLoopbackSelfTest) {
  // kTcp with no hosts and tcp_rank -1 is the loopback self-test fleet —
  // what CI's PLV_TRANSPORT=tcp leg runs — and needs no configuration.
  ParOptions opts;
  opts.transport = pml::TransportKind::kTcp;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, TcpMultiHostCombinationIsValid) {
  ParOptions opts;
  opts.transport = pml::TransportKind::kTcp;
  opts.nranks = 2;
  opts.hosts = {"10.0.0.1:7000", "10.0.0.2:7000"};
  opts.tcp_rank = 1;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsHostsOnNonTcpTransports) {
  ParOptions opts;
  opts.nranks = 2;
  opts.hosts = {"a:1", "b:2"};
  opts.tcp_rank = 0;
  opts.transport = pml::TransportKind::kThread;
  expect_rejected(opts, "hosts");
  opts.transport = pml::TransportKind::kProc;
  expect_rejected(opts, "hosts");
}

TEST(OptionsValidate, RejectsTcpRankOnNonTcpTransports) {
  ParOptions opts;
  opts.tcp_rank = 0;
  expect_rejected(opts, "tcp_rank");
}

TEST(OptionsValidate, RejectsTcpRankWithoutHosts) {
  ParOptions opts;
  opts.transport = pml::TransportKind::kTcp;
  opts.tcp_rank = 0;
  expect_rejected(opts, "hosts");
}

TEST(OptionsValidate, RejectsHostCountMismatchingRankCount) {
  ParOptions opts;
  opts.transport = pml::TransportKind::kTcp;
  opts.nranks = 3;
  opts.hosts = {"a:1", "b:2"};
  opts.tcp_rank = 0;
  expect_rejected(opts, "hosts");
}

TEST(OptionsValidate, RejectsHostsWithoutTcpRank) {
  ParOptions opts;
  opts.transport = pml::TransportKind::kTcp;
  opts.nranks = 2;
  opts.hosts = {"a:1", "b:2"};
  expect_rejected(opts, "tcp_rank");
}

TEST(OptionsValidate, RejectsTcpRankOutOfRange) {
  ParOptions opts;
  opts.transport = pml::TransportKind::kTcp;
  opts.nranks = 2;
  opts.hosts = {"a:1", "b:2"};
  opts.tcp_rank = 2;
  expect_rejected(opts, "tcp_rank");
  opts.tcp_rank = -7;
  expect_rejected(opts, "tcp_rank");
}

TEST(OptionsValidate, RejectsMalformedHostEntries) {
  ParOptions opts;
  opts.transport = pml::TransportKind::kTcp;
  opts.nranks = 2;
  opts.hosts = {"a:1", "b:no-such-port"};
  opts.tcp_rank = 0;
  expect_rejected(opts, "hosts");
}

TEST(OptionsValidate, HybridDefaultsAreValid) {
  // kHybrid with ranks_per_proc 0 defers the group shape to
  // PLV_RANKS_PER_PROC / the built-in default — what CI's hybrid leg runs.
  ParOptions opts;
  opts.transport = pml::TransportKind::kHybrid;
  EXPECT_NO_THROW(opts.validate());
  opts.nranks = 8;
  opts.ranks_per_proc = 2;
  EXPECT_NO_THROW(opts.validate());
  opts.flat_collectives = true;  // the A/B baseline is a legal run mode
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsRanksPerProcOnNonHybridTransports) {
  ParOptions opts;
  opts.ranks_per_proc = 2;
  opts.transport = pml::TransportKind::kThread;
  expect_rejected(opts, "ranks_per_proc");
  opts.transport = pml::TransportKind::kProc;
  expect_rejected(opts, "ranks_per_proc");
  opts.transport = pml::TransportKind::kTcp;
  expect_rejected(opts, "ranks_per_proc");
}

TEST(OptionsValidate, RejectsNegativeRanksPerProc) {
  ParOptions opts;
  opts.transport = pml::TransportKind::kHybrid;
  opts.ranks_per_proc = -2;
  expect_rejected(opts, "ranks_per_proc");
}

TEST(OptionsValidate, RejectsNonDividingRanksPerProc) {
  // Hybrid groups are equal consecutive blocks; a ragged shape would make
  // the leader set ambiguous across the documentation and benches.
  ParOptions opts;
  opts.transport = pml::TransportKind::kHybrid;
  opts.nranks = 8;
  opts.ranks_per_proc = 3;
  expect_rejected(opts, "ranks_per_proc");
  opts.ranks_per_proc = 8;  // one group holding the whole fleet is fine
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsFlatCollectivesOnNonHybridTransports) {
  ParOptions opts;
  opts.flat_collectives = true;
  opts.transport = pml::TransportKind::kThread;
  expect_rejected(opts, "flat_collectives");
  opts.transport = pml::TransportKind::kTcp;
  expect_rejected(opts, "flat_collectives");
}

TEST(OptionsValidate, RejectsHostsOnHybridTransport) {
  // The hybrid backend forks its process groups locally; a host list
  // (the multi-host tcp launcher's knob) cannot apply to it.
  ParOptions opts;
  opts.transport = pml::TransportKind::kHybrid;
  opts.nranks = 2;
  opts.hosts = {"a:1", "b:2"};
  opts.tcp_rank = 0;
  expect_rejected(opts, "hosts");
}

TEST(OptionsValidate, RejectsNegativeStreamingCadence) {
  ParOptions opts;
  opts.streaming.rebuild_every_batches = -3;
  expect_rejected(opts, "rebuild_every_batches");
  opts.streaming.rebuild_every_batches = kNeverColdRebuild;
  EXPECT_NO_THROW(opts.validate());
  opts.streaming.rebuild_every_batches = kColdRebuildEveryBatch;
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsValidate, RejectsOutOfRangeMaxDeltaFraction) {
  ParOptions opts;
  opts.streaming.max_delta_fraction = -0.1;
  expect_rejected(opts, "max_delta_fraction");
  opts.streaming.max_delta_fraction = 1.5;
  expect_rejected(opts, "max_delta_fraction");
  opts.streaming.max_delta_fraction = std::nan("");
  expect_rejected(opts, "max_delta_fraction");
  opts.streaming.max_delta_fraction = 0.0;  // boundary: never incremental
  EXPECT_NO_THROW(opts.validate());
  opts.streaming.max_delta_fraction = 1.0;  // boundary: any batch size
  EXPECT_NO_THROW(opts.validate());
}

TEST(OptionsPlans, PresetsValidateAndPinTheirContracts) {
  // deterministic(): every batch is a cold rebuild, frontier off —
  // bit-identical to one-shot runs. fast(): never rebuild cold, frontier
  // on — lowest latency.
  EXPECT_NO_THROW(ParOptions::deterministic().validate());
  EXPECT_NO_THROW(ParOptions::fast().validate());
  EXPECT_EQ(StreamingPlan::deterministic().rebuild_every_batches,
            kColdRebuildEveryBatch);
  EXPECT_FALSE(StreamingPlan::deterministic().frontier);
  EXPECT_EQ(StreamingPlan::fast().rebuild_every_batches, kNeverColdRebuild);
  EXPECT_TRUE(StreamingPlan::fast().frontier);
  EXPECT_EQ(RefinePlan::deterministic().adaptive_rebuild_drift, kAdaptiveRebuildOff);
}

TEST(OptionsPlans, FlatAliasesReadAndWriteTheNestedPlans) {
  // The pre-plan flat fields stay usable: they are references into the
  // nested RefinePlan, so writes through either spelling are visible
  // through the other.
  ParOptions opts;
  opts.resolution = 2.5;
  EXPECT_EQ(opts.refine.resolution, 2.5);
  opts.refine.full_rebuild_every = 7;
  EXPECT_EQ(opts.full_rebuild_every, 7);
  opts.max_levels = 3;
  EXPECT_EQ(opts.refine.max_levels, 3);
}

TEST(OptionsPlans, CopiesRebindAliasesToTheirOwnPlans) {
  // Copying must not leave the copy's aliases pointing into the source's
  // plans (the classic reference-member copy bug).
  ParOptions a;
  a.resolution = 3.0;
  ParOptions b = a;
  EXPECT_EQ(b.resolution, 3.0);
  b.resolution = 0.5;
  EXPECT_EQ(a.resolution, 3.0) << "copy aliased the source's plan";
  EXPECT_EQ(b.refine.resolution, 0.5);
  a = b;
  a.max_levels = 9;
  EXPECT_NE(b.max_levels, 9);
}

TEST(OptionsValidate, EntryPointsRejectBeforeSpawningRanks) {
  // The front door must surface the validation error directly (no rank
  // fleet, no wrapped exception).
  graph::EdgeList edges;
  edges.add(0, 1);
  ParOptions opts;
  opts.max_levels = 0;
  EXPECT_THROW((void)louvain(GraphSource::from_edges(edges), opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace plv::core
