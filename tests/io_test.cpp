#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace plv::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plv_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip) {
  EdgeList edges;
  edges.add(0, 1, 1.5);
  edges.add(2, 3, 2.0);
  edges.add(4, 4, 0.5);
  save_edge_list_text(edges, path("g.txt"));
  const EdgeList loaded = load_edge_list_text(path("g.txt"));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.edges()[0].u, 0u);
  EXPECT_DOUBLE_EQ(loaded.edges()[0].w, 1.5);
  EXPECT_EQ(loaded.edges()[2].v, 4u);
}

TEST_F(IoTest, TextDefaultsWeightToOne) {
  std::ofstream out(path("g.txt"));
  out << "# comment line\n% another comment\n0 1\n1 2 5.5\n";
  out.close();
  const EdgeList loaded = load_edge_list_text(path("g.txt"));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.edges()[0].w, 1.0);
  EXPECT_DOUBLE_EQ(loaded.edges()[1].w, 5.5);
}

TEST_F(IoTest, TextRejectsMalformedLines) {
  std::ofstream out(path("bad.txt"));
  out << "0 1\nnot an edge\n";
  out.close();
  EXPECT_THROW(load_edge_list_text(path("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_text(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(load_edge_list_binary(path("nope.bin")), std::runtime_error);
  EXPECT_THROW(load_communities(path("nope.cm")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripExact) {
  EdgeList edges;
  for (vid_t i = 0; i < 1000; ++i) edges.add(i, i + 1, 0.25 * i);
  save_edge_list_binary(edges, path("g.bin"));
  const EdgeList loaded = load_edge_list_binary(path("g.bin"));
  ASSERT_EQ(loaded.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(loaded.edges()[i], edges.edges()[i]);
  }
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("junk.bin"), std::ios::binary);
  out << "this is not a plouvain file at all.....";
  out.close();
  EXPECT_THROW(load_edge_list_binary(path("junk.bin")), std::runtime_error);
}

TEST_F(IoTest, CommunityRoundTrip) {
  const std::vector<vid_t> labels = {0, 0, 1, 2, 1, 0};
  save_communities(labels, path("c.txt"));
  EXPECT_EQ(load_communities(path("c.txt")), labels);
}

}  // namespace
}  // namespace plv::graph
