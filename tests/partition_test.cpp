#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace plv::graph {
namespace {

struct Case {
  PartitionKind kind;
  vid_t n;
  int nranks;
};

class PartitionTest : public ::testing::TestWithParam<Case> {};

TEST_P(PartitionTest, OwnersAreInRange) {
  const auto [kind, n, nranks] = GetParam();
  Partition1D part(kind, n, nranks);
  for (vid_t v = 0; v < n; ++v) {
    const int owner = part.owner(v);
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, nranks);
  }
}

TEST_P(PartitionTest, LocalCountsSumToN) {
  const auto [kind, n, nranks] = GetParam();
  Partition1D part(kind, n, nranks);
  vid_t total = 0;
  for (int r = 0; r < nranks; ++r) total += part.local_count(r);
  EXPECT_EQ(total, n);
}

TEST_P(PartitionTest, LocalCountsMatchOwnership) {
  const auto [kind, n, nranks] = GetParam();
  Partition1D part(kind, n, nranks);
  std::vector<vid_t> counts(static_cast<std::size_t>(nranks), 0);
  for (vid_t v = 0; v < n; ++v) ++counts[static_cast<std::size_t>(part.owner(v))];
  for (int r = 0; r < nranks; ++r) EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                                             part.local_count(r));
}

TEST_P(PartitionTest, GlobalLocalRoundTrip) {
  const auto [kind, n, nranks] = GetParam();
  Partition1D part(kind, n, nranks);
  for (vid_t v = 0; v < n; ++v) {
    const int owner = part.owner(v);
    const vid_t local = part.to_local(v);
    EXPECT_LT(local, part.local_count(owner));
    EXPECT_EQ(part.to_global(owner, local), v);
  }
}

TEST_P(PartitionTest, LoadIsBalancedWithinOne) {
  const auto [kind, n, nranks] = GetParam();
  Partition1D part(kind, n, nranks);
  vid_t lo = n, hi = 0;
  for (int r = 0; r < nranks; ++r) {
    lo = std::min(lo, part.local_count(r));
    hi = std::max(hi, part.local_count(r));
  }
  EXPECT_LE(hi - lo, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionTest,
    ::testing::Values(Case{PartitionKind::kCyclic, 100, 1},
                      Case{PartitionKind::kCyclic, 100, 4},
                      Case{PartitionKind::kCyclic, 101, 4},
                      Case{PartitionKind::kCyclic, 7, 8},
                      Case{PartitionKind::kBlock, 100, 1},
                      Case{PartitionKind::kBlock, 100, 4},
                      Case{PartitionKind::kBlock, 101, 4},
                      Case{PartitionKind::kBlock, 7, 8},
                      Case{PartitionKind::kBlock, 1024, 3}),
    [](const auto& info) {
      const auto& c = info.param;
      return std::string(c.kind == PartitionKind::kCyclic ? "cyclic" : "block") + "_n" +
             std::to_string(c.n) + "_r" + std::to_string(c.nranks);
    });

TEST(Partition, CyclicIsModulo) {
  Partition1D part(PartitionKind::kCyclic, 100, 4);
  for (vid_t v = 0; v < 100; ++v) EXPECT_EQ(part.owner(v), static_cast<int>(v % 4));
}

TEST(Partition, BlockIsContiguous) {
  Partition1D part(PartitionKind::kBlock, 10, 3);
  // 10 = 4 + 3 + 3.
  EXPECT_EQ(part.owner(0), 0);
  EXPECT_EQ(part.owner(3), 0);
  EXPECT_EQ(part.owner(4), 1);
  EXPECT_EQ(part.owner(6), 1);
  EXPECT_EQ(part.owner(7), 2);
  EXPECT_EQ(part.owner(9), 2);
}

}  // namespace
}  // namespace plv::graph
