// Failure-injection tests for the runtime's fail-fast guarantee: a rank
// that throws must terminate the whole run promptly — peers blocked in
// collectives or in the quiescence wait are woken and unwound instead of
// deadlocking — and the original exception must surface on the caller.
//
// Parameterized over both transports. Exception *identity* differs by
// backend: the thread backend rethrows the original exception object, so
// type and text survive exactly; the proc backend can only ship the text
// of a child-rank failure across the process boundary, so it surfaces a
// RemoteRankError whose message embeds the original text (rank 0 runs in
// the calling process on both backends, so its exceptions keep their
// type everywhere).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <tuple>

#include "pml/aggregator.hpp"
#include "pml/comm.hpp"
#include "transport_param.hpp"

namespace plv::pml {
namespace {

using namespace std::chrono_literals;

class FailFast : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override { PLV_SKIP_IF_UNSUPPORTED(GetParam()); }

  /// Runs `body` through the Runtime on a helper thread and requires it
  /// to finish (by completing or throwing) within the deadline. Returns
  /// the future so the caller can assert on the propagated exception.
  [[nodiscard]] std::future<void> run_async(int nranks,
                                            std::function<void(Comm&)> body) const {
    return std::async(std::launch::async,
                      [nranks, kind = GetParam(), body = std::move(body)] {
                        Runtime::run(nranks, body, kind);
                      });
  }
};

/// True when the run finished in time. On timeout the future is leaked on
/// purpose: its destructor would otherwise join the hung run and wedge the
/// whole test binary.
[[nodiscard]] bool finished_in_time(std::future<void>& fut,
                                    std::chrono::seconds deadline = std::chrono::seconds(10)) {
  if (fut.wait_for(deadline) == std::future_status::ready) return true;
  new std::future<void>(std::move(fut));
  return false;
}

TEST_P(FailFast, ThrowingRankUnblocksPeersInBarrier) {
  auto fut = run_async(4, [](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("rank 2 exploded");
    // Peers head straight into a collective and would wait forever on
    // rank 2 if the abort did not drop it from the barrier.
    for (int i = 0; i < 1'000'000; ++i) comm.barrier();
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST_P(FailFast, ThrowingRankUnblocksPeersInAllreduce) {
  auto fut = run_async(4, [](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("rank 0 exploded");
    std::uint64_t acc = 0;
    for (int i = 0; i < 1'000'000; ++i) {
      acc += comm.allreduce_sum<std::uint64_t>(1);
    }
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST_P(FailFast, ThrowingRankWakesQuiescenceWaiters) {
  // Surviving ranks park in the counted-termination wait for a marker
  // that the dead rank will never send; the abort must wake them.
  auto fut = run_async(4, [](Comm& comm) {
    if (comm.rank() == 3) throw std::runtime_error("rank 3 exploded");
    comm.drain_until_quiescent<int>([](int, std::span<const int>) {});
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST_P(FailFast, ThrowAfterTrafficStillUnblocksDrain) {
  auto fut = run_async(4, [](Comm& comm) {
    Aggregator<int> agg(comm, 4);
    for (int d = 0; d < comm.nranks(); ++d) agg.push(d, comm.rank());
    agg.flush_all();
    if (comm.rank() == 1) throw std::runtime_error("rank 1 exploded");
    comm.drain_until_quiescent<int>([](int, std::span<const int>) {});
    for (int i = 0; i < 1'000'000; ++i) comm.barrier();
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST_P(FailFast, OriginalExceptionTextIsPreserved) {
  auto fut = run_async(8, [](Comm& comm) {
    if (comm.rank() == 5) throw std::runtime_error("the real cause");
    for (int i = 0; i < 1'000'000; ++i) comm.barrier();
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  try {
    fut.get();
    FAIL() << "expected an exception";
  } catch (const AbortedError&) {
    FAIL() << "peer-induced AbortedError masked the original exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the real cause"), std::string::npos) << what;
    if (GetParam() == TransportKind::kThread) {
      EXPECT_EQ(what, "the real cause");  // the exception object itself
    }
  }
}

TEST_P(FailFast, DistinctExceptionTypePropagates) {
  // Rank 0 runs in the calling process on both backends, so even the
  // proc transport preserves the exception's dynamic type here.
  auto fut = run_async(4, [](Comm& comm) {
    if (comm.rank() == 0) throw std::logic_error("typed failure");
    for (int i = 0; i < 1'000'000; ++i) comm.barrier();
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  EXPECT_THROW(fut.get(), std::logic_error);
}

TEST_P(FailFast, AllRanksThrowingReportsOne) {
  auto fut = run_async(4, [](Comm&) { throw std::runtime_error("everyone dies"); });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST_P(FailFast, CleanRunIsUnaffectedByAbortMachinery) {
  // Sanity: the abort plumbing must not fire on a healthy run.
  auto fut = run_async(4, [](Comm& comm) {
    Aggregator<int> agg(comm, 8);
    for (int d = 0; d < comm.nranks(); ++d) agg.push(d, 1);
    agg.flush_all();
    int total = 0;
    comm.drain_until_quiescent<int>([&](int, std::span<const int> recs) {
      for (int v : recs) total += v;
    });
    if (total != comm.nranks()) throw std::runtime_error("lost records");
    if (comm.allreduce_sum(1) != comm.nranks()) throw std::runtime_error("bad sum");
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  EXPECT_NO_THROW(fut.get());
}

TEST_P(FailFast, RemoteRankErrorNamesTheFailedRank) {
  if (GetParam() == TransportKind::kThread) {
    GTEST_SKIP() << "RemoteRankError is the socket backends' child-failure report";
  }
  auto fut = run_async(4, [](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("child went down");
    for (int i = 0; i < 1'000'000; ++i) comm.barrier();
  });
  ASSERT_TRUE(finished_in_time(fut)) << "run hung";
  try {
    fut.get();
    FAIL() << "expected an exception";
  } catch (const RemoteRankError& e) {
    EXPECT_EQ(e.rank, 2);
    EXPECT_NE(std::string(e.what()).find("child went down"), std::string::npos);
    if (GetParam() == TransportKind::kTcp) {
      // The tcp fleet knows where the rank lived; the report names it.
      EXPECT_NE(e.endpoint.find("127.0.0.1:"), std::string::npos) << e.what();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, FailFast,
                         ::testing::ValuesIn(kAllTransports),
                         [](const auto& info) {
                           return transport_test_name(info.param);
                         });

}  // namespace
}  // namespace plv::pml
